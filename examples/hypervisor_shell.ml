(* Hypervisor integration (paper Fig. 7): the system controller
   exposes a command API to the high-level system.  This example
   scripts a session: inspect the cluster, deploy accelerators until
   the cluster saturates, inspect placement, and release everything.

     dune exec examples/hypervisor_shell.exe *)

module Framework = Mlv_core.Framework
module Registry = Mlv_core.Registry
module Runtime = Mlv_core.Runtime
module Hypervisor = Mlv_core.Hypervisor
module Cluster = Mlv_cluster.Cluster

let () =
  let registry = Registry.create () in
  List.iter
    (fun tiles ->
      match Framework.build_npu ~tiles () with
      | Ok npu -> Registry.register registry npu.Framework.mapping
      | Error e -> failwith e)
    [ 6; 13; 21 ];
  let cluster = Cluster.create () in
  let runtime = Runtime.create ~policy:Runtime.greedy cluster registry in
  let hv = Hypervisor.create runtime in
  let session =
    [
      "help";
      "list";
      "status";
      "nodes";
      "deploy npu-t21";
      "deploy npu-t13";
      "deploy npu-t6";
      "deploy npu-t6";
      "status";
      "nodes";
      "deployments";
      "deploy npu-t21";
      (* likely refused: cluster is loaded *)
      "undeploy 0";
      "status";
      "deploy npu-t13";
      "deployments";
      "undeploy 1";
      "undeploy 2";
      "undeploy 3";
      "undeploy 4";
      "status";
      (* placement-index health and failover round-trip *)
      "index";
      "deploy npu-t6";
      "fail 0";
      "index";
      "restore 0";
      "rebalance";
      "index";
      "undeploy 5";
      (* fault injection: a scripted crash/restore plan with a ring
         degradation, then live migration of a degraded deployment *)
      "deploy npu-t13";
      "faults";
      "inject crash@100:1,degrade@150:0.6,restore@400:1";
      "faults";
      "deploy npu-t6";
      "migrate 7";
      "inject restore@500:1";
      "undeploy 6";
      "undeploy 7";
      (* serving layer: an SLO admission gate, request routing over
         warm replicas, and an offline autoscaler evaluation *)
      "slo add S 2 5000 1000 4";
      "slo add L 0 20000 500 2";
      "slo";
      "slo check S";
      "slo check S";
      "slo check unknown-class";
      "slo shed 1";
      "slo check L";
      "slo shed off";
      "deploy npu-t6";
      "deploy npu-t6";
      "router";
      "router dispatch npu-t6";
      "router dispatch npu-t6";
      "router dispatch npu-t6";
      "router";
      "autoscale eval npu-t6";
      "autoscale on";
      "autoscale eval npu-t6";
      "router done 8";
      "router done 9";
      "router done 8";
      "autoscale eval npu-t6";
      "autoscale";
      "autoscale off";
      (* force-migrate consolidates a healthy deployment (moved=0
         when it is already optimally placed) *)
      "migrate 8 force";
      "undeploy 8";
      "undeploy 9";
      "undeploy 10";
      (* the observability registry accumulated by the session *)
      "metrics";
      "trace deploy";
      (* per-task lifecycle view: enable tracing so the next fault
         plan leaves marks, then inspect timeline and per-node top *)
      "timeline on";
      "inject crash@600:2,restore@700:2";
      "timeline";
      "top";
      "timeline off";
      (* streaming telemetry: install an alert rule over a live
         series, evaluate it against the session clock, inspect *)
      "alert add outage gt sysim.nodes_down 0 1 1 0";
      "alerts";
      "alerts eval";
      "series";
      "counters reset";
      "trace deploy";
    ]
  in
  List.iter
    (fun cmd ->
      let resp = Hypervisor.handle hv cmd in
      Printf.printf "> %s\n  %s\n" cmd resp)
    session
