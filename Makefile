# Convenience entry points; everything is plain dune underneath.

.PHONY: all build check fmt test bench bench-place bench-place-smoke \
	bench-faults bench-faults-smoke bench-trace bench-trace-smoke \
	bench-sched bench-sched-smoke bench-sim bench-sim-smoke \
	bench-scale bench-scale-smoke bench-defrag bench-defrag-smoke \
	bench-watch bench-watch-smoke bench-serve bench-serve-smoke \
	bench-diff clean

all: build

build:
	dune build @all

# Gate on ocamlformat being installed: CI images without it still get
# a meaningful `make check` (build + tests).
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt --auto-promote; \
	else \
	  echo "ocamlformat not installed; skipping format check"; \
	fi

test:
	dune runtest

# The one-stop pre-commit gate.  bench-place-smoke keeps the indexed
# placement engine honest (it must never regress below the naive scan)
# without the cost of the full 1k-node run; bench-faults-smoke asserts
# zero lost tasks under a single-crash fault plan; bench-trace-smoke
# asserts the lifecycle-trace export is valid JSON whose event counts
# close against the run's own accounting; bench-sched-smoke asserts the
# autoscaled serving loop never regresses the static p99 and that every
# request is accounted for; bench-sim-smoke asserts the timing-wheel
# engine is bit-identical to the heap oracle and at least as fast;
# bench-scale-smoke asserts the indexed serving hot paths are
# bit-identical to the pre-index linear shapes, that the fair-share
# pool preserves a calm tenant's SLO-met completions under a bursty
# neighbour, and that the incremental router/batcher counters are
# allocation-free; bench-defrag-smoke asserts the defragmenter lowers
# the fragmentation index and raises large-deployment admission on a
# churn trace, that the bitstream cache hits, and that priority
# preemption does not lower the priority tenant's goodput;
# bench-watch-smoke asserts telemetry leaves every simulated result
# bit-identical, detects each injected outage within two scrape
# intervals with zero false positives on the fault-free run, and that
# a burn-rate rule fires on a tenant burning its SLO budget;
# bench-serve-smoke asserts the front door round-trips recorded traces
# bit-exactly, that a neutral front door and a zero-cost mapping cache
# leave results bit-identical, that the cache clears 90% hits on a
# repeat-heavy trace, that session accounting closes, and that the
# predictive autoscaler beats the reactive one on the same replayed
# flash-crowd trace (with a determinism re-run); bench-diff guards the
# committed smoke artifacts against order-of-magnitude throughput
# cliffs.
check: build fmt test bench-place-smoke bench-faults-smoke bench-trace-smoke \
	bench-sched-smoke bench-sim-smoke bench-scale-smoke bench-defrag-smoke \
	bench-watch-smoke bench-serve-smoke bench-diff

# Regenerates every table/figure and leaves BENCH_obs.json (the
# observability registry of the run) next to the console output.
bench:
	dune exec bench/main.exe

# Placement-churn microbenchmark (paper §2.3 system controller at
# fleet scale): 1k-node heterogeneous cluster, asserts the indexed
# engine's deploy throughput is ≥5× the naive snapshot scan.
bench-place:
	dune exec bench/place.exe -- --nodes 1000 --ops 4000 --assert-speedup 5

# Small, fast configuration for `make check`: same differential churn,
# only asserts the index is not slower than the scan.
bench-place-smoke:
	dune exec bench/place.exe -- --nodes 64 --ops 400 \
	  --out BENCH_place_smoke.json --assert-speedup 1

# Availability sweep under injected node faults; writes
# BENCH_faults.json (per-scenario completed/retried/rejected/lost and
# fault-free throughput).
bench-faults:
	dune exec bench/main.exe -- faults

# Fast single-crash variant for `make check`: exits non-zero if any
# task is lost or the availability accounting does not add up.
bench-faults-smoke:
	dune exec bench/main.exe -- faults-smoke

# Faulted run with lifecycle tracing on: writes BENCH_trace.json (a
# Chrome/Perfetto trace) and asserts tracing does not perturb the
# simulated results.
bench-trace:
	dune exec bench/main.exe -- trace

# Fast variant for `make check`: valid-JSON export + closed lifecycle
# accounting (arrive/complete/reject/retry deltas match the run).
bench-trace-smoke:
	dune exec bench/main.exe -- trace-smoke

# Elastic serving comparison on a bursty trace: static provisioning vs
# the closed autoscaler loop; writes BENCH_sched.json (p99 sojourn,
# goodput, sheds and scaling activity per mode).
bench-sched:
	dune exec bench/main.exe -- sched

# Fast variant for `make check`: accounting closes, the run is
# deterministic, and the autoscaled p99 does not exceed the static p99.
bench-sched-smoke:
	dune exec bench/main.exe -- sched-smoke

# Discrete-event engine microbenchmark: 1M events through the heap and
# timing-wheel engines behind the same Sim interface; asserts the order
# digests are bit-identical and the wheel is ≥10× faster, and writes
# BENCH_sim.json (events/s, allocation words/event, gap percentiles).
bench-sim:
	dune exec bench/sim.exe -- --assert-speedup 10

# Fast variant for `make check`: same bit-identity assertion, only
# requires the wheel not be slower than the heap (wall-clock ratios on
# a shared machine are too noisy for a tight bound at this size).
bench-sim-smoke:
	dune exec bench/sim.exe -- --events 100000 --pending 20000 --reps 2 \
	  --out BENCH_sim_smoke.json --assert-speedup 1

# Datacenter-scale serving benchmark: ~1M tasks from three tenants at
# 10k nodes under both data shapes (bit-identity + ≥5× serving-loop
# throughput for the indexed hot paths), an indexed-only 100k-node run
# (sub-quadratic scaling), and the calm/bursty tenant-isolation pair
# behind the weighted fair-share pool; writes BENCH_scale.json.
bench-scale:
	dune exec bench/scale.exe -- --assert-speedup 5 --out BENCH_scale.json

# Fast variant for `make check`: 1k nodes / 24k tasks; asserts shape
# bit-identity, the tenant-isolation invariant, and allocation-free
# counters — no wall-clock floor at this size.
bench-scale-smoke:
	dune exec bench/scale.exe -- --smoke --out BENCH_scale_smoke.json

# Defragmentation / preemption / bitstream-cache benchmark: a one-week
# deploy/undeploy churn trace with and without the background
# defragmenter (fragmentation index + whole-device admission rate +
# cache hit rate), plus a contended serving trace comparing priority
# preemption against shed-only; writes BENCH_defrag.json.  All
# acceptance inequalities are asserted, plus a determinism re-run.
bench-defrag:
	dune exec bench/defrag.exe -- --out BENCH_defrag.json

# Fast variant for `make check`: 2k churn steps / 30 tasks per tenant,
# same assertions.
bench-defrag-smoke:
	dune exec bench/defrag.exe -- --smoke --out BENCH_defrag_smoke.json

# Streaming-telemetry benchmark: alert detection latency on injected
# outage windows, false positives on a fault-free trace, burn-rate
# firing on an overloaded tenant, and the scrape loop's wall overhead
# on a dense serving workload (asserted ≤5%, median of paired off/on
# runs); writes BENCH_watch.json.
bench-watch:
	dune exec bench/watch.exe -- --out BENCH_watch.json

# Fast variant for `make check`: same bit-identity, detection-latency
# and false-positive assertions; reports overhead without asserting it
# (short runs are wall-clock noise).
bench-watch-smoke:
	dune exec bench/watch.exe -- --smoke --out BENCH_watch_smoke.json

# Serving front-door benchmark: trace record/replay round-trip
# fidelity, mapping-cache hit rate and latency economics, session
# stickiness/expiry accounting, and reactive-vs-predictive
# autoscaling on one replayed flash-crowd trace; writes
# BENCH_serve.json.  All acceptance inequalities are asserted, plus a
# determinism re-run.
bench-serve:
	dune exec bench/serve.exe -- --out BENCH_serve.json

# Fast variant for `make check`: 400 tasks, same assertions.
bench-serve-smoke:
	dune exec bench/serve.exe -- --smoke --out BENCH_serve_smoke.json

# Regression guard: regenerate the cheap smoke artifacts under /tmp
# and compare their throughput-like keys against the committed ones.
# Wall-clock keys (deploys/s, events/s, tasks/s) get a 75% budget —
# short runs on a shared machine, especially back-to-back inside
# `make check`, routinely swing 2×; the guard is for
# order-of-magnitude cliffs (an accidentally quadratic path), not
# percent-level noise.  The serve key is goodput on the *sim* clock,
# fully deterministic, so it gets a tight 1% budget.
bench-diff: build
	dune exec bench/place.exe -- --nodes 64 --ops 400 \
	  --out /tmp/BENCH_place_smoke.json --assert-speedup 1
	dune exec bench/sim.exe -- --events 100000 --pending 20000 --reps 2 \
	  --out /tmp/BENCH_sim_smoke.json --assert-speedup 1
	dune exec bench/scale.exe -- --smoke --out /tmp/BENCH_scale_smoke.json
	dune exec bench/serve.exe -- --smoke --out /tmp/BENCH_serve_smoke.json
	dune exec bench/benchdiff.exe -- --ref BENCH_place_smoke.json \
	  --new /tmp/BENCH_place_smoke.json --key indexed.deploys_per_s \
	  --max-regress 75
	dune exec bench/benchdiff.exe -- --ref BENCH_sim_smoke.json \
	  --new /tmp/BENCH_sim_smoke.json --key wheel.events_per_s \
	  --max-regress 75
	dune exec bench/benchdiff.exe -- --ref BENCH_scale_smoke.json \
	  --new /tmp/BENCH_scale_smoke.json --key indexed.tasks_per_s \
	  --max-regress 75
	dune exec bench/benchdiff.exe -- --ref BENCH_serve_smoke.json \
	  --new /tmp/BENCH_serve_smoke.json --key predictive.goodput_per_s \
	  --max-regress 1

clean:
	dune clean
