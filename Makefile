# Convenience entry points; everything is plain dune underneath.

.PHONY: all build check fmt test bench clean

all: build

build:
	dune build @all

# Gate on ocamlformat being installed: CI images without it still get
# a meaningful `make check` (build + tests).
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt --auto-promote; \
	else \
	  echo "ocamlformat not installed; skipping format check"; \
	fi

test:
	dune runtest

# The one-stop pre-commit gate.
check: build fmt test

# Regenerates every table/figure and leaves BENCH_obs.json (the
# observability registry of the run) next to the console output.
bench:
	dune exec bench/main.exe

clean:
	dune clean
