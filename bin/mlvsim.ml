(* mlvsim — system-level simulation driver.

   Plays a Table-1 workload set against the heterogeneous cluster
   under a chosen runtime policy and reports throughput and latency
   statistics. *)

open Cmdliner
module Runtime = Mlv_core.Runtime
module Genset = Mlv_workload.Genset
module Sysim = Mlv_sysim.Sysim
module Fault_plan = Mlv_cluster.Fault_plan

let policy_of_string = function
  | "greedy" -> Ok Runtime.greedy
  | "restricted" -> Ok Runtime.restricted
  | "baseline" -> Ok Runtime.baseline
  | "first-fit" -> Ok Runtime.first_fit
  | s -> Error (`Msg (Printf.sprintf "unknown policy %s" s))

let policy_conv =
  Arg.conv
    ( (fun s -> policy_of_string s),
      fun fmt p -> Format.pp_print_string fmt p.Runtime.policy_name )

let report ?faults set composition policy tasks seed (r : Sysim.result) =
  Printf.printf "workload set %d (%s), policy %s, %d tasks, seed %d\n" set
    (Genset.composition_name composition)
    policy.Runtime.policy_name tasks seed;
  Printf.printf "  completed:       %d\n" r.Sysim.completed;
  Printf.printf "  makespan:        %.1f ms\n" (r.Sysim.makespan_us /. 1000.0);
  Printf.printf "  throughput:      %.2f tasks/s\n" r.Sysim.throughput_per_s;
  (match faults with
  | None -> ()
  | Some (f : Sysim.fault_config) ->
    Printf.printf "  fault plan:      %s (max %d retries/task)\n"
      (Fault_plan.to_string f.Sysim.plan)
      f.Sysim.max_retries;
    Printf.printf "  retried:         %d\n" r.Sysim.retried;
    Printf.printf "  rejected:        %d\n" r.Sysim.rejected;
    Printf.printf "  lost:            %d\n" r.Sysim.lost;
    Printf.printf "  downtime:        %.1f ms\n" (r.Sysim.fault_downtime_us /. 1000.0);
    Printf.printf "  fault-free tput: %.2f tasks/s\n" r.Sysim.fault_free_throughput_per_s);
  Printf.printf "  mean latency:    %.1f ms\n" (r.Sysim.mean_latency_us /. 1000.0);
  Printf.printf "  mean wait:       %.1f ms\n" (r.Sysim.mean_wait_us /. 1000.0);
  Printf.printf "  mean service:    %.1f ms\n" (r.Sysim.mean_service_us /. 1000.0);
  Printf.printf "  peak queue:      %d\n" r.Sysim.peak_queue;
  Printf.printf "  SLO misses:      %d of %d\n" r.Sysim.slo_misses r.Sysim.completed;
  (match Mlv_workload.Metrics.summarize (List.map (fun l -> l /. 1000.0) r.Sysim.latencies_us) with
  | Some s ->
    Format.printf "  latency (ms):    %a@." (Mlv_workload.Metrics.pp_summary ~unit_name:"ms") s
  | None -> ())

let run set policy tasks seed interarrival repeats compare fault_plan max_retries
    metrics_out trace_out =
  let faults =
    match fault_plan with
    | None -> Ok None
    | Some s -> (
      match Fault_plan.of_string s with
      | Ok plan -> Ok (Some { Sysim.plan; max_retries })
      | Error e -> Error e)
  in
  match faults with
  | Error e ->
    Printf.eprintf "bad --fault-plan: %s\n" e;
    1
  | Ok _ when set < 1 || set > 10 ->
    prerr_endline "workload set must be 1..10";
    1
  | Ok faults ->
    if trace_out <> None then Mlv_obs.Obs.Trace.set_enabled true;
    Printf.printf "building the mapping database (10 accelerator instances)...\n%!";
    let registry = Sysim.build_registry () in
    let composition = Genset.table1.(set - 1) in
    let run_one policy =
      let cfg =
        {
          (Sysim.default_config ~policy ~composition) with
          Sysim.tasks;
          mean_interarrival_us = interarrival;
          seed;
          repeats_per_task = repeats;
          faults;
        }
      in
      report ?faults set composition policy tasks seed (Sysim.run ~registry cfg)
    in
    if compare then
      List.iter run_one [ Runtime.baseline; Runtime.restricted; Runtime.greedy ]
    else run_one policy;
    let wrote_metrics =
      match metrics_out with
      | None -> 0
      | Some path -> (
        try
          Mlv_obs.Obs.write_json path;
          Printf.printf "metrics written to %s\n" path;
          0
        with Sys_error e ->
          Printf.eprintf "cannot write metrics: %s\n" e;
          1)
    in
    let wrote_trace =
      match trace_out with
      | None -> 0
      | Some path -> (
        try
          Mlv_obs.Obs.Trace.write_chrome_json path;
          Printf.printf "trace written to %s (%d events, %d dropped)\n" path
            (Mlv_obs.Obs.Trace.recorded ())
            (Mlv_obs.Obs.Trace.dropped ());
          0
        with Sys_error e ->
          Printf.eprintf "cannot write trace: %s\n" e;
          1)
    in
    max wrote_metrics wrote_trace

let set_arg =
  Arg.(value & opt int 7 & info [ "set" ] ~docv:"N" ~doc:"Table-1 workload set (1-10)")

let policy_arg =
  Arg.(
    value
    & opt policy_conv Runtime.greedy
    & info [ "policy" ] ~docv:"POLICY"
        ~doc:"Runtime policy: greedy, restricted, baseline or first-fit")

let tasks_arg = Arg.(value & opt int 120 & info [ "tasks" ] ~docv:"N" ~doc:"Task count")
let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"PRNG seed")

let interarrival_arg =
  Arg.(
    value & opt float 200.0
    & info [ "interarrival" ] ~docv:"US" ~doc:"Mean inter-arrival time (microseconds)")

let repeats_arg =
  Arg.(
    value & opt int 20
    & info [ "repeats" ] ~docv:"N" ~doc:"Inferences served per deployment")

let compare_arg =
  Arg.(
    value & flag
    & info [ "compare" ] ~doc:"Run baseline, restricted and greedy policies side by side")

let fault_plan_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "fault-plan" ] ~docv:"PLAN"
        ~doc:
          "Inject faults during the run: comma-separated \
           crash@<time_us>:<node>, restore@<time_us>:<node> and \
           degrade@<time_us>:<added_latency_us> events (e.g. \
           'crash@8000:1,restore@20000:1')")

let max_retries_arg =
  Arg.(
    value & opt int 3
    & info [ "max-retries" ] ~docv:"N"
        ~doc:"Crash interruptions a task survives before rejection")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write the observability registry (counters, histograms, spans) as \
           JSON to $(docv) after the run")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Enable per-task lifecycle tracing and write a \
           Chrome-trace-event JSON to $(docv) after the run (load it \
           in ui.perfetto.dev or chrome://tracing)")

let () =
  let info =
    Cmd.info "mlvsim" ~version:"1.0.0"
      ~doc:"Workload simulation on the virtualized heterogeneous FPGA cluster"
  in
  let term =
    Term.(
      const run $ set_arg $ policy_arg $ tasks_arg $ seed_arg $ interarrival_arg
      $ repeats_arg $ compare_arg $ fault_plan_arg $ max_retries_arg
      $ metrics_out_arg $ trace_out_arg)
  in
  exit (Cmd.eval' (Cmd.v info term))
