(* mlvsim — system-level simulation driver.

   Plays a Table-1 workload set against the heterogeneous cluster
   under a chosen runtime policy and reports throughput and latency
   statistics. *)

open Cmdliner
module Runtime = Mlv_core.Runtime
module Genset = Mlv_workload.Genset
module Sysim = Mlv_sysim.Sysim
module Fault_plan = Mlv_cluster.Fault_plan
module Slo = Mlv_sched.Slo
module Batcher = Mlv_sched.Batcher
module Autoscaler = Mlv_sched.Autoscaler

(* --burst ON:OFF:ON_IA:OFF_IA, all microseconds *)
let burst_of_string s =
  match String.split_on_char ':' s |> List.map float_of_string_opt with
  | [ Some on_us; Some off_us; Some on_mean_us; Some off_mean_us ]
    when on_us > 0.0 && off_us > 0.0 && on_mean_us > 0.0 && off_mean_us > 0.0 ->
    Ok (Genset.Bursty { on_us; off_us; on_mean_us; off_mean_us })
  | _ -> Error "expected ON_US:OFF_US:ON_MEAN_US:OFF_MEAN_US, all positive"

(* --diurnal PERIOD:TROUGH:PEAK[:FSTART:FLEN:FMEAN], all microseconds *)
let diurnal_of_string s =
  let fields = String.split_on_char ':' s |> List.map float_of_string_opt in
  match fields with
  | [ Some period_us; Some trough_mean_us; Some peak_mean_us ]
    when period_us > 0.0 && peak_mean_us > 0.0 && trough_mean_us >= peak_mean_us
    ->
    Ok
      (Genset.Diurnal
         {
           period_us;
           trough_mean_us;
           peak_mean_us;
           flash_start_us = 0.0;
           flash_us = 0.0;
           flash_mean_us = 0.0;
         })
  | [ Some period_us;
      Some trough_mean_us;
      Some peak_mean_us;
      Some flash_start_us;
      Some flash_us;
      Some flash_mean_us;
    ]
    when period_us > 0.0 && peak_mean_us > 0.0
         && trough_mean_us >= peak_mean_us
         && flash_start_us >= 0.0 && flash_us > 0.0 && flash_mean_us > 0.0
         && flash_start_us +. flash_us <= period_us ->
    Ok
      (Genset.Diurnal
         {
           period_us;
           trough_mean_us;
           peak_mean_us;
           flash_start_us;
           flash_us;
           flash_mean_us;
         })
  | _ ->
    Error
      "expected PERIOD:TROUGH:PEAK[:FSTART:FLEN:FMEAN] with PERIOD > 0, \
       TROUGH >= PEAK > 0, and the flash window inside the period"

(* --mapping-cache N[:COMPILE_US] *)
let mapcache_of_string s =
  match String.split_on_char ':' s with
  | [ n ] -> (
    match int_of_string_opt n with
    | Some capacity when capacity > 0 -> Ok (capacity, 500.0)
    | _ -> Error "expected N[:COMPILE_US] with N > 0")
  | [ n; cost ] -> (
    match (int_of_string_opt n, float_of_string_opt cost) with
    | Some capacity, Some compile_us when capacity > 0 && compile_us >= 0.0 ->
      Ok (capacity, compile_us)
    | _ -> Error "expected N[:COMPILE_US] with N > 0 and COMPILE_US >= 0")
  | _ -> Error "expected N[:COMPILE_US]"

(* --batch N[:LINGER_US] *)
let batch_of_string s =
  match String.split_on_char ':' s with
  | [ n ] -> (
    match int_of_string_opt n with
    | Some max_batch when max_batch > 0 -> Ok (Batcher.config ~max_batch ())
    | _ -> Error "expected N[:LINGER_US] with N > 0")
  | [ n; linger ] -> (
    match (int_of_string_opt n, float_of_string_opt linger) with
    | Some max_batch, Some max_linger_us when max_batch > 0 ->
      Ok (Batcher.config ~max_batch ~max_linger_us ())
    | _ -> Error "expected N[:LINGER_US] with N > 0")
  | _ -> Error "expected N[:LINGER_US]"

(* --slo DEADLINE_US:RATE_PER_S:BURST, applied to every model class
   with priority by size (small models shed last) *)
let slo_of_string s =
  match String.split_on_char ':' s with
  | [ deadline; rate; burst ] -> (
    match
      (float_of_string_opt deadline, float_of_string_opt rate, int_of_string_opt burst)
    with
    | Some deadline_us, Some rate_per_s, Some burst -> (
      try
        Ok
          (List.mapi
             (fun i name ->
               Slo.class_spec ~priority:(2 - i) ~deadline_us ~rate_per_s ~burst
                 name)
             [ "S"; "M"; "L" ])
      with Invalid_argument e -> Error e)
    | _ -> Error "expected DEADLINE_US:RATE_PER_S:BURST")
  | _ -> Error "expected DEADLINE_US:RATE_PER_S:BURST"

let policy_of_string = function
  | "greedy" -> Ok Runtime.greedy
  | "restricted" -> Ok Runtime.restricted
  | "baseline" -> Ok Runtime.baseline
  | "first-fit" -> Ok Runtime.first_fit
  | s -> Error (`Msg (Printf.sprintf "unknown policy %s" s))

let policy_conv =
  Arg.conv
    ( (fun s -> policy_of_string s),
      fun fmt p -> Format.pp_print_string fmt p.Runtime.policy_name )

let report ?faults ?serving ?frontend set composition policy tasks seed
    (r : Sysim.result) =
  Printf.printf "workload set %d (%s), policy %s, %d tasks, seed %d\n" set
    (Genset.composition_name composition)
    policy.Runtime.policy_name tasks seed;
  Printf.printf "  completed:       %d\n" r.Sysim.completed;
  Printf.printf "  makespan:        %.1f ms\n" (r.Sysim.makespan_us /. 1000.0);
  Printf.printf "  throughput:      %.2f tasks/s\n" r.Sysim.throughput_per_s;
  (match faults with
  | None -> ()
  | Some (f : Sysim.fault_config) ->
    Printf.printf "  fault plan:      %s (max %d retries/task)\n"
      (Fault_plan.to_string f.Sysim.plan)
      f.Sysim.max_retries;
    Printf.printf "  retried:         %d\n" r.Sysim.retried;
    Printf.printf "  rejected:        %d\n" r.Sysim.rejected;
    Printf.printf "  lost:            %d\n" r.Sysim.lost;
    Printf.printf "  downtime:        %.1f ms\n" (r.Sysim.fault_downtime_us /. 1000.0);
    Printf.printf "  fault-free tput: %.2f tasks/s\n" r.Sysim.fault_free_throughput_per_s);
  (match serving with
  | None -> ()
  | Some (s : Sysim.serving) ->
    Printf.printf "  serving:         batch<=%d linger=%.0fus autoscale=%s\n"
      s.Sysim.batch.Batcher.max_batch s.Sysim.batch.Batcher.max_linger_us
      (if s.Sysim.autoscale = None then "off" else "on");
    Printf.printf "  shed:            %d\n" r.Sysim.shed;
    Printf.printf "  rejected:        %d\n" r.Sysim.rejected;
    Printf.printf "  batches:         %d\n" r.Sysim.batches;
    Printf.printf "  scale up/down:   %d/%d\n" r.Sysim.scale_ups r.Sysim.scale_downs;
    if s.Sysim.preempt then
      Printf.printf "  preempted:       %d tasks (%d evictions)\n"
        r.Sysim.preempted r.Sysim.preemptions;
    (match s.Sysim.defrag with
    | Some _ -> Printf.printf "  defrag moves:    %d\n" r.Sysim.defrag_moves
    | None -> ());
    (match frontend with
    | None -> ()
    | Some (f : Sysim.frontend) ->
      (match f.Sysim.sessions with
      | None -> ()
      | Some _ ->
        Printf.printf
          "  sessions:        %d opened, %d expired, sticky %d/%d, held %d\n"
          r.Sysim.sessions_opened r.Sysim.sessions_expired r.Sysim.sticky_hits
          r.Sysim.sticky_misses r.Sysim.held_results);
      (match f.Sysim.mapping_cache with
      | None -> ()
      | Some _ ->
        let lookups = r.Sysim.mapcache_hits + r.Sysim.mapcache_misses in
        Printf.printf
          "  mapping cache:   %d hits / %d misses (%.0f%% hit rate), %d \
           evictions\n"
          r.Sysim.mapcache_hits r.Sysim.mapcache_misses
          (if lookups = 0 then 0.0
           else 100.0 *. float_of_int r.Sysim.mapcache_hits /. float_of_int lookups)
          r.Sysim.mapcache_evictions);
      if f.Sysim.predict <> None then
        Printf.printf "  autoscaler:      predictive (Holt-Winters forecast)\n");
    Printf.printf "  goodput:         %.2f tasks/s\n" r.Sysim.goodput_per_s;
    Printf.printf "  p50/p95/p99:     %.1f / %.1f / %.1f ms\n"
      (r.Sysim.p50_latency_us /. 1000.0)
      (r.Sysim.p95_latency_us /. 1000.0)
      (r.Sysim.p99_latency_us /. 1000.0));
  Printf.printf "  mean latency:    %.1f ms\n" (r.Sysim.mean_latency_us /. 1000.0);
  Printf.printf "  mean wait:       %.1f ms\n" (r.Sysim.mean_wait_us /. 1000.0);
  Printf.printf "  mean service:    %.1f ms\n" (r.Sysim.mean_service_us /. 1000.0);
  Printf.printf "  peak queue:      %d\n" r.Sysim.peak_queue;
  Printf.printf "  SLO misses:      %d of %d\n" r.Sysim.slo_misses r.Sysim.completed;
  List.iter
    (fun (t : Sysim.tenant_stats) ->
      Printf.printf
        "  tenant %-8s arrived %d shed %d completed %d goodput %.2f/s p99 %.1f ms\n"
        t.Sysim.tn_name t.Sysim.tn_arrived t.Sysim.tn_shed t.Sysim.tn_completed
        t.Sysim.tn_goodput_per_s
        (t.Sysim.tn_p99_latency_us /. 1000.0))
    r.Sysim.per_tenant;
  if r.Sysim.cache_hits + r.Sysim.cache_misses > 0 then
    Printf.printf "  bitstream cache: %d hits / %d misses (%.0f%% hit rate)\n"
      r.Sysim.cache_hits r.Sysim.cache_misses
      (100.0
      *. float_of_int r.Sysim.cache_hits
      /. float_of_int (r.Sysim.cache_hits + r.Sysim.cache_misses));
  if r.Sysim.scrapes > 0 then begin
    Printf.printf "  scrapes:         %d\n" r.Sysim.scrapes;
    Printf.printf "  alert events:    %d\n" (List.length r.Sysim.alert_transitions);
    List.iter
      (fun (tr : Mlv_obs.Alert.transition) ->
        Printf.printf "    %12.1f us  %-20s %-8s value=%.4f\n"
          tr.Mlv_obs.Alert.at_us tr.Mlv_obs.Alert.rule_name
          (Mlv_obs.Alert.event_name tr.Mlv_obs.Alert.event)
          tr.Mlv_obs.Alert.value)
      r.Sysim.alert_transitions
  end;
  (match Mlv_workload.Metrics.summarize (List.map (fun l -> l /. 1000.0) r.Sysim.latencies_us) with
  | Some s ->
    Format.printf "  latency (ms):    %a@." (Mlv_workload.Metrics.pp_summary ~unit_name:"ms") s
  | None -> ())

let run set policy tasks seed interarrival repeats compare fault_plan max_retries
    burst diurnal batch autoscale slo tenants preempt defrag sessions
    mapping_cache predict replay record bitstream_cache engine metrics_out
    trace_out scrape_interval alerts series_out prom_out =
  let ( let* ) r f = Result.bind r f in
  let parsed =
    let* faults =
      match fault_plan with
      | None -> Ok None
      | Some s -> (
        match Fault_plan.of_string s with
        | Ok plan -> Ok (Some { Sysim.plan; max_retries })
        | Error e -> Error ("bad --fault-plan: " ^ e))
    in
    let* arrival =
      match (burst, diurnal) with
      | Some _, Some _ -> Error "--burst and --diurnal are mutually exclusive"
      | Some s, None -> (
        match burst_of_string s with
        | Ok a -> Ok (Some a)
        | Error e -> Error ("bad --burst: " ^ e))
      | None, Some s -> (
        match diurnal_of_string s with
        | Ok a -> Ok (Some a)
        | Error e -> Error ("bad --diurnal: " ^ e))
      | None, None -> Ok None
    in
    let* batch =
      match batch with
      | None -> Ok None
      | Some s -> (
        match batch_of_string s with
        | Ok b -> Ok (Some b)
        | Error e -> Error ("bad --batch: " ^ e))
    in
    let* classes =
      match slo with
      | None -> Ok None
      | Some s -> (
        match slo_of_string s with
        | Ok cs -> Ok (Some cs)
        | Error e -> Error ("bad --slo: " ^ e))
    in
    let* frontend_sessions =
      match sessions with
      | None -> Ok None
      | Some us when us > 0.0 ->
        Ok (Some (Mlv_serve.Session.config ~idle_timeout_us:us ()))
      | Some _ -> Error "--sessions idle timeout must be positive"
    in
    let* frontend_cache =
      match mapping_cache with
      | None -> Ok None
      | Some s -> (
        match mapcache_of_string s with
        | Ok mc -> Ok (Some mc)
        | Error e -> Error ("bad --mapping-cache: " ^ e))
    in
    let* () =
      if predict && not autoscale then
        Error "--predict requires --autoscale (it replaces its control law)"
      else Ok ()
    in
    let frontend =
      if frontend_sessions = None && frontend_cache = None && not predict then
        None
      else
        Some
          {
            Sysim.sessions = frontend_sessions;
            mapping_cache = frontend_cache;
            predict = (if predict then Some Autoscaler.default_predict else None);
          }
    in
    (* any serving knob switches the engine to closed-loop mode *)
    let serving =
      if batch = None && classes = None && (not autoscale) && (not preempt)
         && not defrag && frontend = None
      then None
      else
        (* With --tenants, the --slo token bucket also sizes a
           weighted fair-share pool split equally across the tenants
           (each tenant refills at rate/N). *)
        let tenant_pool =
          match classes with
          | Some (spec :: _) when tenants > 0 ->
            Some (spec.Slo.rate_per_s, spec.Slo.burst)
          | _ -> None
        in
        Some
          {
            Sysim.classes = Option.value classes ~default:[];
            batch = Option.value batch ~default:(Batcher.config ());
            autoscale = (if autoscale then Some Autoscaler.default else None);
            tenant_pool;
            preempt;
            defrag = (if defrag then Some Mlv_core.Defrag.default else None);
          }
    in
    let* rules =
      match alerts with
      | None -> Ok []
      | Some s -> (
        match Mlv_obs.Alert.of_string s with
        | Ok rs -> Ok rs
        | Error e -> Error ("bad --alerts: " ^ e))
    in
    (* --alerts alone enables telemetry at the default cadence;
       --scrape-interval alone publishes series with no rules. *)
    let* telemetry =
      match (scrape_interval, rules) with
      | None, [] -> Ok None
      | Some iv, _ when not (iv > 0.0) ->
        Error "--scrape-interval must be positive"
      | iv, rules ->
        Ok
          (Some
             {
               Sysim.default_telemetry with
               Sysim.rules;
               scrape_interval_us =
                 Option.value iv
                   ~default:Sysim.default_telemetry.Sysim.scrape_interval_us;
             })
    in
    if serving <> None && faults <> None then
      Error
        "serving flags (--batch/--slo/--autoscale/--preempt/--defrag) do not \
         compose with --fault-plan"
    else if tenants < 0 then Error "--tenants must be non-negative"
    else if tenants > tasks then Error "--tenants cannot exceed --tasks"
    else if preempt && tenants < 2 then
      Error "--preempt needs --tenants >= 2 (the first tenant gets priority)"
    else if bitstream_cache < 0 then
      Error "--bitstream-cache must be non-negative"
    else if replay <> None && record <> None then
      Error "--replay and --record are mutually exclusive"
    else if replay <> None && tenants > 0 then
      Error
        "--replay carries its own tenant names; it does not compose with \
         --tenants"
    else if frontend <> None && faults <> None then
      Error
        "front-door flags (--sessions/--mapping-cache/--predict) do not \
         compose with --fault-plan"
    else Ok (faults, arrival, serving, telemetry, frontend)
  in
  match parsed with
  | Error e ->
    prerr_endline e;
    1
  | Ok _ when set < 1 || set > 10 ->
    prerr_endline "workload set must be 1..10";
    1
  | Ok (faults, arrival, serving, telemetry, frontend) ->
    Mlv_cluster.Sim.set_default_engine engine;
    if trace_out <> None then Mlv_obs.Obs.Trace.set_enabled true;
    Printf.printf "building the mapping database (10 accelerator instances)...\n%!";
    let registry = Sysim.build_registry () in
    let composition = Genset.table1.(set - 1) in
    let tenant_loads =
      if tenants = 0 then []
      else
        (* Each tenant runs the stream the flags describe; with the
           default exponential process the per-tenant mean is scaled by
           N so the merged stream keeps the requested rate. *)
        let tenant_arrival =
          match arrival with
          | Some a -> a
          | None ->
            Genset.Exponential { mean_us = interarrival *. float_of_int tenants }
        in
        List.init tenants (fun i ->
            let extra = if i < tasks mod tenants then 1 else 0 in
            (* With --preempt the first tenant is the SLO-class one:
               its batches may evict the others' replicas. *)
            let priority = if preempt && i = 0 then 1 else 0 in
            Genset.tenant_load
              ~tasks:((tasks / tenants) + extra)
              ~arrival:tenant_arrival ~priority
              (Printf.sprintf "t%d" (i + 1)))
    in
    let mk_cfg policy replay_tasks =
      {
        (Sysim.default_config ~policy ~composition) with
        Sysim.tasks;
        mean_interarrival_us = interarrival;
        arrival;
        seed;
        repeats_per_task = repeats;
        faults;
        serving;
        tenants = tenant_loads;
        bitstream_cache =
          (if bitstream_cache > 0 then Some bitstream_cache else None);
        telemetry;
        frontend;
        replay = replay_tasks;
      }
    in
    (* --replay drives the run from a recorded trace; --record captures
       the stream this config would generate, then replays it so the
       run exercises the very trace it wrote. *)
    let replayed =
      match (replay, record) with
      | Some path, _ -> (
        match Mlv_serve.Trace_file.read path with
        | Ok ts -> Ok (Some ts)
        | Error e -> Error (Printf.sprintf "cannot replay %s: %s" path e))
      | None, Some path -> (
        let ts = Sysim.workload (mk_cfg policy None) in
        try
          Mlv_serve.Trace_file.write path ts;
          Printf.printf "trace recorded to %s (%d tasks)\n" path
            (List.length ts);
          Ok (Some ts)
        with Sys_error e -> Error ("cannot record trace: " ^ e))
      | None, None -> Ok None
    in
    (match replayed with
    | Error e ->
      prerr_endline e;
      1
    | Ok replay_tasks ->
    let shown_tasks =
      match replay_tasks with Some ts -> List.length ts | None -> tasks
    in
    let run_one policy =
      report ?faults ?serving ?frontend set composition policy shown_tasks seed
        (Sysim.run ~registry (mk_cfg policy replay_tasks))
    in
    if compare then
      List.iter run_one [ Runtime.baseline; Runtime.restricted; Runtime.greedy ]
    else run_one policy;
    let wrote_metrics =
      match metrics_out with
      | None -> 0
      | Some path -> (
        try
          Mlv_obs.Obs.write_json path;
          Printf.printf "metrics written to %s\n" path;
          0
        with Sys_error e ->
          Printf.eprintf "cannot write metrics: %s\n" e;
          1)
    in
    let wrote_trace =
      match trace_out with
      | None -> 0
      | Some path -> (
        try
          Mlv_obs.Obs.Trace.write_chrome_json path;
          Printf.printf "trace written to %s (%d events, %d dropped)\n" path
            (Mlv_obs.Obs.Trace.recorded ())
            (Mlv_obs.Obs.Trace.dropped ());
          0
        with Sys_error e ->
          Printf.eprintf "cannot write trace: %s\n" e;
          1)
    in
    let wrote_series =
      match series_out with
      | None -> 0
      | Some path -> (
        try
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () ->
              output_string oc
                (Mlv_obs.Obs.Json.to_string (Mlv_obs.Series.registry_json ()));
              output_char oc '\n');
          Printf.printf "series written to %s\n" path;
          0
        with Sys_error e ->
          Printf.eprintf "cannot write series: %s\n" e;
          1)
    in
    let wrote_prom =
      match prom_out with
      | None -> 0
      | Some path -> (
        try
          Mlv_obs.Prometheus.write path;
          Printf.printf "prometheus exposition written to %s\n" path;
          0
        with Sys_error e ->
          Printf.eprintf "cannot write prometheus exposition: %s\n" e;
          1)
    in
    max (max wrote_metrics wrote_trace) (max wrote_series wrote_prom))

let set_arg =
  Arg.(value & opt int 7 & info [ "set" ] ~docv:"N" ~doc:"Table-1 workload set (1-10)")

let policy_arg =
  Arg.(
    value
    & opt policy_conv Runtime.greedy
    & info [ "policy" ] ~docv:"POLICY"
        ~doc:"Runtime policy: greedy, restricted, baseline or first-fit")

let tasks_arg = Arg.(value & opt int 120 & info [ "tasks" ] ~docv:"N" ~doc:"Task count")
let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"PRNG seed")

let interarrival_arg =
  Arg.(
    value & opt float 200.0
    & info [ "interarrival" ] ~docv:"US" ~doc:"Mean inter-arrival time (microseconds)")

let repeats_arg =
  Arg.(
    value & opt int 20
    & info [ "repeats" ] ~docv:"N" ~doc:"Inferences served per deployment")

let compare_arg =
  Arg.(
    value & flag
    & info [ "compare" ] ~doc:"Run baseline, restricted and greedy policies side by side")

let fault_plan_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "fault-plan" ] ~docv:"PLAN"
        ~doc:
          "Inject faults during the run: comma-separated \
           crash@<time_us>:<node>, restore@<time_us>:<node> and \
           degrade@<time_us>:<added_latency_us> events (e.g. \
           'crash@8000:1,restore@20000:1')")

let max_retries_arg =
  Arg.(
    value & opt int 3
    & info [ "max-retries" ] ~docv:"N"
        ~doc:"Crash interruptions a task survives before rejection")

let burst_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "burst" ] ~docv:"SPEC"
        ~doc:
          "Replace the exponential arrival stream with a two-rate bursty \
           cycle ON_US:OFF_US:ON_MEAN_US:OFF_MEAN_US (e.g. \
           '2000:8000:50:2000' — 2 ms bursts at 50 µs mean spacing, then \
           8 ms of 2 ms spacing)")

let diurnal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "diurnal" ] ~docv:"SPEC"
        ~doc:
          "Replace the exponential arrival stream with a day-night load \
           curve PERIOD_US:TROUGH_MEAN_US:PEAK_MEAN_US, optionally with a \
           flash-crowd window :FSTART_US:FLEN_US:FMEAN_US at a fixed phase \
           of every cycle (e.g. '32000:2000:200:8000:2000:20').  Mutually \
           exclusive with $(b,--burst)")

let batch_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "batch" ] ~docv:"N[:LINGER_US]"
        ~doc:
          "Enable closed-loop serving with dynamic batching: coalesce up \
           to $(docv) same-instance requests, flushing a partial batch \
           after LINGER_US microseconds (default 300)")

let autoscale_arg =
  Arg.(
    value & flag
    & info [ "autoscale" ]
        ~doc:
          "Enable closed-loop serving with the hysteresis autoscaler \
           (scale replica groups from queue depth and observed p99 \
           sojourn)")

let slo_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "slo" ] ~docv:"DEADLINE_US:RATE_PER_S:BURST"
        ~doc:
          "Enable closed-loop serving with an SLO admission gate: every \
           model class gets this deadline and token bucket, with \
           priority by size (small models shed last)")

let tenants_arg =
  Arg.(
    value & opt int 0
    & info [ "tenants" ] ~docv:"N"
        ~doc:
          "Split the workload across $(docv) equal-weight tenants (t1..tN), \
           each drawing its own arrival stream from its own seed split; the \
           report gains per-tenant accounting lines.  Combined with \
           $(b,--slo), the admission gate also enforces a weighted \
           fair-share pool sized by the SLO's rate and burst (each tenant \
           entitled to 1/N of it).  0 (the default) keeps the \
           single-tenant stream")

let preempt_arg =
  Arg.(
    value & flag
    & info [ "preempt" ]
        ~doc:
          "Enable closed-loop serving with priority preemption: the first \
           tenant becomes the SLO-class tenant (priority 1) and, when its \
           batches cannot be placed, evicts a best-effort tenant's replica \
           (migrate-or-undeploy) instead of backlogging.  Requires \
           $(b,--tenants) >= 2")

let defrag_arg =
  Arg.(
    value & flag
    & info [ "defrag" ]
        ~doc:
          "Enable closed-loop serving with background defragmentation: \
           when no group has backlog and the fragmentation index crosses \
           the threshold, idle replicas are force-migrated into denser \
           packings so whole devices free up for large accelerators")

let sessions_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "sessions" ] ~docv:"IDLE_US"
        ~doc:
          "Enable front-door client sessions (one per tenant): sticky \
           replica routing, in-order result delivery, and idle expiry \
           after $(docv) microseconds without a request")

let mapping_cache_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "mapping-cache" ] ~docv:"N[:COMPILE_US]"
        ~doc:
          "Enable the compiled-mapping LRU cache: $(docv) entries keyed by \
           accelerator shape signature; a miss pays COMPILE_US microseconds \
           (default 500) of mapping-compilation latency amortized across \
           its batch, a hit pays nothing")

let predict_arg =
  Arg.(
    value & flag
    & info [ "predict" ]
        ~doc:
          "Replace the reactive autoscaler control law with the predictive \
           one: a Holt-Winters forecast of the admitted arrival rate sizes \
           the replica group ahead of recurring load swings.  Requires \
           $(b,--autoscale)")

let replay_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "replay" ] ~docv:"FILE"
        ~doc:
          "Drive the run from a recorded #mlv-trace file instead of \
           generating arrivals; replay is bit-exact (arrival instants are \
           stored as hex floats)")

let record_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "record" ] ~docv:"FILE"
        ~doc:
          "Write the workload this configuration generates as a #mlv-trace \
           file to $(docv), then run by replaying it (so the run and the \
           recording cannot disagree)")

let bitstream_cache_arg =
  Arg.(
    value & opt int 0
    & info [ "bitstream-cache" ] ~docv:"N"
        ~doc:
          "Install a bitstream staging cache of capacity $(docv) on the \
           runtime: repeat deployments of a cached (accelerator, partition, \
           device-kind) bitstream pay a tenth of the reconfiguration cost.  \
           0 (the default) disables caching")

let engine_conv =
  Arg.conv
    ( (fun s ->
        match Mlv_cluster.Sim.engine_of_string s with
        | Some e -> Ok e
        | None -> Error (`Msg (Printf.sprintf "unknown engine %s" s))),
      fun fmt e -> Format.pp_print_string fmt (Mlv_cluster.Sim.engine_name e) )

let engine_arg =
  Arg.(
    value
    & opt engine_conv (Mlv_cluster.Sim.default_engine ())
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Discrete-event queue engine: $(b,wheel) (hierarchical timing            wheel, the default) or $(b,heap) (binary heap, the            differential oracle).  Both produce bit-identical results;            the wheel is faster at scale")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write the observability registry (counters, histograms, spans) as \
           JSON to $(docv) after the run")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Enable per-task lifecycle tracing and write a \
           Chrome-trace-event JSON to $(docv) after the run (load it \
           in ui.perfetto.dev or chrome://tracing)")

let scrape_interval_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "scrape-interval" ] ~docv:"US"
        ~doc:
          "Enable streaming telemetry: every $(docv) microseconds of \
           simulated time a scrape tick samples throughput, queue depth, \
           node health and windowed p99 sojourn into time-series rings \
           and evaluates any $(b,--alerts) rules.  Unset (the default), \
           no ticks are scheduled and results are bit-identical to \
           telemetry-free builds")

let alerts_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "alerts" ] ~docv:"RULES"
        ~doc:
          "Alert rules evaluated at each scrape tick, ';'-separated: \
           'NAME gt|lt SERIES THRESHOLD WINDOW FOR COOLDOWN' or 'NAME \
           burn BAD TOTAL OBJECTIVE FACTOR LONG SHORT FOR COOLDOWN' \
           (e.g. 'outage gt sysim.nodes_down 0 1 1 0').  Implies \
           telemetry at the default cadence when $(b,--scrape-interval) \
           is unset")

let series_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "series-out" ] ~docv:"FILE"
        ~doc:
          "Write every telemetry time-series (ring contents and totals) \
           as JSON to $(docv) after the run")

let prom_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "prom-out" ] ~docv:"FILE"
        ~doc:
          "Write a Prometheus/OpenMetrics text exposition (counters, \
           histogram summaries, latest series values) to $(docv) after \
           the run")

let () =
  let info =
    Cmd.info "mlvsim" ~version:"1.0.0"
      ~doc:"Workload simulation on the virtualized heterogeneous FPGA cluster"
  in
  let term =
    Term.(
      const run $ set_arg $ policy_arg $ tasks_arg $ seed_arg $ interarrival_arg
      $ repeats_arg $ compare_arg $ fault_plan_arg $ max_retries_arg
      $ burst_arg $ diurnal_arg $ batch_arg $ autoscale_arg $ slo_arg
      $ tenants_arg $ preempt_arg $ defrag_arg $ sessions_arg
      $ mapping_cache_arg $ predict_arg $ replay_arg $ record_arg
      $ bitstream_cache_arg $ engine_arg
      $ metrics_out_arg $ trace_out_arg $ scrape_interval_arg $ alerts_arg
      $ series_out_arg $ prom_out_arg)
  in
  exit (Cmd.eval' (Cmd.v info term))
