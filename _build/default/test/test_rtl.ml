(* Tests for the RTL substrate: AST helpers, parser, printer, design
   table, connectivity graph and extraction. *)

module Ast = Mlv_rtl.Ast
module Design = Mlv_rtl.Design
module Parser = Mlv_rtl.Parser
module Printer = Mlv_rtl.Printer
module Graph = Mlv_rtl.Graph
module Extract = Mlv_rtl.Extract
module Transform = Mlv_rtl.Transform
module Stats = Mlv_rtl.Stats

let parse_ok src =
  match Parser.parse_string src with
  | Ok d -> d
  | Error msg -> Alcotest.failf "parse error: %s" msg

let lane_pair_src =
  {|
module lane (x, y);
  input [7:0] x;
  output [7:0] y;
  wire [7:0] t;
  mlv_add a0 (.a(x), .b(x), .o(t));
  mlv_reg r0 (.d(t), .q(y));
endmodule

module top (in0, in1, out0, out1);
  input [7:0] in0;
  input [7:0] in1;
  output [7:0] out0;
  output [7:0] out1;
  lane l0 (.x(in0), .y(out0));
  lane l1 (.x(in1), .y(out1));
endmodule
|}

(* ---------------- Ast ---------------- *)

let test_ast_prim_ports () =
  let ports = Ast.prim_ports (Ast.P_add 8) in
  Alcotest.(check int) "3 ports" 3 (List.length ports);
  let o = List.find (fun (p : Ast.port) -> p.port_name = "o") ports in
  Alcotest.(check int) "width" 8 o.width;
  Alcotest.(check bool) "output" true (o.dir = Ast.Output)

let test_ast_prim_sequential () =
  Alcotest.(check bool) "reg" true (Ast.prim_is_sequential (Ast.P_reg 4));
  Alcotest.(check bool) "ram" true
    (Ast.prim_is_sequential (Ast.P_ram { words = 16; width = 8 }));
  Alcotest.(check bool) "add" false (Ast.prim_is_sequential (Ast.P_add 4))

let test_ast_is_basic () =
  let d = parse_ok lane_pair_src in
  Alcotest.(check bool) "lane basic" true (Ast.is_basic (Design.find_exn d "lane"));
  Alcotest.(check bool) "top not basic" false (Ast.is_basic (Design.find_exn d "top"))

let test_ast_net_width () =
  let d = parse_ok lane_pair_src in
  let lane = Design.find_exn d "lane" in
  Alcotest.(check int) "port width" 8 (Ast.net_width lane "x");
  Alcotest.(check int) "wire width" 8 (Ast.net_width lane "t");
  Alcotest.check_raises "missing" Not_found (fun () ->
      ignore (Ast.net_width lane "nonexistent"))

(* ---------------- Parser ---------------- *)

let test_parse_basic () =
  let d = parse_ok lane_pair_src in
  Alcotest.(check int) "two modules" 2 (List.length (Design.modules d));
  Alcotest.(check (list string)) "no validation errors" [] (Design.validate d)

let test_parse_attributes () =
  let src = "(* control_path *)\nmodule ctl (x);\n input x;\nendmodule\n" in
  let d = parse_ok src in
  let m = Design.find_exn d "ctl" in
  Alcotest.(check (list string)) "attr" [ "control_path" ] m.Ast.attrs

let test_parse_assign_lowering () =
  let src =
    {|
module alu (a, b, sel, o);
  input [15:0] a;
  input [15:0] b;
  input sel;
  output [15:0] o;
  assign o = sel ? a + b : a * b;
endmodule
|}
  in
  let d = parse_ok src in
  Alcotest.(check (list string)) "valid" [] (Design.validate d);
  let census = Design.prim_census d "alu" in
  let has p = List.exists (fun (q, _) -> q = p) census in
  Alcotest.(check bool) "has add" true (has (Ast.P_add 16));
  Alcotest.(check bool) "has mul" true (has (Ast.P_mul 16));
  Alcotest.(check bool) "has mux" true (has (Ast.P_mux 16))

let test_parse_sized_literals () =
  let src =
    {|
module c (o);
  output [7:0] o;
  assign o = 8'hFF;
endmodule
|}
  in
  let d = parse_ok src in
  let census = Design.prim_census d "c" in
  Alcotest.(check bool) "const 255" true
    (List.exists (fun (p, _) -> p = Ast.P_const { width = 8; value = 255 }) census)

let test_parse_concat_slice () =
  let src =
    {|
module cs (a, b, hi, wide);
  input [7:0] a;
  input [7:0] b;
  output [3:0] hi;
  output [15:0] wide;
  assign wide = {a, b};
  assign hi = a[7:4];
endmodule
|}
  in
  let d = parse_ok src in
  Alcotest.(check (list string)) "valid" [] (Design.validate d)

let test_parse_errors () =
  (match Parser.parse_string "module m (x; endmodule" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted bad header");
  (match Parser.parse_string "module m (x);\n input x;\n bogus syntax here\nendmodule" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted bad body");
  match Parser.parse_string "module m ();\n wire [3:0] w;\n assign w = q + 1;\nendmodule" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted unknown net"

let test_parse_duplicate_module () =
  let src = "module m ();\nendmodule\nmodule m ();\nendmodule" in
  match Parser.parse_string src with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted duplicate"

let test_printer_roundtrip () =
  let d = parse_ok lane_pair_src in
  let text = Printer.design_to_string d in
  let d2 = parse_ok text in
  Alcotest.(check string) "stable" text (Printer.design_to_string d2);
  Alcotest.(check int) "same modules" 2 (List.length (Design.modules d2))

(* ---------------- Design ---------------- *)

let test_design_top () =
  let d = parse_ok lane_pair_src in
  Alcotest.(check string) "top" "top" (Design.top d).Ast.mod_name

let test_design_topo_order () =
  let d = parse_ok lane_pair_src in
  Alcotest.(check (list string)) "leaves first" [ "lane"; "top" ] (Design.topo_order d)

let test_design_children () =
  let d = parse_ok lane_pair_src in
  Alcotest.(check (list string)) "children" [ "lane" ] (Design.children d "top");
  Alcotest.(check (list string)) "leaf" [] (Design.children d "lane")

let test_design_census () =
  let d = parse_ok lane_pair_src in
  let census = Design.prim_census d "top" in
  Alcotest.(check int) "two adders" 2 (List.assoc (Ast.P_add 8) census);
  Alcotest.(check int) "two regs" 2 (List.assoc (Ast.P_reg 8) census);
  Alcotest.(check int) "flat count" 4 (Design.flat_instance_count d "top")

let test_design_basic_modules () =
  let d = parse_ok lane_pair_src in
  Alcotest.(check (list string)) "basic" [ "lane" ] (Design.basic_modules d)

let test_design_validate_unknown_master () =
  let d =
    Design.of_modules
      [
        {
          Ast.mod_name = "m";
          ports = [];
          nets = [];
          instances =
            [ { Ast.inst_name = "u"; master = Ast.M_module "ghost"; conns = [] } ];
          attrs = [];
        };
      ]
  in
  Alcotest.(check bool) "catches ghost" true (Design.validate d <> [])

let test_design_validate_width_mismatch () =
  let src =
    {|
module m (a, o);
  input [7:0] a;
  output [3:0] o;
  mlv_not n0 (.a(a), .o(o));
endmodule
|}
  in
  (* mlv_not takes width from o (4) but a is 8 bits: mismatch. *)
  let d = parse_ok src in
  Alcotest.(check bool) "catches" true (Design.validate d <> [])

let test_design_cycle_detection () =
  let inst name master =
    { Ast.inst_name = name; master = Ast.M_module master; conns = [] }
  in
  let m name child =
    { Ast.mod_name = name; ports = []; nets = []; instances = [ inst "u" child ]; attrs = [] }
  in
  let d = Design.of_modules [ m "a" "b"; m "b" "a" ] in
  Alcotest.(check bool) "cycle caught" true
    (try
       ignore (Design.topo_order d);
       false
     with Failure _ -> true)

(* ---------------- Graph ---------------- *)

let test_graph_edges () =
  let d = parse_ok lane_pair_src in
  let lane = Design.find_exn d "lane" in
  let g = Graph.build d lane in
  Alcotest.(check int) "two nodes" 2 (Graph.node_count g);
  let a0 = Option.get (Graph.index_of g "a0") in
  let r0 = Option.get (Graph.index_of g "r0") in
  Alcotest.(check int) "a0 -> r0 weight" 8 (Graph.edge_weight g a0 r0);
  Alcotest.(check int) "no back edge" 0 (Graph.edge_weight g r0 a0);
  Alcotest.(check (list int)) "succs" [ r0 ] (Graph.succs g a0);
  Alcotest.(check (list int)) "preds" [ a0 ] (Graph.preds g r0);
  Alcotest.(check bool) "a0 reads port" true (Graph.reads_port g a0);
  Alcotest.(check bool) "r0 writes port" true (Graph.writes_port g r0)

let test_graph_components_lanes () =
  let d = parse_ok lane_pair_src in
  let top = Design.find_exn d "top" in
  let g = Graph.build d top in
  (* The two lane instances are independent components. *)
  Alcotest.(check int) "two components" 2 (List.length (Graph.components g))

let test_graph_components_shared_input () =
  (* Two lanes fed by the same input port: still two components when
     port nets do not join, one when they do. *)
  let src =
    {|
module top (x, o0, o1);
  input [7:0] x;
  output [7:0] o0;
  output [7:0] o1;
  mlv_not n0 (.a(x), .o(o0));
  mlv_not n1 (.a(x), .o(o1));
endmodule
|}
  in
  let d = parse_ok src in
  let top = Design.find_exn d "top" in
  let g = Graph.build d top in
  Alcotest.(check int) "broadcast split" 2 (List.length (Graph.components g));
  Alcotest.(check int) "joined via ports" 1
    (List.length (Graph.components ~include_port_nets:true g))

(* ---------------- Extract ---------------- *)

let test_extract_component () =
  let d = parse_ok lane_pair_src in
  let top = Design.find_exn d "top" in
  let g = Graph.build d top in
  match Graph.components g with
  | [ c0; _ ] ->
    let m = Extract.component ~name:"part0" d top c0 in
    Alcotest.(check int) "one instance" 1 (List.length m.Ast.instances);
    Alcotest.(check int) "two ports" 2 (List.length m.Ast.ports)
  | other -> Alcotest.failf "expected 2 components, got %d" (List.length other)

let test_extract_component_internal_nets () =
  let src =
    {|
module m (x, y);
  input [3:0] x;
  output [3:0] y;
  wire [3:0] t;
  mlv_add a0 (.a(x), .b(x), .o(t));
  mlv_not n0 (.a(t), .o(y));
endmodule
|}
  in
  let d = parse_ok src in
  let m = Design.find_exn d "m" in
  (* Both instances in one component: t stays internal. *)
  let c = Extract.component ~name:"c" d m [ 0; 1 ] in
  Alcotest.(check int) "internal net kept" 1 (List.length c.Ast.nets);
  Alcotest.(check int) "ports x y" 2 (List.length c.Ast.ports);
  (* Only the adder: t becomes an output. *)
  let c2 = Extract.component ~name:"c2" d m [ 0 ] in
  let outs = List.filter (fun (p : Ast.port) -> p.dir = Ast.Output) c2.Ast.ports in
  Alcotest.(check (list string)) "t is output" [ "t" ]
    (List.map (fun (p : Ast.port) -> p.port_name) outs)

let test_extract_flatten () =
  let d = parse_ok lane_pair_src in
  let flat = Extract.flatten d "top" in
  Alcotest.(check bool) "basic" true (Ast.is_basic flat);
  Alcotest.(check int) "4 prims" 4 (List.length flat.Ast.instances);
  Alcotest.(check int) "same ports" 4 (List.length flat.Ast.ports);
  (* flattened design validates standalone *)
  let d2 = Design.of_modules [ flat ] in
  Alcotest.(check (list string)) "valid" [] (Design.validate d2)

let test_extract_flatten_deep () =
  let src =
    {|
module leaf (a, o);
  input [3:0] a;
  output [3:0] o;
  mlv_not n (.a(a), .o(o));
endmodule

module mid (a, o);
  input [3:0] a;
  output [3:0] o;
  wire [3:0] t;
  leaf l0 (.a(a), .o(t));
  leaf l1 (.a(t), .o(o));
endmodule

module deep_top (a, o);
  input [3:0] a;
  output [3:0] o;
  wire [3:0] t;
  mid m0 (.a(a), .o(t));
  mid m1 (.a(t), .o(o));
endmodule
|}
  in
  let d = parse_ok src in
  let flat = Extract.flatten d "deep_top" in
  Alcotest.(check int) "4 nots" 4 (List.length flat.Ast.instances);
  let d2 = Design.of_modules [ flat ] in
  Alcotest.(check (list string)) "valid" [] (Design.validate d2)


(* ---------------- Transform ---------------- *)

let test_transform_constant_fold () =
  let src =
    {|
module m (o);
  output [7:0] o;
  wire [7:0] a;
  wire [7:0] b;
  mlv_const #(.VALUE(3)) c1 (.o(a));
  mlv_const #(.VALUE(4)) c2 (.o(b));
  mlv_add g (.a(a), .b(b), .o(o));
endmodule
|}
  in
  let m = Design.find_exn (parse_ok src) "m" in
  let f = Transform.constant_fold m in
  (* the adder became a constant 7 *)
  let folded =
    List.exists
      (fun (i : Ast.instance) ->
        i.Ast.master = Ast.M_prim (Ast.P_const { width = 8; value = 7 }))
      f.Ast.instances
  in
  Alcotest.(check bool) "folded to 7" true folded

let test_transform_fold_cascades () =
  let src =
    {|
module m (o);
  output [7:0] o;
  wire [7:0] a;
  wire [7:0] t;
  mlv_const #(.VALUE(5)) c (.o(a));
  mlv_not n (.a(a), .o(t));
  mlv_add g (.a(t), .b(a), .o(o));
endmodule
|}
  in
  let m = Design.find_exn (parse_ok src) "m" in
  let f = Transform.simplify m in
  (* everything collapses to one constant driving o *)
  Alcotest.(check int) "one instance left" 1 (List.length f.Ast.instances);
  (* (~5 land 255) + 5 = 250 + 5 = 255 *)
  match (List.hd f.Ast.instances).Ast.master with
  | Ast.M_prim (Ast.P_const { value; _ }) -> Alcotest.(check int) "value" 255 value
  | _ -> Alcotest.fail "expected constant"

let test_transform_registers_not_folded () =
  let src =
    {|
module m (q);
  output [3:0] q;
  wire [3:0] c;
  mlv_const #(.VALUE(9)) k (.o(c));
  mlv_reg r (.d(c), .q(q));
endmodule
|}
  in
  let m = Design.find_exn (parse_ok src) "m" in
  let f = Transform.simplify m in
  (* the register stays: its cycle-0 output is 0, not 9 *)
  Alcotest.(check bool) "reg kept" true
    (List.exists
       (fun (i : Ast.instance) ->
         match i.Ast.master with Ast.M_prim (Ast.P_reg _) -> true | _ -> false)
       f.Ast.instances)

let test_transform_dead_prims () =
  let src =
    {|
module m (x, o);
  input [3:0] x;
  output [3:0] o;
  wire [3:0] unused;
  mlv_not live (.a(x), .o(o));
  mlv_add dead (.a(x), .b(x), .o(unused));
endmodule
|}
  in
  let m = Design.find_exn (parse_ok src) "m" in
  let f = Transform.dead_prims m in
  Alcotest.(check int) "dead removed" 1 (List.length f.Ast.instances);
  Alcotest.(check int) "dead net removed" 0 (List.length f.Ast.nets)

let test_transform_dead_ram_chain () =
  (* A RAM whose read port goes nowhere dies along with its address
     logic. *)
  let src =
    {|
module m (x, o);
  input [3:0] x;
  output [3:0] o;
  wire [3:0] addr;
  wire [7:0] data;
  mlv_not live (.a(x), .o(o));
  mlv_not a0 (.a(x), .o(addr));
  mlv_ram #(.WORDS(16), .WIDTH(8)) r (.waddr(addr), .wdata(data), .wen(x), .raddr(addr), .rdata(data));
endmodule
|}
  in
  (* note: wen takes x's low bit via width mismatch; simplify the
     example by using a 1-bit input instead *)
  ignore src;
  let src =
    {|
module m (x, en, o);
  input [3:0] x;
  input en;
  output [3:0] o;
  wire [3:0] addr;
  wire [7:0] data;
  wire [7:0] wdata;
  mlv_not live (.a(x), .o(o));
  mlv_not a0 (.a(x), .o(addr));
  mlv_const #(.VALUE(0)) z (.o(wdata));
  mlv_ram #(.WORDS(16), .WIDTH(8)) r (.waddr(addr), .wdata(wdata), .wen(en), .raddr(addr), .rdata(data));
endmodule
|}
  in
  let m = Design.find_exn (parse_ok src) "m" in
  let f = Transform.dead_prims m in
  Alcotest.(check int) "only live not" 1 (List.length f.Ast.instances)

let test_transform_preserves_interface () =
  let d = parse_ok lane_pair_src in
  let lane = Design.find_exn d "lane" in
  let f = Transform.simplify lane in
  Alcotest.(check int) "same ports" (List.length lane.Ast.ports) (List.length f.Ast.ports)

let test_transform_nonbasic_rejected () =
  let d = parse_ok lane_pair_src in
  let top = Design.find_exn d "top" in
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Transform.simplify top);
       false
     with Invalid_argument _ -> true)

(* Property: simplify preserves simulated behaviour on random
   add/not/mux cones over constants and inputs. *)
let prop_transform_preserves_semantics =
  QCheck.Test.make ~name:"simplify preserves behaviour" ~count:40
    QCheck.(pair (int_range 1 8) (int_range 0 1000))
    (fun (n_gates, seed) ->
      (* Build a random basic module: alternating const/input-fed
         gates chained together. *)
      let buf = Buffer.create 256 in
      Buffer.add_string buf "module m (x, o);\n  input [7:0] x;\n  output [7:0] o;\n";
      for i = 0 to n_gates - 1 do
        Buffer.add_string buf (Printf.sprintf "  wire [7:0] t%d;\n" i)
      done;
      let prev i = if i = 0 then "x" else Printf.sprintf "t%d" (i - 1) in
      for i = 0 to n_gates - 1 do
        let out = if i = n_gates - 1 then "o" else Printf.sprintf "t%d" i in
        match (seed + i) mod 4 with
        | 0 ->
          Buffer.add_string buf
            (Printf.sprintf "  wire [7:0] k%d;\n  mlv_const #(.VALUE(%d)) kc%d (.o(k%d));\n  mlv_add g%d (.a(%s), .b(k%d), .o(%s));\n"
               i ((seed * (i + 3)) mod 256) i i i (prev i) i out)
        | 1 -> Buffer.add_string buf (Printf.sprintf "  mlv_not g%d (.a(%s), .o(%s));\n" i (prev i) out)
        | 2 ->
          Buffer.add_string buf
            (Printf.sprintf "  mlv_xor g%d (.a(%s), .b(x), .o(%s));\n" i (prev i) out)
        | _ ->
          Buffer.add_string buf
            (Printf.sprintf "  mlv_sub g%d (.a(%s), .b(x), .o(%s));\n" i (prev i) out)
      done;
      Buffer.add_string buf "endmodule\n";
      let m =
        match Parser.parse_string (Buffer.contents buf) with
        | Ok d -> Design.find_exn d "m"
        | Error e -> failwith e
      in
      let s = Transform.simplify m in
      Mlv_eqcheck.Check.modules_equivalent m { s with Ast.mod_name = "m2" })


let test_stats () =
  let d = parse_ok lane_pair_src in
  let s = Stats.of_design d in
  Alcotest.(check int) "modules" 2 s.Stats.modules;
  Alcotest.(check int) "basic" 1 s.Stats.basic_modules;
  Alcotest.(check int) "flat prims" 4 s.Stats.flat_primitives;
  Alcotest.(check int) "depth" 2 s.Stats.hierarchy_depth;
  Alcotest.(check (list (pair string int))) "histogram"
    [ ("mlv_add", 2); ("mlv_reg", 2) ]
    (List.sort compare s.Stats.prim_histogram)


(* ---------------- Parameterized modules ---------------- *)

let param_src =
  {|
module padder #(W = 8) (a, b, o);
  input [W-1:0] a;
  input [W-1:0] b;
  output [W-1:0] o;
  mlv_add g (.a(a), .b(b), .o(o));
endmodule

module pstage #(WIDTH = 8, FACTOR = 2) (x, o);
  input [WIDTH-1:0] x;
  output [WIDTH*FACTOR-1:0] o;
  wire [WIDTH-1:0] t;
  wire [WIDTH*FACTOR-1:0] wide;
  padder #(.W(WIDTH)) a0 (.a(x), .b(x), .o(t));
  mlv_concat c (.a(t), .b(x), .o(wide));
  mlv_reg r (.d(wide), .q(o));
endmodule

module ptop (x8, x16, o16, o32);
  input [7:0] x8;
  input [15:0] x16;
  output [15:0] o16;
  output [31:0] o32;
  pstage s8 (.x(x8), .o(o16));
  pstage #(.WIDTH(16)) s16 (.x(x16), .o(o32));
endmodule
|}

let test_param_monomorphization () =
  let d = parse_ok param_src in
  Alcotest.(check (list string)) "valid" [] (Design.validate d);
  let names = List.map (fun (m : Ast.module_def) -> m.Ast.mod_name) (Design.modules d) in
  Alcotest.(check bool) "8-bit adder" true (List.mem "padder$W8" names);
  Alcotest.(check bool) "16-bit adder" true (List.mem "padder$W16" names);
  Alcotest.(check bool) "default stage" true (List.mem "pstage$WIDTH8$FACTOR2" names);
  Alcotest.(check bool) "wide stage" true (List.mem "pstage$WIDTH16$FACTOR2" names);
  (* widths really specialized *)
  let adder16 = Design.find_exn d "padder$W16" in
  Alcotest.(check int) "16-bit port" 16 (Ast.net_width adder16 "a")

let test_param_sharing () =
  (* Two instantiations with the same binding elaborate one module. *)
  let src =
    {|
module leafp #(N = 4) (x, o);
  input [N-1:0] x;
  output [N-1:0] o;
  mlv_not g (.a(x), .o(o));
endmodule
module t2 (a, b, oa, ob);
  input [7:0] a;
  input [7:0] b;
  output [7:0] oa;
  output [7:0] ob;
  leafp #(.N(8)) u0 (.x(a), .o(oa));
  leafp #(.N(8)) u1 (.x(b), .o(ob));
endmodule
|}
  in
  let d = parse_ok src in
  let copies =
    List.filter
      (fun (m : Ast.module_def) ->
        String.length m.Ast.mod_name >= 5 && String.sub m.Ast.mod_name 0 5 = "leafp")
      (Design.modules d)
  in
  Alcotest.(check int) "one elaboration" 1 (List.length copies)

let test_param_errors () =
  (* unknown parameter *)
  (match
     Parser.parse_string
       {|
module m #(A = 1) (o);
  output o;
  mlv_const #(.VALUE(A)) c (.o(o));
endmodule
module t (o);
  output o;
  m #(.B(2)) u (.o(o));
endmodule
|}
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted unknown parameter");
  (* parameters on an unparameterized module *)
  match
    Parser.parse_string
      {|
module plain (o);
  output o;
  mlv_const #(.VALUE(1)) c (.o(o));
endmodule
module t (o);
  output o;
  plain #(.X(1)) u (.o(o));
endmodule
|}
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted params on plain module"

let test_param_expr_in_override () =
  (* Parameter values in instantiations may themselves be constant
     expressions over outer parameters. *)
  let src =
    {|
module inner #(N = 2) (o);
  output [N-1:0] o;
  mlv_const #(.VALUE(1)) c (.o(o));
endmodule
module outer #(W = 4) (o);
  output [2*W-1:0] o;
  inner #(.N(W*2)) u (.o(o));
endmodule
module t2e (o);
  output [7:0] o;
  outer u (.o(o));
endmodule
|}
  in
  let d = parse_ok src in
  Alcotest.(check (list string)) "valid" [] (Design.validate d);
  Alcotest.(check bool) "inner$N8 exists" true (Design.mem d "inner$N8")

let test_param_const_exprs () =
  let src =
    {|
module cw #(W = 4) (o);
  output [2*W+1:0] o;
  mlv_const #(.VALUE(3)) c (.o(o));
endmodule
module t (o);
  output [9:0] o;
  cw u (.o(o));
endmodule
|}
  in
  let d = parse_ok src in
  Alcotest.(check (list string)) "valid" [] (Design.validate d);
  let cw = Design.find_exn d "cw$W4" in
  Alcotest.(check int) "2*4+1+1 bits" 10 (Ast.net_width cw "o")

let test_param_decompose_flows () =
  (* Parameterized lanes still decompose into data parallelism (the
     elaborated copies share a module, so name-equality grouping
     applies). *)
  let src =
    {|
(* control_path *)
module pctl (go);
  output go;
  wire n;
  mlv_const #(.VALUE(1)) c (.o(n));
  mlv_reg r (.d(n), .q(go));
endmodule
module plane #(W = 8) (x, o);
  input [W-1:0] x;
  output [W-1:0] o;
  wire [W-1:0] t;
  mlv_add a (.a(x), .b(x), .o(t));
  mlv_reg r (.d(t), .q(o));
endmodule
module ptop2 (x0, x1, o0, o1);
  input [7:0] x0;
  input [7:0] x1;
  output [7:0] o0;
  output [7:0] o1;
  wire go;
  pctl c (.go(go));
  plane l0 (.x(x0), .o(o0));
  plane l1 (.x(x1), .o(o1));
endmodule
|}
  in
  let d = parse_ok src in
  match Mlv_core.Decompose.run d ~top:"ptop2" with
  | Error e -> Alcotest.failf "decompose: %s" e
  | Ok r -> (
    match r.Mlv_core.Decompose.data with
    | Mlv_core.Soft_block.Node
        { Mlv_core.Soft_block.composition = Mlv_core.Soft_block.Data_parallel; children; _ }
      ->
      Alcotest.(check int) "two lanes" 2 (List.length children)
    | _ -> Alcotest.fail "expected DP root")

let () =
  Alcotest.run "rtl"
    [
      ( "ast",
        [
          Alcotest.test_case "prim ports" `Quick test_ast_prim_ports;
          Alcotest.test_case "prim sequential" `Quick test_ast_prim_sequential;
          Alcotest.test_case "is_basic" `Quick test_ast_is_basic;
          Alcotest.test_case "net_width" `Quick test_ast_net_width;
        ] );
      ( "parser",
        [
          Alcotest.test_case "basic design" `Quick test_parse_basic;
          Alcotest.test_case "attributes" `Quick test_parse_attributes;
          Alcotest.test_case "assign lowering" `Quick test_parse_assign_lowering;
          Alcotest.test_case "sized literals" `Quick test_parse_sized_literals;
          Alcotest.test_case "concat and slice" `Quick test_parse_concat_slice;
          Alcotest.test_case "syntax errors" `Quick test_parse_errors;
          Alcotest.test_case "duplicate module" `Quick test_parse_duplicate_module;
          Alcotest.test_case "printer roundtrip" `Quick test_printer_roundtrip;
        ] );
      ( "design",
        [
          Alcotest.test_case "top" `Quick test_design_top;
          Alcotest.test_case "topo order" `Quick test_design_topo_order;
          Alcotest.test_case "children" `Quick test_design_children;
          Alcotest.test_case "prim census" `Quick test_design_census;
          Alcotest.test_case "basic modules" `Quick test_design_basic_modules;
          Alcotest.test_case "validate unknown master" `Quick test_design_validate_unknown_master;
          Alcotest.test_case "validate width mismatch" `Quick test_design_validate_width_mismatch;
          Alcotest.test_case "cycle detection" `Quick test_design_cycle_detection;
        ] );
      ( "graph",
        [
          Alcotest.test_case "edges and weights" `Quick test_graph_edges;
          Alcotest.test_case "lane components" `Quick test_graph_components_lanes;
          Alcotest.test_case "broadcast components" `Quick test_graph_components_shared_input;
        ] );
      ("stats", [ Alcotest.test_case "of_design" `Quick test_stats ]);
      ( "parameters",
        [
          Alcotest.test_case "monomorphization" `Quick test_param_monomorphization;
          Alcotest.test_case "sharing" `Quick test_param_sharing;
          Alcotest.test_case "errors" `Quick test_param_errors;
          Alcotest.test_case "const exprs" `Quick test_param_const_exprs;
          Alcotest.test_case "expr in override" `Quick test_param_expr_in_override;
          Alcotest.test_case "decomposes" `Quick test_param_decompose_flows;
        ] );
      ( "transform",
        [
          Alcotest.test_case "constant fold" `Quick test_transform_constant_fold;
          Alcotest.test_case "fold cascades" `Quick test_transform_fold_cascades;
          Alcotest.test_case "registers not folded" `Quick test_transform_registers_not_folded;
          Alcotest.test_case "dead prims" `Quick test_transform_dead_prims;
          Alcotest.test_case "dead ram chain" `Quick test_transform_dead_ram_chain;
          Alcotest.test_case "preserves interface" `Quick test_transform_preserves_interface;
          Alcotest.test_case "non-basic rejected" `Quick test_transform_nonbasic_rejected;
          QCheck_alcotest.to_alcotest prop_transform_preserves_semantics;
        ] );
      ( "extract",
        [
          Alcotest.test_case "component" `Quick test_extract_component;
          Alcotest.test_case "component internal nets" `Quick test_extract_component_internal_nets;
          Alcotest.test_case "flatten" `Quick test_extract_flatten;
          Alcotest.test_case "flatten deep" `Quick test_extract_flatten_deep;
        ] );
    ]
