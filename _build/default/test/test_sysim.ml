(* Tests for the system-level simulation: policy comparisons at small
   scale (the full Fig. 12 runs live in the benchmark harness). *)

module Sysim = Mlv_sysim.Sysim
module Runtime = Mlv_core.Runtime
module Genset = Mlv_workload.Genset
module Deepbench = Mlv_workload.Deepbench
module Codegen = Mlv_isa.Codegen

(* The registry build compiles ten accelerator instances; share it. *)
let registry = lazy (Sysim.build_registry ())

let run ?(tasks = 40) policy set =
  let cfg = Sysim.default_config ~policy ~composition:Genset.table1.(set) in
  Sysim.run ~registry:(Lazy.force registry) { cfg with Sysim.tasks }

let test_instances_registered () =
  let names = Mlv_core.Registry.names (Lazy.force registry) in
  Alcotest.(check int) "10 instances" 10 (List.length names);
  Alcotest.(check bool) "has t21" true (List.mem "npu-t21" names)

let test_instance_selection () =
  let small = { Deepbench.kind = Codegen.Gru; hidden = 512; timesteps = 1 } in
  let large = { Deepbench.kind = Codegen.Gru; hidden = 2560; timesteps = 100 } in
  let t_small = Sysim.instance_for ~policy:Runtime.greedy small in
  let t_large = Sysim.instance_for ~policy:Runtime.greedy large in
  Alcotest.(check bool) "small gets small" true (t_small <= 8);
  Alcotest.(check bool) "large gets multi-FPGA instance" true (t_large >= 32);
  (* The baseline cannot use instances beyond a single device. *)
  let t_large_base = Sysim.instance_for ~policy:Runtime.baseline large in
  Alcotest.(check int) "baseline capped" 21 t_large_base

let test_all_tasks_complete () =
  List.iter
    (fun policy ->
      let r = run policy 6 in
      Alcotest.(check int) policy.Runtime.policy_name 40 r.Sysim.completed;
      Alcotest.(check bool) "positive throughput" true (r.Sysim.throughput_per_s > 0.0))
    [ Runtime.baseline; Runtime.restricted; Runtime.greedy ]

let test_deterministic () =
  let a = run Runtime.greedy 6 in
  let b = run Runtime.greedy 6 in
  Alcotest.(check (float 1e-9)) "same throughput" a.Sysim.throughput_per_s
    b.Sysim.throughput_per_s;
  Alcotest.(check (float 1e-9)) "same makespan" a.Sysim.makespan_us b.Sysim.makespan_us

let test_slo_misses_grow_with_load () =
  (* A saturated arrival rate misses more SLOs than a relaxed one. *)
  let run_rate interarrival =
    let cfg =
      Sysim.default_config ~policy:Runtime.greedy ~composition:Genset.table1.(6)
    in
    Sysim.run ~registry:(Lazy.force registry)
      { cfg with Sysim.tasks = 40; mean_interarrival_us = interarrival }
  in
  let tight = run_rate 50.0 in
  let relaxed = run_rate 100_000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "tight %d vs relaxed %d misses" tight.Sysim.slo_misses
       relaxed.Sysim.slo_misses)
    true
    (tight.Sysim.slo_misses >= relaxed.Sysim.slo_misses);
  Alcotest.(check int) "no misses unloaded" 0 relaxed.Sysim.slo_misses

let test_greedy_beats_baseline () =
  (* The headline claim at small scale: spatial sharing plus
     multi-FPGA deployment outperforms per-device management. *)
  let g = run Runtime.greedy 6 in
  let b = run Runtime.baseline 6 in
  Alcotest.(check bool)
    (Printf.sprintf "greedy %.1f vs baseline %.1f" g.Sysim.throughput_per_s
       b.Sysim.throughput_per_s)
    true
    (g.Sysim.throughput_per_s > 1.5 *. b.Sysim.throughput_per_s)

let test_greedy_beats_restricted () =
  let g = run Runtime.greedy 7 in
  (* L-heavy set: heterogeneity matters most *)
  let r = run Runtime.restricted 7 in
  Alcotest.(check bool)
    (Printf.sprintf "greedy %.1f vs restricted %.1f" g.Sysim.throughput_per_s
       r.Sysim.throughput_per_s)
    true
    (g.Sysim.throughput_per_s >= r.Sysim.throughput_per_s)

let test_wait_reasonable () =
  let r = run ~tasks:20 Runtime.greedy 0 in
  (* an all-S set at this arrival rate should barely queue *)
  Alcotest.(check bool) "waits bounded" true (r.Sysim.mean_wait_us < r.Sysim.makespan_us);
  Alcotest.(check bool) "service positive" true (r.Sysim.mean_service_us > 0.0);
  Alcotest.(check bool) "p95 >= mean" true (r.Sysim.p95_latency_us >= r.Sysim.mean_latency_us *. 0.5);
  Alcotest.(check int) "latency per task" r.Sysim.completed (List.length r.Sysim.latencies_us);
  Alcotest.(check bool) "slo misses bounded" true
    (r.Sysim.slo_misses >= 0 && r.Sysim.slo_misses <= r.Sysim.completed)

let () =
  Alcotest.run "sysim"
    [
      ( "sysim",
        [
          Alcotest.test_case "instances registered" `Quick test_instances_registered;
          Alcotest.test_case "instance selection" `Quick test_instance_selection;
          Alcotest.test_case "all tasks complete" `Quick test_all_tasks_complete;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "greedy beats baseline" `Quick test_greedy_beats_baseline;
          Alcotest.test_case "SLO misses grow with load" `Quick test_slo_misses_grow_with_load;
          Alcotest.test_case "greedy vs restricted" `Quick test_greedy_beats_restricted;
          Alcotest.test_case "waits reasonable" `Quick test_wait_reasonable;
        ] );
    ]
