(* Tests for the equivalence checker: signatures, simulation, and the
   two-phase module check. *)

module Ast = Mlv_rtl.Ast
module Design = Mlv_rtl.Design
module Parser = Mlv_rtl.Parser
module Extract = Mlv_rtl.Extract
module Sig_hash = Mlv_eqcheck.Sig_hash
module Sim = Mlv_eqcheck.Sim
module Check = Mlv_eqcheck.Check

let parse_ok src =
  match Parser.parse_string src with
  | Ok d -> d
  | Error msg -> Alcotest.failf "parse error: %s" msg

(* ---------------- Sim ---------------- *)

let sim_of src name =
  let d = parse_ok src in
  Sim.create (Design.find_exn d name)

let test_sim_comb_add () =
  let s =
    sim_of
      {|
module m (a, b, o);
  input [7:0] a;
  input [7:0] b;
  output [7:0] o;
  mlv_add g (.a(a), .b(b), .o(o));
endmodule
|}
      "m"
  in
  Sim.set_input s "a" 200L;
  Sim.set_input s "b" 100L;
  Sim.step s;
  (* 300 mod 256 = 44 *)
  Alcotest.(check int64) "wraps" 44L (Sim.get_output s "o")

let test_sim_mux () =
  let s =
    sim_of
      {|
module m (sel, a, b, o);
  input sel;
  input [3:0] a;
  input [3:0] b;
  output [3:0] o;
  mlv_mux g (.sel(sel), .a(a), .b(b), .o(o));
endmodule
|}
      "m"
  in
  Sim.set_input s "sel" 1L;
  Sim.set_input s "a" 5L;
  Sim.set_input s "b" 9L;
  Sim.step s;
  Alcotest.(check int64) "sel=1 -> a" 5L (Sim.get_output s "o");
  Sim.set_input s "sel" 0L;
  Sim.step s;
  Alcotest.(check int64) "sel=0 -> b" 9L (Sim.get_output s "o")

let test_sim_reg_delay () =
  let s =
    sim_of
      {|
module m (d, q);
  input [3:0] d;
  output [3:0] q;
  mlv_reg r (.d(d), .q(q));
endmodule
|}
      "m"
  in
  Sim.set_input s "d" 7L;
  Sim.step s;
  (* Register output shows the previous state (0), latches 7. *)
  Alcotest.(check int64) "cycle 1" 0L (Sim.get_output s "q");
  Sim.set_input s "d" 3L;
  Sim.step s;
  Alcotest.(check int64) "cycle 2" 7L (Sim.get_output s "q")

let test_sim_ram () =
  let s =
    sim_of
      {|
module m (waddr, wdata, wen, raddr, rdata);
  input [3:0] waddr;
  input [7:0] wdata;
  input wen;
  input [3:0] raddr;
  output [7:0] rdata;
  mlv_ram #(.WORDS(16), .WIDTH(8)) r (.waddr(waddr), .wdata(wdata), .wen(wen), .raddr(raddr), .rdata(rdata));
endmodule
|}
      "m"
  in
  (* Write 42 to address 3. *)
  Sim.set_input s "waddr" 3L;
  Sim.set_input s "wdata" 42L;
  Sim.set_input s "wen" 1L;
  Sim.set_input s "raddr" 3L;
  Sim.step s;
  (* Read-before-write RAM with a registered output: the write lands
     at the end of cycle 1, the read of address 3 is captured at the
     end of cycle 2, and the data is presented in cycle 3. *)
  Sim.set_input s "wen" 0L;
  Sim.step s;
  Alcotest.(check int64) "not yet visible" 0L (Sim.get_output s "rdata");
  Sim.step s;
  Alcotest.(check int64) "read back" 42L (Sim.get_output s "rdata")

let test_sim_comb_chain () =
  let s =
    sim_of
      {|
module m (a, o);
  input [7:0] a;
  output [7:0] o;
  wire [7:0] t1;
  wire [7:0] t2;
  mlv_not n1 (.a(a), .o(t1));
  mlv_not n2 (.a(t1), .o(t2));
  mlv_add n3 (.a(t2), .b(a), .o(o));
endmodule
|}
      "m"
  in
  Sim.set_input s "a" 17L;
  Sim.step s;
  Alcotest.(check int64) "double negation" 34L (Sim.get_output s "o")

let test_sim_comb_cycle_rejected () =
  let src =
    {|
module m (a, o);
  input [3:0] a;
  output [3:0] o;
  wire [3:0] t;
  mlv_add g1 (.a(a), .b(o), .o(t));
  mlv_not g2 (.a(t), .o(o));
endmodule
|}
  in
  let d = parse_ok src in
  Alcotest.(check bool) "cycle detected" true
    (try
       ignore (Sim.create (Design.find_exn d "m"));
       false
     with Failure _ -> true)

let test_sim_nonbasic_rejected () =
  let d =
    parse_ok
      {|
module leaf (a, o);
  input a;
  output o;
  mlv_not n (.a(a), .o(o));
endmodule
module m (a, o);
  input a;
  output o;
  leaf l (.a(a), .o(o));
endmodule
|}
  in
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Sim.create (Design.find_exn d "m"));
       false
     with Invalid_argument _ -> true)

(* ---------------- Signatures ---------------- *)

let renamed_pair =
  ( {|
module a (x, y, o);
  input [7:0] x;
  input [7:0] y;
  output [7:0] o;
  wire [7:0] t;
  mlv_add g1 (.a(x), .b(y), .o(t));
  mlv_reg g2 (.d(t), .q(o));
endmodule
|},
    {|
module b (p, q, r);
  input [7:0] p;
  input [7:0] q;
  output [7:0] r;
  wire [7:0] w;
  mlv_add u1 (.a(p), .b(q), .o(w));
  mlv_reg u2 (.d(w), .q(r));
endmodule
|} )

let test_sig_rename_invariant () =
  let src_a, src_b = renamed_pair in
  let da = parse_ok src_a and db = parse_ok src_b in
  let ma = Design.find_exn da "a" and mb = Design.find_exn db "b" in
  Alcotest.(check int) "same signature" (Sig_hash.signature ma) (Sig_hash.signature mb)

let test_sig_distinguishes_ops () =
  let make op =
    parse_ok
      (Printf.sprintf
         {|
module m (x, y, o);
  input [7:0] x;
  input [7:0] y;
  output [7:0] o;
  %s g1 (.a(x), .b(y), .o(o));
endmodule
|}
         op)
  in
  let ma = Design.find_exn (make "mlv_add") "m" in
  let mb = Design.find_exn (make "mlv_sub") "m" in
  Alcotest.(check bool) "different" true (Sig_hash.signature ma <> Sig_hash.signature mb)

let test_sig_distinguishes_widths () =
  let make w =
    parse_ok
      (Printf.sprintf
         {|
module m (x, o);
  input [%d:0] x;
  output [%d:0] o;
  mlv_not g (.a(x), .o(o));
endmodule
|}
         w w)
  in
  let m8 = Design.find_exn (make 7) "m" in
  let m16 = Design.find_exn (make 15) "m" in
  Alcotest.(check bool) "different" true (Sig_hash.signature m8 <> Sig_hash.signature m16)

let test_sig_distinguishes_topology () =
  (* a+(b+c) vs (a+b)+c with different sharing: chain vs balanced over
     4 inputs — same census, different wiring depth. *)
  let chain =
    {|
module m (a, b, c, d, o);
  input [7:0] a; input [7:0] b; input [7:0] c; input [7:0] d;
  output [7:0] o;
  wire [7:0] t1; wire [7:0] t2;
  mlv_add g1 (.a(a), .b(b), .o(t1));
  mlv_add g2 (.a(t1), .b(c), .o(t2));
  mlv_add g3 (.a(t2), .b(d), .o(o));
endmodule
|}
  in
  let balanced =
    {|
module m (a, b, c, d, o);
  input [7:0] a; input [7:0] b; input [7:0] c; input [7:0] d;
  output [7:0] o;
  wire [7:0] t1; wire [7:0] t2;
  mlv_add g1 (.a(a), .b(b), .o(t1));
  mlv_add g2 (.a(c), .b(d), .o(t2));
  mlv_add g3 (.a(t1), .b(t2), .o(o));
endmodule
|}
  in
  let mc = Design.find_exn (parse_ok chain) "m" in
  let mb = Design.find_exn (parse_ok balanced) "m" in
  Alcotest.(check bool) "different" true (Sig_hash.signature mc <> Sig_hash.signature mb)

let test_canonical_ports_compatible () =
  let src_a, src_b = renamed_pair in
  let ma = Design.find_exn (parse_ok src_a) "a" in
  let mb = Design.find_exn (parse_ok src_b) "b" in
  let ka = List.map (fun (p : Ast.port) -> (p.dir, p.width)) (Sig_hash.canonical_ports ma) in
  let kb = List.map (fun (p : Ast.port) -> (p.dir, p.width)) (Sig_hash.canonical_ports mb) in
  Alcotest.(check bool) "same shape order" true (ka = kb)

(* ---------------- Check ---------------- *)

let test_check_equivalent_renamed () =
  let src_a, src_b = renamed_pair in
  let ma = Design.find_exn (parse_ok src_a) "a" in
  let mb = Design.find_exn (parse_ok src_b) "b" in
  Alcotest.(check bool) "equivalent" true (Check.modules_equivalent ma mb)

let test_check_inequivalent_op () =
  let src_a, _ = renamed_pair in
  let src_c =
    {|
module c (x, y, o);
  input [7:0] x;
  input [7:0] y;
  output [7:0] o;
  wire [7:0] t;
  mlv_sub g1 (.a(x), .b(y), .o(t));
  mlv_reg g2 (.d(t), .q(o));
endmodule
|}
  in
  let ma = Design.find_exn (parse_ok src_a) "a" in
  let mc = Design.find_exn (parse_ok src_c) "c" in
  Alcotest.(check bool) "not equivalent" false (Check.modules_equivalent ma mc)

let test_check_hierarchy_flattened () =
  (* One module instantiates the adder through a wrapper; the check
     flattens and still matches. *)
  let d =
    parse_ok
      {|
module adder (x, y, o);
  input [7:0] x;
  input [7:0] y;
  output [7:0] o;
  mlv_add g (.a(x), .b(y), .o(o));
endmodule

module wrapped (x, y, o);
  input [7:0] x;
  input [7:0] y;
  output [7:0] o;
  adder u (.x(x), .y(y), .o(o));
endmodule

module direct (x, y, o);
  input [7:0] x;
  input [7:0] y;
  output [7:0] o;
  mlv_add g (.a(x), .b(y), .o(o));
endmodule
|}
  in
  Alcotest.(check bool) "equivalent" true (Check.equivalent d "wrapped" "direct");
  Alcotest.(check bool) "reflexive" true (Check.equivalent d "wrapped" "wrapped")

let test_check_interface_mismatch () =
  let ma =
    Design.find_exn
      (parse_ok
         {|
module m (x, o);
  input [7:0] x;
  output [7:0] o;
  mlv_not g (.a(x), .o(o));
endmodule
|})
      "m"
  in
  let mb =
    Design.find_exn
      (parse_ok
         {|
module m (x, y, o);
  input [7:0] x;
  input [7:0] y;
  output [7:0] o;
  mlv_and g (.a(x), .b(y), .o(o));
endmodule
|})
      "m"
  in
  Alcotest.(check bool) "different interface" false (Check.modules_equivalent ma mb)

(* Property: a random small adder-tree module is always equivalent to
   a port/net/instance renaming of itself. *)
let prop_rename_equivalence =
  let build_src prefix n_adds =
    let buf = Buffer.create 256 in
    Buffer.add_string buf
      (Printf.sprintf "module %sm (%sa, %sb, %so);\n" prefix prefix prefix prefix);
    Buffer.add_string buf
      (Printf.sprintf "  input [7:0] %sa;\n  input [7:0] %sb;\n  output [7:0] %so;\n"
         prefix prefix prefix);
    for i = 0 to n_adds - 2 do
      Buffer.add_string buf (Printf.sprintf "  wire [7:0] %st%d;\n" prefix i)
    done;
    let net i =
      if i = n_adds - 1 then Printf.sprintf "%so" prefix else Printf.sprintf "%st%d" prefix i
    in
    let src i = if i = 0 then Printf.sprintf "%sa" prefix else net (i - 1) in
    for i = 0 to n_adds - 1 do
      Buffer.add_string buf
        (Printf.sprintf "  mlv_add %sg%d (.a(%s), .b(%sb), .o(%s));\n" prefix i (src i)
           prefix (net i))
    done;
    Buffer.add_string buf "endmodule\n";
    Buffer.contents buf
  in
  QCheck.Test.make ~name:"rename equivalence" ~count:20
    QCheck.(int_range 1 6)
    (fun n ->
      let ma = Design.find_exn (parse_ok (build_src "p_" n)) "p_m" in
      let mb = Design.find_exn (parse_ok (build_src "q_" n)) "q_m" in
      Check.modules_equivalent ma mb)

(* Property: adding one extra gate breaks equivalence. *)
let prop_extra_gate_breaks =
  QCheck.Test.make ~name:"extra gate inequivalence" ~count:20
    QCheck.(int_range 1 5)
    (fun n ->
      let build extra =
        let total = if extra then n + 1 else n in
        let buf = Buffer.create 256 in
        Buffer.add_string buf "module m (a, o);\n  input [7:0] a;\n  output [7:0] o;\n";
        for i = 0 to total - 2 do
          Buffer.add_string buf (Printf.sprintf "  wire [7:0] t%d;\n" i)
        done;
        let net i = if i = total - 1 then "o" else Printf.sprintf "t%d" i in
        let src i = if i = 0 then "a" else net (i - 1) in
        for i = 0 to total - 1 do
          Buffer.add_string buf
            (Printf.sprintf "  mlv_not g%d (.a(%s), .o(%s));\n" i (src i) (net i))
        done;
        Buffer.add_string buf "endmodule\n";
        Design.find_exn (parse_ok (Buffer.contents buf)) "m"
      in
      not (Check.modules_equivalent (build false) (build true)))

let () =
  Alcotest.run "eqcheck"
    [
      ( "sim",
        [
          Alcotest.test_case "combinational add" `Quick test_sim_comb_add;
          Alcotest.test_case "mux" `Quick test_sim_mux;
          Alcotest.test_case "register delay" `Quick test_sim_reg_delay;
          Alcotest.test_case "ram write/read" `Quick test_sim_ram;
          Alcotest.test_case "combinational chain" `Quick test_sim_comb_chain;
          Alcotest.test_case "combinational cycle rejected" `Quick test_sim_comb_cycle_rejected;
          Alcotest.test_case "non-basic rejected" `Quick test_sim_nonbasic_rejected;
        ] );
      ( "sig_hash",
        [
          Alcotest.test_case "rename invariant" `Quick test_sig_rename_invariant;
          Alcotest.test_case "distinguishes ops" `Quick test_sig_distinguishes_ops;
          Alcotest.test_case "distinguishes widths" `Quick test_sig_distinguishes_widths;
          Alcotest.test_case "distinguishes topology" `Quick test_sig_distinguishes_topology;
          Alcotest.test_case "canonical ports compatible" `Quick test_canonical_ports_compatible;
        ] );
      ( "check",
        [
          Alcotest.test_case "equivalent renamed" `Quick test_check_equivalent_renamed;
          Alcotest.test_case "inequivalent op" `Quick test_check_inequivalent_op;
          Alcotest.test_case "hierarchy flattened" `Quick test_check_hierarchy_flattened;
          Alcotest.test_case "interface mismatch" `Quick test_check_interface_mismatch;
          QCheck_alcotest.to_alcotest prop_rename_equivalence;
          QCheck_alcotest.to_alcotest prop_extra_gate_breaks;
        ] );
    ]
