(* Tests for the accelerator substrate: configuration, resource
   model (Table 2 calibration), RTL generation, performance model and
   the synchronization template. *)

module Config = Mlv_accel.Config
module Resource_model = Mlv_accel.Resource_model
module Rtl_gen = Mlv_accel.Rtl_gen
module Perf = Mlv_accel.Perf
module Sync_module = Mlv_accel.Sync_module
module Device = Mlv_fpga.Device
module Resource = Mlv_fpga.Resource
module Design = Mlv_rtl.Design
module Ast = Mlv_rtl.Ast
module Codegen = Mlv_isa.Codegen
module Instr = Mlv_isa.Instr
module Program = Mlv_isa.Program

let vu37p = Device.get Device.XCVU37P
let ku115 = Device.get Device.XCKU115

(* ---------------- Config ---------------- *)

let test_config_defaults () =
  let c = Config.make ~tiles:21 () in
  Alcotest.(check int) "macs" (21 * 16 * 128) (Config.macs_per_cycle c);
  Alcotest.(check bool) "capacity grows" true
    (Config.weight_capacity_words c > Config.weight_capacity_words (Config.make ~tiles:13 ()))

let test_config_validation () =
  Alcotest.(check bool) "zero tiles" true
    (try
       ignore (Config.make ~tiles:0 ());
       false
     with Invalid_argument _ -> true)

let test_config_scale_down () =
  let c = Config.make ~tiles:21 () in
  let s = Config.scale_down c ~tiles:10 in
  Alcotest.(check int) "tiles" 10 s.Config.tiles;
  Alcotest.(check int) "lanes unchanged" c.Config.lanes s.Config.lanes;
  Alcotest.(check bool) "too many" true
    (try
       ignore (Config.scale_down c ~tiles:22);
       false
     with Invalid_argument _ -> true)

let test_config_weight_capacity_fit_line () =
  (* Table 4's fit matrix: LSTM h=1536 fits the VU37P baseline but
     not the KU115 one; GRU h=1536 fits both; GRU h=2560 fits
     neither. *)
  let cap_vu = Config.weight_capacity_words (Resource_model.baseline_config vu37p) in
  let cap_ku = Config.weight_capacity_words (Resource_model.baseline_config ku115) in
  let lstm1536 = 8 * 1536 * 1536 in
  let gru1536 = 6 * 1536 * 1536 in
  let gru2560 = 6 * 2560 * 2560 in
  Alcotest.(check bool) "LSTM1536 on VU37P" true (lstm1536 <= cap_vu);
  Alcotest.(check bool) "LSTM1536 not on KU115" false (lstm1536 <= cap_ku);
  Alcotest.(check bool) "GRU1536 on both" true (gru1536 <= cap_ku);
  Alcotest.(check bool) "GRU2560 nowhere" false (gru2560 <= cap_vu)

(* ---------------- Resource model (Table 2) ---------------- *)

let test_baseline_tile_counts () =
  Alcotest.(check int) "VU37P 21 tiles" 21 (Resource_model.max_tiles vu37p);
  Alcotest.(check int) "KU115 13 tiles" 13 (Resource_model.max_tiles ku115)

let test_table2_resources () =
  (* Within 3% of the paper's Table 2 on every component it reports. *)
  let close ?(tol = 0.03) label expect actual =
    let rel = Float.abs (float_of_int actual -. expect) /. expect in
    Alcotest.(check bool) (Printf.sprintf "%s (%d vs %.0f)" label actual expect) true
      (rel <= tol)
  in
  let r_vu = Resource_model.accel_resources (Resource_model.baseline_config vu37p) vu37p in
  close "VU37P LUTs" 610_000.0 r_vu.Resource.luts;
  close "VU37P DFFs" 659_000.0 r_vu.Resource.dffs;
  close "VU37P BRAM" (51.5 *. 1024.0) r_vu.Resource.bram_kb;
  close ~tol:0.05 "VU37P URAM" (22.5 *. 1024.0) r_vu.Resource.uram_kb;
  close "VU37P DSPs" 7517.0 r_vu.Resource.dsps;
  let r_ku = Resource_model.accel_resources (Resource_model.baseline_config ku115) ku115 in
  close "KU115 LUTs" 367_000.0 r_ku.Resource.luts;
  close "KU115 DFFs" 386_000.0 r_ku.Resource.dffs;
  close ~tol:0.05 "KU115 BRAM" (45.4 *. 1024.0) r_ku.Resource.bram_kb;
  close "KU115 DSPs" 5073.0 r_ku.Resource.dsps;
  Alcotest.(check int) "KU115 no URAM" 0 r_ku.Resource.uram_kb

let test_table2_frequency_and_peak () =
  let f_vu =
    Resource_model.achieved_freq_mhz (Resource_model.baseline_config vu37p) vu37p
      ~floorplanned:true
  in
  Alcotest.(check (float 1.0)) "VU37P 400MHz" 400.0 f_vu;
  let f_ku =
    Resource_model.achieved_freq_mhz (Resource_model.baseline_config ku115) ku115
      ~floorplanned:true
  in
  Alcotest.(check (float 1.0)) "KU115 300MHz" 300.0 f_ku;
  let p_vu = Resource_model.peak_tflops (Resource_model.baseline_config vu37p) vu37p in
  Alcotest.(check bool) "peak ~36 TFLOPS" true (Float.abs (p_vu -. 36.0) < 2.0);
  let p_ku = Resource_model.peak_tflops (Resource_model.baseline_config ku115) ku115 in
  Alcotest.(check bool) "peak ~16.7 TFLOPS" true (Float.abs (p_ku -. 16.7) < 1.5)

let test_floorplanning_needed () =
  (* Without floorplanning the baseline misses its frequency target
     (the reason the paper uses Fig. 10's manual floorplan). *)
  let f =
    Resource_model.achieved_freq_mhz (Resource_model.baseline_config vu37p) vu37p
      ~floorplanned:false
  in
  Alcotest.(check bool) "slower without floorplan" true (f < 350.0)

(* ---------------- Rtl_gen ---------------- *)

let toy = Config.make ~tiles:3 ~lanes:4 ~rows_per_tile:2 ~vrf_words:64 ~instr_buffer_words:64 ()

let test_rtl_validates () =
  let d = Rtl_gen.generate toy in
  Alcotest.(check (list string)) "valid" [] (Design.validate d);
  Alcotest.(check string) "top" Rtl_gen.top_name (Design.top d).Ast.mod_name

let test_rtl_control_attr () =
  let d = Rtl_gen.generate toy in
  let ctl = Design.find_exn d Rtl_gen.control_name in
  Alcotest.(check bool) "control_path attr" true (List.mem "control_path" ctl.Ast.attrs)

let test_rtl_engine_count_scales () =
  let count tiles =
    let d = Rtl_gen.generate (Config.make ~tiles ~lanes:4 ~rows_per_tile:2 ()) in
    let top = Design.find_exn d Rtl_gen.top_name in
    List.length
      (List.filter
         (fun (i : Ast.instance) -> i.Ast.master = Ast.M_module Rtl_gen.engine_name)
         top.Ast.instances)
  in
  Alcotest.(check int) "3 engines" 3 (count 3);
  Alcotest.(check int) "7 engines" 7 (count 7)

let test_rtl_small_instance_pads_writeback () =
  (* tiles * rows * 16 < lanes * 16 exercises the zero-pad path. *)
  let c = Config.make ~tiles:1 ~lanes:8 ~rows_per_tile:2 () in
  let d = Rtl_gen.generate c in
  Alcotest.(check (list string)) "valid" [] (Design.validate d)

let test_rtl_census_scales_with_tiles () =
  let flat tiles =
    let d = Rtl_gen.generate (Config.make ~tiles ~lanes:4 ~rows_per_tile:2 ()) in
    Design.flat_instance_count d Rtl_gen.top_name
  in
  Alcotest.(check bool) "more tiles, more prims" true (flat 6 > flat 3)

(* ---------------- Perf ---------------- *)

let test_perf_mvm_cycles () =
  let c = Config.make ~tiles:21 () in
  (* 1024x1024 on 21x16 rows x 128 lanes: ceil(1024/336)*ceil(1024/128) *)
  Alcotest.(check int) "mvm cycles" (4 * 8) (Perf.mvm_cycles c ~rows:1024 ~cols:1024);
  Alcotest.(check int) "small" 1 (Perf.mvm_cycles c ~rows:1 ~cols:1)

let test_perf_monotone_in_model_size () =
  let c = Resource_model.baseline_config vu37p in
  let lat h =
    let p, _ = Codegen.generate Codegen.Gru ~hidden:h ~input:h ~timesteps:10 in
    (Perf.program_latency c vu37p p).Perf.total_us
  in
  Alcotest.(check bool) "monotone" true (lat 256 < lat 512 && lat 512 < lat 1024)

let test_perf_more_tiles_faster () =
  let lat tiles =
    let c = Config.make ~tiles () in
    let p, _ = Codegen.generate Codegen.Gru ~hidden:1024 ~input:1024 ~timesteps:10 in
    (Perf.program_latency c vu37p p).Perf.total_us
  in
  Alcotest.(check bool) "more tiles help" true (lat 21 < lat 8)

let test_perf_vital_overhead_band () =
  (* Paper Table 4: the virtualization overhead stays in the
     3-9% band. *)
  List.iter
    (fun (kind, h, t) ->
      let c = Resource_model.baseline_config vu37p in
      let p, _ = Codegen.generate kind ~hidden:h ~input:h ~timesteps:t in
      let base = (Perf.program_latency c vu37p p).Perf.total_us in
      let vital =
        (Perf.program_latency c vu37p
           ~deploy:(Perf.vital_deploy ~virtual_blocks:14 ~pattern_aware:true)
           p)
          .Perf.total_us
      in
      let overhead = (vital -. base) /. base in
      Alcotest.(check bool)
        (Printf.sprintf "%s h=%d overhead %.1f%%" (Codegen.kind_name kind) h
           (overhead *. 100.0))
        true
        (overhead > 0.0 && overhead < 0.10))
    [ (Codegen.Gru, 512, 1); (Codegen.Gru, 1024, 20); (Codegen.Lstm, 512, 10) ]

let test_perf_pattern_oblivious_worse () =
  let c = Resource_model.baseline_config vu37p in
  let p, _ = Codegen.generate Codegen.Lstm ~hidden:1024 ~input:1024 ~timesteps:10 in
  let aware =
    (Perf.program_latency c vu37p
       ~deploy:(Perf.vital_deploy ~virtual_blocks:14 ~pattern_aware:true)
       p)
      .Perf.total_us
  in
  let naive =
    (Perf.program_latency c vu37p
       ~deploy:(Perf.vital_deploy ~virtual_blocks:14 ~pattern_aware:false)
       p)
      .Perf.total_us
  in
  Alcotest.(check bool) "pattern-aware wins" true (aware < naive)

let test_perf_weight_streaming_penalty () =
  (* A model over on-chip capacity streams the overflow and slows
     down dramatically (Table 4's KU115 LSTM-1536 dash). *)
  let c = Resource_model.baseline_config ku115 in
  let p, _ = Codegen.generate Codegen.Lstm ~hidden:1536 ~input:1536 ~timesteps:10 in
  let resident = (Perf.program_latency c ku115 ~weights_resident:true p).Perf.total_us in
  let p_small, _ = Codegen.generate Codegen.Lstm ~hidden:1024 ~input:1024 ~timesteps:10 in
  let small = (Perf.program_latency c ku115 p_small).Perf.total_us in
  (* 1536 overflows on KU115 even when "resident": overflow streams. *)
  Alcotest.(check bool) "overflow streams" true (resident > 5.0 *. small)

let test_perf_sync_read_blocks () =
  (* Without the matching send posted, a sync read still takes its
     nominal time; with extra latency it waits for arrival. *)
  let c = Config.make ~tiles:4 () in
  let sync_base = 10_000 in
  let p =
    Program.make
      [
        Instr.V_fill { dst = 0; len = 128; value = 1.0 };
        Instr.V_wr { src = 0; addr = sync_base; len = 128 };
        Instr.V_rd { dst = 1; addr = sync_base; len = 256 };
      ]
  in
  let lat extra_us =
    let extra (i : Instr.t) =
      match i with
      | Instr.V_rd { addr; _ } when addr >= sync_base -> extra_us
      | _ -> 0.0
    in
    (Perf.program_latency c vu37p ~sync_base ~extra_latency_us:extra p).Perf.total_us
  in
  Alcotest.(check bool) "arrival delays" true (lat 50.0 > lat 0.0 +. 40.0)

(* ---------------- Sync module ---------------- *)

let test_sync_module_rtl_valid () =
  let p = Sync_module.make ~sync_base:100_000 () in
  let m = Sync_module.rtl p in
  let d = Design.of_modules [ m ] in
  Alcotest.(check (list string)) "valid" [] (Design.validate d);
  Alcotest.(check bool) "basic" true (Ast.is_basic m)

let test_sync_module_resources_small () =
  let p = Sync_module.make ~sync_base:100_000 () in
  let r = Sync_module.resources p in
  (* Much smaller than a tile engine: that is why scale-down is cheap. *)
  let tile = Resource_model.tile_resources vu37p in
  Alcotest.(check bool) "fraction of a tile" true
    (r.Resource.luts * 5 < tile.Resource.luts);
  Alcotest.(check bool) "has a buffer" true (r.Resource.bram_kb > 0)

let test_sync_module_validation () =
  Alcotest.(check bool) "bad base" true
    (try
       ignore (Sync_module.make ~sync_base:0 ());
       false
     with Invalid_argument _ -> true)

(* Property: accelerator resources are monotone in tile count. *)
let prop_resources_monotone =
  QCheck.Test.make ~name:"resources monotone in tiles" ~count:30
    QCheck.(int_range 1 30)
    (fun tiles ->
      let r1 = Resource_model.accel_resources (Config.make ~tiles ()) vu37p in
      let r2 = Resource_model.accel_resources (Config.make ~tiles:(tiles + 1) ()) vu37p in
      Resource.fits ~need:r1 ~avail:r2)

(* Property: generated RTL validates for any small config. *)
let prop_rtl_valid =
  QCheck.Test.make ~name:"generated RTL validates" ~count:12
    QCheck.(pair (int_range 1 5) (int_range 1 3))
    (fun (tiles, rows) ->
      let c = Config.make ~tiles ~lanes:4 ~rows_per_tile:rows () in
      Design.validate (Rtl_gen.generate c) = [])

let () =
  Alcotest.run "accel"
    [
      ( "config",
        [
          Alcotest.test_case "defaults" `Quick test_config_defaults;
          Alcotest.test_case "validation" `Quick test_config_validation;
          Alcotest.test_case "scale down" `Quick test_config_scale_down;
          Alcotest.test_case "Table 4 fit line" `Quick test_config_weight_capacity_fit_line;
        ] );
      ( "resource_model",
        [
          Alcotest.test_case "baseline tile counts" `Quick test_baseline_tile_counts;
          Alcotest.test_case "Table 2 resources" `Quick test_table2_resources;
          Alcotest.test_case "Table 2 frequency/peak" `Quick test_table2_frequency_and_peak;
          Alcotest.test_case "floorplanning needed" `Quick test_floorplanning_needed;
          QCheck_alcotest.to_alcotest prop_resources_monotone;
        ] );
      ( "rtl_gen",
        [
          Alcotest.test_case "validates" `Quick test_rtl_validates;
          Alcotest.test_case "control attribute" `Quick test_rtl_control_attr;
          Alcotest.test_case "engine count scales" `Quick test_rtl_engine_count_scales;
          Alcotest.test_case "small instance pads" `Quick test_rtl_small_instance_pads_writeback;
          Alcotest.test_case "census scales" `Quick test_rtl_census_scales_with_tiles;
          QCheck_alcotest.to_alcotest prop_rtl_valid;
        ] );
      ( "perf",
        [
          Alcotest.test_case "mvm cycles" `Quick test_perf_mvm_cycles;
          Alcotest.test_case "monotone in model" `Quick test_perf_monotone_in_model_size;
          Alcotest.test_case "more tiles faster" `Quick test_perf_more_tiles_faster;
          Alcotest.test_case "vital overhead band" `Quick test_perf_vital_overhead_band;
          Alcotest.test_case "pattern-oblivious worse" `Quick test_perf_pattern_oblivious_worse;
          Alcotest.test_case "weight streaming penalty" `Quick test_perf_weight_streaming_penalty;
          Alcotest.test_case "sync arrival" `Quick test_perf_sync_read_blocks;
        ] );
      ( "sync_module",
        [
          Alcotest.test_case "rtl valid" `Quick test_sync_module_rtl_valid;
          Alcotest.test_case "resources small" `Quick test_sync_module_resources_small;
          Alcotest.test_case "validation" `Quick test_sync_module_validation;
        ] );
    ]
