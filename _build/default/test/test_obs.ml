(* Tests for the observability registry: JSON emitter/validator,
   counters, log-scale histograms, nested spans and reset
   semantics. *)

module Obs = Mlv_obs.Obs
module Json = Obs.Json

(* ---------------- JSON ---------------- *)

let test_json_render () =
  let v =
    Json.Obj
      [
        ("a", Json.Int 1);
        ("b", Json.Float 2.5);
        ("c", Json.String "x\"y\n");
        ("d", Json.List [ Json.Null; Json.Bool true ]);
      ]
  in
  Alcotest.(check string) "render"
    {|{"a":1,"b":2.5,"c":"x\"y\n","d":[null,true]}|} (Json.to_string v)

let test_json_non_finite () =
  Alcotest.(check string) "nan is null" "null" (Json.to_string (Json.Float Float.nan));
  Alcotest.(check string) "inf is null" "null"
    (Json.to_string (Json.Float Float.infinity))

let test_json_validator () =
  List.iter
    (fun s -> Alcotest.(check bool) ("valid: " ^ s) true (Json.is_valid s))
    [
      "null";
      "true";
      "-12";
      "3.25e-2";
      {|"esc \" \\ A"|};
      "[1, 2, [3]]";
      {|{"k": {"n": []}, "m": 0.5}|};
    ];
  List.iter
    (fun s -> Alcotest.(check bool) ("invalid: " ^ s) false (Json.is_valid s))
    [ ""; "tru"; "[1,]"; "{k:1}"; {|{"k":1|}; "1 2"; "\"unterminated" ]

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("nested", Json.List [ Json.Obj [ ("x", Json.Float 1e-3) ]; Json.Int (-7) ]);
        ("s", Json.String "tab\tand\\slash");
      ]
  in
  Alcotest.(check bool) "emitted JSON validates" true (Json.is_valid (Json.to_string v))

(* ---------------- Counters ---------------- *)

let test_counter_basic () =
  Obs.reset ();
  let c = Obs.Counter.get "test.counter" in
  Alcotest.(check int) "starts at zero" 0 (Obs.Counter.value c);
  Obs.Counter.incr c;
  Obs.Counter.add c 4;
  Alcotest.(check int) "incremented" 5 (Obs.Counter.value c);
  Alcotest.(check string) "name" "test.counter" (Obs.Counter.name c);
  (* get returns the same counter *)
  Obs.Counter.incr (Obs.Counter.get "test.counter");
  Alcotest.(check int) "shared" 6 (Obs.Counter.value c);
  Alcotest.(check bool) "listed" true (List.mem_assoc "test.counter" (Obs.counters ()))

let test_counter_reset_keeps_handle () =
  Obs.reset ();
  let c = Obs.Counter.get "test.reset" in
  Obs.Counter.add c 10;
  Obs.reset ();
  Alcotest.(check int) "zeroed" 0 (Obs.Counter.value c);
  Obs.Counter.incr c;
  Alcotest.(check int) "handle still live" 1 (Obs.Counter.value c);
  Alcotest.(check int) "registry agrees" 1
    (List.assoc "test.reset" (Obs.counters ()))

(* ---------------- Histograms ---------------- *)

let test_histogram_stats () =
  Obs.reset ();
  let h = Obs.Histogram.get "test.hist" in
  Alcotest.(check int) "empty count" 0 (Obs.Histogram.count h);
  List.iter (Obs.Histogram.observe h) [ 10.0; 20.0; 30.0; 40.0 ];
  Alcotest.(check int) "count" 4 (Obs.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 100.0 (Obs.Histogram.sum h);
  Alcotest.(check (float 1e-9)) "mean" 25.0 (Obs.Histogram.mean h);
  Alcotest.(check (float 1e-9)) "min" 10.0 (Obs.Histogram.min h);
  Alcotest.(check (float 1e-9)) "max" 40.0 (Obs.Histogram.max h)

let test_histogram_percentiles () =
  Obs.reset ();
  let h = Obs.Histogram.get "test.pct" in
  (* 100 samples spanning two decades *)
  for i = 1 to 100 do
    Obs.Histogram.observe h (float_of_int i)
  done;
  let p50 = Obs.Histogram.percentile h 50.0 in
  let p90 = Obs.Histogram.percentile h 90.0 in
  let p99 = Obs.Histogram.percentile h 99.0 in
  (* log buckets give ~12% relative resolution *)
  Alcotest.(check bool) "p50 near 50" true (p50 >= 40.0 && p50 <= 60.0);
  Alcotest.(check bool) "p90 near 90" true (p90 >= 75.0 && p90 <= 100.0);
  Alcotest.(check bool) "ordered" true (p50 <= p90 && p90 <= p99);
  Alcotest.(check bool) "clamped to max" true (p99 <= Obs.Histogram.max h);
  Alcotest.(check (float 1e-9)) "p0 is min" (Obs.Histogram.min h)
    (Obs.Histogram.percentile h 0.0);
  Alcotest.(check (float 1e-9)) "p100 is max" (Obs.Histogram.max h)
    (Obs.Histogram.percentile h 100.0)

let test_histogram_rejects_bad_samples () =
  Obs.reset ();
  let h = Obs.Histogram.get "test.bad" in
  Alcotest.(check bool) "nan rejected" true
    (try
       Obs.Histogram.observe h Float.nan;
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "inf rejected" true
    (try
       Obs.Histogram.observe h Float.infinity;
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad percentile arg" true
    (try
       ignore (Obs.Histogram.percentile h 101.0);
       false
     with Invalid_argument _ -> true)

let test_histogram_zero_and_negative () =
  Obs.reset ();
  let h = Obs.Histogram.get "test.zero" in
  List.iter (Obs.Histogram.observe h) [ 0.0; 0.0; 5.0 ];
  Alcotest.(check int) "count includes zeros" 3 (Obs.Histogram.count h);
  Alcotest.(check (float 1e-9)) "min" 0.0 (Obs.Histogram.min h);
  Alcotest.(check (float 1e-9)) "p50 with zeros" 0.0 (Obs.Histogram.percentile h 50.0)

(* ---------------- Spans ---------------- *)

let test_span_nesting () =
  Obs.reset ();
  Obs.clear_sim_clock ();
  Obs.Span.with_ "outer" (fun () ->
      Obs.Span.with_ "inner" (fun () -> ());
      Obs.Span.with_ "inner2" (fun () -> ()));
  let spans = Obs.spans () in
  Alcotest.(check int) "three spans" 3 (List.length spans);
  (* children complete before the parent: oldest-first order *)
  let by_name n = List.find (fun (r : Obs.span_record) -> r.name = n) spans in
  let outer = by_name "outer" and inner = by_name "inner" and inner2 = by_name "inner2" in
  Alcotest.(check (option int)) "outer is root" None outer.parent;
  Alcotest.(check int) "outer depth" 0 outer.depth;
  Alcotest.(check (option int)) "inner nested" (Some outer.id) inner.parent;
  Alcotest.(check (option int)) "inner2 nested" (Some outer.id) inner2.parent;
  Alcotest.(check int) "inner depth" 1 inner.depth;
  Alcotest.(check bool) "durations non-negative" true
    (List.for_all (fun (r : Obs.span_record) -> r.wall_us >= 0.0) spans);
  Alcotest.(check bool) "parent at least as long" true
    (outer.wall_us >= inner.wall_us)

let test_span_exit_idempotent () =
  Obs.reset ();
  let s = Obs.Span.enter "once" in
  Obs.Span.exit s;
  Obs.Span.exit s;
  Alcotest.(check int) "recorded once" 1 (List.length (Obs.spans ()))

let test_span_records_on_exception () =
  Obs.reset ();
  (try Obs.Span.with_ "boom" (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check int) "span recorded" 1 (List.length (Obs.spans_matching "boom"));
  (* the span stack unwound: a new span is a root again *)
  Obs.Span.with_ "after" (fun () -> ());
  let after = List.hd (Obs.spans_matching "after") in
  Alcotest.(check (option int)) "stack unwound" None after.Obs.parent

let test_span_feeds_histogram () =
  Obs.reset ();
  Obs.Span.with_ "timed" (fun () -> ());
  let h = Obs.Histogram.get "span.timed.wall_us" in
  Alcotest.(check int) "histogram fed" 1 (Obs.Histogram.count h)

let test_span_sim_clock () =
  Obs.reset ();
  let now = ref 100.0 in
  Obs.set_sim_clock (fun () -> !now);
  let s = Obs.Span.enter "simmed" in
  now := 350.0;
  Obs.Span.exit s;
  Obs.clear_sim_clock ();
  let r = List.hd (Obs.spans_matching "simmed") in
  Alcotest.(check (float 1e-9)) "start sim time" 100.0 r.Obs.start_sim_us;
  Alcotest.(check (float 1e-9)) "sim duration" 250.0 r.Obs.sim_us

let test_spans_matching_substring () =
  Obs.reset ();
  Obs.Span.with_ "alpha.one" (fun () -> ());
  Obs.Span.with_ "alpha.two" (fun () -> ());
  Obs.Span.with_ "beta" (fun () -> ());
  Alcotest.(check int) "alpha matches" 2 (List.length (Obs.spans_matching "alpha"));
  Alcotest.(check int) "exact" 1 (List.length (Obs.spans_matching "beta"));
  Alcotest.(check int) "none" 0 (List.length (Obs.spans_matching "gamma"))

(* ---------------- Export & reset ---------------- *)

let test_export_json_valid () =
  Obs.reset ();
  Obs.Counter.add (Obs.Counter.get "exp.counter") 3;
  Obs.Histogram.observe (Obs.Histogram.get "exp.hist") 42.0;
  Obs.Span.with_ "exp.span" (fun () -> ());
  let s = Obs.json_string () in
  Alcotest.(check bool) "valid json" true (Json.is_valid s);
  let contains needle hay =
    let nh = String.length hay and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    at 0
  in
  List.iter
    (fun needle -> Alcotest.(check bool) ("contains " ^ needle) true (contains needle s))
    [
      {|"version":1|};
      {|"exp.counter":3|};
      {|"exp.hist"|};
      {|"p99"|};
      {|"exp.span"|};
      {|"spans_dropped":0|};
    ]

let test_write_json_file () =
  Obs.reset ();
  Obs.Counter.incr (Obs.Counter.get "file.counter");
  let path = Filename.temp_file "mlv_obs" ".json" in
  Obs.write_json path;
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "file holds valid json" true (Json.is_valid s)

let test_render_mentions_everything () =
  Obs.reset ();
  Obs.Counter.incr (Obs.Counter.get "ren.counter");
  Obs.Histogram.observe (Obs.Histogram.get "ren.hist") 7.0;
  Obs.Span.with_ "ren.span" (fun () -> ());
  let s = Obs.render () in
  let contains needle =
    let nh = String.length s and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub s i nn = needle || at (i + 1)) in
    at 0
  in
  List.iter
    (fun needle -> Alcotest.(check bool) ("mentions " ^ needle) true (contains needle))
    [ "ren.counter"; "ren.hist"; "ren.span" ]

let test_reset_clears_everything () =
  Obs.reset ();
  Obs.Counter.incr (Obs.Counter.get "wipe.c");
  Obs.Histogram.observe (Obs.Histogram.get "wipe.h") 1.0;
  Obs.Span.with_ "wipe.s" (fun () -> ());
  Obs.reset ();
  Alcotest.(check bool) "counters zero" true
    (List.for_all (fun (_, v) -> v = 0) (Obs.counters ()));
  Alcotest.(check bool) "histograms empty" true
    (List.for_all (fun (_, h) -> Obs.Histogram.count h = 0) (Obs.histograms ()));
  Alcotest.(check int) "spans gone" 0 (List.length (Obs.spans ()));
  Alcotest.(check int) "drop count cleared" 0 (Obs.dropped_spans ())

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "render" `Quick test_json_render;
          Alcotest.test_case "non-finite" `Quick test_json_non_finite;
          Alcotest.test_case "validator" `Quick test_json_validator;
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
        ] );
      ( "counter",
        [
          Alcotest.test_case "basic" `Quick test_counter_basic;
          Alcotest.test_case "reset keeps handle" `Quick test_counter_reset_keeps_handle;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "stats" `Quick test_histogram_stats;
          Alcotest.test_case "percentiles" `Quick test_histogram_percentiles;
          Alcotest.test_case "rejects bad samples" `Quick
            test_histogram_rejects_bad_samples;
          Alcotest.test_case "zero samples" `Quick test_histogram_zero_and_negative;
        ] );
      ( "span",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "exit idempotent" `Quick test_span_exit_idempotent;
          Alcotest.test_case "exception safety" `Quick test_span_records_on_exception;
          Alcotest.test_case "feeds histogram" `Quick test_span_feeds_histogram;
          Alcotest.test_case "sim clock" `Quick test_span_sim_clock;
          Alcotest.test_case "substring match" `Quick test_spans_matching_substring;
        ] );
      ( "export",
        [
          Alcotest.test_case "json valid" `Quick test_export_json_valid;
          Alcotest.test_case "write file" `Quick test_write_json_file;
          Alcotest.test_case "render" `Quick test_render_mentions_everything;
          Alcotest.test_case "reset" `Quick test_reset_clears_everything;
        ] );
    ]
