test/test_eqcheck.ml: Alcotest Buffer List Mlv_eqcheck Mlv_rtl Printf QCheck QCheck_alcotest
