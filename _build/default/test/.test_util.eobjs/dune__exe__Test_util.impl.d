test/test_util.ml: Alcotest Array Float Fun Int64 List Mlv_util String
