test/test_util.ml: Alcotest Array Float Fun Gc Int64 List Mlv_util String Weak
