test/test_eqcheck.mli:
