test/test_vital.ml: Alcotest Array Float List Mlv_fpga Mlv_vital Printf QCheck QCheck_alcotest
