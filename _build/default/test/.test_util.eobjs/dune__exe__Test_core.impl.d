test/test_core.ml: Alcotest Array Buffer Format Gen Lazy List Mlv_accel Mlv_cluster Mlv_core Mlv_fpga Mlv_isa Mlv_obs Mlv_rtl Mlv_util Mlv_vital Printf QCheck QCheck_alcotest String
