test/test_obs.ml: Alcotest Filename Float List Mlv_obs String Sys
