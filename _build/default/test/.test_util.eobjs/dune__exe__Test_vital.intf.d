test/test_vital.mli:
