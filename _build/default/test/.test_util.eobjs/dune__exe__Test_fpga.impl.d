test/test_fpga.ml: Alcotest Float List Mlv_fpga Mlv_rtl
