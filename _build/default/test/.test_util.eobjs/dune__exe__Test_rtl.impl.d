test/test_rtl.ml: Alcotest Buffer List Mlv_core Mlv_eqcheck Mlv_rtl Option Printf QCheck QCheck_alcotest String
