test/test_workload.ml: Alcotest Array Float List Mlv_isa Mlv_util Mlv_workload QCheck QCheck_alcotest
