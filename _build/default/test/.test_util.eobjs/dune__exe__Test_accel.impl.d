test/test_accel.ml: Alcotest Float List Mlv_accel Mlv_fpga Mlv_isa Mlv_rtl Printf QCheck QCheck_alcotest
