test/test_sysim.mli:
