test/test_isa.ml: Alcotest Array Float Gen Hashtbl List Mlv_isa Mlv_util Printf QCheck QCheck_alcotest
