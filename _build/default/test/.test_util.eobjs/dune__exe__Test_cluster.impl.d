test/test_cluster.ml: Alcotest Float List Mlv_cluster Mlv_fpga Printf QCheck QCheck_alcotest
