test/test_sysim.ml: Alcotest Array Lazy List Mlv_core Mlv_isa Mlv_sysim Mlv_workload Printf
