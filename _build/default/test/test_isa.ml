(* Tests for the AS ISA substrate: number formats, instructions,
   programs, assembler, executor and GRU/LSTM code generation. *)

module Rng = Mlv_util.Rng
module Fp16 = Mlv_isa.Fp16
module Bfp = Mlv_isa.Bfp
module Instr = Mlv_isa.Instr
module Program = Mlv_isa.Program
module Asm = Mlv_isa.Asm
module Exec = Mlv_isa.Exec
module Codegen = Mlv_isa.Codegen
module Encoding = Mlv_isa.Encoding
module Opt = Mlv_isa.Opt
module Mlp = Mlv_isa.Mlp

(* ---------------- Fp16 ---------------- *)

let test_fp16_roundtrip_exact () =
  List.iter
    (fun f ->
      Alcotest.(check (float 0.0)) (string_of_float f) f Fp16.(to_float (of_float f)))
    [ 0.0; 1.0; -1.0; 0.5; 2.0; 1024.0; 0.25; -0.125; 65504.0 ]

let test_fp16_one () = Alcotest.(check (float 0.0)) "one" 1.0 (Fp16.to_float Fp16.one)

let test_fp16_overflow () =
  let h = Fp16.of_float 1e6 in
  Alcotest.(check bool) "inf" true (Float.is_integer (Fp16.to_float h) = false || Fp16.to_float h = infinity);
  Alcotest.(check bool) "not finite" false (Fp16.is_finite h)

let test_fp16_rounding_error_bound () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let f = (Rng.float rng 2.0 -. 1.0) *. 100.0 in
    let r = Fp16.round_float f in
    let rel = Float.abs (r -. f) /. Float.max 1e-9 (Float.abs f) in
    (* half has 11 significand bits: relative error <= 2^-11 *)
    Alcotest.(check bool) "rel err" true (rel <= 1.0 /. 2048.0 +. 1e-12)
  done

let test_fp16_subnormal () =
  let tiny = 2.0 ** -24.0 in
  Alcotest.(check (float 0.0)) "smallest subnormal" tiny Fp16.(to_float (of_float tiny))

let test_fp16_arith () =
  let a = Fp16.of_float 1.5 and b = Fp16.of_float 2.25 in
  Alcotest.(check (float 0.0)) "add" 3.75 Fp16.(to_float (add a b));
  Alcotest.(check (float 0.0)) "sub" (-0.75) Fp16.(to_float (sub a b));
  Alcotest.(check (float 0.0)) "mul" 3.375 Fp16.(to_float (mul a b))

(* ---------------- Bfp ---------------- *)

let test_bfp_roundtrip_pow2 () =
  (* Powers of two within mantissa range encode exactly. *)
  let xs = [| 1.0; 2.0; 4.0; -8.0; 0.5 |] in
  let b = Bfp.encode ~mantissa_bits:8 xs in
  let ys = Bfp.decode b in
  Array.iteri (fun i x -> Alcotest.(check (float 1e-9)) "exact" x ys.(i)) xs

let test_bfp_zero_block () =
  let b = Bfp.encode ~mantissa_bits:6 [| 0.0; 0.0 |] in
  Alcotest.(check (array (float 0.0))) "zero" [| 0.0; 0.0 |] (Bfp.decode b)

let test_bfp_quantization_error () =
  let rng = Rng.create 7 in
  let mantissa_bits = 6 in
  for _ = 1 to 200 do
    let xs = Array.init 64 (fun _ -> Rng.float rng 2.0 -. 1.0) in
    let ys = Bfp.quantize ~mantissa_bits xs in
    let max_mag = Array.fold_left (fun m x -> Float.max m (Float.abs x)) 0.0 xs in
    (* Absolute error bounded by one mantissa step. *)
    let step = max_mag /. float_of_int (1 lsl (mantissa_bits - 2)) in
    Array.iteri
      (fun i x ->
        Alcotest.(check bool) "bounded" true (Float.abs (x -. ys.(i)) <= step +. 1e-12))
      xs
  done

let test_bfp_dot_matches_quantized () =
  let rng = Rng.create 11 in
  let xs = Array.init 32 (fun _ -> Rng.float rng 2.0 -. 1.0) in
  let ys = Array.init 32 (fun _ -> Rng.float rng 2.0 -. 1.0) in
  let bx = Bfp.encode ~mantissa_bits:8 xs and by = Bfp.encode ~mantissa_bits:8 ys in
  let dot = Bfp.dot bx by in
  let qx = Bfp.decode bx and qy = Bfp.decode by in
  let expect = ref 0.0 in
  Array.iteri (fun i x -> expect := !expect +. (x *. qy.(i))) qx;
  Alcotest.(check (float 1e-9)) "exact integer dot" !expect dot

let test_bfp_dot_length_mismatch () =
  let a = Bfp.encode ~mantissa_bits:6 [| 1.0 |] in
  let b = Bfp.encode ~mantissa_bits:6 [| 1.0; 2.0 |] in
  Alcotest.check_raises "mismatch" (Invalid_argument "Bfp.dot: length mismatch")
    (fun () -> ignore (Bfp.dot a b))

(* ---------------- Instructions / programs ---------------- *)

let test_instr_dependencies () =
  let w1 = Instr.V_fill { dst = 1; len = 8; value = 0.0 } in
  let r1 = Instr.Act { dst = 2; src = 1; f = Instr.Tanh } in
  let w1b = Instr.V_fill { dst = 1; len = 8; value = 1.0 } in
  Alcotest.(check bool) "RAW" true (Instr.depends ~earlier:w1 ~later:r1);
  Alcotest.(check bool) "WAR" true (Instr.depends ~earlier:r1 ~later:w1b);
  Alcotest.(check bool) "WAW" true (Instr.depends ~earlier:w1 ~later:w1b);
  let indep = Instr.Act { dst = 3; src = 4; f = Instr.Relu } in
  Alcotest.(check bool) "independent" false (Instr.depends ~earlier:w1 ~later:indep)

let test_instr_memory_dependencies () =
  let wr = Instr.V_wr { src = 0; addr = 100; len = 10 } in
  let rd_overlap = Instr.V_rd { dst = 1; addr = 105; len = 10 } in
  let rd_disjoint = Instr.V_rd { dst = 1; addr = 200; len = 10 } in
  let rd2 = Instr.V_rd { dst = 2; addr = 100; len = 4 } in
  Alcotest.(check bool) "write-read overlap" true (Instr.depends ~earlier:wr ~later:rd_overlap);
  Alcotest.(check bool) "write-read disjoint" false (Instr.depends ~earlier:wr ~later:rd_disjoint);
  (* two reads commute even when overlapping *)
  let rd3 = Instr.V_rd { dst = 3; addr = 102; len = 4 } in
  Alcotest.(check bool) "read-read" false (Instr.depends ~earlier:rd2 ~later:rd3)

let test_program_validate_ok () =
  let p =
    Program.make
      [
        Instr.V_fill { dst = 0; len = 4; value = 1.0 };
        Instr.Act { dst = 1; src = 0; f = Instr.Relu };
      ]
  in
  Alcotest.(check (list string)) "valid" [] (Program.validate p)

let test_program_validate_uninitialized () =
  let p = Program.make [ Instr.Act { dst = 1; src = 0; f = Instr.Relu } ] in
  Alcotest.(check bool) "catches" true (Program.validate p <> [])

let test_program_validate_bounds () =
  let p = Program.make ~vregs:2 [ Instr.V_fill { dst = 5; len = 4; value = 0.0 } ] in
  Alcotest.(check bool) "catches oob" true (Program.validate p <> [])

let test_program_dep_predecessors () =
  let p =
    Program.make
      [
        Instr.V_fill { dst = 0; len = 4; value = 1.0 };
        (* 0 *)
        Instr.V_fill { dst = 1; len = 4; value = 2.0 };
        (* 1 *)
        Instr.Vv_add { dst = 2; a = 0; b = 1 };
        (* 2: deps 0,1 *)
      ]
  in
  let preds = Program.dep_predecessors p in
  Alcotest.(check (list int)) "instr 2 deps" [ 0; 1 ] preds.(2);
  Alcotest.(check (list int)) "instr 1 deps" [] preds.(1)

let test_program_histogram () =
  let p =
    Program.make
      [
        Instr.V_fill { dst = 0; len = 4; value = 1.0 };
        Instr.V_fill { dst = 1; len = 4; value = 1.0 };
        Instr.Vv_add { dst = 2; a = 0; b = 1 };
      ]
  in
  Alcotest.(check (list (pair string int)))
    "histogram"
    [ ("vadd", 1); ("vfill", 2) ]
    (Program.opcode_histogram p)

(* ---------------- Assembler ---------------- *)

let test_asm_roundtrip () =
  let p, _ = Codegen.generate Codegen.Gru ~hidden:8 ~input:8 ~timesteps:2 in
  let text = Asm.to_string p in
  match Asm.of_string text with
  | Error msg -> Alcotest.fail msg
  | Ok p2 ->
    Alcotest.(check int) "same length" (Program.length p) (Program.length p2);
    Alcotest.(check string) "same text" text (Asm.to_string p2)

let test_asm_comments_and_blanks () =
  let src = "# a comment\n\n  vfill v0, 4, 1.5  # trailing\nnop\n" in
  match Asm.of_string src with
  | Error msg -> Alcotest.fail msg
  | Ok p -> Alcotest.(check int) "two instrs" 2 (Program.length p)

let test_asm_errors () =
  (match Asm.of_string "bogus v0, v1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted bogus opcode");
  (match Asm.of_string "mvm v0, v1, v2" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted wrong register class");
  match Asm.of_string "act v0, v1, bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted bogus activation"

(* ---------------- Executor ---------------- *)

let test_exec_vector_ops () =
  let p =
    Program.make
      [
        Instr.V_fill { dst = 0; len = 4; value = 2.0 };
        Instr.V_fill { dst = 1; len = 4; value = 3.0 };
        Instr.Vv_add { dst = 2; a = 0; b = 1 };
        Instr.Vv_mul { dst = 3; a = 0; b = 1 };
        Instr.Vv_sub { dst = 4; a = 1; b = 0 };
      ]
  in
  let ex = Exec.create ~dram:(Array.make 16 0.0) p in
  (match Exec.run ex ~max_steps:100 with
  | Exec.Done -> ()
  | _ -> Alcotest.fail "did not finish");
  Alcotest.(check (array (float 1e-6))) "add" (Array.make 4 5.0) (Exec.vreg ex 2);
  Alcotest.(check (array (float 1e-6))) "mul" (Array.make 4 6.0) (Exec.vreg ex 3);
  Alcotest.(check (array (float 1e-6))) "sub" (Array.make 4 1.0) (Exec.vreg ex 4)

let test_exec_dram_roundtrip () =
  let dram = Array.init 32 float_of_int in
  let p =
    Program.make
      [
        Instr.V_rd { dst = 0; addr = 4; len = 8 };
        Instr.V_wr { src = 0; addr = 20; len = 8 };
      ]
  in
  let ex = Exec.create ~dram p in
  ignore (Exec.run ex ~max_steps:10);
  Alcotest.(check (array (float 0.0))) "copied" (Array.init 8 (fun i -> float_of_int (i + 4)))
    (Array.sub dram 20 8)

let test_exec_dram_oob () =
  let p = Program.make [ Instr.V_rd { dst = 0; addr = 100; len = 8 } ] in
  let ex = Exec.create ~dram:(Array.make 16 0.0) p in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Exec.run ex ~max_steps:10);
       false
     with Failure _ -> true)

let test_exec_mvm_exact () =
  (* 2x2 identity matrix times [3;4] = [3;4]. *)
  let dram = Array.make 16 0.0 in
  dram.(0) <- 1.0;
  dram.(3) <- 1.0;
  dram.(4) <- 3.0;
  dram.(5) <- 4.0;
  let p =
    Program.make
      [
        Instr.M_rd { dst = 0; addr = 0; rows = 2; cols = 2 };
        Instr.V_rd { dst = 0; addr = 4; len = 2 };
        Instr.Mvm { dst = 1; mat = 0; src = 0 };
      ]
  in
  let ex = Exec.create ~exact:true ~dram p in
  ignore (Exec.run ex ~max_steps:10);
  Alcotest.(check (array (float 1e-9))) "identity mvm" [| 3.0; 4.0 |] (Exec.vreg ex 1)

let test_exec_mvm_quantized_close () =
  let rng = Rng.create 21 in
  let h = 16 in
  let dram = Array.make (h * h * 2) 0.0 in
  for i = 0 to (h * h) - 1 do
    dram.(i) <- Rng.float rng 1.0 -. 0.5
  done;
  for i = 0 to h - 1 do
    dram.((h * h) + i) <- Rng.float rng 1.0 -. 0.5
  done;
  let p =
    Program.make
      [
        Instr.M_rd { dst = 0; addr = 0; rows = h; cols = h };
        Instr.V_rd { dst = 0; addr = h * h; len = h };
        Instr.Mvm { dst = 1; mat = 0; src = 0 };
      ]
  in
  let run exact =
    let ex = Exec.create ~exact ~dram:(Array.copy dram) p in
    ignore (Exec.run ex ~max_steps:10);
    Exec.vreg ex 1
  in
  let q = run false and e = run true in
  Array.iteri
    (fun i x ->
      Alcotest.(check bool) "close" true (Float.abs (x -. e.(i)) < 0.25))
    q

let test_exec_activations () =
  let p =
    Program.make
      [
        Instr.V_fill { dst = 0; len = 1; value = 0.0 };
        Instr.Act { dst = 1; src = 0; f = Instr.Sigmoid };
        Instr.Act { dst = 2; src = 0; f = Instr.Tanh };
        Instr.V_fill { dst = 3; len = 1; value = -2.0 };
        Instr.Act { dst = 4; src = 3; f = Instr.Relu };
      ]
  in
  let ex = Exec.create ~exact:true ~dram:(Array.make 4 0.0) p in
  ignore (Exec.run ex ~max_steps:10);
  Alcotest.(check (float 1e-9)) "sigmoid(0)" 0.5 (Exec.vreg ex 1).(0);
  Alcotest.(check (float 1e-9)) "tanh(0)" 0.0 (Exec.vreg ex 2).(0);
  Alcotest.(check (float 1e-9)) "relu(-2)" 0.0 (Exec.vreg ex 4).(0)

let test_exec_sync_port () =
  (* A write to the sync address goes to the port; a read stalls until
     data arrives. *)
  let mailbox : (int, float array) Hashtbl.t = Hashtbl.create 4 in
  let port =
    {
      Exec.send = (fun ~addr data -> Hashtbl.replace mailbox addr data);
      recv = (fun ~addr ~len:_ -> Hashtbl.find_opt mailbox addr);
    }
  in
  let sync_base = 1000 in
  let p =
    Program.make
      [
        Instr.V_fill { dst = 0; len = 4; value = 7.0 };
        Instr.V_rd { dst = 1; addr = sync_base; len = 4 };
      ]
  in
  let ex = Exec.create ~sync_base ~port ~dram:(Array.make 8 0.0) p in
  (* First run stalls at the sync read. *)
  (match Exec.run ex ~max_steps:10 with
  | Exec.Stalled -> ()
  | _ -> Alcotest.fail "expected stall");
  Alcotest.(check int) "pc stuck at read" 1 (Exec.pc ex);
  (* Deliver data, then it completes. *)
  Hashtbl.replace mailbox sync_base [| 1.0; 2.0; 3.0; 4.0 |];
  (match Exec.run ex ~max_steps:10 with
  | Exec.Done -> ()
  | _ -> Alcotest.fail "expected done");
  Alcotest.(check (array (float 0.0))) "received" [| 1.0; 2.0; 3.0; 4.0 |] (Exec.vreg ex 1)

let test_exec_sync_send () =
  let sent = ref None in
  let port =
    {
      Exec.send = (fun ~addr data -> sent := Some (addr, data));
      recv = (fun ~addr:_ ~len:_ -> None);
    }
  in
  let sync_base = 1000 in
  let p =
    Program.make
      [
        Instr.V_fill { dst = 0; len = 2; value = 5.0 };
        Instr.V_wr { src = 0; addr = sync_base + 3; len = 2 };
      ]
  in
  let ex = Exec.create ~sync_base ~port ~dram:(Array.make 8 0.0) p in
  ignore (Exec.run ex ~max_steps:10);
  match !sent with
  | Some (addr, data) ->
    Alcotest.(check int) "addr" (sync_base + 3) addr;
    Alcotest.(check (array (float 0.0))) "data" [| 5.0; 5.0 |] data
  | None -> Alcotest.fail "nothing sent"

(* ---------------- Codegen vs golden model ---------------- *)

let check_codegen kind =
  let hidden = 24 and input = 24 and timesteps = 5 in
  let p, layout = Codegen.generate kind ~hidden ~input ~timesteps in
  Alcotest.(check (list string)) "program valid" [] (Program.validate p);
  let rng = Rng.create 31 in
  let dram = Codegen.init_dram ~rng layout in
  let golden = Codegen.golden layout (Array.copy dram) in
  (* exact executor must match golden almost exactly *)
  let ex = Exec.create ~exact:true ~dram:(Array.copy dram) p in
  (match Exec.run ex ~max_steps:1_000_000 with
  | Exec.Done -> ()
  | _ -> Alcotest.fail "exact run did not finish");
  let h_exact = Exec.vreg ex 1 in
  Array.iteri
    (fun i g ->
      Alcotest.(check (float 1e-9)) (Printf.sprintf "h[%d]" i) g h_exact.(i))
    golden.(timesteps - 1);
  (* quantized executor stays within BFP/fp16 noise *)
  let exq = Exec.create ~dram:(Array.copy dram) p in
  (match Exec.run exq ~max_steps:1_000_000 with
  | Exec.Done -> ()
  | _ -> Alcotest.fail "quantized run did not finish");
  let h_q = Exec.vreg exq 1 in
  Array.iteri
    (fun i g ->
      Alcotest.(check bool)
        (Printf.sprintf "h_q[%d] close (%g vs %g)" i h_q.(i) g)
        true
        (Float.abs (h_q.(i) -. g) < 0.15))
    golden.(timesteps - 1)

let test_codegen_lstm () = check_codegen Codegen.Lstm
let test_codegen_gru () = check_codegen Codegen.Gru

let test_codegen_layout () =
  let _, layout = Codegen.generate Codegen.Lstm ~hidden:4 ~input:3 ~timesteps:2 in
  Alcotest.(check int) "8 weights" 8 (List.length layout.Codegen.weights);
  (* 4 input-facing 4x3 + 4 recurrent 4x4 *)
  let total = List.fold_left (fun a (w : Codegen.weight_spec) -> a + (w.rows * w.cols)) 0 layout.Codegen.weights in
  Alcotest.(check int) "weight words" ((4 * (4 * 3)) + (4 * (4 * 4))) total;
  Alcotest.(check int) "dram size" (total + (2 * 3) + (2 * 4)) layout.Codegen.dram_words

let test_codegen_writes_every_step () =
  let hidden = 8 and input = 8 and timesteps = 3 in
  let p, layout = Codegen.generate Codegen.Gru ~hidden ~input ~timesteps in
  let rng = Rng.create 41 in
  let dram = Codegen.init_dram ~rng layout in
  let golden = Codegen.golden layout (Array.copy dram) in
  let ex = Exec.create ~exact:true ~dram p in
  ignore (Exec.run ex ~max_steps:100_000);
  for t = 0 to timesteps - 1 do
    let h = Array.sub dram (layout.Codegen.h_out_base + (t * hidden)) hidden in
    Array.iteri
      (fun i g -> Alcotest.(check (float 1e-9)) (Printf.sprintf "t%d h[%d]" t i) g h.(i))
      golden.(t)
  done

(* Property: assembler round-trips arbitrary well-formed programs. *)
let prop_asm_roundtrip =
  let gen =
    QCheck.Gen.(
      let instr =
        oneof
          [
            map (fun (d, l) -> Instr.V_fill { dst = d; len = l + 1; value = 1.0 })
              (pair (int_bound 15) (int_bound 63));
            map (fun (d, m, s) -> Instr.Mvm { dst = d; mat = m; src = s })
              (triple (int_bound 15) (int_bound 7) (int_bound 15));
            map (fun (d, a, b) -> Instr.Vv_add { dst = d; a; b })
              (triple (int_bound 15) (int_bound 15) (int_bound 15));
            map (fun (d, a, l) -> Instr.V_rd { dst = d; addr = a; len = l + 1 })
              (triple (int_bound 15) (int_bound 1000) (int_bound 63));
            return Instr.Nop;
          ]
      in
      list_size (int_range 1 40) instr)
  in
  QCheck.Test.make ~name:"asm round-trip" ~count:100
    (QCheck.make gen) (fun instrs ->
      let p = Program.make instrs in
      match Asm.of_string (Asm.to_string p) with
      | Ok p2 -> Asm.to_string p = Asm.to_string p2
      | Error _ -> false)

(* Property: fp16 round-trip is idempotent. *)
let prop_fp16_idempotent =
  QCheck.Test.make ~name:"fp16 idempotent" ~count:500
    (QCheck.float_range (-1000.0) 1000.0) (fun f ->
      let once = Fp16.round_float f in
      Fp16.round_float once = once)

(* Property: BFP quantization is idempotent. *)
let prop_bfp_idempotent =
  QCheck.Test.make ~name:"bfp idempotent" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 32) (float_range (-10.0) 10.0))
    (fun xs ->
      let xs = Array.of_list xs in
      let once = Bfp.quantize ~mantissa_bits:6 xs in
      let twice = Bfp.quantize ~mantissa_bits:6 once in
      Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-9) once twice)


(* ---------------- Encoding ---------------- *)

let test_encoding_roundtrip_program () =
  let p, _ = Codegen.generate Codegen.Lstm ~hidden:16 ~input:16 ~timesteps:2 in
  let words = Encoding.encode_program p in
  match Encoding.decode_program ~vregs:p.Program.vregs ~mregs:p.Program.mregs words with
  | Error e -> Alcotest.fail e
  | Ok q ->
    Alcotest.(check string) "identical disassembly" (Asm.to_string p) (Asm.to_string q)

let test_encoding_fp16_immediate () =
  let w = Encoding.encode (Instr.V_fill { dst = 3; len = 8; value = 0.333 }) in
  match Encoding.decode w with
  | Ok (Instr.V_fill { value; _ }) ->
    Alcotest.(check (float 1e-9)) "fp16 rounded" (Fp16.round_float 0.333) value
  | _ -> Alcotest.fail "wrong decode"

let test_encoding_field_ranges () =
  Alcotest.(check bool) "vreg range" true
    (try
       ignore (Encoding.encode (Instr.Mvm { dst = 32; mat = 0; src = 0 }));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "addr range" true
    (try
       ignore (Encoding.encode (Instr.V_rd { dst = 0; addr = 0x1_0000_0000; len = 1 }));
       false
     with Invalid_argument _ -> true)

let test_encoding_bad_opcode () =
  match Encoding.decode 0xFC00000000000000L with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted invalid opcode"

let test_encoding_hex () =
  let w = Encoding.encode Instr.Nop in
  Alcotest.(check string) "nop hex" "0000000000000000" (Encoding.to_hex w);
  (match Encoding.of_hex "00000000000000ff" with
  | Ok v -> Alcotest.(check int64) "parsed" 255L v
  | Error e -> Alcotest.fail e);
  match Encoding.of_hex "zz" with Error _ -> () | Ok _ -> Alcotest.fail "bad hex accepted"

let prop_encoding_roundtrip =
  let gen =
    QCheck.Gen.(
      oneof
        [
          map (fun (d, a, l) -> Instr.V_rd { dst = d; addr = a; len = l + 1 })
            (triple (int_bound 31) (int_bound 1_000_000) (int_bound 65534));
          map (fun (d, a, l) -> Instr.V_wr { src = d; addr = a; len = l + 1 })
            (triple (int_bound 31) (int_bound 1_000_000) (int_bound 65534));
          map (fun (d, m, s) -> Instr.Mvm { dst = d; mat = m; src = s })
            (triple (int_bound 31) (int_bound 15) (int_bound 31));
          map (fun (d, a, b) -> Instr.Vv_sub { dst = d; a; b })
            (triple (int_bound 31) (int_bound 31) (int_bound 31));
          map (fun (d, a, r, c) ->
              Instr.M_rd { dst = d; addr = a; rows = r + 1; cols = c + 1 })
            (quad (int_bound 15) (int_bound 100_000) (int_bound 4094) (int_bound 4094));
          return Instr.Nop;
        ])
  in
  QCheck.Test.make ~name:"encoding round-trip" ~count:300 (QCheck.make gen) (fun i ->
      match Encoding.decode (Encoding.encode i) with Ok j -> i = j | Error _ -> false)

(* ---------------- Optimizer ---------------- *)

let test_opt_removes_nops () =
  let p = Program.make [ Instr.Nop; Instr.V_fill { dst = 0; len = 1; value = 1.0 }; Instr.Nop ] in
  Alcotest.(check int) "one left" 1 (Program.length (Opt.remove_nops p))

let test_opt_dead_overwrite () =
  let p =
    Program.make
      [
        Instr.V_fill { dst = 0; len = 4; value = 1.0 };
        (* dead *)
        Instr.V_fill { dst = 0; len = 4; value = 2.0 };
        Instr.V_wr { src = 0; addr = 0; len = 4 };
      ]
  in
  let q = Opt.optimize p in
  Alcotest.(check int) "dead removed" 2 (Program.length q)

let test_opt_keeps_read_values () =
  let p =
    Program.make
      [
        Instr.V_fill { dst = 0; len = 4; value = 1.0 };
        Instr.Act { dst = 1; src = 0; f = Instr.Relu };
        Instr.V_fill { dst = 0; len = 4; value = 2.0 };
        Instr.V_wr { src = 1; addr = 0; len = 4 };
      ]
  in
  (* The first fill is read by the act; the second is live at exit. *)
  Alcotest.(check int) "nothing removed" 4 (Program.length (Opt.optimize p))

let test_opt_codegen_is_clean () =
  (* The generator should not emit removable instructions. *)
  let p, _ = Codegen.generate Codegen.Gru ~hidden:16 ~input:16 ~timesteps:3 in
  Alcotest.(check int) "already minimal" (Program.length p) (Program.length (Opt.optimize p))

let prop_opt_preserves_semantics =
  QCheck.Test.make ~name:"optimizer preserves DRAM semantics" ~count:50
    QCheck.(list_of_size (Gen.int_range 1 25) (int_bound 1000))
    (fun seeds ->
      (* Build a random straight-line program from seeds. *)
      let instr k =
        match k mod 6 with
        | 0 -> Instr.V_fill { dst = k mod 8; len = 4; value = float_of_int (k mod 9) }
        | 1 -> Instr.Nop
        | 2 -> Instr.V_fill { dst = (k / 7) mod 8; len = 4; value = 2.0 }
        | 3 -> Instr.V_rd { dst = k mod 8; addr = 4 * (k mod 10); len = 4 }
        | 4 -> Instr.V_wr { src = k mod 8; addr = 4 * (k mod 10); len = 4 }
        | _ -> Instr.Act { dst = k mod 8; src = (k / 3) mod 8; f = Instr.Relu }
      in
      (* Initialize every register first so reads are always valid. *)
      let init = List.init 8 (fun r -> Instr.V_fill { dst = r; len = 4; value = 0.0 }) in
      let p = Program.make (init @ List.map instr seeds) in
      let run prog =
        let dram = Array.make 64 0.5 in
        let ex = Exec.create ~exact:true ~dram prog in
        ignore (Exec.run ex ~max_steps:10_000);
        dram
      in
      run p = run (Opt.optimize p))


(* ---------------- MLP ---------------- *)

let test_mlp_spec_validation () =
  Alcotest.(check bool) "one dim" true
    (try
       ignore (Mlp.make_spec [ 8 ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad dim" true
    (try
       ignore (Mlp.make_spec [ 8; 0 ]);
       false
     with Invalid_argument _ -> true)

let test_mlp_weight_words () =
  let spec = Mlp.make_spec [ 10; 20; 5 ] in
  Alcotest.(check int) "params" ((20 * 10) + (5 * 20)) (Mlp.weight_words spec)

let test_mlp_matches_golden () =
  let spec = Mlp.make_spec ~activation:Instr.Tanh [ 16; 24; 8 ] in
  let batch = 4 in
  let p, lay = Mlp.generate spec ~batch in
  Alcotest.(check (list string)) "valid" [] (Program.validate p);
  let rng = Rng.create 17 in
  let dram = Mlp.init_dram ~rng lay in
  let golden = Mlp.golden lay (Array.copy dram) in
  let ex = Exec.create ~exact:true ~dram p in
  (match Exec.run ex ~max_steps:100_000 with
  | Exec.Done -> ()
  | _ -> Alcotest.fail "did not finish");
  Array.iteri
    (fun b g ->
      let y = Array.sub dram (lay.Mlp.y_base + (b * lay.Mlp.output_dim)) lay.Mlp.output_dim in
      Array.iteri
        (fun i v -> Alcotest.(check (float 1e-9)) (Printf.sprintf "b%d y[%d]" b i) g.(i) v)
        y)
    golden

let test_mlp_quantized_close () =
  let spec = Mlp.make_spec [ 16; 16 ] in
  let p, lay = Mlp.generate spec ~batch:1 in
  let rng = Rng.create 23 in
  let dram = Mlp.init_dram ~rng lay in
  let golden = Mlp.golden lay (Array.copy dram) in
  let ex = Exec.create ~dram p in
  ignore (Exec.run ex ~max_steps:100_000);
  let y = Array.sub dram lay.Mlp.y_base lay.Mlp.output_dim in
  Array.iteri
    (fun i v ->
      Alcotest.(check bool) "close" true (Float.abs (v -. golden.(0).(i)) < 0.3))
    y


(* ---------------- Hardware loops ---------------- *)

let test_loop_matches_unrolled () =
  List.iter
    (fun kind ->
      let hidden = 16 and timesteps = 4 in
      let pu, lay = Codegen.generate kind ~hidden ~input:hidden ~timesteps in
      let pl, _ = Codegen.generate_looped kind ~hidden ~input:hidden ~timesteps in
      Alcotest.(check (list string)) "looped valid" [] (Program.validate pl);
      Alcotest.(check bool) "much smaller" true
        (Program.length pl * 2 < Program.length pu);
      let rng = Rng.create 13 in
      let dram = Codegen.init_dram ~rng lay in
      let run p =
        let d = Array.copy dram in
        let ex = Exec.create ~exact:true ~dram:d p in
        (match Exec.run ex ~max_steps:1_000_000 with
        | Exec.Done -> ()
        | _ -> Alcotest.fail "did not finish");
        d
      in
      Alcotest.(check bool) (Codegen.kind_name kind ^ " identical DRAM") true
        (run pu = run pl))
    [ Codegen.Lstm; Codegen.Gru ]

let test_loop_validate_errors () =
  let unterminated = Program.make [ Instr.Loop { count = 3 }; Instr.Nop ] in
  Alcotest.(check bool) "unterminated" true (Program.validate unterminated <> []);
  let dangling = Program.make [ Instr.Nop; Instr.End_loop ] in
  Alcotest.(check bool) "dangling endloop" true (Program.validate dangling <> []);
  let zero = Program.make [ Instr.Loop { count = 0 }; Instr.End_loop ] in
  Alcotest.(check bool) "zero count" true (Program.validate zero <> [])

let test_loop_nested () =
  (* 3 x 4 inner fills: the indexed write sees the inner iteration. *)
  let p =
    Program.make
      [
        Instr.V_fill { dst = 0; len = 2; value = 1.0 };
        Instr.Loop { count = 3 };
        Instr.Loop { count = 4 };
        Instr.V_wr_i { src = 0; base = 0; stride = 2; len = 2 };
        Instr.End_loop;
        Instr.End_loop;
      ]
  in
  let dram = Array.make 16 0.0 in
  let ex = Exec.create ~exact:true ~dram p in
  (match Exec.run ex ~max_steps:1000 with
  | Exec.Done -> ()
  | _ -> Alcotest.fail "did not finish");
  (* inner loop writes slots 0..7; executed = 1 + outer(1 + 3*(1 + 4*2...)) *)
  Alcotest.(check (float 0.0)) "slot 0" 1.0 dram.(0);
  Alcotest.(check (float 0.0)) "slot 7" 1.0 dram.(7);
  Alcotest.(check (float 0.0)) "slot 8 untouched" 0.0 dram.(8);
  (* fill(1) + outer loop(1) + 3 x (inner loop(1) + 4 x (write + endloop)) + 3 outer endloops *)
  Alcotest.(check int) "instruction count" (1 + 1 + (3 * (1 + (4 * 2))) + 3) (Exec.executed ex)

let test_loop_asm_roundtrip () =
  let p, _ = Codegen.generate_looped Codegen.Gru ~hidden:8 ~input:8 ~timesteps:3 in
  match Asm.of_string (Asm.to_string p) with
  | Ok q -> Alcotest.(check string) "same" (Asm.to_string p) (Asm.to_string q)
  | Error e -> Alcotest.fail e

let test_loop_encoding_roundtrip () =
  List.iter
    (fun i ->
      match Encoding.decode (Encoding.encode i) with
      | Ok j -> Alcotest.(check bool) "roundtrip" true (i = j)
      | Error e -> Alcotest.fail e)
    [
      Instr.Loop { count = 1500 };
      Instr.End_loop;
      Instr.V_rd_i { dst = 3; base = 1_000_000; stride = 1024; len = 512 };
      Instr.V_wr_i { src = 7; base = 42; stride = 8; len = 8 };
    ]

let test_loop_opt_conservative () =
  let p, _ = Codegen.generate_looped Codegen.Lstm ~hidden:8 ~input:8 ~timesteps:2 in
  Alcotest.(check int) "unchanged" (Program.length p) (Program.length (Opt.optimize p))

let test_loop_depends_barrier () =
  let loop = Instr.Loop { count = 2 } in
  let any = Instr.V_fill { dst = 0; len = 1; value = 0.0 } in
  Alcotest.(check bool) "barrier before" true (Instr.depends ~earlier:loop ~later:any);
  Alcotest.(check bool) "barrier after" true (Instr.depends ~earlier:any ~later:Instr.End_loop);
  (* wild accesses conflict with overlapping-agnostic writes *)
  let wild_rd = Instr.V_rd_i { dst = 1; base = 0; stride = 4; len = 4 } in
  let wr = Instr.V_wr { src = 0; addr = 500; len = 4 } in
  Alcotest.(check bool) "wild read vs write" true (Instr.depends ~earlier:wr ~later:wild_rd)

let () =
  Alcotest.run "isa"
    [
      ( "fp16",
        [
          Alcotest.test_case "roundtrip exact values" `Quick test_fp16_roundtrip_exact;
          Alcotest.test_case "one" `Quick test_fp16_one;
          Alcotest.test_case "overflow to inf" `Quick test_fp16_overflow;
          Alcotest.test_case "rounding error bound" `Quick test_fp16_rounding_error_bound;
          Alcotest.test_case "subnormal" `Quick test_fp16_subnormal;
          Alcotest.test_case "arithmetic" `Quick test_fp16_arith;
          QCheck_alcotest.to_alcotest prop_fp16_idempotent;
          QCheck_alcotest.to_alcotest
            (QCheck.Test.make ~name:"fp16 bits roundtrip" ~count:500
               QCheck.(int_bound 0xFFFF)
               (fun b ->
                 let h = Fp16.of_bits b in
                 Fp16.to_bits h = b land 0xFFFF));
        ] );
      ( "bfp",
        [
          Alcotest.test_case "powers of two exact" `Quick test_bfp_roundtrip_pow2;
          Alcotest.test_case "zero block" `Quick test_bfp_zero_block;
          Alcotest.test_case "quantization error bound" `Quick test_bfp_quantization_error;
          Alcotest.test_case "dot matches quantized" `Quick test_bfp_dot_matches_quantized;
          Alcotest.test_case "dot length mismatch" `Quick test_bfp_dot_length_mismatch;
          QCheck_alcotest.to_alcotest prop_bfp_idempotent;
        ] );
      ( "instr",
        [
          Alcotest.test_case "register dependencies" `Quick test_instr_dependencies;
          Alcotest.test_case "memory dependencies" `Quick test_instr_memory_dependencies;
        ] );
      ( "program",
        [
          Alcotest.test_case "validate ok" `Quick test_program_validate_ok;
          Alcotest.test_case "validate uninitialized" `Quick test_program_validate_uninitialized;
          Alcotest.test_case "validate bounds" `Quick test_program_validate_bounds;
          Alcotest.test_case "dependency predecessors" `Quick test_program_dep_predecessors;
          Alcotest.test_case "opcode histogram" `Quick test_program_histogram;
        ] );
      ( "asm",
        [
          Alcotest.test_case "roundtrip" `Quick test_asm_roundtrip;
          Alcotest.test_case "comments and blanks" `Quick test_asm_comments_and_blanks;
          Alcotest.test_case "errors" `Quick test_asm_errors;
          QCheck_alcotest.to_alcotest prop_asm_roundtrip;
        ] );
      ( "exec",
        [
          Alcotest.test_case "vector ops" `Quick test_exec_vector_ops;
          Alcotest.test_case "dram roundtrip" `Quick test_exec_dram_roundtrip;
          Alcotest.test_case "dram out of bounds" `Quick test_exec_dram_oob;
          Alcotest.test_case "mvm exact" `Quick test_exec_mvm_exact;
          Alcotest.test_case "mvm quantized close" `Quick test_exec_mvm_quantized_close;
          Alcotest.test_case "activations" `Quick test_exec_activations;
          Alcotest.test_case "sync port stall/resume" `Quick test_exec_sync_port;
          Alcotest.test_case "sync port send" `Quick test_exec_sync_send;
        ] );
      ( "encoding",
        [
          Alcotest.test_case "program roundtrip" `Quick test_encoding_roundtrip_program;
          Alcotest.test_case "fp16 immediate" `Quick test_encoding_fp16_immediate;
          Alcotest.test_case "field ranges" `Quick test_encoding_field_ranges;
          Alcotest.test_case "bad opcode" `Quick test_encoding_bad_opcode;
          Alcotest.test_case "hex" `Quick test_encoding_hex;
          QCheck_alcotest.to_alcotest prop_encoding_roundtrip;
        ] );
      ( "opt",
        [
          Alcotest.test_case "removes nops" `Quick test_opt_removes_nops;
          Alcotest.test_case "dead overwrite" `Quick test_opt_dead_overwrite;
          Alcotest.test_case "keeps read values" `Quick test_opt_keeps_read_values;
          Alcotest.test_case "codegen is clean" `Quick test_opt_codegen_is_clean;
          QCheck_alcotest.to_alcotest prop_opt_preserves_semantics;
        ] );
      ( "loops",
        [
          Alcotest.test_case "matches unrolled" `Quick test_loop_matches_unrolled;
          Alcotest.test_case "validate errors" `Quick test_loop_validate_errors;
          Alcotest.test_case "nested" `Quick test_loop_nested;
          Alcotest.test_case "asm roundtrip" `Quick test_loop_asm_roundtrip;
          Alcotest.test_case "encoding roundtrip" `Quick test_loop_encoding_roundtrip;
          Alcotest.test_case "optimizer conservative" `Quick test_loop_opt_conservative;
          Alcotest.test_case "loop barriers" `Quick test_loop_depends_barrier;
        ] );
      ( "mlp",
        [
          Alcotest.test_case "spec validation" `Quick test_mlp_spec_validation;
          Alcotest.test_case "weight words" `Quick test_mlp_weight_words;
          Alcotest.test_case "matches golden" `Quick test_mlp_matches_golden;
          Alcotest.test_case "quantized close" `Quick test_mlp_quantized_close;
        ] );
      ( "codegen",
        [
          Alcotest.test_case "lstm matches golden" `Quick test_codegen_lstm;
          Alcotest.test_case "gru matches golden" `Quick test_codegen_gru;
          Alcotest.test_case "layout" `Quick test_codegen_layout;
          Alcotest.test_case "writes every step" `Quick test_codegen_writes_every_step;
        ] );
    ]
