(* Tests for the FPGA device model: resource vectors, catalog,
   floorplanning and estimation. *)

module Resource = Mlv_fpga.Resource
module Device = Mlv_fpga.Device
module Floorplan = Mlv_fpga.Floorplan
module Board = Mlv_fpga.Board
module Estimate = Mlv_fpga.Estimate
module Ast = Mlv_rtl.Ast
module Design = Mlv_rtl.Design
module Parser = Mlv_rtl.Parser

let test_resource_arith () =
  let a = Resource.make ~luts:10 ~dffs:20 ~dsps:2 () in
  let b = Resource.make ~luts:5 ~bram_kb:36 () in
  let s = Resource.add a b in
  Alcotest.(check int) "luts" 15 s.Resource.luts;
  Alcotest.(check int) "bram" 36 s.Resource.bram_kb;
  let d = Resource.sub s b in
  Alcotest.(check bool) "sub inverse" true (Resource.equal d a)

let test_resource_scale () =
  let a = Resource.make ~luts:10 ~dsps:3 () in
  Alcotest.(check int) "scale luts" 30 (Resource.scale 3 a).Resource.luts;
  Alcotest.(check int) "scale_f dsps" 5 (Resource.scale_f 1.5 a).Resource.dsps

let test_resource_fits () =
  let cap = Resource.make ~luts:100 ~dffs:100 ~dsps:10 () in
  Alcotest.(check bool) "fits" true
    (Resource.fits ~need:(Resource.make ~luts:50 ~dsps:10 ()) ~avail:cap);
  Alcotest.(check bool) "dsp overflow" false
    (Resource.fits ~need:(Resource.make ~dsps:11 ()) ~avail:cap);
  Alcotest.(check bool) "zero fits" true (Resource.fits ~need:Resource.zero ~avail:cap)

let test_resource_utilization () =
  let cap = Resource.make ~luts:100 ~dffs:200 ~dsps:10 () in
  let used = Resource.make ~luts:50 ~dffs:20 ~dsps:9 () in
  Alcotest.(check (float 1e-9)) "max ratio" 0.9 (Resource.utilization ~used ~cap);
  let used_uram = Resource.make ~uram_kb:1 () in
  Alcotest.(check bool) "impossible" true
    (Resource.utilization ~used:used_uram ~cap = infinity)

let test_device_catalog_consistency () =
  List.iter
    (fun kind ->
      let d = Device.get kind in
      Alcotest.(check bool) (d.Device.name ^ " vb fits") true
        (Resource.fits
           ~need:(Resource.scale d.Device.virtual_block_count d.Device.vb_region)
           ~avail:d.Device.capacity);
      Alcotest.(check bool) "positive freq" true (d.Device.base_freq_mhz > 0.0))
    Device.kinds

let test_device_table2_capacities () =
  (* Capacities must reproduce Table 2's utilization percentages. *)
  let vu37p = Device.get Device.XCVU37P in
  let pct used cap = float_of_int used /. float_of_int cap *. 100.0 in
  let luts_pct = pct 610_000 vu37p.Device.capacity.Resource.luts in
  Alcotest.(check bool) "610k LUTs ~ 46.8%" true (Float.abs (luts_pct -. 46.8) < 0.5);
  let dsp_pct = pct 7517 vu37p.Device.capacity.Resource.dsps in
  Alcotest.(check bool) "7517 DSPs ~ 83.3%" true (Float.abs (dsp_pct -. 83.3) < 0.5);
  let ku115 = Device.get Device.XCKU115 in
  let luts_pct = pct 367_000 ku115.Device.capacity.Resource.luts in
  Alcotest.(check bool) "367k LUTs ~ 55.3%" true (Float.abs (luts_pct -. 55.3) < 0.5);
  Alcotest.(check int) "no URAM" 0 ku115.Device.capacity.Resource.uram_kb

let test_device_of_name () =
  Alcotest.(check bool) "vu37p" true (Device.of_name "XCVU37P" = Some Device.XCVU37P);
  Alcotest.(check bool) "ku115 lowercase" true (Device.of_name "ku115" = Some Device.XCKU115);
  Alcotest.(check bool) "unknown" true (Device.of_name "z7020" = None)

let test_floorplan_monotone () =
  let d = Device.get Device.XCVU37P in
  let f u = Floorplan.achieved_freq_mhz d ~utilization:u ~floorplanned:false in
  Alcotest.(check bool) "decreasing" true (f 0.2 > f 0.5 && f 0.5 > f 0.9);
  Alcotest.(check (float 1e-6)) "empty = base" d.Device.base_freq_mhz (f 0.0)

let test_floorplan_recovers () =
  let d = Device.get Device.XCVU37P in
  let without = Floorplan.achieved_freq_mhz d ~utilization:0.85 ~floorplanned:false in
  let with_fp = Floorplan.achieved_freq_mhz d ~utilization:0.85 ~floorplanned:true in
  Alcotest.(check bool) "floorplan helps" true (with_fp > without);
  (* Floorplanned designs at Table-2 utilizations keep >95% of base. *)
  Alcotest.(check bool) "near base" true (with_fp > 0.95 *. d.Device.base_freq_mhz)

let test_floorplan_route_limit () =
  let d = Device.get Device.XCKU115 in
  Alcotest.(check bool) "routable" true (Floorplan.route_success d ~utilization:0.9);
  Alcotest.(check bool) "unroutable" false (Floorplan.route_success d ~utilization:0.99)

let test_board_transfer_times () =
  let b = Board.default in
  let t_small = Board.ring_transfer_time_us b ~bytes:64 ~hops:1 ~added_latency_us:0.0 in
  let t_big = Board.ring_transfer_time_us b ~bytes:65536 ~hops:1 ~added_latency_us:0.0 in
  Alcotest.(check bool) "bandwidth term" true (t_big > t_small);
  let t_delay = Board.ring_transfer_time_us b ~bytes:64 ~hops:1 ~added_latency_us:0.6 in
  Alcotest.(check (float 1e-9)) "added latency" 0.6 (t_delay -. t_small);
  let t_2hop = Board.ring_transfer_time_us b ~bytes:64 ~hops:2 ~added_latency_us:0.0 in
  Alcotest.(check bool) "hops add latency" true (t_2hop > t_small)

let test_board_dram_pcie () =
  let b = Board.default in
  Alcotest.(check bool) "dram faster than pcie" true
    (Board.dram_read_time_us b ~bytes:4096 < Board.pcie_transfer_time_us b ~bytes:4096)

let test_estimate_prims () =
  let r = Estimate.of_prim (Ast.P_reg 32) in
  Alcotest.(check int) "reg dffs" 32 r.Resource.dffs;
  let m = Estimate.of_prim (Ast.P_mul 16) in
  Alcotest.(check int) "mul dsp" 1 m.Resource.dsps;
  let m27 = Estimate.of_prim (Ast.P_mul 27) in
  Alcotest.(check int) "wide mul tiles" 4 m27.Resource.dsps;
  let ram = Estimate.of_prim (Ast.P_ram { words = 512; width = 72 }) in
  Alcotest.(check int) "one 36kb block" 36 ram.Resource.bram_kb;
  let tiny = Estimate.of_prim (Ast.P_ram { words = 16; width = 8 }) in
  Alcotest.(check int) "distributed" 0 tiny.Resource.bram_kb;
  Alcotest.(check bool) "uses luts" true (tiny.Resource.luts > 0)

let test_estimate_module () =
  let d =
    match
      Parser.parse_string
        {|
module m (a, b, o);
  input [7:0] a;
  input [7:0] b;
  output [7:0] o;
  wire [7:0] t;
  mlv_add g (.a(a), .b(b), .o(t));
  mlv_reg r (.d(t), .q(o));
endmodule
|}
    with
    | Ok d -> d
    | Error e -> Alcotest.failf "parse: %s" e
  in
  let r = Estimate.of_module d "m" in
  Alcotest.(check int) "adder luts" 8 r.Resource.luts;
  Alcotest.(check int) "reg dffs" 8 r.Resource.dffs

let () =
  Alcotest.run "fpga"
    [
      ( "resource",
        [
          Alcotest.test_case "arithmetic" `Quick test_resource_arith;
          Alcotest.test_case "scaling" `Quick test_resource_scale;
          Alcotest.test_case "fits" `Quick test_resource_fits;
          Alcotest.test_case "utilization" `Quick test_resource_utilization;
        ] );
      ( "device",
        [
          Alcotest.test_case "catalog consistency" `Quick test_device_catalog_consistency;
          Alcotest.test_case "table 2 capacities" `Quick test_device_table2_capacities;
          Alcotest.test_case "of_name" `Quick test_device_of_name;
        ] );
      ( "floorplan",
        [
          Alcotest.test_case "monotone" `Quick test_floorplan_monotone;
          Alcotest.test_case "floorplanning recovers" `Quick test_floorplan_recovers;
          Alcotest.test_case "route limit" `Quick test_floorplan_route_limit;
        ] );
      ( "board",
        [
          Alcotest.test_case "transfer times" `Quick test_board_transfer_times;
          Alcotest.test_case "dram vs pcie" `Quick test_board_dram_pcie;
        ] );
      ( "estimate",
        [
          Alcotest.test_case "primitives" `Quick test_estimate_prims;
          Alcotest.test_case "module" `Quick test_estimate_module;
        ] );
    ]
