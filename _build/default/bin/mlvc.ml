(* mlvc — the framework's offline compilation driver.

   Subcommands:
     decompose  parse an RTL file, run the decomposing tool, print the
                soft-block tree and statistics
     partition  decompose then run the iterative partitioner
     npu        generate + compile a BrainWave-like NPU instance and
                print its mapping database entries
     devices    print the device catalog *)

open Cmdliner
module Design = Mlv_rtl.Design
module Parser = Mlv_rtl.Parser
module Decompose = Mlv_core.Decompose
module Partition = Mlv_core.Partition
module Mapping = Mlv_core.Mapping
module Framework = Mlv_core.Framework
module SB = Mlv_core.Soft_block
module Device = Mlv_fpga.Device
module Resource = Mlv_fpga.Resource
module Table = Mlv_util.Table

let read_design path =
  match Parser.parse_file path with
  | Ok d -> Ok d
  | Error e -> Error (`Msg e)

let run_decompose path top controls quiet flow dot_out =
  match read_design path with
  | Error (`Msg e) ->
    prerr_endline e;
    1
  | Ok design -> (
    let config = { Decompose.default_config with Decompose.control_modules = controls } in
    let runner =
      match flow with "top-down" -> Mlv_core.Top_down.run | _ -> Decompose.run
    in
    match runner ~config design ~top with
    | Error e ->
      prerr_endline ("decompose: " ^ e);
      1
    | Ok r ->
      if not quiet then begin
        print_endline "control soft block:";
        Format.printf "%a@." SB.pp r.Decompose.control;
        print_endline "data-path soft block tree:";
        Format.printf "%a@." SB.pp r.Decompose.data
      end;
      let s = r.Decompose.stats in
      Printf.printf
        "stats: %d leaf blocks, %d data-parallel groups, %d pipeline groups,\n\
         %d equivalence checks, %d fixpoint iterations\n"
        s.Decompose.leaf_blocks s.Decompose.dp_groups s.Decompose.pipe_groups
        s.Decompose.eq_checks s.Decompose.iterations;
      (match dot_out with
      | Some out ->
        let oc = open_out out in
        output_string oc (SB.to_dot ~name:"data_path" r.Decompose.data);
        close_out oc;
        Printf.printf "wrote %s\n" out
      | None -> ());
      0)

let run_partition path top controls iterations =
  match read_design path with
  | Error (`Msg e) ->
    prerr_endline e;
    1
  | Ok design -> (
    let config = { Decompose.default_config with Decompose.control_modules = controls } in
    match Decompose.run ~config design ~top with
    | Error e ->
      prerr_endline ("decompose: " ^ e);
      1
    | Ok r ->
      let levels = Partition.run r.Decompose.data ~iterations in
      List.iteri
        (fun level pieces ->
          Printf.printf "level %d: %d piece(s)\n" level (List.length pieces);
          List.iter
            (fun (p : Partition.piece) ->
              Printf.printf "  %s: %d leaves, cut bandwidth %d bits\n"
                p.Partition.piece_id
                (List.length (SB.leaves p.Partition.tree))
                p.Partition.cut_bits)
            pieces)
        levels;
      0)

let run_npu tiles iterations show_tree =
  match Framework.build_npu ~iterations ~tiles () with
  | Error e ->
    prerr_endline e;
    1
  | Ok npu ->
    Printf.printf "accelerator: %s\n" (Framework.accel_name ~tiles);
    if show_tree then
      Format.printf "data-path tree:@.%a@." SB.pp
        npu.Framework.decomposed.Decompose.data;
    let t =
      Table.create [ "Piece"; "Tiles"; "Control"; "Device"; "VBs"; "Crossings"; "MHz" ]
    in
    List.iter
      (fun pieces ->
        List.iter
          (fun (p : Mapping.compiled_piece) ->
            List.iter
              (fun (kind, bs) ->
                Table.add_row t
                  [
                    p.Mapping.piece.Partition.piece_id;
                    string_of_int p.Mapping.tiles;
                    (if p.Mapping.includes_control then "yes" else "no");
                    Device.kind_name kind;
                    string_of_int bs.Mlv_vital.Bitstream.vbs;
                    string_of_int bs.Mlv_vital.Bitstream.crossings;
                    Printf.sprintf "%.0f" bs.Mlv_vital.Bitstream.freq_mhz;
                  ])
              p.Mapping.bitstreams)
          pieces)
      npu.Framework.mapping.Mapping.levels;
    Table.print t;
    0

let run_simplify path =
  match read_design path with
  | Error (`Msg e) ->
    prerr_endline e;
    1
  | Ok design ->
    let simplified =
      Design.modules design
      |> List.map (fun (m : Mlv_rtl.Ast.module_def) ->
             if Mlv_rtl.Ast.is_basic m then begin
               let s = Mlv_rtl.Transform.simplify m in
               let removed = Mlv_rtl.Transform.removed ~before:m ~after:s in
               if removed > 0 then
                 Printf.eprintf "%s: removed %d instances\n" m.Mlv_rtl.Ast.mod_name removed;
               s
             end
             else m)
    in
    print_string (Mlv_rtl.Printer.design_to_string (Design.of_modules simplified));
    0

let run_emit tiles =
  let cfg = Mlv_accel.Config.make ~tiles () in
  let design = Mlv_accel.Rtl_gen.generate cfg in
  print_string (Mlv_rtl.Printer.design_to_string design);
  0

let run_info path =
  match read_design path with
  | Error (`Msg e) ->
    prerr_endline e;
    1
  | Ok design -> (
    match Design.validate design with
    | _ :: _ as errs ->
      List.iter prerr_endline errs;
      1
    | [] ->
      Format.printf "%a" Mlv_rtl.Stats.pp (Mlv_rtl.Stats.of_design design);
      0)

let run_devices () =
  let t =
    Table.create
      [ "Device"; "LUTs"; "DFFs"; "BRAM"; "URAM"; "DSPs"; "MHz"; "VBs"; "Max tiles" ]
  in
  List.iter
    (fun kind ->
      let d = Device.get kind in
      let c = d.Device.capacity in
      Table.add_row t
        [
          d.Device.name;
          Printf.sprintf "%dk" (c.Resource.luts / 1000);
          Printf.sprintf "%dk" (c.Resource.dffs / 1000);
          Resource.mb c.Resource.bram_kb;
          (if d.Device.has_uram then Resource.mb c.Resource.uram_kb else "-");
          string_of_int c.Resource.dsps;
          Printf.sprintf "%.0f" d.Device.base_freq_mhz;
          string_of_int d.Device.virtual_block_count;
          string_of_int (Mlv_accel.Resource_model.max_tiles d);
        ])
    Device.kinds;
  Table.print t;
  0

(* -------- cmdliner plumbing -------- *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"RTL source file")

let top_arg =
  Arg.(required & opt (some string) None & info [ "top" ] ~docv:"MODULE" ~doc:"Top module")

let controls_arg =
  Arg.(
    value & opt_all string []
    & info [ "control" ] ~docv:"MODULE"
        ~doc:"Treat $(docv) as part of the control path (repeatable)")

let quiet_arg = Arg.(value & flag & info [ "quiet" ] ~doc:"Print only statistics")

let iterations_arg =
  Arg.(value & opt int 2 & info [ "iterations" ] ~docv:"N" ~doc:"Partitioning depth")

let tiles_arg =
  Arg.(value & opt int 21 & info [ "tiles" ] ~docv:"N" ~doc:"MVM tile count")

let tree_arg = Arg.(value & flag & info [ "tree" ] ~doc:"Print the soft-block tree")

let flow_arg =
  Arg.(
    value
    & opt (enum [ ("bottom-up", "bottom-up"); ("top-down", "top-down") ]) "bottom-up"
    & info [ "flow" ] ~docv:"FLOW" ~doc:"Decomposing flow: bottom-up (default) or top-down")

let dot_arg =
  Arg.(
    value & opt (some string) None
    & info [ "dot" ] ~docv:"FILE" ~doc:"Write the data-path tree as Graphviz to $(docv)")

let decompose_cmd =
  Cmd.v
    (Cmd.info "decompose" ~doc:"Decompose an accelerator onto the system abstraction")
    Term.(const run_decompose $ file_arg $ top_arg $ controls_arg $ quiet_arg $ flow_arg $ dot_arg)

let partition_cmd =
  Cmd.v
    (Cmd.info "partition" ~doc:"Decompose then partition into deployment units")
    Term.(const run_partition $ file_arg $ top_arg $ controls_arg $ iterations_arg)

let npu_cmd =
  Cmd.v
    (Cmd.info "npu" ~doc:"Compile a BrainWave-like NPU instance end to end")
    Term.(const run_npu $ tiles_arg $ iterations_arg $ tree_arg)

let info_cmd =
  Cmd.v
    (Cmd.info "info" ~doc:"Print design statistics")
    Term.(const run_info $ file_arg)

let simplify_cmd =
  Cmd.v
    (Cmd.info "simplify" ~doc:"Constant-fold and dead-code-eliminate basic modules")
    Term.(const run_simplify $ file_arg)

let emit_cmd =
  Cmd.v
    (Cmd.info "emit" ~doc:"Emit the generated NPU RTL as text")
    Term.(const run_emit $ tiles_arg)

let devices_cmd =
  Cmd.v (Cmd.info "devices" ~doc:"Print the device catalog") Term.(const run_devices $ const ())

let () =
  let info =
    Cmd.info "mlvc" ~version:"1.0.0"
      ~doc:"Multi-layer FPGA virtualization framework compiler"
  in
  exit (Cmd.eval' (Cmd.group info
       [ decompose_cmd; partition_cmd; npu_cmd; info_cmd; simplify_cmd; emit_cmd; devices_cmd ]))
