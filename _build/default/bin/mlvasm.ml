(* mlvasm — assembler/disassembler/runner for the AS ISA.

   Subcommands:
     asm      assemble a text program to 64-bit hex words
     disasm   decode hex words back to assembly
     opt      optimize a text program (dead code, nops)
     run      execute a text program on a zero-filled DRAM image and
              print final registers and a DRAM window *)

open Cmdliner
module Program = Mlv_isa.Program
module Asm = Mlv_isa.Asm
module Encoding = Mlv_isa.Encoding
module Opt = Mlv_isa.Opt
module Exec = Mlv_isa.Exec

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_program path =
  match Asm.of_string (read_file path) with
  | Ok p -> (
    match Program.validate p with
    | [] -> Ok p
    | errs -> Error (String.concat "\n" errs))
  | Error e -> Error e

let run_asm path =
  match load_program path with
  | Error e ->
    prerr_endline e;
    1
  | Ok p ->
    Array.iter (fun w -> print_endline (Encoding.to_hex w)) (Encoding.encode_program p);
    0

let run_disasm path =
  let words =
    read_file path |> String.split_on_char '\n' |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | l :: rest -> (
      match Encoding.of_hex l with
      | Ok w -> go (w :: acc) rest
      | Error e -> Error e)
  in
  (match go [] words with
  | Error e ->
    prerr_endline e;
    1
  | Ok ws -> (
    match Encoding.decode_program (Array.of_list ws) with
    | Error e ->
      prerr_endline e;
      1
    | Ok p ->
      print_string (Asm.to_string p);
      0))

let run_opt path =
  match load_program path with
  | Error e ->
    prerr_endline e;
    1
  | Ok p ->
    let q = Opt.optimize p in
    Printf.eprintf "eliminated %d of %d instructions\n"
      (Opt.eliminated ~before:p ~after:q)
      (Program.length p);
    print_string (Asm.to_string q);
    0

let run_run path dram_words exact watch =
  match load_program path with
  | Error e ->
    prerr_endline e;
    1
  | Ok p -> (
    let dram = Array.make dram_words 0.0 in
    let ex = Exec.create ~exact ~dram p in
    match Exec.run ex ~max_steps:10_000_000 with
    | Exec.Stalled ->
      prerr_endline "program stalled on a synchronization read";
      1
    | Exec.Running ->
      prerr_endline "step budget exhausted";
      1
    | Exec.Done ->
      Printf.printf "executed %d instructions\n" (Exec.executed ex);
      List.iter
        (fun r ->
          match Exec.vreg ex r with
          | v ->
            Printf.printf "v%d = [%s%s]\n" r
              (String.concat "; "
                 (List.map (Printf.sprintf "%g")
                    (Array.to_list (Array.sub v 0 (min 8 (Array.length v))))))
              (if Array.length v > 8 then "; ..." else "")
          | exception Invalid_argument _ -> ())
        watch;
      0)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Program file")

let dram_arg =
  Arg.(value & opt int 65536 & info [ "dram" ] ~docv:"WORDS" ~doc:"DRAM image size")

let exact_arg =
  Arg.(value & flag & info [ "exact" ] ~doc:"Float64 datapath (no BFP/fp16 rounding)")

let watch_arg =
  Arg.(
    value & opt_all int []
    & info [ "watch" ] ~docv:"REG" ~doc:"Print vector register $(docv) after the run")

let () =
  let info = Cmd.info "mlvasm" ~version:"1.0.0" ~doc:"AS ISA assembler and runner" in
  let cmds =
    [
      Cmd.v (Cmd.info "asm" ~doc:"Assemble to hex words") Term.(const run_asm $ file_arg);
      Cmd.v (Cmd.info "disasm" ~doc:"Decode hex words") Term.(const run_disasm $ file_arg);
      Cmd.v (Cmd.info "opt" ~doc:"Optimize a program") Term.(const run_opt $ file_arg);
      Cmd.v
        (Cmd.info "run" ~doc:"Execute a program")
        Term.(const run_run $ file_arg $ dram_arg $ exact_arg $ watch_arg);
    ]
  in
  exit (Cmd.eval' (Cmd.group info cmds))
