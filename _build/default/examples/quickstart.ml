(* Quickstart: the full life of one accelerator through the
   framework, in five steps.

     dune exec examples/quickstart.exe

   1. Generate the BrainWave-like NPU's RTL (8 tiles).
   2. Decompose it onto the system abstraction (soft-block tree).
   3. Partition + map it onto ViTAL virtual blocks for both device
      types.
   4. Deploy it on the heterogeneous cluster through the runtime.
   5. Run a GRU inference: numerically with the functional executor,
      and through the timing model for the latency. *)

module Framework = Mlv_core.Framework
module Decompose = Mlv_core.Decompose
module SB = Mlv_core.Soft_block
module Mapping = Mlv_core.Mapping
module Registry = Mlv_core.Registry
module Runtime = Mlv_core.Runtime
module Cluster = Mlv_cluster.Cluster
module Codegen = Mlv_isa.Codegen
module Exec = Mlv_isa.Exec
module Perf = Mlv_accel.Perf
module Device = Mlv_fpga.Device
module Rng = Mlv_util.Rng

let () =
  print_endline "== 1. Generate the accelerator RTL ==";
  let tiles = 8 in
  let npu =
    match Framework.build_npu ~tiles () with Ok n -> n | Error e -> failwith e
  in
  Printf.printf "generated %d RTL modules, %d primitive instances flattened\n\n"
    (List.length (Mlv_rtl.Design.modules npu.Framework.design))
    (Mlv_rtl.Design.flat_instance_count npu.Framework.design "bw_npu");

  print_endline "== 2. The decomposed soft-block tree (truncated) ==";
  let stats = npu.Framework.decomposed.Decompose.stats in
  Printf.printf
    "%d leaf blocks -> %d data-parallel groups, %d pipelines (%d iterations)\n"
    stats.Decompose.leaf_blocks stats.Decompose.dp_groups stats.Decompose.pipe_groups
    stats.Decompose.iterations;
  (match npu.Framework.decomposed.Decompose.data with
  | SB.Node { SB.children; _ } ->
    Printf.printf "data-path root: data parallelism over %d engine pipelines\n\n"
      (List.length children)
  | SB.Leaf _ -> print_endline "data-path root: single leaf\n");

  print_endline "== 3. Mapping onto virtual blocks ==";
  List.iteri
    (fun level pieces ->
      List.iter
        (fun (p : Mapping.compiled_piece) ->
          List.iter
            (fun (kind, bs) ->
              Printf.printf "  level %d %s on %s: %d virtual blocks\n" level
                p.Mapping.piece.Mlv_core.Partition.piece_id (Device.kind_name kind)
                bs.Mlv_vital.Bitstream.vbs)
            p.Mapping.bitstreams)
        pieces)
    npu.Framework.mapping.Mapping.levels;
  print_newline ();

  print_endline "== 4. Deploy on the heterogeneous cluster ==";
  let registry = Registry.create () in
  Registry.register registry npu.Framework.mapping;
  let cluster = Cluster.create () in
  let runtime = Runtime.create ~policy:Runtime.greedy cluster registry in
  let deployment =
    match Runtime.deploy runtime ~accel:(Framework.accel_name ~tiles) with
    | Ok d -> d
    | Error e -> failwith e
  in
  Printf.printf "deployed on node(s) %s, %.0f us reconfiguration\n\n"
    (String.concat ", " (List.map string_of_int (Runtime.nodes_used deployment)))
    deployment.Runtime.reconfig_us;

  print_endline "== 5. Run a GRU inference ==";
  let hidden = 64 and timesteps = 3 in
  let program, layout = Codegen.generate Codegen.Gru ~hidden ~input:hidden ~timesteps in
  let rng = Rng.create 2026 in
  let dram = Codegen.init_dram ~rng layout in
  let golden = Codegen.golden layout (Array.copy dram) in
  let ex = Exec.create ~dram program in
  (match Exec.run ex ~max_steps:1_000_000 with
  | Exec.Done -> ()
  | _ -> failwith "executor did not finish");
  let h = Exec.vreg ex 1 in
  let err = ref 0.0 in
  Array.iteri
    (fun i v -> err := Float.max !err (Float.abs (v -. golden.(timesteps - 1).(i))))
    h;
  Printf.printf "numeric: max |h - golden| = %.4f (BFP + fp16 quantization noise)\n" !err;
  let node_kind =
    (Cluster.node cluster (List.hd (Runtime.nodes_used deployment))).Mlv_cluster.Node.kind
  in
  let device = Device.get node_kind in
  let vbs =
    List.fold_left
      (fun acc p -> acc + p.Runtime.bitstream.Mlv_vital.Bitstream.vbs)
      0 deployment.Runtime.placements
  in
  let b =
    Perf.program_latency npu.Framework.config device
      ~deploy:(Perf.vital_deploy ~virtual_blocks:vbs ~pattern_aware:true)
      program
  in
  Printf.printf "timing: %.1f us on %s at %.0f MHz through %d virtual blocks\n"
    b.Perf.total_us (Device.kind_name node_kind) b.Perf.freq_mhz vbs;
  Runtime.undeploy runtime deployment;
  print_endline "\nDone."
