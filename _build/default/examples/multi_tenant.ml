(* Multi-tenant cloud serving (paper Section 4.4): a mixed workload
   of small/medium/large inference tasks arrives at the 4-FPGA
   cluster; three runtime policies compete.

     dune exec examples/multi_tenant.exe *)

module Runtime = Mlv_core.Runtime
module Genset = Mlv_workload.Genset
module Sizes = Mlv_workload.Sizes
module Sysim = Mlv_sysim.Sysim
module Table = Mlv_util.Table

let () =
  print_endline "building the mapping database (10 accelerator instances)...";
  let registry = Sysim.build_registry () in
  let composition = Genset.table1.(6) in
  (* 33% S + 33% M + 34% L *)
  Printf.printf "workload: %s, 100 tasks\n\n" (Genset.composition_name composition);
  let rng = Mlv_util.Rng.create 42 in
  let tasks =
    Genset.generate ~rng ~composition ~tasks:100 ~mean_interarrival_us:200.0
  in
  let hist = Genset.class_histogram tasks in
  Printf.printf "task mix: %s\n\n"
    (String.concat ", "
       (List.map (fun (c, n) -> Printf.sprintf "%d %s" n (Sizes.name c)) hist));
  let t =
    Table.create
      [ "Policy"; "Throughput (t/s)"; "Mean wait (ms)"; "Mean latency (ms)"; "p95 (ms)"; "Peak queue" ]
  in
  List.iter
    (fun policy ->
      let cfg = Sysim.default_config ~policy ~composition in
      let r = Sysim.run ~registry { cfg with Sysim.tasks = 100 } in
      Table.add_row t
        [
          policy.Runtime.policy_name;
          Printf.sprintf "%.1f" r.Sysim.throughput_per_s;
          Printf.sprintf "%.1f" (r.Sysim.mean_wait_us /. 1000.0);
          Printf.sprintf "%.1f" (r.Sysim.mean_latency_us /. 1000.0);
          Printf.sprintf "%.1f" (r.Sysim.p95_latency_us /. 1000.0);
          string_of_int r.Sysim.peak_queue;
        ])
    [ Runtime.baseline; Runtime.restricted; Runtime.greedy ];
  Table.print t;
  print_endline
    "\nbaseline   = AS-ISA-only: whole-device allocation, no multi-FPGA\n\
     restricted = virtualized, but one accelerator spans one device type\n\
     greedy     = this work: spatial sharing + heterogeneous multi-FPGA"
