(* MLP/GEMV serving (framework extension): the AS ISA also serves
   feed-forward scoring models.  This example scores a batch through
   a 3-layer network on one FPGA, verifies the numerics, then scales
   the model out across two FPGAs and shows the per-layer activation
   exchanges hiding behind the next sample's compute.

     dune exec examples/mlp_serving.exe *)

module Mlp = Mlv_isa.Mlp
module Exec = Mlv_isa.Exec
module Scale_out = Mlv_core.Scale_out
module Config = Mlv_accel.Config

module Device = Mlv_fpga.Device
module Rng = Mlv_util.Rng

let () =
  let spec = Mlp.make_spec [ 64; 128; 64; 32 ] in
  let batch = 8 in
  Printf.printf "network 64-128-64-32 (%d parameters), batch %d\n\n"
    (Mlp.weight_words spec) batch;

  print_endline "== 1. Single-FPGA serving, numerics vs golden ==";
  let program, lay = Mlp.generate spec ~batch in
  let rng = Rng.create 11 in
  let dram = Mlp.init_dram ~rng lay in
  let golden = Mlp.golden lay (Array.copy dram) in
  let ex = Exec.create ~dram program in
  (match Exec.run ex ~max_steps:1_000_000 with
  | Exec.Done -> ()
  | _ -> failwith "executor did not finish");
  let err = ref 0.0 in
  Array.iteri
    (fun b g ->
      let y = Array.sub dram (lay.Mlp.y_base + (b * lay.Mlp.output_dim)) lay.Mlp.output_dim in
      Array.iteri (fun i v -> err := Float.max !err (Float.abs (v -. g.(i)))) y)
    golden;
  Printf.printf "max |y - golden| over %d samples: %.4f (quantization noise)\n\n" batch !err;

  print_endline "== 2. Scale out across two FPGAs ==";
  let parts = 2 in
  let progs, lays =
    let gen part = Scale_out.generate_mlp spec ~batch ~parts ~part in
    ( Array.init parts (fun p ->
          let prog, l = gen p in
          Scale_out.reorder ~sync_base:l.Scale_out.msync_base prog),
      Array.init parts (fun p -> snd (gen p)) )
  in
  let drams =
    Array.map (fun l -> Scale_out.init_mlp_part_dram ~full_layout:lay ~full_dram:dram l) lays
  in
  let _ = Scale_out.run_mlp_parts ~exact:true progs lays ~drams ~max_steps:1_000_000 in
  let err2 = ref 0.0 in
  Array.iteri
    (fun part l ->
      for b = 0 to batch - 1 do
        let y =
          Array.sub drams.(part)
            (l.Scale_out.my_base + (b * l.Scale_out.out_slice))
            l.Scale_out.out_slice
        in
        Array.iteri
          (fun i v ->
            let expect = golden.(b).((part * l.Scale_out.out_slice) + i) in
            err2 := Float.max !err2 (Float.abs (v -. expect)))
          y
      done)
    lays;
  Printf.printf "exact co-simulation matches golden: max err %g\n\n" !err2;

  print_endline "== 3. Serving latency under injected inter-FPGA delay ==";
  let dev = Device.get Device.XCVU37P in
  let big = Mlp.make_spec [ 1024; 2048; 2048; 1024 ] in
  Printf.printf "%-10s %-22s %-22s\n" "added(us)" "reordered (us/sample)" "in-order (us/sample)";
  List.iter
    (fun added ->
      let lat reordered =
        Scale_out.mlp_latency_us ~parts:2 ~config:(Config.make ~tiles:10 ()) ~device:dev
          ~added_latency_us:added ~reordered big ~batch:20
        /. 20.0
      in
      Printf.printf "%-10.1f %-22.2f %-22.2f\n" added (lat true) (lat false))
    [ 0.0; 0.4; 0.8 ];
  print_endline
    "\nConsecutive samples are independent, so the reorderer pulls the next\n\
     sample's first-layer multiply above this sample's barrier reads."
