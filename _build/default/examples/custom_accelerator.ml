(* Custom accelerator walk-through: the framework is not tied to the
   BrainWave-like NPU.  Here we write a small reduction accelerator
   in the textual RTL subset, run the decomposing tool on it, inspect
   the extracted parallel patterns, and partition it for two FPGAs.

     dune exec examples/custom_accelerator.exe *)

module Parser = Mlv_rtl.Parser
module Design = Mlv_rtl.Design
module Decompose = Mlv_core.Decompose
module Partition = Mlv_core.Partition
module SB = Mlv_core.Soft_block

(* A 4-to-1 reduction accelerator (paper Fig. 2c): four mappers in
   data parallelism feeding a two-level adder-tree reduction, plus a
   small marked control module. *)
let src =
  {|
(* control_path *)
module sequencer (tick);
  output tick;
  wire next;
  mlv_const #(.VALUE(1)) one (.o(next));
  mlv_reg r (.d(next), .q(tick));
endmodule

module mapper (x, o);
  input [15:0] x;
  output [15:0] o;
  wire [15:0] sq;
  mlv_mul m (.a(x), .b(x), .o(sq));
  mlv_reg r (.d(sq), .q(o));
endmodule

module reducer (a, b, o);
  input [15:0] a;
  input [15:0] b;
  output [15:0] o;
  wire [15:0] s;
  mlv_add g (.a(a), .b(b), .o(s));
  mlv_reg r (.d(s), .q(o));
endmodule

module reduce_top (x0, x1, x2, x3, sum);
  input [15:0] x0;
  input [15:0] x1;
  input [15:0] x2;
  input [15:0] x3;
  output [15:0] sum;
  wire tick;
  wire [15:0] m0;
  wire [15:0] m1;
  wire [15:0] m2;
  wire [15:0] m3;
  wire [15:0] r0;
  wire [15:0] r1;
  sequencer seq (.tick(tick));
  mapper map0 (.x(x0), .o(m0));
  mapper map1 (.x(x1), .o(m1));
  mapper map2 (.x(x2), .o(m2));
  mapper map3 (.x(x3), .o(m3));
  reducer red0 (.a(m0), .b(m1), .o(r0));
  reducer red1 (.a(m2), .b(m3), .o(r1));
  reducer red_final (.a(r0), .b(r1), .o(sum));
endmodule
|}

let () =
  print_endline "== Parse and validate the custom RTL ==";
  let design =
    match Parser.parse_string src with Ok d -> d | Error e -> failwith e
  in
  (match Design.validate design with
  | [] -> print_endline "design validates"
  | errs -> List.iter print_endline errs);
  Printf.printf "modules: %s\n\n"
    (String.concat ", " (List.map (fun (m : Mlv_rtl.Ast.module_def) -> m.Mlv_rtl.Ast.mod_name) (Design.modules design)));

  print_endline "== Decompose onto the system abstraction ==";
  let r =
    match Decompose.run design ~top:"reduce_top" with
    | Ok r -> r
    | Error e -> failwith e
  in
  Format.printf "%a@." SB.pp r.Decompose.data;
  Printf.printf "patterns: %d data-parallel group(s), %d pipeline(s)\n\n"
    (SB.count_composition r.Decompose.data SB.Data_parallel)
    (SB.count_composition r.Decompose.data SB.Pipeline);

  print_endline "== Partition for up to two FPGAs ==";
  let levels = Partition.run r.Decompose.data ~iterations:1 in
  List.iteri
    (fun level pieces ->
      Printf.printf "level %d:\n" level;
      List.iter
        (fun (p : Partition.piece) ->
          Printf.printf "  piece %s: %d leaves, cut bandwidth %d bits\n"
            p.Partition.piece_id
            (List.length (SB.leaves p.Partition.tree))
            p.Partition.cut_bits)
        pieces)
    levels;
  print_endline
    "\nThe minimal-bandwidth cut falls between the mapper stage and the\n\
     reduction tree (pattern-aware: no mapper or reducer pipeline is split)."
