examples/scale_out_lstm.ml: Array Float Format List Mlv_accel Mlv_core Mlv_fpga Mlv_isa Mlv_util Printf
