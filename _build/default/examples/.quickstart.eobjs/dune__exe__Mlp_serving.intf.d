examples/mlp_serving.mli:
