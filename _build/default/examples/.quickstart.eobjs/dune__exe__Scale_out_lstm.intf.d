examples/scale_out_lstm.mli:
