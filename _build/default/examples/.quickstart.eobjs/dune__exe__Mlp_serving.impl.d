examples/mlp_serving.ml: Array Float List Mlv_accel Mlv_core Mlv_fpga Mlv_isa Mlv_util Printf
