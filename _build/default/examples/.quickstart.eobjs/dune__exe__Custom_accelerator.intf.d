examples/custom_accelerator.mli:
