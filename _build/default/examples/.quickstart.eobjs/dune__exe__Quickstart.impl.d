examples/quickstart.ml: Array Float List Mlv_accel Mlv_cluster Mlv_core Mlv_fpga Mlv_isa Mlv_rtl Mlv_util Mlv_vital Printf String
