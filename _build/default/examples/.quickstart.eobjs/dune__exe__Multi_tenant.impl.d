examples/multi_tenant.ml: Array List Mlv_core Mlv_sysim Mlv_util Mlv_workload Printf String
