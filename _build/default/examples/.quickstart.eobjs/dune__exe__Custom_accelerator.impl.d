examples/custom_accelerator.ml: Format List Mlv_core Mlv_rtl Printf String
