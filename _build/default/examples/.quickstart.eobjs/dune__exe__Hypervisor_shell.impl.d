examples/hypervisor_shell.ml: List Mlv_cluster Mlv_core Printf
