examples/quickstart.mli:
