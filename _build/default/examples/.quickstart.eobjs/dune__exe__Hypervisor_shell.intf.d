examples/hypervisor_shell.mli:
