(* Scale-out walk-through (paper Section 2.3): run one LSTM across
   two FPGAs by scaling the accelerator down, exchanging hidden-state
   slices through the synchronization template module, and hiding the
   transfer latency with instruction reordering.

     dune exec examples/scale_out_lstm.exe *)

module Scale_out = Mlv_core.Scale_out
module Codegen = Mlv_isa.Codegen
module Program = Mlv_isa.Program
module Config = Mlv_accel.Config
module Device = Mlv_fpga.Device
module Rng = Mlv_util.Rng

let () =
  let hidden = 32 and timesteps = 4 and parts = 2 in
  Printf.printf "LSTM h=%d over %d FPGAs, %d timesteps\n\n" hidden parts timesteps;

  print_endline "== 1. Generate the per-part programs ==";
  let gen part =
    Scale_out.generate Codegen.Lstm ~hidden ~input:hidden ~timesteps ~parts ~part
  in
  let programs = Array.init parts (fun p -> fst (gen p)) in
  let layouts = Array.init parts (fun p -> snd (gen p)) in
  Printf.printf "each part: %d instructions, %d-row weight slices, sync base %d\n\n"
    (Program.length programs.(0))
    layouts.(0).Scale_out.slice layouts.(0).Scale_out.sync_base;

  print_endline "== 2. Reorder to overlap communication and compute ==";
  let reordered =
    Array.mapi
      (fun i p -> Scale_out.reorder ~sync_base:layouts.(i).Scale_out.sync_base p)
      programs
  in
  print_endline "first 6 instructions after the step-0 barrier in each version:";
  let show label (p : Program.t) =
    let after_read = ref (-1) in
    Array.iteri
      (fun i instr ->
        match instr with
        | Mlv_isa.Instr.V_rd { addr; _ }
          when addr >= layouts.(0).Scale_out.sync_base && !after_read < 0 ->
          after_read := i
        | _ -> ())
      p.Program.instrs;
    Printf.printf "  %s (barrier at %d): " label !after_read;
    for i = max 0 (!after_read - 5) to !after_read do
      Format.printf "%a; " Mlv_isa.Instr.pp p.Program.instrs.(i)
    done;
    print_newline ()
  in
  show "original " programs.(0);
  show "reordered" reordered.(0);
  print_newline ();

  print_endline "== 3. Co-simulate both parts and check against the golden model ==";
  let _, full_layout = Codegen.generate Codegen.Lstm ~hidden ~input:hidden ~timesteps in
  let rng = Rng.create 7 in
  let full_dram = Codegen.init_dram ~rng full_layout in
  let golden = Codegen.golden full_layout (Array.copy full_dram) in
  let drams =
    Array.map
      (fun lay -> Scale_out.init_part_dram ~full_layout ~full_dram lay)
      layouts
  in
  let _ = Scale_out.run_parts ~exact:true reordered layouts ~drams ~max_steps:1_000_000 in
  let max_err = ref 0.0 in
  Array.iteri
    (fun part lay ->
      let slice =
        Array.sub drams.(part)
          (lay.Scale_out.h_out_base + ((timesteps - 1) * lay.Scale_out.slice))
          lay.Scale_out.slice
      in
      Array.iteri
        (fun i v ->
          let expect = golden.(timesteps - 1).((part * lay.Scale_out.slice) + i) in
          max_err := Float.max !max_err (Float.abs (v -. expect)))
        slice)
    layouts;
  Printf.printf "max |h - golden| across both parts: %g\n\n" !max_err;

  print_endline "== 4. Latency under injected inter-FPGA delay (Fig. 11) ==";
  let dev = Device.get Device.XCVU37P in
  let cfg = Config.make ~tiles:10 () in
  Printf.printf "%-10s %-22s %-22s\n" "added(us)" "reordered (us/step)" "in-order (us/step)";
  List.iter
    (fun added ->
      let lat reordered =
        Scale_out.two_fpga_latency_us ~config:cfg ~device:dev ~added_latency_us:added
          ~reordered Codegen.Lstm ~hidden:1024 ~input:1024 ~timesteps:50
        /. 50.0
      in
      Printf.printf "%-10.1f %-22.2f %-22.2f\n" added (lat true) (lat false))
    [ 0.0; 0.4; 0.8; 1.2 ];
  print_endline
    "\nWith reordering the transfer of h_t hides behind the next step's\n\
     input-side matrix multiplications; in program order it is exposed."
