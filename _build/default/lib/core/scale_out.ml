open Mlv_isa
module Board = Mlv_fpga.Board

type part_layout = {
  kind : Codegen.kind;
  hidden : int;
  input : int;
  timesteps : int;
  parts : int;
  part : int;
  slice : int;
  weights : Codegen.weight_spec list;
  x_base : int;
  h_out_base : int;
  sync_base : int;
  dram_words : int;
}

(* Sync channel addressing: one slot per (timestep, channel).  LSTM
   uses one channel (h), GRU two (r o h, then h). *)
let channels = function Codegen.Lstm -> 1 | Codegen.Gru -> 2
let sync_addr lay t chan = lay.sync_base + (t * channels lay.kind) + chan

let make_layout kind ~hidden ~input ~timesteps ~parts ~part =
  if parts < 2 then invalid_arg "Scale_out: parts must be >= 2";
  if part < 0 || part >= parts then invalid_arg "Scale_out: part out of range";
  if hidden mod parts <> 0 then invalid_arg "Scale_out: parts must divide hidden";
  let slice = hidden / parts in
  let nw = match kind with Codegen.Lstm -> 8 | Codegen.Gru -> 6 in
  let weights = ref [] in
  let addr = ref 0 in
  for i = 0 to nw - 1 do
    let cols = if i < nw / 2 then input else hidden in
    weights := { Codegen.mreg = i; addr = !addr; rows = slice; cols } :: !weights;
    addr := !addr + (slice * cols)
  done;
  let x_base = !addr in
  let h_out_base = x_base + (timesteps * input) in
  let dram_words = h_out_base + (timesteps * slice) in
  {
    kind;
    hidden;
    input;
    timesteps;
    parts;
    part;
    slice;
    weights = List.rev !weights;
    x_base;
    h_out_base;
    sync_base = dram_words + 1024;
    dram_words;
  }

let load_weights lay =
  List.map
    (fun (w : Codegen.weight_spec) ->
      Instr.M_rd { dst = w.Codegen.mreg; addr = w.Codegen.addr; rows = w.Codegen.rows; cols = w.Codegen.cols })
    lay.weights

(* Register map: v0 x | v1 full h | v2 c-slice (LSTM) / ones-slice
   (GRU) | v3-v6 gate slices | v8 temp | v9 full r.h (GRU) | v10-v13
   temps | v14 own h slice. *)

let lstm_step lay t =
  let sl = lay.slice in
  [
    Instr.V_rd { dst = 0; addr = lay.x_base + (t * lay.input); len = lay.input };
    Instr.Mvm { dst = 3; mat = 0; src = 0 };
    Instr.Mvm { dst = 8; mat = 4; src = 1 };
    Instr.Vv_add { dst = 3; a = 3; b = 8 };
    Instr.Mvm { dst = 4; mat = 1; src = 0 };
    Instr.Mvm { dst = 8; mat = 5; src = 1 };
    Instr.Vv_add { dst = 4; a = 4; b = 8 };
    Instr.Mvm { dst = 5; mat = 2; src = 0 };
    Instr.Mvm { dst = 8; mat = 6; src = 1 };
    Instr.Vv_add { dst = 5; a = 5; b = 8 };
    Instr.Mvm { dst = 6; mat = 3; src = 0 };
    Instr.Mvm { dst = 8; mat = 7; src = 1 };
    Instr.Vv_add { dst = 6; a = 6; b = 8 };
    Instr.Act { dst = 3; src = 3; f = Instr.Sigmoid };
    Instr.Act { dst = 4; src = 4; f = Instr.Sigmoid };
    Instr.Act { dst = 5; src = 5; f = Instr.Tanh };
    Instr.Act { dst = 6; src = 6; f = Instr.Sigmoid };
    Instr.Vv_mul { dst = 10; a = 4; b = 2 };
    Instr.Vv_mul { dst = 11; a = 3; b = 5 };
    Instr.Vv_add { dst = 2; a = 10; b = 11 };
    Instr.Act { dst = 12; src = 2; f = Instr.Tanh };
    Instr.Vv_mul { dst = 14; a = 6; b = 12 };
    Instr.V_wr { src = 14; addr = lay.h_out_base + (t * sl); len = sl };
    Instr.V_wr { src = 14; addr = sync_addr lay t 0; len = sl };
    Instr.V_rd { dst = 1; addr = sync_addr lay t 0; len = lay.hidden };
  ]

let gru_step lay t =
  let sl = lay.slice in
  [
    Instr.V_rd { dst = 0; addr = lay.x_base + (t * lay.input); len = lay.input };
    (* r slice *)
    Instr.Mvm { dst = 3; mat = 0; src = 0 };
    Instr.Mvm { dst = 8; mat = 3; src = 1 };
    Instr.Vv_add { dst = 3; a = 3; b = 8 };
    Instr.Act { dst = 3; src = 3; f = Instr.Sigmoid };
    (* z slice *)
    Instr.Mvm { dst = 4; mat = 1; src = 0 };
    Instr.Mvm { dst = 8; mat = 4; src = 1 };
    Instr.Vv_add { dst = 4; a = 4; b = 8 };
    Instr.Act { dst = 4; src = 4; f = Instr.Sigmoid };
    (* exchange r.h: every part needs the full gated state *)
    Instr.Vv_mul { dst = 10; a = 3; b = 14 };
    Instr.V_wr { src = 10; addr = sync_addr lay t 0; len = sl };
    Instr.V_rd { dst = 9; addr = sync_addr lay t 0; len = lay.hidden };
    (* candidate slice *)
    Instr.Mvm { dst = 5; mat = 2; src = 0 };
    Instr.Mvm { dst = 8; mat = 5; src = 9 };
    Instr.Vv_add { dst = 5; a = 5; b = 8 };
    Instr.Act { dst = 5; src = 5; f = Instr.Tanh };
    (* h' slice = (1-z)*n + z*h *)
    Instr.Vv_sub { dst = 11; a = 2; b = 4 };
    Instr.Vv_mul { dst = 12; a = 11; b = 5 };
    Instr.Vv_mul { dst = 13; a = 4; b = 14 };
    Instr.Vv_add { dst = 14; a = 12; b = 13 };
    Instr.V_wr { src = 14; addr = lay.h_out_base + (t * sl); len = sl };
    Instr.V_wr { src = 14; addr = sync_addr lay t 1; len = sl };
    Instr.V_rd { dst = 1; addr = sync_addr lay t 1; len = lay.hidden };
  ]

let generate kind ~hidden ~input ~timesteps ~parts ~part =
  let lay = make_layout kind ~hidden ~input ~timesteps ~parts ~part in
  let init =
    load_weights lay
    @ [
        Instr.V_fill { dst = 1; len = hidden; value = 0.0 };
        Instr.V_fill { dst = 14; len = lay.slice; value = 0.0 };
        (match kind with
        | Codegen.Lstm -> Instr.V_fill { dst = 2; len = lay.slice; value = 0.0 }
        | Codegen.Gru -> Instr.V_fill { dst = 2; len = lay.slice; value = 1.0 });
      ]
  in
  let steps =
    List.concat
      (List.init timesteps (fun t ->
           match kind with Codegen.Lstm -> lstm_step lay t | Codegen.Gru -> gru_step lay t))
  in
  (Program.make ~vregs:16 ~mregs:8 (init @ steps), lay)

(* ------------------------------------------------------------------ *)
(* Instruction reordering                                              *)
(* ------------------------------------------------------------------ *)

let reorder ~sync_base (p : Program.t) =
  let has_control_flow =
    Array.exists
      (fun i ->
        match i with
        | Instr.Loop _ | Instr.End_loop | Instr.V_rd_i _ | Instr.V_wr_i _ -> true
        | _ -> false)
      p.Program.instrs
  in
  if has_control_flow then p
  else begin
  let instrs = p.Program.instrs in
  let n = Array.length instrs in
  (* Dependence edges via last-writer / reader tracking. *)
  let edges = Hashtbl.create (4 * n) in
  let succs = Array.make n [] in
  let pred_count = Array.make n 0 in
  let add_edge i j =
    if i <> j && not (Hashtbl.mem edges (i, j)) then begin
      Hashtbl.replace edges (i, j) ();
      succs.(i) <- j :: succs.(i);
      pred_count.(j) <- pred_count.(j) + 1
    end
  in
  let last_vwrite = Array.make p.Program.vregs (-1) in
  let vreaders = Array.make p.Program.vregs [] in
  let last_mwrite = Array.make p.Program.mregs (-1) in
  let mreaders = Array.make p.Program.mregs [] in
  let mem_writes = ref [] (* (addr, len, idx) *) in
  let mem_reads = ref [] in
  let overlap (a, la) (b, lb) = a < b + lb && b < a + la in
  Array.iteri
    (fun i instr ->
      let e = Instr.effects instr in
      List.iter
        (fun r ->
          if last_vwrite.(r) >= 0 then add_edge last_vwrite.(r) i;
          vreaders.(r) <- i :: vreaders.(r))
        e.Instr.vreads;
      List.iter
        (fun r ->
          if last_mwrite.(r) >= 0 then add_edge last_mwrite.(r) i;
          mreaders.(r) <- i :: mreaders.(r))
        e.Instr.mreads;
      (match e.Instr.mem_read with
      | Some range ->
        List.iter (fun (a, l, j) -> if overlap range (a, l) then add_edge j i) !mem_writes;
        mem_reads := (fst range, snd range, i) :: !mem_reads
      | None -> ());
      (match e.Instr.mem_write with
      | Some range ->
        List.iter (fun (a, l, j) -> if overlap range (a, l) then add_edge j i) !mem_writes;
        List.iter (fun (a, l, j) -> if overlap range (a, l) then add_edge j i) !mem_reads;
        mem_writes := (fst range, snd range, i) :: !mem_writes
      | None -> ());
      List.iter
        (fun r ->
          if last_vwrite.(r) >= 0 then add_edge last_vwrite.(r) i;
          List.iter (fun j -> add_edge j i) vreaders.(r);
          vreaders.(r) <- [];
          last_vwrite.(r) <- i)
        e.Instr.vwrites;
      List.iter
        (fun r ->
          if last_mwrite.(r) >= 0 then add_edge last_mwrite.(r) i;
          List.iter (fun j -> add_edge j i) mreaders.(r);
          mreaders.(r) <- [];
          last_mwrite.(r) <- i)
        e.Instr.mwrites)
    instrs;
  (* Priority topological order: sends first, receives last, original
     order otherwise. *)
  let priority i =
    let klass =
      match instrs.(i) with
      | Instr.V_wr { addr; _ } when addr >= sync_base -> 0.0
      | Instr.V_rd { addr; _ } when addr >= sync_base -> 2.0
      | _ -> 1.0
    in
    (klass *. 1e9) +. float_of_int i
  in
  let queue = Mlv_util.Pqueue.create () in
  Array.iteri (fun i c -> if c = 0 then Mlv_util.Pqueue.push queue (priority i) i) pred_count;
  let out = ref [] in
  let emitted = ref 0 in
  let rec drain () =
    match Mlv_util.Pqueue.pop queue with
    | None -> ()
    | Some (_, i) ->
      out := instrs.(i) :: !out;
      incr emitted;
      List.iter
        (fun j ->
          pred_count.(j) <- pred_count.(j) - 1;
          if pred_count.(j) = 0 then Mlv_util.Pqueue.push queue (priority j) j)
        succs.(i);
      drain ()
  in
  drain ();
  assert (!emitted = n);
  Program.make ~vregs:p.Program.vregs ~mregs:p.Program.mregs (List.rev !out)
  end

(* ------------------------------------------------------------------ *)
(* Functional co-simulation                                            *)
(* ------------------------------------------------------------------ *)

(* Ports for [parts] co-simulated accelerators.  The merge places
   sender q's slice at offset q * (len / parts): every exchanged
   vector is evenly sliced across the parts, whatever its length. *)
let link_ports ~parts =
  let slices : (int * int, float array) Hashtbl.t = Hashtbl.create 256 in
  Array.init parts (fun p ->
      {
        Exec.send = (fun ~addr data -> Hashtbl.replace slices (p, addr) data);
        recv =
          (fun ~addr ~len ->
            let out = Array.make len 0.0 in
            let complete = ref true in
            for q = 0 to parts - 1 do
              match Hashtbl.find_opt slices (q, addr) with
              | Some s -> Array.blit s 0 out (q * (len / parts)) (Array.length s)
              | None -> complete := false
            done;
            if !complete then Some out else None);
      })

let link layouts = link_ports ~parts:(Array.length layouts)

(* Round-robin co-simulation over explicit sync bases. *)
let co_simulate ?(exact = false) programs ~sync_bases ~drams ~max_steps =
  let n = Array.length programs in
  if Array.length sync_bases <> n || Array.length drams <> n then
    invalid_arg "Scale_out.co_simulate: array length mismatch";
  let ports = link_ports ~parts:n in
  let execs =
    Array.mapi
      (fun i program ->
        Exec.create ~exact ~sync_base:sync_bases.(i) ~port:ports.(i) ~dram:drams.(i)
          program)
      programs
  in
  let done_ = Array.make n false in
  let budget = ref max_steps in
  let remaining () = Array.exists (fun d -> not d) done_ in
  while remaining () do
    if !budget <= 0 then failwith "Scale_out.co_simulate: step budget exhausted";
    let progressed = ref false in
    Array.iteri
      (fun i ex ->
        if not done_.(i) then begin
          match Exec.step ex with
          | Exec.Done ->
            done_.(i) <- true;
            progressed := true
          | Exec.Running -> progressed := true
          | Exec.Stalled -> ()
        end)
      execs;
    if (not !progressed) && remaining () then
      failwith "Scale_out.co_simulate: deadlock (all parts stalled)";
    decr budget
  done;
  execs

let init_part_dram ~full_layout ~full_dram lay =
  let dram = Array.make lay.dram_words 0.0 in
  List.iteri
    (fun i (w : Codegen.weight_spec) ->
      let full_w = List.nth full_layout.Codegen.weights i in
      (* copy this part's row slice of the full matrix *)
      for r = 0 to w.Codegen.rows - 1 do
        let full_row = (lay.part * lay.slice) + r in
        Array.blit full_dram
          (full_w.Codegen.addr + (full_row * full_w.Codegen.cols))
          dram
          (w.Codegen.addr + (r * w.Codegen.cols))
          w.Codegen.cols
      done)
    lay.weights;
  (* inputs are replicated *)
  Array.blit full_dram full_layout.Codegen.x_base dram lay.x_base
    (lay.timesteps * lay.input);
  dram

let run_parts ?exact programs layouts ~drams ~max_steps =
  if Array.length programs <> Array.length layouts
     || Array.length drams <> Array.length layouts
  then invalid_arg "Scale_out.run_parts: array length mismatch";
  co_simulate ?exact programs
    ~sync_bases:(Array.map (fun lay -> lay.sync_base) layouts)
    ~drams ~max_steps

(* ------------------------------------------------------------------ *)
(* Fig. 11 analysis                                                    *)
(* ------------------------------------------------------------------ *)

let multi_fpga_latency_us ?(partner_slowdown = 1.0) ~parts ~config ~device
    ~added_latency_us ~reordered kind ~hidden ~input ~timesteps =
  let program, lay = generate kind ~hidden ~input ~timesteps ~parts ~part:0 in
  let program =
    if reordered then reorder ~sync_base:lay.sync_base program else program
  in
  let board = Board.default in
  let max_hops = max 1 (parts / 2) in
  let extra (instr : Instr.t) =
    match instr with
    | Instr.V_rd { addr; len; _ } when addr >= lay.sync_base ->
      (* the barrier completes when the farthest partner's slice
         arrives; (parts-1) slices share the ring links *)
      let slice_bytes = len / parts * 2 in
      Board.ring_transfer_time_us board
        ~bytes:(slice_bytes * (parts - 1))
        ~hops:max_hops ~added_latency_us
    | _ -> 0.0
  in
  let vbs = (config.Mlv_accel.Config.tiles / 2) + 2 in
  let deploy = Mlv_accel.Perf.vital_deploy ~virtual_blocks:vbs ~pattern_aware:true in
  let b =
    Mlv_accel.Perf.program_latency config device ~deploy ~board
      ~partner_stretch:partner_slowdown ~extra_latency_us:extra
      ~sync_base:lay.sync_base program
  in
  b.Mlv_accel.Perf.total_us

let two_fpga_latency_us ~config ~device ~added_latency_us ~reordered kind ~hidden
    ~input ~timesteps =
  multi_fpga_latency_us ~parts:2 ~config ~device ~added_latency_us ~reordered kind
    ~hidden ~input ~timesteps

(* ------------------------------------------------------------------ *)
(* MLP scale-out                                                       *)
(* ------------------------------------------------------------------ *)

type mlp_layout = {
  mspec : Mlp.spec;
  mbatch : int;
  mparts : int;
  mpart : int;
  mweights : Codegen.weight_spec list;
  mx_base : int;
  my_base : int;
  out_slice : int;
  msync_base : int;
  mdram_words : int;
}

let make_mlp_layout spec ~batch ~parts ~part =
  if parts < 2 then invalid_arg "Scale_out: parts must be >= 2";
  if part < 0 || part >= parts then invalid_arg "Scale_out: part out of range";
  (* Every non-input dimension is sliced across the parts. *)
  (match spec.Mlp.layer_dims with
  | _ :: rest ->
    if List.exists (fun d -> d mod parts <> 0) rest then
      invalid_arg "Scale_out: parts must divide every layer dimension"
  | [] -> invalid_arg "Scale_out: empty spec");
  let shapes =
    let rec go = function
      | din :: (dout :: _ as rest) -> (dout / parts, din) :: go rest
      | _ -> []
    in
    go spec.Mlp.layer_dims
  in
  let weights = ref [] in
  let addr = ref 0 in
  List.iteri
    (fun i (rows, cols) ->
      weights := { Codegen.mreg = i; addr = !addr; rows; cols } :: !weights;
      addr := !addr + (rows * cols))
    shapes;
  let input_dim = List.hd spec.Mlp.layer_dims in
  let output_dim = List.nth spec.Mlp.layer_dims (List.length spec.Mlp.layer_dims - 1) in
  let out_slice = output_dim / parts in
  let mx_base = !addr in
  let my_base = mx_base + (batch * input_dim) in
  let mdram_words = my_base + (batch * out_slice) in
  {
    mspec = spec;
    mbatch = batch;
    mparts = parts;
    mpart = part;
    mweights = List.rev !weights;
    mx_base;
    my_base;
    out_slice;
    msync_base = mdram_words + 1024;
    mdram_words;
  }

(* One sync slot per (sample, layer). *)
let mlp_sync_addr lay b layer =
  lay.msync_base + (b * List.length lay.mweights) + layer

let generate_mlp spec ~batch ~parts ~part =
  let lay = make_mlp_layout spec ~batch ~parts ~part in
  let loads =
    List.map
      (fun (w : Codegen.weight_spec) ->
        Instr.M_rd
          {
            dst = w.Codegen.mreg;
            addr = w.Codegen.addr;
            rows = w.Codegen.rows;
            cols = w.Codegen.cols;
          })
      lay.mweights
  in
  let dims = Array.of_list lay.mspec.Mlp.layer_dims in
  let n_layers = List.length lay.mweights in
  let input_dim = dims.(0) in
  (* Two register banks, rotated by sample parity: the executor has
     no renaming, so adjacent samples must not share registers or the
     reorderer cannot hoist the next sample's first-layer multiply
     above this sample's barrier reads.  Bank layout: act (full
     activation), pre (pre-activation slice), own (post-activation
     slice).  The last layer skips the exchange — each part keeps its
     own slice of the output. *)
  let sample b =
    let base = if b mod 2 = 0 then 0 else 4 in
    let act = base and pre = base + 1 and own = base + 2 in
    Instr.V_rd { dst = act; addr = lay.mx_base + (b * input_dim); len = input_dim }
    :: List.concat
         (List.init n_layers (fun i ->
              let last = i = n_layers - 1 in
              let f = if last then Instr.Identity else lay.mspec.Mlp.activation in
              let slice = dims.(i + 1) / lay.mparts in
              if last then
                [
                  Instr.Mvm { dst = pre; mat = i; src = act };
                  Instr.Act { dst = own; src = pre; f };
                ]
              else
                [
                  Instr.Mvm { dst = pre; mat = i; src = act };
                  Instr.Act { dst = own; src = pre; f };
                  Instr.V_wr { src = own; addr = mlp_sync_addr lay b i; len = slice };
                  Instr.V_rd { dst = act; addr = mlp_sync_addr lay b i; len = dims.(i + 1) };
                ]))
    @ [
        Instr.V_wr
          { src = own; addr = lay.my_base + (b * lay.out_slice); len = lay.out_slice };
      ]
  in
  let body = List.concat (List.init batch sample) in
  (Program.make ~vregs:8 ~mregs:(max 1 n_layers) (loads @ body), lay)

let init_mlp_part_dram ~full_layout ~full_dram lay =
  let dram = Array.make lay.mdram_words 0.0 in
  List.iteri
    (fun i (w : Codegen.weight_spec) ->
      let full_w = List.nth full_layout.Mlp.weights i in
      for r = 0 to w.Codegen.rows - 1 do
        let full_row = (lay.mpart * w.Codegen.rows) + r in
        Array.blit full_dram
          (full_w.Codegen.addr + (full_row * full_w.Codegen.cols))
          dram
          (w.Codegen.addr + (r * w.Codegen.cols))
          w.Codegen.cols
      done)
    lay.mweights;
  Array.blit full_dram full_layout.Mlp.x_base dram lay.mx_base
    (lay.mbatch * full_layout.Mlp.input_dim);
  dram

let run_mlp_parts ?exact programs layouts ~drams ~max_steps =
  co_simulate ?exact programs
    ~sync_bases:(Array.map (fun lay -> lay.msync_base) layouts)
    ~drams ~max_steps

let mlp_latency_us ~parts ~config ~device ~added_latency_us ~reordered spec ~batch =
  let program, lay = generate_mlp spec ~batch ~parts ~part:0 in
  let program =
    if reordered then reorder ~sync_base:lay.msync_base program else program
  in
  let board = Board.default in
  let max_hops = max 1 (parts / 2) in
  let extra (instr : Instr.t) =
    match instr with
    | Instr.V_rd { addr; len; _ } when addr >= lay.msync_base ->
      let slice_bytes = len / parts * 2 in
      Board.ring_transfer_time_us board
        ~bytes:(slice_bytes * (parts - 1))
        ~hops:max_hops ~added_latency_us
    | _ -> 0.0
  in
  let vbs = (config.Mlv_accel.Config.tiles / 2) + 2 in
  let deploy = Mlv_accel.Perf.vital_deploy ~virtual_blocks:vbs ~pattern_aware:true in
  (Mlv_accel.Perf.program_latency config device ~deploy ~board ~extra_latency_us:extra
     ~sync_base:lay.msync_base program)
    .Mlv_accel.Perf.total_us
