let replicate ~name n block =
  if n < 1 then invalid_arg "Pattern.replicate: n must be >= 1";
  Soft_block.data_par ~name (List.init n (fun _ -> block))

let int_pow base e =
  let rec go acc e = if e = 0 then acc else go (acc * base) (e - 1) in
  go 1 e

let reduction ~name ~fan_in ~levels leaf_gen =
  if fan_in < 2 then invalid_arg "Pattern.reduction: fan_in must be >= 2";
  if levels < 1 then invalid_arg "Pattern.reduction: levels must be >= 1";
  let stage level =
    let width = int_pow fan_in (levels - 1 - level) in
    if width = 1 then leaf_gen ~level ~index:0
    else
      Soft_block.data_par
        ~name:(Printf.sprintf "%s_l%d" name level)
        (List.init width (fun index -> leaf_gen ~level ~index))
  in
  if levels = 1 then stage 0
  else Soft_block.pipeline ~name (List.init levels stage)

let map_pipeline ~name ~ways stages =
  if ways < 1 then invalid_arg "Pattern.map_pipeline: ways must be >= 1";
  let pipe i = Soft_block.pipeline ~name:(Printf.sprintf "%s_pipe%d" name i) stages in
  Soft_block.data_par ~name (List.init ways pipe)
