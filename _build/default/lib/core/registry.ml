type t = (string, Mapping.t) Hashtbl.t

let create () = Hashtbl.create 16
let register t (m : Mapping.t) = Hashtbl.replace t m.Mapping.accel_name m
let remove t name = Hashtbl.remove t name
let find t name = Hashtbl.find_opt t name

let names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t [] |> List.sort compare

let deployment_options t name =
  match find t name with
  | None -> []
  | Some m -> Mapping.levels_fewest_first m
