open Mlv_rtl
module Check = Mlv_eqcheck.Check
module Estimate = Mlv_fpga.Estimate
module Resource = Mlv_fpga.Resource

type config = {
  control_modules : string list;
  eq : Check.config;
  enable_intra : bool;
  simplify : bool;
}

let default_config =
  { control_modules = []; eq = Check.default_config; enable_intra = true; simplify = false }

(* Rebuild the design with every basic module simplified. *)
let simplify_design design =
  Design.of_modules
    (List.map
       (fun (m : Ast.module_def) ->
         if Ast.is_basic m then Transform.simplify m else m)
       (Design.modules design))

type stats = {
  leaf_blocks : int;
  dp_groups : int;
  pipe_groups : int;
  eq_checks : int;
  iterations : int;
}

type decomposition = {
  control : Soft_block.t;
  data : Soft_block.t;
  stats : stats;
}

(* ------------------------------------------------------------------ *)
(* Step 1: elaboration into the block graph                            *)
(* ------------------------------------------------------------------ *)

type blk = {
  path : string;
  bmodule : string; (* basic module name, or "prim:<name>" for residue *)
  is_control : bool;
  pins : (int * Ast.direction * int) list; (* global net, dir, width *)
}

let is_control_module config (m : Ast.module_def) =
  List.mem "control_path" m.Ast.attrs || List.mem m.Ast.mod_name config.control_modules

let elaborate config design top =
  let blocks = ref [] in
  let nblocks = ref 0 in
  let next_net = ref 0 in
  let fresh_net () =
    let id = !next_net in
    incr next_net;
    id
  in
  let add_block path bmodule is_control pins =
    let id = !nblocks in
    incr nblocks;
    blocks := { path; bmodule; is_control; pins } :: !blocks;
    id
  in
  (* env maps local net/port names to global ids *)
  let rec walk path in_control (m : Ast.module_def) env =
    let resolve local =
      match Hashtbl.find_opt env local with
      | Some id -> id
      | None -> failwith (Printf.sprintf "Decompose: unresolved net %s in %s" local m.Ast.mod_name)
    in
    List.iter
      (fun (n : Ast.net) -> Hashtbl.replace env n.Ast.net_name (fresh_net ()))
      m.Ast.nets;
    List.iter
      (fun (inst : Ast.instance) ->
        let ipath = if path = "" then inst.Ast.inst_name else path ^ "." ^ inst.Ast.inst_name in
        match inst.Ast.master with
        | Ast.M_prim p ->
          (* Residue primitive in a non-basic module: its own block. *)
          let ports = Ast.prim_ports p in
          let pins =
            List.map
              (fun (c : Ast.conn) ->
                let port = List.find (fun (q : Ast.port) -> q.Ast.port_name = c.Ast.formal) ports in
                (resolve c.Ast.actual, port.Ast.dir, port.Ast.width))
              inst.Ast.conns
          in
          ignore (add_block ipath ("prim:" ^ Ast.prim_name p) in_control pins)
        | Ast.M_module child_name ->
          let child = Design.find_exn design child_name in
          let child_control = in_control || is_control_module config child in
          if Ast.is_basic child then begin
            let pins =
              List.map
                (fun (c : Ast.conn) ->
                  let port =
                    List.find
                      (fun (q : Ast.port) -> q.Ast.port_name = c.Ast.formal)
                      child.Ast.ports
                  in
                  (resolve c.Ast.actual, port.Ast.dir, port.Ast.width))
                inst.Ast.conns
            in
            ignore (add_block ipath child_name child_control pins)
          end
          else begin
            let child_env = Hashtbl.create 16 in
            List.iter
              (fun (c : Ast.conn) ->
                Hashtbl.replace child_env c.Ast.formal (resolve c.Ast.actual))
              inst.Ast.conns;
            List.iter
              (fun (p : Ast.port) ->
                if not (Hashtbl.mem child_env p.Ast.port_name) then
                  Hashtbl.replace child_env p.Ast.port_name (fresh_net ()))
              child.Ast.ports;
            walk ipath child_control child child_env
          end)
      m.Ast.instances
  in
  let top_def = Design.find_exn design top in
  let env = Hashtbl.create 16 in
  List.iter (fun (p : Ast.port) -> Hashtbl.replace env p.Ast.port_name (fresh_net ())) top_def.Ast.ports;
  (* If the top itself is basic there is nothing to decompose into. *)
  walk "" (is_control_module config top_def) top_def env;
  let blocks = Array.of_list (List.rev !blocks) in
  (* Per-net users -> aggregated directed edges between blocks. *)
  let drivers : (int, (int * int) list) Hashtbl.t = Hashtbl.create 256 in
  let sinks : (int, (int * int) list) Hashtbl.t = Hashtbl.create 256 in
  Array.iteri
    (fun b blk ->
      List.iter
        (fun (net, dir, width) ->
          let tbl = match dir with Ast.Output -> drivers | Ast.Input -> sinks in
          let cur = try Hashtbl.find tbl net with Not_found -> [] in
          Hashtbl.replace tbl net ((b, width) :: cur))
        blk.pins)
    blocks;
  let edges : (int * int, int) Hashtbl.t = Hashtbl.create 256 in
  Hashtbl.iter
    (fun net ds ->
      match Hashtbl.find_opt sinks net with
      | None -> ()
      | Some ss ->
        List.iter
          (fun (d, width) ->
            List.iter
              (fun (s, _) ->
                if d <> s then begin
                  let cur = try Hashtbl.find edges (d, s) with Not_found -> 0 in
                  Hashtbl.replace edges (d, s) (cur + width)
                end)
              ss)
          ds)
    drivers;
  (blocks, edges)

(* ------------------------------------------------------------------ *)
(* Equivalence with caching                                            *)
(* ------------------------------------------------------------------ *)

type eq_ctx = {
  design : Design.t;
  eq_config : Check.config;
  cache : (string * string, bool) Hashtbl.t;
  mutable checks : int;
}

let modules_equivalent ctx a b =
  if a = b then true
  else begin
    let key = if a < b then (a, b) else (b, a) in
    match Hashtbl.find_opt ctx.cache key with
    | Some r -> r
    | None ->
      let r =
        match (Design.find ctx.design a, Design.find ctx.design b) with
        | Some ma, Some mb when Ast.is_basic ma && Ast.is_basic mb ->
          ctx.checks <- ctx.checks + 1;
          Check.modules_equivalent ~config:ctx.eq_config ma mb
        | _ -> false
      in
      Hashtbl.replace ctx.cache key r;
      r
  end

(* Tree equivalence: same structure, leaf modules pairwise equivalent. *)
let rec trees_equivalent ctx a b =
  match (a, b) with
  | Soft_block.Leaf la, Soft_block.Leaf lb ->
    la.Soft_block.module_name = lb.Soft_block.module_name
    || modules_equivalent ctx la.Soft_block.module_name lb.Soft_block.module_name
  | Soft_block.Node na, Soft_block.Node nb ->
    na.Soft_block.composition = nb.Soft_block.composition
    && List.length na.Soft_block.children = List.length nb.Soft_block.children
    && List.for_all2 (trees_equivalent ctx) na.Soft_block.children nb.Soft_block.children
  | Soft_block.Leaf _, Soft_block.Node _ | Soft_block.Node _, Soft_block.Leaf _ -> false

(* ------------------------------------------------------------------ *)
(* Step 2: intra-block data parallelism                                *)
(* ------------------------------------------------------------------ *)

(* For one basic module, try to split it into equivalent lanes.
   Returns the per-lane component count (>= 2) and lane resources. *)
let intra_lanes ctx module_name =
  match Design.find ctx.design module_name with
  | None -> None
  | Some m when not (Ast.is_basic m) -> None
  | Some m -> (
    let g = Graph.build ctx.design m in
    match Graph.components g with
    | [] | [ _ ] -> None
    | comps ->
      let extracted =
        List.mapi
          (fun i indices ->
            Extract.component ~name:(Printf.sprintf "%s$lane%d" module_name i) ctx.design
              m indices)
          comps
      in
      (match extracted with
      | [] -> None
      | first :: rest ->
        ctx.checks <- ctx.checks + List.length rest;
        if
          List.for_all
            (fun other -> Check.modules_equivalent ~config:ctx.eq_config first other)
            rest
        then begin
          let lane_resources =
            Estimate.of_census
              (List.filter_map
                 (fun (inst : Ast.instance) ->
                   match inst.Ast.master with
                   | Ast.M_prim p -> Some (p, 1)
                   | Ast.M_module _ -> None)
                 first.Ast.instances)
          in
          Some (List.length comps, lane_resources)
        end
        else None))

(* ------------------------------------------------------------------ *)
(* Cluster graph for steps 3-5                                         *)
(* ------------------------------------------------------------------ *)

type cluster = {
  mutable alive : bool;
  mutable tree : Soft_block.t;
}

type cgraph = {
  nodes : cluster array;
  cedges : (int * int, int) Hashtbl.t; (* directed, aggregated bits *)
  mutable alias : int array; (* node id -> representative *)
}

let rec repr g i = if g.alias.(i) = i then i else repr g g.alias.(i)

let csuccs g i =
  Hashtbl.fold
    (fun (s, d) _ acc -> if repr g s = i && repr g d <> i then repr g d :: acc else acc)
    g.cedges []
  |> List.sort_uniq compare

let cpreds g i =
  Hashtbl.fold
    (fun (s, d) _ acc -> if repr g d = i && repr g s <> i then repr g s :: acc else acc)
    g.cedges []
  |> List.sort_uniq compare

let cedge_bits g a b =
  Hashtbl.fold
    (fun (s, d) w acc -> if repr g s = a && repr g d = b then acc + w else acc)
    g.cedges 0

let alive_ids g =
  Array.to_list (Array.mapi (fun i c -> (i, c)) g.nodes)
  |> List.filter_map (fun (i, c) -> if c.alive && g.alias.(i) = i then Some i else None)

(* Merge [ids] into the first one, installing [tree]. *)
let merge g ids tree =
  match ids with
  | [] -> invalid_arg "Decompose.merge: empty"
  | keep :: rest ->
    g.nodes.(keep).tree <- tree;
    List.iter
      (fun i ->
        g.nodes.(i).alive <- false;
        g.alias.(i) <- keep)
      rest;
    keep

(* ------------------------------------------------------------------ *)
(* Step 3: inter-block data parallelism                                *)
(* ------------------------------------------------------------------ *)

(* The "unit shape" of a tree: a data-parallel node contributes its
   child shape, so absorbing into an existing group is uniform. *)
let dp_units tree =
  match tree with
  | Soft_block.Node { Soft_block.composition = Soft_block.Data_parallel; children; _ } ->
    children
  | t -> [ t ]

let step3 ctx g counter =
  let changed = ref false in
  let ids = alive_ids g in
  (* Group alive nodes by (preds, succs); within each group, merge
     equivalence classes of unit shape. *)
  let by_context = Hashtbl.create 16 in
  List.iter
    (fun i ->
      let key = (cpreds g i, csuccs g i) in
      let cur = try Hashtbl.find by_context key with Not_found -> [] in
      Hashtbl.replace by_context key (i :: cur))
    ids;
  Hashtbl.iter
    (fun _ members ->
      let members = List.rev members in
      if List.length members >= 2 then begin
        (* Partition members into equivalence classes. *)
        let classes : (int * int list ref) list ref = ref [] in
        List.iter
          (fun i ->
            let unit_i = List.hd (dp_units g.nodes.(i).tree) in
            let rec assign = function
              | [] ->
                classes := !classes @ [ (i, ref [ i ]) ]
              | (rep, bucket) :: rest ->
                let unit_rep = List.hd (dp_units g.nodes.(rep).tree) in
                if trees_equivalent ctx unit_i unit_rep then bucket := i :: !bucket
                else assign rest
            in
            assign !classes)
          members;
        List.iter
          (fun (_, bucket) ->
            let ids = List.rev !bucket in
            if List.length ids >= 2 then begin
              let units = List.concat_map (fun i -> dp_units g.nodes.(i).tree) ids in
              incr counter;
              let tree =
                Soft_block.data_par ~name:(Printf.sprintf "dp%d" !counter) units
              in
              ignore (merge g ids tree);
              changed := true
            end)
          !classes
      end)
    by_context;
  !changed

(* ------------------------------------------------------------------ *)
(* Step 4: pipeline parallelism                                        *)
(* ------------------------------------------------------------------ *)

let pipe_parts tree =
  match tree with
  | Soft_block.Node
      { Soft_block.composition = Soft_block.Pipeline; children; link_bits; _ } ->
    (children, link_bits)
  | t -> ([ t ], [])

let step4 g counter =
  let changed = ref false in
  let rec scan () =
    let ids = alive_ids g in
    let found =
      List.find_map
        (fun u ->
          match csuccs g u with
          | [ v ] when v <> u -> (
            match cpreds g v with
            | [ u' ] when u' = u ->
              (* no back edge (would be a loop, not a pipeline) *)
              if cedge_bits g v u > 0 then None else Some (u, v)
            | _ -> None)
          | _ -> None)
        ids
    in
    match found with
    | None -> ()
    | Some (u, v) ->
      let cu, lu = pipe_parts g.nodes.(u).tree in
      let cv, lv = pipe_parts g.nodes.(v).tree in
      let bits = cedge_bits g u v in
      incr counter;
      let tree =
        Soft_block.pipeline
          ~name:(Printf.sprintf "pipe%d" !counter)
          ~link_bits:(lu @ [ bits ] @ lv)
          (cu @ cv)
      in
      ignore (merge g [ u; v ] tree);
      changed := true;
      scan ()
  in
  scan ();
  !changed

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let leaf_resources design bmodule =
  if String.length bmodule >= 5 && String.sub bmodule 0 5 = "prim:" then
    (* Residue primitive: negligible, use a nominal cost. *)
    Resource.make ~luts:1 ()
  else Estimate.of_module design bmodule

let run_untraced ?(config = default_config) design ~top =
  match Design.find design top with
  | None -> Error (Printf.sprintf "no module named %s" top)
  | Some _ -> (
    match Design.validate design with
    | _ :: _ as errs ->
      Error (Printf.sprintf "design does not validate: %s" (String.concat "; " errs))
    | [] ->
      let design = if config.simplify then simplify_design design else design in
      let blocks, edges = elaborate config design top in
      if Array.length blocks = 0 then Error "top module contains no instances"
      else begin
        let ctx =
          { design; eq_config = config.eq; cache = Hashtbl.create 64; checks = 0 }
        in
        (* Residue blocks connected only to control blocks fold into
           the control path (case-study adjustment). *)
        (* Chains of residue primitives require iterating the fold
           to a fixpoint. *)
        let n_blocks = Array.length blocks in
        let control_flag = Array.init n_blocks (fun i -> blocks.(i).is_control) in
        let is_residue i =
          String.length blocks.(i).bmodule >= 5
          && String.sub blocks.(i).bmodule 0 5 = "prim:"
        in
        let neighbors = Array.make n_blocks [] in
        Hashtbl.iter
          (fun (s, d) _ ->
            neighbors.(s) <- d :: neighbors.(s);
            neighbors.(d) <- s :: neighbors.(d))
          edges;
        let changed = ref true in
        while !changed do
          changed := false;
          Array.iteri
            (fun i _ ->
              if
                (not control_flag.(i))
                && is_residue i
                && List.for_all
                     (fun j -> control_flag.(j) || is_residue j)
                     neighbors.(i)
                && List.exists (fun j -> control_flag.(j)) neighbors.(i)
              then begin
                control_flag.(i) <- true;
                changed := true
              end)
            blocks
        done;
        let is_control i = control_flag.(i) in
        let control_ids = ref [] and data_ids = ref [] in
        Array.iteri
          (fun i _ -> if is_control i then control_ids := i :: !control_ids else data_ids := i :: !data_ids)
          blocks;
        if !control_ids = [] then
          Error "no control path found (mark it with (* control_path *) or config.control_modules)"
        else if !data_ids = [] then Error "no data path blocks found"
        else begin
          (* Control soft block: kept as one unit. *)
          let control_leaves =
            List.rev_map
              (fun i ->
                Soft_block.leaf
                  ~name:(Printf.sprintf "ctl_%s" blocks.(i).path)
                  ~module_name:blocks.(i).bmodule ~instance_path:blocks.(i).path
                  ~resources:(leaf_resources design blocks.(i).bmodule)
                  ~role:Soft_block.Control ())
              !control_ids
          in
          let control =
            match control_leaves with
            | [ single ] -> single
            | several -> Soft_block.pipeline ~name:"control" ~role:Soft_block.Control several
          in
          (* Initial data-path clusters: one per block, with step 2's
             intra-block lanes where found. *)
          let intra_cache = Hashtbl.create 8 in
          let initial_tree i =
            let b = blocks.(i) in
            let plain () =
              Soft_block.leaf ~name:b.path ~module_name:b.bmodule ~instance_path:b.path
                ~resources:(leaf_resources design b.bmodule) ()
            in
            if not config.enable_intra then plain ()
            else begin
              let lanes =
                match Hashtbl.find_opt intra_cache b.bmodule with
                | Some l -> l
                | None ->
                  let l = intra_lanes ctx b.bmodule in
                  Hashtbl.replace intra_cache b.bmodule l;
                  l
              in
              match lanes with
              | Some (n, lane_res) when n >= 2 ->
                Soft_block.data_par ~name:(b.path ^ "$lanes")
                  (List.init n (fun k ->
                       Soft_block.leaf
                         ~name:(Printf.sprintf "%s$lane%d" b.path k)
                         ~module_name:(b.bmodule ^ "$lane") ~instance_path:b.path
                         ~resources:lane_res ()))
              | Some _ | None -> plain ()
            end
          in
          let nodes =
            Array.map (fun _ -> { alive = false; tree = Soft_block.leaf ~name:"x" ~module_name:"x" ~resources:Resource.zero () }) blocks
          in
          List.iter (fun i -> nodes.(i) <- { alive = true; tree = initial_tree i }) !data_ids;
          (* Data-path edges only. *)
          let cedges = Hashtbl.create 64 in
          Hashtbl.iter
            (fun (s, d) w ->
              if (not (is_control s)) && not (is_control d) then
                Hashtbl.replace cedges (s, d) w)
            edges;
          let g = { nodes; cedges; alias = Array.init (Array.length blocks) Fun.id } in
          (* Step 5: iterate 3 and 4 to fixpoint. *)
          let counter = ref 0 in
          let iterations = ref 0 in
          let continue = ref true in
          while !continue do
            incr iterations;
            let c3 = step3 ctx g counter in
            let c4 = step4 g counter in
            continue := c3 || c4
          done;
          let roots = alive_ids g |> List.map (fun i -> g.nodes.(i).tree) in
          let data =
            match roots with
            | [] -> assert false
            | [ single ] -> single
            | several -> Soft_block.pipeline ~name:"data_root" several
          in
          let stats =
            {
              leaf_blocks = Array.length blocks;
              dp_groups = Soft_block.count_composition data Soft_block.Data_parallel;
              pipe_groups = Soft_block.count_composition data Soft_block.Pipeline;
              eq_checks = ctx.checks;
              iterations = !iterations;
            }
          in
          Ok { control; data; stats }
        end
      end)

let run ?(config = default_config) design ~top =
  Mlv_obs.Obs.Span.with_ "decompose" (fun () -> run_untraced ~config design ~top)
