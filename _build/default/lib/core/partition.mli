(** The partitioning step (paper §2.2.2, Fig. 6).

    A decomposed accelerator is iteratively 2-way partitioned to
    produce deployment units for up to [2^N] FPGAs.  The extracted
    parallel patterns prune the search: a data-parallel node splits
    its children evenly (any split is equivalent); a pipeline node is
    cut at the internal connection with minimal bandwidth; leaves are
    atomic.  The paper's key quality property — never cutting the
    pipeline inside a SIMD unit — holds by construction, because a
    cut is only ever made {e between} children of the current root,
    never inside a data-parallel replica. *)

type piece = {
  piece_id : string;  (** e.g. ["p2/1"]: level 2, index 1 *)
  level : int;  (** number of bisections applied: 0 = whole *)
  index : int;
  tree : Soft_block.t;
  cut_bits : int;  (** bandwidth crossing into the next piece at this level *)
}

(** [bisect tree] splits one soft block into two clusters, returning
    the cut bandwidth, or [None] when the block is atomic (a leaf, or
    a group of one). *)
val bisect : Soft_block.t -> (Soft_block.t * Soft_block.t * int) option

(** [run tree ~iterations] produces the partitioning results for
    every level [0..iterations]: level [k] holds at most [2^k]
    pieces (fewer when blocks become atomic).  Level 0 is the whole
    tree. *)
val run : Soft_block.t -> iterations:int -> piece list list

(** [naive_bisect tree] is the ablation cut: splits the flattened
    leaf list in half by position, ignoring patterns — the
    pattern-oblivious partitioner existing HS abstractions would
    use.  Returns [None] for a single leaf. *)
val naive_bisect : Soft_block.t -> (Soft_block.t * Soft_block.t * int) option
