(** Combinators for building complex parallel patterns from the two
    primitives (paper Fig. 2c): the primitives are closed under
    composition, so reductions, maps over pipelines, pipelines of
    maps, etc. are all expressible. *)

(** [replicate ~name n block] is an [n]-way data-parallel node over
    copies of [block].
    @raise Invalid_argument if [n < 1]. *)
val replicate : name:string -> int -> Soft_block.t -> Soft_block.t

(** [reduction ~name ~fan_in ~levels leaf_gen] builds the reduction
    tree of Fig. 2c: [levels] pipeline stages, stage [i] a
    data-parallel group of [fan_in^(levels-1-i)] reducers produced by
    [leaf_gen ~level ~index].
    @raise Invalid_argument if [fan_in < 2] or [levels < 1]. *)
val reduction :
  name:string ->
  fan_in:int ->
  levels:int ->
  (level:int -> index:int -> Soft_block.t) ->
  Soft_block.t

(** [map_pipeline ~name ~ways stages] is a data-parallel group of
    [ways] identical pipelines (a SIMD unit whose inner structure is
    a pipeline — the shape the paper's partition tool must not cut). *)
val map_pipeline : name:string -> ways:int -> Soft_block.t list -> Soft_block.t
