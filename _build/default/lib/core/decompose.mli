(** The decomposing tool (paper §2.2.1).

    Decomposes an AS ISA-based accelerator's RTL onto the system
    abstraction with the bottom-up flow and the paper's five steps:

    + {b Build block graph} — elaborate the hierarchy down to basic
      modules; each basic-module instance becomes a leaf soft block;
      stray primitives in non-basic modules get their own blocks;
      inter-block connections carry the connected net widths.
    + {b Extract intra-block data parallelism} — split each basic
      module into connected components and equivalence-check them
      ({!Mlv_eqcheck.Check}); equivalent lanes become data-parallel
      children.
    + {b Identify inter-block data parallelism} — equivalent sibling
      blocks with identical fan-in/fan-out merge into a data-parallel
      group (including absorbing into an existing group — the three
      cases of Fig. 4b).
    + {b Identify pipeline parallelism} — unique-successor /
      unique-predecessor pairs merge into pipelines, recording the
      connection bandwidth on each internal edge (Fig. 4c composes
      with step 3 to give data-parallel groups of pipelines).
    + {b Iterate} — steps 3 and 4 repeat until no block can merge.

    The control path is split off first (identified by the
    [control_path] RTL attribute, or by names in
    [config.control_modules] — the designer marking of the paper) and
    kept as a single unchanged soft block.  Isolated residue blocks
    that touch only control blocks are folded into the control block
    (the paper's case-study adjustment of moving the converter and
    VRF, §3). *)

open Mlv_rtl

type config = {
  control_modules : string list;
      (** module names treated as control path, in addition to any
          module carrying the [control_path] attribute *)
  eq : Mlv_eqcheck.Check.config;  (** equivalence-checking effort *)
  enable_intra : bool;  (** run step 2 (on by default) *)
  simplify : bool;
      (** run {!Mlv_rtl.Transform.simplify} on every basic module
          before decomposing (off by default; semantics-preserving) *)
}

val default_config : config

type stats = {
  leaf_blocks : int;  (** blocks after step 1 *)
  dp_groups : int;  (** data-parallel nodes in the result *)
  pipe_groups : int;  (** pipeline nodes in the result *)
  eq_checks : int;  (** equivalence checks performed *)
  iterations : int;  (** step-5 fixpoint iterations *)
}

type decomposition = {
  control : Soft_block.t;  (** the unchanged control soft block *)
  data : Soft_block.t;  (** the decomposed data-path tree *)
  stats : stats;
}

(** [run ?config design ~top] decomposes module [top].  Returns
    [Error reason] when the design does not validate, [top] is
    missing, or no control path can be identified. *)
val run : ?config:config -> Design.t -> top:string -> (decomposition, string) result
