(** The top-down decomposing flow (paper §2.2.1, Fig. 3b).

    Where the bottom-up flow ({!Decompose.run}) dissolves the module
    hierarchy into basic blocks and re-discovers structure by
    merging, the top-down flow follows the hierarchy: a non-leaf
    module's instances are grouped — identical siblings with matching
    connectivity become a data-parallel node, producer-consumer
    chains become pipelines — and each child is decomposed
    recursively until basic modules remain.

    The paper notes the two flows are alternatives; its automation
    tool uses bottom-up "due to the ease of implementation".  We
    provide both and test that they extract the same tree shape on
    the case-study accelerator. *)

open Mlv_rtl

(** [run ?config design ~top] decomposes with the top-down flow.
    Shares {!Decompose.config} (control marking, equivalence
    effort).  Intra-block lane extraction (step 2) is a bottom-up
    notion and is not applied here. *)
val run :
  ?config:Decompose.config ->
  Design.t ->
  top:string ->
  (Decompose.decomposition, string) result
