lib/core/pattern.ml: List Printf Soft_block
