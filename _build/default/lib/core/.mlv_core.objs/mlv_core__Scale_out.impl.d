lib/core/scale_out.ml: Array Codegen Exec Hashtbl Instr List Mlp Mlv_accel Mlv_fpga Mlv_isa Mlv_util Program
