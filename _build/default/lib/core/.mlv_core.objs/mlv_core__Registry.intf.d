lib/core/registry.mli: Mapping
