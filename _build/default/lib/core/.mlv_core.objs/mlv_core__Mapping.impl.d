lib/core/mapping.ml: Device Float List Mlv_accel Mlv_fpga Mlv_obs Mlv_vital Partition Printf Resource Soft_block
