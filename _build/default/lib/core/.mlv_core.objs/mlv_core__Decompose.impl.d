lib/core/decompose.ml: Array Ast Design Extract Fun Graph Hashtbl List Mlv_eqcheck Mlv_fpga Mlv_obs Mlv_rtl Printf Soft_block String Transform
