lib/core/registry.ml: Hashtbl List Mapping
