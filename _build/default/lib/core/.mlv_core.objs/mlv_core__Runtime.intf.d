lib/core/runtime.mli: Mlv_cluster Mlv_vital Registry
