lib/core/top_down.ml: Array Ast Decompose Design Graph Hashtbl List Mlv_eqcheck Mlv_fpga Mlv_rtl Printf Soft_block String
