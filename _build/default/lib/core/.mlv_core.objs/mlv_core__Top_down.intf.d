lib/core/top_down.mli: Decompose Design Mlv_rtl
