lib/core/soft_block.ml: Buffer Format List Mlv_fpga Printf Resource String
