lib/core/partition.ml: Array List Mlv_obs Printf Soft_block
