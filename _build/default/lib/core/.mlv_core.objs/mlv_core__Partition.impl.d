lib/core/partition.ml: Array List Printf Soft_block
