lib/core/framework.mli: Decompose Design Mapping Mlv_accel Mlv_rtl Registry
