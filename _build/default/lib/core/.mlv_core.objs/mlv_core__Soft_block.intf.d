lib/core/soft_block.mli: Format Mlv_fpga Resource
