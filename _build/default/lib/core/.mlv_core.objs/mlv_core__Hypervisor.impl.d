lib/core/hypervisor.ml: Hashtbl List Mlv_obs Mlv_vital Printf Registry Runtime String
