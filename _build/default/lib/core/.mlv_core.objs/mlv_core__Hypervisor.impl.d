lib/core/hypervisor.ml: Hashtbl List Mlv_vital Printf Registry Runtime String
