lib/core/pattern.mli: Soft_block
