lib/core/hypervisor.mli: Runtime
