lib/core/framework.ml: Decompose List Mapping Mlv_accel Mlv_obs Mlv_rtl Printf Registry
