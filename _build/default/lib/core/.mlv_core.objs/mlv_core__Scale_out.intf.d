lib/core/scale_out.mli: Codegen Exec Mlp Mlv_accel Mlv_fpga Mlv_isa Program
