lib/core/mapping.mli: Device Mlv_fpga Mlv_vital Partition Resource Soft_block
