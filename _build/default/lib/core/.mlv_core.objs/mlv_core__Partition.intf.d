lib/core/partition.mli: Soft_block
