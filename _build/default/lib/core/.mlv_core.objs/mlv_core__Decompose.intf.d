lib/core/decompose.mli: Design Mlv_eqcheck Mlv_rtl Soft_block
