lib/core/runtime.ml: Array Device Fun Hashtbl List Mapping Mlv_cluster Mlv_fpga Mlv_obs Mlv_vital Printf Registry
