lib/core/runtime.ml: Array Device Fun Hashtbl List Mapping Mlv_cluster Mlv_fpga Mlv_vital Printf Registry
