(** Scale-out optimization (paper §2.3, Fig. 8).

    Instead of splitting one accelerator across FPGAs, the framework
    scales it {e down} into [parts] smaller accelerators — the
    control path unchanged, each data path holding a row-slice of
    every weight matrix — and inserts DRAM-mapped send/receive
    instructions handled by the synchronization template module.
    The instruction reorderer then sinks the barrier reads below
    independent work so the inter-FPGA transfer overlaps the next
    timestep's input-side matrix multiplications.

    LSTM exchanges one vector per timestep (the hidden state); GRU
    needs a second exchange (the reset-gated state [r o h] feeding
    the candidate), which is why large GRU models stop hiding the
    communication latency in Fig. 11. *)

open Mlv_isa

(** Per-part program and DRAM layout. *)
type part_layout = {
  kind : Codegen.kind;
  hidden : int;  (** full model hidden size *)
  input : int;
  timesteps : int;
  parts : int;
  part : int;  (** this part's index *)
  slice : int;  (** rows this part owns = hidden / parts *)
  weights : Codegen.weight_spec list;  (** sliced matrices *)
  x_base : int;
  h_out_base : int;  (** this part's slice of every h_t *)
  sync_base : int;
  dram_words : int;
}

(** [generate kind ~hidden ~input ~timesteps ~parts ~part] emits the
    scaled-down program for one part.
    @raise Invalid_argument unless [parts >= 2], [0 <= part < parts]
    and [parts] divides [hidden]. *)
val generate :
  Codegen.kind ->
  hidden:int ->
  input:int ->
  timesteps:int ->
  parts:int ->
  part:int ->
  Program.t * part_layout

(** [reorder ~sync_base p] is the optimization tool: a stable
    dependency-preserving reorder that hoists synchronization sends
    as early as their operands allow and sinks synchronization reads
    below independent instructions. *)
val reorder : sync_base:int -> Program.t -> Program.t

(** [link layouts] wires [parts] executors together: element [i] of
    the returned array is the port for part [i].  Receives implement
    the template module's merge: the full vector assembled from all
    parts' slices, barrier-blocking until every slice for that step
    has arrived. *)
val link : part_layout array -> Exec.port array

(** [init_part_dram ~full_layout ~full_dram layout] builds part
    [layout.part]'s DRAM image from the unsliced model's DRAM, so
    numerical results are comparable with {!Codegen.golden}. *)
val init_part_dram :
  full_layout:Codegen.layout -> full_dram:float array -> part_layout -> float array

(** [run_parts ?exact programs layouts ~drams ~max_steps]
    co-simulates all parts round-robin until completion, each part
    executing against its DRAM image (see {!init_part_dram}).
    Returns the executors for inspection.
    @raise Failure on deadlock or budget exhaustion. *)
val run_parts :
  ?exact:bool ->
  Program.t array ->
  part_layout array ->
  drams:float array array ->
  max_steps:int ->
  Exec.t array

(** [multi_fpga_latency_us ~parts ~config ~device ~added_latency_us
    ~reordered kind ~hidden ~input ~timesteps] analyzes a [parts]-way
    scale-out deployment, each part running on [device] with [config]
    tiles.  A barrier read waits for the slowest partner's slice: on
    a ring of [parts] FPGAs, (parts-1) slices arrive over up to
    [parts/2] hops.  [partner_slowdown] (default 1.0) stretches the
    partner's send times for heterogeneous deployments (e.g. an
    XCVU37P paired with the slower XCKU115). *)
val multi_fpga_latency_us :
  ?partner_slowdown:float ->
  parts:int ->
  config:Mlv_accel.Config.t ->
  device:Mlv_fpga.Device.t ->
  added_latency_us:float ->
  reordered:bool ->
  Codegen.kind ->
  hidden:int ->
  input:int ->
  timesteps:int ->
  float

(** [two_fpga_latency_us] is {!multi_fpga_latency_us} with
    [~parts:2] — the Fig. 11 configuration. *)
val two_fpga_latency_us :
  config:Mlv_accel.Config.t ->
  device:Mlv_fpga.Device.t ->
  added_latency_us:float ->
  reordered:bool ->
  Codegen.kind ->
  hidden:int ->
  input:int ->
  timesteps:int ->
  float

(** {2 MLP scale-out}

    The feed-forward counterpart: every layer's output is sliced
    across the parts and exchanged before the next layer consumes it.
    Consecutive samples are independent, so after reordering the
    exchange of sample [b]'s activations hides behind sample [b+1]'s
    first-layer matrix multiply. *)

type mlp_layout = {
  mspec : Mlp.spec;
  mbatch : int;
  mparts : int;
  mpart : int;
  mweights : Codegen.weight_spec list;  (** row-sliced layer matrices *)
  mx_base : int;
  my_base : int;  (** this part's output slices *)
  out_slice : int;
  msync_base : int;
  mdram_words : int;
}

(** [generate_mlp spec ~batch ~parts ~part] emits one part's program.
    @raise Invalid_argument unless [parts] divides every non-input
    layer dimension. *)
val generate_mlp : Mlp.spec -> batch:int -> parts:int -> part:int -> Program.t * mlp_layout

(** [init_mlp_part_dram ~full_layout ~full_dram lay] slices the
    unsliced model's DRAM image for one part. *)
val init_mlp_part_dram :
  full_layout:Mlp.layout -> full_dram:float array -> mlp_layout -> float array

(** [run_mlp_parts ?exact programs layouts ~drams ~max_steps]
    co-simulates the MLP parts. *)
val run_mlp_parts :
  ?exact:bool ->
  Program.t array ->
  mlp_layout array ->
  drams:float array array ->
  max_steps:int ->
  Exec.t array

(** [mlp_latency_us ~parts ~config ~device ~added_latency_us
    ~reordered spec ~batch] is the timing analysis for an MLP
    scale-out deployment. *)
val mlp_latency_us :
  parts:int ->
  config:Mlv_accel.Config.t ->
  device:Mlv_fpga.Device.t ->
  added_latency_us:float ->
  reordered:bool ->
  Mlp.spec ->
  batch:int ->
  float
