open Mlv_rtl
module Check = Mlv_eqcheck.Check
module Estimate = Mlv_fpga.Estimate
module Resource = Mlv_fpga.Resource

(* Equivalence between two masters: name equality, or a cached
   equivalence check on basic modules. *)
type ctx = {
  design : Design.t;
  config : Decompose.config;
  eq_cache : (string * string, bool) Hashtbl.t;
  tree_cache : (string, Soft_block.t) Hashtbl.t;
  mutable checks : int;
}

let masters_equivalent ctx a b =
  if a = b then true
  else begin
    let key = if a < b then (a, b) else (b, a) in
    match Hashtbl.find_opt ctx.eq_cache key with
    | Some r -> r
    | None ->
      let r =
        match (Design.find ctx.design a, Design.find ctx.design b) with
        | Some ma, Some mb when Ast.is_basic ma && Ast.is_basic mb ->
          ctx.checks <- ctx.checks + 1;
          Check.modules_equivalent ~config:ctx.config.Decompose.eq ma mb
        | _ -> false
      in
      Hashtbl.replace ctx.eq_cache key r;
      r
  end

let master_name (inst : Ast.instance) =
  match inst.Ast.master with
  | Ast.M_module name -> name
  | Ast.M_prim p -> "prim:" ^ Ast.prim_name p

let leaf_for ctx ~path (inst : Ast.instance) =
  match inst.Ast.master with
  | Ast.M_prim p ->
    Soft_block.leaf ~name:path ~module_name:("prim:" ^ Ast.prim_name p)
      ~instance_path:path ~resources:(Estimate.of_prim p) ()
  | Ast.M_module name ->
    Soft_block.leaf ~name:path ~module_name:name ~instance_path:path
      ~resources:(Estimate.of_module ctx.design name) ()

(* Decompose the body of one module: group its instances into
   data-parallel families and pipeline chains following Fig. 3b. *)
let rec subtree ctx name =
  match Hashtbl.find_opt ctx.tree_cache name with
  | Some t -> t
  | None ->
    let m = Design.find_exn ctx.design name in
    let t =
      if Ast.is_basic m then
        Soft_block.leaf ~name:m.Ast.mod_name ~module_name:m.Ast.mod_name
          ~instance_path:m.Ast.mod_name ~resources:(Estimate.of_module ctx.design name)
          ()
      else decompose_body ctx m ~prefix:m.Ast.mod_name
    in
    Hashtbl.replace ctx.tree_cache name t;
    t

and child_tree ctx ~path (inst : Ast.instance) =
  match inst.Ast.master with
  | Ast.M_prim _ -> leaf_for ctx ~path inst
  | Ast.M_module child -> (
    let m = Design.find_exn ctx.design child in
    if Ast.is_basic m then leaf_for ctx ~path inst else subtree ctx child)

and decompose_body ctx (m : Ast.module_def) ~prefix =
  let g = Graph.build ctx.design m in
  let n = Graph.node_count g in
  if n = 0 then
    Soft_block.leaf ~name:prefix ~module_name:m.Ast.mod_name ~instance_path:prefix
      ~resources:Resource.zero ()
  else begin
    (* Group instances into data-parallel families: equivalent
       masters with the same predecessor and successor sets. *)
    let family = Array.make n (-1) in
    let families = ref [] in
    for i = 0 to n - 1 do
      if family.(i) < 0 then begin
        let members = ref [ i ] in
        for j = i + 1 to n - 1 do
          if
            family.(j) < 0
            && masters_equivalent ctx
                 (master_name (Graph.instance g i))
                 (master_name (Graph.instance g j))
            && Graph.preds g i = Graph.preds g j
            && Graph.succs g i = Graph.succs g j
          then begin
            family.(j) <- i;
            members := j :: !members
          end
        done;
        family.(i) <- i;
        families := (i, List.rev !members) :: !families
      end
    done;
    let families = List.rev !families in
    (* Build the subtree of each family. *)
    let family_tree (rep, members) =
      let trees =
        List.map
          (fun i ->
            let inst = Graph.instance g i in
            child_tree ctx ~path:(prefix ^ "." ^ inst.Ast.inst_name) inst)
          members
      in
      match trees with
      | [ single ] -> (rep, single)
      | several ->
        ( rep,
          Soft_block.data_par
            ~name:(Printf.sprintf "%s.dp_%s" prefix (master_name (Graph.instance g rep)))
            several )
    in
    let nodes = List.map family_tree families in
    (* Quotient edges between family representatives. *)
    let fam_of i = family.(i) in
    let edge_bits a b =
      List.fold_left
        (fun acc (s, d, w) -> if fam_of s = a && fam_of d = b && a <> b then acc + w else acc)
        0 (Graph.edges g)
    in
    (* Topological order of families (by representative). *)
    let reps = List.map fst nodes in
    let indeg rep =
      List.length (List.filter (fun r -> r <> rep && edge_bits r rep > 0) reps)
    in
    let order =
      (* Kahn over the small quotient graph; fall back to declaration
         order inside ties for determinism. *)
      let remaining = ref reps in
      let out = ref [] in
      while !remaining <> [] do
        let ready =
          List.filter
            (fun r ->
              List.for_all
                (fun q -> q = r || (not (List.mem q !remaining)) || edge_bits q r = 0)
                reps)
            !remaining
        in
        match ready with
        | [] ->
          (* cycle: emit in declaration order *)
          out := List.rev_append !remaining !out;
          remaining := []
        | r :: _ ->
          out := r :: !out;
          remaining := List.filter (fun q -> q <> r) !remaining
      done;
      ignore indeg;
      List.rev !out
    in
    let ordered_trees = List.map (fun r -> List.assoc r nodes) order in
    match ordered_trees with
    | [ single ] -> single
    | several ->
      let link_bits =
        let rec links = function
          | a :: (b :: _ as rest) -> edge_bits a b :: links rest
          | _ -> []
        in
        links order
      in
      Soft_block.pipeline ~name:(prefix ^ ".pipe") ~link_bits several
  end

let is_control_module config (m : Ast.module_def) =
  List.mem "control_path" m.Ast.attrs
  || List.mem m.Ast.mod_name config.Decompose.control_modules

let run ?(config = Decompose.default_config) design ~top =
  match Design.find design top with
  | None -> Error (Printf.sprintf "no module named %s" top)
  | Some top_def -> (
    match Design.validate design with
    | _ :: _ as errs ->
      Error (Printf.sprintf "design does not validate: %s" (String.concat "; " errs))
    | [] ->
      let ctx =
        {
          design;
          config;
          eq_cache = Hashtbl.create 32;
          tree_cache = Hashtbl.create 32;
          checks = 0;
        }
      in
      (* Split control and data at the top (paper Fig. 3a). *)
      let is_control_inst (inst : Ast.instance) =
        match inst.Ast.master with
        | Ast.M_module name -> is_control_module config (Design.find_exn design name)
        | Ast.M_prim _ -> false
      in
      let control_insts, data_insts =
        List.partition is_control_inst top_def.Ast.instances
      in
      (* Top-level residue primitives whose neighbours are all control
         fold into the control block. *)
      let g = Graph.build design top_def in
      let control_idx = Hashtbl.create 8 in
      List.iteri
        (fun i inst -> if is_control_inst inst then Hashtbl.replace control_idx i ())
        top_def.Ast.instances;
      let folded = Hashtbl.create 8 in
      let changed = ref true in
      while !changed do
        changed := false;
        List.iteri
          (fun i (inst : Ast.instance) ->
            let is_prim = match inst.Ast.master with Ast.M_prim _ -> true | _ -> false in
            if is_prim && not (Hashtbl.mem folded i) then begin
              let neighbours = Graph.preds g i @ Graph.succs g i in
              let is_residue j =
                match (Graph.instance g j).Ast.master with
                | Ast.M_prim _ -> true
                | Ast.M_module _ -> false
              in
              let controlish j = Hashtbl.mem control_idx j || Hashtbl.mem folded j in
              if
                neighbours <> []
                && List.for_all (fun j -> controlish j || is_residue j) neighbours
                && List.exists controlish neighbours
              then begin
                Hashtbl.replace folded i ();
                changed := true
              end
            end)
          top_def.Ast.instances
      done;
      let data_insts =
        List.filteri
          (fun _ _ -> true)
          data_insts
        |> List.filter (fun (inst : Ast.instance) ->
               match inst.Ast.master with
               | Ast.M_prim _ -> (
                 (* position lookup for fold table *)
                 let rec index k = function
                   | [] -> -1
                   | x :: rest -> if x == inst then k else index (k + 1) rest
                 in
                 let i = index 0 top_def.Ast.instances in
                 not (Hashtbl.mem folded i))
               | Ast.M_module _ -> true)
      in
      if control_insts = [] then
        Error
          "no control path found (mark it with (* control_path *) or config.control_modules)"
      else if data_insts = [] then Error "no data path blocks found"
      else begin
        let mark_control t =
          List.map
            (fun (l : Soft_block.leaf) ->
              Soft_block.Leaf { l with Soft_block.lrole = Soft_block.Control })
            (Soft_block.leaves t)
        in
        let control_leaves =
          List.concat_map
            (fun (inst : Ast.instance) ->
              mark_control (child_tree ctx ~path:("top." ^ inst.Ast.inst_name) inst))
            control_insts
        in
        let control =
          match control_leaves with
          | [ single ] -> single
          | several -> Soft_block.pipeline ~name:"control" ~role:Soft_block.Control several
        in
        (* Decompose the data side: rebuild a pseudo-module holding
           only the data instances so the grouping logic applies. *)
        let data_module = { top_def with Ast.instances = data_insts } in
        let data = decompose_body ctx data_module ~prefix:"top" in
        let stats =
          {
            Decompose.leaf_blocks =
              List.length (Soft_block.leaves data) + List.length control_leaves;
            dp_groups = Soft_block.count_composition data Soft_block.Data_parallel;
            pipe_groups = Soft_block.count_composition data Soft_block.Pipeline;
            eq_checks = ctx.checks;
            iterations = 1;
          }
        in
        Ok { Decompose.control; data; stats }
      end)
