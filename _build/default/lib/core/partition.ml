type piece = {
  piece_id : string;
  level : int;
  index : int;
  tree : Soft_block.t;
  cut_bits : int;
}

let take n lst =
  let rec go acc n = function
    | x :: rest when n > 0 -> go (x :: acc) (n - 1) rest
    | rest -> (List.rev acc, rest)
  in
  go [] n lst

(* Wrap a child list back into a block, avoiding singleton nodes. *)
let rewrap composition name link_bits = function
  | [ single ] -> single
  | children -> (
    match composition with
    | Soft_block.Data_parallel -> Soft_block.data_par ~name children
    | Soft_block.Pipeline -> Soft_block.pipeline ~name ?link_bits children)

let bisect tree =
  match tree with
  | Soft_block.Leaf _ -> None
  | Soft_block.Node n -> (
    match n.Soft_block.children with
    | [] | [ _ ] -> None
    | children -> (
      match n.Soft_block.composition with
      | Soft_block.Data_parallel ->
        (* Even split; replicas are interchangeable so the inter-
           cluster bandwidth is the replicas' shared I/O, modeled as
           zero extra (they do not talk to each other). *)
        let half = (List.length children + 1) / 2 in
        let left, right = take half children in
        Some
          ( rewrap Soft_block.Data_parallel (n.Soft_block.nname ^ "_a") None left,
            rewrap Soft_block.Data_parallel (n.Soft_block.nname ^ "_b") None right,
            0 )
      | Soft_block.Pipeline ->
        (* Cut at the minimum-bandwidth internal connection. *)
        let bits = Array.of_list n.Soft_block.link_bits in
        if Array.length bits = 0 then None
        else begin
          let best = ref 0 in
          Array.iteri (fun i b -> if b < bits.(!best) then best := i) bits;
          let cut = !best in
          let left, right = take (cut + 1) children in
          let lb_left, lb_right =
            let l = Array.to_list bits in
            let left_bits, rest = take cut l in
            match rest with
            | _ :: right_bits -> (left_bits, right_bits)
            | [] -> (left_bits, [])
          in
          Some
            ( rewrap Soft_block.Pipeline (n.Soft_block.nname ^ "_a") (Some lb_left) left,
              rewrap Soft_block.Pipeline (n.Soft_block.nname ^ "_b") (Some lb_right) right,
              bits.(cut) )
        end))

let naive_bisect tree =
  let leaves = Soft_block.leaves tree in
  match leaves with
  | [] | [ _ ] -> None
  | ls ->
    let half = (List.length ls + 1) / 2 in
    let left, right = take half ls in
    let wrap name group =
      match group with
      | [ l ] -> Soft_block.Leaf l
      | ls -> Soft_block.pipeline ~name (List.map (fun l -> Soft_block.Leaf l) ls)
    in
    (* A position split ignores patterns; the cut crosses every net
       between the halves — approximate with the total I/O of the
       smaller half. *)
    let cut_bits = 64 * min (List.length left) (List.length right) in
    Some (wrap "naive_a" left, wrap "naive_b" right, cut_bits)

let run_untraced tree ~iterations =
  let level0 = [ { piece_id = "p0/0"; level = 0; index = 0; tree; cut_bits = 0 } ] in
  let next level pieces =
    List.concat_map
      (fun p ->
        match bisect p.tree with
        | None -> [ { p with piece_id = Printf.sprintf "p%d/%d" level p.index } ]
        | Some (a, b, cut) ->
          [
            { piece_id = ""; level; index = 0; tree = a; cut_bits = cut };
            { piece_id = ""; level; index = 0; tree = b; cut_bits = 0 };
          ])
      pieces
    |> List.mapi (fun i p ->
           { p with piece_id = Printf.sprintf "p%d/%d" level i; level; index = i })
  in
  let rec go level acc current =
    if level > iterations then List.rev acc
    else begin
      let nxt = next level current in
      go (level + 1) (nxt :: acc) nxt
    end
  in
  go 1 [ level0 ] level0

let run tree ~iterations =
  Mlv_obs.Obs.Span.with_ "partition" (fun () -> run_untraced tree ~iterations)
