(** System-level simulation: a workload set played against the
    heterogeneous cluster under a runtime policy (paper §4.4,
    Fig. 12).

    Tasks arrive over time; each selects the smallest accelerator
    instance whose on-chip weight capacity covers its model, asks the
    system controller to deploy it, runs for its modeled inference
    latency, and releases its resources.  Tasks that cannot be placed
    queue FIFO.  Everything is deterministic given the seed. *)

open Mlv_workload

type config = {
  policy : Mlv_core.Runtime.policy;
  composition : Genset.composition;
  tasks : int;
  mean_interarrival_us : float;
  seed : int;
  repeats_per_task : int;
      (** inferences served per deployment (amortizes reconfiguration,
          as a real serving system would) *)
  slo_multiplier : float;
      (** a task misses its service-level objective when its sojourn
          exceeds this multiple of its unqueued service time *)
}

(** [default_config ~policy ~composition] gives 120 tasks, 200 µs
    mean inter-arrival, 20 inferences per deployment, seed 42. *)
val default_config :
  policy:Mlv_core.Runtime.policy -> composition:Genset.composition -> config

type result = {
  completed : int;
  makespan_us : float;
  throughput_per_s : float;  (** completed tasks / makespan *)
  mean_latency_us : float;  (** arrival to completion *)
  mean_wait_us : float;  (** arrival to deployment *)
  mean_service_us : float;
  p95_latency_us : float;
  peak_queue : int;
  latencies_us : float list;  (** per task, completion order *)
  slo_misses : int;
}

(** The accelerator instances compiled into the mapping database —
    ten tile counts, as in the paper's evaluation (§4.3). *)
val instance_tile_counts : int list

(** [build_registry ()] compiles every instance (expensive; share the
    result across runs). *)
val build_registry : unit -> Mlv_core.Registry.t

(** [instance_for ~policy point] selects the registry instance a task
    of this benchmark point requests. *)
val instance_for : policy:Mlv_core.Runtime.policy -> Deepbench.point -> int

(** [run ~registry config] plays the workload to completion. *)
val run : registry:Mlv_core.Registry.t -> config -> result
