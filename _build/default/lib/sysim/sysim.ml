open Mlv_workload
module Runtime = Mlv_core.Runtime
module Registry = Mlv_core.Registry
module Framework = Mlv_core.Framework
module Scale_out = Mlv_core.Scale_out
module Config = Mlv_accel.Config
module Perf = Mlv_accel.Perf
module Device = Mlv_fpga.Device
module Cluster = Mlv_cluster.Cluster
module Node = Mlv_cluster.Node
module Sim = Mlv_cluster.Sim
module Rng = Mlv_util.Rng
module Codegen = Mlv_isa.Codegen
module Obs = Mlv_obs.Obs

type config = {
  policy : Runtime.policy;
  composition : Genset.composition;
  tasks : int;
  mean_interarrival_us : float;
  seed : int;
  repeats_per_task : int;
  slo_multiplier : float;
}

let default_config ~policy ~composition =
  {
    policy;
    composition;
    tasks = 120;
    mean_interarrival_us = 200.0;
    seed = 42;
    repeats_per_task = 20;
    slo_multiplier = 20.0;
  }

type result = {
  completed : int;
  makespan_us : float;
  throughput_per_s : float;
  mean_latency_us : float;
  mean_wait_us : float;
  mean_service_us : float;
  p95_latency_us : float;
  peak_queue : int;
  latencies_us : float list;
  slo_misses : int;
}

(* Ten accelerator instances (paper §4.3); the largest two exceed any
   single device and exist purely as multi-FPGA deployments. *)
let instance_tile_counts = [ 4; 6; 8; 10; 13; 16; 18; 21; 32; 42 ]

let build_registry () =
  Framework.npu_registry ~iterations:2 ~tile_counts:instance_tile_counts ()

let tiles_needed point =
  let words = Deepbench.weight_words point in
  let bits = words * Config.stored_bits_per_weight in
  (bits + Config.tile_weight_bits - 1) / Config.tile_weight_bits

let max_single_device_tiles =
  List.fold_left
    (fun acc kind -> max acc (Mlv_accel.Resource_model.max_tiles (Device.get kind)))
    0 Device.kinds

let instance_for ~policy point =
  let need = max 6 (tiles_needed point) in
  let cap =
    if policy.Runtime.whole_device then max_single_device_tiles else max_int
  in
  let candidates = List.filter (fun t -> t >= need && t <= cap) instance_tile_counts in
  match candidates with
  | t :: _ -> t
  | [] ->
    (* Oversized model under a single-device policy: take the largest
       instance and stream the overflow from DRAM. *)
    List.fold_left min max_int (List.filter (fun t -> t <= cap) instance_tile_counts)
    |> fun smallest ->
    List.fold_left (fun acc t -> if t <= cap then max acc t else acc) smallest
      instance_tile_counts

(* Modeled service time of one deployed inference task. *)
let service_cache : (string, float) Hashtbl.t = Hashtbl.create 64

let service_latency_us ~policy (point : Deepbench.point) (d : Runtime.deployment) =
  let nodes = Runtime.nodes_used d in
  let tiles = Runtime.tiles_deployed d in
  let kinds =
    List.map (fun (p : Runtime.placement) -> p.Runtime.bitstream.Mlv_vital.Bitstream.device)
      d.Runtime.placements
    |> List.sort_uniq compare
  in
  let device_kind = match kinds with k :: _ -> k | [] -> Device.XCVU37P in
  (* Heterogeneous pieces: the barrier waits for the slowest device. *)
  let partner_slowdown =
    let fastest =
      List.fold_left (fun acc k -> Float.max acc (Device.get k).Device.base_freq_mhz) 1.0 kinds
    in
    let slowest =
      List.fold_left
        (fun acc k -> Float.min acc (Device.get k).Device.base_freq_mhz)
        infinity kinds
    in
    if slowest = infinity then 1.0 else fastest /. slowest
  in
  let key =
    Printf.sprintf "%s/%d/%d/%s/%.2f/%b" (Deepbench.name point) tiles (List.length nodes)
      (Device.kind_name device_kind) partner_slowdown policy.Runtime.whole_device
  in
  match Hashtbl.find_opt service_cache key with
  | Some v -> v
  | None ->
    let device = Device.get device_kind in
    let mem_kind = if device.Device.has_uram then Config.Bram_uram else Config.Bram_only in
    let v =
      if List.length nodes >= 2 then begin
        (* Scale-out across the allocated nodes with the overlap
           optimization. *)
        let parts = List.length nodes in
        let per_part = max 1 (tiles / parts) in
        let cfg = Config.make ~tiles:per_part ~mem_kind () in
        (* parts must divide hidden for the slice layout; fall back
           to 2 when it does not. *)
        let parts = if point.Deepbench.hidden mod parts = 0 then parts else 2 in
        Scale_out.multi_fpga_latency_us ~partner_slowdown ~parts ~config:cfg ~device
          ~added_latency_us:0.0 ~reordered:true point.Deepbench.kind
          ~hidden:point.Deepbench.hidden ~input:point.Deepbench.hidden
          ~timesteps:point.Deepbench.timesteps
      end
      else begin
        let cfg = Config.make ~tiles ~mem_kind () in
        let program, _ =
          Codegen.generate point.Deepbench.kind ~hidden:point.Deepbench.hidden
            ~input:point.Deepbench.hidden ~timesteps:point.Deepbench.timesteps
        in
        let deploy =
          if policy.Runtime.whole_device then Perf.bare
          else begin
            let vbs =
              List.fold_left
                (fun acc p -> acc + p.Runtime.bitstream.Mlv_vital.Bitstream.vbs)
                0 d.Runtime.placements
            in
            Perf.vital_deploy ~virtual_blocks:vbs ~pattern_aware:true
          end
        in
        (Perf.program_latency cfg device ~deploy program).Perf.total_us
      end
    in
    Hashtbl.replace service_cache key v;
    v

type pending = { task : Genset.task; accel : string }

let rec run ~registry cfg =
  Obs.Span.with_ "sysim.run" (fun () -> run_untraced ~registry cfg)

and run_untraced ~registry cfg =
  let cluster = Cluster.create () in
  let runtime = Runtime.create ~policy:cfg.policy cluster registry in
  let sim = cluster.Cluster.sim in
  let rng = Rng.create cfg.seed in
  let tasks =
    Genset.generate ~rng ~composition:cfg.composition ~tasks:cfg.tasks
      ~mean_interarrival_us:cfg.mean_interarrival_us
  in
  let queue : pending Queue.t = Queue.create () in
  let completed = ref 0 in
  let latencies = ref [] in
  let waits = ref [] in
  let services = ref [] in
  let peak_queue = ref 0 in
  let slo_misses = ref 0 in
  let makespan = ref 0.0 in
  let rec try_start () =
    if not (Queue.is_empty queue) then begin
      let p = Queue.peek queue in
      match Runtime.deploy runtime ~accel:p.accel with
      | Error _ -> () (* head blocks; FIFO to avoid starvation *)
      | Ok d ->
        ignore (Queue.pop queue);
        let now = Sim.now sim in
        let wait = now -. p.task.Genset.arrival_us in
        waits := wait :: !waits;
        Obs.Histogram.observe (Obs.Histogram.get "sysim.task_wait_us") wait;
        let service =
          d.Runtime.reconfig_us
          +. (float_of_int cfg.repeats_per_task
             *. service_latency_us ~policy:cfg.policy p.task.Genset.point d)
        in
        services := service :: !services;
        Obs.Histogram.observe (Obs.Histogram.get "sysim.task_service_us") service;
        Sim.schedule sim ~delay:service (fun () ->
            Runtime.undeploy runtime d;
            incr completed;
            Obs.Counter.incr (Obs.Counter.get "sysim.tasks.completed");
            let finished = Sim.now sim in
            let sojourn = finished -. p.task.Genset.arrival_us in
            latencies := sojourn :: !latencies;
            Obs.Histogram.observe (Obs.Histogram.get "sysim.task_sojourn_us") sojourn;
            (* SLO: a task should finish within slo_multiplier x its
               unqueued service time. *)
            if sojourn > cfg.slo_multiplier *. service then begin
              incr slo_misses;
              Obs.Counter.incr (Obs.Counter.get "sysim.slo_misses")
            end;
            makespan := Float.max !makespan finished;
            try_start ());
        try_start ()
    end
  in
  List.iter
    (fun (task : Genset.task) ->
      Sim.schedule_at sim ~at:task.Genset.arrival_us (fun () ->
          Obs.Counter.incr (Obs.Counter.get "sysim.tasks.arrived");
          let accel =
            Framework.accel_name
              ~tiles:(instance_for ~policy:cfg.policy task.Genset.point)
          in
          Queue.add { task; accel } queue;
          peak_queue := max !peak_queue (Queue.length queue);
          try_start ()))
    tasks;
  Sim.run sim;
  let mean xs = Mlv_util.Stats.mean xs in
  let p95 =
    match !latencies with [] -> 0.0 | xs -> Mlv_util.Stats.percentile 95.0 xs
  in
  {
    completed = !completed;
    makespan_us = !makespan;
    throughput_per_s =
      (if !makespan > 0.0 then float_of_int !completed /. (!makespan /. 1e6) else 0.0);
    mean_latency_us = mean !latencies;
    mean_wait_us = mean !waits;
    mean_service_us = mean !services;
    p95_latency_us = p95;
    peak_queue = !peak_queue;
    latencies_us = List.rev !latencies;
    slo_misses = !slo_misses;
  }
