lib/sysim/sysim.ml: Deepbench Float Genset Hashtbl List Mlv_accel Mlv_cluster Mlv_core Mlv_fpga Mlv_isa Mlv_obs Mlv_util Mlv_vital Mlv_workload Printf Queue
