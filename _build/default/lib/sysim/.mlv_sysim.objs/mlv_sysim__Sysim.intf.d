lib/sysim/sysim.mli: Deepbench Genset Mlv_core Mlv_workload
