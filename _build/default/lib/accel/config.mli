(** Parameterized BrainWave-like accelerator configuration (paper §3).

    The accelerator is a soft NPU: a control path (instruction buffer,
    decoder, sequencer) plus a data path of [tiles] identical engines.
    Each engine holds one MVM tile — [rows_per_tile] dot-product units
    of [lanes] BFP multipliers — its slice of weight memory, and its
    slice of the float16 multi-function units.  The number of tiles is
    the scaling knob used to generate accelerator instances with
    different compute capability, and the unit in which the scale-down
    transform shrinks an accelerator. *)

type mem_kind =
  | Bram_only  (** devices without URAM (XCKU115) *)
  | Bram_uram  (** URAM-capable devices (XCVU37P) *)

type t = {
  tiles : int;  (** number of MVM tile engines *)
  lanes : int;  (** BFP multipliers per dot-product unit (native dim) *)
  rows_per_tile : int;  (** dot-product units per tile *)
  vrf_words : int;  (** vector register file capacity, words *)
  instr_buffer_words : int;  (** on-chip instruction buffer entries *)
  mem_kind : mem_kind;  (** weight-memory technology parameterization *)
  mvm_mantissa_bits : int;  (** BFP mantissa width (sign included) *)
}

(** [make ?lanes ?rows_per_tile ?vrf_words ?instr_buffer_words
    ?mem_kind ?mvm_mantissa_bits ~tiles ()] with BrainWave-like
    defaults: 128 lanes, 16 rows, 6-bit mantissas, 2048-word VRF,
    16384-entry instruction buffer, BRAM+URAM memory.
    @raise Invalid_argument if [tiles <= 0]. *)
val make :
  ?lanes:int ->
  ?rows_per_tile:int ->
  ?vrf_words:int ->
  ?instr_buffer_words:int ->
  ?mem_kind:mem_kind ->
  ?mvm_mantissa_bits:int ->
  tiles:int ->
  unit ->
  t

(** [macs_per_cycle t] is the whole accelerator's multiplier count:
    [tiles * rows_per_tile * lanes]. *)
val macs_per_cycle : t -> int

(** [weight_capacity_words t] is how many BFP weights fit in the
    accelerator's on-chip weight memory (one tile contributes
    a fixed budget; see {!Resource_model}). *)
val weight_capacity_words : t -> int

(** Average stored bits per weight (narrow BFP mantissas with
    amortized shared exponents). *)
val stored_bits_per_weight : int

(** One tile's weight-memory budget in bits. *)
val tile_weight_bits : int

(** [scale_down t ~tiles] is a copy with fewer tiles — the control
    path is unchanged, so the same programs still run (paper §2.3).
    @raise Invalid_argument unless [0 < tiles <= t.tiles]. *)
val scale_down : t -> tiles:int -> t

(** [name t] is a short identifier like ["npu-t21"]. *)
val name : t -> string

val pp : Format.formatter -> t -> unit
