(** The parameterized synchronization template module (paper §2.3,
    Fig. 8b).

    The module monitors the accelerator's DRAM interface.  A write to
    the pre-defined out-of-range address is forwarded to the partner
    accelerator over the inter-FPGA network; a read of that address
    blocks until the partner's data has arrived (barrier
    synchronization for an in-order processor), and the returned
    vector is the received data merged with the local DRAM data
    according to the index register.  Parameters are fixed at offline
    compilation time.

    The behavioural side (send/recv/merge) is implemented by the
    runtime harness in [Mlv_core.Scale_out]; this module provides the
    hardware template: its RTL, resource cost, and parameter
    checking. *)

open Mlv_rtl
open Mlv_fpga

type params = {
  sync_base : int;  (** first intercepted DRAM word address *)
  buffer_words : int;  (** receive-buffer capacity (vector words) *)
  data_width : int;  (** DRAM interface width in bits *)
  index_stride : int;  (** merge granularity from the index register *)
}

(** [make ?buffer_words ?data_width ?index_stride ~sync_base ()]
    builds parameters with defaults (4096-word buffer, 512-bit
    interface, stride 1).
    @raise Invalid_argument on non-positive values. *)
val make :
  ?buffer_words:int -> ?data_width:int -> ?index_stride:int -> sync_base:int -> unit -> params

(** [rtl p] emits the template as a basic RTL module
    ([sync_template]): address comparator, receive FIFO, merge mux
    and the flag register of Fig. 8b. *)
val rtl : params -> Ast.module_def

(** [resources p] is the fabric cost of one instantiated template —
    small compared to a tile engine, which is why the scale-down
    transform is cheap. *)
val resources : params -> Resource.t
