open Mlv_fpga
module Instr = Mlv_isa.Instr
module Program = Mlv_isa.Program

type deployment = { vital : bool; virtual_blocks : int; pattern_aware : bool }

let bare = { vital = false; virtual_blocks = 0; pattern_aware = true }

let vital_deploy ~virtual_blocks ~pattern_aware =
  { vital = true; virtual_blocks = max 1 virtual_blocks; pattern_aware }

type breakdown = {
  total_us : float;
  compute_cycles : int;
  memory_us : float;
  li_cycles : int;
  instructions : int;
  freq_mhz : float;
}

(* Pipeline depths and issue cost, in cycles.  Calibrated against
   Table 4's absolute latencies (see EXPERIMENTS.md).  The MVM array
   is a deep systolic pipeline (BrainWave-class NPUs run >100 stages
   end to end); the invocation cost covers the host doorbell and
   descriptor fetch per inference task. *)
let mvm_depth = 100
let mfu_depth = 30
let issue_cycles = 2
let li_hop_cycles = 5
let invocation_us = 3.0

let ceil_div a b = (a + b - 1) / b

let mvm_cycles (c : Config.t) ~rows ~cols =
  ceil_div rows (c.Config.tiles * c.Config.rows_per_tile) * ceil_div cols c.Config.lanes

let li_hops d =
  if not d.vital then 0
  else if d.pattern_aware then 1
  else 4 + (d.virtual_blocks / 3)

let program_latency (c : Config.t) (dev : Device.t) ?(deploy = bare)
    ?(board = Board.default) ?(weights_resident = true) ?(instr_buffer = true)
    ?(dram_sharers = 1) ?(partner_stretch = 1.0) ?extra_latency_us
    ?(sync_base = max_int) ?trace p =
  let freq_mhz = Resource_model.achieved_freq_mhz c dev ~floorplanned:true in
  let cycle_us = 1.0 /. freq_mhz in
  let us_of_cycles n = float_of_int n *. cycle_us in
  let hops = li_hops deploy in
  let li_per_edge = hops * li_hop_cycles in
  (* Vector lengths and matrix shapes are tracked symbolically so the
     MFU occupancy of length-free instructions is known. *)
  let vlen = Array.make p.Program.vregs 0 in
  let mshape = Array.make p.Program.mregs (0, 0) in
  (* Outstanding synchronization sends: (addr, len, partner arrival
     basis).  A slower partner (partner_stretch > 1) needs
     proportionally longer for the compute segment since the previous
     barrier, so its matching send lags ours by
     (stretch - 1) x (time since the last barrier completed). *)
  let sync_sends : (int * int * float) list ref = ref [] in
  let last_barrier = ref invocation_us in
  let clock = ref invocation_us in
  let compute_cycles = ref 0 in
  let memory_us = ref 0.0 in
  let li_cycles_total = ref 0 in
  let instructions = ref 0 in
  let model_weight_words =
    Array.fold_left
      (fun acc i ->
        match i with Instr.M_rd { rows; cols; _ } -> acc + (rows * cols) | _ -> acc)
      0 p.Program.instrs
  in
  (* Fraction of each matrix that overflows tile memory and must be
     streamed from DRAM on every use. *)
  let capacity = Config.weight_capacity_words c in
  let overflow_fraction =
    if weights_resident && model_weight_words <= capacity then 0.0
    else if not weights_resident then 1.0
    else
      float_of_int (model_weight_words - capacity) /. float_of_int model_weight_words
  in
  (* Co-located accelerators on one device share the DRAM channel;
     data accesses see 1/n of the bandwidth (latency unchanged). *)
  let sharers = Float.max 1.0 (float_of_int dram_sharers) in
  let dram_us ~bytes =
    let one = Board.dram_read_time_us board ~bytes in
    let latency = board.Board.dram_latency_ns /. 1000.0 in
    (* Long bursts amortize the access latency and lose bandwidth
       proportionally; short accesses additionally queue behind the
       other requestors. *)
    let short_factor = Float.min 1.0 (64.0 /. Float.max 1.0 (float_of_int bytes)) in
    (latency *. (1.0 +. ((sharers -. 1.0) *. short_factor)))
    +. ((one -. latency) *. sharers)
  in
  (* Without the on-chip instruction buffer every instruction word is
     fetched from the shared DRAM (paper Section 4.4: the buffer is
     what makes performance isolation possible). *)
  let fetch_us = if instr_buffer then 0.0 else dram_us ~bytes:8 in
  (* Hardware loop stack: (body start pc, remaining repeats). *)
  let loops = ref [] in
  let n_instrs = Array.length p.Program.instrs in
  let pc = ref 0 in
  while !pc < n_instrs do
    let instr = p.Program.instrs.(!pc) in
    begin
      incr instructions;
      let e = Instr.effects instr in
      (* Crossing a virtual-block boundary costs LI hops once per
         instruction result (operand FIFOs fill in parallel). *)
      let has_edge = e.Instr.vreads <> [] || e.Instr.mreads <> [] in
      let li = if has_edge then li_per_edge else 0 in
      li_cycles_total := !li_cycles_total + li;
      (* Latency in cycles plus any DRAM time, per instruction. *)
      let lat_cycles, mem_time_us =
        match instr with
        | Instr.Mvm { mat; src = _; dst = _ } ->
          let rows, cols = mshape.(mat) in
          let compute = mvm_cycles c ~rows ~cols in
          compute_cycles := !compute_cycles + compute;
          let stream_us =
            if overflow_fraction > 0.0 then begin
              let words = float_of_int (rows * cols) *. overflow_fraction in
              let bytes =
                int_of_float
                  (words *. float_of_int Config.stored_bits_per_weight /. 8.0)
              in
              dram_us ~bytes
            end
            else 0.0
          in
          (compute + mvm_depth, stream_us)
        | Instr.Vv_add { a; _ } | Instr.Vv_sub { a; _ } | Instr.Vv_mul { a; _ } ->
          let occ = ceil_div (max 1 vlen.(a)) c.Config.lanes in
          compute_cycles := !compute_cycles + occ;
          (occ + mfu_depth, 0.0)
        | Instr.Act { src; _ } ->
          let occ = ceil_div (max 1 vlen.(src)) c.Config.lanes in
          compute_cycles := !compute_cycles + occ;
          (occ + mfu_depth, 0.0)
        | Instr.V_fill { len; _ } ->
          let occ = ceil_div len c.Config.lanes in
          (occ + mfu_depth, 0.0)
        | Instr.V_rd { addr; len; _ } ->
          if addr >= sync_base then (0, 0.0) else (0, dram_us ~bytes:(len * 2))
        | Instr.V_wr { addr; len; _ } ->
          (* A synchronization send posts into the template module's
             buffer; the transfer itself is asynchronous. *)
          if addr >= sync_base then (4, 0.0) else (0, dram_us ~bytes:(len * 2))
        | Instr.M_rd { rows; cols; _ } ->
          if weights_resident then (0, 0.0) else (0, dram_us ~bytes:(rows * cols))
        | Instr.Nop | Instr.Loop _ | Instr.End_loop -> (1, 0.0)
        | Instr.V_rd_i { len; _ } -> (0, dram_us ~bytes:(len * 2))
        | Instr.V_wr_i { len; _ } -> (0, dram_us ~bytes:(len * 2))
      in
      let extra = match extra_latency_us with Some f -> f instr | None -> 0.0 in
      let start = !clock +. us_of_cycles issue_cycles +. fetch_us in
      let nominal = start +. us_of_cycles (lat_cycles + li) +. mem_time_us in
      memory_us := !memory_us +. mem_time_us;
      (* A synchronization read completes when the partner's data
         arrives: the matching send (approximated by our own
         symmetric send, parts being load-balanced) plus the ring
         transfer.  The wait overlaps every instruction executed
         since the send was posted. *)
      let finish =
        match instr with
        | Instr.V_rd { addr; len; _ } when addr >= sync_base ->
          (* The partner's matching send is approximated by our own,
             stretched when the partner runs on a slower device (the
             heterogeneous-deployment case). *)
          let arrival =
            List.fold_left
              (fun acc (wa, wl, basis) ->
                if addr < wa + wl && wa < addr + len then Float.max acc (basis +. extra)
                else acc)
              0.0 !sync_sends
          in
          Float.max nominal arrival
        | _ -> nominal +. extra
      in
      (match instr with
      | Instr.V_wr { addr; len; _ } when addr >= sync_base ->
        let compute_segment = Float.max 0.0 (finish -. !last_barrier) in
        let basis = finish +. ((partner_stretch -. 1.0) *. compute_segment) in
        sync_sends := (addr, len, basis) :: !sync_sends
      | _ -> ());
      (match instr with
      | Instr.V_rd { addr; _ } when addr >= sync_base -> last_barrier := finish
      | _ -> ());
      (* Record result lengths. *)
      List.iter
        (fun r ->
          match instr with
          | Instr.V_rd { len; _ } | Instr.V_rd_i { len; _ } -> vlen.(r) <- len
          | Instr.V_fill { len; _ } -> vlen.(r) <- len
          | Instr.Mvm { mat; _ } -> vlen.(r) <- fst mshape.(mat)
          | Instr.Vv_add { a; _ } | Instr.Vv_sub { a; _ } | Instr.Vv_mul { a; _ } ->
            vlen.(r) <- vlen.(a)
          | Instr.Act { src; _ } -> vlen.(r) <- vlen.(src)
          | _ -> ())
        e.Instr.vwrites;
      List.iter
        (fun r ->
          match instr with
          | Instr.M_rd { rows; cols; _ } -> mshape.(r) <- (rows, cols)
          | _ -> ())
        e.Instr.mwrites;
      (match trace with Some f -> f instr ~start ~finish | None -> ());
      clock := finish
    end;
    (* Control flow. *)
    (match instr with
    | Instr.Loop { count } ->
      loops := (!pc + 1, count - 1) :: !loops;
      incr pc
    | Instr.End_loop -> (
      match !loops with
      | (start, remaining) :: rest ->
        if remaining > 0 then begin
          loops := (start, remaining - 1) :: rest;
          pc := start
        end
        else begin
          loops := rest;
          incr pc
        end
      | [] -> incr pc)
    | _ -> incr pc)
  done;
  {
    total_us = !clock;
    compute_cycles = !compute_cycles;
    memory_us = !memory_us;
    li_cycles = !li_cycles_total;
    instructions = !instructions;
    freq_mhz;
  }
