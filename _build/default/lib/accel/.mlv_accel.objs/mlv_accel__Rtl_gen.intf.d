lib/accel/rtl_gen.mli: Config Design Mlv_rtl
