lib/accel/perf.ml: Array Board Config Device Float List Mlv_fpga Mlv_isa Resource_model
