lib/accel/perf.mli: Board Config Device Mlv_fpga Mlv_isa
