lib/accel/config.ml: Format Printf
