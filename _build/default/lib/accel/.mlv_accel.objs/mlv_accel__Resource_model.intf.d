lib/accel/resource_model.mli: Config Device Mlv_fpga Resource
