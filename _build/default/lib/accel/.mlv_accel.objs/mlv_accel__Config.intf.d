lib/accel/config.mli: Format
