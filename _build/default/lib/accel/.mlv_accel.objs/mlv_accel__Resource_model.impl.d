lib/accel/resource_model.ml: Config Device Float Floorplan Mlv_fpga Resource
