lib/accel/sync_module.ml: Ast Estimate List Mlv_fpga Mlv_rtl
