lib/accel/rtl_gen.ml: Ast Config Design List Mlv_rtl Printf
