lib/accel/sync_module.mli: Ast Mlv_fpga Mlv_rtl Resource
