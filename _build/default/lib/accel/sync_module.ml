open Mlv_rtl
open Mlv_fpga

type params = {
  sync_base : int;
  buffer_words : int;
  data_width : int;
  index_stride : int;
}

let make ?(buffer_words = 4096) ?(data_width = 512) ?(index_stride = 1) ~sync_base () =
  if sync_base <= 0 then invalid_arg "Sync_module.make: sync_base must be positive";
  if buffer_words <= 0 || data_width <= 0 || index_stride <= 0 then
    invalid_arg "Sync_module.make: parameters must be positive";
  { sync_base; buffer_words; data_width; index_stride }

let addr_bits = 32

let rtl p =
  let w = p.data_width in
  let conn formal actual = { Ast.formal; actual } in
  let prim name pr conns = { Ast.inst_name = name; master = Ast.M_prim pr; conns } in
  let net name width = { Ast.net_name = name; net_width = width } in
  let buf_addr_bits =
    max 1 (int_of_float (ceil (log (float_of_int p.buffer_words) /. log 2.0)))
  in
  {
    Ast.mod_name = "sync_template";
    ports =
      [
        { Ast.port_name = "addr"; dir = Ast.Input; width = addr_bits };
        { Ast.port_name = "wdata"; dir = Ast.Input; width = w };
        { Ast.port_name = "wen"; dir = Ast.Input; width = 1 };
        { Ast.port_name = "dram_rdata"; dir = Ast.Input; width = w };
        { Ast.port_name = "net_rdata"; dir = Ast.Input; width = w };
        { Ast.port_name = "net_valid"; dir = Ast.Input; width = 1 };
        { Ast.port_name = "buf_waddr"; dir = Ast.Input; width = buf_addr_bits };
        { Ast.port_name = "buf_raddr"; dir = Ast.Input; width = buf_addr_bits };
        { Ast.port_name = "net_send"; dir = Ast.Output; width = 1 };
        { Ast.port_name = "net_wdata"; dir = Ast.Output; width = w };
        { Ast.port_name = "rdata"; dir = Ast.Output; width = w };
        { Ast.port_name = "stall"; dir = Ast.Output; width = 1 };
      ];
    nets =
      [
        net "base" addr_bits;
        net "is_sync_raw" 1;
        net "not_sync" 1;
        net "hit_wr" 1;
        net "flag_next" 1;
        net "flag_q" 1;
        net "buffered" w;
        net "merged" w;
        net "not_valid" 1;
      ];
    instances =
      [
        prim "basec"
          (Ast.P_const { width = addr_bits; value = p.sync_base })
          [ conn "o" "base" ];
        (* addr >= base  <=>  not (addr < base) *)
        prim "cmp" (Ast.P_cmp_lt addr_bits)
          [ conn "a" "addr"; conn "b" "base"; conn "o" "not_sync" ];
        prim "inv" (Ast.P_not 1) [ conn "a" "not_sync"; conn "o" "is_sync_raw" ];
        (* a sync write is forwarded to the network *)
        prim "wgate" (Ast.P_and 1)
          [ conn "a" "is_sync_raw"; conn "b" "wen"; conn "o" "hit_wr" ];
        prim "sendr" (Ast.P_reg 1) [ conn "d" "hit_wr"; conn "q" "net_send" ];
        prim "wbuf" (Ast.P_reg w) [ conn "d" "wdata"; conn "q" "net_wdata" ];
        (* the flag is set while a sync read waits for network data *)
        prim "flagmux" (Ast.P_mux 1)
          [
            conn "sel" "net_valid";
            conn "a" "net_valid";
            conn "b" "is_sync_raw";
            conn "o" "flag_next";
          ];
        prim "flagr" (Ast.P_reg 1) [ conn "d" "flag_next"; conn "q" "flag_q" ];
        (* receive buffer *)
        prim "rxbuf"
          (Ast.P_ram { words = p.buffer_words; width = w })
          [
            conn "waddr" "buf_waddr";
            conn "wdata" "net_rdata";
            conn "wen" "net_valid";
            conn "raddr" "buf_raddr";
            conn "rdata" "buffered";
          ];
        (* merge received data with local DRAM data per the index reg *)
        prim "merge" (Ast.P_mux w)
          [
            conn "sel" "flag_q";
            conn "a" "buffered";
            conn "b" "dram_rdata";
            conn "o" "merged";
          ];
        prim "outal"
          (Ast.P_slice { width = w; lo = 0; out_width = w })
          [ conn "a" "merged"; conn "o" "rdata" ];
        (* stall the in-order core until data arrives *)
        prim "nv" (Ast.P_not 1) [ conn "a" "net_valid"; conn "o" "not_valid" ];
        prim "stl" (Ast.P_and 1)
          [ conn "a" "is_sync_raw"; conn "b" "not_valid"; conn "o" "stall" ];
      ];
    attrs = [];
  }

let resources p =
  Estimate.of_census
    (List.map (fun i -> (i, 1))
       (List.filter_map
          (fun (inst : Ast.instance) ->
            match inst.master with Ast.M_prim pr -> Some pr | Ast.M_module _ -> None)
          (rtl p).Ast.instances))
