(** Calibrated resource/implementation model of the BrainWave-like
    accelerator, reproducing Tables 2 and 3 of the paper.

    Per-tile and fixed (control + converters + VRF) costs are
    back-derived from the paper's two baseline data points (BW-V37:
    21 tiles on XCVU37P; BW-K115: 13 tiles on XCKU115); device
    synthesis factors absorb the small per-part mapping differences.
    This model is the authority for what fits where; the RTL census
    ({!Mlv_fpga.Estimate} over {!Rtl_gen}) is a structural
    cross-check. *)

open Mlv_fpga

(** [fixed_resources device] is the tile-independent part: control
    path, instruction buffer, format converters, vector register
    file, DRAM/network interfaces and the shared MFU front-end. *)
val fixed_resources : Device.t -> Resource.t

(** [tile_resources device] is the marginal cost of one tile engine
    (dot units, weight memory, MFU slice) on the given device.  On
    URAM devices part of the weight memory maps to URAM. *)
val tile_resources : Device.t -> Resource.t

(** [accel_resources config device] is the whole accelerator. *)
val accel_resources : Config.t -> Device.t -> Resource.t

(** [utilization config device] is the max component ratio of
    [accel_resources] against the device capacity. *)
val utilization : Config.t -> Device.t -> float

(** [fits config device] checks the accelerator routes on the device
    (within the routable-utilization envelope). *)
val fits : Config.t -> Device.t -> bool

(** [max_tiles device] is the largest tile count that stays inside
    the per-resource routability caps the paper's baselines respect
    (21 on XCVU37P, 13 on XCKU115). *)
val max_tiles : Device.t -> int

(** [baseline_config device] is the paper's baseline accelerator for
    the device ([max_tiles] tiles, memory kind matching URAM
    availability). *)
val baseline_config : Device.t -> Config.t

(** [achieved_freq_mhz config device ~floorplanned] is the post-route
    frequency of the accelerator. *)
val achieved_freq_mhz : Config.t -> Device.t -> floorplanned:bool -> float

(** [peak_tflops config device] is peak throughput at the
    floorplanned frequency: 2 ops per MAC per cycle plus the float16
    MFU contribution. *)
val peak_tflops : Config.t -> Device.t -> float
