(** Cycle-approximate performance model of the accelerator.

    Programs are scheduled on an in-order, single-issue pipeline with
    three function units (MVM array, multi-function units, memory
    interface): an instruction issues when the previous one has
    issued, starts executing when its operands are ready and its
    function unit is free, occupies the unit for its initiation
    interval, and delivers its result after its latency.  This is the
    standard model of a BrainWave-class NPU and reproduces the shape
    of the paper's Table 4.

    Deployment through ViTAL's virtual blocks adds
    latency-insensitive-interface hops to every producer-consumer
    edge; the pattern-aware partitioner of the paper keeps each SIMD
    unit's pipeline inside one virtual block so the hop count stays
    at one, whereas a pattern-oblivious split scatters pipelines
    across blocks (the ablation's [pattern_aware = false]). *)

open Mlv_fpga

(** How the accelerator is deployed on the fabric. *)
type deployment = {
  vital : bool;  (** through the HS abstraction (virtual blocks) *)
  virtual_blocks : int;  (** number of virtual blocks occupied *)
  pattern_aware : bool;  (** partitioned along extracted patterns *)
}

(** Bare-metal baseline deployment (whole device, no indirection). *)
val bare : deployment

(** [vital_deploy ~virtual_blocks ~pattern_aware] builds a
    virtual-block deployment descriptor. *)
val vital_deploy : virtual_blocks:int -> pattern_aware:bool -> deployment

type breakdown = {
  total_us : float;
  compute_cycles : int;  (** cycles the MVM+MFU units were busy *)
  memory_us : float;  (** DRAM transfer time *)
  li_cycles : int;  (** latency-insensitive interface cycles added *)
  instructions : int;
  freq_mhz : float;  (** achieved clock used for conversion *)
}

(** [program_latency config device ?deploy ?board ?weights_resident
    ?extra_latency_us program] schedules [program] and returns the
    latency breakdown.

    [weights_resident] (default true) models steady-state serving:
    matrix loads hit tile memory already populated.  When false, or
    when the model's weights exceed {!Config.weight_capacity_words},
    every [Mvm] streams its matrix from DRAM and the instruction's
    initiation interval becomes the max of compute and streaming.

    [extra_latency_us] lets callers charge additional per-instruction
    latency (the scale-out optimizer uses it for ring transfers).

    [instr_buffer] (default true) models the on-chip instruction
    buffer of paper Section 3; with it off, every instruction fetch
    streams from DRAM.  [dram_sharers] (default 1) is the number of
    accelerators sharing the device's DRAM channel — combined with a
    disabled buffer this reproduces the contention that breaks
    performance isolation (Section 4.4).

    [partner_stretch] (default 1.0) models a heterogeneous partner in
    a scale-out deployment: the matching send on the other FPGA is
    assumed to happen [partner_stretch] times later than our own
    (e.g. 400/300 when the partner is the slower XCKU115).

    [sync_base] marks DRAM addresses at and beyond it as inter-FPGA
    synchronization accesses (paper §2.3).  A sync read is
    {e issue-blocking}: the in-order processor stalls at the barrier
    until the partner's data arrives, so instructions textually after
    it cannot overlap the transfer — which is exactly why the
    instruction-reordering tool ({!Mlv_core.Scale_out.reorder}) sinks
    sync reads below independent work. *)
val program_latency :
  Config.t ->
  Device.t ->
  ?deploy:deployment ->
  ?board:Board.t ->
  ?weights_resident:bool ->
  ?instr_buffer:bool ->
  ?dram_sharers:int ->
  ?partner_stretch:float ->
  ?extra_latency_us:(Mlv_isa.Instr.t -> float) ->
  ?sync_base:int ->
  ?trace:(Mlv_isa.Instr.t -> start:float -> finish:float -> unit) ->
  Mlv_isa.Program.t ->
  breakdown

(** [mvm_cycles config ~rows ~cols] is the MVM initiation interval in
    cycles, exposed for tests and the scale-out analysis. *)
val mvm_cycles : Config.t -> rows:int -> cols:int -> int

(** [li_hops deploy] is the modeled hop count per dependence edge. *)
val li_hops : deployment -> int
