open Mlv_fpga

(* Calibration (see DESIGN.md): solving Table 2's two data points
   gives ~26k LUTs / 28k DFFs / 305 DSPs / 3.4 Mb weight memory per
   tile and ~64k LUTs / 71k DFFs / 1106 DSPs / 2 Mb fixed. *)

let fixed_luts = 64_000
let fixed_dffs = 71_000
let fixed_bram_kb = 2_048
let fixed_dsps = 1_106
let tile_luts = 26_000
let tile_dffs = 28_000
let tile_dsps = 305
let tile_bram_uram_dev_kb = 2_360 (* BRAM share when URAM carries the rest *)
let tile_uram_kb = 1_097
let tile_bram_only_kb = 3_330

let scale_device (d : Device.t) r =
  {
    r with
    Resource.luts = int_of_float (Float.round (d.Device.lut_factor *. float_of_int r.Resource.luts));
    Resource.dffs = int_of_float (Float.round (d.Device.dff_factor *. float_of_int r.Resource.dffs));
  }

let fixed_resources (d : Device.t) =
  scale_device d
    (Resource.make ~luts:fixed_luts ~dffs:fixed_dffs ~bram_kb:fixed_bram_kb
       ~dsps:fixed_dsps ())

let tile_resources (d : Device.t) =
  let mem =
    if d.Device.has_uram then
      Resource.make ~bram_kb:tile_bram_uram_dev_kb ~uram_kb:tile_uram_kb ()
    else Resource.make ~bram_kb:tile_bram_only_kb ()
  in
  scale_device d
    (Resource.add (Resource.make ~luts:tile_luts ~dffs:tile_dffs ~dsps:tile_dsps ()) mem)

let accel_resources (c : Config.t) d =
  (* Lanes/rows scale the tile linearly against the 128x16 reference. *)
  let shape_factor =
    float_of_int (c.Config.lanes * c.Config.rows_per_tile) /. float_of_int (128 * 16)
  in
  Resource.add (fixed_resources d)
    (Resource.scale_f (float_of_int c.Config.tiles *. shape_factor) (tile_resources d))

let utilization c d =
  Resource.utilization ~used:(accel_resources c d) ~cap:d.Device.capacity

(* Routability caps observed across the paper's baselines: BRAM-heavy
   designs stop routing past ~73%, DSP columns saturate at ~92%,
   logic at ~85%. *)
let caps cap =
  Resource.make
    ~luts:(int_of_float (0.85 *. float_of_int cap.Resource.luts))
    ~dffs:(int_of_float (0.85 *. float_of_int cap.Resource.dffs))
    ~bram_kb:(int_of_float (0.73 *. float_of_int cap.Resource.bram_kb))
    ~uram_kb:cap.Resource.uram_kb
    ~dsps:(int_of_float (0.92 *. float_of_int cap.Resource.dsps))
    ()

let mem_kind_for (d : Device.t) =
  if d.Device.has_uram then Config.Bram_uram else Config.Bram_only

let fits c d =
  Resource.fits ~need:(accel_resources c d) ~avail:(caps d.Device.capacity)

let max_tiles d =
  let rec search n =
    if n = 0 then 0
    else if fits (Config.make ~tiles:n ~mem_kind:(mem_kind_for d) ()) d then n
    else search (n - 1)
  in
  search 64

let baseline_config d = Config.make ~tiles:(max_tiles d) ~mem_kind:(mem_kind_for d) ()

let achieved_freq_mhz c d ~floorplanned =
  Floorplan.achieved_freq_mhz d ~utilization:(utilization c d) ~floorplanned

let peak_tflops c d =
  let freq = achieved_freq_mhz c d ~floorplanned:true *. 1e6 in
  let mvm_ops = 2.0 *. float_of_int (Config.macs_per_cycle c) in
  (* MFU: one fp16 multiply-add lane group per tile. *)
  let mfu_ops = 2.0 *. float_of_int (c.Config.tiles * c.Config.lanes) in
  (mvm_ops +. mfu_ops) *. freq /. 1e12
