open Mlv_rtl

let top_name = "bw_npu"
let control_name = "control_path"
let engine_name = "engine"
let control_companions = [ "fp16_to_bfp"; "vector_rf"; "writeback" ]

(* Small builders. *)
let in_p name width = { Ast.port_name = name; dir = Ast.Input; width }
let out_p name width = { Ast.port_name = name; dir = Ast.Output; width }
let net name width = { Ast.net_name = name; net_width = width }
let conn formal actual = { Ast.formal; actual }

let inst name master conns = { Ast.inst_name = name; master; conns }
let prim name p conns = inst name (Ast.M_prim p) conns

let modul ?(attrs = []) name ports nets instances =
  { Ast.mod_name = name; ports; nets; instances; attrs }

(* Clamp bus widths: the IR allows arbitrary widths but we keep the
   generated buses meaningful. *)

(* The dot-product unit: [lanes] narrow BFP multipliers, a balanced
   adder tree and an accumulator register, plus a private slice of
   weight memory. *)
let dot_unit (c : Config.t) =
  let mb = 4 in
  (* mantissa datapath width after Booth recoding *)
  let lanes = c.Config.lanes in
  let xw = lanes * mb in
  let sum_w = 16 in
  let nets = ref [] in
  let insts = ref [] in
  let add_net n w = nets := net n w :: !nets in
  let add_inst i = insts := i :: !insts in
  (* weight memory: one row of weights per address *)
  add_net "wrow" xw;
  add_inst
    (prim "wmem"
       (Ast.P_ram { words = 256; width = xw })
       [
         conn "waddr" "waddr";
         conn "wdata" "wdata";
         conn "wen" "wen";
         conn "raddr" "raddr";
         conn "rdata" "wrow";
       ]);
  (* per-lane multiply *)
  for l = 0 to lanes - 1 do
    let xs = Printf.sprintf "xs%d" l and ws = Printf.sprintf "ws%d" l in
    let p = Printf.sprintf "prod%d" l in
    add_net xs mb;
    add_net ws mb;
    add_net p mb;
    add_inst
      (prim
         (Printf.sprintf "slx%d" l)
         (Ast.P_slice { width = xw; lo = l * mb; out_width = mb })
         [ conn "a" "x"; conn "o" xs ]);
    add_inst
      (prim
         (Printf.sprintf "slw%d" l)
         (Ast.P_slice { width = xw; lo = l * mb; out_width = mb })
         [ conn "a" "wrow"; conn "o" ws ]);
    add_inst
      (prim (Printf.sprintf "mul%d" l) (Ast.P_mul mb)
         [ conn "a" xs; conn "b" ws; conn "o" p ])
  done;
  (* balanced adder tree over widened products *)
  let widen l =
    let src = Printf.sprintf "prod%d" l in
    let dst = Printf.sprintf "wide%d" l in
    add_net dst sum_w;
    add_net (dst ^ "_pad") (sum_w - mb);
    add_inst
      (prim
         (Printf.sprintf "pad%d" l)
         (Ast.P_const { width = sum_w - mb; value = 0 })
         [ conn "o" (dst ^ "_pad") ]);
    add_inst
      (prim
         (Printf.sprintf "cat%d" l)
         (Ast.P_concat { wa = sum_w - mb; wb = mb })
         [ conn "a" (dst ^ "_pad"); conn "b" src; conn "o" dst ]);
    dst
  in
  let level = ref (List.init lanes widen) in
  let tree_idx = ref 0 in
  while List.length !level > 1 do
    let rec pair = function
      | a :: b :: rest ->
        let o = Printf.sprintf "sum%d" !tree_idx in
        incr tree_idx;
        add_net o sum_w;
        add_inst
          (prim (Printf.sprintf "addt%d" !tree_idx) (Ast.P_add sum_w)
             [ conn "a" a; conn "b" b; conn "o" o ]);
        o :: pair rest
      | rest -> rest
    in
    level := pair !level
  done;
  let tree_out = List.hd !level in
  (* accumulate across column blocks *)
  add_net "acc_next" sum_w;
  add_net "acc_q" sum_w;
  add_net "acc_clr" sum_w;
  add_net "zero16" sum_w;
  add_inst (prim "zeroc" (Ast.P_const { width = sum_w; value = 0 }) [ conn "o" "zero16" ]);
  add_inst
    (prim "accmux" (Ast.P_mux sum_w)
       [ conn "sel" "clr"; conn "a" "zero16"; conn "b" "acc_q"; conn "o" "acc_clr" ]);
  add_inst
    (prim "accadd" (Ast.P_add sum_w)
       [ conn "a" "acc_clr"; conn "b" tree_out; conn "o" "acc_next" ]);
  add_inst (prim "accreg" (Ast.P_reg sum_w) [ conn "d" "acc_next"; conn "q" "acc_q" ]);
  add_inst
    (prim "outsl"
       (Ast.P_slice { width = sum_w; lo = 0; out_width = sum_w })
       [ conn "a" "acc_q"; conn "o" "dot" ]);
  let waddr_bits = 8 and raddr_bits = 8 in
  modul "dot_unit"
    [
      in_p "x" xw;
      in_p "waddr" waddr_bits;
      in_p "wdata" xw;
      in_p "wen" 1;
      in_p "raddr" raddr_bits;
      in_p "clr" 1;
      out_p "dot" sum_w;
    ]
    (List.rev !nets) (List.rev !insts)

(* The per-engine accumulator: registers each dot unit result. *)
let accum (c : Config.t) =
  let rows = c.Config.rows_per_tile in
  let w = 16 in
  let nets = ref [] and insts = ref [] in
  let outs =
    List.init rows (fun r ->
        let q = Printf.sprintf "q%d" r in
        nets := net q w :: !nets;
        insts :=
          prim (Printf.sprintf "r%d" r) (Ast.P_reg w)
            [ conn "d" (Printf.sprintf "d%d" r); conn "q" q ]
          :: !insts;
        q)
  in
  (* concat into the output bus *)
  let rec chain acc_net acc_w idx = function
    | [] -> (acc_net, acc_w)
    | q :: rest ->
      let o = Printf.sprintf "cat_o%d" idx in
      nets := net o (acc_w + w) :: !nets;
      insts :=
        prim
          (Printf.sprintf "cat%d" idx)
          (Ast.P_concat { wa = acc_w; wb = w })
          [ conn "a" acc_net; conn "b" q; conn "o" o ]
        :: !insts;
      chain o (acc_w + w) (idx + 1) rest
  in
  let bus, bus_w =
    match outs with
    | [] -> assert false
    | first :: rest -> chain first w 0 rest
  in
  insts :=
    prim "outsl"
      (Ast.P_slice { width = bus_w; lo = 0; out_width = bus_w })
      [ conn "a" bus; conn "o" "row_bus" ]
    :: !insts;
  modul "accum"
    (List.init rows (fun r -> in_p (Printf.sprintf "d%d" r) w)
    @ [ out_p "row_bus" (rows * w) ])
    (List.rev !nets) (List.rev !insts)

(* The float16 multi-function slice: two multiplier banks (vector
   scale and pointwise multiply), an adder bank, and a table-driven
   activation unit. *)
let mfu_slice (c : Config.t) =
  let rows = c.Config.rows_per_tile in
  let w = 16 in
  let bus = rows * w in
  let nets = ref [] and insts = ref [] in
  let add_net n wd = nets := net n wd :: !nets in
  let add_inst i = insts := i :: !insts in
  let lane_outputs =
    List.init rows (fun r ->
        let x = Printf.sprintf "x%d" r in
        add_net x w;
        add_inst
          (prim
             (Printf.sprintf "slx%d" r)
             (Ast.P_slice { width = bus; lo = r * w; out_width = w })
             [ conn "a" "in_bus"; conn "o" x ]);
        let o = Printf.sprintf "o%d" r in
        let m1 = Printf.sprintf "m1_%d" r and m2 = Printf.sprintf "m2_%d" r in
        let s = Printf.sprintf "s_%d" r and a = Printf.sprintf "a_%d" r in
        add_net m1 w;
        add_net m2 w;
        add_net s w;
        add_net a w;
        add_net o w;
        add_inst
          (prim (Printf.sprintf "mul1_%d" r) (Ast.P_mul w)
             [ conn "a" x; conn "b" "scale"; conn "o" m1 ]);
        add_inst
          (prim (Printf.sprintf "mul2_%d" r) (Ast.P_mul w)
             [ conn "a" m1; conn "b" x; conn "o" m2 ]);
        add_inst
          (prim (Printf.sprintf "add_%d" r) (Ast.P_add w)
             [ conn "a" m2; conn "b" "bias"; conn "o" s ]);
        let addr = Printf.sprintf "addr_%d" r in
        add_net addr 10;
        add_inst
          (prim (Printf.sprintf "adsl_%d" r)
             (Ast.P_slice { width = w; lo = 0; out_width = 10 })
             [ conn "a" s; conn "o" addr ]);
        add_inst
          (prim (Printf.sprintf "act_%d" r)
             (Ast.P_rom { words = 1024; width = w })
             [ conn "raddr" addr; conn "rdata" a ]);
        add_inst
          (prim (Printf.sprintf "sel_%d" r) (Ast.P_mux w)
             [ conn "sel" "use_act"; conn "a" a; conn "b" s; conn "o" o ]);
        o)
  in
  (* concat lanes back into the output bus *)
  let rec chain acc_net acc_w idx = function
    | [] -> (acc_net, acc_w)
    | q :: rest ->
      let o = Printf.sprintf "cat_o%d" idx in
      add_net o (acc_w + w);
      add_inst
        (prim
           (Printf.sprintf "cat%d" idx)
           (Ast.P_concat { wa = acc_w; wb = w })
           [ conn "a" acc_net; conn "b" q; conn "o" o ]);
      chain o (acc_w + w) (idx + 1) rest
  in
  let out_net, out_w =
    match lane_outputs with
    | [] -> assert false
    | first :: rest -> chain first w 0 rest
  in
  add_inst
    (prim "outsl"
       (Ast.P_slice { width = out_w; lo = 0; out_width = out_w })
       [ conn "a" out_net; conn "o" "out_bus" ]);
  modul "mfu_slice"
    [
      in_p "in_bus" bus;
      in_p "scale" w;
      in_p "bias" w;
      in_p "use_act" 1;
      out_p "out_bus" bus;
    ]
    (List.rev !nets) (List.rev !insts)

(* One engine: data-parallel dot units under a pipeline with the
   accumulator and the MFU slice. *)
let engine (c : Config.t) =
  let mb = 4 in
  let rows = c.Config.rows_per_tile in
  let lanes = c.Config.lanes in
  let xw = lanes * mb in
  let bus = rows * 16 in
  let nets = ref [] and insts = ref [] in
  let dot_conns r =
    let d = Printf.sprintf "dot%d" r in
    nets := net d 16 :: !nets;
    insts :=
      inst
        (Printf.sprintf "du%d" r)
        (Ast.M_module "dot_unit")
        [
          conn "x" "x";
          conn "waddr" "waddr";
          conn "wdata" "wdata";
          conn "wen" "wen";
          conn "raddr" "raddr";
          conn "clr" "clr";
          conn "dot" d;
        ]
      :: !insts;
    d
  in
  let dots = List.init rows dot_conns in
  nets := net "row_bus" bus :: !nets;
  insts :=
    inst "acc" (Ast.M_module "accum")
      (List.mapi (fun r d -> conn (Printf.sprintf "d%d" r) d) dots
      @ [ conn "row_bus" "row_bus" ])
    :: !insts;
  insts :=
    inst "mfu" (Ast.M_module "mfu_slice")
      [
        conn "in_bus" "row_bus";
        conn "scale" "scale";
        conn "bias" "bias";
        conn "use_act" "use_act";
        conn "out_bus" "out_bus";
      ]
    :: !insts;
  modul engine_name
    [
      in_p "x" xw;
      in_p "waddr" 8;
      in_p "wdata" xw;
      in_p "wen" 1;
      in_p "raddr" 8;
      in_p "clr" 1;
      in_p "scale" 16;
      in_p "bias" 16;
      in_p "use_act" 1;
      out_p "out_bus" bus;
    ]
    (List.rev !nets) (List.rev !insts)

(* Format converter: fp16 vector bus -> BFP mantissa bus. *)
let fp16_to_bfp (c : Config.t) =
  let mb = 4 in
  let lanes = c.Config.lanes in
  let in_w = lanes * 16 and out_w = lanes * mb in
  let nets = ref [] and insts = ref [] in
  let pieces =
    List.init lanes (fun l ->
        let s = Printf.sprintf "m%d" l in
        nets := net s mb :: !nets;
        insts :=
          prim (Printf.sprintf "sl%d" l)
            (Ast.P_slice { width = in_w; lo = l * 16; out_width = mb })
            [ conn "a" "in_bus"; conn "o" s ]
          :: !insts;
        s)
  in
  let rec chain acc_net acc_w idx = function
    | [] -> (acc_net, acc_w)
    | q :: rest ->
      let o = Printf.sprintf "c%d" idx in
      nets := net o (acc_w + mb) :: !nets;
      insts :=
        prim
          (Printf.sprintf "cat%d" idx)
          (Ast.P_concat { wa = acc_w; wb = mb })
          [ conn "a" acc_net; conn "b" q; conn "o" o ]
        :: !insts;
      chain o (acc_w + mb) (idx + 1) rest
  in
  let out_net, _ =
    match pieces with [] -> assert false | f :: r -> chain f mb 0 r
  in
  nets := net "reg_in" out_w :: !nets;
  insts :=
    prim "alias"
      (Ast.P_slice { width = out_w; lo = 0; out_width = out_w })
      [ conn "a" out_net; conn "o" "reg_in" ]
    :: !insts;
  insts := prim "oreg" (Ast.P_reg out_w) [ conn "d" "reg_in"; conn "q" "out_bus" ] :: !insts;
  modul "fp16_to_bfp"
    [ in_p "in_bus" in_w; out_p "out_bus" out_w ]
    (List.rev !nets) (List.rev !insts)

(* Vector register file. *)
let addr_bits_for words =
  max 1 (int_of_float (ceil (log (float_of_int words) /. log 2.0)))

let vector_rf (c : Config.t) =
  let w = c.Config.lanes * 16 in
  let addr_bits = addr_bits_for c.Config.vrf_words in
  modul "vector_rf"
    [
      in_p "waddr" addr_bits;
      in_p "wdata" w;
      in_p "wen" 1;
      in_p "raddr" addr_bits;
      out_p "rdata" w;
    ]
    []
    [
      prim "mem"
        (Ast.P_ram { words = c.Config.vrf_words; width = w })
        [
          conn "waddr" "waddr";
          conn "wdata" "wdata";
          conn "wen" "wen";
          conn "raddr" "raddr";
          conn "rdata" "rdata";
        ];
    ]

(* Result collection from all engines back to one VRF write bus. *)
let writeback (c : Config.t) =
  let rows = c.Config.rows_per_tile in
  let tiles = c.Config.tiles in
  let bus = rows * 16 in
  let nets = ref [] and insts = ref [] in
  let rec chain acc_net acc_w idx = function
    | [] -> (acc_net, acc_w)
    | q :: rest ->
      let o = Printf.sprintf "c%d" idx in
      nets := net o (acc_w + bus) :: !nets;
      insts :=
        prim
          (Printf.sprintf "cat%d" idx)
          (Ast.P_concat { wa = acc_w; wb = bus })
          [ conn "a" acc_net; conn "b" q; conn "o" o ]
        :: !insts;
      chain o (acc_w + bus) (idx + 1) rest
  in
  let ins = List.init tiles (fun t -> Printf.sprintf "in%d" t) in
  let out_net, out_w =
    match ins with [] -> assert false | f :: r -> chain f bus 0 r
  in
  nets := net "reg_in" out_w :: !nets;
  insts :=
    prim "alias"
      (Ast.P_slice { width = out_w; lo = 0; out_width = out_w })
      [ conn "a" out_net; conn "o" "reg_in" ]
    :: !insts;
  insts :=
    prim "oreg" (Ast.P_reg out_w) [ conn "d" "reg_in"; conn "q" "out_bus" ] :: !insts;
  modul "writeback"
    (List.map (fun n -> in_p n bus) ins @ [ out_p "out_bus" (tiles * bus) ])
    (List.rev !nets) (List.rev !insts)

(* Control path: instruction buffer, fetch counter, decoder. *)
let control_path (c : Config.t) =
  let iw = 64 in
  let pc_bits = addr_bits_for c.Config.instr_buffer_words in
  let nets = ref [] and insts = ref [] in
  let add_net n w = nets := net n w :: !nets in
  let add_inst i = insts := i :: !insts in
  add_net "pc_q" pc_bits;
  add_net "pc_next" pc_bits;
  add_net "one" pc_bits;
  add_net "instr" iw;
  add_inst (prim "onec" (Ast.P_const { width = pc_bits; value = 1 }) [ conn "o" "one" ]);
  add_inst
    (prim "pcadd" (Ast.P_add pc_bits)
       [ conn "a" "pc_q"; conn "b" "one"; conn "o" "pc_next" ]);
  add_inst (prim "pcreg" (Ast.P_reg pc_bits) [ conn "d" "pc_next"; conn "q" "pc_q" ]);
  add_inst
    (prim "ibuf"
       (Ast.P_rom { words = c.Config.instr_buffer_words; width = iw })
       [ conn "raddr" "pc_q"; conn "rdata" "instr" ]);
  (* decode fields *)
  let field name lo width =
    add_net name width;
    add_inst
      (prim ("f_" ^ name)
         (Ast.P_slice { width = iw; lo; out_width = width })
         [ conn "a" "instr"; conn "o" name ])
  in
  field "opc" 58 6;
  field "f_waddr" 0 8;
  field "f_raddr" 8 8;
  field "f_scale" 16 16;
  field "f_bias" 32 16;
  (* opcode comparators driving the datapath strobes *)
  let strobe name code =
    let cn = name ^ "_code" in
    add_net cn 6;
    add_net name 1;
    add_inst (prim (name ^ "_c") (Ast.P_const { width = 6; value = code }) [ conn "o" cn ]);
    add_inst
      (prim (name ^ "_eq") (Ast.P_cmp_eq 6)
         [ conn "a" "opc"; conn "b" cn; conn "o" name ])
  in
  strobe "s_wen" 1;
  strobe "s_clr" 2;
  strobe "s_act" 3;
  (* registered control outputs *)
  let reg_out out src w =
    let d = out ^ "_d" in
    add_net d w;
    add_inst
      (prim (out ^ "_sl")
         (Ast.P_slice { width = w; lo = 0; out_width = w })
         [ conn "a" src; conn "o" d ]);
    add_inst (prim (out ^ "_r") (Ast.P_reg w) [ conn "d" d; conn "q" out ])
  in
  reg_out "wen" "s_wen" 1;
  reg_out "clr" "s_clr" 1;
  reg_out "use_act" "s_act" 1;
  reg_out "waddr" "f_waddr" 8;
  reg_out "raddr" "f_raddr" 8;
  reg_out "scale" "f_scale" 16;
  reg_out "bias" "f_bias" 16;
  modul ~attrs:[ "control_path" ] control_name
    [
      out_p "wen" 1;
      out_p "clr" 1;
      out_p "use_act" 1;
      out_p "waddr" 8;
      out_p "raddr" 8;
      out_p "scale" 16;
      out_p "bias" 16;
    ]
    (List.rev !nets) (List.rev !insts)

let top (c : Config.t) =
  let mb = 4 in
  let lanes = c.Config.lanes in
  let rows = c.Config.rows_per_tile in
  let tiles = c.Config.tiles in
  let xw = lanes * mb in
  let vrf_w = lanes * 16 in
  let ebus = rows * 16 in
  let nets = ref [] and insts = ref [] in
  let add_net n w = nets := net n w :: !nets in
  let add_inst i = insts := i :: !insts in
  List.iter
    (fun (n, w) -> add_net n w)
    [
      ("wen", 1);
      ("clr", 1);
      ("use_act", 1);
      ("c_waddr", 8);
      ("c_raddr", 8);
      ("scale", 16);
      ("bias", 16);
      ("vrf_rdata", vrf_w);
      ("xbus", xw);
      ("wb_bus", tiles * ebus);
      ("wb_slice", vrf_w);
    ];
  add_inst
    (inst "ctl" (Ast.M_module control_name)
       [
         conn "wen" "wen";
         conn "clr" "clr";
         conn "use_act" "use_act";
         conn "waddr" "c_waddr";
         conn "raddr" "c_raddr";
         conn "scale" "scale";
         conn "bias" "bias";
       ]);
  add_inst
    (inst "vrf" (Ast.M_module "vector_rf")
       [
         conn "waddr" "vrf_waddr";
         conn "wdata" "wb_slice";
         conn "wen" "host_wen";
         conn "raddr" "vrf_raddr";
         conn "rdata" "vrf_rdata";
       ]);
  add_inst
    (inst "conv" (Ast.M_module "fp16_to_bfp")
       [ conn "in_bus" "vrf_rdata"; conn "out_bus" "xbus" ]);
  for t = 0 to tiles - 1 do
    let o = Printf.sprintf "ebus%d" t in
    add_net o ebus;
    add_inst
      (inst
         (Printf.sprintf "eng%d" t)
         (Ast.M_module engine_name)
         [
           conn "x" "xbus";
           conn "waddr" "c_waddr";
           conn "wdata" "host_wdata";
           conn "wen" "wen";
           conn "raddr" "c_raddr";
           conn "clr" "clr";
           conn "scale" "scale";
           conn "bias" "bias";
           conn "use_act" "use_act";
           conn "out_bus" o;
         ])
  done;
  add_inst
    (inst "wb" (Ast.M_module "writeback")
       (List.init tiles (fun t -> conn (Printf.sprintf "in%d" t) (Printf.sprintf "ebus%d" t))
       @ [ conn "out_bus" "wb_bus" ]));
  (* Slice (or zero-pad, for small instances) the writeback bus down
     to one VRF word. *)
  if tiles * ebus >= vrf_w then
    add_inst
      (prim "wbsl"
         (Ast.P_slice { width = tiles * ebus; lo = 0; out_width = vrf_w })
         [ conn "a" "wb_bus"; conn "o" "wb_slice" ])
  else begin
    let pad = vrf_w - (tiles * ebus) in
    add_net "wb_pad" pad;
    add_inst (prim "wbpad" (Ast.P_const { width = pad; value = 0 }) [ conn "o" "wb_pad" ]);
    add_inst
      (prim "wbcat"
         (Ast.P_concat { wa = pad; wb = tiles * ebus })
         [ conn "a" "wb_pad"; conn "b" "wb_bus"; conn "o" "wb_slice" ])
  end;
  modul top_name
    [
      in_p "vrf_waddr" (addr_bits_for c.Config.vrf_words);
      in_p "vrf_raddr" (addr_bits_for c.Config.vrf_words);
      in_p "host_wen" 1;
      in_p "host_wdata" xw;
      out_p "result" vrf_w;
    ]
    (List.rev !nets)
    (List.rev !insts
    @ [
        prim "res"
          (Ast.P_slice { width = vrf_w; lo = 0; out_width = vrf_w })
          [ conn "a" "vrf_rdata"; conn "o" "result" ];
      ])

let generate (c : Config.t) =
  Design.of_modules
    [
      dot_unit c;
      accum c;
      mfu_slice c;
      engine c;
      fp16_to_bfp c;
      vector_rf c;
      writeback c;
      control_path c;
      top c;
    ]
