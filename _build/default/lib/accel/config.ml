type mem_kind = Bram_only | Bram_uram

type t = {
  tiles : int;
  lanes : int;
  rows_per_tile : int;
  vrf_words : int;
  instr_buffer_words : int;
  mem_kind : mem_kind;
  mvm_mantissa_bits : int;
}

let make ?(lanes = 128) ?(rows_per_tile = 16) ?(vrf_words = 2048)
    ?(instr_buffer_words = 16384) ?(mem_kind = Bram_uram) ?(mvm_mantissa_bits = 6)
    ~tiles () =
  if tiles <= 0 then invalid_arg "Config.make: tiles must be positive";
  if lanes <= 0 || rows_per_tile <= 0 then
    invalid_arg "Config.make: lanes and rows_per_tile must be positive";
  { tiles; lanes; rows_per_tile; vrf_words; instr_buffer_words; mem_kind; mvm_mantissa_bits }

let macs_per_cycle t = t.tiles * t.rows_per_tile * t.lanes

(* One tile's weight memory holds ~3.5 Mb (Table 2 back-derivation).
   Stored weights average ~3 bits each: narrow BFP mantissas with the
   shared exponents amortized over a block (BrainWave's ms-fp
   encodings).  This reproduces Table 4's fit line exactly: LSTM
   h=1536 (18.9M weights) fits the 21-tile XCVU37P instance but not
   the 13-tile XCKU115 one; GRU h=1536 (14.2M) fits both; GRU h=2560
   (39.3M) fits neither and needs two FPGAs, as in Fig. 11. *)
let tile_weight_bits = 3_600 * 1024
let stored_bits_per_weight = 3

let weight_capacity_words t = t.tiles * tile_weight_bits / stored_bits_per_weight

let scale_down t ~tiles =
  if tiles <= 0 || tiles > t.tiles then
    invalid_arg "Config.scale_down: tiles out of range";
  { t with tiles }

let name t = Printf.sprintf "npu-t%d" t.tiles

let pp fmt t =
  Format.fprintf fmt "npu{tiles=%d; lanes=%d; rows=%d; mem=%s}" t.tiles t.lanes
    t.rows_per_tile
    (match t.mem_kind with Bram_only -> "bram" | Bram_uram -> "bram+uram")
