(** Structural RTL generator for the BrainWave-like accelerator.

    Emits the module hierarchy of paper Fig. 9 as {!Mlv_rtl} IR:

    {v
      bw_npu
      |- control_path      (attr control_path; instruction buffer,
      |                     decoder, sequencer)
      |- fp16_to_bfp       (format converter)
      |- vector_rf         (vector register file)
      |- engine x tiles    (identical: weight mem + dot units + MFU)
      |  |- dot_unit x rows_per_tile (identical, data-parallel)
      |  |- accum
      |  |- mfu_slice
      |- writeback         (per-engine result collection)
    v}

    The engines are identical modules all feeding [writeback], which
    is what the decomposer's inter-block data-parallelism step
    groups; inside an engine the dot units form a second
    data-parallel level under a pipeline — giving the multi-level
    tree of paper Fig. 2.  The paper's case-study adjustment (moving
    the converter and VRF into the control block, §3) is expressed at
    decompose time via {!control_companions}. *)

open Mlv_rtl

(** [generate config] builds the design; the top module is
    ["bw_npu"]. *)
val generate : Config.t -> Design.t

(** Module names of the small components the case study moves into
    the control-path soft block so the data path root becomes
    purely data-parallel: converter, VRF and writeback. *)
val control_companions : string list

(** [top_name] = ["bw_npu"], [control_name] = ["control_path"]. *)
val top_name : string

val control_name : string
val engine_name : string
