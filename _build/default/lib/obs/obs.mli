(** Structured observability for the virtualization stack.

    One process-wide registry of named monotonic {!Counter}s,
    log-scale latency {!Histogram}s (p50/p90/p99 estimates) and
    nested {!Span}s carrying both wall-clock and simulation time.
    The runtime layers (decompose, partition, mapping, deploy,
    reconfiguration, failover, the discrete-event simulator) record
    into it; the hypervisor's [metrics] / [trace] commands, the
    [mlvsim --metrics-out] flag and the bench harness export it as
    JSON or human-readable text.

    The registry is global and deterministic in structure (names and
    counts); wall-clock durations naturally vary run to run.  All
    operations are cheap enough for simulator hot paths: counters are
    a single int increment behind a cached handle, histogram
    observation is one hash-table bump. *)

(** Minimal JSON tree: exporters build values, [to_string] renders
    them, [is_valid] checks a rendered string parses back (used by
    tests and CI on emitted metric files). *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float  (** non-finite floats render as [null] *)
    | String of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string

  (** [is_valid s] is true when [s] is one complete JSON value. *)
  val is_valid : string -> bool
end

(** Named monotonic counters. *)
module Counter : sig
  type t

  (** [get name] returns the process-wide counter [name], creating it
      at zero on first use.  Handles stay valid across {!reset}. *)
  val get : string -> t

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val name : t -> string
end

(** Log-scale histograms: ten buckets per decade (~12% relative
    resolution), plus an exact streaming count/sum/min/max. *)
module Histogram : sig
  type t

  (** [get name] returns the process-wide histogram [name], creating
      it empty on first use.  Handles stay valid across {!reset}. *)
  val get : string -> t

  (** [observe t v] records a sample.
      @raise Invalid_argument on NaN or infinite samples. *)
  val observe : t -> float -> unit

  val count : t -> int
  val mean : t -> float
  val min : t -> float
  val max : t -> float
  val sum : t -> float

  (** [percentile t p] estimates the [p]-th percentile from the log
      buckets (exact to bucket resolution, clamped to the observed
      min/max); 0 when empty.
      @raise Invalid_argument if [p] is outside [0, 100]. *)
  val percentile : t -> float -> float

  val name : t -> string
end

(** A completed span, oldest first in {!spans}. *)
type span_record = {
  id : int;
  parent : int option;  (** id of the enclosing span, if any *)
  name : string;
  depth : int;  (** 0 for root spans *)
  start_wall_us : float;  (** wall-clock µs since the Unix epoch *)
  wall_us : float;  (** wall-clock duration *)
  start_sim_us : float;  (** registered sim clock at entry (0 if none) *)
  sim_us : float;  (** sim-clock duration (0 if no sim clock) *)
}

(** Nested timing spans.  Entering while another span is open makes
    the new span its child.  Each exit also feeds the histogram
    [span.<name>.wall_us]. *)
module Span : sig
  type t

  val enter : string -> t

  (** [exit t] closes the span (idempotent) and records it. *)
  val exit : t -> unit

  (** [with_ name f] runs [f] inside a span, closing it on any
      exit including exceptions. *)
  val with_ : string -> (unit -> 'a) -> 'a
end

(** [set_sim_clock f] makes [f] the source of simulation time for
    spans.  The discrete-event simulator registers itself on
    creation; the most recently created simulator wins. *)
val set_sim_clock : (unit -> float) -> unit

val clear_sim_clock : unit -> unit

(** Registry inspection (sorted by name). *)
val counters : unit -> (string * int) list

val histograms : unit -> (string * Histogram.t) list

(** [spans ()] lists retained completed spans, oldest first (bounded
    ring; see {!dropped_spans}). *)
val spans : unit -> span_record list

(** [spans_matching sub] filters {!spans} by substring of the name. *)
val spans_matching : string -> span_record list

val dropped_spans : unit -> int

(** [reset ()] zeroes every counter, empties every histogram and
    drops all span records.  Existing handles stay valid. *)
val reset : unit -> unit

(** [to_json ()] renders the whole registry; schema documented in
    DESIGN.md §Observability. *)
val to_json : unit -> Json.t

val json_string : unit -> string

(** [write_json path] writes {!json_string} to [path]. *)
val write_json : string -> unit

(** [render ()] is the human-readable multi-line summary behind the
    hypervisor's [metrics] command. *)
val render : unit -> string

val pp : Format.formatter -> unit -> unit
