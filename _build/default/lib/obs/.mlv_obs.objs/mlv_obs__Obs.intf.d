lib/obs/obs.mli: Format
