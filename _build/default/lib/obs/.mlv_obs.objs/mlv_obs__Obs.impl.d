lib/obs/obs.ml: Array Buffer Char Float Format Fun Hashtbl List Mlv_util Printf Stdlib String Unix
