(** Programs: instruction sequences plus machine parameters. *)

type t = {
  instrs : Instr.t array;
  vregs : int;  (** vector register file size *)
  mregs : int;  (** matrix register (tile memory slot) count *)
}

(** [make ?vregs ?mregs instrs] builds a program (defaults: 32 vector
    and 16 matrix registers). *)
val make : ?vregs:int -> ?mregs:int -> Instr.t list -> t

val length : t -> int
val to_list : t -> Instr.t list

(** [validate p] checks register indices are in bounds, lengths and
    dimensions are positive, and every register is written before it
    is read.  Returns human-readable errors (empty when valid). *)
val validate : t -> string list

(** [dep_predecessors p] gives, for each instruction index, the
    indices of earlier instructions it depends on (direct hazards per
    {!Instr.depends}).  O(n^2); programs are small. *)
val dep_predecessors : t -> int list array

(** [opcode_histogram p] counts instructions by mnemonic. *)
val opcode_histogram : t -> (string * int) list

(** [mvm_count p] counts matrix-vector multiplies, the unit of
    compute the performance model charges for. *)
val mvm_count : t -> int

(** [pp] prints one instruction per line. *)
val pp : Format.formatter -> t -> unit
