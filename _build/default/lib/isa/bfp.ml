type t = { exponent : int; mantissas : int array; mantissa_bits : int }

let encode ~mantissa_bits xs =
  if mantissa_bits < 2 || mantissa_bits > 16 then
    invalid_arg "Bfp.encode: mantissa_bits out of range";
  let max_mag = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0.0 xs in
  if max_mag = 0.0 then
    { exponent = 0; mantissas = Array.map (fun _ -> 0) xs; mantissa_bits }
  else begin
    (* Choose exponent so that max_mag scales into [half_range, range).
       If the largest magnitude would round up past the mantissa range
       (it sits exactly on a power-of-two boundary), widen the
       exponent instead of clamping — this keeps encoding idempotent. *)
    let range = 1 lsl (mantissa_bits - 1) in
    let exponent =
      let e =
        ref (int_of_float (Float.ceil (Float.log2 (max_mag /. float_of_int range))))
      in
      while
        Float.round (max_mag *. (2.0 ** float_of_int (- !e))) > float_of_int (range - 1)
      do
        incr e
      done;
      !e
    in
    let scale = 2.0 ** float_of_int (-exponent) in
    let clamp v = max (-range) (min (range - 1) v) in
    let mantissas =
      Array.map (fun x -> clamp (int_of_float (Float.round (x *. scale)))) xs
    in
    { exponent; mantissas; mantissa_bits }
  end

let decode b =
  let scale = 2.0 ** float_of_int b.exponent in
  Array.map (fun m -> float_of_int m *. scale) b.mantissas

let dot a b =
  if Array.length a.mantissas <> Array.length b.mantissas then
    invalid_arg "Bfp.dot: length mismatch";
  let acc = ref 0 in
  Array.iteri (fun i ma -> acc := !acc + (ma * b.mantissas.(i))) a.mantissas;
  float_of_int !acc *. (2.0 ** float_of_int (a.exponent + b.exponent))

let quantize ~mantissa_bits xs = decode (encode ~mantissa_bits xs)

let max_relative_error ~mantissa_bits =
  (* Rounding to the nearest mantissa step; the largest element uses
     at least half the range. *)
  1.0 /. float_of_int (1 lsl (mantissa_bits - 1))
