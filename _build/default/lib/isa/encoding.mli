(** Binary instruction encoding.

    Instructions pack into the 64-bit words the on-chip instruction
    buffer stores (the [ibuf] ROM of the generated control path is
    64 bits wide).  Field layout, MSB first:

    {v
      all:     [63:58] opcode
      vrd/vwr: [57:53] vreg   [52:21] addr(32)   [20:5] len(16)
      vfill:   [57:53] dst    [52:37] len(16)    [36:21] fp16 value
      mrd:     [57:54] mreg   [53:24] addr(30)   [23:12] rows  [11:0] cols
      mvm:     [57:53] dst    [52:49] mat        [48:44] src
      vadd/vsub/vmul:
               [57:53] dst    [52:48] a          [47:43] b
      act:     [57:53] dst    [52:48] src        [47:46] function
      nop:     -
    v}

    [V_fill] immediates are stored as float16, so
    [decode (encode i)] equals [i] up to fp16 rounding of the
    immediate; every other instruction round-trips exactly within the
    field ranges. *)

(** [encode i] packs one instruction.
    @raise Invalid_argument when a field exceeds its range (e.g. a
    vector register above 31, an address above 2^32). *)
val encode : Instr.t -> int64

(** [decode w] unpacks one word. *)
val decode : int64 -> (Instr.t, string) result

(** [encode_program p] packs all instructions. *)
val encode_program : Program.t -> int64 array

(** [decode_program ?vregs ?mregs ws] unpacks a word array. *)
val decode_program : ?vregs:int -> ?mregs:int -> int64 array -> (Program.t, string) result

(** [to_hex w] / [of_hex s] render one word as 16 hex digits. *)
val to_hex : int64 -> string

val of_hex : string -> (int64, string) result
