let to_string p =
  let buf = Buffer.create 256 in
  List.iter
    (fun instr -> Buffer.add_string buf (Format.asprintf "%a\n" Instr.pp instr))
    (Program.to_list p);
  Buffer.contents buf

exception Asm_error of string

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let split_operands s =
  String.split_on_char ',' s |> List.map String.trim |> List.filter (fun x -> x <> "")

let parse_reg ~line_no prefix s =
  let n = String.length s in
  if n >= 2 && s.[0] = prefix then
    match int_of_string_opt (String.sub s 1 (n - 1)) with
    | Some r -> r
    | None -> raise (Asm_error (Printf.sprintf "line %d: bad register %s" line_no s))
  else raise (Asm_error (Printf.sprintf "line %d: expected %c-register, got %s" line_no prefix s))

let parse_int ~line_no s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> raise (Asm_error (Printf.sprintf "line %d: bad integer %s" line_no s))

let parse_float ~line_no s =
  match float_of_string_opt s with
  | Some v -> v
  | None -> raise (Asm_error (Printf.sprintf "line %d: bad float %s" line_no s))

let parse_line ~line_no line =
  let line = String.trim (strip_comment line) in
  if line = "" then None
  else begin
    let op, rest =
      match String.index_opt line ' ' with
      | Some i ->
        (String.sub line 0 i, String.sub line i (String.length line - i))
      | None -> (line, "")
    in
    let ops = split_operands rest in
    let vreg = parse_reg ~line_no 'v' in
    let mreg = parse_reg ~line_no 'm' in
    let int_ = parse_int ~line_no in
    let float_ = parse_float ~line_no in
    let arity n =
      if List.length ops <> n then
        raise
          (Asm_error
             (Printf.sprintf "line %d: %s expects %d operands, got %d" line_no op n
                (List.length ops)))
    in
    let instr =
      match op with
      | "nop" ->
        arity 0;
        Instr.Nop
      | "endloop" ->
        arity 0;
        Instr.End_loop
      | "loop" ->
        arity 1;
        (match ops with
        | [ n ] -> Instr.Loop { count = int_ n }
        | _ -> assert false)
      | "vrdi" ->
        arity 4;
        (match ops with
        | [ d; b; st; l ] ->
          Instr.V_rd_i { dst = vreg d; base = int_ b; stride = int_ st; len = int_ l }
        | _ -> assert false)
      | "vwri" ->
        arity 4;
        (match ops with
        | [ sr; b; st; l ] ->
          Instr.V_wr_i { src = vreg sr; base = int_ b; stride = int_ st; len = int_ l }
        | _ -> assert false)
      | "vrd" ->
        arity 3;
        (match ops with
        | [ d; a; l ] -> Instr.V_rd { dst = vreg d; addr = int_ a; len = int_ l }
        | _ -> assert false)
      | "vwr" ->
        arity 3;
        (match ops with
        | [ s; a; l ] -> Instr.V_wr { src = vreg s; addr = int_ a; len = int_ l }
        | _ -> assert false)
      | "vfill" ->
        arity 3;
        (match ops with
        | [ d; l; v ] -> Instr.V_fill { dst = vreg d; len = int_ l; value = float_ v }
        | _ -> assert false)
      | "mrd" ->
        arity 4;
        (match ops with
        | [ d; a; r; c ] ->
          Instr.M_rd { dst = mreg d; addr = int_ a; rows = int_ r; cols = int_ c }
        | _ -> assert false)
      | "mvm" ->
        arity 3;
        (match ops with
        | [ d; m; s ] -> Instr.Mvm { dst = vreg d; mat = mreg m; src = vreg s }
        | _ -> assert false)
      | "vadd" | "vsub" | "vmul" ->
        arity 3;
        (match ops with
        | [ d; a; b ] ->
          let d = vreg d and a = vreg a and b = vreg b in
          (match op with
          | "vadd" -> Instr.Vv_add { dst = d; a; b }
          | "vsub" -> Instr.Vv_sub { dst = d; a; b }
          | _ -> Instr.Vv_mul { dst = d; a; b })
        | _ -> assert false)
      | "act" ->
        arity 3;
        (match ops with
        | [ d; s; f ] -> (
          match Instr.act_of_name f with
          | Some f -> Instr.Act { dst = vreg d; src = vreg s; f }
          | None ->
            raise (Asm_error (Printf.sprintf "line %d: unknown activation %s" line_no f)))
        | _ -> assert false)
      | _ -> raise (Asm_error (Printf.sprintf "line %d: unknown opcode %s" line_no op))
    in
    Some instr
  end

let of_string ?vregs ?mregs src =
  match
    String.split_on_char '\n' src
    |> List.mapi (fun i line -> parse_line ~line_no:(i + 1) line)
    |> List.filter_map Fun.id
  with
  | instrs -> Ok (Program.make ?vregs ?mregs instrs)
  | exception Asm_error msg -> Error msg
