(** Block floating point (BFP).

    The matrix-vector units use BFP to pack many narrow multipliers
    per DSP/LUT (paper §3, after BrainWave): a block of values shares
    one exponent, and each value keeps only a narrow signed mantissa.
    Encoding is lossy; the [dot] operation models the hardware
    datapath — exact integer multiply-accumulate over mantissas, one
    final scale by the shared exponents. *)

type t = {
  exponent : int;  (** power-of-two scale *)
  mantissas : int array;  (** signed, within the configured bit budget *)
  mantissa_bits : int;
}

(** [encode ~mantissa_bits xs] quantizes a block.  The shared
    exponent is chosen so the largest magnitude fills the mantissa
    range.  [mantissa_bits] counts the sign bit (BrainWave uses 5-6). *)
val encode : mantissa_bits:int -> float array -> t

(** [decode b] recovers the (lossy) float values. *)
val decode : t -> float array

(** [dot a b] multiplies-and-accumulates two equal-length blocks the
    way the hardware does: integer MACs, single final scaling.
    @raise Invalid_argument on length mismatch. *)
val dot : t -> t -> float

(** [quantize ~mantissa_bits xs] is [decode (encode xs)] — what a
    value looks like after a trip through the BFP datapath. *)
val quantize : mantissa_bits:int -> float array -> float array

(** [max_relative_error ~mantissa_bits] bounds the elementwise
    relative error for the largest-magnitude element of a block. *)
val max_relative_error : mantissa_bits:int -> float
