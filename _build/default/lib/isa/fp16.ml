type t = int

let zero = 0
let one = 0x3C00

(* Conversion via the float32 bit pattern, standard algorithm with
   round-to-nearest-even. *)
let of_float f =
  let bits = Int32.to_int (Int32.bits_of_float f) land 0xFFFFFFFF in
  let sign = (bits lsr 16) land 0x8000 in
  let exp32 = (bits lsr 23) land 0xFF in
  let mant32 = bits land 0x7FFFFF in
  if exp32 = 0xFF then
    (* Inf / NaN *)
    if mant32 = 0 then sign lor 0x7C00 else sign lor 0x7E00
  else begin
    (* Re-bias from 127 to 15. *)
    let exp16 = exp32 - 127 + 15 in
    if exp16 >= 0x1F then sign lor 0x7C00 (* overflow to inf *)
    else if exp16 <= 0 then begin
      (* Subnormal half (or underflow to zero). *)
      if exp16 < -10 then sign
      else begin
        let mant = mant32 lor 0x800000 in
        let shift = 14 - exp16 in
        let half = mant lsr shift in
        let rem = mant land ((1 lsl shift) - 1) in
        let midpoint = 1 lsl (shift - 1) in
        let rounded =
          if rem > midpoint || (rem = midpoint && half land 1 = 1) then half + 1
          else half
        in
        sign lor rounded
      end
    end
    else begin
      let half = (exp16 lsl 10) lor (mant32 lsr 13) in
      let rem = mant32 land 0x1FFF in
      let rounded =
        if rem > 0x1000 || (rem = 0x1000 && half land 1 = 1) then half + 1 else half
      in
      (* Mantissa carry may overflow into the exponent; that is the
         correct behaviour (1.111..*2^e rounds to 1.0*2^(e+1)). *)
      sign lor rounded
    end
  end

let to_float h =
  let sign = if h land 0x8000 <> 0 then -1.0 else 1.0 in
  let exp = (h lsr 10) land 0x1F in
  let mant = h land 0x3FF in
  if exp = 0 then sign *. (float_of_int mant *. (2.0 ** -24.0))
  else if exp = 0x1F then if mant = 0 then sign *. infinity else nan
  else sign *. ((1.0 +. (float_of_int mant /. 1024.0)) *. (2.0 ** float_of_int (exp - 15)))

let of_bits b = b land 0xFFFF
let to_bits h = h

let add a b = of_float (to_float a +. to_float b)
let sub a b = of_float (to_float a -. to_float b)
let mul a b = of_float (to_float a *. to_float b)
let round_float f = to_float (of_float f)
let is_finite h = (h lsr 10) land 0x1F <> 0x1F
