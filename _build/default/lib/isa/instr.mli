(** The application-specific instruction set.

    Modeled after the BrainWave NPU ISA (paper §3): a vector
    register file, matrix registers backed by on-chip tile memory,
    matrix-vector multiply as the primary operation, pointwise
    multi-function-unit operations in float16, and DRAM read/write
    instructions.  The DRAM instructions double as the inter-FPGA
    communication primitives for scale-out: writes/reads to a
    pre-defined out-of-range address are intercepted by the
    synchronization template module (paper §2.3). *)

type vreg = int
type mreg = int

(** Activation functions implemented by the multi-function units. *)
type act = Sigmoid | Tanh | Relu | Identity

type t =
  | V_rd of { dst : vreg; addr : int; len : int }
      (** load a vector of [len] elements from DRAM word address *)
  | V_wr of { src : vreg; addr : int; len : int }  (** store a vector *)
  | V_fill of { dst : vreg; len : int; value : float }
      (** broadcast an immediate into a vector register *)
  | M_rd of { dst : mreg; addr : int; rows : int; cols : int }
      (** load a weight matrix into tile memory *)
  | Mvm of { dst : vreg; mat : mreg; src : vreg }
      (** dst = mat * src (BFP datapath) *)
  | Vv_add of { dst : vreg; a : vreg; b : vreg }
  | Vv_sub of { dst : vreg; a : vreg; b : vreg }
  | Vv_mul of { dst : vreg; a : vreg; b : vreg }  (** pointwise *)
  | Act of { dst : vreg; src : vreg; f : act }
  | Nop
  | Loop of { count : int }
      (** hardware loop: repeat the instructions up to the matching
          [End_loop] [count] times; the loop iteration index drives
          indexed addressing *)
  | End_loop
  | V_rd_i of { dst : vreg; base : int; stride : int; len : int }
      (** indexed load: address = base + iteration * stride *)
  | V_wr_i of { src : vreg; base : int; stride : int; len : int }
      (** indexed store *)

(** Effect summary used by dependency analysis. *)
type effects = {
  vreads : vreg list;
  vwrites : vreg list;
  mreads : mreg list;
  mwrites : mreg list;
  mem_read : (int * int) option;  (** (addr, len) in words *)
  mem_write : (int * int) option;
  mem_read_wild : bool;  (** reads memory at a loop-dependent address *)
  mem_write_wild : bool;
  barrier : bool;  (** loop boundaries order against everything *)
}

val effects : t -> effects

(** [depends ~earlier ~later] is true when [later] must not be moved
    before [earlier]: any RAW/WAR/WAW hazard through vector or matrix
    registers, or through overlapping DRAM ranges.  DRAM accesses to
    disjoint ranges commute; two reads always commute. *)
val depends : earlier:t -> later:t -> bool

(** [opcode i] is the mnemonic, e.g. ["mvm"]. *)
val opcode : t -> string

val act_name : act -> string
val act_of_name : string -> act option

(** [pp] formats one instruction in assembler syntax. *)
val pp : Format.formatter -> t -> unit
