type t = { instrs : Instr.t array; vregs : int; mregs : int }

let make ?(vregs = 32) ?(mregs = 16) instrs =
  { instrs = Array.of_list instrs; vregs; mregs }

let length p = Array.length p.instrs
let to_list p = Array.to_list p.instrs

let validate p =
  let errors = ref [] in
  let err i fmt =
    Printf.ksprintf (fun s -> errors := Printf.sprintf "instr %d: %s" i s :: !errors) fmt
  in
  let vwritten = Array.make p.vregs false in
  let mwritten = Array.make p.mregs false in
  let loop_depth = ref 0 in
  Array.iteri
    (fun i instr ->
      let e = Instr.effects instr in
      List.iter
        (fun r ->
          if r < 0 || r >= p.vregs then err i "vector register v%d out of bounds" r
          else if not vwritten.(r) then err i "read of uninitialized v%d" r)
        e.vreads;
      List.iter
        (fun r ->
          if r < 0 || r >= p.mregs then err i "matrix register m%d out of bounds" r
          else if not mwritten.(r) then err i "read of uninitialized m%d" r)
        e.mreads;
      List.iter
        (fun r ->
          if r < 0 || r >= p.vregs then err i "vector register v%d out of bounds" r
          else vwritten.(r) <- true)
        e.vwrites;
      List.iter
        (fun r ->
          if r < 0 || r >= p.mregs then err i "matrix register m%d out of bounds" r
          else mwritten.(r) <- true)
        e.mwrites;
      (match instr with
      | Instr.V_rd { len; _ } | Instr.V_wr { len; _ } | Instr.V_fill { len; _ }
      | Instr.V_rd_i { len; _ } | Instr.V_wr_i { len; _ } ->
        if len <= 0 then err i "non-positive vector length %d" len
      | Instr.M_rd { rows; cols; _ } ->
        if rows <= 0 || cols <= 0 then err i "non-positive matrix shape %dx%d" rows cols
      | Instr.Loop { count } -> if count <= 0 then err i "non-positive loop count %d" count
      | Instr.Mvm _ | Instr.Vv_add _ | Instr.Vv_sub _ | Instr.Vv_mul _ | Instr.Act _
      | Instr.Nop | Instr.End_loop -> ());
      (match instr with
      | Instr.V_rd { addr; _ } | Instr.V_wr { addr; _ } | Instr.M_rd { addr; _ } ->
        if addr < 0 then err i "negative address %d" addr
      | Instr.V_rd_i { base; stride; _ } | Instr.V_wr_i { base; stride; _ } ->
        if base < 0 then err i "negative base address %d" base;
        if stride < 0 then err i "negative stride %d" stride
      | Instr.V_fill _ | Instr.Mvm _ | Instr.Vv_add _ | Instr.Vv_sub _ | Instr.Vv_mul _
      | Instr.Act _ | Instr.Nop | Instr.Loop _ | Instr.End_loop -> ());
      match instr with
      | Instr.Loop _ -> incr loop_depth
      | Instr.End_loop ->
        decr loop_depth;
        if !loop_depth < 0 then begin
          err i "endloop without matching loop";
          loop_depth := 0
        end
      | _ -> ())
    p.instrs;
  if !loop_depth > 0 then errors := "unterminated loop" :: !errors;
  List.rev !errors

let dep_predecessors p =
  let n = Array.length p.instrs in
  let preds = Array.make n [] in
  for i = 0 to n - 1 do
    for j = 0 to i - 1 do
      if Instr.depends ~earlier:p.instrs.(j) ~later:p.instrs.(i) then
        preds.(i) <- j :: preds.(i)
    done;
    preds.(i) <- List.rev preds.(i)
  done;
  preds

let opcode_histogram p =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun instr ->
      let op = Instr.opcode instr in
      let cur = try Hashtbl.find tbl op with Not_found -> 0 in
      Hashtbl.replace tbl op (cur + 1))
    p.instrs;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let mvm_count p =
  Array.fold_left
    (fun acc instr -> match instr with Instr.Mvm _ -> acc + 1 | _ -> acc)
    0 p.instrs

let pp fmt p =
  Array.iter (fun instr -> Format.fprintf fmt "%a@." Instr.pp instr) p.instrs
