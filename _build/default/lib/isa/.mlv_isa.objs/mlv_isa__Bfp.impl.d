lib/isa/bfp.ml: Array Float
