lib/isa/fp16.ml: Int32
