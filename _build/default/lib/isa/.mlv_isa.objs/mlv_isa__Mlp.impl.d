lib/isa/mlp.ml: Array Codegen Float Instr List Mlv_util Program
