lib/isa/codegen.ml: Array Instr List Mlv_util Program
