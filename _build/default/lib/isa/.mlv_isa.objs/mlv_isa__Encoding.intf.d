lib/isa/encoding.mli: Instr Program
