lib/isa/fp16.mli:
