lib/isa/opt.mli: Program
