lib/isa/exec.ml: Array Bfp Float Fp16 Instr Printf Program
