lib/isa/bfp.mli:
