lib/isa/encoding.ml: Array Fp16 Instr Int64 List Printf Program String
