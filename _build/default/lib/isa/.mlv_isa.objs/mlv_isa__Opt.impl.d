lib/isa/opt.ml: Array Instr List Program
