lib/isa/asm.ml: Buffer Format Fun Instr List Printf Program String
