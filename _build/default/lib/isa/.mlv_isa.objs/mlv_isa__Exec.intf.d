lib/isa/exec.mli: Program
