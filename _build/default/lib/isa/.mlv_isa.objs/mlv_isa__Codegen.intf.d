lib/isa/codegen.mli: Instr Mlv_util Program
