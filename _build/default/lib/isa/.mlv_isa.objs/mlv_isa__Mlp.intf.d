lib/isa/mlp.mli: Codegen Instr Mlv_util Program
