let has_control_flow p =
  Array.exists
    (fun i ->
      match i with
      | Instr.Loop _ | Instr.End_loop | Instr.V_rd_i _ | Instr.V_wr_i _ -> true
      | _ -> false)
    p.Program.instrs

let remove_nops p =
  Program.make ~vregs:p.Program.vregs ~mregs:p.Program.mregs
    (List.filter (fun i -> i <> Instr.Nop) (Program.to_list p))

(* Backward liveness over vector and matrix registers.  Registers are
   live at program exit (the host may read final values), so an
   instruction is dead only when everything it writes is overwritten
   before any read and it has no memory side effect. *)
let dead_code p =
  if has_control_flow p then p
  else begin
  let instrs = p.Program.instrs in
  let n = Array.length instrs in
  let vlive = Array.make p.Program.vregs true in
  let mlive = Array.make p.Program.mregs true in
  let keep = Array.make n true in
  for i = n - 1 downto 0 do
    let e = Instr.effects instrs.(i) in
    let side_effect = e.Instr.mem_write <> None in
    let writes_live =
      List.exists (fun r -> vlive.(r)) e.Instr.vwrites
      || List.exists (fun r -> mlive.(r)) e.Instr.mwrites
    in
    let pure_write = e.Instr.vwrites <> [] || e.Instr.mwrites <> [] in
    if side_effect || writes_live || not pure_write then begin
      List.iter (fun r -> vlive.(r) <- false) e.Instr.vwrites;
      List.iter (fun r -> mlive.(r) <- false) e.Instr.mwrites;
      List.iter (fun r -> vlive.(r) <- true) e.Instr.vreads;
      List.iter (fun r -> mlive.(r) <- true) e.Instr.mreads
    end
    else keep.(i) <- false
  done;
  let kept = ref [] in
  for i = n - 1 downto 0 do
    if keep.(i) then kept := instrs.(i) :: !kept
  done;
  Program.make ~vregs:p.Program.vregs ~mregs:p.Program.mregs !kept
  end

let rec optimize p =
  let q = dead_code (remove_nops p) in
  if Program.length q = Program.length p then q else optimize q

let eliminated ~before ~after = Program.length before - Program.length after
