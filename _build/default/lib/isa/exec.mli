(** Functional executor for AS ISA programs.

    Executes one in-order instruction stream against a DRAM image and
    a vector/matrix register file.  The numeric datapath mirrors the
    accelerator: matrix-vector multiplies run through the block
    floating point pipeline ({!Bfp}), pointwise operations round to
    float16 ({!Fp16}).  Pass [~exact:true] to disable both and obtain
    a float64 golden reference.

    For scale-out, DRAM accesses at or beyond [sync_base] are routed
    to the [port] callbacks instead of memory — exactly the behaviour
    of the synchronization template module of paper §2.3: a write to
    the pre-defined out-of-range address becomes a send on the
    inter-FPGA network, and a read from it blocks ([`Stalled]) until
    the partner's data arrives. *)

(** Inter-accelerator port.  [recv] returns [None] while no data is
    available for that address. *)
type port = {
  send : addr:int -> float array -> unit;
  recv : addr:int -> len:int -> float array option;
}

type status = Running | Stalled | Done

type t

(** [create ?exact ?mantissa_bits ?sync_base ?port ~dram program]
    builds an executor.  [dram] is shared (mutated in place by
    [vwr]).  Default [mantissa_bits] is 6 (BrainWave-like),
    [sync_base] is [max_int] (no interception), [exact] is false. *)
val create :
  ?exact:bool ->
  ?mantissa_bits:int ->
  ?sync_base:int ->
  ?port:port ->
  dram:float array ->
  Program.t ->
  t

(** [step t] executes the instruction at the program counter.
    [`Stalled] leaves the counter unchanged (a blocked sync read). *)
val step : t -> status

(** [run t ~max_steps] steps until [Done], a stall, or the budget is
    exhausted.
    @raise Failure if the budget is exhausted while still [Running]. *)
val run : t -> max_steps:int -> status

(** [pc t] is the current instruction index. *)
val pc : t -> int

(** [executed t] counts instructions retired so far. *)
val executed : t -> int

(** [vreg t r] reads a vector register.
    @raise Invalid_argument when the register was never written. *)
val vreg : t -> int -> float array

(** [dram t] is the underlying (live) DRAM image. *)
val dram : t -> float array
