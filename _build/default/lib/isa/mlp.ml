type spec = { layer_dims : int list; activation : Instr.act }

let make_spec ?(activation = Instr.Relu) dims =
  if List.length dims < 2 then invalid_arg "Mlp.make_spec: need at least two dims";
  if List.exists (fun d -> d <= 0) dims then
    invalid_arg "Mlp.make_spec: dimensions must be positive";
  { layer_dims = dims; activation }

type layout = {
  spec : spec;
  batch : int;
  weights : Codegen.weight_spec list;
  x_base : int;
  y_base : int;
  input_dim : int;
  output_dim : int;
  dram_words : int;
}

let layer_shapes spec =
  let rec shapes = function
    | din :: (dout :: _ as rest) -> (dout, din) :: shapes rest
    | _ -> []
  in
  shapes spec.layer_dims

let weight_words spec =
  List.fold_left (fun acc (r, c) -> acc + (r * c)) 0 (layer_shapes spec)

let make_layout spec ~batch =
  if batch <= 0 then invalid_arg "Mlp: batch must be positive";
  let shapes = layer_shapes spec in
  let weights = ref [] in
  let addr = ref 0 in
  List.iteri
    (fun i (rows, cols) ->
      weights := { Codegen.mreg = i; addr = !addr; rows; cols } :: !weights;
      addr := !addr + (rows * cols))
    shapes;
  let input_dim = List.hd spec.layer_dims in
  let output_dim = List.nth spec.layer_dims (List.length spec.layer_dims - 1) in
  let x_base = !addr in
  let y_base = x_base + (batch * input_dim) in
  {
    spec;
    batch;
    weights = List.rev !weights;
    x_base;
    y_base;
    input_dim;
    output_dim;
    dram_words = y_base + (batch * output_dim);
  }

(* Registers: v0 = current activation, v1 = next. *)
let sample_instrs lay b =
  let n_layers = List.length lay.weights in
  let load = Instr.V_rd { dst = 0; addr = lay.x_base + (b * lay.input_dim); len = lay.input_dim } in
  let per_layer i =
    let last = i = n_layers - 1 in
    [ Instr.Mvm { dst = 1; mat = i; src = 0 } ]
    @ [
        Instr.Act
          { dst = 0; src = 1; f = (if last then Instr.Identity else lay.spec.activation) };
      ]
  in
  (load :: List.concat (List.init n_layers per_layer))
  @ [ Instr.V_wr { src = 0; addr = lay.y_base + (b * lay.output_dim); len = lay.output_dim } ]

let generate spec ~batch =
  let lay = make_layout spec ~batch in
  let loads =
    List.map
      (fun (w : Codegen.weight_spec) ->
        Instr.M_rd
          { dst = w.Codegen.mreg; addr = w.Codegen.addr; rows = w.Codegen.rows; cols = w.Codegen.cols })
      lay.weights
  in
  let body = List.concat (List.init batch (sample_instrs lay)) in
  (Program.make ~vregs:8 ~mregs:(max 1 (List.length lay.weights)) (loads @ body), lay)

let init_dram ~rng lay =
  let dram = Array.make lay.dram_words 0.0 in
  let fill base count =
    for i = base to base + count - 1 do
      dram.(i) <- Mlv_util.Rng.float rng 1.0 -. 0.5
    done
  in
  List.iter (fun (w : Codegen.weight_spec) -> fill w.Codegen.addr (w.Codegen.rows * w.Codegen.cols)) lay.weights;
  fill lay.x_base (lay.batch * lay.input_dim);
  dram

let apply_act f x =
  match f with
  | Instr.Sigmoid -> 1.0 /. (1.0 +. exp (-.x))
  | Instr.Tanh -> tanh x
  | Instr.Relu -> Float.max 0.0 x
  | Instr.Identity -> x

let golden lay dram =
  let matrices =
    List.map
      (fun (w : Codegen.weight_spec) ->
        Array.init w.Codegen.rows (fun r ->
            Array.sub dram (w.Codegen.addr + (r * w.Codegen.cols)) w.Codegen.cols))
      lay.weights
  in
  let n_layers = List.length matrices in
  Array.init lay.batch (fun b ->
      let x = ref (Array.sub dram (lay.x_base + (b * lay.input_dim)) lay.input_dim) in
      List.iteri
        (fun i m ->
          let y =
            Array.map
              (fun row ->
                let acc = ref 0.0 in
                Array.iteri (fun j w -> acc := !acc +. (w *. !x.(j))) row;
                !acc)
              m
          in
          let f = if i = n_layers - 1 then Instr.Identity else lay.spec.activation in
          x := Array.map (apply_act f) y)
        matrices;
      !x)
