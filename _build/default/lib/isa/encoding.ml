(* Field packing helpers: [put v ~width ~at] places [v] with its LSB
   at bit [at]. *)

let check name v width =
  if v < 0 || (width < 63 && v >= 1 lsl width) then
    invalid_arg (Printf.sprintf "Encoding: %s = %d exceeds %d bits" name v width)

let put v ~width ~at acc =
  ignore width;
  Int64.logor acc (Int64.shift_left (Int64.of_int v) at)

let get w ~width ~at =
  Int64.to_int (Int64.logand (Int64.shift_right_logical w at) (Int64.sub (Int64.shift_left 1L width) 1L))

let op_nop = 0
let op_vrd = 1
let op_vwr = 2
let op_vfill = 3
let op_mrd = 4
let op_mvm = 5
let op_vadd = 6
let op_vsub = 7
let op_vmul = 8
let op_act = 9
let op_loop = 10
let op_endloop = 11
let op_vrdi = 12
let op_vwri = 13

let act_code = function
  | Instr.Sigmoid -> 0
  | Instr.Tanh -> 1
  | Instr.Relu -> 2
  | Instr.Identity -> 3

let act_of_code = function
  | 0 -> Instr.Sigmoid
  | 1 -> Instr.Tanh
  | 2 -> Instr.Relu
  | _ -> Instr.Identity

let with_op op = put op ~width:6 ~at:58 0L

let encode (i : Instr.t) =
  match i with
  | Instr.Nop -> with_op op_nop
  | Instr.V_rd { dst; addr; len } ->
    check "vreg" dst 5;
    check "len" len 16;
    if addr < 0 || addr > 0xFFFFFFFF then invalid_arg "Encoding: addr exceeds 32 bits";
    with_op op_vrd |> put dst ~width:5 ~at:53 |> put addr ~width:32 ~at:21
    |> put len ~width:16 ~at:5
  | Instr.V_wr { src; addr; len } ->
    check "vreg" src 5;
    check "len" len 16;
    if addr < 0 || addr > 0xFFFFFFFF then invalid_arg "Encoding: addr exceeds 32 bits";
    with_op op_vwr |> put src ~width:5 ~at:53 |> put addr ~width:32 ~at:21
    |> put len ~width:16 ~at:5
  | Instr.V_fill { dst; len; value } ->
    check "vreg" dst 5;
    check "len" len 16;
    with_op op_vfill |> put dst ~width:5 ~at:53 |> put len ~width:16 ~at:37
    |> put (Fp16.to_bits (Fp16.of_float value)) ~width:16 ~at:21
  | Instr.M_rd { dst; addr; rows; cols } ->
    check "mreg" dst 4;
    check "rows" rows 12;
    check "cols" cols 12;
    check "addr" addr 30;
    with_op op_mrd |> put dst ~width:4 ~at:54 |> put addr ~width:30 ~at:24
    |> put rows ~width:12 ~at:12 |> put cols ~width:12 ~at:0
  | Instr.Mvm { dst; mat; src } ->
    check "vreg" dst 5;
    check "mreg" mat 4;
    check "vreg" src 5;
    with_op op_mvm |> put dst ~width:5 ~at:53 |> put mat ~width:4 ~at:49
    |> put src ~width:5 ~at:44
  | Instr.Vv_add { dst; a; b } | Instr.Vv_sub { dst; a; b } | Instr.Vv_mul { dst; a; b }
    ->
    check "vreg" dst 5;
    check "vreg" a 5;
    check "vreg" b 5;
    let op =
      match i with
      | Instr.Vv_add _ -> op_vadd
      | Instr.Vv_sub _ -> op_vsub
      | _ -> op_vmul
    in
    with_op op |> put dst ~width:5 ~at:53 |> put a ~width:5 ~at:48 |> put b ~width:5 ~at:43
  | Instr.Act { dst; src; f } ->
    check "vreg" dst 5;
    check "vreg" src 5;
    with_op op_act |> put dst ~width:5 ~at:53 |> put src ~width:5 ~at:48
    |> put (act_code f) ~width:2 ~at:46
  | Instr.Loop { count } ->
    check "count" count 26;
    with_op op_loop |> put count ~width:26 ~at:32
  | Instr.End_loop -> with_op op_endloop
  | Instr.V_rd_i { dst; base; stride; len } ->
    check "vreg" dst 5;
    check "base" base 28;
    check "stride" stride 13;
    check "len" len 12;
    with_op op_vrdi |> put dst ~width:5 ~at:53 |> put base ~width:28 ~at:25
    |> put stride ~width:13 ~at:12 |> put len ~width:12 ~at:0
  | Instr.V_wr_i { src; base; stride; len } ->
    check "vreg" src 5;
    check "base" base 28;
    check "stride" stride 13;
    check "len" len 12;
    with_op op_vwri |> put src ~width:5 ~at:53 |> put base ~width:28 ~at:25
    |> put stride ~width:13 ~at:12 |> put len ~width:12 ~at:0

let decode w =
  let op = get w ~width:6 ~at:58 in
  if op = op_nop then Ok Instr.Nop
  else if op = op_vrd then
    Ok
      (Instr.V_rd
         { dst = get w ~width:5 ~at:53; addr = get w ~width:32 ~at:21; len = get w ~width:16 ~at:5 })
  else if op = op_vwr then
    Ok
      (Instr.V_wr
         { src = get w ~width:5 ~at:53; addr = get w ~width:32 ~at:21; len = get w ~width:16 ~at:5 })
  else if op = op_vfill then
    Ok
      (Instr.V_fill
         {
           dst = get w ~width:5 ~at:53;
           len = get w ~width:16 ~at:37;
           value = Fp16.to_float (Fp16.of_bits (get w ~width:16 ~at:21));
         })
  else if op = op_mrd then
    Ok
      (Instr.M_rd
         {
           dst = get w ~width:4 ~at:54;
           addr = get w ~width:30 ~at:24;
           rows = get w ~width:12 ~at:12;
           cols = get w ~width:12 ~at:0;
         })
  else if op = op_mvm then
    Ok
      (Instr.Mvm
         { dst = get w ~width:5 ~at:53; mat = get w ~width:4 ~at:49; src = get w ~width:5 ~at:44 })
  else if op = op_vadd || op = op_vsub || op = op_vmul then begin
    let dst = get w ~width:5 ~at:53 and a = get w ~width:5 ~at:48 and b = get w ~width:5 ~at:43 in
    if op = op_vadd then Ok (Instr.Vv_add { dst; a; b })
    else if op = op_vsub then Ok (Instr.Vv_sub { dst; a; b })
    else Ok (Instr.Vv_mul { dst; a; b })
  end
  else if op = op_act then
    Ok
      (Instr.Act
         {
           dst = get w ~width:5 ~at:53;
           src = get w ~width:5 ~at:48;
           f = act_of_code (get w ~width:2 ~at:46);
         })
  else if op = op_loop then Ok (Instr.Loop { count = get w ~width:26 ~at:32 })
  else if op = op_endloop then Ok Instr.End_loop
  else if op = op_vrdi then
    Ok
      (Instr.V_rd_i
         {
           dst = get w ~width:5 ~at:53;
           base = get w ~width:28 ~at:25;
           stride = get w ~width:13 ~at:12;
           len = get w ~width:12 ~at:0;
         })
  else if op = op_vwri then
    Ok
      (Instr.V_wr_i
         {
           src = get w ~width:5 ~at:53;
           base = get w ~width:28 ~at:25;
           stride = get w ~width:13 ~at:12;
           len = get w ~width:12 ~at:0;
         })
  else Error (Printf.sprintf "unknown opcode %d" op)

let encode_program p = Array.map encode p.Program.instrs

let decode_program ?vregs ?mregs ws =
  let exception Bad of string in
  match
    Array.to_list ws
    |> List.mapi (fun i w ->
           match decode w with
           | Ok instr -> instr
           | Error e -> raise (Bad (Printf.sprintf "word %d: %s" i e)))
  with
  | instrs -> Ok (Program.make ?vregs ?mregs instrs)
  | exception Bad e -> Error e

let to_hex w = Printf.sprintf "%016Lx" w

let of_hex s =
  match Int64.of_string_opt ("0x" ^ String.trim s) with
  | Some w -> Ok w
  | None -> Error (Printf.sprintf "bad hex word %S" s)
