(** IEEE 754 half-precision (binary16) emulation.

    The accelerator's multi-function units operate in float16 for the
    secondary (non-MVM) operations to avoid quantization noise
    (paper §3).  Values are stored as their 16-bit patterns; all
    arithmetic is performed by converting to float64, computing, and
    rounding back — bit-accurate for the round-to-nearest-even
    single-operation case. *)

type t = private int  (** the 16-bit pattern *)

val zero : t
val one : t

(** [of_float f] rounds a float to the nearest half (ties to even),
    with overflow to infinity and subnormal support. *)
val of_float : float -> t

(** [to_float h] is exact. *)
val to_float : t -> float

(** [of_bits b] reinterprets the low 16 bits. *)
val of_bits : int -> t

val to_bits : t -> int

(** Arithmetic with intermediate rounding after each operation, as
    the hardware would. *)
val add : t -> t -> t

val sub : t -> t -> t
val mul : t -> t -> t

(** [round_float f] is [to_float (of_float f)] — the value a float16
    datapath would produce. *)
val round_float : float -> float

(** [is_finite h] rejects infinities and NaNs. *)
val is_finite : t -> bool
