(** Program generation for GRU and LSTM inference (batch size 1), the
    workloads of the paper's evaluation (DeepBench layers, §4.1).

    The generated programs load all weight matrices into tile memory
    once, then run the recurrence over the timesteps, reading each
    input vector from DRAM and writing each hidden state back.  The
    DRAM layout is returned so callers (tests, the golden reference
    model, the benchmark harness) can populate weights and inputs and
    find outputs. *)

type kind = Lstm | Gru

(** One weight matrix in DRAM: register slot, address, shape. *)
type weight_spec = { mreg : Instr.mreg; addr : int; rows : int; cols : int }

type layout = {
  kind : kind;
  hidden : int;
  input : int;
  timesteps : int;
  weights : weight_spec list;
  x_base : int;  (** timestep [t]'s input vector at [x_base + t*input] *)
  h_out_base : int;  (** hidden state [t] at [h_out_base + t*hidden] *)
  dram_words : int;  (** minimum DRAM image size *)
}

(** [generate kind ~hidden ~input ~timesteps] emits the inference
    program with the time loop fully unrolled.
    @raise Invalid_argument on non-positive dimensions. *)
val generate : kind -> hidden:int -> input:int -> timesteps:int -> Program.t * layout

(** [generate_looped kind ~hidden ~input ~timesteps] emits the same
    computation as a hardware loop with indexed DRAM addressing — the
    compact code the AS ISA exists for: the program size becomes
    independent of [timesteps], so it always fits the on-chip
    instruction buffer.  Semantically identical to {!generate} (same
    layout, same results). *)
val generate_looped :
  kind -> hidden:int -> input:int -> timesteps:int -> Program.t * layout

(** [kind_name k] is ["LSTM"] or ["GRU"]. *)
val kind_name : kind -> string

(** [init_dram ~rng layout] allocates a DRAM image of
    [layout.dram_words] and fills weights and inputs with small
    random values (uniform in [-0.5, 0.5], suitable for stable
    recurrences). *)
val init_dram : rng:Mlv_util.Rng.t -> layout -> float array

(** [golden layout dram] runs a float64 reference implementation of
    the recurrence directly from the DRAM image and returns the
    hidden state after every timestep ([timesteps] arrays of length
    [hidden]).  Used to validate generated programs and the scale-out
    rewrite. *)
val golden : layout -> float array -> float array array
