type kind = Lstm | Gru

type weight_spec = { mreg : Instr.mreg; addr : int; rows : int; cols : int }

type layout = {
  kind : kind;
  hidden : int;
  input : int;
  timesteps : int;
  weights : weight_spec list;
  x_base : int;
  h_out_base : int;
  dram_words : int;
}

let kind_name = function Lstm -> "LSTM" | Gru -> "GRU"

(* Vector register map (shared by both kinds):
   v0 x_t          v1 h (persistent)    v2 c / ones
   v3-v6 gates     v8 temp for U*h      v9-v13 temps *)

let weight_count = function Lstm -> 8 | Gru -> 6

let make_layout kind ~hidden ~input ~timesteps =
  let nw = weight_count kind in
  let weights = ref [] in
  let addr = ref 0 in
  for i = 0 to nw - 1 do
    (* First half are input-facing (hidden x input), second half are
       recurrent (hidden x hidden). *)
    let cols = if i < nw / 2 then input else hidden in
    weights := { mreg = i; addr = !addr; rows = hidden; cols } :: !weights;
    addr := !addr + (hidden * cols)
  done;
  let x_base = !addr in
  let h_out_base = x_base + (timesteps * input) in
  let dram_words = h_out_base + (timesteps * hidden) in
  {
    kind;
    hidden;
    input;
    timesteps;
    weights = List.rev !weights;
    x_base;
    h_out_base;
    dram_words;
  }

let load_weights layout =
  List.map
    (fun w -> Instr.M_rd { dst = w.mreg; addr = w.addr; rows = w.rows; cols = w.cols })
    layout.weights

let lstm_step layout t =
  let h = layout.hidden and input = layout.input in
  let x_addr = layout.x_base + (t * input) in
  let h_addr = layout.h_out_base + (t * h) in
  [
    Instr.V_rd { dst = 0; addr = x_addr; len = input };
    (* Gate pre-activations: W* x + U* h. *)
    Instr.Mvm { dst = 3; mat = 0; src = 0 };
    Instr.Mvm { dst = 8; mat = 4; src = 1 };
    Instr.Vv_add { dst = 3; a = 3; b = 8 };
    Instr.Mvm { dst = 4; mat = 1; src = 0 };
    Instr.Mvm { dst = 8; mat = 5; src = 1 };
    Instr.Vv_add { dst = 4; a = 4; b = 8 };
    Instr.Mvm { dst = 5; mat = 2; src = 0 };
    Instr.Mvm { dst = 8; mat = 6; src = 1 };
    Instr.Vv_add { dst = 5; a = 5; b = 8 };
    Instr.Mvm { dst = 6; mat = 3; src = 0 };
    Instr.Mvm { dst = 8; mat = 7; src = 1 };
    Instr.Vv_add { dst = 6; a = 6; b = 8 };
    Instr.Act { dst = 3; src = 3; f = Instr.Sigmoid };
    (* i *)
    Instr.Act { dst = 4; src = 4; f = Instr.Sigmoid };
    (* f *)
    Instr.Act { dst = 5; src = 5; f = Instr.Tanh };
    (* g *)
    Instr.Act { dst = 6; src = 6; f = Instr.Sigmoid };
    (* o *)
    Instr.Vv_mul { dst = 9; a = 4; b = 2 };
    (* f*c *)
    Instr.Vv_mul { dst = 10; a = 3; b = 5 };
    (* i*g *)
    Instr.Vv_add { dst = 2; a = 9; b = 10 };
    (* c' *)
    Instr.Act { dst = 11; src = 2; f = Instr.Tanh };
    Instr.Vv_mul { dst = 1; a = 6; b = 11 };
    (* h' *)
    Instr.V_wr { src = 1; addr = h_addr; len = h };
  ]

let gru_step layout t =
  let h = layout.hidden and input = layout.input in
  let x_addr = layout.x_base + (t * input) in
  let h_addr = layout.h_out_base + (t * h) in
  [
    Instr.V_rd { dst = 0; addr = x_addr; len = input };
    (* r gate *)
    Instr.Mvm { dst = 3; mat = 0; src = 0 };
    Instr.Mvm { dst = 8; mat = 3; src = 1 };
    Instr.Vv_add { dst = 3; a = 3; b = 8 };
    Instr.Act { dst = 3; src = 3; f = Instr.Sigmoid };
    (* z gate *)
    Instr.Mvm { dst = 4; mat = 1; src = 0 };
    Instr.Mvm { dst = 8; mat = 4; src = 1 };
    Instr.Vv_add { dst = 4; a = 4; b = 8 };
    Instr.Act { dst = 4; src = 4; f = Instr.Sigmoid };
    (* candidate: n = tanh(Wn x + Un (r*h)) *)
    Instr.Vv_mul { dst = 9; a = 3; b = 1 };
    Instr.Mvm { dst = 5; mat = 2; src = 0 };
    Instr.Mvm { dst = 8; mat = 5; src = 9 };
    Instr.Vv_add { dst = 5; a = 5; b = 8 };
    Instr.Act { dst = 5; src = 5; f = Instr.Tanh };
    (* h' = (1 - z)*n + z*h *)
    Instr.Vv_sub { dst = 11; a = 2; b = 4 };
    Instr.Vv_mul { dst = 12; a = 11; b = 5 };
    Instr.Vv_mul { dst = 13; a = 4; b = 1 };
    Instr.Vv_add { dst = 1; a = 12; b = 13 };
    Instr.V_wr { src = 1; addr = h_addr; len = h };
  ]

let generate kind ~hidden ~input ~timesteps =
  if hidden <= 0 || input <= 0 || timesteps <= 0 then
    invalid_arg "Codegen.generate: dimensions must be positive";
  let layout = make_layout kind ~hidden ~input ~timesteps in
  let init =
    load_weights layout
    @ [ Instr.V_fill { dst = 1; len = hidden; value = 0.0 } ]
    @
    match kind with
    | Lstm -> [ Instr.V_fill { dst = 2; len = hidden; value = 0.0 } ]
    | Gru -> [ Instr.V_fill { dst = 2; len = hidden; value = 1.0 } ]
    (* the ones vector for 1-z *)
  in
  let steps =
    List.concat
      (List.init timesteps (fun t ->
           match kind with Lstm -> lstm_step layout t | Gru -> gru_step layout t))
  in
  (Program.make ~vregs:16 ~mregs:(weight_count kind) (init @ steps), layout)

let generate_looped kind ~hidden ~input ~timesteps =
  if hidden <= 0 || input <= 0 || timesteps <= 0 then
    invalid_arg "Codegen.generate_looped: dimensions must be positive";
  let layout = make_layout kind ~hidden ~input ~timesteps in
  let init =
    load_weights layout
    @ [ Instr.V_fill { dst = 1; len = hidden; value = 0.0 } ]
    @
    match kind with
    | Lstm -> [ Instr.V_fill { dst = 2; len = hidden; value = 0.0 } ]
    | Gru -> [ Instr.V_fill { dst = 2; len = hidden; value = 1.0 } ]
  in
  (* The body is timestep 0's instructions with the DRAM accesses
     turned into loop-indexed ones. *)
  let body =
    List.map
      (fun instr ->
        match instr with
        | Instr.V_rd { dst; addr; len } when addr = layout.x_base ->
          Instr.V_rd_i { dst; base = addr; stride = input; len }
        | Instr.V_wr { src; addr; len } when addr = layout.h_out_base ->
          Instr.V_wr_i { src; base = addr; stride = hidden; len }
        | other -> other)
      (match kind with Lstm -> lstm_step layout 0 | Gru -> gru_step layout 0)
  in
  let instrs =
    init @ [ Instr.Loop { count = timesteps } ] @ body @ [ Instr.End_loop ]
  in
  (Program.make ~vregs:16 ~mregs:(weight_count kind) instrs, layout)

let init_dram ~rng layout =
  let dram = Array.make layout.dram_words 0.0 in
  let fill base count =
    for i = base to base + count - 1 do
      dram.(i) <- Mlv_util.Rng.float rng 1.0 -. 0.5
    done
  in
  List.iter (fun w -> fill w.addr (w.rows * w.cols)) layout.weights;
  fill layout.x_base (layout.timesteps * layout.input);
  dram

(* Float64 reference recurrences reading the same DRAM layout. *)

let read_matrix dram (w : weight_spec) =
  Array.init w.rows (fun r -> Array.sub dram (w.addr + (r * w.cols)) w.cols)

let matvec m v =
  Array.map
    (fun row ->
      let acc = ref 0.0 in
      Array.iteri (fun i x -> acc := !acc +. (x *. v.(i))) row;
      !acc)
    m

let vmap2 f a b = Array.init (Array.length a) (fun i -> f a.(i) b.(i))
let sigmoid x = 1.0 /. (1.0 +. exp (-.x))

let golden layout dram =
  let w i = read_matrix dram (List.nth layout.weights i) in
  let x t = Array.sub dram (layout.x_base + (t * layout.input)) layout.input in
  let h = ref (Array.make layout.hidden 0.0) in
  match layout.kind with
  | Lstm ->
    let wi = w 0 and wf = w 1 and wg = w 2 and wo = w 3 in
    let ui = w 4 and uf = w 5 and ug = w 6 and uo = w 7 in
    let c = ref (Array.make layout.hidden 0.0) in
    Array.init layout.timesteps (fun t ->
        let xt = x t in
        let i = Array.map sigmoid (vmap2 ( +. ) (matvec wi xt) (matvec ui !h)) in
        let f = Array.map sigmoid (vmap2 ( +. ) (matvec wf xt) (matvec uf !h)) in
        let g = Array.map tanh (vmap2 ( +. ) (matvec wg xt) (matvec ug !h)) in
        let o = Array.map sigmoid (vmap2 ( +. ) (matvec wo xt) (matvec uo !h)) in
        c := vmap2 ( +. ) (vmap2 ( *. ) f !c) (vmap2 ( *. ) i g);
        h := vmap2 ( *. ) o (Array.map tanh !c);
        Array.copy !h)
  | Gru ->
    let wr = w 0 and wz = w 1 and wn = w 2 in
    let ur = w 3 and uz = w 4 and un = w 5 in
    Array.init layout.timesteps (fun t ->
        let xt = x t in
        let r = Array.map sigmoid (vmap2 ( +. ) (matvec wr xt) (matvec ur !h)) in
        let z = Array.map sigmoid (vmap2 ( +. ) (matvec wz xt) (matvec uz !h)) in
        let rh = vmap2 ( *. ) r !h in
        let n = Array.map tanh (vmap2 ( +. ) (matvec wn xt) (matvec un rh)) in
        h :=
          vmap2 ( +. )
            (vmap2 ( *. ) (Array.map (fun zi -> 1.0 -. zi) z) n)
            (vmap2 ( *. ) z !h);
        Array.copy !h)
