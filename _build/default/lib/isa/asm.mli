(** Textual assembler for the AS ISA.

    One instruction per line; [#] starts a comment.  Register
    operands are written [v3] / [m1]; numeric operands are decimal.
    Example:
    {v
      mrd m0, 4096, 128, 128
      loop 100                  # hardware loop, 100 iterations
      vrdi v0, 0, 128, 128      # indexed: base, stride, len
      mvm v1, m0, v0
      act v2, v1, tanh
      vwri v2, 16384, 128, 128
      endloop
    v} *)

(** [to_string p] disassembles a program. *)
val to_string : Program.t -> string

(** [of_string src] assembles.  Returns [Error msg] with a
    line-numbered message on syntax errors. *)
val of_string : ?vregs:int -> ?mregs:int -> string -> (Program.t, string) result
