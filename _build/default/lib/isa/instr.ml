type vreg = int
type mreg = int
type act = Sigmoid | Tanh | Relu | Identity

type t =
  | V_rd of { dst : vreg; addr : int; len : int }
  | V_wr of { src : vreg; addr : int; len : int }
  | V_fill of { dst : vreg; len : int; value : float }
  | M_rd of { dst : mreg; addr : int; rows : int; cols : int }
  | Mvm of { dst : vreg; mat : mreg; src : vreg }
  | Vv_add of { dst : vreg; a : vreg; b : vreg }
  | Vv_sub of { dst : vreg; a : vreg; b : vreg }
  | Vv_mul of { dst : vreg; a : vreg; b : vreg }
  | Act of { dst : vreg; src : vreg; f : act }
  | Nop
  | Loop of { count : int }
  | End_loop
  | V_rd_i of { dst : vreg; base : int; stride : int; len : int }
  | V_wr_i of { src : vreg; base : int; stride : int; len : int }

type effects = {
  vreads : vreg list;
  vwrites : vreg list;
  mreads : mreg list;
  mwrites : mreg list;
  mem_read : (int * int) option;
  mem_write : (int * int) option;
  mem_read_wild : bool;
  mem_write_wild : bool;
  barrier : bool;
}

let no_effects =
  {
    vreads = [];
    vwrites = [];
    mreads = [];
    mwrites = [];
    mem_read = None;
    mem_write = None;
    mem_read_wild = false;
    mem_write_wild = false;
    barrier = false;
  }

let effects = function
  | V_rd { dst; addr; len } ->
    { no_effects with vwrites = [ dst ]; mem_read = Some (addr, len) }
  | V_wr { src; addr; len } ->
    { no_effects with vreads = [ src ]; mem_write = Some (addr, len) }
  | V_fill { dst; _ } -> { no_effects with vwrites = [ dst ] }
  | M_rd { dst; addr; rows; cols } ->
    { no_effects with mwrites = [ dst ]; mem_read = Some (addr, rows * cols) }
  | Mvm { dst; mat; src } -> { no_effects with vreads = [ src ]; vwrites = [ dst ]; mreads = [ mat ] }
  | Vv_add { dst; a; b } | Vv_sub { dst; a; b } | Vv_mul { dst; a; b } ->
    { no_effects with vreads = [ a; b ]; vwrites = [ dst ] }
  | Act { dst; src; _ } -> { no_effects with vreads = [ src ]; vwrites = [ dst ] }
  | Nop -> no_effects
  | Loop _ | End_loop -> { no_effects with barrier = true }
  | V_rd_i { dst; _ } -> { no_effects with vwrites = [ dst ]; mem_read_wild = true }
  | V_wr_i { src; _ } -> { no_effects with vreads = [ src ]; mem_write_wild = true }

let ranges_overlap a b =
  match (a, b) with
  | Some (a0, alen), Some (b0, blen) -> a0 < b0 + blen && b0 < a0 + alen
  | _, None | None, _ -> false

let intersects a b = List.exists (fun x -> List.mem x b) a

let depends ~earlier ~later =
  let e = effects earlier and l = effects later in
  e.barrier || l.barrier
  (* Wild (loop-indexed) accesses conflict with any memory access. *)
  || (e.mem_write_wild && (l.mem_read <> None || l.mem_write <> None || l.mem_read_wild || l.mem_write_wild))
  || (l.mem_write_wild && (e.mem_read <> None || e.mem_write <> None || e.mem_read_wild))
  || (e.mem_read_wild && (l.mem_write <> None || l.mem_write_wild))
  || (l.mem_read_wild && e.mem_write <> None)
  (* Register hazards. *)
  || intersects e.vwrites l.vreads (* RAW *)
  || intersects e.vreads l.vwrites (* WAR *)
  || intersects e.vwrites l.vwrites (* WAW *)
  || intersects e.mwrites l.mreads
  || intersects e.mreads l.mwrites
  || intersects e.mwrites l.mwrites
  (* Memory hazards: write/read, read/write and write/write on
     overlapping ranges. *)
  || ranges_overlap e.mem_write l.mem_read
  || ranges_overlap e.mem_read l.mem_write
  || ranges_overlap e.mem_write l.mem_write

let opcode = function
  | V_rd _ -> "vrd"
  | V_wr _ -> "vwr"
  | V_fill _ -> "vfill"
  | M_rd _ -> "mrd"
  | Mvm _ -> "mvm"
  | Vv_add _ -> "vadd"
  | Vv_sub _ -> "vsub"
  | Vv_mul _ -> "vmul"
  | Act _ -> "act"
  | Nop -> "nop"
  | Loop _ -> "loop"
  | End_loop -> "endloop"
  | V_rd_i _ -> "vrdi"
  | V_wr_i _ -> "vwri"

let act_name = function
  | Sigmoid -> "sigmoid"
  | Tanh -> "tanh"
  | Relu -> "relu"
  | Identity -> "identity"

let act_of_name = function
  | "sigmoid" -> Some Sigmoid
  | "tanh" -> Some Tanh
  | "relu" -> Some Relu
  | "identity" -> Some Identity
  | _ -> None

let pp fmt i =
  match i with
  | V_rd { dst; addr; len } -> Format.fprintf fmt "vrd v%d, %d, %d" dst addr len
  | V_wr { src; addr; len } -> Format.fprintf fmt "vwr v%d, %d, %d" src addr len
  | V_fill { dst; len; value } -> Format.fprintf fmt "vfill v%d, %d, %g" dst len value
  | M_rd { dst; addr; rows; cols } ->
    Format.fprintf fmt "mrd m%d, %d, %d, %d" dst addr rows cols
  | Mvm { dst; mat; src } -> Format.fprintf fmt "mvm v%d, m%d, v%d" dst mat src
  | Vv_add { dst; a; b } -> Format.fprintf fmt "vadd v%d, v%d, v%d" dst a b
  | Vv_sub { dst; a; b } -> Format.fprintf fmt "vsub v%d, v%d, v%d" dst a b
  | Vv_mul { dst; a; b } -> Format.fprintf fmt "vmul v%d, v%d, v%d" dst a b
  | Act { dst; src; f } -> Format.fprintf fmt "act v%d, v%d, %s" dst src (act_name f)
  | Nop -> Format.fprintf fmt "nop"
  | Loop { count } -> Format.fprintf fmt "loop %d" count
  | End_loop -> Format.fprintf fmt "endloop"
  | V_rd_i { dst; base; stride; len } ->
    Format.fprintf fmt "vrdi v%d, %d, %d, %d" dst base stride len
  | V_wr_i { src; base; stride; len } ->
    Format.fprintf fmt "vwri v%d, %d, %d, %d" src base stride len
