type port = {
  send : addr:int -> float array -> unit;
  recv : addr:int -> len:int -> float array option;
}

type status = Running | Stalled | Done

type matrix = { rows : int; cols : int; data : float array array (* row-major *) }

type t = {
  program : Program.t;
  dram : float array;
  vregs : float array option array;
  mregs : matrix option array;
  exact : bool;
  mantissa_bits : int;
  sync_base : int;
  port : port option;
  mutable pc : int;
  mutable executed : int;
  (* Hardware loop stack: (body start pc, remaining repeats, iter). *)
  mutable loops : (int * int * int) list;
}

let create ?(exact = false) ?(mantissa_bits = 6) ?(sync_base = max_int) ?port ~dram
    program =
  {
    program;
    dram;
    vregs = Array.make program.Program.vregs None;
    mregs = Array.make program.Program.mregs None;
    exact;
    mantissa_bits;
    sync_base;
    port;
    pc = 0;
    executed = 0;
    loops = [];
  }

let pc t = t.pc
let executed t = t.executed
let dram t = t.dram

let vreg t r =
  match t.vregs.(r) with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Exec.vreg: v%d never written" r)

let read_vreg t r =
  match t.vregs.(r) with
  | Some v -> v
  | None -> failwith (Printf.sprintf "Exec: read of uninitialized v%d at pc %d" r t.pc)

let read_mreg t r =
  match t.mregs.(r) with
  | Some m -> m
  | None -> failwith (Printf.sprintf "Exec: read of uninitialized m%d at pc %d" r t.pc)

let check_range t addr len =
  if addr < 0 || addr + len > Array.length t.dram then
    failwith
      (Printf.sprintf "Exec: DRAM access [%d, %d) out of range (size %d) at pc %d" addr
         (addr + len) (Array.length t.dram) t.pc)

let fp16_round t x = if t.exact then x else Fp16.round_float x

(* MVM datapath: each row and the source vector pass through BFP
   quantization, the dot product accumulates exactly, and the result
   rounds to float16 on the way into the VRF. *)
let mvm t (m : matrix) src =
  if Array.length src <> m.cols then
    failwith
      (Printf.sprintf "Exec: mvm shape mismatch (matrix %dx%d, vector %d) at pc %d"
         m.rows m.cols (Array.length src) t.pc);
  if t.exact then
    Array.map
      (fun row ->
        let acc = ref 0.0 in
        Array.iteri (fun i w -> acc := !acc +. (w *. src.(i))) row;
        !acc)
      m.data
  else begin
    let src_q = Bfp.encode ~mantissa_bits:t.mantissa_bits src in
    Array.map
      (fun row ->
        let row_q = Bfp.encode ~mantissa_bits:t.mantissa_bits row in
        Fp16.round_float (Bfp.dot row_q src_q))
      m.data
  end

let activation t f x =
  let y =
    match f with
    | Instr.Sigmoid -> 1.0 /. (1.0 +. exp (-.x))
    | Instr.Tanh -> tanh x
    | Instr.Relu -> Float.max 0.0 x
    | Instr.Identity -> x
  in
  fp16_round t y

let pointwise2 t f a b =
  let va = read_vreg t a and vb = read_vreg t b in
  if Array.length va <> Array.length vb then
    failwith
      (Printf.sprintf "Exec: pointwise length mismatch (%d vs %d) at pc %d"
         (Array.length va) (Array.length vb) t.pc);
  Array.init (Array.length va) (fun i -> fp16_round t (f va.(i) vb.(i)))

let step t =
  if t.pc >= Program.length t.program then Done
  else begin
    let instr = t.program.Program.instrs.(t.pc) in
    let retire () =
      t.pc <- t.pc + 1;
      t.executed <- t.executed + 1;
      if t.pc >= Program.length t.program then Done else Running
    in
    match instr with
    | Instr.Nop -> retire ()
    | Instr.V_fill { dst; len; value } ->
      t.vregs.(dst) <- Some (Array.make len (fp16_round t value));
      retire ()
    | Instr.V_rd { dst; addr; len } ->
      if addr >= t.sync_base then begin
        match t.port with
        | None -> failwith (Printf.sprintf "Exec: sync read at pc %d without a port" t.pc)
        | Some port -> (
          match port.recv ~addr ~len with
          | None -> Stalled
          | Some data ->
            if Array.length data <> len then
              failwith
                (Printf.sprintf "Exec: sync read expected %d words, got %d at pc %d" len
                   (Array.length data) t.pc);
            t.vregs.(dst) <- Some (Array.copy data);
            retire ())
      end
      else begin
        check_range t addr len;
        t.vregs.(dst) <- Some (Array.sub t.dram addr len);
        retire ()
      end
    | Instr.V_wr { src; addr; len } ->
      let v = read_vreg t src in
      if Array.length v <> len then
        failwith
          (Printf.sprintf "Exec: vwr length mismatch (v%d has %d, len %d) at pc %d" src
             (Array.length v) len t.pc);
      if addr >= t.sync_base then begin
        match t.port with
        | None -> failwith (Printf.sprintf "Exec: sync write at pc %d without a port" t.pc)
        | Some port ->
          port.send ~addr (Array.copy v);
          retire ()
      end
      else begin
        check_range t addr len;
        Array.blit v 0 t.dram addr len;
        retire ()
      end
    | Instr.M_rd { dst; addr; rows; cols } ->
      check_range t addr (rows * cols);
      let data =
        Array.init rows (fun r -> Array.sub t.dram (addr + (r * cols)) cols)
      in
      t.mregs.(dst) <- Some { rows; cols; data };
      retire ()
    | Instr.Mvm { dst; mat; src } ->
      let m = read_mreg t mat in
      t.vregs.(dst) <- Some (mvm t m (read_vreg t src));
      retire ()
    | Instr.Vv_add { dst; a; b } ->
      t.vregs.(dst) <- Some (pointwise2 t ( +. ) a b);
      retire ()
    | Instr.Vv_sub { dst; a; b } ->
      t.vregs.(dst) <- Some (pointwise2 t ( -. ) a b);
      retire ()
    | Instr.Vv_mul { dst; a; b } ->
      t.vregs.(dst) <- Some (pointwise2 t ( *. ) a b);
      retire ()
    | Instr.Act { dst; src; f } ->
      t.vregs.(dst) <- Some (Array.map (activation t f) (read_vreg t src));
      retire ()
    | Instr.Loop { count } ->
      t.loops <- (t.pc + 1, count - 1, 0) :: t.loops;
      retire ()
    | Instr.End_loop -> (
      match t.loops with
      | [] -> failwith (Printf.sprintf "Exec: endloop without loop at pc %d" t.pc)
      | (start, remaining, iter) :: rest ->
        t.executed <- t.executed + 1;
        if remaining > 0 then begin
          t.loops <- (start, remaining - 1, iter + 1) :: rest;
          t.pc <- start;
          Running
        end
        else begin
          t.loops <- rest;
          t.pc <- t.pc + 1;
          if t.pc >= Program.length t.program then Done else Running
        end)
    | Instr.V_rd_i { dst; base; stride; len } ->
      let iter = match t.loops with (_, _, i) :: _ -> i | [] -> 0 in
      let addr = base + (iter * stride) in
      check_range t addr len;
      t.vregs.(dst) <- Some (Array.sub t.dram addr len);
      retire ()
    | Instr.V_wr_i { src; base; stride; len } ->
      let v = read_vreg t src in
      if Array.length v <> len then
        failwith
          (Printf.sprintf "Exec: vwri length mismatch (v%d has %d, len %d) at pc %d" src
             (Array.length v) len t.pc);
      let iter = match t.loops with (_, _, i) :: _ -> i | [] -> 0 in
      let addr = base + (iter * stride) in
      check_range t addr len;
      Array.blit v 0 t.dram addr len;
      retire ()
  end

let run t ~max_steps =
  let rec loop budget =
    if budget = 0 then
      if t.pc >= Program.length t.program then Done
      else failwith "Exec.run: step budget exhausted"
    else begin
      match step t with
      | Done -> Done
      | Stalled -> Stalled
      | Running -> loop (budget - 1)
    end
  in
  loop max_steps
