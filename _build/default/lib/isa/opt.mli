(** Program optimizer.

    Semantics-preserving clean-ups applied before a program is loaded
    into the instruction buffer: smaller programs mean fewer buffer
    words and fewer issue slots.

    - [remove_nops] drops [nop]s;
    - [dead_code] drops instructions whose only effect is writing a
      register that is overwritten before any read (memory writes and
      synchronization accesses are never dropped; programs containing
      hardware loops are returned unchanged — liveness across a back
      edge needs a fixpoint this pass does not do);
    - [optimize] composes both to a fixpoint. *)

val remove_nops : Program.t -> Program.t
val dead_code : Program.t -> Program.t
val optimize : Program.t -> Program.t

(** [eliminated ~before ~after] counts removed instructions. *)
val eliminated : before:Program.t -> after:Program.t -> int
