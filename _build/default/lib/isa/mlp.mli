(** Multi-layer perceptron / GEMV serving programs.

    The AS ISA is not tied to recurrent models: DeepBench's other
    kernel class is dense GEMM/GEMV, which serves MLP-style scoring
    models (ranking, recommendation).  This module generates
    feed-forward inference programs — a chain of matrix-vector
    products with pointwise activations — plus the matching golden
    model, exercising the framework on a second accelerator workload
    with a different dependence structure: no recurrence, so
    consecutive samples are fully independent. *)

type spec = {
  layer_dims : int list;
      (** [d0; d1; ...; dn]: input dimension then each layer's output
          dimension; layer i is a (d{i+1} x di) matrix *)
  activation : Instr.act;  (** applied after every layer but the last *)
}

(** [make_spec ?activation dims] builds a spec.
    @raise Invalid_argument with fewer than two dims or non-positive
    dimensions. *)
val make_spec : ?activation:Instr.act -> int list -> spec

type layout = {
  spec : spec;
  batch : int;
  weights : Codegen.weight_spec list;  (** one per layer, in order *)
  x_base : int;  (** sample [b]'s input at [x_base + b * input_dim] *)
  y_base : int;  (** sample [b]'s output at [y_base + b * output_dim] *)
  input_dim : int;
  output_dim : int;
  dram_words : int;
}

(** [generate spec ~batch] emits the program scoring [batch]
    independent samples. *)
val generate : spec -> batch:int -> Program.t * layout

(** [weight_words spec] counts model parameters. *)
val weight_words : spec -> int

(** [init_dram ~rng layout] fills weights and inputs with small
    random values. *)
val init_dram : rng:Mlv_util.Rng.t -> layout -> float array

(** [golden layout dram] computes the reference outputs, one array
    of [output_dim] per sample. *)
val golden : layout -> float array -> float array array
