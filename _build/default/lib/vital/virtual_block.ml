open Mlv_fpga

let region kind = (Device.get kind).Device.vb_region
let count kind = (Device.get kind).Device.virtual_block_count

(* Per-engine usage when mapped through ViTAL (Table 3 usage divided
   by the two engines one block hosts).  Slightly below the bare
   per-tile cost because the shared MFU front-end stays with the
   control block. *)
let engine_mapped_resources kind =
  match kind with
  | Device.XCVU37P ->
    Resource.make ~luts:22_450 ~dffs:24_400 ~bram_kb:1_997 ~uram_kb:1_075 ~dsps:288 ()
  | Device.XCKU115 ->
    Resource.make ~luts:19_950 ~dffs:17_450 ~bram_kb:2_304 ~dsps:276 ()

let engines_per_block kind =
  let r = region kind in
  let e = engine_mapped_resources kind in
  let rec fit n =
    if n = 0 then 0
    else if Resource.fits ~need:(Resource.scale n e) ~avail:r then n
    else fit (n - 1)
  in
  fit 8

type impl_report = {
  device : Device.kind;
  used : Resource.t;
  utilization : float;
  freq_mhz : float;
  peak_tflops : float;
}

let implementation_report kind =
  let d = Device.get kind in
  let n = engines_per_block kind in
  let used = Resource.scale n (engine_mapped_resources kind) in
  let utilization = Resource.utilization ~used ~cap:(region kind) in
  (* ViTAL floorplans each virtual block once; mapped blocks run at
     the device target frequency (paper Fig. 10b). *)
  let freq_mhz = d.Device.base_freq_mhz in
  (* One engine: 16 rows x 128 lanes of BFP MACs plus the fp16 MFU. *)
  let ops_per_cycle = float_of_int (n * ((2 * 16 * 128) + (2 * 128))) in
  let peak_tflops = ops_per_cycle *. freq_mhz *. 1e6 /. 1e12 in
  { device = kind; used; utilization; freq_mhz; peak_tflops }
