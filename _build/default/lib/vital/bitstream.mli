(** Compiled deployment artifacts.

    One bitstream is the result of mapping one partition (a cluster
    of soft blocks) onto one device type's virtual blocks.  The
    mapping database of the runtime (paper Fig. 7) stores, per
    accelerator, one bitstream per (partition, device type) pair so
    deployment never recompiles. *)

open Mlv_fpga

type t = {
  accel_name : string;  (** the accelerator this belongs to *)
  partition_id : string;  (** which partition unit, e.g. ["p2/0"] *)
  device : Device.kind;
  vbs : int;  (** virtual blocks occupied *)
  crossings : int;
  freq_mhz : float;
  tiles : int;  (** engines contained in this partition *)
}

val make :
  accel_name:string ->
  partition_id:string ->
  device:Device.kind ->
  vbs:int ->
  crossings:int ->
  freq_mhz:float ->
  tiles:int ->
  t

(** [id t] is a unique key, e.g. ["npu-t21/p2/0@XCVU37P"]. *)
val id : t -> string

val pp : Format.formatter -> t -> unit
