lib/vital/virtual_block.mli: Device Mlv_fpga Resource
