lib/vital/controller.ml: Array Bitstream Board Device Hashtbl List Mlv_fpga Printf Virtual_block
