lib/vital/controller.ml: Array Bitstream Board Device Hashtbl List Mlv_fpga Mlv_obs Printf Virtual_block
