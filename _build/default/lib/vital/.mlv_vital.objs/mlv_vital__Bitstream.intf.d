lib/vital/bitstream.mli: Device Format Mlv_fpga
