lib/vital/compile.ml: Array Device Hashtbl List Mlv_fpga Printf Resource Virtual_block
