lib/vital/virtual_block.ml: Device Mlv_fpga Resource
