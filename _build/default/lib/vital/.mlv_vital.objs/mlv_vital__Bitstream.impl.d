lib/vital/bitstream.ml: Device Format Mlv_fpga Printf
