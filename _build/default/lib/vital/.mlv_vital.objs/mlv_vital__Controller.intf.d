lib/vital/controller.mli: Bitstream Device Mlv_fpga
