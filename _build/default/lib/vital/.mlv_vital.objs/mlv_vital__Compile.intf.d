lib/vital/compile.mli: Device Mlv_fpga Resource
