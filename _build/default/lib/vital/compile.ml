open Mlv_fpga

type unit_req = { unit_name : string; resources : Resource.t; replicas : int }
type placement = { unit_name : string; replica : int; vb_index : int }

type mapping = {
  device : Device.kind;
  placements : placement list;
  vbs_used : int;
  crossings : int;
  freq_mhz : float;
  per_vb_used : Resource.t array;
}

type strategy = Pipeline_order | Best_fit_decreasing

(* Scalar size of a unit relative to the region: the max component
   ratio, i.e. the bin-packing 'height'. *)
let size_of region r = Resource.utilization ~used:r ~cap:region

let compile_bfd kind units =
  let region = Virtual_block.region kind in
  let max_vbs = Virtual_block.count kind in
  let items =
    List.concat_map
      (fun (u : unit_req) ->
        List.init u.replicas (fun replica -> (u, replica)))
      units
  in
  (* Remember pipeline order for the crossing count. *)
  let order_index = Hashtbl.create 32 in
  List.iteri
    (fun i ((u : unit_req), replica) -> Hashtbl.replace order_index (u.unit_name, replica) i)
    items;
  let sorted =
    List.sort
      (fun ((a : unit_req), _) (b, _) ->
        compare (size_of region b.resources) (size_of region a.resources))
      items
  in
  let per_vb = Array.make max_vbs Resource.zero in
  let used = ref 0 in
  let placements = ref [] in
  let error = ref None in
  List.iter
    (fun ((u : unit_req), replica) ->
      if !error = None then begin
        if not (Resource.fits ~need:u.resources ~avail:region) then
          error :=
            Some
              (Printf.sprintf "unit %s exceeds one virtual block region on %s" u.unit_name
                 (Device.kind_name kind))
        else begin
          (* best fit: the open bin with the least residual that fits *)
          let best = ref (-1) in
          let best_resid = ref infinity in
          for i = 0 to !used - 1 do
            if Resource.fits ~need:(Resource.add per_vb.(i) u.resources) ~avail:region
            then begin
              let resid =
                1.0 -. size_of region (Resource.add per_vb.(i) u.resources)
              in
              if resid < !best_resid then begin
                best := i;
                best_resid := resid
              end
            end
          done;
          let bin =
            if !best >= 0 then !best
            else if !used < max_vbs then begin
              incr used;
              !used - 1
            end
            else -1
          in
          if bin < 0 then
            error :=
              Some
                (Printf.sprintf "out of virtual blocks on %s (%d available)"
                   (Device.kind_name kind) max_vbs)
          else begin
            per_vb.(bin) <- Resource.add per_vb.(bin) u.resources;
            placements := { unit_name = u.unit_name; replica; vb_index = bin } :: !placements
          end
        end
      end)
    sorted;
  match !error with
  | Some msg -> Error msg
  | None ->
    (* crossings over the original pipeline order *)
    let by_order =
      List.sort
        (fun a b ->
          compare
            (Hashtbl.find order_index (a.unit_name, a.replica))
            (Hashtbl.find order_index (b.unit_name, b.replica)))
        !placements
    in
    let crossings = ref 0 in
    let rec count = function
      | a :: (b :: _ as rest) ->
        if a.vb_index <> b.vb_index then incr crossings;
        count rest
      | _ -> ()
    in
    count by_order;
    Ok
      {
        device = kind;
        placements = by_order;
        vbs_used = !used;
        crossings = !crossings;
        freq_mhz = (Device.get kind).Device.base_freq_mhz;
        per_vb_used = Array.sub per_vb 0 (max 1 !used);
      }

let compile ?(strategy = Pipeline_order) kind units =
  match strategy with Best_fit_decreasing -> compile_bfd kind units | Pipeline_order ->
  let region = Virtual_block.region kind in
  let max_vbs = Virtual_block.count kind in
  let per_vb = Array.make max_vbs Resource.zero in
  let placements = ref [] in
  let crossings = ref 0 in
  let current = ref 0 in
  let prev_vb = ref (-1) in
  let error = ref None in
  let place (u : unit_req) replica =
    if !error = None then begin
      if not (Resource.fits ~need:u.resources ~avail:region) then
        error :=
          Some
            (Printf.sprintf "unit %s exceeds one virtual block region on %s" u.unit_name
               (Device.kind_name kind))
      else begin
        (* First-fit starting from the current block so pipeline
           neighbours co-locate. *)
        let rec find i =
          if i >= max_vbs then None
          else if
            Resource.fits
              ~need:(Resource.add per_vb.(i) u.resources)
              ~avail:region
          then Some i
          else find (i + 1)
        in
        match find !current with
        | None ->
          error :=
            Some
              (Printf.sprintf "out of virtual blocks on %s (%d available)"
                 (Device.kind_name kind) max_vbs)
        | Some i ->
          per_vb.(i) <- Resource.add per_vb.(i) u.resources;
          current := i;
          placements := { unit_name = u.unit_name; replica; vb_index = i } :: !placements;
          if !prev_vb >= 0 && !prev_vb <> i then incr crossings;
          prev_vb := i
      end
    end
  in
  List.iter
    (fun u ->
      for replica = 0 to u.replicas - 1 do
        place u replica
      done)
    units;
  match !error with
  | Some msg -> Error msg
  | None ->
    let vbs_used =
      Array.fold_left
        (fun acc r -> if Resource.equal r Resource.zero then acc else acc + 1)
        0 per_vb
    in
    let freq_mhz = (Device.get kind).Device.base_freq_mhz in
    Ok
      {
        device = kind;
        placements = List.rev !placements;
        vbs_used;
        crossings = !crossings;
        freq_mhz;
        per_vb_used = Array.sub per_vb 0 (max 1 vbs_used);
      }

let vbs_needed kind units =
  match compile kind units with Ok r -> Some r.vbs_used | Error _ -> None
