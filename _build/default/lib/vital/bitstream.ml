open Mlv_fpga

type t = {
  accel_name : string;
  partition_id : string;
  device : Device.kind;
  vbs : int;
  crossings : int;
  freq_mhz : float;
  tiles : int;
}

let make ~accel_name ~partition_id ~device ~vbs ~crossings ~freq_mhz ~tiles =
  { accel_name; partition_id; device; vbs; crossings; freq_mhz; tiles }

let id t = Printf.sprintf "%s/%s@%s" t.accel_name t.partition_id (Device.kind_name t.device)

let pp fmt t =
  Format.fprintf fmt "%s{vbs=%d; crossings=%d; %.0fMHz; tiles=%d}" (id t) t.vbs
    t.crossings t.freq_mhz t.tiles
