open Mlv_fpga
module Obs = Mlv_obs.Obs

type handle = { hid : int; owner : int }

type entry = { bitstream : Bitstream.t; vb_indices : int list }

type t = {
  kind : Device.kind;
  uid : int;
  occupied : bool array;
  table : (int, entry) Hashtbl.t;
  mutable next_hid : int;
}

let uid_counter = ref 0

let create kind =
  incr uid_counter;
  {
    kind;
    uid = !uid_counter;
    occupied = Array.make (Virtual_block.count kind) false;
    table = Hashtbl.create 8;
    next_hid = 0;
  }

let device t = t.kind
let total_vbs t = Array.length t.occupied

let free_vbs t =
  Array.fold_left (fun acc o -> if o then acc else acc + 1) 0 t.occupied

(* Partial reconfiguration streams ~30 MB per region over PCIe. *)
let reconfig_time_us kind ~vbs =
  let bytes_per_region =
    match kind with Device.XCVU37P -> 30_000_000 | Device.XCKU115 -> 18_000_000
  in
  Board.pcie_transfer_time_us Board.default ~bytes:(vbs * bytes_per_region)

let load t (b : Bitstream.t) =
  Obs.Span.with_ "reconfig" (fun () ->
      if not (Device.equal_kind b.Bitstream.device t.kind) then begin
        Obs.Counter.incr (Obs.Counter.get "vital.load.reject");
        Error
          (Printf.sprintf "bitstream %s targets %s, device is %s" (Bitstream.id b)
             (Device.kind_name b.Bitstream.device)
             (Device.kind_name t.kind))
      end
      else if free_vbs t < b.Bitstream.vbs then begin
        Obs.Counter.incr (Obs.Counter.get "vital.load.reject");
        Error
          (Printf.sprintf "device has %d free virtual blocks, bitstream needs %d"
             (free_vbs t) b.Bitstream.vbs)
      end
      else begin
        let indices = ref [] in
        let needed = ref b.Bitstream.vbs in
        Array.iteri
          (fun i occ ->
            if (not occ) && !needed > 0 then begin
              t.occupied.(i) <- true;
              indices := i :: !indices;
              decr needed
            end)
          t.occupied;
        let hid = t.next_hid in
        t.next_hid <- t.next_hid + 1;
        Hashtbl.replace t.table hid { bitstream = b; vb_indices = !indices };
        let time_us = reconfig_time_us t.kind ~vbs:b.Bitstream.vbs in
        Obs.Counter.incr (Obs.Counter.get "vital.load");
        Obs.Histogram.observe (Obs.Histogram.get "vital.reconfig_us") time_us;
        Ok ({ hid; owner = t.uid }, time_us)
      end)

let unload t (h : handle) =
  if h.owner <> t.uid then invalid_arg "Controller.unload: foreign handle";
  match Hashtbl.find_opt t.table h.hid with
  | None -> ()
  | Some entry ->
    List.iter (fun i -> t.occupied.(i) <- false) entry.vb_indices;
    Hashtbl.remove t.table h.hid;
    Obs.Counter.incr (Obs.Counter.get "vital.unload")

let loaded t =
  Hashtbl.fold (fun _ e acc -> e.bitstream :: acc) t.table []
  |> List.sort (fun a b -> compare (Bitstream.id a) (Bitstream.id b))
