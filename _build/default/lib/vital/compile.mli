(** Mapping placeable units onto virtual blocks.

    The framework's partitioning step hands this compiler a list of
    units (soft-block clusters with resource annotations, in pipeline
    order); the compiler bin-packs them into virtual blocks
    (first-fit in order, so pipeline neighbours share blocks) and
    reports how many blocks the deployment needs and how many
    inter-block crossings the pipeline suffers — the quantity the
    latency-insensitive-interface overhead scales with. *)

open Mlv_fpga

(** One placeable unit. *)
type unit_req = {
  unit_name : string;
  resources : Resource.t;
  replicas : int;  (** identical copies (a data-parallel group) *)
}

type placement = { unit_name : string; replica : int; vb_index : int }

type mapping = {
  device : Device.kind;
  placements : placement list;
  vbs_used : int;
  crossings : int;  (** pipeline edges that cross a block boundary *)
  freq_mhz : float;
  per_vb_used : Resource.t array;
}

(** Packing strategies.  [Pipeline_order] (default) first-fits units
    in pipeline order so neighbours co-locate — it minimizes
    latency-insensitive-interface crossings.  [Best_fit_decreasing]
    is the classical bin-packing heuristic — it can squeeze a mapping
    into fewer blocks at the price of more crossings. *)
type strategy = Pipeline_order | Best_fit_decreasing

(** [compile ?strategy kind units] maps [units] (in pipeline order)
    onto the device type's virtual blocks.  Returns [Error reason]
    when a unit exceeds a whole region or the device runs out of
    blocks. *)
val compile : ?strategy:strategy -> Device.kind -> unit_req list -> (mapping, string) result

(** [vbs_needed kind units] is just the block count (or [None] if
    infeasible) — the runtime's feasibility query. *)
val vbs_needed : Device.kind -> unit_req list -> int option
