(** ViTAL-style virtual blocks (the HS abstraction of the paper's
    case study, [Zha & Li, ASPLOS 2020]).

    Each device type is statically divided into identical
    virtual-block regions with latency-insensitive interfaces between
    them; a compiled accelerator occupies an integer number of blocks
    and can be loaded into any free ones.  Region shapes come from
    the device catalog and reproduce the paper's Table 3 when the
    decomposed BrainWave-like accelerator is mapped in. *)

open Mlv_fpga

(** [region kind] is the fabric capacity of one virtual block on the
    given device type. *)
val region : Device.kind -> Resource.t

(** [count kind] is the number of virtual blocks per device. *)
val count : Device.kind -> int

(** [engine_mapped_resources kind] is the fabric one accelerator
    engine (MVM tile + MFU slice) occupies when mapped into a
    virtual block — Table 3's per-block usage divided by the two
    engines a block hosts. *)
val engine_mapped_resources : Device.kind -> Resource.t

(** [engines_per_block kind] is how many engines pack into one
    region (2 on both evaluated devices, DSP-bound). *)
val engines_per_block : Device.kind -> int

(** One row of Table 3: per-block usage, utilization of the region,
    achieved frequency and per-block peak TFLOPS. *)
type impl_report = {
  device : Device.kind;
  used : Resource.t;
  utilization : float;
  freq_mhz : float;
  peak_tflops : float;
}

(** [implementation_report kind] evaluates one virtual block hosting
    its full complement of engines. *)
val implementation_report : Device.kind -> impl_report
