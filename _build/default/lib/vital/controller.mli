(** The low-level controller of the HS-abstraction solution
    (paper Fig. 7): manages one physical device's virtual blocks,
    loading/unloading bitstreams by partial reconfiguration.

    The framework's system controller talks to one of these per
    physical FPGA. *)

open Mlv_fpga

type t

(** A loaded bitstream's handle. *)
type handle

(** [create kind] is a controller for an empty device of that type. *)
val create : Device.kind -> t

val device : t -> Device.kind

(** [total_vbs t] / [free_vbs t] count virtual blocks. *)
val total_vbs : t -> int

val free_vbs : t -> int

(** [load t bitstream] allocates the bitstream's virtual blocks.
    Returns the handle and the reconfiguration time in microseconds,
    or [Error reason] on device-type mismatch or lack of space. *)
val load : t -> Bitstream.t -> (handle * float, string) result

(** [unload t h] frees the blocks; idempotent.
    @raise Invalid_argument if [h] belongs to another controller. *)
val unload : t -> handle -> unit

(** [loaded t] lists currently loaded bitstreams. *)
val loaded : t -> Bitstream.t list

(** [reconfig_time_us kind ~vbs] models partial-reconfiguration time:
    bitstream size scales with the region count. *)
val reconfig_time_us : Device.kind -> vbs:int -> float
