open Mlv_rtl

let mask_of width =
  if width >= 64 then -1L
  else Int64.sub (Int64.shift_left 1L width) 1L

let mask width v = Int64.logand v (mask_of width)

(* Deterministic ROM contents: every ROM of a given shape holds the
   same pseudo-random table, so isomorphic circuits agree. *)
let rom_word width addr =
  let z = Int64.of_int (addr + 0x9E37) in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 13)) 0xBF58476D1CE4E5B9L in
  mask width (Int64.logxor z (Int64.shift_right_logical z 29))

type seq_state =
  | S_reg of int64 ref
  | S_ram of { mem : (int, int64) Hashtbl.t; mutable rdata : int64 }
  | S_rom of { mutable rdata : int64 }
  | S_mac of int64 ref

type t = {
  values : (string, int64 ref) Hashtbl.t;
  comb_order : Ast.instance array;
  seq_insts : (Ast.instance * seq_state) array;
  input_ports : Ast.port list;
  output_ports : Ast.port list;
}

let conn_net (inst : Ast.instance) formal =
  match List.find_opt (fun (c : Ast.conn) -> c.formal = formal) inst.conns with
  | Some c -> c.actual
  | None ->
    failwith
      (Printf.sprintf "Sim: instance %s has unconnected port %s" inst.inst_name formal)

let prim_of (inst : Ast.instance) =
  match inst.master with
  | Ast.M_prim p -> p
  | Ast.M_module _ -> assert false

(* Topological sort of combinational instances (Kahn).  Sources are
   module inputs, constants and sequential outputs. *)
let comb_topo_order (m : Ast.module_def) comb =
  let n = Array.length comb in
  if n = 0 then [||]
  else begin
  (* net -> index of the comb instance driving it *)
  let comb_driver = Hashtbl.create 64 in
  Array.iteri
    (fun i (inst : Ast.instance) ->
      let ports = Ast.prim_ports (prim_of inst) in
      List.iter
        (fun (c : Ast.conn) ->
          match List.find_opt (fun (p : Ast.port) -> p.port_name = c.formal) ports with
          | Some { dir = Ast.Output; _ } -> Hashtbl.replace comb_driver c.actual i
          | Some { dir = Ast.Input; _ } | None -> ())
        inst.conns)
    comb;
  let deps = Array.make (max 1 n) [] in
  let indeg = Array.make (max 1 n) 0 in
  let dependents = Array.make (max 1 n) [] in
  Array.iteri
    (fun i (inst : Ast.instance) ->
      let ports = Ast.prim_ports (prim_of inst) in
      List.iter
        (fun (c : Ast.conn) ->
          match List.find_opt (fun (p : Ast.port) -> p.port_name = c.formal) ports with
          | Some { dir = Ast.Input; _ } -> (
            match Hashtbl.find_opt comb_driver c.actual with
            | Some j when j <> i -> deps.(i) <- j :: deps.(i)
            | Some _ | None -> ())
          | Some { dir = Ast.Output; _ } | None -> ())
        inst.conns)
    comb;
  Array.iteri
    (fun i ds ->
      let ds = List.sort_uniq compare ds in
      deps.(i) <- ds;
      indeg.(i) <- List.length ds;
      List.iter (fun j -> dependents.(j) <- i :: dependents.(j)) ds)
    deps;
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indeg;
  let order = ref [] in
  let emitted = ref 0 in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    order := i :: !order;
    incr emitted;
    List.iter
      (fun j ->
        indeg.(j) <- indeg.(j) - 1;
        if indeg.(j) = 0 then Queue.add j queue)
      dependents.(i)
  done;
  if !emitted <> n then
    failwith (Printf.sprintf "Sim: combinational cycle in module %s" m.mod_name);
  List.rev !order |> List.map (fun i -> comb.(i)) |> Array.of_list
  end

let create (m : Ast.module_def) =
  if not (Ast.is_basic m) then
    invalid_arg (Printf.sprintf "Sim.create: module %s is not basic" m.mod_name);
  let values = Hashtbl.create 64 in
  List.iter (fun (n : Ast.net) -> Hashtbl.replace values n.net_name (ref 0L)) m.nets;
  List.iter (fun (p : Ast.port) -> Hashtbl.replace values p.port_name (ref 0L)) m.ports;
  let comb, seq =
    List.partition
      (fun inst -> not (Ast.prim_is_sequential (prim_of inst)))
      m.instances
  in
  let comb_order = comb_topo_order m (Array.of_list comb) in
  let seq_insts =
    List.map
      (fun inst ->
        let state =
          match prim_of inst with
          | Ast.P_reg _ -> S_reg (ref 0L)
          | Ast.P_ram _ -> S_ram { mem = Hashtbl.create 64; rdata = 0L }
          | Ast.P_rom _ -> S_rom { rdata = 0L }
          | Ast.P_mac _ -> S_mac (ref 0L)
          | _ -> assert false
        in
        (inst, state))
      seq
    |> Array.of_list
  in
  let input_ports = List.filter (fun (p : Ast.port) -> p.dir = Ast.Input) m.ports in
  let output_ports = List.filter (fun (p : Ast.port) -> p.dir = Ast.Output) m.ports in
  { values; comb_order; seq_insts; input_ports; output_ports }

let reset t =
  Hashtbl.iter (fun _ r -> r := 0L) t.values;
  Array.iter
    (fun (_, state) ->
      match state with
      | S_reg r -> r := 0L
      | S_ram s ->
        Hashtbl.reset s.mem;
        s.rdata <- 0L
      | S_rom s -> s.rdata <- 0L
      | S_mac r -> r := 0L)
    t.seq_insts

let value t net =
  match Hashtbl.find_opt t.values net with
  | Some r -> !r
  | None -> failwith (Printf.sprintf "Sim: unknown net %s" net)

let set_net t net v =
  match Hashtbl.find_opt t.values net with
  | Some r -> r := v
  | None -> failwith (Printf.sprintf "Sim: unknown net %s" net)

let set_input t port v =
  match List.find_opt (fun (p : Ast.port) -> p.port_name = port) t.input_ports with
  | Some p -> set_net t port (mask p.width v)
  | None -> invalid_arg (Printf.sprintf "Sim.set_input: %s is not an input" port)

let get_output t port =
  match List.find_opt (fun (p : Ast.port) -> p.port_name = port) t.output_ports with
  | Some _ -> value t port
  | None -> invalid_arg (Printf.sprintf "Sim.get_output: %s is not an output" port)

let eval_comb t (inst : Ast.instance) =
  let get formal = value t (conn_net inst formal) in
  let put formal v = set_net t (conn_net inst formal) v in
  match prim_of inst with
  | Ast.P_and w -> put "o" (mask w (Int64.logand (get "a") (get "b")))
  | Ast.P_or w -> put "o" (mask w (Int64.logor (get "a") (get "b")))
  | Ast.P_xor w -> put "o" (mask w (Int64.logxor (get "a") (get "b")))
  | Ast.P_not w -> put "o" (mask w (Int64.lognot (get "a")))
  | Ast.P_mux w ->
    put "o" (mask w (if Int64.logand (get "sel") 1L = 1L then get "a" else get "b"))
  | Ast.P_add w -> put "o" (mask w (Int64.add (get "a") (get "b")))
  | Ast.P_sub w -> put "o" (mask w (Int64.sub (get "a") (get "b")))
  | Ast.P_mul w -> put "o" (mask w (Int64.mul (get "a") (get "b")))
  | Ast.P_const { width; value } -> put "o" (mask width (Int64.of_int value))
  | Ast.P_concat { wa = _; wb } ->
    put "o" (Int64.logor (Int64.shift_left (get "a") (min 63 wb)) (get "b"))
  | Ast.P_slice { lo; out_width; _ } ->
    put "o" (mask out_width (Int64.shift_right_logical (get "a") (min 63 lo)))
  | Ast.P_cmp_lt _ ->
    (* Unsigned comparison on masked non-negative words. *)
    put "o" (if Int64.unsigned_compare (get "a") (get "b") < 0 then 1L else 0L)
  | Ast.P_cmp_eq _ -> put "o" (if Int64.equal (get "a") (get "b") then 1L else 0L)
  | Ast.P_reg _ | Ast.P_ram _ | Ast.P_rom _ | Ast.P_mac _ -> assert false

let present t =
  Array.iter
    (fun ((inst : Ast.instance), state) ->
      let put formal v = set_net t (conn_net inst formal) v in
      match (prim_of inst, state) with
      | Ast.P_reg _, S_reg r -> put "q" !r
      | Ast.P_ram _, S_ram s -> put "rdata" s.rdata
      | Ast.P_rom _, S_rom s -> put "rdata" s.rdata
      | Ast.P_mac _, S_mac r -> put "o" !r
      | _ -> assert false)
    t.seq_insts

let latch t =
  Array.iter
    (fun ((inst : Ast.instance), state) ->
      let get formal = value t (conn_net inst formal) in
      match (prim_of inst, state) with
      | Ast.P_reg w, S_reg r -> r := mask w (get "d")
      | Ast.P_ram { words; width }, S_ram s ->
        let raddr = Int64.to_int (get "raddr") mod max 1 words in
        s.rdata <-
          (try Hashtbl.find s.mem raddr with Not_found -> 0L);
        if Int64.logand (get "wen") 1L = 1L then begin
          let waddr = Int64.to_int (get "waddr") mod max 1 words in
          Hashtbl.replace s.mem waddr (mask width (get "wdata"))
        end
      | Ast.P_rom { words; width }, S_rom s ->
        let raddr = Int64.to_int (get "raddr") mod max 1 words in
        s.rdata <- rom_word width raddr
      | Ast.P_mac w, S_mac r ->
        let acc = if Int64.logand (get "clr") 1L = 1L then 0L else !r in
        r := mask (min 64 (2 * w)) (Int64.add acc (Int64.mul (get "a") (get "b")))
      | _ -> assert false)
    t.seq_insts

let step t =
  present t;
  Array.iter (eval_comb t) t.comb_order;
  latch t

let inputs t = t.input_ports
let outputs t = t.output_ports
