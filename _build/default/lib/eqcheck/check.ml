open Mlv_rtl
module Rng = Mlv_util.Rng

type config = { restarts : int; cycles : int; seed : int }

let default_config = { restarts = 4; cycles = 48; seed = 0x5EED }

let interface_shape (m : Ast.module_def) =
  List.map (fun (p : Ast.port) -> (p.dir = Ast.Input, p.width)) m.ports
  |> List.sort compare

let simulate_equal config a b ports_a ports_b =
  let sim_a = Sim.create a and sim_b = Sim.create b in
  let in_a = List.filter (fun (p : Ast.port) -> p.dir = Ast.Input) ports_a in
  let in_b = List.filter (fun (p : Ast.port) -> p.dir = Ast.Input) ports_b in
  let out_a = List.filter (fun (p : Ast.port) -> p.dir = Ast.Output) ports_a in
  let out_b = List.filter (fun (p : Ast.port) -> p.dir = Ast.Output) ports_b in
  let ok = ref (List.length in_a = List.length in_b && List.length out_a = List.length out_b) in
  let episode ep =
    Sim.reset sim_a;
    Sim.reset sim_b;
    let rng = Rng.create (config.seed + (ep * 7919)) in
    for _cycle = 1 to config.cycles do
      if !ok then begin
        List.iter2
          (fun (pa : Ast.port) (pb : Ast.port) ->
            let v = Rng.bits64 rng in
            Sim.set_input sim_a pa.port_name v;
            Sim.set_input sim_b pb.port_name v)
          in_a in_b;
        Sim.step sim_a;
        Sim.step sim_b;
        List.iter2
          (fun (pa : Ast.port) (pb : Ast.port) ->
            if
              not
                (Int64.equal
                   (Sim.get_output sim_a pa.port_name)
                   (Sim.get_output sim_b pb.port_name))
            then ok := false)
          out_a out_b
      end
    done
  in
  for ep = 1 to config.restarts do
    if !ok then episode ep
  done;
  !ok

let modules_equivalent ?(config = default_config) a b =
  interface_shape a = interface_shape b
  && Sig_hash.signature a = Sig_hash.signature b
  && simulate_equal config a b (Sig_hash.canonical_ports a) (Sig_hash.canonical_ports b)

let equivalent ?(config = default_config) design name_a name_b =
  if name_a = name_b then true
  else begin
    let a = Extract.flatten design name_a in
    let b = Extract.flatten design name_b in
    modules_equivalent ~config a b
  end
