(** Word-level functional simulator for basic modules.

    Nets carry up-to-64-bit words (wider buses are truncated to 64
    bits — consistently for all circuits under comparison, which is
    all the equivalence checker needs).  Sequential primitives
    (registers, RAM/ROM, MAC accumulators) hold state between
    clock steps; combinational primitives are evaluated in
    topological order. *)

open Mlv_rtl

type t

(** [create m] builds a simulator instance for basic module [m].
    @raise Invalid_argument if [m] instantiates user modules.
    @raise Failure on combinational cycles. *)
val create : Ast.module_def -> t

(** [reset t] zeroes all state and nets. *)
val reset : t -> unit

(** [set_input t port v] drives input [port] for the upcoming step.
    @raise Invalid_argument on unknown or non-input ports. *)
val set_input : t -> string -> int64 -> unit

(** [step t] performs one clock cycle: presents sequential state,
    propagates combinational logic, then latches next state. *)
val step : t -> unit

(** [get_output t port] reads output [port] as of the last [step].
    @raise Invalid_argument on unknown or non-output ports. *)
val get_output : t -> string -> int64

(** [inputs t] / [outputs t] list the ports in declaration order. *)
val inputs : t -> Ast.port list

val outputs : t -> Ast.port list
