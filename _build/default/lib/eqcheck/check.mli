(** Equivalence checking of RTL modules (paper §2.2.1, step 2).

    The check is two-phase: a structural signature comparison
    ({!Sig_hash}) prunes obvious mismatches, then random simulation
    ({!Sim}) over the canonical port correspondence confirms.  False
    negatives (reporting inequivalence for an equivalent pair) only
    cost extracted parallelism; false positives are what matter, and
    the simulation phase makes them vanishingly unlikely for
    word-level datapaths. *)

open Mlv_rtl

(** Simulation effort knobs. *)
type config = {
  restarts : int;  (** independent random episodes (state reset) *)
  cycles : int;  (** clock steps per episode *)
  seed : int;  (** base PRNG seed *)
}

(** Reasonable defaults: 4 restarts of 48 cycles. *)
val default_config : config

(** [modules_equivalent ?config a b] decides equivalence of two basic
    modules up to renaming of ports, nets and instances.
    @raise Invalid_argument if either module is not basic. *)
val modules_equivalent : ?config:config -> Ast.module_def -> Ast.module_def -> bool

(** [equivalent ?config design a b] flattens modules named [a] and [b]
    in [design] and compares them.
    @raise Failure if either name is unknown. *)
val equivalent : ?config:config -> Design.t -> string -> string -> bool
