open Mlv_rtl

(* Shape of a primitive: its constructor and static parameters, which
   is exactly what polymorphic hash gives us on the prim value. *)
let prim_shape (p : Ast.prim) = Hashtbl.hash p

let check_basic (m : Ast.module_def) =
  if not (Ast.is_basic m) then
    invalid_arg
      (Printf.sprintf "Sig_hash: module %s is not basic (flatten it first)" m.mod_name)

(* Colour refinement.  Nets and instances carry colours; each round,
   a net's colour absorbs the sorted colours of its driver and sink
   pins (tagged with the formal port name so that e.g. the a and b
   pins of a subtractor stay distinguishable), and an instance's
   colour absorbs the colours of its connected nets per formal. *)
let refine (m : Ast.module_def) ~rounds =
  let net_color : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let seed_net name width is_input is_output =
    Hashtbl.replace net_color name (Hashtbl.hash (width, is_input, is_output))
  in
  List.iter (fun (n : Ast.net) -> seed_net n.net_name n.net_width false false) m.nets;
  List.iter
    (fun (p : Ast.port) ->
      seed_net p.port_name p.width (p.dir = Ast.Input) (p.dir = Ast.Output))
    m.ports;
  let insts = Array.of_list m.instances in
  let inst_color =
    Array.map
      (fun (inst : Ast.instance) ->
        match inst.master with
        | Ast.M_prim p -> prim_shape p
        | Ast.M_module _ -> assert false)
      insts
  in
  (* net -> list of (formal, instance index) pin references *)
  let net_pins : (string, (string * int) list) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun i (inst : Ast.instance) ->
      List.iter
        (fun (c : Ast.conn) ->
          let cur = try Hashtbl.find net_pins c.actual with Not_found -> [] in
          Hashtbl.replace net_pins c.actual ((c.formal, i) :: cur))
        inst.conns)
    insts;
  for _round = 1 to rounds do
    (* Nets first, from the instance colours of their pins. *)
    let new_net_colors =
      Hashtbl.fold
        (fun net color acc ->
          let pins = try Hashtbl.find net_pins net with Not_found -> [] in
          let pin_colors =
            List.map (fun (formal, i) -> Hashtbl.hash (formal, inst_color.(i))) pins
            |> List.sort compare
          in
          (net, Hashtbl.hash (color, pin_colors)) :: acc)
        net_color []
    in
    List.iter (fun (net, c) -> Hashtbl.replace net_color net c) new_net_colors;
    (* Then instances, from their connected net colours per formal. *)
    Array.iteri
      (fun i (inst : Ast.instance) ->
        let conn_colors =
          List.map
            (fun (c : Ast.conn) ->
              (c.formal, try Hashtbl.find net_color c.actual with Not_found -> 0))
            inst.conns
          |> List.sort compare
        in
        inst_color.(i) <- Hashtbl.hash (inst_color.(i), conn_colors))
      insts
  done;
  (net_color, inst_color)

let default_rounds = 6

let signature (m : Ast.module_def) =
  check_basic m;
  let net_color, inst_color = refine m ~rounds:default_rounds in
  let inst_colors = Array.to_list inst_color |> List.sort compare in
  let port_colors =
    List.map
      (fun (p : Ast.port) ->
        (p.dir = Ast.Input, p.width, Hashtbl.find net_color p.port_name))
      m.ports
    |> List.sort compare
  in
  (* Dangling nets (no pins) are semantically irrelevant; only the
     instance and port colours define the signature. *)
  Hashtbl.hash (inst_colors, port_colors)

let canonical_ports (m : Ast.module_def) =
  check_basic m;
  let net_color, _ = refine m ~rounds:default_rounds in
  let key (p : Ast.port) =
    let dir_rank = match p.dir with Ast.Input -> 0 | Ast.Output -> 1 in
    (dir_rank, p.width, Hashtbl.find net_color p.port_name, p.port_name)
  in
  List.sort (fun a b -> compare (key a) (key b)) m.ports
