lib/eqcheck/check.mli: Ast Design Mlv_rtl
