lib/eqcheck/sim.mli: Ast Mlv_rtl
