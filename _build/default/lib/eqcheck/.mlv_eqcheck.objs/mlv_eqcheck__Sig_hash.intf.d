lib/eqcheck/sig_hash.mli: Ast Mlv_rtl
