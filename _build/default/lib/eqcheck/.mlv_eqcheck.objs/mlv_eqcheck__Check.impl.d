lib/eqcheck/check.ml: Ast Extract Int64 List Mlv_rtl Mlv_util Sig_hash Sim
