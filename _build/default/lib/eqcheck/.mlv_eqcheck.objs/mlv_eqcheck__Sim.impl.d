lib/eqcheck/sim.ml: Array Ast Hashtbl Int64 List Mlv_rtl Printf Queue
