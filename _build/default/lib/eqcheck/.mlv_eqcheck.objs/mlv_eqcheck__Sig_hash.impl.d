lib/eqcheck/sig_hash.ml: Array Ast Hashtbl List Mlv_rtl Printf
