(** Structural signatures of basic modules.

    A signature is invariant under renaming of nets and instances: it
    is computed by Weisfeiler-Lehman-style colour refinement over the
    bipartite instance/net graph, seeded with primitive shapes and
    net widths.  Equal signatures are a strong (but not
    sound-complete) indication of structural isomorphism; the
    decomposer always confirms with random simulation ({!Simeq}). *)

open Mlv_rtl

(** [signature m] is the structural hash of basic module [m].
    @raise Invalid_argument if [m] instantiates user modules. *)
val signature : Ast.module_def -> int

(** [canonical_ports m] orders [m]'s ports canonically: inputs before
    outputs, then by width, then by the final WL colour of the port's
    net, then by name.  Two isomorphic modules receive compatible
    orders (up to colour ties), giving the simulation step its port
    correspondence. *)
val canonical_ports : Ast.module_def -> Ast.port list
