let master_ports design (inst : Ast.instance) =
  match inst.master with
  | Ast.M_prim p -> Ast.prim_ports p
  | Ast.M_module name -> (
    match Design.find design name with
    | Some m -> m.ports
    | None -> failwith (Printf.sprintf "Extract: unknown master %s" name))

(* Per-net driver/sink instance indices; -1 encodes the module
   boundary (an input port drives its net, an output port sinks it). *)
let net_users design (m : Ast.module_def) =
  let tbl : (string, int list * int list) Hashtbl.t = Hashtbl.create 64 in
  let add_driver net i =
    let d, s = try Hashtbl.find tbl net with Not_found -> ([], []) in
    Hashtbl.replace tbl net (i :: d, s)
  in
  let add_sink net i =
    let d, s = try Hashtbl.find tbl net with Not_found -> ([], []) in
    Hashtbl.replace tbl net (d, i :: s)
  in
  List.iter
    (fun (p : Ast.port) ->
      match p.dir with
      | Ast.Input -> add_driver p.port_name (-1)
      | Ast.Output -> add_sink p.port_name (-1))
    m.ports;
  List.iteri
    (fun i (inst : Ast.instance) ->
      let ports = master_ports design inst in
      List.iter
        (fun (c : Ast.conn) ->
          match List.find_opt (fun (p : Ast.port) -> p.port_name = c.formal) ports with
          | None ->
            failwith (Printf.sprintf "Extract: no port %s on %s" c.formal inst.inst_name)
          | Some p -> (
            match p.dir with
            | Ast.Input -> add_sink c.actual i
            | Ast.Output -> add_driver c.actual i))
        inst.conns)
    m.instances;
  tbl

let component ~name design (parent : Ast.module_def) indices =
  let inside = Hashtbl.create 16 in
  List.iter (fun i -> Hashtbl.replace inside i ()) indices;
  let users = net_users design parent in
  let inputs = ref [] and outputs = ref [] and internal = ref [] in
  Hashtbl.iter
    (fun net (drivers, sinks) ->
      let driven_inside = List.exists (fun i -> i >= 0 && Hashtbl.mem inside i) drivers in
      let sunk_inside = List.exists (fun i -> i >= 0 && Hashtbl.mem inside i) sinks in
      let driven_outside =
        List.exists (fun i -> i = -1 || not (Hashtbl.mem inside i)) drivers
      in
      let sunk_outside =
        List.exists (fun i -> i = -1 || not (Hashtbl.mem inside i)) sinks
      in
      let width = Ast.net_width parent net in
      if sunk_inside && (not driven_inside) && driven_outside then
        inputs := (net, width) :: !inputs
      else if driven_inside && sunk_outside then outputs := (net, width) :: !outputs
      else if driven_inside && sunk_inside then internal := (net, width) :: !internal)
    users;
  let sort = List.sort (fun (a, _) (b, _) -> compare a b) in
  let ports =
    List.map (fun (n, w) -> { Ast.port_name = n; dir = Ast.Input; width = w }) (sort !inputs)
    @ List.map
        (fun (n, w) -> { Ast.port_name = n; dir = Ast.Output; width = w })
        (sort !outputs)
  in
  let nets =
    List.map (fun (n, w) -> { Ast.net_name = n; net_width = w }) (sort !internal)
  in
  let all = Array.of_list parent.instances in
  let instances =
    List.sort compare indices |> List.map (fun i -> all.(i))
  in
  { Ast.mod_name = name; ports; nets; instances; attrs = [] }

let flatten design top_name =
  let top =
    match Design.find design top_name with
    | Some m -> m
    | None -> failwith (Printf.sprintf "Extract.flatten: unknown module %s" top_name)
  in
  let nets = ref [] in
  let instances = ref [] in
  (* [env] maps a module's local net/port names to flattened names. *)
  let rec inline prefix (m : Ast.module_def) env =
    let resolve local =
      match Hashtbl.find_opt env local with
      | Some flat -> flat
      | None -> failwith (Printf.sprintf "Extract.flatten: unresolved net %s" local)
    in
    List.iter
      (fun (n : Ast.net) ->
        let flat = prefix ^ n.net_name in
        Hashtbl.replace env n.net_name flat;
        nets := { Ast.net_name = flat; net_width = n.net_width } :: !nets)
      m.nets;
    List.iter
      (fun (inst : Ast.instance) ->
        match inst.master with
        | Ast.M_prim _ ->
          let conns =
            List.map (fun (c : Ast.conn) -> { c with actual = resolve c.actual }) inst.conns
          in
          instances :=
            { inst with inst_name = prefix ^ inst.inst_name; conns } :: !instances
        | Ast.M_module child_name ->
          let child = Design.find_exn design child_name in
          let child_env = Hashtbl.create 16 in
          List.iter
            (fun (c : Ast.conn) -> Hashtbl.replace child_env c.formal (resolve c.actual))
            inst.conns;
          (* Unconnected child ports get a fresh dangling net. *)
          List.iter
            (fun (p : Ast.port) ->
              if not (Hashtbl.mem child_env p.port_name) then begin
                let flat = prefix ^ inst.inst_name ^ "$" ^ p.port_name in
                Hashtbl.replace child_env p.port_name flat;
                nets := { Ast.net_name = flat; net_width = p.width } :: !nets
              end)
            child.ports;
          inline (prefix ^ inst.inst_name ^ "$") child child_env)
      m.instances
  in
  let env = Hashtbl.create 16 in
  List.iter (fun (p : Ast.port) -> Hashtbl.replace env p.port_name p.port_name) top.ports;
  inline "" top env;
  {
    Ast.mod_name = top.mod_name;
    ports = top.ports;
    nets = List.rev !nets;
    instances = List.rev !instances;
    attrs = top.attrs;
  }
