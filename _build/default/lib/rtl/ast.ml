type direction = Input | Output
type port = { port_name : string; dir : direction; width : int }

type prim =
  | P_and of int
  | P_or of int
  | P_xor of int
  | P_not of int
  | P_mux of int
  | P_add of int
  | P_sub of int
  | P_mul of int
  | P_mac of int
  | P_reg of int
  | P_ram of { words : int; width : int }
  | P_rom of { words : int; width : int }
  | P_const of { width : int; value : int }
  | P_concat of { wa : int; wb : int }
  | P_slice of { width : int; lo : int; out_width : int }
  | P_cmp_lt of int
  | P_cmp_eq of int

type master = M_module of string | M_prim of prim
type conn = { formal : string; actual : string }
type instance = { inst_name : string; master : master; conns : conn list }
type net = { net_name : string; net_width : int }

type module_def = {
  mod_name : string;
  ports : port list;
  nets : net list;
  instances : instance list;
  attrs : string list;
}

let prim_name = function
  | P_and _ -> "mlv_and"
  | P_or _ -> "mlv_or"
  | P_xor _ -> "mlv_xor"
  | P_not _ -> "mlv_not"
  | P_mux _ -> "mlv_mux"
  | P_add _ -> "mlv_add"
  | P_sub _ -> "mlv_sub"
  | P_mul _ -> "mlv_mul"
  | P_mac _ -> "mlv_mac"
  | P_reg _ -> "mlv_reg"
  | P_ram _ -> "mlv_ram"
  | P_rom _ -> "mlv_rom"
  | P_const _ -> "mlv_const"
  | P_concat _ -> "mlv_concat"
  | P_slice _ -> "mlv_slice"
  | P_cmp_lt _ -> "mlv_cmp_lt"
  | P_cmp_eq _ -> "mlv_cmp_eq"

let in_port name width = { port_name = name; dir = Input; width }
let out_port name width = { port_name = name; dir = Output; width }

let prim_ports = function
  | P_and w | P_or w | P_xor w -> [ in_port "a" w; in_port "b" w; out_port "o" w ]
  | P_not w -> [ in_port "a" w; out_port "o" w ]
  | P_mux w -> [ in_port "sel" 1; in_port "a" w; in_port "b" w; out_port "o" w ]
  | P_add w | P_sub w | P_mul w -> [ in_port "a" w; in_port "b" w; out_port "o" w ]
  | P_mac w -> [ in_port "a" w; in_port "b" w; in_port "clr" 1; out_port "o" (2 * w) ]
  | P_reg w -> [ in_port "d" w; out_port "q" w ]
  | P_ram { words; width } ->
    let addr_bits = max 1 (int_of_float (ceil (log (float_of_int words) /. log 2.0))) in
    [
      in_port "waddr" addr_bits;
      in_port "wdata" width;
      in_port "wen" 1;
      in_port "raddr" addr_bits;
      out_port "rdata" width;
    ]
  | P_rom { words; width } ->
    let addr_bits = max 1 (int_of_float (ceil (log (float_of_int words) /. log 2.0))) in
    [ in_port "raddr" addr_bits; out_port "rdata" width ]
  | P_const { width; _ } -> [ out_port "o" width ]
  | P_concat { wa; wb } -> [ in_port "a" wa; in_port "b" wb; out_port "o" (wa + wb) ]
  | P_slice { width; out_width; _ } -> [ in_port "a" width; out_port "o" out_width ]
  | P_cmp_lt w | P_cmp_eq w -> [ in_port "a" w; in_port "b" w; out_port "o" 1 ]

let prim_is_sequential = function
  | P_reg _ | P_ram _ | P_rom _ | P_mac _ -> true
  | P_and _ | P_or _ | P_xor _ | P_not _ | P_mux _ | P_add _ | P_sub _ | P_mul _
  | P_const _ | P_concat _ | P_slice _ | P_cmp_lt _ | P_cmp_eq _ -> false

let find_port m name = List.find_opt (fun p -> p.port_name = name) m.ports

let net_width m name =
  match List.find_opt (fun n -> n.net_name = name) m.nets with
  | Some n -> n.net_width
  | None -> (
    match find_port m name with
    | Some p -> p.width
    | None -> raise Not_found)

let is_basic m =
  List.for_all
    (fun inst -> match inst.master with M_module _ -> false | M_prim _ -> true)
    m.instances

let pp_prim fmt p =
  match p with
  | P_ram { words; width } -> Format.fprintf fmt "mlv_ram(%dx%d)" words width
  | P_rom { words; width } -> Format.fprintf fmt "mlv_rom(%dx%d)" words width
  | P_const { width; value } -> Format.fprintf fmt "mlv_const(%d'%d)" width value
  | P_slice { width; lo; out_width } ->
    Format.fprintf fmt "mlv_slice(%d[%d+:%d])" width lo out_width
  | P_concat { wa; wb } -> Format.fprintf fmt "mlv_concat(%d,%d)" wa wb
  | P_and w | P_or w | P_xor w | P_not w | P_mux w | P_add w | P_sub w | P_mul w
  | P_mac w | P_reg w | P_cmp_lt w | P_cmp_eq w ->
    Format.fprintf fmt "%s(%d)" (prim_name p) w
