(** A design is a table of RTL modules with hierarchy queries,
    validation and flattened primitive censuses. *)

type t

(** [create ()] is an empty design. *)
val create : unit -> t

(** [add t m] registers module [m].
    @raise Invalid_argument if a module of that name already exists. *)
val add : t -> Ast.module_def -> unit

(** [of_modules ms] builds a design from a list of modules. *)
val of_modules : Ast.module_def list -> t

(** [find t name] looks up a module. *)
val find : t -> string -> Ast.module_def option

(** [find_exn t name] looks up a module.
    @raise Not_found if absent. *)
val find_exn : t -> string -> Ast.module_def

(** [mem t name] tests for presence. *)
val mem : t -> string -> bool

(** [modules t] lists modules in registration order. *)
val modules : t -> Ast.module_def list

(** [top t] is the unique module never instantiated by another.
    @raise Failure if there is no unique top. *)
val top : t -> Ast.module_def

(** [validate t] checks that every instantiated master exists, every
    connection binds an existing formal port to an existing net/port of
    matching width, and the hierarchy is acyclic.  Returns the list of
    human-readable errors (empty when valid). *)
val validate : t -> string list

(** [children t name] is the list of distinct user-module masters
    instantiated by [name]. *)
val children : t -> string -> string list

(** [topo_order t] lists module names so that each module appears
    after all modules it instantiates (leaves first).
    @raise Failure on hierarchy cycles. *)
val topo_order : t -> string list

(** [prim_census t name] is the flattened multiset of primitives
    reachable from module [name], as (primitive, count) pairs. *)
val prim_census : t -> string -> (Ast.prim * int) list

(** [flat_instance_count t name] is the total number of primitive
    instances under [name] after full flattening. *)
val flat_instance_count : t -> string -> int

(** [basic_modules t] lists the names of basic modules (those that
    instantiate no user modules), in registration order. *)
val basic_modules : t -> string list
