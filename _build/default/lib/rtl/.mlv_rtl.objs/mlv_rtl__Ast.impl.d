lib/rtl/ast.ml: Format List
