lib/rtl/design.ml: Ast Hashtbl List Printf String
