lib/rtl/extract.mli: Ast Design
