lib/rtl/parser.ml: Array Ast Design Hashtbl Lexer List Printf String
