lib/rtl/graph.mli: Ast Design
