lib/rtl/parser.mli: Design
