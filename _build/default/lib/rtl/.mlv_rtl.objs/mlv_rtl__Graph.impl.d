lib/rtl/graph.ml: Array Ast Design Hashtbl List Mlv_util Printf
