lib/rtl/printer.ml: Ast Buffer Design List Printf String
