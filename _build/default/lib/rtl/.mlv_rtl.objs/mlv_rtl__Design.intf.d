lib/rtl/design.mli: Ast
