lib/rtl/printer.mli: Ast Design
