lib/rtl/transform.ml: Array Ast Hashtbl List Option Printf
