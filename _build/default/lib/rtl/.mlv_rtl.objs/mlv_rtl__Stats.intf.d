lib/rtl/stats.mli: Design Format
