lib/rtl/lexer.mli:
