lib/rtl/extract.ml: Array Ast Design Hashtbl List Printf
