lib/rtl/stats.ml: Ast Design Format Hashtbl List
