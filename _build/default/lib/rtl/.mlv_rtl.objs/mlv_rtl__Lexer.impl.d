lib/rtl/lexer.ml: Buffer List Printf String
