lib/rtl/transform.mli: Ast
