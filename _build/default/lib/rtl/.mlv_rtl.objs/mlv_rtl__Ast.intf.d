lib/rtl/ast.mli: Format
