(** Recursive-descent parser for a structural Verilog subset.

    Accepted constructs:
    - [module name (p1, p2, ...); ... endmodule], optionally preceded
      by an attribute such as [(* control_path *)];
    - [input]/[output]/[wire] declarations with an optional
      [\[msb:lsb\]] range and comma-separated names;
    - module instantiations with named port connections
      [master #(.P(42)) inst (.port(net), ...);] where masters named
      [mlv_*] denote built-in primitives;
    - parameterized modules [module name #(W = 8, D = 4) (ports...);]
      — instantiations monomorphize the template per parameter
      binding (the elaborated copy is named e.g. [name$W16$D4] and
      shared across identical instantiations); parameters may appear
      in declaration ranges and parameter values, which accept
      constant expressions over [+ - *] and parentheses;
    - [assign lhs = expr;] where [expr] ranges over identifiers,
      (sized) literals, [~ & | ^ + - * < ==], the ternary mux
      [c ? a : b], concatenation [{a, b}] and constant bit-selects
      [x\[msb:lsb\]] / [x\[i\]].  Assignments are lowered to primitive
      instances during parsing, so the resulting IR is purely
      structural. *)

(** [parse_string ?filename src] parses the given source text into a
    design.  Returns [Error msg] with a line-located message on
    lexical, syntactic or width errors. *)
val parse_string : ?filename:string -> string -> (Design.t, string) result

(** [parse_file path] reads and parses [path]. *)
val parse_file : string -> (Design.t, string) result
