module Union_find = Mlv_util.Union_find

type t = {
  insts : Ast.instance array;
  name_index : (string, int) Hashtbl.t;
  (* (src, dst) -> aggregated bits *)
  edge_tbl : (int * int, int) Hashtbl.t;
  succs : int list array;
  preds : int list array;
  reads_port : bool array;
  writes_port : bool array;
  (* net -> (drivers, sinks); -1 encodes the module boundary *)
  net_users : (string, int list * int list) Hashtbl.t;
  port_nets : (string, unit) Hashtbl.t;
}

let master_ports design (inst : Ast.instance) =
  match inst.master with
  | Ast.M_prim p -> Ast.prim_ports p
  | Ast.M_module name -> (
    match Design.find design name with
    | Some m -> m.ports
    | None -> failwith (Printf.sprintf "Graph.build: unknown master %s" name))

let build design (m : Ast.module_def) =
  let insts = Array.of_list m.instances in
  let n = Array.length insts in
  let name_index = Hashtbl.create (max 16 n) in
  Array.iteri (fun i (inst : Ast.instance) -> Hashtbl.replace name_index inst.inst_name i) insts;
  let port_nets = Hashtbl.create 16 in
  List.iter (fun (p : Ast.port) -> Hashtbl.replace port_nets p.port_name ()) m.ports;
  (* Collect per-net drivers and sinks.  The module's input ports are
     drivers of their nets; output ports are sinks (encoded as -1). *)
  let net_users : (string, int list * int list) Hashtbl.t = Hashtbl.create 64 in
  let add_driver net i =
    let d, s = try Hashtbl.find net_users net with Not_found -> ([], []) in
    Hashtbl.replace net_users net (i :: d, s)
  in
  let add_sink net i =
    let d, s = try Hashtbl.find net_users net with Not_found -> ([], []) in
    Hashtbl.replace net_users net (d, i :: s)
  in
  List.iter
    (fun (p : Ast.port) ->
      match p.dir with
      | Ast.Input -> add_driver p.port_name (-1)
      | Ast.Output -> add_sink p.port_name (-1))
    m.ports;
  Array.iteri
    (fun i (inst : Ast.instance) ->
      let ports = master_ports design inst in
      List.iter
        (fun (c : Ast.conn) ->
          match List.find_opt (fun (p : Ast.port) -> p.port_name = c.formal) ports with
          | None -> failwith (Printf.sprintf "Graph.build: no port %s on %s" c.formal inst.inst_name)
          | Some p -> (
            match p.dir with
            | Ast.Input -> add_sink c.actual i
            | Ast.Output -> add_driver c.actual i))
        inst.conns)
    insts;
  let edge_tbl = Hashtbl.create 64 in
  let reads_port = Array.make (max 1 n) false in
  let writes_port = Array.make (max 1 n) false in
  Hashtbl.iter
    (fun net (drivers, sinks) ->
      let width = try Ast.net_width m net with Not_found -> 0 in
      List.iter
        (fun d ->
          List.iter
            (fun s ->
              if d = -1 && s >= 0 then reads_port.(s) <- true
              else if d >= 0 && s = -1 then writes_port.(d) <- true
              else if d >= 0 && s >= 0 && d <> s then begin
                let cur = try Hashtbl.find edge_tbl (d, s) with Not_found -> 0 in
                Hashtbl.replace edge_tbl (d, s) (cur + width)
              end)
            sinks)
        drivers)
    net_users;
  let succs = Array.make (max 1 n) [] in
  let preds = Array.make (max 1 n) [] in
  Hashtbl.iter
    (fun (d, s) _ ->
      succs.(d) <- s :: succs.(d);
      preds.(s) <- d :: preds.(s))
    edge_tbl;
  Array.iteri (fun i l -> succs.(i) <- List.sort_uniq compare l) succs;
  Array.iteri (fun i l -> preds.(i) <- List.sort_uniq compare l) preds;
  { insts; name_index; edge_tbl; succs; preds; reads_port; writes_port; net_users; port_nets }

let node_count t = Array.length t.insts
let instance t i = t.insts.(i)
let index_of t name = Hashtbl.find_opt t.name_index name

let edges t =
  Hashtbl.fold (fun (s, d) w acc -> (s, d, w) :: acc) t.edge_tbl []
  |> List.sort compare

let edge_weight t a b = try Hashtbl.find t.edge_tbl (a, b) with Not_found -> 0
let succs t i = t.succs.(i)
let preds t i = t.preds.(i)
let reads_port t i = t.reads_port.(i)
let writes_port t i = t.writes_port.(i)

let components ?(include_port_nets = false) t =
  let n = node_count t in
  if n = 0 then []
  else begin
    let uf = Union_find.create n in
    Hashtbl.iter
      (fun net (drivers, sinks) ->
        if include_port_nets || not (Hashtbl.mem t.port_nets net) then begin
          let members = List.filter (fun i -> i >= 0) (drivers @ sinks) in
          match members with
          | [] -> ()
          | first :: rest -> List.iter (fun i -> ignore (Union_find.union uf first i)) rest
        end)
      t.net_users;
    Union_find.groups uf |> List.map snd
  end
