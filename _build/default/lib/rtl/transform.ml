let check_basic (m : Ast.module_def) =
  if not (Ast.is_basic m) then
    invalid_arg (Printf.sprintf "Transform: module %s is not basic" m.Ast.mod_name)

let mask width v =
  if width >= 63 then v else v land ((1 lsl width) - 1)

let conn_net (inst : Ast.instance) formal =
  match List.find_opt (fun (c : Ast.conn) -> c.Ast.formal = formal) inst.Ast.conns with
  | Some c -> Some c.Ast.actual
  | None -> None

let prim_of (inst : Ast.instance) =
  match inst.Ast.master with Ast.M_prim p -> p | Ast.M_module _ -> assert false

(* Evaluate a combinational primitive over known-constant inputs.
   Returns (output formal, width, value) or None when not foldable. *)
let fold_prim value_of (inst : Ast.instance) =
  let v formal = Option.bind (conn_net inst formal) value_of in
  let open Ast in
  match prim_of inst with
  | P_and w -> (
    match (v "a", v "b") with
    | Some a, Some b -> Some ("o", w, mask w (a land b))
    | _ -> None)
  | P_or w -> (
    match (v "a", v "b") with
    | Some a, Some b -> Some ("o", w, mask w (a lor b))
    | _ -> None)
  | P_xor w -> (
    match (v "a", v "b") with
    | Some a, Some b -> Some ("o", w, mask w (a lxor b))
    | _ -> None)
  | P_not w -> (
    match v "a" with Some a -> Some ("o", w, mask w (lnot a)) | None -> None)
  | P_mux w -> (
    match (v "sel", v "a", v "b") with
    | Some s, Some a, Some b -> Some ("o", w, mask w (if s land 1 = 1 then a else b))
    | _ -> None)
  | P_add w -> (
    match (v "a", v "b") with
    | Some a, Some b -> Some ("o", w, mask w (a + b))
    | _ -> None)
  | P_sub w -> (
    match (v "a", v "b") with
    | Some a, Some b -> Some ("o", w, mask w (a - b))
    | _ -> None)
  | P_mul w -> (
    match (v "a", v "b") with
    | Some a, Some b -> Some ("o", w, mask w (a * b))
    | _ -> None)
  | P_cmp_lt _ -> (
    match (v "a", v "b") with
    | Some a, Some b -> Some ("o", 1, if a < b then 1 else 0)
    | _ -> None)
  | P_cmp_eq _ -> (
    match (v "a", v "b") with
    | Some a, Some b -> Some ("o", 1, if a = b then 1 else 0)
    | _ -> None)
  | P_concat { wa; wb } -> (
    match (v "a", v "b") with
    | Some a, Some b when wa + wb < 62 -> Some ("o", wa + wb, (a lsl wb) lor b)
    | _ -> None)
  | P_slice { lo; out_width; _ } -> (
    match v "a" with
    | Some a when lo < 62 -> Some ("o", out_width, mask out_width (a lsr lo))
    | _ -> None)
  (* State-holding primitives never fold. *)
  | P_reg _ | P_ram _ | P_rom _ | P_mac _ | P_const _ -> None

let constant_fold (m : Ast.module_def) =
  check_basic m;
  (* Net -> constant value, seeded by const drivers; iterate. *)
  let const_nets : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (inst : Ast.instance) ->
      match prim_of inst with
      | Ast.P_const { value; width } -> (
        match conn_net inst "o" with
        | Some net -> Hashtbl.replace const_nets net (mask width value)
        | None -> ())
      | _ -> ())
    m.Ast.instances;
  let value_of net = Hashtbl.find_opt const_nets net in
  let folded : (string, int * int) Hashtbl.t = Hashtbl.create 16 in
  (* inst_name -> (width, value) *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (inst : Ast.instance) ->
        if not (Hashtbl.mem folded inst.Ast.inst_name) then begin
          match prim_of inst with
          | Ast.P_const _ -> ()
          | _ -> (
            match fold_prim value_of inst with
            | Some (formal, width, value) -> (
              match conn_net inst formal with
              | Some net ->
                Hashtbl.replace folded inst.Ast.inst_name (width, value);
                Hashtbl.replace const_nets net value;
                changed := true
              | None -> ())
            | None -> ())
        end)
      m.Ast.instances
  done;
  let instances =
    List.map
      (fun (inst : Ast.instance) ->
        match Hashtbl.find_opt folded inst.Ast.inst_name with
        | Some (width, value) ->
          let out = Option.get (conn_net inst "o") in
          {
            Ast.inst_name = inst.Ast.inst_name;
            master = Ast.M_prim (Ast.P_const { width; value });
            conns = [ { Ast.formal = "o"; actual = out } ];
          }
        | None -> inst)
      m.Ast.instances
  in
  { m with Ast.instances }

let dead_prims (m : Ast.module_def) =
  check_basic m;
  (* Backward reachability from output ports over driver edges. *)
  let live_nets : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (p : Ast.port) ->
      if p.Ast.dir = Ast.Output then Hashtbl.replace live_nets p.Ast.port_name ())
    m.Ast.ports;
  let insts = Array.of_list m.Ast.instances in
  let live_inst = Array.make (Array.length insts) false in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun i (inst : Ast.instance) ->
        if not live_inst.(i) then begin
          let ports = Ast.prim_ports (prim_of inst) in
          let drives_live =
            List.exists
              (fun (c : Ast.conn) ->
                match List.find_opt (fun (q : Ast.port) -> q.Ast.port_name = c.Ast.formal) ports with
                | Some { Ast.dir = Ast.Output; _ } -> Hashtbl.mem live_nets c.Ast.actual
                | _ -> false)
              inst.Ast.conns
          in
          if drives_live then begin
            live_inst.(i) <- true;
            changed := true;
            List.iter
              (fun (c : Ast.conn) ->
                match List.find_opt (fun (q : Ast.port) -> q.Ast.port_name = c.Ast.formal) ports with
                | Some { Ast.dir = Ast.Input; _ } ->
                  if not (Hashtbl.mem live_nets c.Ast.actual) then
                    Hashtbl.replace live_nets c.Ast.actual ()
                | _ -> ())
              inst.Ast.conns
          end
        end)
      insts
  done;
  let instances =
    Array.to_list insts |> List.filteri (fun i _ -> live_inst.(i))
  in
  let nets =
    List.filter (fun (n : Ast.net) -> Hashtbl.mem live_nets n.Ast.net_name) m.Ast.nets
  in
  { m with Ast.instances; nets }

let rec simplify m =
  let m' = dead_prims (constant_fold m) in
  if List.length m'.Ast.instances = List.length m.Ast.instances then m' else simplify m'

let removed ~before ~after =
  List.length before.Ast.instances - List.length after.Ast.instances
