(** Structural RTL intermediate representation.

    The decomposing tool of the framework (paper §2.2.1) consumes RTL
    rather than HLS or netlists: RTL is FPGA-independent, so the
    extracted parallel patterns can be reused across device types.
    This IR models exactly what the tool needs: a module hierarchy,
    port connectivity, and a fixed set of datapath primitives that
    carry enough information for resource estimation and
    random-simulation equivalence checking. *)

(** Port direction. *)
type direction = Input | Output

(** A module port: name, direction and bus width in bits. *)
type port = { port_name : string; dir : direction; width : int }

(** Leaf primitives.  Widths are in bits; they drive both the
    word-level simulator in [Mlv_eqcheck] and the resource model. *)
type prim =
  | P_and of int  (** bitwise and, width *)
  | P_or of int  (** bitwise or *)
  | P_xor of int  (** bitwise xor *)
  | P_not of int  (** bitwise not *)
  | P_mux of int  (** 2:1 mux: sel, a, b -> o *)
  | P_add of int  (** adder: a, b -> o *)
  | P_sub of int  (** subtractor *)
  | P_mul of int  (** multiplier (maps to DSP) *)
  | P_mac of int  (** multiply-accumulate (DSP, registered) *)
  | P_reg of int  (** flip-flop bank: d -> q *)
  | P_ram of { words : int; width : int }
      (** synchronous RAM: waddr, wdata, wen, raddr -> rdata *)
  | P_rom of { words : int; width : int }  (** raddr -> rdata *)
  | P_const of { width : int; value : int }  (** constant driver -> o *)
  | P_concat of { wa : int; wb : int }  (** a, b -> o = {a, b} *)
  | P_slice of { width : int; lo : int; out_width : int }
      (** a -> o = a[lo +: out_width] *)
  | P_cmp_lt of int  (** a, b -> o (1 bit) *)
  | P_cmp_eq of int  (** a, b -> o (1 bit) *)

(** What an instance instantiates: a user-defined module by name, or a
    primitive. *)
type master = M_module of string | M_prim of prim

(** One named port binding: [formal] is the master's port, [actual]
    the net in the enclosing module. *)
type conn = { formal : string; actual : string }

(** A module instance. *)
type instance = { inst_name : string; master : master; conns : conn list }

(** A net (wire) declaration. *)
type net = { net_name : string; net_width : int }

(** A module definition.  [attrs] carries free-form markers; the
    decomposer recognises ["control_path"] (paper §2.2.1: the designer
    marks control-path modules by name). *)
type module_def = {
  mod_name : string;
  ports : port list;
  nets : net list;
  instances : instance list;
  attrs : string list;
}

(** [prim_name p] is the canonical instance-master name used in the
    textual syntax, e.g. [P_add _ -> "mlv_add"]. *)
val prim_name : prim -> string

(** [prim_ports p] lists the primitive's ports in positional order. *)
val prim_ports : prim -> port list

(** [prim_is_sequential p] is true for state-holding primitives
    (registers, RAM/ROM, MAC). *)
val prim_is_sequential : prim -> bool

(** [find_port m name] looks up a port of [m]. *)
val find_port : module_def -> string -> port option

(** [net_width m name] is the declared width of net or port [name] in
    [m].
    @raise Not_found if no such net or port exists. *)
val net_width : module_def -> string -> int

(** [is_basic m] is true when [m] instantiates no user modules —
    the paper's definition of a basic module. *)
val is_basic : module_def -> bool

(** [pp_prim] and [pp_module_name] are formatters for diagnostics. *)
val pp_prim : Format.formatter -> prim -> unit
