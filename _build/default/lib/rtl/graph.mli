(** Instance-level connectivity graph of one module.

    Nodes are the module's instances; a directed edge [src -> dst]
    with weight [w] means nets totalling [w] bits are driven by [src]
    and consumed by [dst].  The decomposer uses connected components
    to find data-parallel lanes, and the partitioner uses edge weights
    as the communication-bandwidth proxy for its minimal-bandwidth
    cut (paper §2.2.2). *)

type t

(** [build design m] constructs the graph of [m].  Masters are looked
    up in [design] to determine port directions.
    @raise Failure on dangling references (run {!Design.validate}
    first for friendlier errors). *)
val build : Design.t -> Ast.module_def -> t

(** [node_count t] is the number of instances. *)
val node_count : t -> int

(** [instance t i] is the i-th instance (stable order = declaration
    order). *)
val instance : t -> int -> Ast.instance

(** [index_of t name] finds a node by instance name. *)
val index_of : t -> string -> int option

(** [edges t] lists directed edges as [(src, dst, bits)], aggregated
    per node pair. *)
val edges : t -> (int * int * int) list

(** [edge_weight t a b] is the aggregated bit width driven from [a]
    to [b] (0 when unconnected). *)
val edge_weight : t -> int -> int -> int

(** [succs t i] / [preds t i] are the distinct successor /
    predecessor node indices. *)
val succs : t -> int -> int list

val preds : t -> int -> int list

(** [reads_port t i] is true when instance [i] consumes a module
    input port directly; [writes_port t i] when it drives a module
    output port. *)
val reads_port : t -> int -> bool

val writes_port : t -> int -> bool

(** [components ?include_port_nets t] partitions nodes into connected
    components of the undirected graph.  By default nets that touch
    the module's ports do not join instances (broadcast inputs would
    otherwise merge independent data-parallel lanes); pass
    [~include_port_nets:true] to join through them as well.  Each
    component is sorted; components are sorted by first element. *)
val components : ?include_port_nets:bool -> t -> int list list
