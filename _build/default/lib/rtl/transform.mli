(** Semantics-preserving simplification of basic modules.

    Generated RTL (and HLS output in general) carries foldable
    constants and unobservable logic; running these passes before
    decomposition shrinks the block graph and the resource
    estimates without changing behaviour.

    - [constant_fold] evaluates combinational primitives whose inputs
      are all constant drivers and replaces them with constants;
    - [dead_prims] removes primitives whose outputs cannot reach a
      module output port;
    - [simplify] iterates both to a fixpoint.

    All three require a basic module and preserve its port
    interface. *)

(** [constant_fold m].
    @raise Invalid_argument if [m] is not basic. *)
val constant_fold : Ast.module_def -> Ast.module_def

(** [dead_prims m].
    @raise Invalid_argument if [m] is not basic. *)
val dead_prims : Ast.module_def -> Ast.module_def

(** [simplify m] = fixpoint of the above. *)
val simplify : Ast.module_def -> Ast.module_def

(** [removed ~before ~after] counts eliminated instances. *)
val removed : before:Ast.module_def -> after:Ast.module_def -> int
