type t = {
  table : (string, Ast.module_def) Hashtbl.t;
  mutable order : string list; (* reversed registration order *)
}

let create () = { table = Hashtbl.create 64; order = [] }

let add t (m : Ast.module_def) =
  if Hashtbl.mem t.table m.mod_name then
    invalid_arg (Printf.sprintf "Design.add: duplicate module %s" m.mod_name);
  Hashtbl.add t.table m.mod_name m;
  t.order <- m.mod_name :: t.order

let of_modules ms =
  let t = create () in
  List.iter (add t) ms;
  t

let find t name = Hashtbl.find_opt t.table name
let find_exn t name = Hashtbl.find t.table name
let mem t name = Hashtbl.mem t.table name

let modules t =
  List.rev_map (fun name -> Hashtbl.find t.table name) t.order

let children t name =
  match find t name with
  | None -> []
  | Some m ->
    let seen = Hashtbl.create 8 in
    List.filter_map
      (fun (inst : Ast.instance) ->
        match inst.master with
        | Ast.M_prim _ -> None
        | Ast.M_module master ->
          if Hashtbl.mem seen master then None
          else begin
            Hashtbl.add seen master ();
            Some master
          end)
      m.instances

let top t =
  let instantiated = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ (m : Ast.module_def) ->
      List.iter
        (fun (inst : Ast.instance) ->
          match inst.master with
          | Ast.M_module master -> Hashtbl.replace instantiated master ()
          | Ast.M_prim _ -> ())
        m.instances)
    t.table;
  let tops =
    List.filter (fun name -> not (Hashtbl.mem instantiated name)) (List.rev t.order)
  in
  match tops with
  | [ name ] -> find_exn t name
  | [] -> failwith "Design.top: no top module (hierarchy cycle?)"
  | names ->
    failwith
      (Printf.sprintf "Design.top: multiple top candidates: %s"
         (String.concat ", " names))

let topo_order t =
  (* Depth-first post-order over the hierarchy; leaves first. *)
  let visited = Hashtbl.create 64 in
  let in_stack = Hashtbl.create 64 in
  let out = ref [] in
  let rec visit name =
    if Hashtbl.mem in_stack name then
      failwith (Printf.sprintf "Design.topo_order: cycle through %s" name);
    if not (Hashtbl.mem visited name) then begin
      Hashtbl.add in_stack name ();
      List.iter (fun child -> if mem t child then visit child) (children t name);
      Hashtbl.remove in_stack name;
      Hashtbl.add visited name ();
      out := name :: !out
    end
  in
  List.iter visit (List.rev t.order);
  List.rev !out

let validate t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  (* Acyclicity (reported once, via topo_order). *)
  (try ignore (topo_order t) with Failure msg -> err "%s" msg);
  Hashtbl.iter
    (fun _ (m : Ast.module_def) ->
      List.iter
        (fun (inst : Ast.instance) ->
          let master_ports =
            match inst.master with
            | Ast.M_prim p -> Some (Ast.prim_ports p)
            | Ast.M_module name -> (
              match find t name with
              | Some def -> Some def.ports
              | None ->
                err "%s.%s: unknown master module %s" m.mod_name inst.inst_name name;
                None)
          in
          match master_ports with
          | None -> ()
          | Some ports ->
            List.iter
              (fun (c : Ast.conn) ->
                match List.find_opt (fun (p : Ast.port) -> p.port_name = c.formal) ports with
                | None ->
                  err "%s.%s: no formal port %s" m.mod_name inst.inst_name c.formal
                | Some p -> (
                  match Ast.net_width m c.actual with
                  | w when w <> p.width ->
                    err "%s.%s.%s: width mismatch (formal %d, net %s is %d)"
                      m.mod_name inst.inst_name c.formal p.width c.actual w
                  | _ -> ()
                  | exception Not_found ->
                    err "%s.%s.%s: unknown net %s" m.mod_name inst.inst_name c.formal
                      c.actual))
              inst.conns)
        m.instances)
    t.table;
  List.rev !errors

let prim_census t name =
  let memo : (string, (Ast.prim * int) list) Hashtbl.t = Hashtbl.create 64 in
  let merge into extra =
    List.fold_left
      (fun acc (p, n) ->
        let cur = try List.assoc p acc with Not_found -> 0 in
        (p, cur + n) :: List.remove_assoc p acc)
      into extra
  in
  let rec census name =
    match Hashtbl.find_opt memo name with
    | Some c -> c
    | None ->
      let m = find_exn t name in
      let c =
        List.fold_left
          (fun acc (inst : Ast.instance) ->
            match inst.master with
            | Ast.M_prim p -> merge acc [ (p, 1) ]
            | Ast.M_module child -> merge acc (census child))
          [] m.instances
      in
      Hashtbl.add memo name c;
      c
  in
  census name |> List.sort compare

let flat_instance_count t name =
  List.fold_left (fun acc (_, n) -> acc + n) 0 (prim_census t name)

let basic_modules t =
  List.filter_map
    (fun (m : Ast.module_def) -> if Ast.is_basic m then Some m.mod_name else None)
    (modules t)
