(** Design statistics for reports and the CLI. *)

type t = {
  modules : int;
  basic_modules : int;
  total_instances : int;  (** unflattened, across all modules *)
  flat_primitives : int;  (** flattened under the top module *)
  hierarchy_depth : int;  (** instantiation levels from the top *)
  prim_histogram : (string * int) list;
      (** flattened counts per primitive mnemonic, descending *)
}

(** [of_design design] computes statistics for the design's top
    module.
    @raise Failure when the design has no unique top. *)
val of_design : Design.t -> t

(** [pp] renders a short multi-line report. *)
val pp : Format.formatter -> t -> unit
