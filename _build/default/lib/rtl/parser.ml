type template = { tparams : (string * int) list; ttoks : Lexer.located array }

type state = {
  toks : Lexer.located array;
  mutable pos : int;
  mutable fresh : int; (* counter for generated net/instance names *)
  design : Design.t;
  templates : (string, template) Hashtbl.t;
}

exception Parse_error of string

let fail st msg =
  let line = if st.pos < Array.length st.toks then st.toks.(st.pos).line else 0 in
  raise (Parse_error (Printf.sprintf "line %d: %s" line msg))

let cur st = st.toks.(st.pos).tok
let advance st = st.pos <- st.pos + 1

let expect st tok =
  if cur st = tok then advance st
  else
    fail st
      (Printf.sprintf "expected %s but found %s" (Lexer.describe tok)
         (Lexer.describe (cur st)))

let accept st tok =
  if cur st = tok then begin
    advance st;
    true
  end
  else false

let ident st =
  match cur st with
  | Lexer.ID s ->
    advance st;
    s
  | t -> fail st (Printf.sprintf "expected identifier but found %s" (Lexer.describe t))

let integer st =
  match cur st with
  | Lexer.INT n ->
    advance st;
    n
  | t -> fail st (Printf.sprintf "expected integer but found %s" (Lexer.describe t))

(* Constant expressions: +, -, * and parentheses over integers.
   Identifiers are rejected here — template parameters have already
   been substituted by the time these positions are parsed. *)
let rec const_expr st = const_sum st

and const_sum st =
  let rec loop acc =
    if accept st Lexer.PLUS then loop (acc + const_term st)
    else if accept st Lexer.MINUS then loop (acc - const_term st)
    else acc
  in
  loop (const_term st)

and const_term st =
  let rec loop acc =
    if accept st Lexer.STAR then loop (acc * const_atom st) else acc
  in
  loop (const_atom st)

and const_atom st =
  match cur st with
  | Lexer.INT n ->
    advance st;
    n
  | Lexer.SIZED (_, v) ->
    advance st;
    v
  | Lexer.LPAREN ->
    advance st;
    let v = const_expr st in
    expect st Lexer.RPAREN;
    v
  | Lexer.ID name ->
    fail st (Printf.sprintf "identifier %s is not a constant (undefined parameter?)" name)
  | t -> fail st (Printf.sprintf "expected constant expression, found %s" (Lexer.describe t))

(* ------------------------------------------------------------------ *)
(* Expressions (for assign lowering)                                   *)
(* ------------------------------------------------------------------ *)

type expr =
  | E_id of string
  | E_lit of int option * int (* optional width, value *)
  | E_not of expr
  | E_bin of bin * expr * expr
  | E_mux of expr * expr * expr
  | E_concat of expr list
  | E_slice of string * int * int (* net, msb, lsb *)

and bin = B_and | B_or | B_xor | B_add | B_sub | B_mul | B_lt | B_eq

(* Precedence climbing: ?: < | < ^ < & < (== <) < (+ -) < * < unary *)

let rec parse_expr st = parse_ternary st

and parse_ternary st =
  let cond = parse_or st in
  if accept st Lexer.QUESTION then begin
    let a = parse_expr st in
    expect st Lexer.COLON;
    let b = parse_expr st in
    E_mux (cond, a, b)
  end
  else cond

and parse_or st =
  let rec loop acc =
    if accept st Lexer.PIPE then loop (E_bin (B_or, acc, parse_xor st)) else acc
  in
  loop (parse_xor st)

and parse_xor st =
  let rec loop acc =
    if accept st Lexer.CARET then loop (E_bin (B_xor, acc, parse_and st)) else acc
  in
  loop (parse_and st)

and parse_and st =
  let rec loop acc =
    if accept st Lexer.AMP then loop (E_bin (B_and, acc, parse_cmp st)) else acc
  in
  loop (parse_cmp st)

and parse_cmp st =
  let lhs = parse_sum st in
  if accept st Lexer.LT then E_bin (B_lt, lhs, parse_sum st)
  else if accept st Lexer.EQEQ then E_bin (B_eq, lhs, parse_sum st)
  else lhs

and parse_sum st =
  let rec loop acc =
    if accept st Lexer.PLUS then loop (E_bin (B_add, acc, parse_term st))
    else if accept st Lexer.MINUS then loop (E_bin (B_sub, acc, parse_term st))
    else acc
  in
  loop (parse_term st)

and parse_term st =
  let rec loop acc =
    if accept st Lexer.STAR then loop (E_bin (B_mul, acc, parse_unary st)) else acc
  in
  loop (parse_unary st)

and parse_unary st =
  if accept st Lexer.TILDE then E_not (parse_unary st) else parse_primary st

and parse_primary st =
  match cur st with
  | Lexer.LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st Lexer.RPAREN;
    e
  | Lexer.LBRACE ->
    advance st;
    let rec elems acc =
      let e = parse_expr st in
      if accept st Lexer.COMMA then elems (e :: acc) else List.rev (e :: acc)
    in
    let es = elems [] in
    expect st Lexer.RBRACE;
    E_concat es
  | Lexer.INT n ->
    advance st;
    E_lit (None, n)
  | Lexer.SIZED (w, v) ->
    advance st;
    E_lit (Some w, v)
  | Lexer.ID name ->
    advance st;
    if accept st Lexer.LBRACK then begin
      let msb = integer st in
      let lsb = if accept st Lexer.COLON then integer st else msb in
      expect st Lexer.RBRACK;
      E_slice (name, msb, lsb)
    end
    else E_id name
  | t -> fail st (Printf.sprintf "expected expression but found %s" (Lexer.describe t))

(* ------------------------------------------------------------------ *)
(* Module bodies                                                       *)
(* ------------------------------------------------------------------ *)

type body = {
  mutable ports : (string * Ast.direction * int) list; (* reversed *)
  mutable nets : Ast.net list; (* reversed *)
  mutable instances : Ast.instance list; (* reversed *)
  header_ports : string list;
}

let body_net_width st body name =
  match List.find_opt (fun (n : Ast.net) -> n.net_name = name) body.nets with
  | Some n -> n.net_width
  | None -> (
    match List.find_opt (fun (p, _, _) -> p = name) body.ports with
    | Some (_, _, w) -> w
    | None -> fail st (Printf.sprintf "unknown net %s" name))

let fresh_net st body width prefix =
  let name = Printf.sprintf "_%s_%d" prefix st.fresh in
  st.fresh <- st.fresh + 1;
  body.nets <- { Ast.net_name = name; net_width = width } :: body.nets;
  name

let fresh_inst st prefix =
  let name = Printf.sprintf "_%s_i%d" prefix st.fresh in
  st.fresh <- st.fresh + 1;
  name

let add_prim st body prim conns =
  let inst_name = fresh_inst st (Ast.prim_name prim) in
  body.instances <-
    { Ast.inst_name; master = Ast.M_prim prim; conns } :: body.instances

(* Width of an expression given the width expected by its context.
   Comparison results are 1 bit; concats sum their parts; unsized
   literals adopt the context width. *)
let rec expr_width st body ctx = function
  | E_id name -> body_net_width st body name
  | E_lit (Some w, _) -> w
  | E_lit (None, _) -> ctx
  | E_not e -> expr_width st body ctx e
  | E_bin ((B_lt | B_eq), _, _) -> 1
  | E_bin (_, a, b) ->
    let wa = expr_width st body ctx a and wb = expr_width st body ctx b in
    max wa wb
  | E_mux (_, a, b) ->
    let wa = expr_width st body ctx a and wb = expr_width st body ctx b in
    max wa wb
  | E_concat es -> List.fold_left (fun acc e -> acc + expr_width st body ctx e) 0 es
  | E_slice (_, msb, lsb) -> msb - lsb + 1

(* Lowers [e] into primitive instances; returns the net carrying the
   result.  [ctx] is the width imposed by the surrounding context. *)
let rec lower st body ctx e =
  match e with
  | E_id name -> name
  | E_lit (wopt, value) ->
    let width = match wopt with Some w -> w | None -> ctx in
    let o = fresh_net st body width "const" in
    add_prim st body (Ast.P_const { width; value }) [ { Ast.formal = "o"; actual = o } ];
    o
  | E_not a ->
    let w = expr_width st body ctx e in
    let na = lower st body w a in
    let o = fresh_net st body w "not" in
    add_prim st body (Ast.P_not w)
      [ { Ast.formal = "a"; actual = na }; { Ast.formal = "o"; actual = o } ];
    o
  | E_bin (op, a, b) ->
    let operand_w =
      match op with
      | B_lt | B_eq ->
        (* Compare at the natural width of the operands. *)
        let wa = expr_width st body ctx a and wb = expr_width st body ctx b in
        max wa wb
      | B_and | B_or | B_xor | B_add | B_sub | B_mul -> expr_width st body ctx e
    in
    let na = lower st body operand_w a in
    let nb = lower st body operand_w b in
    let prim, out_w =
      match op with
      | B_and -> (Ast.P_and operand_w, operand_w)
      | B_or -> (Ast.P_or operand_w, operand_w)
      | B_xor -> (Ast.P_xor operand_w, operand_w)
      | B_add -> (Ast.P_add operand_w, operand_w)
      | B_sub -> (Ast.P_sub operand_w, operand_w)
      | B_mul -> (Ast.P_mul operand_w, operand_w)
      | B_lt -> (Ast.P_cmp_lt operand_w, 1)
      | B_eq -> (Ast.P_cmp_eq operand_w, 1)
    in
    let o = fresh_net st body out_w "bin" in
    add_prim st body prim
      [
        { Ast.formal = "a"; actual = na };
        { Ast.formal = "b"; actual = nb };
        { Ast.formal = "o"; actual = o };
      ];
    o
  | E_mux (c, a, b) ->
    let w = expr_width st body ctx e in
    let nc = lower st body 1 c in
    let na = lower st body w a in
    let nb = lower st body w b in
    let o = fresh_net st body w "mux" in
    add_prim st body (Ast.P_mux w)
      [
        { Ast.formal = "sel"; actual = nc };
        { Ast.formal = "a"; actual = na };
        { Ast.formal = "b"; actual = nb };
        { Ast.formal = "o"; actual = o };
      ];
    o
  | E_concat es ->
    (* Fold left-to-right: {a, b, c} = {{a, b}, c}; MSB first as in
       Verilog, so earlier elements occupy higher bits. *)
    let lowered =
      List.map (fun e -> (lower st body ctx e, expr_width st body ctx e)) es
    in
    (match lowered with
    | [] -> fail st "empty concatenation"
    | (first, _) :: rest ->
      List.fold_left
        (fun (acc_net : string) (net, w) ->
          let wa = body_net_width st body acc_net in
          let o = fresh_net st body (wa + w) "concat" in
          add_prim st body (Ast.P_concat { wa; wb = w })
            [
              { Ast.formal = "a"; actual = acc_net };
              { Ast.formal = "b"; actual = net };
              { Ast.formal = "o"; actual = o };
            ];
          o)
        first rest)
  | E_slice (name, msb, lsb) ->
    let src_w = body_net_width st body name in
    if msb >= src_w || lsb > msb then
      fail st (Printf.sprintf "slice %s[%d:%d] out of range (width %d)" name msb lsb src_w);
    let out_width = msb - lsb + 1 in
    let o = fresh_net st body out_width "slice" in
    add_prim st body (Ast.P_slice { width = src_w; lo = lsb; out_width })
      [ { Ast.formal = "a"; actual = name }; { Ast.formal = "o"; actual = o } ];
    o

(* ------------------------------------------------------------------ *)
(* Declarations, instances, assigns                                    *)
(* ------------------------------------------------------------------ *)

let parse_range st =
  if accept st Lexer.LBRACK then begin
    let msb = const_expr st in
    expect st Lexer.COLON;
    let lsb = const_expr st in
    expect st Lexer.RBRACK;
    if lsb <> 0 then fail st "only [msb:0] ranges are supported in declarations";
    msb + 1
  end
  else 1

let parse_decl st body kind =
  let width = parse_range st in
  let rec names () =
    let name = ident st in
    (match kind with
    | `Input -> body.ports <- (name, Ast.Input, width) :: body.ports
    | `Output -> body.ports <- (name, Ast.Output, width) :: body.ports
    | `Wire -> body.nets <- { Ast.net_name = name; net_width = width } :: body.nets);
    if accept st Lexer.COMMA then names ()
  in
  names ();
  expect st Lexer.SEMI

let parse_params st =
  if accept st Lexer.HASH then begin
    expect st Lexer.LPAREN;
    let rec loop acc =
      expect st Lexer.DOT;
      let name = ident st in
      expect st Lexer.LPAREN;
      let v = const_expr st in
      expect st Lexer.RPAREN;
      let acc = (name, v) :: acc in
      if accept st Lexer.COMMA then loop acc
      else begin
        expect st Lexer.RPAREN;
        List.rev acc
      end
    in
    loop []
  end
  else []

let parse_conns st =
  expect st Lexer.LPAREN;
  if accept st Lexer.RPAREN then []
  else begin
    let rec loop acc =
      expect st Lexer.DOT;
      let formal = ident st in
      expect st Lexer.LPAREN;
      let actual = ident st in
      expect st Lexer.RPAREN;
      let acc = { Ast.formal; actual } :: acc in
      if accept st Lexer.COMMA then loop acc
      else begin
        expect st Lexer.RPAREN;
        List.rev acc
      end
    in
    loop []
  end

let param params name =
  match List.assoc_opt name params with Some v -> Some v | None -> None

let conn_width st body conns formal =
  match List.find_opt (fun (c : Ast.conn) -> c.formal = formal) conns with
  | Some c -> body_net_width st body c.actual
  | None -> fail st (Printf.sprintf "primitive instance missing port %s" formal)

let prim_of_master st body master params conns =
  let w formal = conn_width st body conns formal in
  let p name =
    match param params name with
    | Some v -> v
    | None -> fail st (Printf.sprintf "missing parameter %s for %s" name master)
  in
  match master with
  | "mlv_and" -> Ast.P_and (w "o")
  | "mlv_or" -> Ast.P_or (w "o")
  | "mlv_xor" -> Ast.P_xor (w "o")
  | "mlv_not" -> Ast.P_not (w "o")
  | "mlv_mux" -> Ast.P_mux (w "o")
  | "mlv_add" -> Ast.P_add (w "o")
  | "mlv_sub" -> Ast.P_sub (w "o")
  | "mlv_mul" -> Ast.P_mul (w "o")
  | "mlv_mac" -> Ast.P_mac (w "a")
  | "mlv_reg" -> Ast.P_reg (w "q")
  | "mlv_ram" -> Ast.P_ram { words = p "WORDS"; width = p "WIDTH" }
  | "mlv_rom" -> Ast.P_rom { words = p "WORDS"; width = p "WIDTH" }
  | "mlv_const" -> Ast.P_const { width = w "o"; value = p "VALUE" }
  | "mlv_concat" -> Ast.P_concat { wa = w "a"; wb = w "b" }
  | "mlv_slice" -> Ast.P_slice { width = w "a"; lo = p "LO"; out_width = w "o" }
  | "mlv_cmp_lt" -> Ast.P_cmp_lt (w "a")
  | "mlv_cmp_eq" -> Ast.P_cmp_eq (w "a")
  | _ -> fail st (Printf.sprintf "unknown primitive %s" master)

let parse_assign st body =
  let lhs = ident st in
  expect st Lexer.EQ;
  let rhs = parse_expr st in
  expect st Lexer.SEMI;
  let width = body_net_width st body lhs in
  let result = lower st body width rhs in
  (* Tie the result net to the lhs with a zero-cost alias: a 1-input
     or-gate would distort the census, so emit nothing when the lower
     step already produced a named net we can rename.  Renaming is
     fragile; instead connect through a P_slice identity which the
     resource model prices at zero LUTs. *)
  let rw = body_net_width st body result in
  if rw <> width then
    fail st (Printf.sprintf "assign %s: width mismatch (%d vs %d)" lhs width rw);
  add_prim st body (Ast.P_slice { width; lo = 0; out_width = width })
    [ { Ast.formal = "a"; actual = result }; { Ast.formal = "o"; actual = lhs } ]

(* Monomorphize a parameterized module template for a concrete
   parameter binding: substitute the parameter identifiers with
   integer literals in the captured token stream, rename the module,
   and parse the result as an ordinary module.  The elaborated name
   is e.g. [fir$W16$T8]. *)
let mangle name env =
  name ^ String.concat "" (List.map (fun (p, v) -> Printf.sprintf "$%s%d" p v) env)

let rec elaborate_template st master overrides =
  let tpl = Hashtbl.find st.templates master in
  List.iter
    (fun (p, _) ->
      if not (List.mem_assoc p tpl.tparams) then
        fail st (Printf.sprintf "module %s has no parameter %s" master p))
    overrides;
  let env =
    List.map
      (fun (p, default) ->
        (p, match List.assoc_opt p overrides with Some v -> v | None -> default))
      tpl.tparams
  in
  let name = mangle master env in
  if not (Design.mem st.design name) then begin
    (* Substitute parameter identifiers with their values — except
       directly after a dot, where an identifier is a formal (port or
       parameter) name. *)
    let substituted =
      Array.mapi
        (fun i (lt : Lexer.located) ->
          match lt.Lexer.tok with
          | Lexer.ID id when not (i > 0 && tpl.ttoks.(i - 1).Lexer.tok = Lexer.DOT) -> (
            match List.assoc_opt id env with
            | Some v -> { lt with Lexer.tok = Lexer.INT v }
            | None -> lt)
          | _ -> lt)
        tpl.ttoks
    in
    let sub_st =
      { toks = substituted; pos = 0; fresh = 0; design = st.design;
        templates = st.templates }
    in
    let m = parse_module sub_st [] in
    Design.add st.design { m with Ast.mod_name = name }
  end;
  name

and parse_instance st body master =
  let params = parse_params st in
  let inst_name = ident st in
  let conns = parse_conns st in
  expect st Lexer.SEMI;
  let m =
    if String.length master >= 4 && String.sub master 0 4 = "mlv_" then
      Ast.M_prim (prim_of_master st body master params conns)
    else if Hashtbl.mem st.templates master then
      Ast.M_module (elaborate_template st master params)
    else begin
      if params <> [] then
        fail st (Printf.sprintf "module %s is not parameterized" master);
      Ast.M_module master
    end
  in
  body.instances <- { Ast.inst_name; master = m; conns } :: body.instances

(* ------------------------------------------------------------------ *)
(* Modules                                                             *)
(* ------------------------------------------------------------------ *)

and parse_module st attrs =
  let name = ident st in
  expect st Lexer.LPAREN;
  let header_ports =
    if cur st = Lexer.RPAREN then []
    else begin
      let rec loop acc =
        let p = ident st in
        if accept st Lexer.COMMA then loop (p :: acc) else List.rev (p :: acc)
      in
      loop []
    end
  in
  expect st Lexer.RPAREN;
  expect st Lexer.SEMI;
  let body = { ports = []; nets = []; instances = []; header_ports } in
  let rec items () =
    match cur st with
    | Lexer.ID "endmodule" -> advance st
    | Lexer.ID "input" ->
      advance st;
      parse_decl st body `Input;
      items ()
    | Lexer.ID "output" ->
      advance st;
      parse_decl st body `Output;
      items ()
    | Lexer.ID "wire" ->
      advance st;
      parse_decl st body `Wire;
      items ()
    | Lexer.ID "assign" ->
      advance st;
      parse_assign st body;
      items ()
    | Lexer.ID master ->
      advance st;
      parse_instance st body master;
      items ()
    | t -> fail st (Printf.sprintf "unexpected %s in module body" (Lexer.describe t))
  in
  items ();
  (* Ports must all be declared and every declared port listed. *)
  let declared = List.rev body.ports in
  List.iter
    (fun hp ->
      if not (List.exists (fun (n, _, _) -> n = hp) declared) then
        fail st (Printf.sprintf "port %s of %s has no input/output declaration" hp name))
    header_ports;
  let ports =
    List.map
      (fun (port_name, dir, width) -> { Ast.port_name; dir; width })
      declared
  in
  {
    Ast.mod_name = name;
    ports;
    nets = List.rev body.nets;
    instances = List.rev body.instances;
    attrs;
  }

let parse_design st =
  let rec loop pending_attrs =
    match cur st with
    | Lexer.EOF -> st.design
    | Lexer.ATTR attrs ->
      advance st;
      loop (pending_attrs @ attrs)
    | Lexer.ID "module" ->
      advance st;
      let name_tok_idx = st.pos in
      let name = ident st in
      if cur st = Lexer.HASH then begin
        (* Parameterized module: capture the body as a template and
           monomorphize on demand at each instantiation. *)
        if pending_attrs <> [] then
          fail st "attributes on parameterized modules are not supported";
        advance st;
        expect st Lexer.LPAREN;
        let rec params acc =
          let p = ident st in
          expect st Lexer.EQ;
          let v = const_expr st in
          let acc = (p, v) :: acc in
          if accept st Lexer.COMMA then params acc
          else begin
            expect st Lexer.RPAREN;
            List.rev acc
          end
        in
        let tparams = params [] in
        let start = st.pos in
        let rec skip () =
          match cur st with
          | Lexer.ID "endmodule" -> advance st
          | Lexer.EOF -> fail st "unterminated parameterized module"
          | _ ->
            advance st;
            skip ()
        in
        skip ();
        let body = Array.sub st.toks start (st.pos - start) in
        let name_tok = st.toks.(name_tok_idx) in
        let eof = { name_tok with Lexer.tok = Lexer.EOF } in
        Hashtbl.replace st.templates name
          { tparams; ttoks = Array.concat [ [| name_tok |]; body; [| eof |] ] };
        loop []
      end
      else begin
        st.pos <- name_tok_idx;
        let m = parse_module st pending_attrs in
        Design.add st.design m;
        loop []
      end
    | t -> fail st (Printf.sprintf "expected module but found %s" (Lexer.describe t))
  in
  loop []

let parse_string ?(filename = "<string>") src =
  match
    let toks = Array.of_list (Lexer.tokenize src) in
    parse_design
      {
        toks;
        pos = 0;
        fresh = 0;
        design = Design.create ();
        templates = Hashtbl.create 8;
      }
  with
  | design -> Ok design
  | exception Parse_error msg -> Error (Printf.sprintf "%s: %s" filename msg)
  | exception Failure msg -> Error (Printf.sprintf "%s: %s" filename msg)
  | exception Invalid_argument msg -> Error (Printf.sprintf "%s: %s" filename msg)

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  parse_string ~filename:path src
