type token =
  | ID of string
  | INT of int
  | SIZED of int * int
  | ATTR of string list
  | LPAREN
  | RPAREN
  | LBRACK
  | RBRACK
  | LBRACE
  | RBRACE
  | SEMI
  | COMMA
  | DOT
  | COLON
  | HASH
  | EQ
  | QUESTION
  | AMP
  | PIPE
  | CARET
  | TILDE
  | PLUS
  | MINUS
  | STAR
  | LT
  | EQEQ
  | EOF

type located = { tok : token; line : int }

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '$'
let is_digit c = c >= '0' && c <= '9'

let describe = function
  | ID s -> Printf.sprintf "identifier %s" s
  | INT n -> Printf.sprintf "integer %d" n
  | SIZED (w, v) -> Printf.sprintf "literal %d'd%d" w v
  | ATTR attrs -> Printf.sprintf "(* %s *)" (String.concat ", " attrs)
  | LPAREN -> "(" | RPAREN -> ")"
  | LBRACK -> "[" | RBRACK -> "]"
  | LBRACE -> "{" | RBRACE -> "}"
  | SEMI -> ";" | COMMA -> "," | DOT -> "." | COLON -> ":"
  | HASH -> "#" | EQ -> "=" | QUESTION -> "?"
  | AMP -> "&" | PIPE -> "|" | CARET -> "^" | TILDE -> "~"
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*"
  | LT -> "<" | EQEQ -> "=="
  | EOF -> "end of input"

let tokenize src =
  let n = String.length src in
  let pos = ref 0 in
  let line = ref 1 in
  let out = ref [] in
  let fail msg = failwith (Printf.sprintf "line %d: %s" !line msg) in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  let emit tok = out := { tok; line = !line } :: !out in
  let read_while p =
    let start = !pos in
    while !pos < n && p src.[!pos] do
      incr pos
    done;
    String.sub src start (!pos - start)
  in
  (* Reads the number whose first digit is at the cursor; handles the
     Verilog sized form width'base digits (bases d, h, b). *)
  let read_number () =
    let digits = read_while is_digit in
    let value = int_of_string digits in
    match peek 0 with
    | Some '\'' ->
      incr pos;
      let base =
        match peek 0 with
        | Some ('d' | 'D') -> 10
        | Some ('h' | 'H') -> 16
        | Some ('b' | 'B') -> 2
        | _ -> fail "expected base character after ' in sized literal"
      in
      incr pos;
      let body =
        read_while (fun c ->
            is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') || c = '_')
      in
      let body = String.concat "" (String.split_on_char '_' body) in
      if body = "" then fail "empty sized literal";
      let v =
        match base with
        | 10 -> int_of_string body
        | 16 -> int_of_string ("0x" ^ body)
        | _ -> int_of_string ("0b" ^ body)
      in
      emit (SIZED (value, v))
    | _ -> emit (INT value)
  in
  let read_attr () =
    (* Cursor is just past "(*". *)
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos + 1 < n && src.[!pos] = '*' && src.[!pos + 1] = ')' then pos := !pos + 2
      else if !pos >= n then fail "unterminated attribute"
      else begin
        if src.[!pos] = '\n' then incr line;
        Buffer.add_char buf src.[!pos];
        incr pos;
        loop ()
      end
    in
    loop ();
    let attrs =
      Buffer.contents buf |> String.split_on_char ',' |> List.map String.trim
      |> List.filter (fun s -> s <> "")
    in
    emit (ATTR attrs)
  in
  while !pos < n do
    let c = src.[!pos] in
    if c = '\n' then begin
      incr line;
      incr pos
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr pos
    else if c = '/' && peek 1 = Some '/' then begin
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done
    end
    else if c = '/' && peek 1 = Some '*' then begin
      pos := !pos + 2;
      let rec skip () =
        if !pos + 1 >= n then fail "unterminated comment"
        else if src.[!pos] = '*' && src.[!pos + 1] = '/' then pos := !pos + 2
        else begin
          if src.[!pos] = '\n' then incr line;
          incr pos;
          skip ()
        end
      in
      skip ()
    end
    else if c = '(' && peek 1 = Some '*' then begin
      pos := !pos + 2;
      read_attr ()
    end
    else if is_ident_start c then emit (ID (read_while is_ident_char))
    else if is_digit c then read_number ()
    else begin
      incr pos;
      match c with
      | '(' -> emit LPAREN
      | ')' -> emit RPAREN
      | '[' -> emit LBRACK
      | ']' -> emit RBRACK
      | '{' -> emit LBRACE
      | '}' -> emit RBRACE
      | ';' -> emit SEMI
      | ',' -> emit COMMA
      | '.' -> emit DOT
      | ':' -> emit COLON
      | '#' -> emit HASH
      | '?' -> emit QUESTION
      | '&' -> emit AMP
      | '|' -> emit PIPE
      | '^' -> emit CARET
      | '~' -> emit TILDE
      | '+' -> emit PLUS
      | '-' -> emit MINUS
      | '*' -> emit STAR
      | '<' -> emit LT
      | '=' ->
        if peek 0 = Some '=' then begin
          incr pos;
          emit EQEQ
        end
        else emit EQ
      | _ -> fail (Printf.sprintf "unexpected character %c" c)
    end
  done;
  emit EOF;
  List.rev !out
