(** Emits a design back to the textual Verilog subset accepted by
    {!Parser}, so generated accelerators can be inspected and
    round-tripped in tests. *)

(** [module_to_string m] renders one module. *)
val module_to_string : Ast.module_def -> string

(** [design_to_string d] renders every module in registration order. *)
val design_to_string : Design.t -> string
