(** Extraction of a subset of a module's instances into a standalone
    module.

    The decomposer's intra-block data-parallelism step (paper
    §2.2.1, step 2) splits a basic module into connected components
    and checks the components for equivalence; each component must
    therefore be materialised as a module of its own, with ports
    synthesised for every net that crosses the component boundary. *)

(** [component ~name design parent indices] builds a module named
    [name] containing exactly the instances of [parent] at positions
    [indices] (0-based, in declaration order).

    A net becomes an input port when it is consumed inside the
    component but driven outside it (including by a [parent] input
    port), and an output port when driven inside and consumed outside
    (including by a [parent] output port).  Purely internal nets stay
    wires.  Port order is deterministic: inputs sorted by name, then
    outputs sorted by name. *)
val component :
  name:string -> Design.t -> Ast.module_def -> int list -> Ast.module_def

(** [flatten design name] inlines the full hierarchy under module
    [name] into one equivalent basic module (prefixing nested nets
    and instances with their instance path).
    @raise Failure if [name] is unknown. *)
val flatten : Design.t -> string -> Ast.module_def
