type t = {
  modules : int;
  basic_modules : int;
  total_instances : int;
  flat_primitives : int;
  hierarchy_depth : int;
  prim_histogram : (string * int) list;
}

let of_design design =
  let top = Design.top design in
  let modules = List.length (Design.modules design) in
  let basic_modules = List.length (Design.basic_modules design) in
  let total_instances =
    List.fold_left
      (fun acc (m : Ast.module_def) -> acc + List.length m.Ast.instances)
      0 (Design.modules design)
  in
  let flat_primitives = Design.flat_instance_count design top.Ast.mod_name in
  let rec depth name =
    match Design.children design name with
    | [] -> 1
    | children -> 1 + List.fold_left (fun acc c -> max acc (depth c)) 0 children
  in
  let census = Design.prim_census design top.Ast.mod_name in
  let by_name = Hashtbl.create 16 in
  List.iter
    (fun (p, n) ->
      let name = Ast.prim_name p in
      let cur = try Hashtbl.find by_name name with Not_found -> 0 in
      Hashtbl.replace by_name name (cur + n))
    census;
  let prim_histogram =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_name []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  {
    modules;
    basic_modules;
    total_instances;
    flat_primitives;
    hierarchy_depth = depth top.Ast.mod_name;
    prim_histogram;
  }

let pp fmt t =
  Format.fprintf fmt "modules: %d (%d basic)@." t.modules t.basic_modules;
  Format.fprintf fmt "instances: %d declared, %d primitives flattened@."
    t.total_instances t.flat_primitives;
  Format.fprintf fmt "hierarchy depth: %d@." t.hierarchy_depth;
  Format.fprintf fmt "primitives:@.";
  List.iter (fun (name, n) -> Format.fprintf fmt "  %-12s %d@." name n) t.prim_histogram
