let range_of width = if width = 1 then "" else Printf.sprintf "[%d:0] " (width - 1)

let prim_params (p : Ast.prim) =
  match p with
  | Ast.P_ram { words; width } | Ast.P_rom { words; width } ->
    [ ("WORDS", words); ("WIDTH", width) ]
  | Ast.P_const { value; _ } -> [ ("VALUE", value) ]
  | Ast.P_slice { lo; _ } -> [ ("LO", lo) ]
  | Ast.P_and _ | Ast.P_or _ | Ast.P_xor _ | Ast.P_not _ | Ast.P_mux _ | Ast.P_add _
  | Ast.P_sub _ | Ast.P_mul _ | Ast.P_mac _ | Ast.P_reg _ | Ast.P_concat _
  | Ast.P_cmp_lt _ | Ast.P_cmp_eq _ -> []

let module_to_string (m : Ast.module_def) =
  let buf = Buffer.create 512 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  if m.attrs <> [] then pf "(* %s *)\n" (String.concat ", " m.attrs);
  let port_names = List.map (fun (p : Ast.port) -> p.port_name) m.ports in
  pf "module %s (%s);\n" m.mod_name (String.concat ", " port_names);
  List.iter
    (fun (p : Ast.port) ->
      let kw = match p.dir with Ast.Input -> "input" | Ast.Output -> "output" in
      pf "  %s %s%s;\n" kw (range_of p.width) p.port_name)
    m.ports;
  List.iter
    (fun (n : Ast.net) -> pf "  wire %s%s;\n" (range_of n.net_width) n.net_name)
    m.nets;
  List.iter
    (fun (inst : Ast.instance) ->
      let master_name, params =
        match inst.master with
        | Ast.M_module name -> (name, [])
        | Ast.M_prim p -> (Ast.prim_name p, prim_params p)
      in
      let params_str =
        match params with
        | [] -> ""
        | ps ->
          let entries = List.map (fun (k, v) -> Printf.sprintf ".%s(%d)" k v) ps in
          Printf.sprintf " #(%s)" (String.concat ", " entries)
      in
      let conns =
        List.map
          (fun (c : Ast.conn) -> Printf.sprintf ".%s(%s)" c.formal c.actual)
          inst.conns
      in
      pf "  %s%s %s (%s);\n" master_name params_str inst.inst_name
        (String.concat ", " conns))
    m.instances;
  pf "endmodule\n";
  Buffer.contents buf

let design_to_string d =
  Design.modules d |> List.map module_to_string |> String.concat "\n"
