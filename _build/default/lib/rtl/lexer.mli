(** Tokenizer for the structural-Verilog subset accepted by
    {!Parser}.  Handles [//] and [/* */] comments and Verilog-style
    [(* attribute *)] markers. *)

type token =
  | ID of string
  | INT of int
  | SIZED of int * int  (** [SIZED (width, value)] from e.g. [8'd255] *)
  | ATTR of string list  (** [(* a, b *)] *)
  | LPAREN
  | RPAREN
  | LBRACK
  | RBRACK
  | LBRACE
  | RBRACE
  | SEMI
  | COMMA
  | DOT
  | COLON
  | HASH
  | EQ
  | QUESTION
  | AMP
  | PIPE
  | CARET
  | TILDE
  | PLUS
  | MINUS
  | STAR
  | LT
  | EQEQ
  | EOF

type located = { tok : token; line : int }

(** [tokenize src] lexes [src].
    @raise Failure with a line-numbered message on lexical errors. *)
val tokenize : string -> located list

(** [describe tok] is a short printable form, for error messages. *)
val describe : token -> string
