lib/workload/metrics.ml: Float Format Hashtbl List Mlv_util
