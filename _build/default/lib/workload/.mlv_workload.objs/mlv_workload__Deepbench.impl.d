lib/workload/deepbench.ml: Mlv_isa Printf
