lib/workload/genset.ml: Deepbench Float List Mlv_util Printf Sizes String
