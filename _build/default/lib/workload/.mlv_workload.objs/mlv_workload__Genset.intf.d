lib/workload/genset.mli: Deepbench Mlv_util Sizes
