lib/workload/deepbench.mli: Mlv_isa
