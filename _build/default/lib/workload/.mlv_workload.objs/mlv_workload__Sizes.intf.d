lib/workload/sizes.mli: Deepbench Format
