lib/workload/sizes.ml: Deepbench Format List
