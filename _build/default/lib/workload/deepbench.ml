module Codegen = Mlv_isa.Codegen

type point = { kind : Codegen.kind; hidden : int; timesteps : int }

let table4_points =
  [
    { kind = Codegen.Gru; hidden = 512; timesteps = 1 };
    { kind = Codegen.Gru; hidden = 1024; timesteps = 1500 };
    { kind = Codegen.Gru; hidden = 1536; timesteps = 375 };
    { kind = Codegen.Lstm; hidden = 256; timesteps = 150 };
    { kind = Codegen.Lstm; hidden = 512; timesteps = 25 };
    { kind = Codegen.Lstm; hidden = 1024; timesteps = 25 };
    { kind = Codegen.Lstm; hidden = 1536; timesteps = 50 };
  ]

let extended_points =
  table4_points
  @ [
      { kind = Codegen.Gru; hidden = 768; timesteps = 100 };
      { kind = Codegen.Lstm; hidden = 2048; timesteps = 50 };
      { kind = Codegen.Gru; hidden = 2048; timesteps = 100 };
      { kind = Codegen.Gru; hidden = 2560; timesteps = 100 };
      { kind = Codegen.Lstm; hidden = 2560; timesteps = 25 };
      { kind = Codegen.Lstm; hidden = 3072; timesteps = 25 };
    ]

let name p =
  Printf.sprintf "%s h=%d t=%d" (Codegen.kind_name p.kind) p.hidden p.timesteps

let weight_words p =
  let n = match p.kind with Codegen.Lstm -> 8 | Codegen.Gru -> 6 in
  n * p.hidden * p.hidden

let program p =
  Codegen.generate p.kind ~hidden:p.hidden ~input:p.hidden ~timesteps:p.timesteps
