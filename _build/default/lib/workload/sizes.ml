type model_class = S | M | L

let classify hidden = if hidden <= 1024 then S else if hidden <= 2048 then M else L
let classify_point (p : Deepbench.point) = classify p.Deepbench.hidden

let points_of_class c =
  List.filter (fun p -> classify_point p = c) Deepbench.extended_points

let name = function S -> "S" | M -> "M" | L -> "L"
let pp fmt c = Format.pp_print_string fmt (name c)
