module Rng = Mlv_util.Rng

type composition = { s : float; m : float; l : float }

let table1 =
  [|
    { s = 1.0; m = 0.0; l = 0.0 };
    { s = 0.0; m = 1.0; l = 0.0 };
    { s = 0.0; m = 0.0; l = 1.0 };
    { s = 0.5; m = 0.5; l = 0.0 };
    { s = 0.5; m = 0.0; l = 0.5 };
    { s = 0.0; m = 0.5; l = 0.5 };
    { s = 0.33; m = 0.33; l = 0.34 };
    { s = 0.1; m = 0.3; l = 0.6 };
    { s = 0.3; m = 0.6; l = 0.1 };
    { s = 0.6; m = 0.1; l = 0.3 };
  |]

let composition_name c =
  let parts = ref [] in
  let add pct cls = if pct > 0.0 then parts := Printf.sprintf "%.0f%%%s" (pct *. 100.0) cls :: !parts in
  add c.l "L";
  add c.m "M";
  add c.s "S";
  String.concat "+" !parts

type task = {
  task_id : int;
  point : Deepbench.point;
  model_class : Sizes.model_class;
  arrival_us : float;
}

let generate ~rng ~composition ~tasks ~mean_interarrival_us =
  if tasks <= 0 then invalid_arg "Genset.generate: tasks must be positive";
  let total = composition.s +. composition.m +. composition.l in
  if Float.abs (total -. 1.0) > 0.02 then
    invalid_arg "Genset.generate: composition must sum to 1";
  let sample_class () =
    let u = Rng.float rng 1.0 *. total in
    if u < composition.s then Sizes.S
    else if u < composition.s +. composition.m then Sizes.M
    else Sizes.L
  in
  let clock = ref 0.0 in
  List.init tasks (fun task_id ->
      clock := !clock +. Rng.exponential rng ~mean:mean_interarrival_us;
      let model_class = sample_class () in
      let point = Rng.choose rng (Sizes.points_of_class model_class) in
      { task_id; point; model_class; arrival_us = !clock })

let class_histogram tasks =
  let count c = List.length (List.filter (fun t -> t.model_class = c) tasks) in
  [ (Sizes.S, count Sizes.S); (Sizes.M, count Sizes.M); (Sizes.L, count Sizes.L) ]
