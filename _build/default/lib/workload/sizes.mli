(** Model size classes of Table 1: S (hidden <= 1024),
    M (1024 < hidden <= 2048), L (hidden > 2048). *)

type model_class = S | M | L

(** [classify hidden] bins a hidden size. *)
val classify : int -> model_class

(** [classify_point p] bins a benchmark point. *)
val classify_point : Deepbench.point -> model_class

(** [points_of_class c] lists the benchmark points in class [c]
    (drawn from {!Deepbench.extended_points}). *)
val points_of_class : model_class -> Deepbench.point list

val name : model_class -> string
val pp : Format.formatter -> model_class -> unit
