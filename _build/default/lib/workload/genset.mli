(** Synthetic workload sets (paper §4.1, Table 1).

    Each set is a sequence of GRU/LSTM inference tasks arriving at
    random intervals; the composition controls the S/M/L mix.  All
    randomness flows through a caller-provided seeded generator so
    every experiment is reproducible. *)

type composition = { s : float; m : float; l : float }

(** The ten compositions of Table 1, index 0 = set 1. *)
val table1 : composition array

(** [composition_name c] e.g. ["50%S+50%L"]. *)
val composition_name : composition -> string

type task = {
  task_id : int;
  point : Deepbench.point;
  model_class : Sizes.model_class;
  arrival_us : float;  (** absolute arrival time *)
}

(** [generate ~rng ~composition ~tasks ~mean_interarrival_us] draws
    [tasks] tasks with exponential inter-arrival times.
    @raise Invalid_argument if the composition does not sum to ~1 or
    [tasks <= 0]. *)
val generate :
  rng:Mlv_util.Rng.t ->
  composition:composition ->
  tasks:int ->
  mean_interarrival_us:float ->
  task list

(** [class_histogram tasks] counts tasks per class. *)
val class_histogram : task list -> (Sizes.model_class * int) list
