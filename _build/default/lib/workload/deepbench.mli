(** DeepBench-derived GRU/LSTM inference benchmarks (paper §4.1).

    Table 4 evaluates seven specific (model, hidden, timesteps)
    points at batch size one; the system-level workload generator
    draws from a wider set binned into the S/M/L classes of
    Table 1. *)

type point = {
  kind : Mlv_isa.Codegen.kind;
  hidden : int;
  timesteps : int;
}

(** The seven Table 4 benchmark points, in table order. *)
val table4_points : point list

(** Additional points used by the synthetic workload sets. *)
val extended_points : point list

(** [name p] e.g. ["GRU h=1024 t=1500"]. *)
val name : point -> string

(** [weight_words p] is the model's weight count (the quantity that
    decides on-chip residency). *)
val weight_words : point -> int

(** [program p] generates the inference program and layout. *)
val program : point -> Mlv_isa.Program.t * Mlv_isa.Codegen.layout
