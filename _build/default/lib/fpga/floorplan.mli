(** Placement-quality model.

    The paper uses Vivado's manual floorplanning to bring both the
    baseline accelerators and ViTAL's virtual blocks to their target
    frequencies (Fig. 10).  Physical place-and-route is out of scope
    here; this module models its *outcome*: achieved frequency as a
    function of device, fabric utilization and whether floorplanning
    was applied.  The curve is monotonic — higher utilization routes
    worse — and floorplanning recovers most of the loss, which is all
    the evaluation depends on. *)

(** [achieved_freq_mhz device ~utilization ~floorplanned] is the
    post-route clock frequency.  [utilization] is the max
    component-wise ratio from {!Resource.utilization} (clamped to
    [0, 1]). *)
val achieved_freq_mhz : Device.t -> utilization:float -> floorplanned:bool -> float

(** [route_success device ~utilization] is false when the design
    cannot be routed at all (utilization beyond the routable point,
    ~0.98 of fabric). *)
val route_success : Device.t -> utilization:float -> bool
