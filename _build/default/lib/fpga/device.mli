(** FPGA device catalog.

    The evaluation cluster of the paper contains two device types:
    three Xilinx Virtex UltraScale+ XCVU37P and one Kintex UltraScale
    XCKU115.  Capacities are back-derived from the utilization
    percentages the paper reports in Table 2 (e.g. 610k LUTs = 46.8%
    of the XCVU37P implies a ~1304k-LUT device, matching the real
    part). *)

(** Device families used in the paper's cluster. *)
type kind = XCVU37P | XCKU115

type t = {
  kind : kind;
  name : string;
  capacity : Resource.t;  (** total fabric resources *)
  base_freq_mhz : float;  (** frequency achieved by a floorplanned design *)
  virtual_block_count : int;
      (** how many ViTAL virtual blocks the device is divided into *)
  vb_region : Resource.t;  (** fabric capacity of one virtual-block region *)
  lut_factor : float;
      (** device-specific synthesis scale for LUT counts (1.0 on the
          reference XCVU37P; smaller parts map slightly denser) *)
  dff_factor : float;  (** same, for flip-flops *)
  has_uram : bool;
}

(** [get kind] is the catalog entry. *)
val get : kind -> t

(** [kinds] lists every known device kind. *)
val kinds : kind list

(** [kind_name k] is the marketing name, e.g. ["XCVU37P"]. *)
val kind_name : kind -> string

(** [of_name s] parses a device name (case-insensitive), e.g.
    ["xcku115"]. *)
val of_name : string -> kind option

(** [pp_kind] formats a kind. *)
val pp_kind : Format.formatter -> kind -> unit

(** [equal_kind] compares kinds. *)
val equal_kind : kind -> kind -> bool
