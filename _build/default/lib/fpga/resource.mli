(** FPGA resource vectors.

    Quantities follow the paper's Tables 2-3: LUTs, flip-flops, BRAM
    and URAM capacity in kilobits, and DSP slices.  The vector forms
    a lattice under component-wise operations; [fits] is the partial
    order used everywhere resource feasibility is decided. *)

type t = {
  luts : int;
  dffs : int;
  bram_kb : int;  (** block RAM, kilobits *)
  uram_kb : int;  (** ultra RAM, kilobits; 0 on devices without URAM *)
  dsps : int;
}

val zero : t

(** [make ?luts ?dffs ?bram_kb ?uram_kb ?dsps ()] builds a vector with
    unspecified components zero. *)
val make :
  ?luts:int -> ?dffs:int -> ?bram_kb:int -> ?uram_kb:int -> ?dsps:int -> unit -> t

(** [add a b] / [sub a b] are component-wise. [sub] may go negative;
    use [fits] to test feasibility first. *)
val add : t -> t -> t

val sub : t -> t -> t

(** [scale k r] multiplies every component by integer [k]. *)
val scale : int -> t -> t

(** [scale_f k r] multiplies every component by float [k], rounding to
    nearest. *)
val scale_f : float -> t -> t

(** [fits ~need ~avail] is true when [need] <= [avail] component-wise. *)
val fits : need:t -> avail:t -> bool

(** [utilization ~used ~cap] is the maximum component-wise ratio, the
    number a floorplanner cares about.  Components with zero capacity
    and zero use are ignored; zero capacity with nonzero use yields
    [infinity]. *)
val utilization : used:t -> cap:t -> float

(** [mb kb] renders a kilobit count as megabits with one decimal,
    e.g. ["51.5Mb"]. *)
val mb : int -> string

(** [pp] formats a vector compactly for logs and tables. *)
val pp : Format.formatter -> t -> unit

(** [equal] is structural equality. *)
val equal : t -> t -> bool
