open Mlv_rtl

let ceil_div a b = (a + b - 1) / b

(* DSP48E2 multiplies 27x18; wider products tile quadratically. *)
let dsp_for_mul w =
  let tiles = ceil_div w 18 in
  tiles * tiles

(* BRAM36 stores 36kb; below 2kb a memory maps to distributed LUTRAM. *)
let ram_cost words width =
  let bits = words * width in
  if bits <= 2048 then Resource.make ~luts:(ceil_div bits 32) ()
  else begin
    let blocks = ceil_div bits (36 * 1024) in
    Resource.make ~bram_kb:(blocks * 36) ()
  end

let of_prim (p : Ast.prim) =
  match p with
  | Ast.P_and w | Ast.P_or w | Ast.P_xor w -> Resource.make ~luts:w ()
  | Ast.P_not w -> Resource.make ~luts:(ceil_div w 2) ()
  | Ast.P_mux w -> Resource.make ~luts:w ()
  | Ast.P_add w | Ast.P_sub w -> Resource.make ~luts:w ()
  | Ast.P_cmp_lt w | Ast.P_cmp_eq w -> Resource.make ~luts:(ceil_div w 2) ()
  | Ast.P_mul w ->
    if w <= 4 then Resource.make ~luts:(w * w) ()
    else Resource.make ~dsps:(dsp_for_mul w) ()
  | Ast.P_mac w ->
    Resource.add
      (if w <= 4 then Resource.make ~luts:(w * w) () else Resource.make ~dsps:(dsp_for_mul w) ())
      (Resource.make ~dffs:(2 * w) ())
  | Ast.P_reg w -> Resource.make ~dffs:w ()
  | Ast.P_ram { words; width } -> ram_cost words width
  | Ast.P_rom { words; width } -> ram_cost words width
  | Ast.P_const _ | Ast.P_concat _ | Ast.P_slice _ -> Resource.zero

let of_census census =
  List.fold_left
    (fun acc (p, n) -> Resource.add acc (Resource.scale n (of_prim p)))
    Resource.zero census

let of_module design name = of_census (Design.prim_census design name)
