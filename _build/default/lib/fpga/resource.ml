type t = { luts : int; dffs : int; bram_kb : int; uram_kb : int; dsps : int }

let zero = { luts = 0; dffs = 0; bram_kb = 0; uram_kb = 0; dsps = 0 }

let make ?(luts = 0) ?(dffs = 0) ?(bram_kb = 0) ?(uram_kb = 0) ?(dsps = 0) () =
  { luts; dffs; bram_kb; uram_kb; dsps }

let map2 f a b =
  {
    luts = f a.luts b.luts;
    dffs = f a.dffs b.dffs;
    bram_kb = f a.bram_kb b.bram_kb;
    uram_kb = f a.uram_kb b.uram_kb;
    dsps = f a.dsps b.dsps;
  }

let add = map2 ( + )
let sub = map2 ( - )

let scale k r =
  {
    luts = k * r.luts;
    dffs = k * r.dffs;
    bram_kb = k * r.bram_kb;
    uram_kb = k * r.uram_kb;
    dsps = k * r.dsps;
  }

let scale_f k r =
  let s x = int_of_float (Float.round (k *. float_of_int x)) in
  {
    luts = s r.luts;
    dffs = s r.dffs;
    bram_kb = s r.bram_kb;
    uram_kb = s r.uram_kb;
    dsps = s r.dsps;
  }

let fits ~need ~avail =
  need.luts <= avail.luts && need.dffs <= avail.dffs
  && need.bram_kb <= avail.bram_kb && need.uram_kb <= avail.uram_kb
  && need.dsps <= avail.dsps

let ratio used cap =
  if cap = 0 then if used = 0 then 0.0 else infinity
  else float_of_int used /. float_of_int cap

let utilization ~used ~cap =
  List.fold_left max 0.0
    [
      ratio used.luts cap.luts;
      ratio used.dffs cap.dffs;
      ratio used.bram_kb cap.bram_kb;
      ratio used.uram_kb cap.uram_kb;
      ratio used.dsps cap.dsps;
    ]

let mb kb = Printf.sprintf "%.1fMb" (float_of_int kb /. 1024.0)

let pp fmt r =
  Format.fprintf fmt "{luts=%d; dffs=%d; bram=%s; uram=%s; dsps=%d}" r.luts r.dffs
    (mb r.bram_kb) (mb r.uram_kb) r.dsps

let equal (a : t) b = a = b
