type kind = XCVU37P | XCKU115

type t = {
  kind : kind;
  name : string;
  capacity : Resource.t;
  base_freq_mhz : float;
  virtual_block_count : int;
  vb_region : Resource.t;
  lut_factor : float;
  dff_factor : float;
  has_uram : bool;
}

(* Capacities derived from Table 2's utilization percentages:
   XCVU37P: 610k LUTs = 46.8%, 659k DFFs = 25.3%, 51.5Mb BRAM = 72.6%,
   22.5Mb URAM = 8.3%, 7517 DSPs = 83.3%.
   XCKU115: 367k LUTs = 55.3%, 386k DFFs = 29.1%, 45.4Mb = 59.8%,
   5073 DSPs = 91.9%. *)
let vu37p =
  {
    kind = XCVU37P;
    name = "XCVU37P";
    capacity =
      Resource.make ~luts:1_303_680 ~dffs:2_607_360 ~bram_kb:72_627 (* 70.9 Mb *)
        ~uram_kb:276_480 (* 270 Mb *) ~dsps:9_024 ();
    base_freq_mhz = 400.0;
    (* ViTAL divides the fabric into identical virtual blocks; the
       region sizes below reproduce Table 3's utilization when one
       decomposed-accelerator block is mapped in. *)
    virtual_block_count = 15;
    vb_region =
      Resource.make ~luts:79_000 ~dffs:158_000 ~bram_kb:4_322 ~uram_kb:17_280
        ~dsps:580 ();
    lut_factor = 1.0;
    dff_factor = 1.0;
    has_uram = true;
  }

let ku115 =
  {
    kind = XCKU115;
    name = "XCKU115";
    capacity =
      Resource.make ~luts:663_360 ~dffs:1_326_720 ~bram_kb:77_824 (* 76 Mb *)
        ~uram_kb:0 ~dsps:5_520 ();
    base_freq_mhz = 300.0;
    virtual_block_count = 10;
    vb_region =
      Resource.make ~luts:50_600 ~dffs:83_500 ~bram_kb:5_266 ~uram_kb:0 ~dsps:552 ();
    lut_factor = 0.913;
    dff_factor = 0.888;
    has_uram = false;
  }

let get = function XCVU37P -> vu37p | XCKU115 -> ku115
let kinds = [ XCVU37P; XCKU115 ]
let kind_name = function XCVU37P -> "XCVU37P" | XCKU115 -> "XCKU115"

let of_name s =
  match String.lowercase_ascii s with
  | "xcvu37p" | "vu37p" -> Some XCVU37P
  | "xcku115" | "ku115" | "kcu115" -> Some XCKU115
  | _ -> None

let pp_kind fmt k = Format.pp_print_string fmt (kind_name k)
let equal_kind (a : kind) b = a = b
