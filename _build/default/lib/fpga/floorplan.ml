let clamp lo hi x = Float.max lo (Float.min hi x)

(* Frequency derating: an empty device routes at base frequency; a
   full one loses up to 30% without floorplanning.  Floorplanning
   recovers 5/6 of the loss (the paper's floorplanned designs hit
   their 400/300 MHz targets at 46-92% utilization). *)
let achieved_freq_mhz (d : Device.t) ~utilization ~floorplanned =
  let u = clamp 0.0 1.0 utilization in
  let loss =
    if floorplanned then
      (* Manual floorplanning holds the target clock up to the
         routability point (the paper's baselines reach 400/300 MHz at
         83-92% utilization); only the last few percent degrade. *)
      0.30 *. (Float.max 0.0 (u -. 0.92) /. 0.08) ** 2.0 *. 0.2
    else 0.30 *. (u ** 2.0)
  in
  d.base_freq_mhz *. (1.0 -. loss)

let route_success (_ : Device.t) ~utilization = utilization <= 0.98
