(** Resource estimation for RTL modules.

    Maps a flattened primitive census ({!Mlv_rtl.Design.prim_census})
    to a {!Resource.t} using standard FPGA mapping rules (1 LUT per
    bit of logic, DSP48 tiling for wide multipliers, 36kb BRAM
    granularity).  Used to annotate soft blocks so the partitioner
    and the virtual-block compiler can reason about feasibility. *)

open Mlv_rtl

(** [of_prim p] is the cost of a single primitive. *)
val of_prim : Ast.prim -> Resource.t

(** [of_census census] sums a census. *)
val of_census : (Ast.prim * int) list -> Resource.t

(** [of_module design name] estimates the full hierarchy under module
    [name]. *)
val of_module : Design.t -> string -> Resource.t
