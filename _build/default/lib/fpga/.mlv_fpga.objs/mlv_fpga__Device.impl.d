lib/fpga/device.ml: Format Resource String
