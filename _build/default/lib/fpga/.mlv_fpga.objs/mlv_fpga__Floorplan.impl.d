lib/fpga/floorplan.ml: Device Float
