lib/fpga/estimate.ml: Ast Design List Mlv_rtl Resource
