lib/fpga/floorplan.mli: Device
