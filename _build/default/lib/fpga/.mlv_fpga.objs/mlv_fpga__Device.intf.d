lib/fpga/device.mli: Format Resource
