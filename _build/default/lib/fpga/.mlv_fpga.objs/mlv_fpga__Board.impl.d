lib/fpga/board.ml:
