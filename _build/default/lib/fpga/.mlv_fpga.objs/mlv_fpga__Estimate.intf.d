lib/fpga/estimate.mli: Ast Design Mlv_rtl Resource
