lib/fpga/board.mli:
