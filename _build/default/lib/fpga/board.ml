type t = {
  dram_bandwidth_gbps : float;
  dram_latency_ns : float;
  pcie_bandwidth_gbps : float;
  pcie_latency_us : float;
  ring_bandwidth_gbps : float;
  ring_latency_us : float;
}

let default =
  {
    dram_bandwidth_gbps = 19.2;
    dram_latency_ns = 80.0;
    pcie_bandwidth_gbps = 12.0;
    pcie_latency_us = 1.2;
    ring_bandwidth_gbps = 12.5;
    (* ~100 Gbps serial *)
    ring_latency_us = 0.25;
  }

let transfer_time_us ~bandwidth_gbps ~latency_us ~bytes =
  latency_us +. (float_of_int bytes /. (bandwidth_gbps *. 1e9) *. 1e6)

let dram_read_time_us t ~bytes =
  transfer_time_us ~bandwidth_gbps:t.dram_bandwidth_gbps
    ~latency_us:(t.dram_latency_ns /. 1000.0) ~bytes

let dram_write_time_us = dram_read_time_us

let ring_transfer_time_us t ~bytes ~hops ~added_latency_us =
  let hops = max 1 hops in
  (float_of_int hops *. (t.ring_latency_us +. added_latency_us))
  +. (float_of_int bytes /. (t.ring_bandwidth_gbps *. 1e9) *. 1e6)

let pcie_transfer_time_us t ~bytes =
  transfer_time_us ~bandwidth_gbps:t.pcie_bandwidth_gbps ~latency_us:t.pcie_latency_us
    ~bytes
