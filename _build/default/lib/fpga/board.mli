(** Per-board peripherals: DRAM channel, PCIe endpoint, and the
    secondary ring-network port connecting the FPGAs (paper §4.2).

    These numbers feed the timing models: the DRAM bandwidth bounds
    instruction/vector streaming, PCIe bounds host I/O, and the ring
    port bounds inter-FPGA scale-out traffic. *)

type t = {
  dram_bandwidth_gbps : float;  (** one DDR4 channel, GB/s *)
  dram_latency_ns : float;
  pcie_bandwidth_gbps : float;  (** PCIe gen3 x16 effective *)
  pcie_latency_us : float;
  ring_bandwidth_gbps : float;  (** inter-FPGA serial link *)
  ring_latency_us : float;  (** one hop, no added delay *)
}

(** [default] is the evaluation cluster's board configuration. *)
val default : t

(** [dram_read_time_us t ~bytes] / [dram_write_time_us t ~bytes] are
    transfer times for a contiguous burst. *)
val dram_read_time_us : t -> bytes:int -> float

val dram_write_time_us : t -> bytes:int -> float

(** [ring_transfer_time_us t ~bytes ~hops ~added_latency_us] models a
    ring transfer: per-hop latency (plus the programmable delay
    module of §4.3's Fig. 11 experiment) and serialization time. *)
val ring_transfer_time_us :
  t -> bytes:int -> hops:int -> added_latency_us:float -> float

(** [pcie_transfer_time_us t ~bytes] is host <-> board time. *)
val pcie_transfer_time_us : t -> bytes:int -> float
