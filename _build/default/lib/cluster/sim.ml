module Pqueue = Mlv_util.Pqueue

type t = {
  queue : (unit -> unit) Pqueue.t;
  mutable now : float;
  mutable processed : int;
}

let create () = { queue = Pqueue.create (); now = 0.0; processed = 0 }
let now t = t.now

let schedule t ~delay f =
  if delay < 0.0 then invalid_arg "Sim.schedule: negative delay";
  Pqueue.push t.queue (t.now +. delay) f

let schedule_at t ~at f =
  if at < t.now then invalid_arg "Sim.schedule_at: time in the past";
  Pqueue.push t.queue at f

let step t =
  match Pqueue.pop t.queue with
  | None -> false
  | Some (time, f) ->
    t.now <- time;
    t.processed <- t.processed + 1;
    f ();
    true

let run ?until t =
  let continue () =
    match until with
    | None -> true
    | Some limit -> (
      match Pqueue.peek t.queue with
      | Some (time, _) -> time <= limit
      | None -> false)
  in
  while (not (Pqueue.is_empty t.queue)) && continue () do
    ignore (step t)
  done;
  match until with Some limit when t.now < limit && Pqueue.is_empty t.queue -> t.now <- limit | _ -> ()

let pending t = Pqueue.length t.queue
let events_processed t = t.processed
