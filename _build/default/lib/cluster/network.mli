(** The secondary bidirectional ring network connecting the FPGAs
    (paper §4.2), with the programmable delay module of §4.3 used to
    inject extra latency for the Fig. 11 sweep. *)

open Mlv_fpga

type t

(** [create sim ~nodes ~board] builds a ring over [nodes] FPGA
    positions using [board]'s link parameters. *)
val create : Sim.t -> nodes:int -> board:Board.t -> t

(** [set_added_latency_us t us] programs the artificial delay counter
    (applied per hop, as the on-fabric module does). *)
val set_added_latency_us : t -> float -> unit

val added_latency_us : t -> float

(** [hops t ~src ~dst] is the shortest direction around the ring. *)
val hops : t -> src:int -> dst:int -> int

(** [transfer t ~src ~dst ~bytes k] delivers [bytes] from node [src]
    to node [dst], invoking [k ()] at arrival time.  Transfers hold
    the directed ring segments along the shortest path
    (store-and-forward), so concurrent transfers sharing a segment
    queue behind each other; opposite directions do not contend.
    @raise Invalid_argument on out-of-range nodes. *)
val transfer : t -> src:int -> dst:int -> bytes:int -> (unit -> unit) -> unit

(** [transfer_time_us t ~src ~dst ~bytes] is the contention-free
    duration estimate (no scheduling, no segment state change). *)
val transfer_time_us : t -> src:int -> dst:int -> bytes:int -> float

(** [queueing_us t] accumulates time transfers spent waiting for busy
    segments — the congestion signal. *)
val queueing_us : t -> float

(** Cumulative statistics. *)
val bytes_sent : t -> int

val transfers : t -> int
