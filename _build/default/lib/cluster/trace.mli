(** Timestamped event tracing for simulations.

    A bounded ring of (time, label) events; the runtime and the
    system simulation record deployment decisions and task lifecycle
    events here so tests and tools can assert on system behaviour
    without scraping stdout. *)

type t

(** [create ?capacity ()] makes a trace keeping the last [capacity]
    events (default 4096). *)
val create : ?capacity:int -> unit -> t

(** [record t ~at label] appends an event. *)
val record : t -> at:float -> string -> unit

(** [events t] lists retained events oldest first. *)
val events : t -> (float * string) list

(** [matching t substring] filters events whose label contains
    [substring]. *)
val matching : t -> string -> (float * string) list

(** [length t] / [dropped t] count retained and evicted events. *)
val length : t -> int

val dropped : t -> int

(** [clear t] empties the trace. *)
val clear : t -> unit

(** [pp] prints one event per line. *)
val pp : Format.formatter -> t -> unit
