open Mlv_fpga

type t = {
  sim : Sim.t;
  nodes : int;
  board : Board.t;
  mutable added_latency_us : float;
  mutable bytes_sent : int;
  mutable transfers : int;
  (* Directed ring segments: index 2*i is the clockwise link leaving
     node i, 2*i+1 the counter-clockwise one.  Each holds the time
     the link becomes free; concurrent transfers over the same
     segment queue behind each other. *)
  seg_free : float array;
  mutable queueing_us : float;
}

let create sim ~nodes ~board =
  if nodes <= 0 then invalid_arg "Network.create: nodes must be positive";
  {
    sim;
    nodes;
    board;
    added_latency_us = 0.0;
    bytes_sent = 0;
    transfers = 0;
    seg_free = Array.make (2 * nodes) 0.0;
    queueing_us = 0.0;
  }

let set_added_latency_us t us = t.added_latency_us <- Float.max 0.0 us
let added_latency_us t = t.added_latency_us

let check_node t i =
  if i < 0 || i >= t.nodes then invalid_arg (Printf.sprintf "Network: node %d out of range" i)

let hops t ~src ~dst =
  check_node t src;
  check_node t dst;
  if src = dst then 0
  else begin
    let d = abs (dst - src) in
    min d (t.nodes - d)
  end

let transfer_time_us t ~src ~dst ~bytes =
  let hops = hops t ~src ~dst in
  if hops = 0 then 0.0
  else begin
    (* Store-and-forward: each hop pays latency plus serialization. *)
    let serialization =
      float_of_int bytes /. (t.board.Board.ring_bandwidth_gbps *. 1e9) *. 1e6
    in
    float_of_int hops
    *. (t.board.Board.ring_latency_us +. t.added_latency_us +. serialization)
  end

(* The directed segments along the shortest path (clockwise on a
   tie). *)
let path_segments t ~src ~dst =
  if src = dst then []
  else begin
    let fwd = (dst - src + t.nodes) mod t.nodes in
    let clockwise = fwd <= t.nodes - fwd in
    let hops = if clockwise then fwd else t.nodes - fwd in
    let rec go node i acc =
      if i = hops then List.rev acc
      else if clockwise then go ((node + 1) mod t.nodes) (i + 1) ((2 * node) :: acc)
      else
        go ((node - 1 + t.nodes) mod t.nodes) (i + 1) (((2 * ((node - 1 + t.nodes) mod t.nodes)) + 1) :: acc)
    in
    go src 0 []
  end

let transfer t ~src ~dst ~bytes k =
  check_node t src;
  check_node t dst;
  t.bytes_sent <- t.bytes_sent + bytes;
  t.transfers <- t.transfers + 1;
  if src = dst then Sim.schedule t.sim ~delay:0.0 k
  else begin
    (* Store-and-forward over each segment, queueing behind earlier
       transfers holding the link. *)
    let serialization = float_of_int bytes /. (t.board.Board.ring_bandwidth_gbps *. 1e9) *. 1e6 in
    let per_hop = t.board.Board.ring_latency_us +. t.added_latency_us in
    let now = Sim.now t.sim in
    let clock = ref now in
    List.iter
      (fun seg ->
        let start = Float.max !clock t.seg_free.(seg) in
        t.queueing_us <- t.queueing_us +. (start -. !clock);
        let finish = start +. per_hop +. serialization in
        t.seg_free.(seg) <- finish;
        clock := finish)
      (path_segments t ~src ~dst);
    Sim.schedule t.sim ~delay:(!clock -. now) k
  end

let bytes_sent t = t.bytes_sent
let transfers t = t.transfers
let queueing_us t = t.queueing_us
