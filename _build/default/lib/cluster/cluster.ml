open Mlv_fpga

type t = { sim : Sim.t; nodes : Node.t array; network : Network.t; board : Board.t }

let paper_kinds = [ Device.XCVU37P; Device.XCVU37P; Device.XCVU37P; Device.XCKU115 ]

let create ?(board = Board.default) ?(kinds = paper_kinds) () =
  if kinds = [] then invalid_arg "Cluster.create: empty device list";
  let sim = Sim.create () in
  let nodes =
    Array.of_list (List.mapi (fun id kind -> Node.create ~id ~kind ~board) kinds)
  in
  let network = Network.create sim ~nodes:(Array.length nodes) ~board in
  { sim; nodes; network; board }

let node t i =
  if i < 0 || i >= Array.length t.nodes then
    invalid_arg (Printf.sprintf "Cluster.node: %d out of range" i);
  t.nodes.(i)

let node_count t = Array.length t.nodes

let nodes_of_kind t kind =
  Array.to_list t.nodes
  |> List.filter_map (fun (n : Node.t) ->
         if Device.equal_kind n.Node.kind kind then Some n.Node.id else None)

let total_free_vbs t =
  Array.fold_left (fun acc n -> acc + Node.free_vbs n) 0 t.nodes
