(** The evaluation cluster: FPGAs on a PCIe host, connected by a
    bidirectional ring (paper §4.2: three XCVU37P and one XCKU115). *)

open Mlv_fpga

type t = { sim : Sim.t; nodes : Node.t array; network : Network.t; board : Board.t }

(** [create ?board ?kinds ()] builds a cluster.  Default [kinds] is
    the paper's: [[XCVU37P; XCVU37P; XCVU37P; XCKU115]]. *)
val create : ?board:Board.t -> ?kinds:Device.kind list -> unit -> t

(** [paper_kinds] is the default device mix. *)
val paper_kinds : Device.kind list

(** [node t i] fetches a node.
    @raise Invalid_argument when out of range. *)
val node : t -> int -> Node.t

val node_count : t -> int

(** [nodes_of_kind t kind] lists ring positions of that device type. *)
val nodes_of_kind : t -> Device.kind -> int list

(** [total_free_vbs t] sums free virtual blocks across the cluster. *)
val total_free_vbs : t -> int
