open Mlv_fpga

type t = {
  id : int;
  kind : Device.kind;
  controller : Mlv_vital.Controller.t;
  board : Board.t;
}

let create ~id ~kind ~board = { id; kind; controller = Mlv_vital.Controller.create kind; board }

let free_vbs t = Mlv_vital.Controller.free_vbs t.controller
let total_vbs t = Mlv_vital.Controller.total_vbs t.controller

let pp fmt t =
  Format.fprintf fmt "node%d(%s, %d/%d VBs free)" t.id (Device.kind_name t.kind)
    (free_vbs t) (total_vbs t)
