lib/cluster/network.mli: Board Mlv_fpga Sim
