lib/cluster/sim.ml: Mlv_obs Mlv_util
