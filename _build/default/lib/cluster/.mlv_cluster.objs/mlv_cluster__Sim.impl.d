lib/cluster/sim.ml: Mlv_util
