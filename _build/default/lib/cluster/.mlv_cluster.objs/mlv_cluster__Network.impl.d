lib/cluster/network.ml: Array Board Float List Mlv_fpga Printf Sim
