lib/cluster/cluster.mli: Board Device Mlv_fpga Network Node Sim
