lib/cluster/trace.mli: Format
