lib/cluster/node.ml: Board Device Format Mlv_fpga Mlv_vital
