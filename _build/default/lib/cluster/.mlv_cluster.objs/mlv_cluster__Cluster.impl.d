lib/cluster/cluster.ml: Array Board Device List Mlv_fpga Network Node Printf Sim
