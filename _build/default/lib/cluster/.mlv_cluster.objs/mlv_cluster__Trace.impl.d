lib/cluster/trace.ml: Array Format List String
