lib/cluster/node.mli: Board Device Format Mlv_fpga Mlv_vital
