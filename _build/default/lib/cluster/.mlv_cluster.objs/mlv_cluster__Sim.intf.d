lib/cluster/sim.mli:
