(** One physical FPGA position in the cluster: a device with its
    ViTAL low-level controller and board peripherals. *)

open Mlv_fpga

type t = {
  id : int;  (** ring position *)
  kind : Device.kind;
  controller : Mlv_vital.Controller.t;
  board : Board.t;
}

val create : id:int -> kind:Device.kind -> board:Board.t -> t

(** [free_vbs t] forwards to the controller. *)
val free_vbs : t -> int

val total_vbs : t -> int
val pp : Format.formatter -> t -> unit
