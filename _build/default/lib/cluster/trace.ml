type t = {
  capacity : int;
  buf : (float * string) option array;
  mutable next : int;
  mutable total : int;
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { capacity; buf = Array.make capacity None; next = 0; total = 0 }

let record t ~at label =
  t.buf.(t.next) <- Some (at, label);
  t.next <- (t.next + 1) mod t.capacity;
  t.total <- t.total + 1

let events t =
  let n = min t.total t.capacity in
  let start = if t.total <= t.capacity then 0 else t.next in
  List.init n (fun i ->
      match t.buf.((start + i) mod t.capacity) with
      | Some e -> e
      | None -> assert false)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  nn = 0 || at 0

let matching t sub = List.filter (fun (_, label) -> contains label sub) (events t)
let length t = min t.total t.capacity
let dropped t = max 0 (t.total - t.capacity)

let clear t =
  Array.fill t.buf 0 t.capacity None;
  t.next <- 0;
  t.total <- 0

let pp fmt t =
  List.iter (fun (at, label) -> Format.fprintf fmt "%12.2f %s@." at label) (events t)
