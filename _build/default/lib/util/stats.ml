let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev = function
  | [] | [ _ ] -> 0.0
  | xs ->
    let m = mean xs in
    let sq = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (sq /. float_of_int (List.length xs))

let percentile p = function
  | [] -> invalid_arg "Stats.percentile: empty list"
  | xs ->
    if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
    let arr = Array.of_list xs in
    (* Polymorphic compare silently misorders NaN (it sorts below
       every float, skewing every rank); reject it and sort with the
       float-aware comparison. *)
    Array.iter
      (fun x -> if Float.is_nan x then invalid_arg "Stats.percentile: NaN sample")
      arr;
    Array.sort Float.compare arr;
    let n = Array.length arr in
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = int_of_float (ceil rank) in
    if lo = hi then arr.(lo)
    else begin
      let w = rank -. float_of_int lo in
      (arr.(lo) *. (1.0 -. w)) +. (arr.(hi) *. w)
    end

let median xs = percentile 50.0 xs

let geomean = function
  | [] -> invalid_arg "Stats.geomean: empty list"
  | xs ->
    let sum_log =
      List.fold_left
        (fun acc x ->
          if x <= 0.0 then invalid_arg "Stats.geomean: non-positive sample";
          acc +. log x)
        0.0 xs
    in
    exp (sum_log /. float_of_int (List.length xs))

module Acc = struct
  type t = {
    mutable count : int;
    mutable sum : float;
    mutable min : float;
    mutable max : float;
  }

  let create () = { count = 0; sum = 0.0; min = infinity; max = neg_infinity }

  let add t x =
    t.count <- t.count + 1;
    t.sum <- t.sum +. x;
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.count
  let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count
  let min t = t.min
  let max t = t.max
  let sum t = t.sum
end
