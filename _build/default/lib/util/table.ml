type align = Left | Right
type row = Cells of string list | Sep

type t = {
  title : string option;
  headers : string list;
  ncols : int;
  mutable aligns : align array;
  mutable rows : row list; (* reversed *)
}

let create ?title headers =
  let ncols = List.length headers in
  let aligns = Array.make (max 1 ncols) Right in
  if ncols > 0 then aligns.(0) <- Left;
  { title; headers; ncols; aligns; rows = [] }

let set_align t col align = t.aligns.(col) <- align

let add_row t cells =
  if List.length cells <> t.ncols then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- Cells cells :: t.rows

let add_sep t = t.rows <- Sep :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else begin
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  end

let render t =
  let rows = List.rev t.rows in
  let widths = Array.make t.ncols 0 in
  let measure cells =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
  in
  measure t.headers;
  List.iter (function Cells c -> measure c | Sep -> ()) rows;
  let buf = Buffer.create 256 in
  let hline () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let emit cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad t.aligns.(i) widths.(i) c);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  (match t.title with
  | Some title ->
    Buffer.add_string buf title;
    Buffer.add_char buf '\n'
  | None -> ());
  hline ();
  emit t.headers;
  hline ();
  List.iter (function Cells c -> emit c | Sep -> hline ()) rows;
  hline ();
  Buffer.contents buf

let print t = print_string (render t)

let fmt_float ?(digits = 4) x =
  let s = Printf.sprintf "%.*f" digits x in
  (* Trim trailing zeros but keep at least one decimal. *)
  let rec trim i = if i > 0 && s.[i] = '0' && s.[i - 1] <> '.' then trim (i - 1) else i in
  if String.contains s '.' then String.sub s 0 (trim (String.length s - 1) + 1) else s

let fmt_pct x = Printf.sprintf "%.1f%%" (x *. 100.0)
