(** Classic disjoint-set forest with path compression and union by
    rank.  Used by the decomposer to cluster equivalent soft blocks. *)

type t

(** [create n] makes [n] singleton sets labelled [0 .. n-1]. *)
val create : int -> t

(** [find t i] is the canonical representative of [i]'s set. *)
val find : t -> int -> int

(** [union t i j] merges the sets of [i] and [j]; returns the
    representative of the merged set. *)
val union : t -> int -> int -> int

(** [same t i j] tests whether [i] and [j] are in the same set. *)
val same : t -> int -> int -> bool

(** [groups t] lists the sets as (representative, members) with members
    in increasing order. *)
val groups : t -> (int * int list) list
