type 'a entry = { prio : float; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }
let length t = t.size
let is_empty t = t.size = 0

(* [a] is before [b] in heap order: lower priority first, lower
   insertion sequence breaking ties. *)
let before a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let grow t =
  let cap = Array.length t.heap in
  if t.size = cap then begin
    let new_cap = max 16 (2 * cap) in
    let dummy = t.heap.(0) in
    let heap = Array.make new_cap dummy in
    Array.blit t.heap 0 heap 0 t.size;
    t.heap <- heap
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(parent);
      t.heap.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(!smallest);
    t.heap.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t prio value =
  let entry = { prio; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  if Array.length t.heap = 0 then t.heap <- Array.make 16 entry;
  grow t;
  t.heap.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      sift_down t 0;
      (* Overwrite the vacated slot: it still held the last entry,
         keeping the moved value (and with it e.g. popped simulator
         closures capturing whole deployments) reachable until the
         slot was reused.  Aliasing a live entry makes the slot hold
         nothing extra. *)
      t.heap.(t.size) <- t.heap.(0)
    end
    else
      (* Shrink on clear: the queue is empty, so drop the backing
         array rather than pin its entries. *)
      t.heap <- [||];
    Some (top.prio, top.value)
  end

let peek t = if t.size = 0 then None else Some (t.heap.(0).prio, t.heap.(0).value)

let clear t =
  t.size <- 0;
  t.heap <- [||]
