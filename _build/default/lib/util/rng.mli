(** Deterministic, splittable pseudo-random number generator.

    All stochastic behaviour in the framework (workload arrival times,
    random-simulation equivalence checking, synthetic benchmark
    generation) is driven through this module so that every experiment
    is reproducible from a single integer seed.  The generator is a
    SplitMix64 core, which has a 64-bit state, passes BigCrush, and
    supports O(1) splitting. *)

type t

(** [create seed] returns a fresh generator deterministically derived
    from [seed]. *)
val create : int -> t

(** [split t] returns a new generator whose stream is statistically
    independent from [t]'s subsequent output.  Used to hand independent
    streams to subcomponents without sharing mutable state. *)
val split : t -> t

(** [bits64 t] returns the next raw 64-bit output. *)
val bits64 : t -> int64

(** [int t bound] returns a uniform integer in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)
val int : t -> int -> int

(** [float t bound] returns a uniform float in [\[0, bound)]. *)
val float : t -> float -> float

(** [bool t] returns a uniform boolean. *)
val bool : t -> bool

(** [exponential t ~mean] samples an exponential distribution with the
    given mean; used for arrival inter-times. *)
val exponential : t -> mean:float -> float

(** [gaussian t ~mu ~sigma] samples a normal distribution via the
    Box-Muller transform. *)
val gaussian : t -> mu:float -> sigma:float -> float

(** [shuffle t arr] permutes [arr] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit

(** [choose t lst] picks a uniform element of [lst].
    @raise Invalid_argument on the empty list. *)
val choose : t -> 'a list -> 'a
