(** ASCII table rendering for the benchmark harness, in the style of
    the tables in the paper. *)

type align = Left | Right

type t

(** [create ~title headers] starts a table with column [headers].
    Columns are right-aligned by default except the first. *)
val create : ?title:string -> string list -> t

(** [set_align t col align] overrides the alignment of column [col]
    (0-indexed). *)
val set_align : t -> int -> align -> unit

(** [add_row t cells] appends one row.
    @raise Invalid_argument if the arity differs from the header. *)
val add_row : t -> string list -> unit

(** [add_sep t] appends a horizontal separator row. *)
val add_sep : t -> unit

(** [render t] produces the complete table as a string. *)
val render : t -> string

(** [print t] writes [render t] to stdout. *)
val print : t -> unit

(** [fmt_float ?digits x] formats with [digits] decimals (default 4),
    trimming to a compact representation. *)
val fmt_float : ?digits:int -> float -> string

(** [fmt_pct x] formats a ratio [x] as a percentage with one decimal,
    e.g. [fmt_pct 0.078 = "7.8%"]. *)
val fmt_pct : float -> string
