type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = bits64 t in
  { state = mix64 s }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Mask to the native 63-bit non-negative range before reducing. *)
  let r = Int64.to_int (Int64.logand (bits64 t) (Int64.of_int max_int)) in
  r mod bound

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  (* 53 significant bits, same construction as Random.float *)
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t ~mean =
  let u = float t 1.0 in
  (* Avoid log 0 *)
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

let gaussian t ~mu ~sigma =
  let u1 = max 1e-12 (float t 1.0) in
  let u2 = float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let choose t = function
  | [] -> invalid_arg "Rng.choose: empty list"
  | lst -> List.nth lst (int t (List.length lst))
