lib/util/table.mli:
