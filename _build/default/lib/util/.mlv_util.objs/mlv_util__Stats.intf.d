lib/util/stats.mli:
