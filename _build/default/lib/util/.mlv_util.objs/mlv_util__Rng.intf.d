lib/util/rng.mli:
