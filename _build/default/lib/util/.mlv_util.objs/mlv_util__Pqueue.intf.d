lib/util/pqueue.mli:
