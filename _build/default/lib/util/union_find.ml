type t = { parent : int array; rank : int array }

let create n = { parent = Array.init n (fun i -> i); rank = Array.make n 0 }

let rec find t i =
  let p = t.parent.(i) in
  if p = i then i
  else begin
    let root = find t p in
    t.parent.(i) <- root;
    root
  end

let union t i j =
  let ri = find t i and rj = find t j in
  if ri = rj then ri
  else if t.rank.(ri) < t.rank.(rj) then begin
    t.parent.(ri) <- rj;
    rj
  end
  else if t.rank.(ri) > t.rank.(rj) then begin
    t.parent.(rj) <- ri;
    ri
  end
  else begin
    t.parent.(rj) <- ri;
    t.rank.(ri) <- t.rank.(ri) + 1;
    ri
  end

let same t i j = find t i = find t j

let groups t =
  let tbl = Hashtbl.create 16 in
  let n = Array.length t.parent in
  for i = n - 1 downto 0 do
    let r = find t i in
    let members = try Hashtbl.find tbl r with Not_found -> [] in
    Hashtbl.replace tbl r (i :: members)
  done;
  Hashtbl.fold (fun r members acc -> (r, members) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
