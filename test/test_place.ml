(* Placement-engine tests: the indexed allocator must make
   byte-identical decisions to the naive snapshot-scan path under
   every policy, and the capacity index must never drift from the
   controllers across deploy/undeploy/fail/restore/rebalance churn. *)

module Mapping = Mlv_core.Mapping
module Mapdb = Mlv_core.Mapdb
module Registry = Mlv_core.Registry
module Runtime = Mlv_core.Runtime
module Framework = Mlv_core.Framework
module SB = Mlv_core.Soft_block
module Device = Mlv_fpga.Device
module Resource = Mlv_fpga.Resource
module Cluster = Mlv_cluster.Cluster
module Node = Mlv_cluster.Node
module Bitstream = Mlv_vital.Bitstream
module Rng = Mlv_util.Rng

let registry =
  lazy (Framework.npu_registry ~tile_counts:[ 6; 21 ] ())

(* 9 XCVU37P + 3 XCKU115, a mid-size heterogeneous pod. *)
let pod_kinds =
  List.init 12 (fun i -> if i mod 4 = 3 then Device.XCKU115 else Device.XCVU37P)

(* ---------------- shape key ---------------- *)

let res l = Resource.make ~luts:l ()
let mk_leaf ?(m = "m") name = SB.leaf ~name ~module_name:m ~resources:(res 10) ()

let test_shape_key () =
  let a = SB.pipeline ~name:"a" [ mk_leaf "x"; SB.data_par ~name:"d" [ mk_leaf "y"; mk_leaf "y2" ] ] in
  let b = SB.pipeline ~name:"b" [ mk_leaf "p"; SB.data_par ~name:"e" [ mk_leaf "q"; mk_leaf "r" ] ] in
  let c = SB.pipeline ~name:"c" [ mk_leaf ~m:"other" "x"; SB.data_par ~name:"d" [ mk_leaf "y"; mk_leaf "y2" ] ] in
  Alcotest.(check bool) "equal shapes, equal keys" true
    (SB.equal_shape a b && SB.shape_key a = SB.shape_key b);
  Alcotest.(check bool) "different module, different key" true
    ((not (SB.equal_shape a c)) && SB.shape_key a <> SB.shape_key c);
  let flat = SB.data_par ~name:"f" [ mk_leaf "x"; mk_leaf "y" ] in
  let deep = SB.data_par ~name:"g" [ SB.data_par ~name:"h" [ mk_leaf "x"; mk_leaf "y" ] ] in
  Alcotest.(check bool) "structure in key" true (SB.shape_key flat <> SB.shape_key deep)

(* ---------------- mapdb plans ---------------- *)

let test_mapdb_plan () =
  let r = Lazy.force registry in
  match Registry.plan r "npu-t21" with
  | None -> Alcotest.fail "npu-t21 not registered"
  | Some plan ->
    let counts = List.map (fun lp -> lp.Mapdb.piece_count) plan.Mapdb.fewest_first in
    Alcotest.(check (list int)) "fewest-first ascending" (List.sort compare counts) counts;
    Alcotest.(check (list int)) "most-first is the reverse"
      (List.rev counts)
      (List.map (fun lp -> lp.Mapdb.piece_count) plan.Mapdb.most_first);
    List.iter
      (fun lp ->
        Alcotest.(check int) "piece_count matches" lp.Mapdb.piece_count
          (List.length lp.Mapdb.pieces);
        let tiles = List.map (fun pp -> pp.Mapdb.piece.Mapping.tiles) lp.Mapdb.pieces in
        Alcotest.(check (list int)) "allocation order: tiles descending"
          (List.sort (fun a b -> compare b a) tiles)
          tiles;
        List.iter
          (fun pp ->
            List.iter
              (fun kind ->
                let restricted = Mapdb.options pp ~kind:(Some kind) in
                Alcotest.(check bool) "per-kind table is the kind subset" true
                  (List.for_all (fun (k, _) -> Device.equal_kind k kind) restricted
                  && List.length restricted
                     = List.length
                         (List.filter
                            (fun (k, _) -> Device.equal_kind k kind)
                            (Mapdb.options pp ~kind:None))))
              Device.kinds)
          lp.Mapdb.pieces)
      plan.Mapdb.fewest_first;
    List.iter
      (fun lp -> Alcotest.(check int) "single levels only" 1 lp.Mapdb.piece_count)
      plan.Mapdb.single_fewest

(* ---------------- differential: indexed ≡ naive ---------------- *)

type op = Deploy of string | Undeploy of int | Fail of int | Restore of int | Rebalance

let script =
  [
    Deploy "npu-t6"; Deploy "npu-t6"; Deploy "npu-t6"; Deploy "npu-t21";
    Undeploy 1; Deploy "npu-t6"; Fail 2; Deploy "npu-t6"; Restore 2;
    Deploy "npu-t21"; Rebalance; Deploy "npu-t6"; Deploy "npu-t6";
    Undeploy 0; Deploy "npu-t21"; Deploy "npu-t6"; Deploy "npu-t6";
    Deploy "npu-t6"; Fail 7; Deploy "npu-t6"; Deploy "npu-t6";
    Deploy "npu-t6"; Restore 7; Deploy "npu-t21"; Deploy "npu-t6";
    Rebalance; Deploy "npu-t6"; Deploy "npu-t6"; Deploy "npu-t21";
  ]

let placement_sig (d : Runtime.deployment) =
  List.map
    (fun (p : Runtime.placement) ->
      (p.Runtime.node_id, Bitstream.id p.Runtime.bitstream, p.Runtime.bitstream.Bitstream.vbs))
    d.Runtime.placements

let free_state cluster =
  List.init (Cluster.node_count cluster) (fun i -> Node.free_vbs (Cluster.node cluster i))

let sig_t = Alcotest.(list (triple int string int))

let run_differential policy =
  let r = Lazy.force registry in
  let ca = Cluster.create ~kinds:pod_kinds () in
  let cb = Cluster.create ~kinds:pod_kinds () in
  let ra = Runtime.create ~policy ~indexed:true ca r in
  let rb = Runtime.create ~policy ~indexed:false cb r in
  Alcotest.(check bool) "a indexed" true (Runtime.indexed ra);
  Alcotest.(check bool) "b naive" false (Runtime.indexed rb);
  let live_a = ref [] and live_b = ref [] in
  List.iteri
    (fun step op ->
      let ctx = Printf.sprintf "%s step %d" policy.Runtime.policy_name step in
      (match op with
      | Deploy accel -> (
        match (Runtime.deploy ra ~accel, Runtime.deploy rb ~accel) with
        | Ok da, Ok db ->
          Alcotest.check sig_t (ctx ^ ": same placements") (placement_sig db)
            (placement_sig da);
          live_a := !live_a @ [ da ];
          live_b := !live_b @ [ db ]
        | Error ea, Error eb -> Alcotest.(check string) (ctx ^ ": same error") eb ea
        | Ok _, Error e -> Alcotest.failf "%s: indexed placed, naive failed: %s" ctx e
        | Error e, Ok _ -> Alcotest.failf "%s: naive placed, indexed failed: %s" ctx e)
      | Undeploy i ->
        if i < List.length !live_a then begin
          Runtime.undeploy ra (List.nth !live_a i);
          Runtime.undeploy rb (List.nth !live_b i);
          live_a := List.filteri (fun j _ -> j <> i) !live_a;
          live_b := List.filteri (fun j _ -> j <> i) !live_b
        end
      | Fail n ->
        let fa = Runtime.fail_node ra n in
        let fb = Runtime.fail_node rb n in
        Alcotest.(check int) (ctx ^ ": same recovered") fb.Runtime.recovered
          fa.Runtime.recovered;
        Alcotest.(check int)
          (ctx ^ ": same lost")
          (List.length fb.Runtime.lost)
          (List.length fa.Runtime.lost);
        live_a := List.filter (fun d -> not (List.memq d fa.Runtime.lost)) !live_a;
        live_b := List.filter (fun d -> not (List.memq d fb.Runtime.lost)) !live_b
      | Restore n ->
        Runtime.restore_node ra n;
        Runtime.restore_node rb n
      | Rebalance -> (
        match (Runtime.rebalance ra, Runtime.rebalance rb) with
        | Ok ma, Ok mb -> Alcotest.(check int) (ctx ^ ": same moved") mb ma
        | Error ea, Error eb -> Alcotest.(check string) (ctx ^ ": same error") eb ea
        | _ -> Alcotest.failf "%s: rebalance outcomes diverged" ctx));
      Alcotest.(check (list int))
        (ctx ^ ": same free blocks per node")
        (free_state cb) (free_state ca);
      (* every live pair must agree placement-for-placement *)
      List.iter2
        (fun da db ->
          Alcotest.check sig_t (ctx ^ ": live placements agree") (placement_sig db)
            (placement_sig da))
        !live_a !live_b;
      Alcotest.(check bool) (ctx ^ ": index consistent") true (Runtime.index_consistent ra))
    script

let test_differential_greedy () = run_differential Runtime.greedy
let test_differential_restricted () = run_differential Runtime.restricted
let test_differential_baseline () = run_differential Runtime.baseline
let test_differential_first_fit () = run_differential Runtime.first_fit

(* ---------------- churn invariant ---------------- *)

let test_churn_invariant () =
  let r = Lazy.force registry in
  let cluster = Cluster.create ~kinds:pod_kinds () in
  let total0 = Cluster.total_free_vbs cluster in
  let rt = Runtime.create ~policy:Runtime.greedy cluster r in
  let rng = Rng.create 42 in
  let nodes = Cluster.node_count cluster in
  for step = 1 to 400 do
    let roll = Rng.int rng 100 in
    (if roll < 45 then
       ignore
         (Runtime.deploy rt ~accel:(if Rng.bool rng then "npu-t6" else "npu-t21"))
     else if roll < 75 then (
       match Runtime.deployments rt with
       | [] -> ()
       | l -> Runtime.undeploy rt (Rng.choose rng l))
     else if roll < 85 then (
       let n = Rng.int rng nodes in
       if not (List.mem n (Runtime.failed_nodes rt)) then
         ignore (Runtime.fail_node rt n))
     else if roll < 95 then (
       match Runtime.failed_nodes rt with
       | [] -> ()
       | l -> Runtime.restore_node rt (Rng.choose rng l))
     else ignore (Runtime.rebalance rt));
    if not (Runtime.index_consistent rt) then
      Alcotest.failf "index drifted from controllers at step %d" step
  done;
  (* drain: everything released, every block accounted for *)
  List.iter (Runtime.undeploy rt) (Runtime.deployments rt);
  List.iter (Runtime.restore_node rt) (Runtime.failed_nodes rt);
  Alcotest.(check bool) "index consistent after drain" true (Runtime.index_consistent rt);
  Alcotest.(check int) "no leaked virtual blocks" total0 (Cluster.total_free_vbs cluster)

let () =
  Alcotest.run "place"
    [
      ( "mapdb",
        [
          Alcotest.test_case "shape key" `Quick test_shape_key;
          Alcotest.test_case "deployment plan" `Quick test_mapdb_plan;
        ] );
      ( "differential",
        [
          Alcotest.test_case "greedy" `Quick test_differential_greedy;
          Alcotest.test_case "restricted" `Quick test_differential_restricted;
          Alcotest.test_case "baseline" `Quick test_differential_baseline;
          Alcotest.test_case "first_fit" `Quick test_differential_first_fit;
        ] );
      ( "churn",
        [ Alcotest.test_case "index never drifts" `Quick test_churn_invariant ] );
    ]
