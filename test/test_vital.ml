(* Tests for the HS abstraction: virtual blocks (Table 3), the
   bin-packing compiler, bitstreams and the low-level controller. *)

module Virtual_block = Mlv_vital.Virtual_block
module Compile = Mlv_vital.Compile
module Bitstream = Mlv_vital.Bitstream
module Controller = Mlv_vital.Controller
module Device = Mlv_fpga.Device
module Resource = Mlv_fpga.Resource

(* ---------------- Virtual blocks ---------------- *)

let test_vb_counts () =
  Alcotest.(check int) "VU37P blocks" 15 (Virtual_block.count Device.XCVU37P);
  Alcotest.(check int) "KU115 blocks" 10 (Virtual_block.count Device.XCKU115)

let test_vb_regions_fit_device () =
  List.iter
    (fun kind ->
      let d = Device.get kind in
      Alcotest.(check bool) "regions fit" true
        (Resource.fits
           ~need:(Resource.scale (Virtual_block.count kind) (Virtual_block.region kind))
           ~avail:d.Device.capacity))
    Device.kinds

let test_vb_engines_per_block () =
  Alcotest.(check int) "VU37P 2/block" 2 (Virtual_block.engines_per_block Device.XCVU37P);
  Alcotest.(check int) "KU115 2/block" 2 (Virtual_block.engines_per_block Device.XCKU115)

let test_table3_report () =
  (* One virtual block's usage reproduces Table 3 within 5%. *)
  let close label expect actual =
    let rel = Float.abs (float_of_int actual -. expect) /. expect in
    Alcotest.(check bool) (Printf.sprintf "%s (%d vs %.0f)" label actual expect) true
      (rel <= 0.05)
  in
  let r = Virtual_block.implementation_report Device.XCVU37P in
  close "VU37P LUTs" 44_900.0 r.Virtual_block.used.Resource.luts;
  close "VU37P DFFs" 48_800.0 r.Virtual_block.used.Resource.dffs;
  close "VU37P BRAM" (3.9 *. 1024.0) r.Virtual_block.used.Resource.bram_kb;
  close "VU37P DSPs" 576.0 r.Virtual_block.used.Resource.dsps;
  Alcotest.(check (float 1.0)) "400 MHz" 400.0 r.Virtual_block.freq_mhz;
  Alcotest.(check bool) "peak ~3.3-3.7 TFLOPS" true
    (r.Virtual_block.peak_tflops > 3.0 && r.Virtual_block.peak_tflops < 4.0);
  let rk = Virtual_block.implementation_report Device.XCKU115 in
  close "KU115 LUTs" 39_900.0 rk.Virtual_block.used.Resource.luts;
  close "KU115 DSPs" 552.0 rk.Virtual_block.used.Resource.dsps;
  Alcotest.(check (float 1.0)) "300 MHz" 300.0 rk.Virtual_block.freq_mhz

(* ---------------- Compile ---------------- *)

let engine kind = Virtual_block.engine_mapped_resources kind

let test_compile_packs_two_per_block () =
  let units =
    [ { Compile.unit_name = "engine"; resources = engine Device.XCVU37P; replicas = 4 } ]
  in
  match Compile.compile Device.XCVU37P units with
  | Error e -> Alcotest.fail e
  | Ok m ->
    Alcotest.(check int) "2 blocks for 4 engines" 2 m.Compile.vbs_used;
    Alcotest.(check int) "4 placements" 4 (List.length m.Compile.placements)

let test_compile_crossings () =
  (* A pipeline of two engine-sized units in one block: 0 crossings;
     three blocks worth: crossings appear. *)
  let unit name = { Compile.unit_name = name; resources = engine Device.XCVU37P; replicas = 1 } in
  (match Compile.compile Device.XCVU37P [ unit "a"; unit "b" ] with
  | Ok m -> Alcotest.(check int) "same block" 0 m.Compile.crossings
  | Error e -> Alcotest.fail e);
  match Compile.compile Device.XCVU37P [ unit "a"; unit "b"; unit "c"; unit "d"; unit "e" ] with
  | Ok m ->
    Alcotest.(check int) "3 blocks" 3 m.Compile.vbs_used;
    Alcotest.(check int) "2 crossings" 2 m.Compile.crossings
  | Error e -> Alcotest.fail e

let test_compile_unit_too_big () =
  let units =
    [
      {
        Compile.unit_name = "huge";
        resources = Resource.make ~luts:1_000_000 ();
        replicas = 1;
      };
    ]
  in
  match Compile.compile Device.XCVU37P units with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted oversized unit"

let test_compile_out_of_blocks () =
  let units =
    [ { Compile.unit_name = "engine"; resources = engine Device.XCKU115; replicas = 100 } ]
  in
  match Compile.compile Device.XCKU115 units with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted overflow"

let test_vbs_needed () =
  let units =
    [ { Compile.unit_name = "engine"; resources = engine Device.XCVU37P; replicas = 6 } ]
  in
  Alcotest.(check (option int)) "3 blocks" (Some 3)
    (Compile.vbs_needed Device.XCVU37P units);
  let too_many =
    [ { Compile.unit_name = "engine"; resources = engine Device.XCVU37P; replicas = 99 } ]
  in
  Alcotest.(check (option int)) "infeasible" None
    (Compile.vbs_needed Device.XCVU37P too_many)

(* ---------------- Bitstream ---------------- *)

let bs ?(vbs = 3) ?(device = Device.XCVU37P) () =
  Bitstream.make ~accel_name:"npu-t21" ~partition_id:"p1/0" ~device ~vbs ~crossings:1
    ~freq_mhz:400.0 ~tiles:11

let test_bitstream_id () =
  Alcotest.(check string) "id" "npu-t21/p1/0@XCVU37P" (Bitstream.id (bs ()))

(* ---------------- Bitstream cache ---------------- *)

let part i =
  Bitstream.make ~accel_name:"npu-t21"
    ~partition_id:(Printf.sprintf "p%d/0" i)
    ~device:Device.XCVU37P ~vbs:3 ~crossings:1 ~freq_mhz:400.0 ~tiles:11

let test_cache_hit_pricing () =
  let c = Bitstream.Cache.create ~capacity:4 ~hit_cost_factor:0.1 () in
  Alcotest.(check (float 1e-9)) "miss pays full" 100.0
    (Bitstream.Cache.charge c (part 0) ~base_us:100.0);
  Alcotest.(check (float 1e-9)) "hit pays the factor" 10.0
    (Bitstream.Cache.charge c (part 0) ~base_us:100.0);
  Alcotest.(check int) "one hit" 1 (Bitstream.Cache.hits c);
  Alcotest.(check int) "one miss" 1 (Bitstream.Cache.misses c);
  Alcotest.(check (float 1e-9)) "hit rate" 0.5 (Bitstream.Cache.hit_rate c);
  (* the same partition on a different device kind is a different key *)
  let other =
    Bitstream.make ~accel_name:"npu-t21" ~partition_id:"p0/0"
      ~device:Device.XCKU115 ~vbs:3 ~crossings:1 ~freq_mhz:400.0 ~tiles:11
  in
  Alcotest.(check (float 1e-9)) "kind is part of the key" 100.0
    (Bitstream.Cache.charge c other ~base_us:100.0)

let test_cache_lru_eviction () =
  let c = Bitstream.Cache.create ~capacity:2 () in
  ignore (Bitstream.Cache.charge c (part 0) ~base_us:1.0);
  ignore (Bitstream.Cache.charge c (part 1) ~base_us:1.0);
  (* touch p0 so p1 becomes the LRU entry *)
  ignore (Bitstream.Cache.charge c (part 0) ~base_us:1.0);
  ignore (Bitstream.Cache.charge c (part 2) ~base_us:1.0);
  Alcotest.(check int) "capacity held" 2 (Bitstream.Cache.length c);
  Alcotest.(check int) "one eviction" 1 (Bitstream.Cache.evictions c);
  Alcotest.(check bool) "recently-used survives" true
    (Bitstream.Cache.mem c (part 0));
  Alcotest.(check bool) "LRU evicted" false (Bitstream.Cache.mem c (part 1));
  Alcotest.(check bool) "newcomer cached" true (Bitstream.Cache.mem c (part 2))

let test_cache_validation () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Bitstream.Cache.create: capacity <= 0")
    (fun () -> ignore (Bitstream.Cache.create ~capacity:0 ()));
  Alcotest.check_raises "bad factor"
    (Invalid_argument "Bitstream.Cache.create: hit_cost_factor outside [0,1]")
    (fun () -> ignore (Bitstream.Cache.create ~hit_cost_factor:1.5 ()))

(* ---------------- Controller ---------------- *)

let test_controller_load_unload () =
  let c = Controller.create Device.XCVU37P in
  Alcotest.(check int) "all free" 15 (Controller.free_vbs c);
  match Controller.load c (bs ()) with
  | Error e -> Alcotest.fail e
  | Ok (h, time_us) ->
    Alcotest.(check bool) "reconfig time positive" true (time_us > 0.0);
    Alcotest.(check int) "3 used" 12 (Controller.free_vbs c);
    Alcotest.(check int) "one loaded" 1 (List.length (Controller.loaded c));
    Controller.unload c h;
    Alcotest.(check int) "freed" 15 (Controller.free_vbs c);
    Controller.unload c h;
    Alcotest.(check int) "idempotent" 15 (Controller.free_vbs c)

let test_controller_capacity () =
  let c = Controller.create Device.XCKU115 in
  (* 10 blocks: 3 loads of 3 fit, the 4th of 3 does not. *)
  let load () = Controller.load c (bs ~device:Device.XCKU115 ()) in
  (match (load (), load (), load ()) with
  | Ok _, Ok _, Ok _ -> ()
  | _ -> Alcotest.fail "first three should fit");
  match load () with
  | Error _ -> Alcotest.(check int) "1 left" 1 (Controller.free_vbs c)
  | Ok _ -> Alcotest.fail "fourth should not fit"

let test_controller_kind_mismatch () =
  let c = Controller.create Device.XCKU115 in
  match Controller.load c (bs ~device:Device.XCVU37P ()) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted wrong device kind"

let test_controller_foreign_handle () =
  let c1 = Controller.create Device.XCVU37P in
  let c2 = Controller.create Device.XCVU37P in
  match Controller.load c1 (bs ()) with
  | Error e -> Alcotest.fail e
  | Ok (h, _) ->
    Alcotest.(check bool) "foreign rejected" true
      (try
         Controller.unload c2 h;
         false
       with Invalid_argument _ -> true)

let test_reconfig_time_scales () =
  let t1 = Controller.reconfig_time_us Device.XCVU37P ~vbs:1 in
  let t4 = Controller.reconfig_time_us Device.XCVU37P ~vbs:4 in
  Alcotest.(check bool) "scales" true (t4 > 3.0 *. t1)

(* Property: any mix of loads/unloads conserves blocks. *)
let prop_controller_conservation =
  QCheck.Test.make ~name:"controller conserves blocks" ~count:50
    QCheck.(list_of_size (QCheck.Gen.int_range 1 20) (int_range 1 4))
    (fun sizes ->
      let c = Controller.create Device.XCVU37P in
      let handles =
        List.filter_map
          (fun vbs ->
            match Controller.load c (bs ~vbs ()) with
            | Ok (h, _) -> Some h
            | Error _ -> None)
          sizes
      in
      List.iter (Controller.unload c) handles;
      Controller.free_vbs c = 15)


let test_compile_bfd_strategy () =
  (* BFD packs a mixed workload into no more blocks than pipeline
     order, and both place every replica. *)
  let units =
    [
      { Compile.unit_name = "big"; resources = engine Device.XCVU37P; replicas = 5 };
      {
        Compile.unit_name = "small";
        resources = Resource.make ~luts:5_000 ~dsps:30 ();
        replicas = 6;
      };
    ]
  in
  let run strategy =
    match Compile.compile ~strategy Device.XCVU37P units with
    | Ok m -> m
    | Error e -> Alcotest.fail e
  in
  let po = run Compile.Pipeline_order in
  let bfd = run Compile.Best_fit_decreasing in
  Alcotest.(check int) "po places all" 11 (List.length po.Compile.placements);
  Alcotest.(check int) "bfd places all" 11 (List.length bfd.Compile.placements);
  Alcotest.(check bool) "bfd no worse on blocks" true
    (bfd.Compile.vbs_used <= po.Compile.vbs_used)

let test_compile_bfd_errors () =
  (match
     Compile.compile ~strategy:Compile.Best_fit_decreasing Device.XCVU37P
       [ { Compile.unit_name = "huge"; resources = Resource.make ~luts:1_000_000 (); replicas = 1 } ]
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted oversized unit");
  match
    Compile.compile ~strategy:Compile.Best_fit_decreasing Device.XCKU115
      [ { Compile.unit_name = "engine"; resources = engine Device.XCKU115; replicas = 100 } ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted overflow"

(* Property: both strategies respect region capacity in every block. *)
let prop_packing_capacity =
  QCheck.Test.make ~name:"packing respects region capacity" ~count:40
    QCheck.(pair (int_range 1 12) (int_range 1 6))
    (fun (engines, smalls) ->
      let units =
        [
          { Compile.unit_name = "e"; resources = engine Device.XCVU37P; replicas = engines };
          {
            Compile.unit_name = "s";
            resources = Resource.make ~luts:9_000 ~dsps:50 ();
            replicas = smalls;
          };
        ]
      in
      let region = Virtual_block.region Device.XCVU37P in
      List.for_all
        (fun strategy ->
          match Compile.compile ~strategy Device.XCVU37P units with
          | Error _ -> true
          | Ok m ->
            Array.for_all
              (fun used -> Resource.fits ~need:used ~avail:region)
              m.Compile.per_vb_used)
        [ Compile.Pipeline_order; Compile.Best_fit_decreasing ])

let () =
  Alcotest.run "vital"
    [
      ( "virtual_block",
        [
          Alcotest.test_case "counts" `Quick test_vb_counts;
          Alcotest.test_case "regions fit device" `Quick test_vb_regions_fit_device;
          Alcotest.test_case "engines per block" `Quick test_vb_engines_per_block;
          Alcotest.test_case "Table 3 report" `Quick test_table3_report;
        ] );
      ( "compile",
        [
          Alcotest.test_case "packs two per block" `Quick test_compile_packs_two_per_block;
          Alcotest.test_case "crossings" `Quick test_compile_crossings;
          Alcotest.test_case "unit too big" `Quick test_compile_unit_too_big;
          Alcotest.test_case "out of blocks" `Quick test_compile_out_of_blocks;
          Alcotest.test_case "vbs_needed" `Quick test_vbs_needed;
          Alcotest.test_case "best-fit-decreasing" `Quick test_compile_bfd_strategy;
          Alcotest.test_case "bfd errors" `Quick test_compile_bfd_errors;
          QCheck_alcotest.to_alcotest prop_packing_capacity;
        ] );
      ( "bitstream",
        [
          Alcotest.test_case "id" `Quick test_bitstream_id;
          Alcotest.test_case "cache hit pricing" `Quick test_cache_hit_pricing;
          Alcotest.test_case "cache LRU eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "cache validation" `Quick test_cache_validation;
        ] );
      ( "controller",
        [
          Alcotest.test_case "load/unload" `Quick test_controller_load_unload;
          Alcotest.test_case "capacity" `Quick test_controller_capacity;
          Alcotest.test_case "kind mismatch" `Quick test_controller_kind_mismatch;
          Alcotest.test_case "foreign handle" `Quick test_controller_foreign_handle;
          Alcotest.test_case "reconfig time scales" `Quick test_reconfig_time_scales;
          QCheck_alcotest.to_alcotest prop_controller_conservation;
        ] );
    ]
