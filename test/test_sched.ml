(* Tests for the elastic serving layer: SLO admission, dynamic
   batching, weighted routing, the autoscaler control law, the
   closed-loop sysim engine built from them, migrate rollback under
   the indexed allocator, and per-attempt wait accounting. *)

module Slo = Mlv_sched.Slo
module Batcher = Mlv_sched.Batcher
module Router = Mlv_sched.Router
module Autoscaler = Mlv_sched.Autoscaler
module Sysim = Mlv_sysim.Sysim
module Runtime = Mlv_core.Runtime
module Defrag = Mlv_core.Defrag
module Registry = Mlv_core.Registry
module Framework = Mlv_core.Framework
module Cluster = Mlv_cluster.Cluster
module Fault_plan = Mlv_cluster.Fault_plan
module Genset = Mlv_workload.Genset
module Device = Mlv_fpga.Device
module Obs = Mlv_obs.Obs

(* ---------------- SLO admission ---------------- *)

let verdict =
  Alcotest.testable
    (fun fmt v ->
      Format.pp_print_string fmt
        (match v with
        | Slo.Admitted -> "admitted"
        | Slo.Shed_rate -> "shed-rate"
        | Slo.Shed_priority -> "shed-priority"
        | Slo.Shed_tenant -> "shed-tenant"))
    ( = )

let test_slo_bucket_drains_and_refills () =
  let gate = Slo.create [ Slo.class_spec ~rate_per_s:1000.0 ~burst:2 "S" ] in
  let admit now = Slo.admit gate ~class_name:"S" ~now_us:now in
  Alcotest.check verdict "first token" Slo.Admitted (admit 0.0);
  Alcotest.check verdict "second token" Slo.Admitted (admit 0.0);
  Alcotest.check verdict "bucket empty" Slo.Shed_rate (admit 0.0);
  (* 1000/s = one token per 1000 us *)
  Alcotest.check verdict "not yet refilled" Slo.Shed_rate (admit 500.0);
  Alcotest.check verdict "refilled" Slo.Admitted (admit 1000.0);
  Alcotest.check verdict "only one token back" Slo.Shed_rate (admit 1000.0);
  (* refill caps at burst: a long quiet period grants 2 tokens, not 10 *)
  Alcotest.check verdict "burst 1/2" Slo.Admitted (admit 1_000_000.0);
  Alcotest.check verdict "burst 2/2" Slo.Admitted (admit 1_000_000.0);
  Alcotest.check verdict "capped at burst" Slo.Shed_rate (admit 1_000_000.0);
  Alcotest.(check int) "admitted counted" 5 (Slo.admitted_of gate "S");
  Alcotest.(check int) "shed counted" 4 (Slo.shed_of gate "S")

let test_slo_priority_threshold () =
  let gate =
    Slo.create [ Slo.class_spec ~priority:2 "S"; Slo.class_spec ~priority:0 "L" ]
  in
  Slo.set_shed_below gate 1;
  Alcotest.check verdict "high priority passes" Slo.Admitted
    (Slo.admit gate ~class_name:"S" ~now_us:0.0);
  Alcotest.check verdict "low priority shed" Slo.Shed_priority
    (Slo.admit gate ~class_name:"L" ~now_us:0.0);
  Slo.set_shed_below gate min_int;
  Alcotest.check verdict "threshold cleared" Slo.Admitted
    (Slo.admit gate ~class_name:"L" ~now_us:0.0)

let test_slo_unknown_and_empty () =
  let empty = Slo.create [] in
  Alcotest.check verdict "empty gate admits" Slo.Admitted
    (Slo.admit empty ~class_name:"anything" ~now_us:0.0);
  Alcotest.(check (float 0.0)) "no deadline" 0.0 (Slo.min_deadline_us empty);
  let gate =
    Slo.create
      [ Slo.class_spec ~deadline_us:9000.0 "S"; Slo.class_spec ~deadline_us:4000.0 "L" ]
  in
  Alcotest.check verdict "unknown class admits" Slo.Admitted
    (Slo.admit gate ~class_name:"XL" ~now_us:0.0);
  Alcotest.(check (float 0.0)) "tightest deadline" 4000.0 (Slo.min_deadline_us gate)

let test_slo_validation () =
  let raises f =
    match f () with
    | _ -> Alcotest.fail "expected Invalid_argument"
    | exception Invalid_argument _ -> ()
  in
  raises (fun () -> Slo.class_spec ~rate_per_s:0.0 "S");
  raises (fun () -> Slo.class_spec ~burst:0 "S");
  raises (fun () -> Slo.class_spec ~deadline_us:(-1.0) "S");
  raises (fun () -> Slo.create [ Slo.class_spec "S"; Slo.class_spec "S" ])

(* Regression: admissions whose class name matched no configured class
   were counted in the [admitted] total but in no per-class counter,
   so the per-class breakdown no longer summed to the totals.
   [unknown_admitted] closes the books. *)
let test_slo_accounting_identity () =
  let gate =
    Slo.create
      [
        Slo.class_spec ~rate_per_s:1000.0 ~burst:4 "S";
        Slo.class_spec ~rate_per_s:500.0 ~burst:2 ~priority:1 "L";
      ]
  in
  Slo.set_shed_below gate 1;
  (* Deterministic mixed traffic: known classes under rate and
     priority pressure, plus two unknown class names. *)
  let names = [| "S"; "L"; "XL"; "S"; "mystery"; "L"; "S"; "XL" |] in
  for i = 0 to 199 do
    let cls = names.(i mod Array.length names) in
    ignore (Slo.admit gate ~class_name:cls ~now_us:(float_of_int i *. 250.0))
  done;
  let per_class f =
    List.fold_left
      (fun acc (c : Slo.class_spec) -> acc + f gate c.Slo.class_name)
      0 (Slo.classes gate)
  in
  let lhs =
    per_class Slo.admitted_of + per_class Slo.shed_of + Slo.unknown_admitted gate
  in
  let rhs = Slo.admitted gate + Slo.shed gate in
  Alcotest.(check int) "per-class + unknown = totals" rhs lhs;
  Alcotest.(check bool) "unknown admissions observed" true
    (Slo.unknown_admitted gate > 0);
  Alcotest.(check bool) "some traffic shed" true (Slo.shed gate > 0);
  Alcotest.(check int) "every arrival accounted" 200 rhs

(* The same closure property for the tenant fair-share layer: over a
   mixed 3-tenant stream — plus decisions with no tenant or an
   unknown one, which bypass the pool — the per-tenant admitted/shed
   counters and [tenant_unknown] must cover every decision the gate
   made. *)
let test_slo_tenant_pool_identity () =
  let gate = Slo.create [ Slo.class_spec ~rate_per_s:1000.0 ~burst:4 "S" ] in
  Slo.set_tenant_pool gate ~rate_per_s:3000.0 ~burst:8
    [ Slo.tenant_spec "a"; Slo.tenant_spec ~weight:2.0 "b"; Slo.tenant_spec "c" ];
  let tenants = [| Some "a"; Some "b"; Some "c"; None; Some "mystery" |] in
  for i = 0 to 199 do
    let now_us = float_of_int i *. 97.0 in
    match tenants.(i mod Array.length tenants) with
    | Some tenant -> ignore (Slo.admit ~tenant gate ~class_name:"S" ~now_us)
    | None -> ignore (Slo.admit gate ~class_name:"S" ~now_us)
  done;
  let known = [ "a"; "b"; "c" ] in
  let sum f = List.fold_left (fun acc t -> acc + f gate t) 0 known in
  Alcotest.(check int) "per-tenant + unknown = totals"
    (Slo.admitted gate + Slo.shed gate)
    (sum Slo.admitted_of_tenant + sum Slo.shed_of_tenant
    + Slo.tenant_unknown gate);
  Alcotest.(check int) "every arrival accounted" 200
    (Slo.admitted gate + Slo.shed gate);
  Alcotest.(check bool) "fair-share sheds occurred" true
    (Slo.shed_tenant gate > 0);
  Alcotest.(check bool) "pool bypass observed" true
    (Slo.tenant_unknown gate > 0);
  (* weight 2 of 4 entitles b to half the pool rate *)
  Alcotest.(check (float 1e-9)) "weighted refill rate" 1500.0
    (Slo.tenant_rate_of gate "b");
  Alcotest.(check bool) "weighted tenant admits at least an equal peer" true
    (Slo.admitted_of_tenant gate "b" >= Slo.admitted_of_tenant gate "a")

let test_slo_tenant_pool_burst_bound () =
  (* Regression: flooring every tenant's burst at one token without
     renormalizing minted capacity out of thin air — 100 tiny tenants
     floored from 0.75 to 1.0 each overshot the pool by 25 tokens.
     Water-filling pins floored tenants at exactly the floor and
     re-splits the remainder by weight among the rest. *)
  let heavy = Slo.tenant_spec ~weight:1.0 "heavy" in
  let lights =
    List.init 100 (fun i -> Slo.tenant_spec ~weight:0.01 (Printf.sprintf "t%02d" i))
  in
  let gate = Slo.create [] in
  Slo.set_tenant_pool gate ~rate_per_s:1000.0 ~burst:150 (heavy :: lights);
  Alcotest.(check (float 1e-9)) "light tenant pinned at the floor" 1.0
    (Slo.tenant_burst_of gate "t00");
  Alcotest.(check (float 1e-9)) "heavy absorbs the remainder" 50.0
    (Slo.tenant_burst_of gate "heavy");
  let total =
    List.fold_left
      (fun acc s -> acc +. Slo.tenant_burst_of gate s.Slo.tenant_name)
      0.0 (heavy :: lights)
  in
  Alcotest.(check (float 1e-6)) "bursts sum to the pool" 150.0 total;
  (* with nobody under the floor the split is the plain weighted one,
     bit-identical to the pre-fix expression *)
  let plain = Slo.create [] in
  Slo.set_tenant_pool plain ~rate_per_s:100.0 ~burst:10
    [ Slo.tenant_spec "a"; Slo.tenant_spec "b" ];
  Alcotest.(check (float 1e-9)) "no-floor split unchanged" 5.0
    (Slo.tenant_burst_of plain "a")

(* ---------------- dynamic batching ---------------- *)

let test_batch_dispatch_on_fullness () =
  let b = Batcher.create (Batcher.config ~max_batch:3 ~max_linger_us:100.0 ()) in
  (match Batcher.add b ~key:"k" ~now_us:0.0 1 with
  | Batcher.Opened due -> Alcotest.(check (float 1e-9)) "flush armed" 100.0 due
  | _ -> Alcotest.fail "first request should open the batch");
  (match Batcher.add b ~key:"k" ~now_us:10.0 2 with
  | Batcher.Joined -> ()
  | _ -> Alcotest.fail "second request should join");
  (match Batcher.add b ~key:"k" ~now_us:20.0 3 with
  | Batcher.Dispatch batch ->
    Alcotest.(check (list int)) "oldest first" [ 1; 2; 3 ] batch
  | _ -> Alcotest.fail "third request should fill and dispatch");
  Alcotest.(check int) "nothing pending" 0 (Batcher.total_pending b);
  Alcotest.(check int) "one batch" 1 (Batcher.batches b)

let test_batch_linger_flush_and_stale_timer () =
  let b = Batcher.create (Batcher.config ~max_batch:4 ~max_linger_us:100.0 ()) in
  ignore (Batcher.add b ~key:"k" ~now_us:0.0 1);
  (* the armed timer fires but the batch already dispatched on
     fullness — the stale flush must be a no-op *)
  ignore (Batcher.add b ~key:"k" ~now_us:5.0 2);
  Alcotest.(check (list int)) "too early" [] (Batcher.flush_due b ~key:"k" ~now_us:50.0);
  Alcotest.(check (list int)) "due" [ 1; 2 ] (Batcher.flush_due b ~key:"k" ~now_us:100.0);
  Alcotest.(check (list int)) "stale timer no-op" []
    (Batcher.flush_due b ~key:"k" ~now_us:100.0);
  (* a batch opened later must not be released by the old deadline *)
  ignore (Batcher.add b ~key:"k" ~now_us:150.0 3);
  Alcotest.(check (list int)) "new batch not due yet" []
    (Batcher.flush_due b ~key:"k" ~now_us:200.0);
  Alcotest.(check (list int)) "drain pops unconditionally" [ 3 ]
    (Batcher.drain b ~key:"k");
  Alcotest.(check int) "two batches total" 2 (Batcher.batches b)

let test_batch_validation () =
  (match Batcher.config ~max_batch:0 () with
  | _ -> Alcotest.fail "max_batch 0 should raise"
  | exception Invalid_argument _ -> ());
  match Batcher.config ~max_linger_us:(-1.0) () with
  | _ -> Alcotest.fail "negative linger should raise"
  | exception Invalid_argument _ -> ()

(* The O(1) counters must track a from-scratch recount through every
   transition: open, join, dispatch on fullness, linger flush and
   drain. *)
let test_batch_incremental_counters () =
  let b =
    Batcher.create
      ~tenant_of:(fun (t, _) -> t)
      (Batcher.config ~max_batch:3 ~max_linger_us:100.0 ())
  in
  let recount () =
    let keys = Batcher.keys b in
    let total =
      List.fold_left (fun acc k -> acc + Batcher.pending b ~key:k) 0 keys
    in
    Alcotest.(check int) "total_pending matches recount" total
      (Batcher.total_pending b);
    Alcotest.(check int) "nonempty_kinds matches keys" (List.length keys)
      (Batcher.nonempty_kinds b)
  in
  ignore (Batcher.add b ~key:"x" ~now_us:0.0 ("a", 1));
  recount ();
  ignore (Batcher.add b ~key:"x" ~now_us:1.0 ("b", 2));
  ignore (Batcher.add b ~key:"y" ~now_us:2.0 ("a", 3));
  recount ();
  Alcotest.(check (list string)) "keys sorted" [ "x"; "y" ] (Batcher.keys b);
  Alcotest.(check int) "per-tenant pending" 2 (Batcher.pending_of_tenant b "a");
  (match Batcher.add b ~key:"x" ~now_us:3.0 ("c", 4) with
  | Batcher.Dispatch batch -> Alcotest.(check int) "full batch" 3 (List.length batch)
  | _ -> Alcotest.fail "third request should fill and dispatch");
  recount ();
  Alcotest.(check (list string)) "x empty after dispatch" [ "y" ] (Batcher.keys b);
  Alcotest.(check int) "flush pops y" 1
    (List.length (Batcher.flush_due b ~key:"y" ~now_us:500.0));
  recount ();
  Alcotest.(check int) "all drained" 0 (Batcher.total_pending b);
  Alcotest.(check int) "no nonempty kinds" 0 (Batcher.nonempty_kinds b);
  Alcotest.(check int) "tenant accounting drained" 0
    (Batcher.pending_of_tenant b "a")

(* ---------------- weighted routing ---------------- *)

let test_router_weighted_least_outstanding () =
  let r = Router.create () in
  Router.add_replica r ~key:"k" ~replica_id:0 ~weight:1.0;
  Router.add_replica r ~key:"k" ~replica_id:1 ~weight:2.0;
  (* tie at zero outstanding: lowest id wins *)
  Alcotest.(check (option int)) "tie breaks low id" (Some 0) (Router.pick r ~key:"k");
  Router.begin_work r ~key:"k" ~replica_id:0 1;
  (* 1/1.0 vs 0/2.0 *)
  Alcotest.(check (option int)) "least loaded" (Some 1) (Router.pick r ~key:"k");
  Router.begin_work r ~key:"k" ~replica_id:1 1;
  (* 1/1.0 = 1.0 vs 1/2.0 = 0.5: the heavy replica absorbs more *)
  Alcotest.(check (option int)) "weight-normalized" (Some 1) (Router.pick r ~key:"k");
  Router.end_work r ~key:"k" ~replica_id:0 1;
  Alcotest.(check (option int)) "back to the tie" (Some 0) (Router.pick r ~key:"k");
  Alcotest.(check int) "dispatched counts begin_work" 2 (Router.dispatched r);
  Router.remove_replica r ~key:"k" ~replica_id:0;
  Router.remove_replica r ~key:"k" ~replica_id:1;
  Alcotest.(check (option int)) "empty group" None (Router.pick r ~key:"k")

let test_router_validation () =
  let r = Router.create () in
  Router.add_replica r ~key:"k" ~replica_id:0 ~weight:1.0;
  (match Router.add_replica r ~key:"k" ~replica_id:0 ~weight:1.0 with
  | _ -> Alcotest.fail "duplicate id should raise"
  | exception Invalid_argument _ -> ());
  (match Router.add_replica r ~key:"k" ~replica_id:1 ~weight:0.0 with
  | _ -> Alcotest.fail "zero weight should raise"
  | exception Invalid_argument _ -> ());
  (* end_work clamps at zero rather than going negative *)
  Router.end_work r ~key:"k" ~replica_id:0 5;
  Alcotest.(check int) "clamped" 0 (Router.outstanding r ~key:"k" ~replica_id:0)

(* Differential: the min-heap shape must agree with the pre-index
   linear-scan shape on every pick, count and listing over a random
   add/remove/work sequence. *)
let test_router_shapes_differential () =
  let rng = Mlv_util.Rng.create 23 in
  let idx = Router.create ~indexed:true () in
  let lin = Router.create ~indexed:false () in
  let keys = [| "a"; "b"; "c" |] in
  let next_id = ref 0 in
  let live = ref [] in
  for _ = 0 to 799 do
    let r = Mlv_util.Rng.float rng 1.0 in
    if r < 0.3 || !live = [] then begin
      let key = keys.(Mlv_util.Rng.int rng 3) in
      let id = !next_id in
      incr next_id;
      let weight = 1.0 +. float_of_int (Mlv_util.Rng.int rng 3) in
      Router.add_replica idx ~key ~replica_id:id ~weight;
      Router.add_replica lin ~key ~replica_id:id ~weight;
      live := (key, id) :: !live
    end
    else if r < 0.42 then begin
      let n = Mlv_util.Rng.int rng (List.length !live) in
      let key, id = List.nth !live n in
      Router.remove_replica idx ~key ~replica_id:id;
      Router.remove_replica lin ~key ~replica_id:id;
      live := List.filteri (fun j _ -> j <> n) !live
    end
    else begin
      let key = keys.(Mlv_util.Rng.int rng 3) in
      let pi = Router.pick idx ~key in
      Alcotest.(check (option int)) "pick agrees" (Router.pick lin ~key) pi;
      match pi with
      | None -> ()
      | Some id ->
        let n = 1 + Mlv_util.Rng.int rng 4 in
        if Mlv_util.Rng.float rng 1.0 < 0.7 then begin
          Router.begin_work idx ~key ~replica_id:id n;
          Router.begin_work lin ~key ~replica_id:id n
        end
        else begin
          Router.end_work idx ~key ~replica_id:id n;
          Router.end_work lin ~key ~replica_id:id n
        end
    end;
    Alcotest.(check int) "total outstanding agrees"
      (Router.total_outstanding lin)
      (Router.total_outstanding idx);
    Alcotest.(check (list string)) "keys agree" (Router.keys lin)
      (Router.keys idx)
  done;
  Alcotest.(check int) "dispatched agrees" (Router.dispatched lin)
    (Router.dispatched idx);
  Array.iter
    (fun key ->
      Alcotest.(check (list int)) ("replicas of " ^ key)
        (Router.replicas lin ~key) (Router.replicas idx ~key);
      List.iter
        (fun id ->
          Alcotest.(check int)
            (Printf.sprintf "outstanding %s/%d" key id)
            (Router.outstanding lin ~key ~replica_id:id)
            (Router.outstanding idx ~key ~replica_id:id))
        (Router.replicas idx ~key))
    keys

(* ---------------- autoscaler control law ---------------- *)

let decision =
  Alcotest.testable
    (fun fmt d -> Format.pp_print_string fmt (Autoscaler.decision_to_string d))
    ( = )

let acfg = Autoscaler.default

let test_autoscaler_bootstrap_and_cooldown () =
  let tr = Autoscaler.tracker ~name:"test.boot" in
  Autoscaler.mark_scaled tr ~now_us:0.0;
  (* zero replicas + backlog: scales up even inside the cooldown *)
  Alcotest.check decision "bootstrap beats cooldown" Autoscaler.Scale_up
    (Autoscaler.decide acfg tr ~now_us:100.0 ~backlog:1 ~replicas:0 ~idle:0
       ~deadline_us:0.0);
  (* with a replica present the cooldown holds even under pressure *)
  Alcotest.check decision "cooldown holds" Autoscaler.Hold
    (Autoscaler.decide acfg tr ~now_us:100.0 ~backlog:100 ~replicas:1 ~idle:0
       ~deadline_us:0.0);
  Alcotest.check decision "cooldown expired" Autoscaler.Scale_up
    (Autoscaler.decide acfg tr ~now_us:acfg.Autoscaler.cooldown_us ~backlog:100
       ~replicas:1 ~idle:0 ~deadline_us:0.0)

let test_autoscaler_watermarks () =
  let tr = Autoscaler.tracker ~name:"test.marks" in
  (* 4 backlog / 2 replicas = 2.0, between the 0.5 and 3.0 watermarks *)
  Alcotest.check decision "between watermarks" Autoscaler.Hold
    (Autoscaler.decide acfg tr ~now_us:0.0 ~backlog:4 ~replicas:2 ~idle:0
       ~deadline_us:0.0);
  Alcotest.check decision "above high watermark" Autoscaler.Scale_up
    (Autoscaler.decide acfg tr ~now_us:0.0 ~backlog:7 ~replicas:2 ~idle:0
       ~deadline_us:0.0);
  (* at the max replica count the loop holds instead *)
  Alcotest.check decision "capped at max" Autoscaler.Hold
    (Autoscaler.decide acfg tr ~now_us:0.0 ~backlog:100
       ~replicas:acfg.Autoscaler.max_replicas ~idle:0 ~deadline_us:0.0);
  (* low backlog alone is not enough: an idle replica is required *)
  Alcotest.check decision "low but nothing idle" Autoscaler.Hold
    (Autoscaler.decide acfg tr ~now_us:0.0 ~backlog:1 ~replicas:2 ~idle:0
       ~deadline_us:0.0);
  Alcotest.check decision "low and idle" Autoscaler.Scale_down
    (Autoscaler.decide acfg tr ~now_us:0.0 ~backlog:1 ~replicas:2 ~idle:1
       ~deadline_us:0.0);
  (* min_replicas floors the shrink *)
  let floored = Autoscaler.config ~min_replicas:2 () in
  Alcotest.check decision "at the floor" Autoscaler.Hold
    (Autoscaler.decide floored tr ~now_us:0.0 ~backlog:0 ~replicas:2 ~idle:2
       ~deadline_us:0.0)

let test_autoscaler_p99_trigger () =
  let tr = Autoscaler.tracker ~name:"test.p99" in
  for _ = 1 to 100 do
    Autoscaler.observe_sojourn tr 10_000.0
  done;
  Alcotest.(check int) "samples recorded" 100 (Autoscaler.sojourn_count tr);
  Alcotest.(check bool) "p99 near the samples" true
    (Autoscaler.p99_sojourn_us tr > 5000.0);
  (* backlog is calm (1 per replica) but p99 breaches the deadline *)
  Alcotest.check decision "p99 breach scales up" Autoscaler.Scale_up
    (Autoscaler.decide acfg tr ~now_us:0.0 ~backlog:2 ~replicas:2 ~idle:0
       ~deadline_us:5000.0);
  Alcotest.check decision "deadline 0 disables the trigger" Autoscaler.Hold
    (Autoscaler.decide acfg tr ~now_us:0.0 ~backlog:2 ~replicas:2 ~idle:0
       ~deadline_us:0.0);
  (* a fresh tracker has no evidence: no breach *)
  let calm = Autoscaler.tracker ~name:"test.calm" in
  Alcotest.check decision "no samples, no breach" Autoscaler.Hold
    (Autoscaler.decide acfg calm ~now_us:0.0 ~backlog:2 ~replicas:2 ~idle:0
       ~deadline_us:5000.0)

let test_autoscaler_p99_window () =
  (* Regression: the p99 tracker used to accumulate sojourns forever,
     so one burst latched the breach trigger for the rest of the run
     and the loop never scaled back down.  The windowed tracker ages a
     burst out after two [p99_window_us] rotations. *)
  let cfg =
    Autoscaler.config ~cooldown_us:0.0 ~low_backlog_per_replica:1.0
      ~p99_window_us:1_000.0 ()
  in
  let tr = Autoscaler.tracker ~name:"test.p99window" in
  for _ = 1 to 100 do
    Autoscaler.observe_sojourn tr 50_000.0
  done;
  Alcotest.check decision "burst breaches the deadline" Autoscaler.Scale_up
    (Autoscaler.decide cfg tr ~now_us:10.0 ~backlog:2 ~replicas:2 ~idle:0
       ~deadline_us:10_000.0);
  (* first rotation: the burst moves to the previous epoch (still
     visible — a breach must not vanish the instant the window turns) *)
  ignore
    (Autoscaler.decide cfg tr ~now_us:1_500.0 ~backlog:0 ~replicas:2 ~idle:1
       ~deadline_us:10_000.0);
  (* second rotation: the burst has aged out entirely; with a calm
     queue and an idle replica the loop scales down (the pre-fix
     cumulative tracker returned Scale_up here forever) *)
  Alcotest.check decision "calm after the burst scales down"
    Autoscaler.Scale_down
    (Autoscaler.decide cfg tr ~now_us:3_000.0 ~backlog:0 ~replicas:2 ~idle:1
       ~deadline_us:10_000.0);
  Alcotest.(check (float 0.0)) "old samples aged out" 0.0
    (Autoscaler.p99_sojourn_us tr)

let test_autoscaler_validation () =
  let raises f =
    match f () with
    | _ -> Alcotest.fail "expected Invalid_argument"
    | exception Invalid_argument _ -> ()
  in
  raises (fun () -> Autoscaler.config ~interval_us:0.0 ());
  raises (fun () ->
      Autoscaler.config ~high_backlog_per_replica:1.0 ~low_backlog_per_replica:2.0 ());
  raises (fun () -> Autoscaler.config ~cooldown_us:(-1.0) ());
  raises (fun () -> Autoscaler.config ~min_replicas:(-1) ());
  raises (fun () -> Autoscaler.config ~min_replicas:4 ~max_replicas:2 ())

(* ---------------- tenant-pool re-set ---------------- *)

(* Session churn re-sets the pool mid-run; the renormalization must
   re-split shares against the new membership without minting tokens
   for surviving tenants or dropping their counters. *)
let test_slo_tenant_pool_reset_renormalizes () =
  let gate = Slo.create [] in
  Slo.set_tenant_pool gate ~rate_per_s:1000.0 ~burst:4
    [ Slo.tenant_spec "a"; Slo.tenant_spec "b" ];
  (* a drains its 2-token bucket; everything at t=0 so nothing refills *)
  Alcotest.(check bool) "a admits 1" true
    (Slo.admit ~tenant:"a" gate ~class_name:"S" ~now_us:0.0 = Slo.Admitted);
  Alcotest.(check bool) "a admits 2" true
    (Slo.admit ~tenant:"a" gate ~class_name:"S" ~now_us:0.0 = Slo.Admitted);
  Alcotest.(check bool) "a bucket empty" true
    (Slo.admit ~tenant:"a" gate ~class_name:"S" ~now_us:0.0 = Slo.Shed_tenant);
  (* c joins: shares renormalize 2 -> 4/3, still summing to the pool *)
  Slo.set_tenant_pool gate ~rate_per_s:1000.0 ~burst:4
    [ Slo.tenant_spec "a"; Slo.tenant_spec "b"; Slo.tenant_spec "c" ];
  let total =
    List.fold_left
      (fun acc n -> acc +. Slo.tenant_burst_of gate n)
      0.0 [ "a"; "b"; "c" ]
  in
  Alcotest.(check (float 1e-9)) "bursts still sum to the pool" 4.0 total;
  (* a consumed everything before the re-set: scaling 0 tokens by the
     burst ratio must not conjure admission capacity *)
  Alcotest.(check bool) "a stays drained across the re-set" true
    (Slo.admit ~tenant:"a" gate ~class_name:"S" ~now_us:0.0 = Slo.Shed_tenant);
  (* b kept its full 2 tokens, scaled to the new 4/3 burst: one
     admission left, not two *)
  Alcotest.(check bool) "b keeps its scaled balance" true
    (Slo.admit ~tenant:"b" gate ~class_name:"S" ~now_us:0.0 = Slo.Admitted);
  Alcotest.(check bool) "b has no second token" true
    (Slo.admit ~tenant:"b" gate ~class_name:"S" ~now_us:0.0 = Slo.Shed_tenant);
  (* the newcomer starts with a full (4/3-token) bucket *)
  Alcotest.(check bool) "c starts full" true
    (Slo.admit ~tenant:"c" gate ~class_name:"S" ~now_us:0.0 = Slo.Admitted);
  (* admission counters survive the re-set *)
  Alcotest.(check int) "a's counters preserved" 2 (Slo.admitted_of_tenant gate "a");
  Alcotest.(check bool) "a's sheds preserved" true (Slo.shed_of_tenant gate "a" >= 1)

(* ---------------- predictive autoscaling ---------------- *)

let test_forecast_learns_season () =
  let f = Mlv_sched.Forecast.create ~period:4 () in
  (* three cycles of a spiky season: slot 0 carries the load *)
  for _ = 1 to 3 do
    List.iter (Mlv_sched.Forecast.observe f) [ 1000.0; 10.0; 10.0; 10.0 ]
  done;
  (* last sample was slot 3; one tick ahead is the peak slot *)
  let peak = Mlv_sched.Forecast.forecast f ~ahead:1 in
  let trough = Mlv_sched.Forecast.forecast f ~ahead:2 in
  Alcotest.(check bool)
    (Printf.sprintf "peak forecast %.0f well above trough %.0f" peak trough)
    true
    (peak > 4.0 *. trough && peak > 300.0);
  Alcotest.(check int) "observation count" 12 (Mlv_sched.Forecast.observations f)

let test_predictive_cold_falls_back () =
  let cfg = Autoscaler.config ~cooldown_us:0.0 () in
  let p = Autoscaler.predict ~season_ticks:4 ~warmup:4 () in
  let tr = Autoscaler.tracker ~name:"predict-cold" in
  let pt = Autoscaler.ptracker p in
  (* no rate samples yet: the reactive watermark rules decide, and
     the target moves by one replica as the reactive loop does *)
  let d, target =
    Autoscaler.decide_predictive cfg p tr pt ~now_us:0.0 ~backlog:10 ~replicas:1
      ~idle:0 ~deadline_us:0.0
  in
  Alcotest.(check bool) "cold model scales reactively" true (d = Autoscaler.Scale_up);
  Alcotest.(check int) "cold target is one step" 2 target

let test_predictive_preprovisions_peak () =
  let cfg = Autoscaler.config ~cooldown_us:0.0 ~max_replicas:8 () in
  let p = Autoscaler.predict ~horizon:1 ~season_ticks:4 ~warmup:8 () in
  let tr = Autoscaler.tracker ~name:"predict-peak" in
  let pt = Autoscaler.ptracker p in
  (* 10 ms per task: one replica serves ~100/s *)
  Autoscaler.observe_service pt 10_000.0;
  for _ = 1 to 3 do
    List.iter (Autoscaler.observe_rate pt) [ 1000.0; 10.0; 10.0; 10.0 ]
  done;
  (* the next tick is the seasonal peak: the forecast must open the
     whole gap at once, not one replica *)
  let d, target =
    Autoscaler.decide_predictive cfg p tr pt ~now_us:0.0 ~backlog:0 ~replicas:2
      ~idle:0 ~deadline_us:0.0
  in
  Alcotest.(check bool) "peak predicted: scale up" true (d = Autoscaler.Scale_up);
  Alcotest.(check bool)
    (Printf.sprintf "target %d jumps well past 3" target)
    true (target >= 6);
  (* one more peak sample: the look-ahead slot is now the trough, and
     with an idle replica the fleet shrinks toward the forecast *)
  Autoscaler.observe_rate pt 1000.0;
  let d2, target2 =
    Autoscaler.decide_predictive cfg p tr pt ~now_us:10_000.0 ~backlog:0
      ~replicas:8 ~idle:2 ~deadline_us:0.0
  in
  Alcotest.(check bool) "trough predicted: scale down" true
    (d2 = Autoscaler.Scale_down);
  Alcotest.(check bool)
    (Printf.sprintf "trough target %d below the fleet" target2)
    true (target2 < 8)

(* ---------------- bursty arrival process ---------------- *)

let test_bursty_arrivals_deterministic_and_clustered () =
  let composition = Genset.table1.(6) in
  let arrival =
    Genset.Bursty { on_us = 2000.0; off_us = 8000.0; on_mean_us = 50.0; off_mean_us = 2000.0 }
  in
  let draw () =
    Genset.generate_arrival
      ~rng:(Mlv_util.Rng.create 7)
      ~composition ~tasks:60 ~arrival
  in
  let a = draw () and b = draw () in
  Alcotest.(check (list (float 1e-9)))
    "same seed, same trace"
    (List.map (fun t -> t.Genset.arrival_us) a)
    (List.map (fun t -> t.Genset.arrival_us) b);
  let times = List.map (fun t -> t.Genset.arrival_us) a in
  Alcotest.(check bool) "sorted" true
    (List.for_all2 (fun x y -> x <= y) (List.filteri (fun i _ -> i < 59) times)
       (List.tl times));
  (* the busy phase (1/5 of the cycle) must hold well more than 1/5 of
     the arrivals — that is the whole point of the burst *)
  let in_on =
    List.length
      (List.filter (fun t -> Float.rem t.Genset.arrival_us 10_000.0 < 2000.0) a)
  in
  Alcotest.(check bool)
    (Printf.sprintf "%d/60 arrivals in the busy phase" in_on)
    true
    (in_on > 30);
  (* exponential arrivals through the new entry point are identical to
     the legacy generator: the open-loop engine stays bit-identical *)
  let old_way =
    Genset.generate
      ~rng:(Mlv_util.Rng.create 7)
      ~composition ~tasks:60 ~mean_interarrival_us:200.0
  in
  let new_way =
    Genset.generate_arrival
      ~rng:(Mlv_util.Rng.create 7)
      ~composition ~tasks:60
      ~arrival:(Genset.Exponential { mean_us = 200.0 })
  in
  Alcotest.(check (list (float 0.0)))
    "exponential path unchanged"
    (List.map (fun t -> t.Genset.arrival_us) old_way)
    (List.map (fun t -> t.Genset.arrival_us) new_way)

(* ---------------- closed-loop sysim ---------------- *)

let registry = lazy (Sysim.build_registry ())

let serving_config ?(tasks = 30) ?(autoscale = Some Autoscaler.default) () =
  let cfg =
    Sysim.default_config ~policy:Runtime.greedy ~composition:Genset.table1.(6)
  in
  {
    cfg with
    Sysim.tasks;
    arrival =
      Some
        (Genset.Bursty
           { on_us = 2000.0; off_us = 8000.0; on_mean_us = 50.0; off_mean_us = 2000.0 });
    serving =
      Some
        {
          Sysim.classes = [];
          batch = Batcher.config ~max_batch:4 ~max_linger_us:100.0 ();
          autoscale;
          tenant_pool = None;
          preempt = false;
          defrag = None;
        };
  }

let test_serving_accounting_closes () =
  let r = Sysim.run ~registry:(Lazy.force registry) (serving_config ()) in
  Alcotest.(check int) "every task accounted" 30
    (r.Sysim.completed + r.Sysim.rejected + r.Sysim.shed);
  Alcotest.(check int) "none lost" 0 r.Sysim.lost;
  Alcotest.(check bool) "some completed" true (r.Sysim.completed > 0);
  Alcotest.(check bool) "batching happened" true (r.Sysim.batches > 0);
  Alcotest.(check bool) "autoscaler actuated" true (r.Sysim.scale_ups > 0);
  Alcotest.(check bool) "percentiles ordered" true
    (r.Sysim.p50_latency_us <= r.Sysim.p95_latency_us
    && r.Sysim.p95_latency_us <= r.Sysim.p99_latency_us)

let test_serving_deterministic () =
  let a = Sysim.run ~registry:(Lazy.force registry) (serving_config ()) in
  let b = Sysim.run ~registry:(Lazy.force registry) (serving_config ()) in
  Alcotest.(check (list (float 0.0))) "same latency series" a.Sysim.latencies_us
    b.Sysim.latencies_us;
  Alcotest.(check int) "same scale_ups" a.Sysim.scale_ups b.Sysim.scale_ups;
  Alcotest.(check int) "same sheds" a.Sysim.shed b.Sysim.shed;
  Alcotest.(check (float 0.0)) "same makespan" a.Sysim.makespan_us b.Sysim.makespan_us

let test_serving_rejects_fault_plans () =
  let plan =
    match Fault_plan.of_string "crash@100:1" with Ok p -> p | Error e -> Alcotest.fail e
  in
  let cfg =
    { (serving_config ()) with Sysim.faults = Some (Sysim.default_faults plan) }
  in
  match Sysim.run ~registry:(Lazy.force registry) cfg with
  | _ -> Alcotest.fail "serving + faults should raise"
  | exception Invalid_argument _ -> ()

let test_open_loop_untouched_by_arrival_field () =
  (* serving = None and arrival = None must reproduce the exact run
     the engine produced before the serving layer existed; spelling
     the default arrival out explicitly must change nothing *)
  let base =
    Sysim.default_config ~policy:Runtime.greedy ~composition:Genset.table1.(6)
  in
  let base = { base with Sysim.tasks = 30 } in
  let a = Sysim.run ~registry:(Lazy.force registry) base in
  let b =
    Sysim.run ~registry:(Lazy.force registry)
      { base with Sysim.arrival = Some (Genset.Exponential { mean_us = 200.0 }) }
  in
  Alcotest.(check (list (float 0.0))) "same latency series" a.Sysim.latencies_us
    b.Sysim.latencies_us;
  Alcotest.(check (float 0.0)) "same makespan" a.Sysim.makespan_us b.Sysim.makespan_us;
  Alcotest.(check (float 0.0)) "same mean wait" a.Sysim.mean_wait_us b.Sysim.mean_wait_us;
  (* open-loop runs carry zeroed serving fields *)
  Alcotest.(check int) "no shed" 0 a.Sysim.shed;
  Alcotest.(check int) "no batches" 0 a.Sysim.batches;
  Alcotest.(check int) "no scaling" 0 (a.Sysim.scale_ups + a.Sysim.scale_downs)

let test_percentiles_match_histogram () =
  Obs.reset ();
  let r = Sysim.run ~registry:(Lazy.force registry) (serving_config ()) in
  let h = Obs.Histogram.get "sysim.task_sojourn_us" in
  Alcotest.(check int) "histogram saw every completion" r.Sysim.completed
    (Obs.Histogram.count h);
  (* the registry histogram uses ten log buckets per decade, so its
     estimate sits within one bucket (~26%) of the exact percentile *)
  let close p exact =
    let est = Obs.Histogram.percentile h p in
    Alcotest.(check bool)
      (Printf.sprintf "p%.0f exact %.0f vs histogram %.0f" p exact est)
      true
      (est >= exact /. 1.35 && est <= exact *. 1.35)
  in
  close 50.0 r.Sysim.p50_latency_us;
  close 99.0 r.Sysim.p99_latency_us

let test_slo_classes_shed_under_pressure () =
  (* starve the gate: tight buckets on a bursty trace must shed, and
     per-class accounting must close against the run totals *)
  let cfg = serving_config ~tasks:40 () in
  let classes =
    [
      Slo.class_spec ~priority:2 ~deadline_us:100_000.0 ~rate_per_s:500.0 ~burst:2 "S";
      Slo.class_spec ~priority:1 ~deadline_us:100_000.0 ~rate_per_s:500.0 ~burst:2 "M";
      Slo.class_spec ~priority:0 ~deadline_us:200_000.0 ~rate_per_s:500.0 ~burst:2 "L";
    ]
  in
  let serving = { (Option.get cfg.Sysim.serving) with Sysim.classes } in
  let r =
    Sysim.run ~registry:(Lazy.force registry)
      { cfg with Sysim.serving = Some serving }
  in
  Alcotest.(check bool) "tight buckets shed" true (r.Sysim.shed > 0);
  Alcotest.(check int) "accounting still closes" 40
    (r.Sysim.completed + r.Sysim.rejected + r.Sysim.shed);
  Alcotest.(check int) "none lost" 0 r.Sysim.lost

(* ---------------- priority preemption ---------------- *)

(* Two XCVU37P nodes, a best-effort tenant whose replicas hog the
   fabric from t=0, and a priority tenant whose stream starts later
   (slower arrivals) on a different composition so the two never share
   a replica group: the priority tenant's bootstrap finds the fabric
   full and must evict.  (Two nodes, not one: the priority tenant's
   large models span devices, and a demand that cannot fit even an
   empty cluster never evicts anyone.) *)
let preempt_config ?(preempt = true) ?defrag ?bitstream_cache seed =
  let base =
    Sysim.default_config ~policy:Runtime.greedy ~composition:Genset.table1.(2)
  in
  {
    base with
    Sysim.seed;
    cluster_kinds = [ Device.XCVU37P; Device.XCVU37P ];
    tenants =
      [
        Genset.tenant_load ~priority:1 ~tasks:30
          ~arrival:(Genset.Exponential { mean_us = 400.0 })
          "gold";
        Genset.tenant_load ~tasks:30
          ~composition:Genset.table1.(1) (* 100% M: disjoint groups *)
          ~arrival:(Genset.Exponential { mean_us = 20.0 })
          "bulk";
      ];
    serving =
      Some
        {
          Sysim.classes = [];
          batch = Batcher.config ~max_batch:4 ~max_linger_us:100.0 ();
          autoscale = None;
          tenant_pool = None;
          preempt;
          defrag;
        };
    bitstream_cache;
  }

let check_preempt_identities ~label (r : Sysim.result) =
  Alcotest.(check int) (label ^ ": global identity") 60
    (r.Sysim.completed + r.Sysim.rejected + r.Sysim.shed + r.Sysim.preempted);
  Alcotest.(check int) (label ^ ": none lost") 0 r.Sysim.lost;
  List.iter
    (fun (t : Sysim.tenant_stats) ->
      Alcotest.(check int)
        (Printf.sprintf "%s: tenant %s identity" label t.Sysim.tn_name)
        t.Sysim.tn_arrived
        (t.Sysim.tn_completed + t.Sysim.tn_shed + t.Sysim.tn_rejected
       + t.Sysim.tn_preempted_lost))
    r.Sysim.per_tenant

let test_serving_preemption_accounting () =
  (* property over seeds: under preemption pressure every task is
     still accounted for, globally and per tenant *)
  let total = ref 0 in
  List.iter
    (fun seed ->
      let r = Sysim.run ~registry:(Lazy.force registry) (preempt_config seed) in
      total := !total + r.Sysim.preemptions;
      check_preempt_identities ~label:(Printf.sprintf "seed %d" seed) r;
      if r.Sysim.preemptions > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: evictions lose in-flight work" seed)
          true
          (r.Sysim.preempted >= 0))
    [ 1; 2; 3; 4; 5 ];
  Alcotest.(check bool) "preemption exercised across seeds" true (!total > 0)

let test_serving_preempt_defrag_cache_mix () =
  (* all three features at once: identities still close, repeat
     deployments consult the bitstream cache *)
  let r =
    Sysim.run ~registry:(Lazy.force registry)
      (preempt_config
         ~defrag:(Defrag.config ~frag_threshold:0.05 ~interval_us:500.0 ())
         ~bitstream_cache:32 3)
  in
  check_preempt_identities ~label:"mix" r;
  Alcotest.(check bool) "cache consulted" true
    (r.Sysim.cache_hits + r.Sysim.cache_misses > 0);
  (* preempt off on the same workload: no preemption-side effects *)
  let off =
    Sysim.run ~registry:(Lazy.force registry) (preempt_config ~preempt:false 3)
  in
  Alcotest.(check int) "preempt off: no evictions" 0 off.Sysim.preemptions;
  Alcotest.(check int) "preempt off: nothing preempted" 0 off.Sysim.preempted

(* ---------------- migrate rollback differential ---------------- *)

(* A small registry the single-device cluster can host a few of. *)
let toy_registry () =
  let r = Registry.create () in
  (match Framework.build_npu ~tiles:6 () with
  | Ok npu -> Registry.register r npu.Framework.mapping
  | Error e -> Alcotest.fail e);
  r

let test_migrate_rollback_differential () =
  (* Force-migrate with every node marked failed: the deploy inside
     migrate cannot place anywhere, so the rollback must restore the
     original placements exactly.  Run the same scenario on an indexed
     and a naive runtime: every decision must match, and the capacity
     index must stay consistent after the failed migration. *)
  let scenario ~indexed =
    let reg = toy_registry () in
    let cluster = Cluster.create ~kinds:[ Device.XCVU37P; Device.XCVU37P ] () in
    let rt = Runtime.create ~policy:Runtime.greedy ~indexed cluster reg in
    let rec fill acc =
      match Runtime.deploy rt ~accel:"npu-t6" with
      | Ok d -> fill (d :: acc)
      | Error _ -> List.rev acc
    in
    let deployed = fill [] in
    Alcotest.(check bool) "cluster holds several" true (List.length deployed >= 2);
    let victim = List.hd deployed in
    let before = Runtime.nodes_used victim in
    for n = 0 to Cluster.node_count cluster - 1 do
      Runtime.mark_node_failed rt n
    done;
    let outcome = Runtime.migrate ~force:true rt victim in
    (match outcome with
    | Ok _ -> Alcotest.fail "migrate with all nodes down should fail"
    | Error _ ->
      Alcotest.(check (list int)) "rollback restored placement" before
        (Runtime.nodes_used victim);
      Alcotest.(check bool) "still live after rollback" true
        (List.memq victim (Runtime.deployments rt)));
    Alcotest.(check bool) "index consistent after failed migrate" true
      (Runtime.index_consistent rt);
    for n = 0 to Cluster.node_count cluster - 1 do
      Runtime.restore_node rt n
    done;
    (* with capacity back, the same forced migration goes through and
       the rollback has left no hidden state behind *)
    let second = Runtime.migrate ~force:true rt victim in
    (match second with
    | Ok moved -> Alcotest.(check bool) "replaced whole" true (moved >= 1)
    | Error e -> Alcotest.fail e);
    Alcotest.(check bool) "index consistent after second" true
      (Runtime.index_consistent rt);
    List.iter (Runtime.undeploy rt) deployed;
    Alcotest.(check bool) "index consistent after teardown" true
      (Runtime.index_consistent rt);
    let tag = function Ok n -> Printf.sprintf "ok:%d" n | Error _ -> "error" in
    (List.length deployed, tag outcome, tag second, Runtime.nodes_used victim)
  in
  let i = scenario ~indexed:true in
  let n = scenario ~indexed:false in
  let pp_outcome fmt (a, b, c, d) =
    Format.fprintf fmt "(%d, %s, %s, [%s])" a b c
      (String.concat ";" (List.map string_of_int d))
  in
  Alcotest.(check (testable pp_outcome ( = ))) "indexed and naive agree" n i

(* ---------------- per-attempt wait accounting ---------------- *)

let test_wait_accounting_under_crash () =
  (* one long task interrupted by a crash: its end-to-end wait spans
     the outage, while each attempt's own queue wait is short — the
     two series must be kept apart *)
  let plan =
    match Fault_plan.of_string "crash@2000:0,restore@50000:0" with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let cfg =
    Sysim.default_config ~policy:Runtime.greedy
      ~composition:{ Genset.s = 1.0; m = 0.0; l = 0.0 }
  in
  let cfg =
    {
      cfg with
      Sysim.tasks = 1;
      mean_interarrival_us = 1.0;
      repeats_per_task = 500;
      cluster_kinds = [ Device.XCVU37P ];
      faults = Some (Sysim.default_faults plan);
    }
  in
  let r = Sysim.run ~registry:(Lazy.force registry) cfg in
  Alcotest.(check int) "completed" 1 r.Sysim.completed;
  Alcotest.(check int) "retried once" 1 r.Sysim.retried;
  Alcotest.(check int) "two deploy attempts" 2 r.Sysim.wait_attempts;
  (* the retry re-entered the queue at the crash; its second attempt
     started only after the restore at t=50000, so the per-attempt
     mean is large but still below the single end-to-end wait *)
  Alcotest.(check bool)
    (Printf.sprintf "per-attempt %.0f <= end-to-end %.0f"
       r.Sysim.mean_wait_per_attempt_us r.Sysim.mean_wait_us)
    true
    (r.Sysim.mean_wait_per_attempt_us <= r.Sysim.mean_wait_us);
  Alcotest.(check bool) "end-to-end wait spans the outage" true
    (r.Sysim.mean_wait_us >= 40_000.0)

let test_wait_series_agree_fault_free () =
  (* without crashes every task queues exactly once, so the two means
     coincide and attempts equal completions *)
  let cfg =
    Sysim.default_config ~policy:Runtime.greedy ~composition:Genset.table1.(6)
  in
  let r = Sysim.run ~registry:(Lazy.force registry) { cfg with Sysim.tasks = 30 } in
  Alcotest.(check int) "one attempt per completion"
    (r.Sysim.completed + r.Sysim.rejected)
    r.Sysim.wait_attempts;
  Alcotest.(check (float 1e-6)) "means coincide" r.Sysim.mean_wait_us
    r.Sysim.mean_wait_per_attempt_us

let () =
  Alcotest.run "sched"
    [
      ( "slo",
        [
          Alcotest.test_case "bucket drains and refills" `Quick
            test_slo_bucket_drains_and_refills;
          Alcotest.test_case "priority threshold" `Quick test_slo_priority_threshold;
          Alcotest.test_case "unknown and empty" `Quick test_slo_unknown_and_empty;
          Alcotest.test_case "validation" `Quick test_slo_validation;
          Alcotest.test_case "accounting identity" `Quick
            test_slo_accounting_identity;
          Alcotest.test_case "tenant pool burst bound" `Quick
            test_slo_tenant_pool_burst_bound;
          Alcotest.test_case "tenant pool identity" `Quick
            test_slo_tenant_pool_identity;
        ] );
      ( "batcher",
        [
          Alcotest.test_case "dispatch on fullness" `Quick test_batch_dispatch_on_fullness;
          Alcotest.test_case "linger flush + stale timer" `Quick
            test_batch_linger_flush_and_stale_timer;
          Alcotest.test_case "validation" `Quick test_batch_validation;
          Alcotest.test_case "incremental counters" `Quick
            test_batch_incremental_counters;
        ] );
      ( "router",
        [
          Alcotest.test_case "weighted least outstanding" `Quick
            test_router_weighted_least_outstanding;
          Alcotest.test_case "validation" `Quick test_router_validation;
          Alcotest.test_case "shapes differential" `Quick
            test_router_shapes_differential;
        ] );
      ( "autoscaler",
        [
          Alcotest.test_case "bootstrap and cooldown" `Quick
            test_autoscaler_bootstrap_and_cooldown;
          Alcotest.test_case "watermarks" `Quick test_autoscaler_watermarks;
          Alcotest.test_case "p99 trigger" `Quick test_autoscaler_p99_trigger;
          Alcotest.test_case "p99 window ages out" `Quick
            test_autoscaler_p99_window;
          Alcotest.test_case "validation" `Quick test_autoscaler_validation;
          Alcotest.test_case "tenant pool re-set renormalizes" `Quick
            test_slo_tenant_pool_reset_renormalizes;
          Alcotest.test_case "forecast learns season" `Quick
            test_forecast_learns_season;
          Alcotest.test_case "predictive cold fallback" `Quick
            test_predictive_cold_falls_back;
          Alcotest.test_case "predictive pre-provisions peak" `Quick
            test_predictive_preprovisions_peak;
        ] );
      ( "workload",
        [
          Alcotest.test_case "bursty arrivals" `Quick
            test_bursty_arrivals_deterministic_and_clustered;
        ] );
      ( "serving",
        [
          Alcotest.test_case "accounting closes" `Quick test_serving_accounting_closes;
          Alcotest.test_case "deterministic" `Quick test_serving_deterministic;
          Alcotest.test_case "rejects fault plans" `Quick test_serving_rejects_fault_plans;
          Alcotest.test_case "open loop untouched" `Quick
            test_open_loop_untouched_by_arrival_field;
          Alcotest.test_case "percentiles match histogram" `Quick
            test_percentiles_match_histogram;
          Alcotest.test_case "slo classes shed" `Quick test_slo_classes_shed_under_pressure;
          Alcotest.test_case "preemption accounting" `Quick
            test_serving_preemption_accounting;
          Alcotest.test_case "preempt+defrag+cache mix" `Quick
            test_serving_preempt_defrag_cache_mix;
        ] );
      ( "migrate",
        [
          Alcotest.test_case "rollback differential" `Quick
            test_migrate_rollback_differential;
        ] );
      ( "wait_accounting",
        [
          Alcotest.test_case "crash split" `Quick test_wait_accounting_under_crash;
          Alcotest.test_case "fault-free agreement" `Quick test_wait_series_agree_fault_free;
        ] );
    ]
