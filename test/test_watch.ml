(* Tests for the streaming-telemetry layer: windowed time-series
   rings (Obs.Series), the alert rule engine (Obs.Alert) and the
   Prometheus text exposition — plus the differential property that
   windowed aggregates over a full run agree with the cumulative Obs
   histograms fed the same stream. *)

module Obs = Mlv_obs.Obs
module Series = Mlv_obs.Series
module Alert = Mlv_obs.Alert
module Prometheus = Mlv_obs.Prometheus
module Stats = Mlv_util.Stats

(* Every test starts from an empty series registry: registrations from
   earlier tests would otherwise collide on parameters. *)
let fresh () =
  Series.remove_all ();
  Obs.reset ()

(* ---------------- series semantics ---------------- *)

let test_rate_windows () =
  fresh ();
  let s = Series.create ~buckets:8 ~kind:Series.Rate ~interval_us:1_000.0 "r" in
  (* epochs 0, 0, 1, 3 *)
  Series.observe s ~now_us:100.0 2.0;
  Series.observe s ~now_us:900.0 3.0;
  Series.observe s ~now_us:1_500.0 5.0;
  Series.observe s ~now_us:3_200.0 7.0;
  Alcotest.(check int) "window 1 count" 1
    (Series.window_count s ~now_us:3_200.0 ~buckets:1);
  Alcotest.(check (float 1e-9)) "window 1 sum" 7.0
    (Series.window_sum s ~now_us:3_200.0 ~buckets:1);
  (* buckets 2 = epochs 2 (empty) and 3 *)
  Alcotest.(check (float 1e-9)) "window 2 sum" 7.0
    (Series.window_sum s ~now_us:3_200.0 ~buckets:2);
  Alcotest.(check (float 1e-9)) "window 4 sum" 17.0
    (Series.window_sum s ~now_us:3_200.0 ~buckets:4);
  (* rate = sum / window span: 17 over 4ms *)
  Alcotest.(check (float 1e-6)) "rate per s" (17.0 /. 0.004)
    (Series.window_rate_per_s s ~now_us:3_200.0 ~buckets:4);
  Alcotest.(check int) "total count" 4 (Series.total_count s);
  Alcotest.(check (float 1e-9)) "total sum" 17.0 (Series.total_sum s)

let test_gauge_last_value_and_gaps () =
  fresh ();
  let s = Series.create ~buckets:4 ~kind:Series.Gauge ~interval_us:1_000.0 "g" in
  Series.observe s ~now_us:500.0 1.0;
  Series.observe s ~now_us:700.0 2.0;
  (* last value within the bucket wins *)
  Alcotest.(check (float 1e-9)) "last in bucket" 2.0
    (Series.window_value s ~now_us:900.0 ~buckets:1);
  (* two idle epochs later the gauge still reports the most recent
     non-empty bucket inside the window *)
  Alcotest.(check (float 1e-9)) "holds over idle buckets" 2.0
    (Series.window_value s ~now_us:2_900.0 ~buckets:4);
  (* a gap longer than the ring retires everything *)
  Series.advance s ~now_us:50_000.0;
  Alcotest.(check (float 1e-9)) "empty window reads 0" 0.0
    (Series.window_value s ~now_us:50_000.0 ~buckets:4)

let test_ring_eviction () =
  fresh ();
  let s = Series.create ~buckets:4 ~kind:Series.Rate ~interval_us:1_000.0 "e" in
  for k = 0 to 9 do
    Series.observe s ~now_us:(float_of_int k *. 1_000.0) 1.0
  done;
  (* only the last [cap] epochs are live, however wide the query *)
  Alcotest.(check int) "window capped at ring" 4
    (Series.window_count s ~now_us:9_000.0 ~buckets:100);
  Alcotest.(check int) "lifetime total survives" 10 (Series.total_count s);
  Alcotest.(check int) "live points" 4 (List.length (Series.points s))

let test_quantile_single_bucket_matches_p2 () =
  fresh ();
  let s =
    Series.create ~buckets:4 ~kind:(Series.Quantile 0.9) ~interval_us:1e9 "q"
  in
  let p2 = Stats.P2.create 0.9 in
  let x = ref 7 in
  for _ = 1 to 500 do
    x := (!x * 1103515245) + 12345;
    let v = float_of_int (abs !x mod 10_000) in
    Series.observe s ~now_us:10.0 v;
    Stats.P2.add p2 v
  done;
  (* one bucket holds the whole stream: the window aggregate IS the
     P² estimate, bit for bit *)
  Alcotest.(check (float 0.0)) "bit-identical to P2" (Stats.P2.quantile p2)
    (Series.window_value s ~now_us:10.0 ~buckets:1)

let test_series_validation () =
  fresh ();
  let s = Series.create ~buckets:4 ~kind:Series.Rate ~interval_us:1_000.0 "v" in
  Alcotest.check_raises "NaN sample"
    (Invalid_argument "Obs.Series.observe: sample must be finite") (fun () ->
      Series.observe s ~now_us:0.0 Float.nan);
  Alcotest.check_raises "negative time"
    (Invalid_argument "Obs.Series.observe: negative or NaN time") (fun () ->
      Series.observe s ~now_us:(-1.0) 1.0);
  (try
     ignore (Series.create ~buckets:4 ~kind:Series.Gauge ~interval_us:1_000.0 "v");
     Alcotest.fail "kind mismatch accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Series.create ~buckets:4 ~kind:Series.Rate ~interval_us:0.0 "v0");
     Alcotest.fail "zero interval accepted"
   with Invalid_argument _ -> ());
  (* same parameters return the same handle *)
  let s' = Series.create ~buckets:4 ~kind:Series.Rate ~interval_us:1_000.0 "v" in
  Alcotest.(check bool) "same handle" true (s == s')

(* ---------------- differential property ---------------- *)

(* Windowed aggregates over a ring wide enough to hold the whole run
   must agree with the cumulative histogram fed the same stream:
   count exactly, sum to float tolerance, and the single-bucket P²
   estimate bit-identically. *)
let test_series_agree_with_cumulative_histograms () =
  fresh ();
  let n = 5_000 in
  let interval_us = 1_000.0 in
  let rate =
    Series.create ~buckets:64 ~kind:Series.Rate ~interval_us "d.rate"
  in
  let q99 =
    Series.create ~buckets:2 ~kind:(Series.Quantile 0.99) ~interval_us:1e12
      "d.q99"
  in
  let h = Obs.Histogram.get "d.hist" in
  let p2 = Stats.P2.create 0.99 in
  let x = ref 1 in
  for k = 0 to n - 1 do
    x := (!x * 1103515245) + 12345;
    let v = float_of_int (abs !x mod 1_000_000) /. 37.0 in
    (* 5000 samples spread over 50 epochs of the rate ring *)
    let now_us = float_of_int k *. 10.0 in
    Series.observe rate ~now_us v;
    Series.observe q99 ~now_us v;
    Obs.Histogram.observe h v;
    Stats.P2.add p2 v
  done;
  let now_us = float_of_int (n - 1) *. 10.0 in
  Alcotest.(check int) "count agrees" (Obs.Histogram.count h)
    (Series.window_count rate ~now_us ~buckets:64);
  let hsum = Obs.Histogram.sum h in
  let wsum = Series.window_sum rate ~now_us ~buckets:64 in
  Alcotest.(check bool) "sum agrees to tolerance" true
    (Float.abs (hsum -. wsum) <= 1e-9 *. Float.max 1.0 (Float.abs hsum));
  Alcotest.(check (float 0.0)) "q99 bit-identical to P2 fed same stream"
    (Stats.P2.quantile p2)
    (Series.window_value q99 ~now_us ~buckets:1)

(* ---------------- alert state machine ---------------- *)

let gauge_rule ?(for_intervals = 2) ?(cooldown = 2) name =
  {
    Alert.name;
    condition =
      Alert.Threshold
        { series = "a.g"; window = 1; cmp = Alert.Gt; threshold = 10.0 };
    for_intervals;
    cooldown_intervals = cooldown;
  }

let drive s engine samples =
  List.map
    (fun (t, v) ->
      Series.observe s ~now_us:t v;
      Alert.eval engine ~now_us:t;
      ( Option.get (Alert.rule_state engine "r"),
        List.length (Alert.transitions engine) ))
    samples

let test_threshold_lifecycle () =
  fresh ();
  let s = Series.create ~buckets:8 ~kind:Series.Gauge ~interval_us:1_000.0 "a.g" in
  let e = Alert.create [ gauge_rule "r" ] in
  let states =
    drive s e
      [
        (0.0, 5.0);      (* below: inactive *)
        (1_000.0, 20.0); (* above: pending *)
        (2_000.0, 20.0); (* still above, streak 2 = for: firing *)
        (3_000.0, 20.0); (* stays firing, no new transition *)
        (4_000.0, 5.0);  (* below: resolved, cooldown starts *)
      ]
  in
  Alcotest.(check (list (pair string int)))
    "state walk"
    [
      ("inactive", 0);
      ("pending", 1);
      ("firing", 2);
      ("firing", 2);
      ("inactive", 3);
    ]
    (List.map (fun (st, n) -> (Alert.state_name st, n)) states);
  let events = List.map (fun tr -> tr.Alert.event) (Alert.transitions e) in
  Alcotest.(check (list string)) "event order"
    [ "pending"; "firing"; "resolved" ]
    (List.map Alert.event_name events);
  (* transition timestamps are the evaluation times *)
  Alcotest.(check (list (float 0.0))) "transition times"
    [ 1_000.0; 2_000.0; 4_000.0 ]
    (List.map (fun tr -> tr.Alert.at_us) (Alert.transitions e))

let test_cooldown_suppresses_rearm () =
  fresh ();
  let s = Series.create ~buckets:8 ~kind:Series.Gauge ~interval_us:1_000.0 "a.g" in
  let e = Alert.create [ gauge_rule ~for_intervals:1 ~cooldown:2 "r" ] in
  let walk =
    drive s e
      [
        (0.0, 20.0);     (* fires immediately (for=1) *)
        (1_000.0, 5.0);  (* resolves; cooldown = 2 *)
        (2_000.0, 20.0); (* above but cooling down: stays inactive *)
        (3_000.0, 20.0); (* still cooling down *)
        (4_000.0, 20.0); (* re-armed: fires again *)
      ]
  in
  Alcotest.(check (list string)) "cooldown walk"
    [ "firing"; "inactive"; "inactive"; "inactive"; "firing" ]
    (List.map (fun (st, _) -> Alert.state_name st) walk);
  Alcotest.(check (list string)) "events"
    [ "firing"; "resolved"; "firing" ]
    (List.map
       (fun tr -> Alert.event_name tr.Alert.event)
       (Alert.transitions e))

let test_pending_lapse_is_silent () =
  fresh ();
  let s = Series.create ~buckets:8 ~kind:Series.Gauge ~interval_us:1_000.0 "a.g" in
  let e = Alert.create [ gauge_rule ~for_intervals:3 ~cooldown:0 "r" ] in
  ignore
    (drive s e [ (0.0, 20.0); (1_000.0, 20.0); (2_000.0, 5.0); (3_000.0, 20.0) ]);
  (* pending at 0, streak broken at 2ms before for=3 was met: only the
     two Pend events, no Fire and no Resolve *)
  Alcotest.(check (list string)) "only pend events"
    [ "pending"; "pending" ]
    (List.map
       (fun tr -> Alert.event_name tr.Alert.event)
       (Alert.transitions e))

let test_missing_series_is_false () =
  fresh ();
  let e = Alert.create [ gauge_rule "r" ] in
  Alert.eval e ~now_us:0.0;
  Alert.eval e ~now_us:1_000.0;
  Alcotest.(check int) "no transitions" 0 (List.length (Alert.transitions e));
  Alcotest.(check string) "still inactive" "inactive"
    (Alert.state_name (Option.get (Alert.rule_state e "r")))

let test_burn_rate_rule () =
  fresh ();
  let iv = 1_000.0 in
  let bad = Series.create ~buckets:16 ~kind:Series.Rate ~interval_us:iv "b.bad" in
  let total =
    Series.create ~buckets:16 ~kind:Series.Rate ~interval_us:iv "b.total"
  in
  let rule =
    {
      Alert.name = "burn";
      condition =
        Alert.Burn_rate
          {
            bad = "b.bad";
            total = "b.total";
            objective = 0.9;  (* budget 0.1 *)
            factor = 2.0;
            long_window = 4;
            short_window = 2;
          };
      for_intervals = 1;
      cooldown_intervals = 0;
    }
  in
  let e = Alert.create [ rule ] in
  (* healthy epochs: 5% errors, burn 0.5 < 2 *)
  for k = 0 to 3 do
    let t = float_of_int k *. iv in
    Series.observe total ~now_us:t 100.0;
    Series.observe bad ~now_us:t 5.0;
    Alert.eval e ~now_us:t;
    Alcotest.(check string)
      (Printf.sprintf "healthy epoch %d" k)
      "inactive"
      (Alert.state_name (Option.get (Alert.rule_state e "burn")))
  done;
  (* outage: 40% errors, burn 4.0 on the short window — but the long
     window still averages below factor after one bad epoch *)
  Series.observe total ~now_us:(4.0 *. iv) 100.0;
  Series.observe bad ~now_us:(4.0 *. iv) 40.0;
  Alert.eval e ~now_us:(4.0 *. iv);
  Alcotest.(check string) "one bad epoch: long window holds it back"
    "inactive"
    (Alert.state_name (Option.get (Alert.rule_state e "burn")));
  (* a second bad epoch pushes the long window over: 5+5+40+40 / 400
     = 22.5% -> burn 2.25 >= 2, short window 40+40 / 200 -> burn 4 *)
  Series.observe total ~now_us:(5.0 *. iv) 100.0;
  Series.observe bad ~now_us:(5.0 *. iv) 40.0;
  Alert.eval e ~now_us:(5.0 *. iv);
  Alcotest.(check string) "sustained burn fires" "firing"
    (Alert.state_name (Option.get (Alert.rule_state e "burn")));
  (let tr = List.hd (List.rev (Alert.transitions e)) in
   Alcotest.(check (float 1e-9)) "reports long-window burn" 2.25
     tr.Alert.value);
  (* recovery: error rate back to zero drains the windows *)
  for k = 6 to 9 do
    let t = float_of_int k *. iv in
    Series.observe total ~now_us:t 100.0;
    Series.observe bad ~now_us:t 0.0;
    Alert.eval e ~now_us:t
  done;
  Alcotest.(check string) "recovered" "inactive"
    (Alert.state_name (Option.get (Alert.rule_state e "burn")));
  Alcotest.(check (list string)) "exactly one cycle"
    [ "firing"; "resolved" ]
    (List.map
       (fun tr -> Alert.event_name tr.Alert.event)
       (Alert.transitions e))

let test_empty_total_burns_zero () =
  fresh ();
  ignore (Series.create ~buckets:8 ~kind:Series.Rate ~interval_us:1e3 "z.bad");
  ignore (Series.create ~buckets:8 ~kind:Series.Rate ~interval_us:1e3 "z.total");
  let e =
    Alert.create
      [
        {
          Alert.name = "z";
          condition =
            Alert.Burn_rate
              {
                bad = "z.bad";
                total = "z.total";
                objective = 0.99;
                factor = 1.0;
                long_window = 2;
                short_window = 1;
              };
          for_intervals = 1;
          cooldown_intervals = 0;
        };
      ]
  in
  (* no traffic at all: burn is 0/0, defined as 0 — never fires *)
  Alert.eval e ~now_us:0.0;
  Alert.eval e ~now_us:1_000.0;
  Alcotest.(check int) "no transitions on empty series" 0
    (List.length (Alert.transitions e))

(* ---------------- rule grammar ---------------- *)

let test_grammar_roundtrip () =
  let specs =
    [
      "outage gt sysim.nodes_down 0 1 1 0";
      "slow lt sysim.goodput 5 6 3 12";
      "burny burn s.bad s.total 0.99 2 12 3 2 6";
    ]
  in
  List.iter
    (fun spec ->
      match Alert.of_string spec with
      | Error e -> Alcotest.fail (spec ^ ": " ^ e)
      | Ok [ r ] ->
        Alcotest.(check string) ("roundtrip " ^ spec) spec
          (Alert.rule_to_string r)
      | Ok _ -> Alcotest.fail (spec ^ ": expected one rule"))
    specs;
  (* multiple ;-separated clauses *)
  (match Alert.of_string (String.concat "; " specs) with
  | Ok rules -> Alcotest.(check int) "three rules" 3 (List.length rules)
  | Error e -> Alcotest.fail e);
  (* errors *)
  List.iter
    (fun spec ->
      match Alert.of_string spec with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("accepted: " ^ spec))
    [
      "name gt";  (* too few fields *)
      "name gt s notanumber 1 1 0";
      "name ge s 1 1 1 0";  (* unknown comparator *)
      "name burn b t 1.5 2 12 3 1 0";  (* objective outside (0,1) *)
      "name burn b t 0.9 2 3 12 1 0";  (* short window > long *)
      "name gt s 1 0 1 0";  (* window < 1 *)
      "bad;name gt s 1 1 1 0";  (* malformed clause *)
    ];
  (* duplicate names rejected at engine level *)
  try
    ignore (Alert.create [ gauge_rule "dup"; gauge_rule "dup" ]);
    Alcotest.fail "duplicate rule name accepted"
  with Invalid_argument _ -> ()

(* ---------------- determinism across Obs.reset ---------------- *)

let test_determinism_across_reset () =
  fresh ();
  let script () =
    let s =
      Series.create ~buckets:8 ~kind:Series.Gauge ~interval_us:1_000.0 "a.g"
    in
    let e = Alert.create [ gauge_rule "r" ] in
    List.iter
      (fun (t, v) ->
        Series.observe s ~now_us:t v;
        Alert.eval e ~now_us:t)
      [
        (0.0, 20.0);
        (1_000.0, 20.0);
        (2_000.0, 5.0);
        (3_000.0, 20.0);
        (4_000.0, 20.0);
      ];
    Alert.transitions e
  in
  let first = script () in
  (* Obs.reset clears series data through the reset hook; the same
     script on the surviving registrations must transition
     identically *)
  Obs.reset ();
  let second = script () in
  Alcotest.(check bool) "transition logs identical" true (first = second);
  Alcotest.(check bool) "something happened" true (List.length first > 0)

(* ---------------- prometheus exposition ---------------- *)

let test_prometheus_exposition () =
  fresh ();
  Obs.Counter.add (Obs.Counter.get "prom.requests") 41;
  Obs.Counter.incr
    (Obs.Counter.get_labeled "prom.requests" [ ("tenant", "gold") ]);
  let h = Obs.Histogram.get "prom.lat_us" in
  Obs.Histogram.observe h 100.0;
  let s =
    Series.create ~buckets:4 ~kind:Series.Rate ~interval_us:1_000.0
      "prom.rate"
  in
  Series.observe s ~now_us:500.0 3.0;
  let text = Prometheus.render () in
  let has needle =
    let nl = String.length needle and tl = String.length text in
    let rec go i =
      i + nl <= tl && (String.sub text i nl = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "plain counter" true (has "prom_requests 41");
  Alcotest.(check bool) "labeled counter" true
    (has {|prom_requests{tenant="gold"} 1|});
  (* the registry rejects reserved characters in label values, so the
     escaper is exercised directly *)
  Alcotest.(check string) "label escaping" {|a\"b\\c\nd|}
    (Prometheus.escape_label_value "a\"b\\c\nd");
  Alcotest.(check bool) "type header once" true
    (has "# TYPE prom_requests counter");
  Alcotest.(check bool) "histogram quantile" true
    (has {|prom_lat_us{quantile="0.99"}|});
  Alcotest.(check bool) "histogram count" true (has "prom_lat_us_count 1");
  Alcotest.(check bool) "series latest value" true (has "prom_rate:rate ");
  (* metric names are sanitized to the exposition charset *)
  Alcotest.(check string) "name sanitized" "x_y_z:9"
    (Prometheus.metric_name "x.y-z:9");
  Alcotest.(check string) "leading digit prefixed" "_9x"
    (Prometheus.metric_name "9x")

let () =
  Alcotest.run "watch"
    [
      ( "series",
        [
          Alcotest.test_case "rate windows" `Quick test_rate_windows;
          Alcotest.test_case "gauge last value and gaps" `Quick
            test_gauge_last_value_and_gaps;
          Alcotest.test_case "ring eviction" `Quick test_ring_eviction;
          Alcotest.test_case "quantile matches P2" `Quick
            test_quantile_single_bucket_matches_p2;
          Alcotest.test_case "validation" `Quick test_series_validation;
          Alcotest.test_case "agrees with cumulative histograms" `Quick
            test_series_agree_with_cumulative_histograms;
        ] );
      ( "alert",
        [
          Alcotest.test_case "threshold lifecycle" `Quick
            test_threshold_lifecycle;
          Alcotest.test_case "cooldown suppresses re-arm" `Quick
            test_cooldown_suppresses_rearm;
          Alcotest.test_case "pending lapse is silent" `Quick
            test_pending_lapse_is_silent;
          Alcotest.test_case "missing series is false" `Quick
            test_missing_series_is_false;
          Alcotest.test_case "burn rate" `Quick test_burn_rate_rule;
          Alcotest.test_case "empty total burns zero" `Quick
            test_empty_total_burns_zero;
          Alcotest.test_case "grammar roundtrip" `Quick test_grammar_roundtrip;
          Alcotest.test_case "determinism across reset" `Quick
            test_determinism_across_reset;
        ] );
      ( "prometheus",
        [
          Alcotest.test_case "exposition" `Quick test_prometheus_exposition;
        ] );
    ]
