(* Tests for the observability registry: JSON emitter/validator,
   counters, log-scale histograms, nested spans and reset
   semantics. *)

module Obs = Mlv_obs.Obs
module Json = Obs.Json

(* ---------------- JSON ---------------- *)

let test_json_render () =
  let v =
    Json.Obj
      [
        ("a", Json.Int 1);
        ("b", Json.Float 2.5);
        ("c", Json.String "x\"y\n");
        ("d", Json.List [ Json.Null; Json.Bool true ]);
      ]
  in
  Alcotest.(check string) "render"
    {|{"a":1,"b":2.5,"c":"x\"y\n","d":[null,true]}|} (Json.to_string v)

let test_json_non_finite () =
  Alcotest.(check string) "nan is null" "null" (Json.to_string (Json.Float Float.nan));
  Alcotest.(check string) "inf is null" "null"
    (Json.to_string (Json.Float Float.infinity))

let test_json_validator () =
  List.iter
    (fun s -> Alcotest.(check bool) ("valid: " ^ s) true (Json.is_valid s))
    [
      "null";
      "true";
      "-12";
      "3.25e-2";
      {|"esc \" \\ A"|};
      "[1, 2, [3]]";
      {|{"k": {"n": []}, "m": 0.5}|};
    ];
  List.iter
    (fun s -> Alcotest.(check bool) ("invalid: " ^ s) false (Json.is_valid s))
    [ ""; "tru"; "[1,]"; "{k:1}"; {|{"k":1|}; "1 2"; "\"unterminated" ]

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("nested", Json.List [ Json.Obj [ ("x", Json.Float 1e-3) ]; Json.Int (-7) ]);
        ("s", Json.String "tab\tand\\slash");
      ]
  in
  Alcotest.(check bool) "emitted JSON validates" true (Json.is_valid (Json.to_string v))

let test_json_control_chars () =
  Alcotest.(check string) "u0001" "\"\\u0001\"" (Json.to_string (Json.String "\x01"));
  Alcotest.(check string) "u001f" "\"\\u001f\"" (Json.to_string (Json.String "\x1f"));
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "escaped %S validates" s)
        true
        (Json.is_valid (Json.to_string (Json.String s))))
    [ "\x01"; "\x1f"; "literal \\u0041 text"; "mix\x02\t\"quote\"\\"; "\x00" ];
  Alcotest.(check bool) "validator accepts unicode escape" true
    (Json.is_valid {|"\u00ff"|});
  Alcotest.(check bool) "validator rejects bad unicode escape" false
    (Json.is_valid {|"\u00zz"|});
  Alcotest.(check bool) "validator rejects short unicode escape" false
    (Json.is_valid {|"\u0a"|})

let test_json_non_finite_nested () =
  let s =
    Json.to_string
      (Json.Obj
         [
           ( "xs",
             Json.List
               [ Json.Float Float.nan; Json.Float Float.neg_infinity; Json.Float 1.5 ]
           );
         ])
  in
  Alcotest.(check string) "non-finite renders null inside structures"
    {|{"xs":[null,null,1.5]}|} s;
  Alcotest.(check bool) "still valid" true (Json.is_valid s)

(* ---------------- Labels ---------------- *)

let test_labels_canonical () =
  let l = Obs.Labels.make [ ("node", "3"); ("kind", "large") ] in
  Alcotest.(check string) "sorted render" "{kind=large,node=3}" (Obs.Labels.render l);
  Alcotest.(check string) "empty render" "" (Obs.Labels.render (Obs.Labels.make []));
  Alcotest.(check string) "key is order-insensitive" "m{a=1,b=2}"
    (Obs.Labels.key "m" [ ("b", "2"); ("a", "1") ])

let test_labels_rejected () =
  let bad kvs =
    try
      ignore (Obs.Labels.make kvs);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "duplicate key" true (bad [ ("k", "1"); ("k", "2") ]);
  Alcotest.(check bool) "empty key" true (bad [ ("", "v") ]);
  Alcotest.(check bool) "brace in value" true (bad [ ("k", "{") ]);
  Alcotest.(check bool) "comma in key" true (bad [ ("a,b", "v") ]);
  Alcotest.(check bool) "equals in value" true (bad [ ("k", "a=b") ]);
  Alcotest.(check bool) "quote in value" true (bad [ ("k", "\"") ]);
  Alcotest.(check bool) "newline in value" true (bad [ ("k", "a\nb") ])

(* ---------------- Counters ---------------- *)

let test_counter_basic () =
  Obs.reset ();
  let c = Obs.Counter.get "test.counter" in
  Alcotest.(check int) "starts at zero" 0 (Obs.Counter.value c);
  Obs.Counter.incr c;
  Obs.Counter.add c 4;
  Alcotest.(check int) "incremented" 5 (Obs.Counter.value c);
  Alcotest.(check string) "name" "test.counter" (Obs.Counter.name c);
  (* get returns the same counter *)
  Obs.Counter.incr (Obs.Counter.get "test.counter");
  Alcotest.(check int) "shared" 6 (Obs.Counter.value c);
  Alcotest.(check bool) "listed" true (List.mem_assoc "test.counter" (Obs.counters ()))

let test_counter_reset_keeps_handle () =
  Obs.reset ();
  let c = Obs.Counter.get "test.reset" in
  Obs.Counter.add c 10;
  Obs.reset ();
  Alcotest.(check int) "zeroed" 0 (Obs.Counter.value c);
  Obs.Counter.incr c;
  Alcotest.(check int) "handle still live" 1 (Obs.Counter.value c);
  Alcotest.(check int) "registry agrees" 1
    (List.assoc "test.reset" (Obs.counters ()))

let test_labeled_counter_identity () =
  Obs.reset ();
  let a = Obs.Counter.get_labeled "lab.c" [ ("node", "1"); ("kind", "x") ] in
  let b = Obs.Counter.get_labeled "lab.c" [ ("kind", "x"); ("node", "1") ] in
  Obs.Counter.incr a;
  Obs.Counter.incr b;
  Alcotest.(check int) "permuted labels share the series" 2 (Obs.Counter.value a);
  Alcotest.(check string) "full name" "lab.c{kind=x,node=1}" (Obs.Counter.name a);
  Alcotest.(check string) "base" "lab.c" (Obs.Counter.base a);
  Obs.Counter.incr (Obs.Counter.get "lab.c");
  Alcotest.(check int) "unlabeled member is distinct" 1
    (Obs.Counter.value (Obs.Counter.get "lab.c"))

let test_labeled_export_deterministic () =
  Obs.reset ();
  Obs.Counter.incr (Obs.Counter.get_labeled "det.c" [ ("node", "2") ]);
  Obs.Counter.incr (Obs.Counter.get_labeled "det.c" [ ("node", "10") ]);
  Obs.Counter.incr (Obs.Counter.get "det.c");
  let prefixed n = String.length n >= 5 && String.sub n 0 5 = "det.c" in
  let names = List.map fst (Obs.counters ()) |> List.filter prefixed in
  Alcotest.(check (list string)) "export sorted by full name"
    [ "det.c"; "det.c{node=10}"; "det.c{node=2}" ]
    names;
  let family = Obs.counters_with_base "det.c" in
  Alcotest.(check int) "family view" 3 (List.length family);
  Alcotest.(check bool) "family labels round-trip" true
    (List.exists (fun (_, labels, v) -> labels = [ ("node", "2") ] && v = 1) family)

(* ---------------- Histograms ---------------- *)

let test_histogram_stats () =
  Obs.reset ();
  let h = Obs.Histogram.get "test.hist" in
  Alcotest.(check int) "empty count" 0 (Obs.Histogram.count h);
  List.iter (Obs.Histogram.observe h) [ 10.0; 20.0; 30.0; 40.0 ];
  Alcotest.(check int) "count" 4 (Obs.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 100.0 (Obs.Histogram.sum h);
  Alcotest.(check (float 1e-9)) "mean" 25.0 (Obs.Histogram.mean h);
  Alcotest.(check (float 1e-9)) "min" 10.0 (Obs.Histogram.min h);
  Alcotest.(check (float 1e-9)) "max" 40.0 (Obs.Histogram.max h)

let test_histogram_percentiles () =
  Obs.reset ();
  let h = Obs.Histogram.get "test.pct" in
  (* 100 samples spanning two decades *)
  for i = 1 to 100 do
    Obs.Histogram.observe h (float_of_int i)
  done;
  let p50 = Obs.Histogram.percentile h 50.0 in
  let p90 = Obs.Histogram.percentile h 90.0 in
  let p99 = Obs.Histogram.percentile h 99.0 in
  (* log buckets give ~12% relative resolution *)
  Alcotest.(check bool) "p50 near 50" true (p50 >= 40.0 && p50 <= 60.0);
  Alcotest.(check bool) "p90 near 90" true (p90 >= 75.0 && p90 <= 100.0);
  Alcotest.(check bool) "ordered" true (p50 <= p90 && p90 <= p99);
  Alcotest.(check bool) "clamped to max" true (p99 <= Obs.Histogram.max h);
  Alcotest.(check (float 1e-9)) "p0 is min" (Obs.Histogram.min h)
    (Obs.Histogram.percentile h 0.0);
  Alcotest.(check (float 1e-9)) "p100 is max" (Obs.Histogram.max h)
    (Obs.Histogram.percentile h 100.0)

let test_histogram_rejects_bad_samples () =
  Obs.reset ();
  let h = Obs.Histogram.get "test.bad" in
  Alcotest.(check bool) "nan rejected" true
    (try
       Obs.Histogram.observe h Float.nan;
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "inf rejected" true
    (try
       Obs.Histogram.observe h Float.infinity;
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad percentile arg" true
    (try
       ignore (Obs.Histogram.percentile h 101.0);
       false
     with Invalid_argument _ -> true)

let test_histogram_zero_and_negative () =
  Obs.reset ();
  let h = Obs.Histogram.get "test.zero" in
  List.iter (Obs.Histogram.observe h) [ 0.0; 0.0; 5.0 ];
  Alcotest.(check int) "count includes zeros" 3 (Obs.Histogram.count h);
  Alcotest.(check (float 1e-9)) "min" 0.0 (Obs.Histogram.min h);
  Alcotest.(check (float 1e-9)) "p50 with zeros" 0.0 (Obs.Histogram.percentile h 50.0)

let test_labeled_histogram () =
  Obs.reset ();
  let h = Obs.Histogram.get_labeled "lab.h" [ ("kind", "a") ] in
  Obs.Histogram.observe h 5.0;
  Obs.Histogram.observe (Obs.Histogram.get_labeled "lab.h" [ ("kind", "a") ]) 7.0;
  Obs.Histogram.observe (Obs.Histogram.get_labeled "lab.h" [ ("kind", "b") ]) 9.0;
  Alcotest.(check int) "shared series" 2 (Obs.Histogram.count h);
  Alcotest.(check string) "base" "lab.h" (Obs.Histogram.base h);
  let family = Obs.histograms_with_base "lab.h" in
  Alcotest.(check int) "two series" 2 (List.length family);
  Alcotest.(check bool) "kind=b present" true
    (List.exists
       (fun (_, labels, h) -> labels = [ ("kind", "b") ] && Obs.Histogram.count h = 1)
       family)

(* ---------------- Spans ---------------- *)

let test_span_nesting () =
  Obs.reset ();
  Obs.clear_sim_clock ();
  Obs.Span.with_ "outer" (fun () ->
      Obs.Span.with_ "inner" (fun () -> ());
      Obs.Span.with_ "inner2" (fun () -> ()));
  let spans = Obs.spans () in
  Alcotest.(check int) "three spans" 3 (List.length spans);
  (* children complete before the parent: oldest-first order *)
  let by_name n = List.find (fun (r : Obs.span_record) -> r.name = n) spans in
  let outer = by_name "outer" and inner = by_name "inner" and inner2 = by_name "inner2" in
  Alcotest.(check (option int)) "outer is root" None outer.parent;
  Alcotest.(check int) "outer depth" 0 outer.depth;
  Alcotest.(check (option int)) "inner nested" (Some outer.id) inner.parent;
  Alcotest.(check (option int)) "inner2 nested" (Some outer.id) inner2.parent;
  Alcotest.(check int) "inner depth" 1 inner.depth;
  Alcotest.(check bool) "durations non-negative" true
    (List.for_all (fun (r : Obs.span_record) -> r.wall_us >= 0.0) spans);
  Alcotest.(check bool) "parent at least as long" true
    (outer.wall_us >= inner.wall_us)

let test_span_exit_idempotent () =
  Obs.reset ();
  let s = Obs.Span.enter "once" in
  Obs.Span.exit s;
  Obs.Span.exit s;
  Alcotest.(check int) "recorded once" 1 (List.length (Obs.spans ()))

let test_span_records_on_exception () =
  Obs.reset ();
  (try Obs.Span.with_ "boom" (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check int) "span recorded" 1 (List.length (Obs.spans_matching "boom"));
  (* the span stack unwound: a new span is a root again *)
  Obs.Span.with_ "after" (fun () -> ());
  let after = List.hd (Obs.spans_matching "after") in
  Alcotest.(check (option int)) "stack unwound" None after.Obs.parent

let test_span_feeds_histogram () =
  Obs.reset ();
  Obs.Span.with_ "timed" (fun () -> ());
  let h = Obs.Histogram.get "span.timed.wall_us" in
  Alcotest.(check int) "histogram fed" 1 (Obs.Histogram.count h)

let test_span_sim_clock () =
  Obs.reset ();
  let now = ref 100.0 in
  Obs.set_sim_clock (fun () -> !now);
  let s = Obs.Span.enter "simmed" in
  now := 350.0;
  Obs.Span.exit s;
  Obs.clear_sim_clock ();
  let r = List.hd (Obs.spans_matching "simmed") in
  Alcotest.(check (float 1e-9)) "start sim time" 100.0 r.Obs.start_sim_us;
  Alcotest.(check (float 1e-9)) "sim duration" 250.0 r.Obs.sim_us

let test_spans_matching_substring () =
  Obs.reset ();
  Obs.Span.with_ "alpha.one" (fun () -> ());
  Obs.Span.with_ "alpha.two" (fun () -> ());
  Obs.Span.with_ "beta" (fun () -> ());
  Alcotest.(check int) "alpha matches" 2 (List.length (Obs.spans_matching "alpha"));
  Alcotest.(check int) "exact" 1 (List.length (Obs.spans_matching "beta"));
  Alcotest.(check int) "none" 0 (List.length (Obs.spans_matching "gamma"))

(* Regression: [reset] used to leave [Span.next_id] running, so two
   otherwise identical runs separated by a reset exported different
   span ids (and parent references), breaking run-to-run diffing of
   metrics and trace dumps within one process. *)
let test_reset_restarts_span_ids () =
  Obs.clear_sim_clock ();
  let run () =
    Obs.reset ();
    Obs.Span.with_ "rr.outer" (fun () ->
        Obs.Span.with_ "rr.inner" (fun () -> ()));
    List.map
      (fun (r : Obs.span_record) -> (r.id, r.parent, r.name))
      (Obs.spans ())
  in
  let a = run () in
  let b = run () in
  Alcotest.(check (list (triple int (option int) string)))
    "reset-separated runs export identical span ids" a b;
  Alcotest.(check bool) "ids restart at 0" true
    (List.exists (fun (id, parent, _) -> id = 0 && parent = None) b)

let test_spans_matching_edges () =
  (* Edge cases of the allocation-free substring scan behind
     [spans_matching]: overlapping prefixes must backtrack, a needle
     longer than the name must not read past it, and the empty needle
     matches everything. *)
  Obs.reset ();
  Obs.Span.with_ "aaab" (fun () -> ());
  Alcotest.(check int) "overlapping prefix" 1 (List.length (Obs.spans_matching "aab"));
  Alcotest.(check int) "needle longer than name" 0
    (List.length (Obs.spans_matching "aaabb"));
  Alcotest.(check int) "suffix" 1 (List.length (Obs.spans_matching "ab"));
  Alcotest.(check int) "exact name" 1 (List.length (Obs.spans_matching "aaab"));
  Alcotest.(check int) "empty needle matches" 1 (List.length (Obs.spans_matching ""));
  Alcotest.(check int) "no match" 0 (List.length (Obs.spans_matching "abab"))

let test_span_args () =
  Obs.reset ();
  Obs.Span.with_span "argspan" (fun s ->
      Obs.Span.add_arg s "a" "1";
      Obs.Span.add_arg s "b" "2");
  let r = List.hd (Obs.spans_matching "argspan") in
  Alcotest.(check (list (pair string string))) "args in insertion order"
    [ ("a", "1"); ("b", "2") ]
    r.Obs.args

(* ---------------- Lifecycle trace ---------------- *)

let with_tracing f =
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace.set_enabled false;
      Obs.clear_sim_clock ())
    (fun () ->
      Obs.Trace.set_enabled true;
      f ())

let test_trace_disabled_noop () =
  Obs.reset ();
  Alcotest.(check bool) "off by default" false (Obs.Trace.enabled ());
  Obs.Trace.task Obs.Trace.Arrive 1;
  Obs.Trace.mark "nothing";
  Alcotest.(check int) "no events" 0 (Obs.Trace.recorded ());
  Alcotest.(check int) "no counts" 0 (Obs.Trace.count Obs.Trace.Arrive)

let test_trace_lifecycle () =
  Obs.reset ();
  Obs.set_sim_clock (fun () -> 123.0);
  with_tracing (fun () ->
      Obs.Trace.task Obs.Trace.Arrive 7 ~label:"npu";
      Obs.Trace.task Obs.Trace.Deploy 7 ~node:2 ~deployment:5 ~retries:1 ~label:"npu";
      Obs.Trace.mark ~node:2 "fault.crash";
      let evs = Obs.Trace.events () in
      Alcotest.(check int) "three events" 3 (List.length evs);
      let d = List.nth evs 1 in
      Alcotest.(check (option int)) "task id" (Some 7) d.Obs.Trace.task;
      Alcotest.(check (option int)) "node" (Some 2) d.Obs.Trace.node;
      Alcotest.(check (option int)) "deployment" (Some 5) d.Obs.Trace.deployment;
      Alcotest.(check int) "retries" 1 d.Obs.Trace.retries;
      Alcotest.(check (float 1e-9)) "sim stamp" 123.0 d.Obs.Trace.at_sim_us;
      Alcotest.(check string) "phase name" "deploy"
        (Obs.Trace.phase_name d.Obs.Trace.phase);
      let m = List.nth evs 2 in
      Alcotest.(check (option int)) "mark has no task" None m.Obs.Trace.task;
      Alcotest.(check string) "mark label" "fault.crash" m.Obs.Trace.label;
      Alcotest.(check int) "arrive count" 1 (Obs.Trace.count Obs.Trace.Arrive);
      Alcotest.(check int) "mark count" 1 (Obs.Trace.count Obs.Trace.Mark);
      Alcotest.(check bool) "seq strictly increasing" true
        (let rec mono = function
           | a :: (b :: _ as rest) ->
             a.Obs.Trace.seq < b.Obs.Trace.seq && mono rest
           | _ -> true
         in
         mono evs))

let test_trace_ring_overflow () =
  Obs.reset ();
  with_tracing (fun () ->
      let capacity = 65536 in
      let extra = 100 in
      for i = 0 to capacity + extra - 1 do
        Obs.Trace.task Obs.Trace.Queue i
      done;
      Alcotest.(check int) "ring holds capacity" capacity
        (List.length (Obs.Trace.events ()));
      Alcotest.(check int) "recorded counts every emit" (capacity + extra)
        (Obs.Trace.recorded ());
      Alcotest.(check int) "dropped = overflow" extra (Obs.Trace.dropped ());
      Alcotest.(check int) "phase count survives drops" (capacity + extra)
        (Obs.Trace.count Obs.Trace.Queue);
      (match Obs.Trace.events () with
      | e :: _ ->
        Alcotest.(check (option int)) "oldest events dropped first" (Some extra)
          e.Obs.Trace.task
      | [] -> Alcotest.fail "ring empty");
      Obs.reset ();
      Alcotest.(check int) "reset clears recorded" 0 (Obs.Trace.recorded ());
      Alcotest.(check int) "reset clears dropped" 0 (Obs.Trace.dropped ());
      Alcotest.(check int) "reset clears counts" 0 (Obs.Trace.count Obs.Trace.Queue);
      Alcotest.(check int) "reset clears ring" 0 (List.length (Obs.Trace.events ())))

let contains needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  at 0

let test_trace_chrome_export () =
  Obs.reset ();
  Obs.set_sim_clock (fun () -> 50.0);
  with_tracing (fun () ->
      Obs.Span.with_span "chrome.span" (fun s -> Obs.Span.add_arg s "key" "val");
      Obs.Trace.task Obs.Trace.Service 3 ~node:1 ~deployment:4 ~label:"npu";
      Obs.Trace.mark "fault.degrade";
      let s = Json.to_string (Obs.Trace.to_chrome_json ()) in
      Alcotest.(check bool) "valid json" true (Json.is_valid s);
      List.iter
        (fun needle ->
          Alcotest.(check bool) ("contains " ^ needle) true (contains needle s))
        [
          {|"traceEvents"|};
          {|"displayTimeUnit"|};
          {|"process_name"|};
          {|"thread_name"|};
          {|chrome.span|};
          {|"key":"val"|};
          {|"task_events_recorded":2|};
          {|"task_events_dropped":0|};
          {|"spans_dropped":0|};
          {|"phase_counts"|};
          {|"tracing_enabled":true|};
        ])

let test_trace_chrome_export_reports_drops () =
  Obs.reset ();
  with_tracing (fun () ->
      for i = 0 to 65536 + 9 do
        Obs.Trace.task Obs.Trace.Queue i
      done;
      let s = Json.to_string (Obs.Trace.to_chrome_json ()) in
      Alcotest.(check bool) "valid json" true (Json.is_valid s);
      Alcotest.(check bool) "explicit drop count" true
        (contains {|"task_events_dropped":10|} s))

(* ---------------- Export & reset ---------------- *)

let test_export_json_valid () =
  Obs.reset ();
  Obs.Counter.add (Obs.Counter.get "exp.counter") 3;
  Obs.Histogram.observe (Obs.Histogram.get "exp.hist") 42.0;
  Obs.Span.with_ "exp.span" (fun () -> ());
  let s = Obs.json_string () in
  Alcotest.(check bool) "valid json" true (Json.is_valid s);
  let contains needle hay =
    let nh = String.length hay and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    at 0
  in
  List.iter
    (fun needle -> Alcotest.(check bool) ("contains " ^ needle) true (contains needle s))
    [
      {|"version":1|};
      {|"exp.counter":3|};
      {|"exp.hist"|};
      {|"p99"|};
      {|"exp.span"|};
      {|"spans_dropped":0|};
    ]

let test_write_json_file () =
  Obs.reset ();
  Obs.Counter.incr (Obs.Counter.get "file.counter");
  let path = Filename.temp_file "mlv_obs" ".json" in
  Obs.write_json path;
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "file holds valid json" true (Json.is_valid s)

let test_render_mentions_everything () =
  Obs.reset ();
  Obs.Counter.incr (Obs.Counter.get "ren.counter");
  Obs.Histogram.observe (Obs.Histogram.get "ren.hist") 7.0;
  Obs.Span.with_ "ren.span" (fun () -> ());
  let s = Obs.render () in
  let contains needle =
    let nh = String.length s and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub s i nn = needle || at (i + 1)) in
    at 0
  in
  List.iter
    (fun needle -> Alcotest.(check bool) ("mentions " ^ needle) true (contains needle))
    [ "ren.counter"; "ren.hist"; "ren.span" ]

let test_reset_clears_everything () =
  Obs.reset ();
  Obs.Counter.incr (Obs.Counter.get "wipe.c");
  Obs.Histogram.observe (Obs.Histogram.get "wipe.h") 1.0;
  Obs.Span.with_ "wipe.s" (fun () -> ());
  Obs.reset ();
  Alcotest.(check bool) "counters zero" true
    (List.for_all (fun (_, v) -> v = 0) (Obs.counters ()));
  Alcotest.(check bool) "histograms empty" true
    (List.for_all (fun (_, h) -> Obs.Histogram.count h = 0) (Obs.histograms ()));
  Alcotest.(check int) "spans gone" 0 (List.length (Obs.spans ()));
  Alcotest.(check int) "drop count cleared" 0 (Obs.dropped_spans ())

(* ---- hardening: JSON pinning for degenerate histograms ---- *)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* An empty histogram (registered but never observed) must export
   clean zeros: valid JSON, no null/NaN/inf tokens anywhere in the
   registry dump. *)
let test_empty_histogram_json () =
  Obs.reset ();
  let h = Obs.Histogram.get "hard.empty" in
  Alcotest.(check int) "count" 0 (Obs.Histogram.count h);
  Alcotest.(check (float 0.0)) "mean" 0.0 (Obs.Histogram.mean h);
  Alcotest.(check (float 0.0)) "min" 0.0 (Obs.Histogram.min h);
  Alcotest.(check (float 0.0)) "max" 0.0 (Obs.Histogram.max h);
  Alcotest.(check (float 0.0)) "p50" 0.0 (Obs.Histogram.percentile h 50.0);
  Alcotest.(check (float 0.0)) "p99" 0.0 (Obs.Histogram.percentile h 99.0);
  let s = Obs.json_string () in
  Alcotest.(check bool) "parses back" true (Json.parse s <> None);
  List.iter
    (fun tok ->
      Alcotest.(check bool) ("no " ^ tok) false (contains s tok))
    [ "null"; "nan"; "NaN"; "inf" ]

let test_single_sample_histogram_json () =
  Obs.reset ();
  let h = Obs.Histogram.get "hard.one" in
  Obs.Histogram.observe h 42.0;
  Alcotest.(check int) "count" 1 (Obs.Histogram.count h);
  Alcotest.(check (float 0.0)) "mean exact" 42.0 (Obs.Histogram.mean h);
  Alcotest.(check (float 0.0)) "min" 42.0 (Obs.Histogram.min h);
  Alcotest.(check (float 0.0)) "max" 42.0 (Obs.Histogram.max h);
  (* log-bucketed: percentiles are only exact to bucket resolution *)
  let p50 = Obs.Histogram.percentile h 50.0 in
  Alcotest.(check bool) "p50 within bucket resolution" true
    (Float.abs (p50 -. 42.0) /. 42.0 < 0.15);
  let s = Obs.json_string () in
  Alcotest.(check bool) "parses back" true (Json.parse s <> None);
  Alcotest.(check bool) "no null" false (contains s "null")

let test_percentile_rejects_bad_p () =
  Obs.reset ();
  let h = Obs.Histogram.get "hard.p" in
  Obs.Histogram.observe h 1.0;
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "p=%f rejected" p)
        true
        (try
           ignore (Obs.Histogram.percentile h p);
           false
         with Invalid_argument _ -> true))
    [ Float.nan; -1.0; 100.5; Float.infinity ]

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "render" `Quick test_json_render;
          Alcotest.test_case "non-finite" `Quick test_json_non_finite;
          Alcotest.test_case "validator" `Quick test_json_validator;
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "control chars" `Quick test_json_control_chars;
          Alcotest.test_case "non-finite nested" `Quick test_json_non_finite_nested;
        ] );
      ( "labels",
        [
          Alcotest.test_case "canonical" `Quick test_labels_canonical;
          Alcotest.test_case "rejected" `Quick test_labels_rejected;
        ] );
      ( "counter",
        [
          Alcotest.test_case "basic" `Quick test_counter_basic;
          Alcotest.test_case "reset keeps handle" `Quick test_counter_reset_keeps_handle;
          Alcotest.test_case "labeled identity" `Quick test_labeled_counter_identity;
          Alcotest.test_case "labeled export deterministic" `Quick
            test_labeled_export_deterministic;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "stats" `Quick test_histogram_stats;
          Alcotest.test_case "percentiles" `Quick test_histogram_percentiles;
          Alcotest.test_case "rejects bad samples" `Quick
            test_histogram_rejects_bad_samples;
          Alcotest.test_case "zero samples" `Quick test_histogram_zero_and_negative;
          Alcotest.test_case "labeled" `Quick test_labeled_histogram;
          Alcotest.test_case "empty json pins" `Quick test_empty_histogram_json;
          Alcotest.test_case "single sample json" `Quick
            test_single_sample_histogram_json;
          Alcotest.test_case "percentile rejects bad p" `Quick
            test_percentile_rejects_bad_p;
        ] );
      ( "span",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "exit idempotent" `Quick test_span_exit_idempotent;
          Alcotest.test_case "exception safety" `Quick test_span_records_on_exception;
          Alcotest.test_case "feeds histogram" `Quick test_span_feeds_histogram;
          Alcotest.test_case "sim clock" `Quick test_span_sim_clock;
          Alcotest.test_case "substring match" `Quick test_spans_matching_substring;
          Alcotest.test_case "substring scan edges" `Quick test_spans_matching_edges;
          Alcotest.test_case "reset restarts span ids" `Quick
            test_reset_restarts_span_ids;
          Alcotest.test_case "args" `Quick test_span_args;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled no-op" `Quick test_trace_disabled_noop;
          Alcotest.test_case "lifecycle" `Quick test_trace_lifecycle;
          Alcotest.test_case "ring overflow" `Quick test_trace_ring_overflow;
          Alcotest.test_case "chrome export" `Quick test_trace_chrome_export;
          Alcotest.test_case "chrome export reports drops" `Quick
            test_trace_chrome_export_reports_drops;
        ] );
      ( "export",
        [
          Alcotest.test_case "json valid" `Quick test_export_json_valid;
          Alcotest.test_case "write file" `Quick test_write_json_file;
          Alcotest.test_case "render" `Quick test_render_mentions_everything;
          Alcotest.test_case "reset" `Quick test_reset_clears_everything;
        ] );
    ]
