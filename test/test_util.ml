(* Tests for the utility substrate: PRNG, statistics, priority queue,
   union-find and table rendering. *)

module Rng = Mlv_util.Rng
module Stats = Mlv_util.Stats
module Pqueue = Mlv_util.Pqueue
module Wheel = Mlv_util.Timing_wheel
module Union_find = Mlv_util.Union_find
module Table = Mlv_util.Table

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Rng.bits64 a) (Rng.bits64 b) then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_split_independent () =
  let parent = Rng.create 7 in
  let child = Rng.split parent in
  let xs = List.init 32 (fun _ -> Rng.bits64 parent) in
  let ys = List.init 32 (fun _ -> Rng.bits64 child) in
  Alcotest.(check bool) "different streams" true (xs <> ys)

let test_rng_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in [0,17)" true (v >= 0 && v < 17)
  done

let test_rng_int_invalid () =
  let rng = Rng.create 3 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_float_bounds () =
  let rng = Rng.create 9 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_rng_exponential_mean () =
  let rng = Rng.create 11 in
  let n = 20000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng ~mean:4.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean ~ 4" true (Float.abs (mean -. 4.0) < 0.2)

let test_rng_gaussian_moments () =
  let rng = Rng.create 13 in
  let n = 20000 in
  let xs = List.init n (fun _ -> Rng.gaussian rng ~mu:2.0 ~sigma:3.0) in
  let mean = Stats.mean xs in
  let sd = Stats.stddev xs in
  Alcotest.(check bool) "mu ~ 2" true (Float.abs (mean -. 2.0) < 0.1);
  Alcotest.(check bool) "sigma ~ 3" true (Float.abs (sd -. 3.0) < 0.1)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 17 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is permutation" (Array.init 50 Fun.id) sorted

let test_rng_choose () =
  let rng = Rng.create 19 in
  for _ = 1 to 100 do
    let v = Rng.choose rng [ 1; 2; 3 ] in
    Alcotest.(check bool) "member" true (List.mem v [ 1; 2; 3 ])
  done

let test_stats_mean () =
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean [ 1.0; 2.0; 3.0; 4.0 ]);
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Stats.mean [])

let test_stats_stddev () =
  Alcotest.(check (float 1e-9)) "constant" 0.0 (Stats.stddev [ 5.0; 5.0; 5.0 ]);
  (* population stddev: variance = (4 + 0 + 4) / 3 *)
  Alcotest.(check (float 1e-6)) "known" (sqrt (8.0 /. 3.0)) (Stats.stddev [ 1.0; 3.0; 5.0 ])

(* Regression for the single-pass rewrites: [mean] must stay
   bit-identical to the old sum-then-length fold (it feeds the system
   simulation's deterministic digests), and Welford's [stddev] must
   match a two-pass reference within rounding on an order-sensitive
   sample mixing magnitudes. *)
let test_stats_single_pass_exact () =
  let xs = [ 1e12; 3.25; -7.5; 1e-3; 42.0; -1e12; 0.125; 9.75 ] in
  let two_pass_mean l =
    List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
  in
  (* exact equality, not a tolerance: same adds in the same order *)
  Alcotest.(check bool) "mean bit-identical to fold" true
    (Stats.mean xs = two_pass_mean xs);
  let two_pass_stddev l =
    let m = two_pass_mean l in
    let ss = List.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 l in
    sqrt (ss /. float_of_int (List.length l))
  in
  let ys = [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  Alcotest.(check (float 1e-9)) "welford known case" 2.0 (Stats.stddev ys);
  Alcotest.(check (float 1e-6)) "welford matches two-pass"
    (two_pass_stddev ys) (Stats.stddev ys)

let test_stats_percentile () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats.percentile 0.0 xs);
  Alcotest.(check (float 1e-9)) "p50" 3.0 (Stats.percentile 50.0 xs);
  Alcotest.(check (float 1e-9)) "p100" 5.0 (Stats.percentile 100.0 xs);
  Alcotest.(check (float 1e-9)) "p25" 2.0 (Stats.percentile 25.0 xs)

let test_stats_percentile_nan () =
  Alcotest.check_raises "NaN sample" (Invalid_argument "Stats.percentile: NaN sample")
    (fun () -> ignore (Stats.percentile 50.0 [ 1.0; Float.nan; 3.0 ]))

let test_stats_median_interpolates () =
  Alcotest.(check (float 1e-9)) "even count" 2.5 (Stats.median [ 1.0; 2.0; 3.0; 4.0 ])

let test_stats_geomean () =
  Alcotest.(check (float 1e-9)) "geomean" 4.0 (Stats.geomean [ 2.0; 8.0 ]);
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Stats.geomean: non-positive sample") (fun () ->
      ignore (Stats.geomean [ 1.0; 0.0 ]))

let test_stats_acc () =
  let acc = Stats.Acc.create () in
  List.iter (Stats.Acc.add acc) [ 3.0; 1.0; 2.0 ];
  Alcotest.(check int) "count" 3 (Stats.Acc.count acc);
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.Acc.mean acc);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.Acc.min acc);
  Alcotest.(check (float 1e-9)) "max" 3.0 (Stats.Acc.max acc);
  Alcotest.(check (float 1e-9)) "sum" 6.0 (Stats.Acc.sum acc)

let test_stats_p2_small_exact () =
  let q = Stats.P2.create 0.5 in
  Alcotest.(check (float 1e-9)) "no samples" 0.0 (Stats.P2.quantile q);
  List.iter (Stats.P2.add q) [ 9.0; 1.0; 5.0 ];
  Alcotest.(check int) "count" 3 (Stats.P2.count q);
  (* Exact while fewer than five markers are filled. *)
  Alcotest.(check (float 1e-9)) "exact small-sample median" 5.0 (Stats.P2.quantile q)

let test_stats_p2_converges () =
  let rng = Rng.create 29 in
  let p50 = Stats.P2.create 0.5 and p99 = Stats.P2.create 0.99 in
  let xs = List.init 50_000 (fun _ -> Rng.float rng 1.0) in
  List.iter
    (fun x ->
      Stats.P2.add p50 x;
      Stats.P2.add p99 x)
    xs;
  let exact_p50 = Stats.percentile 50.0 xs in
  let exact_p99 = Stats.percentile 99.0 xs in
  Alcotest.(check int) "count" 50_000 (Stats.P2.count p50);
  Alcotest.(check bool) "p50 within 0.01 of exact" true
    (Float.abs (Stats.P2.quantile p50 -. exact_p50) < 0.01);
  Alcotest.(check bool) "p99 within 0.01 of exact" true
    (Float.abs (Stats.P2.quantile p99 -. exact_p99) < 0.01)

let test_stats_p2_invalid () =
  Alcotest.check_raises "p = 0" (Invalid_argument "Stats.P2.create: p outside (0,1)")
    (fun () -> ignore (Stats.P2.create 0.0));
  Alcotest.check_raises "p = 1" (Invalid_argument "Stats.P2.create: p outside (0,1)")
    (fun () -> ignore (Stats.P2.create 1.0))

let test_pqueue_order () =
  let q = Pqueue.create () in
  Pqueue.push q 3.0 "c";
  Pqueue.push q 1.0 "a";
  Pqueue.push q 2.0 "b";
  let pops = List.init 3 (fun _ -> Pqueue.pop q) in
  let values = List.map (function Some (_, v) -> v | None -> "?") pops in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] values;
  Alcotest.(check bool) "empty after" true (Pqueue.is_empty q)

let test_pqueue_fifo_ties () =
  let q = Pqueue.create () in
  List.iter (fun v -> Pqueue.push q 1.0 v) [ "first"; "second"; "third" ];
  let values =
    List.init 3 (fun _ -> match Pqueue.pop q with Some (_, v) -> v | None -> "?")
  in
  Alcotest.(check (list string)) "insertion order" [ "first"; "second"; "third" ] values

let test_pqueue_interleaved () =
  let q = Pqueue.create () in
  Pqueue.push q 5.0 5;
  Pqueue.push q 1.0 1;
  (match Pqueue.pop q with
  | Some (p, v) ->
    Alcotest.(check (float 0.0)) "priority" 1.0 p;
    Alcotest.(check int) "value" 1 v
  | None -> Alcotest.fail "unexpected empty");
  Pqueue.push q 0.5 0;
  (match Pqueue.peek q with
  | Some (_, v) -> Alcotest.(check int) "peek" 0 v
  | None -> Alcotest.fail "unexpected empty");
  Alcotest.(check int) "length" 2 (Pqueue.length q)

let test_pqueue_stress_sorted () =
  let rng = Rng.create 23 in
  let q = Pqueue.create () in
  for _ = 1 to 2000 do
    Pqueue.push q (Rng.float rng 100.0) ()
  done;
  let prev = ref neg_infinity in
  let ok = ref true in
  let rec drain () =
    match Pqueue.pop q with
    | None -> ()
    | Some (p, ()) ->
      if p < !prev then ok := false;
      prev := p;
      drain ()
  in
  drain ();
  Alcotest.(check bool) "monotone" true !ok

(* Regression: [pop] used to leave the popped entry reachable in the
   backing array, pinning arbitrarily large closures until the slot was
   overwritten by a later push. *)
let test_pqueue_pop_releases () =
  let q = Pqueue.create () in
  let w = Weak.create 1 in
  let payload = ref (Array.make 1024 0) in
  Weak.set w 0 (Some !payload);
  Pqueue.push q 2.0 !payload;
  Pqueue.push q 1.0 (Array.make 1 0);
  payload := [||];
  ignore (Pqueue.pop q);
  (* lower-priority element pops second, so its slot is the vacated one *)
  ignore (Pqueue.pop q);
  Gc.full_major ();
  Alcotest.(check bool) "popped payload collected" true (Weak.get w 0 = None);
  Alcotest.(check bool) "empty" true (Pqueue.is_empty q)

let test_pqueue_peek_prio () =
  let q = Pqueue.create () in
  Alcotest.(check bool) "empty is infinity" true (Pqueue.peek_prio q = infinity);
  Pqueue.push q 2.0 "b";
  Pqueue.push q 1.0 "a";
  Alcotest.(check (float 0.0)) "min priority" 1.0 (Pqueue.peek_prio q);
  Alcotest.(check int) "does not remove" 2 (Pqueue.length q)

(* Regression: the queue must neither drop its backing array on drain
   (forcing every refill to reallocate from scratch) nor pin the
   peak-sized array forever.  The bounded shrink policy halves the
   array when occupancy falls to a quarter and keeps a 16-slot floor. *)
let test_pqueue_shrink_policy () =
  let q = Pqueue.create () in
  for i = 1 to 1024 do
    Pqueue.push q (float_of_int i) ()
  done;
  Alcotest.(check int) "peak capacity" 1024 (Pqueue.capacity q);
  let ok = ref true in
  while not (Pqueue.is_empty q) do
    ignore (Pqueue.pop q);
    (* Post-condition of the shrink policy after every pop: either at
       the floor, or occupancy is above a quarter of capacity. *)
    let cap = Pqueue.capacity q in
    if not (cap = 16 || Pqueue.length q * 4 > cap) then ok := false
  done;
  Alcotest.(check bool) "shrink tracks occupancy" true !ok;
  Alcotest.(check int) "drained queue keeps 16-slot floor" 16 (Pqueue.capacity q);
  (* [clear] follows the same policy. *)
  for i = 1 to 1024 do
    Pqueue.push q (float_of_int i) ()
  done;
  Pqueue.clear q;
  Alcotest.(check bool) "clear is empty" true (Pqueue.is_empty q);
  Alcotest.(check bool) "clear shrinks" true (Pqueue.capacity q < 1024);
  Pqueue.push q 1.0 ();
  Alcotest.(check bool) "usable after clear" true (Pqueue.pop q <> None)

(* Steady-state push/pop cycles must not churn the backing array: once
   warmed, capacity stays fixed and per-cycle allocation is just the
   entry records plus [pop]'s option/tuple — an array dropped on drain
   or reallocated per operation would show up as both a capacity change
   and a much larger allocation rate. *)
let test_pqueue_cycle_allocation () =
  let q = Pqueue.create () in
  let cycle () =
    for i = 1 to 64 do
      Pqueue.push q (float_of_int (i land 7)) 0
    done;
    for _ = 1 to 64 do
      ignore (Pqueue.pop q)
    done
  in
  cycle ();
  let cap = Pqueue.capacity q in
  let word_bytes = float_of_int (Sys.word_size / 8) in
  let w0 = Gc.allocated_bytes () /. word_bytes in
  for _ = 1 to 100 do
    cycle ()
  done;
  let w1 = Gc.allocated_bytes () /. word_bytes in
  let words_per_cycle = (w1 -. w0) /. 100.0 in
  Alcotest.(check int) "capacity steady across cycles" cap (Pqueue.capacity q);
  (* 64 ops/cycle at ~11 words each (entry + boxed priority + pop's
     Some tuple) is ~700 words; array churn would add hundreds more. *)
  Alcotest.(check bool) "no per-cycle array churn" true (words_per_cycle < 1500.0)

let test_union_find_basic () =
  let uf = Union_find.create 6 in
  ignore (Union_find.union uf 0 1);
  ignore (Union_find.union uf 2 3);
  Alcotest.(check bool) "same 0 1" true (Union_find.same uf 0 1);
  Alcotest.(check bool) "not same 0 2" false (Union_find.same uf 0 2);
  ignore (Union_find.union uf 1 2);
  Alcotest.(check bool) "same 0 3" true (Union_find.same uf 0 3)

let test_union_find_groups () =
  let uf = Union_find.create 5 in
  ignore (Union_find.union uf 0 4);
  ignore (Union_find.union uf 1 2);
  let groups = Union_find.groups uf |> List.map snd in
  Alcotest.(check (list (list int))) "groups" [ [ 0; 4 ]; [ 1; 2 ]; [ 3 ] ] groups

(* ---------------- timing wheel ---------------- *)

(* Randomized differential against the binary heap over a mix of exact
   ties, in-wheel times and far-future (level-2 / overflow) jumps, with
   an interleaved push phase after the clock has advanced. *)
let test_wheel_differential () =
  let rng = Rng.create 31 in
  let w = Wheel.create () and q = Pqueue.create () in
  let wlog = ref [] and qlog = ref [] in
  let draw () =
    let r = Rng.float rng 1.0 in
    if r < 0.4 then Float.of_int (Rng.int rng 50) (* exact ties *)
    else if r < 0.8 then Rng.float rng 10_000.0 (* levels 0-1 *)
    else Rng.float rng 1e10 (* level 2 and overflow *)
  in
  let push_both at tag =
    Wheel.push w ~at (fun () -> wlog := (at, tag) :: !wlog);
    Pqueue.push q at (fun () -> qlog := (at, tag) :: !qlog)
  in
  for i = 0 to 2999 do
    push_both (draw ()) i
  done;
  let now = ref 0.0 in
  let pop_both () =
    (match Wheel.pop w with
    | Some (t, f) ->
      now := t;
      f ()
    | None -> Alcotest.fail "wheel empty early");
    match Pqueue.pop q with
    | Some (_, f) -> f ()
    | None -> Alcotest.fail "heap empty early"
  in
  for _ = 1 to 1500 do
    pop_both ()
  done;
  for i = 3000 to 4999 do
    push_both (!now +. draw ()) i
  done;
  while not (Wheel.is_empty w) do
    pop_both ()
  done;
  Alcotest.(check bool) "heap drained too" true (Pqueue.is_empty q);
  Alcotest.(check (list (pair (float 0.0) int)))
    "identical pop order" (List.rev !qlog) (List.rev !wlog)

let test_wheel_far_future_rebase () =
  let w = Wheel.create () in
  let log = ref [] in
  let push at tag = Wheel.push w ~at (fun () -> log := tag :: !log) in
  (* Everything lands beyond the wheel horizon on the overflow list;
     the first pop must rebase onto the overflow minimum and ordering
     (including FIFO on the tie) must survive the refill. *)
  push 1e12 0;
  push 9.0e11 1;
  push 1e12 2;
  Alcotest.(check bool) "next_time sees overflow min" true
    (Wheel.next_time w = 9.0e11);
  let order =
    List.init 3 (fun _ ->
        match Wheel.pop w with
        | Some (_, f) ->
          f ();
          List.hd !log
        | None -> Alcotest.fail "empty")
  in
  Alcotest.(check (list int)) "overflow pops in order" [ 1; 0; 2 ] order;
  (* A second far-future round after the clock advanced: rebase again. *)
  push 2.0e12 3;
  push 1.5e12 4;
  (match Wheel.pop w with
  | Some (t, _) -> Alcotest.(check bool) "second rebase min" true (t = 1.5e12)
  | None -> Alcotest.fail "empty");
  Alcotest.(check int) "one left" 1 (Wheel.length w)

let test_wheel_clear_reuse () =
  let w = Wheel.create () in
  for i = 1 to 500 do
    Wheel.push w ~at:(float_of_int (i * 7)) (fun () -> ())
  done;
  Alcotest.(check int) "length" 500 (Wheel.length w);
  Wheel.clear w;
  Alcotest.(check bool) "empty after clear" true (Wheel.is_empty w);
  Alcotest.(check bool) "next_time infinity" true (Wheel.next_time w = infinity);
  Alcotest.(check bool) "pop None" true (Wheel.pop w = None);
  (* Reuse after clear; all four times share bucket arithmetic but pop
     in exact time order — granularity never affects ordering. *)
  let log = ref [] in
  List.iter
    (fun (at, tag) -> Wheel.push w ~at (fun () -> log := tag :: !log))
    [ (5.25, 0); (5.5, 1); (5.125, 2); (0.0, 3) ];
  while not (Wheel.is_empty w) do
    match Wheel.pop w with Some (_, f) -> f () | None -> ()
  done;
  Alcotest.(check (list int)) "exact sub-bucket order" [ 3; 2; 0; 1 ] (List.rev !log)

let test_wheel_granularity_only_perf () =
  (* Coarse and fine bucket widths must produce the identical pop
     sequence: the granularity is a performance knob only. *)
  let run gran =
    let w = Wheel.create ~granularity_us:gran () in
    let rng = Rng.create 37 in
    let log = ref [] in
    for i = 0 to 999 do
      let at = Rng.float rng 5_000.0 in
      Wheel.push w ~at (fun () -> log := (at, i) :: !log)
    done;
    let rec drain () =
      match Wheel.pop w with
      | Some (_, f) ->
        f ();
        drain ()
      | None -> ()
    in
    drain ();
    List.rev !log
  in
  let fine = run 0.25 and coarse = run 512.0 in
  Alcotest.(check (list (pair (float 0.0) int))) "granularity never reorders" fine
    coarse

let test_wheel_pop_fire () =
  let w = Wheel.create () in
  let hit = ref 0 in
  Wheel.push w ~at:3.5 (fun () -> hit := 1);
  let into = ref 0.0 in
  let f = Wheel.pop_fire w ~into in
  Alcotest.(check (float 0.0)) "timestamp stored" 3.5 !into;
  f ();
  Alcotest.(check int) "thunk fired" 1 !hit;
  Alcotest.(check bool) "empty" true (Wheel.is_empty w)

let test_wheel_validation () =
  let w = Wheel.create () in
  Alcotest.check_raises "negative time"
    (Invalid_argument "Timing_wheel.push: time must be non-negative (not NaN)")
    (fun () -> Wheel.push w ~at:(-1.0) (fun () -> ()));
  Alcotest.check_raises "NaN time"
    (Invalid_argument "Timing_wheel.push: time must be non-negative (not NaN)")
    (fun () -> Wheel.push w ~at:Float.nan (fun () -> ()));
  Alcotest.check_raises "pop_fire on empty"
    (Invalid_argument "Timing_wheel.pop_fire: empty wheel") (fun () ->
      let _f : unit -> unit = Wheel.pop_fire w ~into:(ref 0.0) in
      ());
  Alcotest.check_raises "non-positive granularity"
    (Invalid_argument "Timing_wheel.create: granularity must be positive")
    (fun () -> ignore (Wheel.create ~granularity_us:0.0 ()))

let test_table_render () =
  let t = Table.create ~title:"T" [ "name"; "value" ] in
  Table.add_row t [ "a"; "1" ];
  Table.add_row t [ "bb"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0 && s.[0] = 'T');
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "contains row" true (contains s "bb")

let test_table_arity () =
  let t = Table.create [ "a"; "b" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Table.add_row t [ "only-one" ])

let test_table_fmt () =
  Alcotest.(check string) "pct" "7.8%" (Table.fmt_pct 0.078);
  Alcotest.(check string) "float trim" "1.5" (Table.fmt_float ~digits:4 1.5)

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int invalid" `Quick test_rng_int_invalid;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "choose membership" `Quick test_rng_choose;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "single-pass exactness" `Quick
            test_stats_single_pass_exact;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "percentile rejects NaN" `Quick test_stats_percentile_nan;
          Alcotest.test_case "median interpolation" `Quick test_stats_median_interpolates;
          Alcotest.test_case "geomean" `Quick test_stats_geomean;
          Alcotest.test_case "streaming accumulator" `Quick test_stats_acc;
          Alcotest.test_case "P2 small-sample exact" `Quick test_stats_p2_small_exact;
          Alcotest.test_case "P2 converges" `Quick test_stats_p2_converges;
          Alcotest.test_case "P2 rejects bad p" `Quick test_stats_p2_invalid;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "pop order" `Quick test_pqueue_order;
          Alcotest.test_case "FIFO on ties" `Quick test_pqueue_fifo_ties;
          Alcotest.test_case "interleaved ops" `Quick test_pqueue_interleaved;
          Alcotest.test_case "stress sorted" `Quick test_pqueue_stress_sorted;
          Alcotest.test_case "pop releases payload" `Quick test_pqueue_pop_releases;
          Alcotest.test_case "peek_prio" `Quick test_pqueue_peek_prio;
          Alcotest.test_case "bounded shrink policy" `Quick test_pqueue_shrink_policy;
          Alcotest.test_case "steady-state cycles" `Quick test_pqueue_cycle_allocation;
        ] );
      ( "timing_wheel",
        [
          Alcotest.test_case "differential vs heap" `Quick test_wheel_differential;
          Alcotest.test_case "far-future rebase" `Quick test_wheel_far_future_rebase;
          Alcotest.test_case "clear and reuse" `Quick test_wheel_clear_reuse;
          Alcotest.test_case "granularity is perf-only" `Quick
            test_wheel_granularity_only_perf;
          Alcotest.test_case "pop_fire" `Quick test_wheel_pop_fire;
          Alcotest.test_case "validation" `Quick test_wheel_validation;
        ] );
      ( "union_find",
        [
          Alcotest.test_case "basic union/same" `Quick test_union_find_basic;
          Alcotest.test_case "groups" `Quick test_union_find_groups;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "arity check" `Quick test_table_arity;
          Alcotest.test_case "formatters" `Quick test_table_fmt;
        ] );
    ]
