(* Tests for the cluster substrate: discrete-event engine, ring
   network and the heterogeneous cluster. *)

module Sim = Mlv_cluster.Sim
module Network = Mlv_cluster.Network
module Node = Mlv_cluster.Node
module Cluster = Mlv_cluster.Cluster
module Trace = Mlv_cluster.Trace
module Device = Mlv_fpga.Device
module Board = Mlv_fpga.Board
module Obs = Mlv_obs.Obs

(* ---------------- Sim ---------------- *)

let test_sim_ordering () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule sim ~delay:5.0 (fun () -> log := "b" :: !log);
  Sim.schedule sim ~delay:1.0 (fun () -> log := "a" :: !log);
  Sim.schedule sim ~delay:9.0 (fun () -> log := "c" :: !log);
  Sim.run sim;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock at last" 9.0 (Sim.now sim)

let test_sim_fifo_ties () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule sim ~delay:1.0 (fun () -> log := 1 :: !log);
  Sim.schedule sim ~delay:1.0 (fun () -> log := 2 :: !log);
  Sim.schedule sim ~delay:1.0 (fun () -> log := 3 :: !log);
  Sim.run sim;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] (List.rev !log)

let test_sim_nested_schedule () =
  let sim = Sim.create () in
  let fired = ref 0.0 in
  Sim.schedule sim ~delay:2.0 (fun () ->
      Sim.schedule sim ~delay:3.0 (fun () -> fired := Sim.now sim));
  Sim.run sim;
  Alcotest.(check (float 1e-9)) "nested at 5" 5.0 !fired

let test_sim_until () =
  let sim = Sim.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    Sim.schedule sim ~delay:(float_of_int i) (fun () -> incr count)
  done;
  Sim.run ~until:5.5 sim;
  Alcotest.(check int) "five fired" 5 !count;
  Alcotest.(check int) "five pending" 5 (Sim.pending sim);
  Sim.run sim;
  Alcotest.(check int) "all fired" 10 !count

(* Regression: with pending events strictly beyond the limit, [run
   ~until] used to stop the clock at the last processed event instead
   of advancing it to the limit, so back-to-back bounded runs drifted. *)
let test_sim_until_advances_clock () =
  let sim = Sim.create () in
  let fired = ref 0 in
  Sim.schedule sim ~delay:1.0 (fun () -> incr fired);
  Sim.schedule sim ~delay:10.0 (fun () -> incr fired);
  Sim.run ~until:5.0 sim;
  Alcotest.(check int) "one fired" 1 !fired;
  Alcotest.(check int) "one pending" 1 (Sim.pending sim);
  Alcotest.(check (float 1e-9)) "clock at limit" 5.0 (Sim.now sim);
  (* also with an empty queue *)
  let sim2 = Sim.create () in
  Sim.run ~until:3.0 sim2;
  Alcotest.(check (float 1e-9)) "empty queue clock" 3.0 (Sim.now sim2)

(* Sim.create registers the simulator's clock as the span sim-time
   source but nothing cleared it: a finished run kept stamping stale
   times onto later, unrelated spans (and kept the sim state live).
   Sim.release clears the registration — but only its own, so a
   superseded simulator cannot clobber a newer one's clock. *)
let test_sim_release_clears_clock () =
  Obs.reset ();
  let sim_now name =
    Obs.Span.with_ name (fun () -> ());
    (List.hd (Obs.spans_matching name)).Obs.start_sim_us
  in
  let sim = Sim.create () in
  Sim.schedule sim ~delay:5.0 (fun () -> ());
  Sim.run sim;
  Alcotest.(check (float 1e-9)) "clock registered by create" 5.0
    (sim_now "rel.before");
  Sim.release sim;
  Alcotest.(check (float 1e-9)) "released" 0.0 (sim_now "rel.after");
  let a = Sim.create () in
  let b = Sim.create () in
  Sim.schedule b ~delay:3.0 (fun () -> ());
  Sim.run b;
  Sim.release a;
  Alcotest.(check (float 1e-9)) "superseded release is a no-op" 3.0
    (sim_now "rel.super");
  Sim.release b;
  Alcotest.(check (float 1e-9)) "owner release clears" 0.0 (sim_now "rel.end")

let test_sim_negative_delay () =
  let sim = Sim.create () in
  Alcotest.(check bool) "rejected" true
    (try
       Sim.schedule sim ~delay:(-1.0) (fun () -> ());
       false
     with Invalid_argument _ -> true)

let test_sim_counts () =
  let sim = Sim.create () in
  Sim.schedule sim ~delay:1.0 (fun () -> ());
  Sim.schedule sim ~delay:2.0 (fun () -> ());
  ignore (Sim.step sim);
  Alcotest.(check int) "one processed" 1 (Sim.events_processed sim);
  Sim.run sim;
  Alcotest.(check int) "two processed" 2 (Sim.events_processed sim);
  Alcotest.(check bool) "empty step" false (Sim.step sim)

(* ---------------- Network ---------------- *)

let test_network_hops () =
  let sim = Sim.create () in
  let net = Network.create sim ~nodes:4 ~board:Board.default in
  Alcotest.(check int) "adjacent" 1 (Network.hops net ~src:0 ~dst:1);
  Alcotest.(check int) "wrap shorter" 1 (Network.hops net ~src:0 ~dst:3);
  Alcotest.(check int) "across" 2 (Network.hops net ~src:0 ~dst:2);
  Alcotest.(check int) "self" 0 (Network.hops net ~src:2 ~dst:2)

let test_network_transfer_timing () =
  let sim = Sim.create () in
  let net = Network.create sim ~nodes:4 ~board:Board.default in
  let arrived = ref (-1.0) in
  Network.transfer net ~src:0 ~dst:1 ~bytes:1024 (fun () -> arrived := Sim.now sim);
  Sim.run sim;
  let expect = Network.transfer_time_us net ~src:0 ~dst:1 ~bytes:1024 in
  Alcotest.(check (float 1e-9)) "arrival matches model" expect !arrived;
  Alcotest.(check int) "stats bytes" 1024 (Network.bytes_sent net);
  Alcotest.(check int) "stats transfers" 1 (Network.transfers net)

let test_network_added_latency () =
  let sim = Sim.create () in
  let net = Network.create sim ~nodes:4 ~board:Board.default in
  let base = Network.transfer_time_us net ~src:0 ~dst:2 ~bytes:64 in
  Network.set_added_latency_us net 0.6;
  let delayed = Network.transfer_time_us net ~src:0 ~dst:2 ~bytes:64 in
  (* two hops: the programmable delay applies per hop *)
  Alcotest.(check (float 1e-9)) "2 x 0.6" 1.2 (delayed -. base)

let test_network_bounds () =
  let sim = Sim.create () in
  let net = Network.create sim ~nodes:4 ~board:Board.default in
  Alcotest.(check bool) "src range" true
    (try
       ignore (Network.hops net ~src:4 ~dst:0);
       false
     with Invalid_argument _ -> true)


let test_network_contention () =
  (* Two transfers over the same directed segment queue; opposite
     directions do not. *)
  let sim = Sim.create () in
  let net = Network.create sim ~nodes:4 ~board:Board.default in
  let t_a = ref 0.0 and t_b = ref 0.0 in
  Network.transfer net ~src:0 ~dst:1 ~bytes:100_000 (fun () -> t_a := Sim.now sim);
  Network.transfer net ~src:0 ~dst:1 ~bytes:100_000 (fun () -> t_b := Sim.now sim);
  Sim.run sim;
  let solo = Network.transfer_time_us net ~src:0 ~dst:1 ~bytes:100_000 in
  Alcotest.(check (float 1e-9)) "first unqueued" solo !t_a;
  Alcotest.(check bool) "second queued" true (!t_b > !t_a +. solo *. 0.9);
  Alcotest.(check bool) "queueing recorded" true (Network.queueing_us net > 0.0);
  (* opposite directions: no contention *)
  let sim2 = Sim.create () in
  let net2 = Network.create sim2 ~nodes:4 ~board:Board.default in
  let u_a = ref 0.0 and u_b = ref 0.0 in
  Network.transfer net2 ~src:0 ~dst:1 ~bytes:100_000 (fun () -> u_a := Sim.now sim2);
  Network.transfer net2 ~src:1 ~dst:0 ~bytes:100_000 (fun () -> u_b := Sim.now sim2);
  Sim.run sim2;
  Alcotest.(check (float 1e-9)) "both unqueued" !u_a !u_b;
  Alcotest.(check (float 1e-9)) "no queueing" 0.0 (Network.queueing_us net2)

let test_network_disjoint_segments () =
  (* 0->1 and 2->3 use different segments: concurrent, no queueing. *)
  let sim = Sim.create () in
  let net = Network.create sim ~nodes:4 ~board:Board.default in
  let done_count = ref 0 in
  Network.transfer net ~src:0 ~dst:1 ~bytes:50_000 (fun () -> incr done_count);
  Network.transfer net ~src:2 ~dst:3 ~bytes:50_000 (fun () -> incr done_count);
  Sim.run sim;
  Alcotest.(check int) "both arrive" 2 !done_count;
  Alcotest.(check (float 1e-9)) "no queueing" 0.0 (Network.queueing_us net)

(* ---------------- Cluster ---------------- *)

let test_cluster_paper_shape () =
  let c = Cluster.create () in
  Alcotest.(check int) "4 nodes" 4 (Cluster.node_count c);
  Alcotest.(check (list int)) "3 VU37P" [ 0; 1; 2 ] (Cluster.nodes_of_kind c Device.XCVU37P);
  Alcotest.(check (list int)) "1 KU115" [ 3 ] (Cluster.nodes_of_kind c Device.XCKU115);
  (* 3 x 15 + 10 virtual blocks total *)
  Alcotest.(check int) "55 blocks free" 55 (Cluster.total_free_vbs c)

let test_cluster_custom () =
  let c = Cluster.create ~kinds:[ Device.XCKU115; Device.XCKU115 ] () in
  Alcotest.(check int) "2 nodes" 2 (Cluster.node_count c);
  Alcotest.(check int) "20 blocks" 20 (Cluster.total_free_vbs c)

let test_cluster_node_access () =
  let c = Cluster.create () in
  let n = Cluster.node c 3 in
  Alcotest.(check bool) "kind" true (Device.equal_kind n.Node.kind Device.XCKU115);
  Alcotest.(check bool) "out of range" true
    (try
       ignore (Cluster.node c 4);
       false
     with Invalid_argument _ -> true)

(* Property: transfer arrival time = model time, for random shapes. *)
let prop_transfer_consistent =
  QCheck.Test.make ~name:"transfer matches model" ~count:50
    QCheck.(triple (int_range 0 3) (int_range 0 3) (int_range 1 100000))
    (fun (src, dst, bytes) ->
      let sim = Sim.create () in
      let net = Network.create sim ~nodes:4 ~board:Board.default in
      let arrived = ref (-1.0) in
      Network.transfer net ~src ~dst ~bytes (fun () -> arrived := Sim.now sim);
      Sim.run sim;
      Float.abs (!arrived -. Network.transfer_time_us net ~src ~dst ~bytes) < 1e-9)


(* ---------------- Trace ---------------- *)

let test_trace_basic () =
  let t = Trace.create () in
  Trace.record t ~at:1.0 "deploy npu-t6";
  Trace.record t ~at:2.0 "undeploy npu-t6";
  Alcotest.(check int) "two events" 2 (Trace.length t);
  Alcotest.(check (list (pair (float 0.0) string))) "events"
    [ (1.0, "deploy npu-t6"); (2.0, "undeploy npu-t6") ]
    (Trace.events t);
  Alcotest.(check int) "matching" 1 (List.length (Trace.matching t "undeploy"));
  Trace.clear t;
  Alcotest.(check int) "cleared" 0 (Trace.length t)

let test_trace_ring_eviction () =
  let t = Trace.create ~capacity:4 () in
  for i = 1 to 10 do
    Trace.record t ~at:(float_of_int i) (Printf.sprintf "e%d" i)
  done;
  Alcotest.(check int) "capped" 4 (Trace.length t);
  Alcotest.(check int) "dropped" 6 (Trace.dropped t);
  Alcotest.(check (list string)) "keeps newest" [ "e7"; "e8"; "e9"; "e10" ]
    (List.map snd (Trace.events t))

let test_trace_capacity_validation () =
  Alcotest.(check bool) "zero rejected" true
    (try
       ignore (Trace.create ~capacity:0 ());
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "cluster"
    [
      ( "sim",
        [
          Alcotest.test_case "ordering" `Quick test_sim_ordering;
          Alcotest.test_case "fifo ties" `Quick test_sim_fifo_ties;
          Alcotest.test_case "nested schedule" `Quick test_sim_nested_schedule;
          Alcotest.test_case "run until" `Quick test_sim_until;
          Alcotest.test_case "run until advances clock" `Quick
            test_sim_until_advances_clock;
          Alcotest.test_case "release clears sim clock" `Quick
            test_sim_release_clears_clock;
          Alcotest.test_case "negative delay" `Quick test_sim_negative_delay;
          Alcotest.test_case "counts" `Quick test_sim_counts;
        ] );
      ( "network",
        [
          Alcotest.test_case "hops" `Quick test_network_hops;
          Alcotest.test_case "transfer timing" `Quick test_network_transfer_timing;
          Alcotest.test_case "added latency" `Quick test_network_added_latency;
          Alcotest.test_case "bounds" `Quick test_network_bounds;
          Alcotest.test_case "segment contention" `Quick test_network_contention;
          Alcotest.test_case "disjoint segments" `Quick test_network_disjoint_segments;
          QCheck_alcotest.to_alcotest prop_transfer_consistent;
        ] );
      ( "trace",
        [
          Alcotest.test_case "basic" `Quick test_trace_basic;
          Alcotest.test_case "ring eviction" `Quick test_trace_ring_eviction;
          Alcotest.test_case "capacity validation" `Quick test_trace_capacity_validation;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "paper shape" `Quick test_cluster_paper_shape;
          Alcotest.test_case "custom" `Quick test_cluster_custom;
          Alcotest.test_case "node access" `Quick test_cluster_node_access;
        ] );
    ]
