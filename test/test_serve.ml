(* Tests for the serving front door (lib/serve): client sessions with
   sticky affinity and in-order delivery, the compiled-mapping LRU,
   the textual trace format, the diurnal arrival model, and the
   sysim integration invariants — a disabled front door must be
   bit-invisible, and the shape-signature key space must separate
   every distinct compiled shape in the benchmark registry. *)

module Session = Mlv_serve.Session
module Mapcache = Mlv_serve.Mapcache
module Trace_file = Mlv_serve.Trace_file
module Genset = Mlv_workload.Genset
module Mapdb = Mlv_core.Mapdb
module Registry = Mlv_core.Registry
module Runtime = Mlv_core.Runtime
module Sysim = Mlv_sysim.Sysim
module Autoscaler = Mlv_sched.Autoscaler
module Rng = Mlv_util.Rng

let raises_invalid f =
  match f () with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* ---------------- sessions ---------------- *)

let test_session_touch_and_expiry () =
  let t = Session.create (Session.config ~idle_timeout_us:1_000.0 ()) in
  let a = Session.touch t ~now_us:0.0 "alice" in
  let a' = Session.touch t ~now_us:400.0 "alice" in
  Alcotest.(check bool) "same session on repeat touch" true (a == a');
  let _b = Session.touch t ~now_us:500.0 "bob" in
  Alcotest.(check int) "two live sessions" 2 (Session.active t);
  Alcotest.(check int) "two opened" 2 (Session.opened t);
  (* alice last touched at 400, bob at 500: at 1450 only alice idles out *)
  Alcotest.(check (list string)) "alice expires first" [ "alice" ]
    (Session.expire t ~now_us:1_450.0);
  Alcotest.(check int) "one survivor" 1 (Session.active t);
  Alcotest.(check (list string)) "bob expires later" [ "bob" ]
    (Session.expire t ~now_us:2_000.0);
  Alcotest.(check int) "expired counter" 2 (Session.expired t);
  (* touching an expired key reopens *)
  let a2 = Session.touch t ~now_us:3_000.0 "alice" in
  Alcotest.(check bool) "reopened, not resurrected" true (not (a == a2));
  Alcotest.(check int) "reopen counts" 3 (Session.opened t)

let test_session_outstanding_blocks_expiry () =
  let t = Session.create (Session.config ~idle_timeout_us:1_000.0 ()) in
  let s = Session.touch t ~now_us:0.0 "k" in
  let seq = Session.submit s in
  Alcotest.(check int) "one outstanding" 1 (Session.outstanding s);
  Alcotest.(check (list string)) "outstanding request pins the session" []
    (Session.expire t ~now_us:10_000.0);
  Session.skip t s ~seq ~now_us:10_500.0;
  Alcotest.(check int) "skip resolves it" 0 (Session.outstanding s);
  Alcotest.(check (list string)) "now reapable" [ "k" ]
    (Session.expire t ~now_us:12_000.0)

let test_session_in_order_delivery () =
  let t = Session.create (Session.config ()) in
  let s = Session.touch t ~now_us:0.0 "k" in
  let s0 = Session.submit s
  and s1 = Session.submit s
  and s2 = Session.submit s in
  let log = ref [] in
  let deliver tag ~now_us = log := (tag, now_us) :: !log in
  (* seq 2 finishes first: held, nothing delivered *)
  Session.complete t s ~seq:s2 ~now_us:30.0 (deliver 2);
  Alcotest.(check (list (pair int (float 1e-9)))) "overtaker held" [] (List.rev !log);
  Alcotest.(check int) "one held" 1 (Session.held t);
  (* seq 0 releases itself only *)
  Session.complete t s ~seq:s0 ~now_us:40.0 (deliver 0);
  Alcotest.(check (list (pair int (float 1e-9)))) "head released" [ (0, 40.0) ]
    (List.rev !log);
  (* seq 1 releases itself and the held seq 2, both stamped with the
     releasing event's clock *)
  Session.complete t s ~seq:s1 ~now_us:55.0 (deliver 1);
  Alcotest.(check (list (pair int (float 1e-9)))) "order restored"
    [ (0, 40.0); (1, 55.0); (2, 55.0) ]
    (List.rev !log);
  Alcotest.(check int) "stream drained" 0 (Session.outstanding s);
  raises_invalid (fun () ->
      Session.complete t s ~seq:s0 ~now_us:60.0 (deliver 99))

let test_session_skip_unblocks_stream () =
  let t = Session.create (Session.config ()) in
  let s = Session.touch t ~now_us:0.0 "k" in
  let s0 = Session.submit s
  and s1 = Session.submit s in
  let log = ref [] in
  Session.complete t s ~seq:s1 ~now_us:10.0 (fun ~now_us ->
      log := now_us :: !log);
  Alcotest.(check (list (float 1e-9))) "held behind the shed head" [] !log;
  (* the head was shed: skipping it must flush the held successor *)
  Session.skip t s ~seq:s0 ~now_us:25.0;
  Alcotest.(check (list (float 1e-9))) "released at the skip instant" [ 25.0 ]
    !log

let test_session_affinity () =
  let t = Session.create (Session.config ()) in
  let s = Session.touch t ~now_us:0.0 "k" in
  Alcotest.(check (option int)) "no affinity yet" None
    (Session.affinity s ~accel:"lstm");
  Session.set_affinity s ~accel:"lstm" ~replica:7;
  Session.set_affinity s ~accel:"gru" ~replica:3;
  Alcotest.(check (option int)) "per-accel affinity" (Some 7)
    (Session.affinity s ~accel:"lstm");
  Session.clear_affinity s ~accel:"lstm";
  Alcotest.(check (option int)) "cleared" None (Session.affinity s ~accel:"lstm");
  Alcotest.(check (option int)) "other accel untouched" (Some 3)
    (Session.affinity s ~accel:"gru");
  Session.note_sticky t true;
  Session.note_sticky t false;
  Session.note_sticky t true;
  Alcotest.(check (pair int int)) "sticky tallies" (2, 1)
    (Session.sticky_hits t, Session.sticky_misses t)

let test_session_config_validation () =
  raises_invalid (fun () -> Session.config ~idle_timeout_us:0.0 ());
  raises_invalid (fun () -> Session.config ~idle_timeout_us:(-5.0) ())

(* ---------------- mapping cache ---------------- *)

let test_mapcache_lru () =
  let c = Mapcache.create ~capacity:2 () in
  Alcotest.(check (option string)) "cold miss" None (Mapcache.find c "a");
  Mapcache.put c "a" "A";
  Mapcache.put c "b" "B";
  Alcotest.(check (option string)) "hit a" (Some "A") (Mapcache.find c "a");
  (* b is now least recently used; inserting c evicts it *)
  Mapcache.put c "c" "C";
  Alcotest.(check bool) "b evicted" false (Mapcache.mem c "b");
  Alcotest.(check bool) "a survived (recency refreshed by the hit)" true
    (Mapcache.mem c "a");
  Alcotest.(check int) "one eviction" 1 (Mapcache.evictions c);
  Alcotest.(check (list string)) "keys MRU first" [ "c"; "a" ] (Mapcache.keys c);
  Alcotest.(check int) "length tracks live entries" 2 (Mapcache.length c);
  ignore (Mapcache.find c "b");
  Alcotest.(check (pair int int)) "hit/miss tallies" (1, 2)
    (Mapcache.hits c, Mapcache.misses c);
  Alcotest.(check (float 1e-9)) "hit rate" (1.0 /. 3.0) (Mapcache.hit_rate c);
  raises_invalid (fun () -> Mapcache.create ~capacity:0 ())

let test_mapcache_overwrite_no_evict () =
  let c = Mapcache.create ~capacity:1 () in
  Mapcache.put c "k" 1;
  Mapcache.put c "k" 2;
  Alcotest.(check (option int)) "overwrite keeps one entry" (Some 2)
    (Mapcache.find c "k");
  Alcotest.(check int) "no eviction on overwrite" 0 (Mapcache.evictions c)

(* ---------------- trace format ---------------- *)

let diurnal =
  Genset.Diurnal
    {
      period_us = 32_000.0;
      trough_mean_us = 4_000.0;
      peak_mean_us = 1_000.0;
      flash_start_us = 8_000.0;
      flash_us = 6_000.0;
      flash_mean_us = 300.0;
    }

let test_trace_roundtrip_bit_exact () =
  let tasks =
    Genset.generate_arrival ~rng:(Rng.create 11) ~composition:Genset.table1.(6)
      ~tasks:200 ~arrival:diurnal
  in
  match Trace_file.of_string (Trace_file.to_string tasks) with
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e
  | Ok parsed ->
    Alcotest.(check bool) "structurally bit-exact" true (parsed = tasks);
    (* hex floats: arrival instants survive to the last bit *)
    List.iter2
      (fun a b ->
        if a.Genset.arrival_us <> b.Genset.arrival_us then
          Alcotest.failf "arrival drifted: %h vs %h" a.Genset.arrival_us
            b.Genset.arrival_us)
      tasks parsed

let test_trace_rejects_malformed () =
  let bad s =
    match Trace_file.of_string s with
    | Ok _ -> Alcotest.failf "parsed malformed trace %S" s
    | Error _ -> ()
  in
  bad "";
  bad "0x1p+1 t lstm 64 10\n";
  (* header required *)
  bad "#mlv-trace v2\n";
  bad "#mlv-trace v1\n0x1p+1 t lstm 64\n";
  (* missing field *)
  bad "#mlv-trace v1\n0x1p+1 t lstm 0 10\n";
  (* non-positive dimension *)
  bad "#mlv-trace v1\n0x1p+3 t lstm 64 10\n0x1p+1 t lstm 64 10\n";
  (* decreasing arrivals *)
  match Trace_file.of_string "#mlv-trace v1\n# comment\n\n0x1p+1 t lstm 64 10\n" with
  | Ok [ t ] ->
    Alcotest.(check (float 1e-9)) "comments and blanks skipped" 2.0 t.Genset.arrival_us
  | Ok _ -> Alcotest.fail "expected one task"
  | Error e -> Alcotest.failf "valid trace rejected: %s" e

(* ---------------- diurnal arrivals ---------------- *)

let test_diurnal_validation () =
  let gen arrival () =
    Genset.generate_arrival ~rng:(Rng.create 1) ~composition:Genset.table1.(6)
      ~tasks:10 ~arrival
  in
  let d ~period ~trough ~peak ~fs ~fl ~fm =
    Genset.Diurnal
      {
        period_us = period;
        trough_mean_us = trough;
        peak_mean_us = peak;
        flash_start_us = fs;
        flash_us = fl;
        flash_mean_us = fm;
      }
  in
  raises_invalid (gen (d ~period:0.0 ~trough:100.0 ~peak:10.0 ~fs:0.0 ~fl:0.0 ~fm:0.0));
  (* trough must be the slow end *)
  raises_invalid (gen (d ~period:1e4 ~trough:10.0 ~peak:100.0 ~fs:0.0 ~fl:0.0 ~fm:0.0));
  (* flash window must fit inside the period *)
  raises_invalid (gen (d ~period:1e4 ~trough:100.0 ~peak:10.0 ~fs:9e3 ~fl:2e3 ~fm:5.0));
  (* flash needs a positive mean when enabled *)
  raises_invalid (gen (d ~period:1e4 ~trough:100.0 ~peak:10.0 ~fs:0.0 ~fl:1e3 ~fm:0.0))

let test_diurnal_deterministic_and_flash_dense () =
  let gen seed =
    Genset.generate_arrival ~rng:(Rng.create seed)
      ~composition:Genset.table1.(6) ~tasks:400 ~arrival:diurnal
  in
  let a = gen 7 and b = gen 7 in
  Alcotest.(check bool) "same seed, same trace" true (a = b);
  (* arrivals must cluster inside the recurring flash window: its
     rate (300 us mean) dwarfs even the diurnal peak (1 ms mean) *)
  let in_flash, elsewhere =
    List.partition
      (fun t ->
        let phase = Float.rem t.Genset.arrival_us 32_000.0 in
        phase >= 8_000.0 && phase < 14_000.0)
      a
  in
  let flash_density = float_of_int (List.length in_flash) /. 6_000.0 in
  let other_density = float_of_int (List.length elsewhere) /. 26_000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "flash density %.4f > 2x background %.4f" flash_density
       other_density)
    true
    (flash_density > 2.0 *. other_density)

(* ---------------- shape signatures ---------------- *)

let test_shape_signature_separates_registry () =
  let registry = Sysim.build_registry () in
  let names = Registry.names registry in
  let sigs =
    List.filter_map
      (fun n -> Option.map (fun p -> (n, Mapdb.shape_signature p)) (Registry.plan registry n))
      names
  in
  Alcotest.(check bool) "registry exposes plans" true (List.length sigs >= 10);
  (* distinct compiled shapes must never share a cache key; accels
     whose control/data shapes coincide may (that is the cache's
     point), so compare signatures against the shapes they encode *)
  List.iter
    (fun (n1, s1) ->
      List.iter
        (fun (n2, s2) ->
          if n1 < n2 && s1 = s2 then
            match (Registry.plan registry n1, Registry.plan registry n2) with
            | Some p1, Some p2 ->
              let shape (p : Mapdb.plan) =
                ( List.length p.Mapdb.fewest_first,
                  Mlv_core.Soft_block.shape_key
                    p.Mapdb.mapping.Mlv_core.Mapping.control,
                  Mlv_core.Soft_block.shape_key
                    p.Mapdb.mapping.Mlv_core.Mapping.data )
              in
              if shape p1 <> shape p2 then
                Alcotest.failf "distinct shapes %s and %s collide on %s" n1 n2 s1
            | _ -> ())
        sigs)
    sigs;
  (* the DeepBench registry actually exercises the key space: more
     than one distinct signature, and every signature non-empty *)
  let distinct = List.sort_uniq compare (List.map snd sigs) in
  Alcotest.(check bool) "multiple distinct shapes" true (List.length distinct > 1);
  List.iter (fun s -> Alcotest.(check bool) "non-empty key" true (s <> "")) distinct

(* ---------------- sysim integration ---------------- *)

let base_cfg ~tasks =
  let base =
    Sysim.default_config ~policy:Runtime.greedy ~composition:Genset.table1.(2)
  in
  {
    base with
    Sysim.seed = 5;
    tasks;
    repeats_per_task = 2;
    arrival = Some diurnal;
    serving = Some { Sysim.default_serving with Sysim.autoscale = None };
  }

let test_frontend_none_bit_identical () =
  let registry = Sysim.build_registry () in
  let strip r = { r with Sysim.loop_wall_s = 0.0 } in
  let cfg = base_cfg ~tasks:80 in
  let bare = Sysim.run ~registry cfg in
  let neutral =
    Sysim.run ~registry { cfg with Sysim.frontend = Some Sysim.default_frontend }
  in
  Alcotest.(check bool) "all-off frontend is invisible" true
    (strip bare = strip neutral);
  (* and a zero-cost cache only adds counters, never behavior *)
  let free =
    Sysim.run ~registry
      {
        cfg with
        Sysim.frontend =
          Some { Sysim.default_frontend with Sysim.mapping_cache = Some (32, 0.0) };
      }
  in
  let blind r =
    { (strip r) with Sysim.mapcache_hits = 0; mapcache_misses = 0; mapcache_evictions = 0 }
  in
  Alcotest.(check bool) "zero-cost cache is invisible" true
    (blind bare = blind free);
  Alcotest.(check bool) "but the cache did run" true
    (free.Sysim.mapcache_hits + free.Sysim.mapcache_misses > 0)

let test_mapping_cache_cost_differential () =
  let registry = Sysim.build_registry () in
  let with_cache compile_us =
    Sysim.run ~registry
      {
        (base_cfg ~tasks:80) with
        Sysim.frontend =
          Some
            {
              Sysim.default_frontend with
              Sysim.mapping_cache = Some (32, compile_us);
            };
      }
  in
  let free = with_cache 0.0 and costly = with_cache 2_000.0 in
  (* same shapes arrive either way: identical hit pattern *)
  Alcotest.(check (pair int int)) "hit pattern independent of price"
    (free.Sysim.mapcache_hits, free.Sysim.mapcache_misses)
    (costly.Sysim.mapcache_hits, costly.Sysim.mapcache_misses);
  (* only misses pay: pricing compilation must slow the run down *)
  Alcotest.(check bool) "compile cost shows up in latency" true
    (costly.Sysim.mean_latency_us > free.Sysim.mean_latency_us);
  Alcotest.(check bool) "and in the makespan" true
    (costly.Sysim.makespan_us >= free.Sysim.makespan_us)

let test_frontend_requires_serving () =
  let registry = Sysim.build_registry () in
  let base =
    Sysim.default_config ~policy:Runtime.greedy ~composition:Genset.table1.(2)
  in
  raises_invalid (fun () ->
      Sysim.run ~registry
        { base with Sysim.tasks = 4; frontend = Some Sysim.default_frontend });
  (* predictive mode replaces the autoscaler's control law, so it
     needs one *)
  raises_invalid (fun () ->
      Sysim.run ~registry
        {
          base with
          Sysim.tasks = 4;
          serving = Some { Sysim.default_serving with Sysim.autoscale = None };
          frontend =
            Some
              {
                Sysim.default_frontend with
                Sysim.predict = Some Autoscaler.default_predict;
              };
        })

let test_replay_matches_generation () =
  let registry = Sysim.build_registry () in
  let cfg = base_cfg ~tasks:80 in
  let strip r = { r with Sysim.loop_wall_s = 0.0 } in
  let generated = Sysim.run ~registry cfg in
  let trace = Sysim.workload cfg in
  let replayed = Sysim.run ~registry { cfg with Sysim.replay = Some trace } in
  Alcotest.(check bool) "replayed trace is bit-identical" true
    (strip generated = strip replayed);
  (* replay also bypasses generation entirely: a different seed with
     the same replayed trace gives the same result *)
  let reseeded =
    Sysim.run ~registry { cfg with Sysim.seed = 999; replay = Some trace }
  in
  Alcotest.(check bool) "replay wins over the seed" true
    (strip replayed = strip reseeded)

let () =
  Alcotest.run "serve"
    [
      ( "session",
        [
          Alcotest.test_case "touch and expiry" `Quick test_session_touch_and_expiry;
          Alcotest.test_case "outstanding blocks expiry" `Quick
            test_session_outstanding_blocks_expiry;
          Alcotest.test_case "in-order delivery" `Quick test_session_in_order_delivery;
          Alcotest.test_case "skip unblocks stream" `Quick
            test_session_skip_unblocks_stream;
          Alcotest.test_case "sticky affinity" `Quick test_session_affinity;
          Alcotest.test_case "config validation" `Quick test_session_config_validation;
        ] );
      ( "mapcache",
        [
          Alcotest.test_case "lru semantics" `Quick test_mapcache_lru;
          Alcotest.test_case "overwrite" `Quick test_mapcache_overwrite_no_evict;
        ] );
      ( "trace",
        [
          Alcotest.test_case "round-trip bit-exact" `Quick
            test_trace_roundtrip_bit_exact;
          Alcotest.test_case "rejects malformed" `Quick test_trace_rejects_malformed;
        ] );
      ( "diurnal",
        [
          Alcotest.test_case "validation" `Quick test_diurnal_validation;
          Alcotest.test_case "deterministic, flash-dense" `Quick
            test_diurnal_deterministic_and_flash_dense;
        ] );
      ( "shape_signature",
        [
          Alcotest.test_case "separates the registry" `Quick
            test_shape_signature_separates_registry;
        ] );
      ( "sysim",
        [
          Alcotest.test_case "frontend=None bit-identical" `Quick
            test_frontend_none_bit_identical;
          Alcotest.test_case "cache cost differential" `Quick
            test_mapping_cache_cost_differential;
          Alcotest.test_case "frontend requires serving" `Quick
            test_frontend_requires_serving;
          Alcotest.test_case "replay matches generation" `Quick
            test_replay_matches_generation;
        ] );
    ]
