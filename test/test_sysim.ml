(* Tests for the system-level simulation: policy comparisons at small
   scale (the full Fig. 12 runs live in the benchmark harness). *)

module Sysim = Mlv_sysim.Sysim
module Runtime = Mlv_core.Runtime
module Genset = Mlv_workload.Genset
module Deepbench = Mlv_workload.Deepbench
module Codegen = Mlv_isa.Codegen

(* The registry build compiles ten accelerator instances; share it. *)
let registry = lazy (Sysim.build_registry ())

let run ?(tasks = 40) policy set =
  let cfg = Sysim.default_config ~policy ~composition:Genset.table1.(set) in
  Sysim.run ~registry:(Lazy.force registry) { cfg with Sysim.tasks }

let test_instances_registered () =
  let names = Mlv_core.Registry.names (Lazy.force registry) in
  Alcotest.(check int) "10 instances" 10 (List.length names);
  Alcotest.(check bool) "has t21" true (List.mem "npu-t21" names)

let test_instance_selection () =
  let small = { Deepbench.kind = Codegen.Gru; hidden = 512; timesteps = 1 } in
  let large = { Deepbench.kind = Codegen.Gru; hidden = 2560; timesteps = 100 } in
  let t_small = Sysim.instance_for ~policy:Runtime.greedy small in
  let t_large = Sysim.instance_for ~policy:Runtime.greedy large in
  Alcotest.(check bool) "small gets small" true (t_small <= 8);
  Alcotest.(check bool) "large gets multi-FPGA instance" true (t_large >= 32);
  (* The baseline cannot use instances beyond a single device. *)
  let t_large_base = Sysim.instance_for ~policy:Runtime.baseline large in
  Alcotest.(check int) "baseline capped" 21 t_large_base

let test_all_tasks_complete () =
  List.iter
    (fun policy ->
      let r = run policy 6 in
      Alcotest.(check int) policy.Runtime.policy_name 40 r.Sysim.completed;
      Alcotest.(check bool) "positive throughput" true (r.Sysim.throughput_per_s > 0.0))
    [ Runtime.baseline; Runtime.restricted; Runtime.greedy ]

let test_deterministic () =
  let a = run Runtime.greedy 6 in
  let b = run Runtime.greedy 6 in
  Alcotest.(check (float 1e-9)) "same throughput" a.Sysim.throughput_per_s
    b.Sysim.throughput_per_s;
  Alcotest.(check (float 1e-9)) "same makespan" a.Sysim.makespan_us b.Sysim.makespan_us

let test_slo_misses_grow_with_load () =
  (* A saturated arrival rate misses more SLOs than a relaxed one. *)
  let run_rate interarrival =
    let cfg =
      Sysim.default_config ~policy:Runtime.greedy ~composition:Genset.table1.(6)
    in
    Sysim.run ~registry:(Lazy.force registry)
      { cfg with Sysim.tasks = 40; mean_interarrival_us = interarrival }
  in
  let tight = run_rate 50.0 in
  let relaxed = run_rate 100_000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "tight %d vs relaxed %d misses" tight.Sysim.slo_misses
       relaxed.Sysim.slo_misses)
    true
    (tight.Sysim.slo_misses >= relaxed.Sysim.slo_misses);
  Alcotest.(check int) "no misses unloaded" 0 relaxed.Sysim.slo_misses

let test_greedy_beats_baseline () =
  (* The headline claim at small scale: spatial sharing plus
     multi-FPGA deployment outperforms per-device management. *)
  let g = run Runtime.greedy 6 in
  let b = run Runtime.baseline 6 in
  Alcotest.(check bool)
    (Printf.sprintf "greedy %.1f vs baseline %.1f" g.Sysim.throughput_per_s
       b.Sysim.throughput_per_s)
    true
    (g.Sysim.throughput_per_s > 1.5 *. b.Sysim.throughput_per_s)

let test_greedy_beats_restricted () =
  let g = run Runtime.greedy 7 in
  (* L-heavy set: heterogeneity matters most *)
  let r = run Runtime.restricted 7 in
  Alcotest.(check bool)
    (Printf.sprintf "greedy %.1f vs restricted %.1f" g.Sysim.throughput_per_s
       r.Sysim.throughput_per_s)
    true
    (g.Sysim.throughput_per_s >= r.Sysim.throughput_per_s)

(* ---------------- service-model regressions ---------------- *)

let test_scale_out_shape () =
  (* regression: when the hidden size does not divide across the
     nodes, parts clamps to 2 AND the per-part config is sized for 2
     parts (it used to be sized for the unclamped count) *)
  Alcotest.(check (pair int int)) "clamped to 2, per-part for 2" (2, 16)
    (Sysim.scale_out_shape ~hidden:2560 ~nodes:3 ~tiles:32);
  Alcotest.(check (pair int int)) "divisible keeps nodes" (4, 8)
    (Sysim.scale_out_shape ~hidden:2560 ~nodes:4 ~tiles:32);
  Alcotest.(check (pair int int)) "two nodes" (2, 16)
    (Sysim.scale_out_shape ~hidden:2560 ~nodes:2 ~tiles:32);
  (* per-part tiles never drop to zero *)
  Alcotest.(check (pair int int)) "tiny config floor" (2, 1)
    (Sysim.scale_out_shape ~hidden:15 ~nodes:2 ~tiles:2)

let test_instance_within () =
  let cands = [ 6; 8; 21 ] in
  (* regression: used to always return the largest candidate because
     the fold result was discarded *)
  Alcotest.(check (option int)) "smallest that covers" (Some 8)
    (Sysim.instance_within ~need:7 ~cap:64 cands);
  Alcotest.(check (option int)) "exact fit" (Some 6)
    (Sysim.instance_within ~need:6 ~cap:64 cands);
  Alcotest.(check (option int)) "oversized demand falls back to cap" (Some 21)
    (Sysim.instance_within ~need:100 ~cap:21 cands);
  Alcotest.(check (option int)) "cap excludes the cover" (Some 8)
    (Sysim.instance_within ~need:7 ~cap:8 cands);
  Alcotest.(check (option int)) "nothing fits the cap" None
    (Sysim.instance_within ~need:7 ~cap:5 cands);
  (* boundary cases for the single-pass rewrite *)
  Alcotest.(check (option int)) "empty candidates" None
    (Sysim.instance_within ~need:1 ~cap:64 []);
  Alcotest.(check (option int)) "need = cap exact" (Some 21)
    (Sysim.instance_within ~need:21 ~cap:21 cands);
  Alcotest.(check (option int)) "cap between candidates, oversized need"
    (Some 8)
    (Sysim.instance_within ~need:100 ~cap:20 cands);
  Alcotest.(check (option int)) "cap below smallest" None
    (Sysim.instance_within ~need:100 ~cap:5 cands);
  Alcotest.(check (option int)) "need below smallest" (Some 6)
    (Sysim.instance_within ~need:1 ~cap:64 cands)

(* ---------------- flight table ---------------- *)

module Flight_table = Mlv_sysim.Flight_table
module Rng = Mlv_util.Rng

let test_flight_table_basics () =
  let t : int Flight_table.t = Flight_table.create () in
  let a = Flight_table.add t 1 ~nodes:[ 0; 1 ] in
  let b = Flight_table.add t 2 ~nodes:[ 1 ] in
  let c = Flight_table.add t 3 ~nodes:[ 2 ] in
  Alcotest.(check int) "size" 3 (Flight_table.size t);
  Alcotest.(check (list int)) "newest first" [ 3; 2; 1 ]
    (List.map Flight_table.value (Flight_table.to_list t));
  Flight_table.remove t b;
  Flight_table.remove t b;
  (* idempotent *)
  Alcotest.(check int) "size after double remove" 2 (Flight_table.size t);
  Alcotest.(check bool) "removed entry dead" false (Flight_table.live b);
  Alcotest.(check bool) "other entry live" true (Flight_table.live a);
  let hits = Flight_table.take_node t 1 in
  Alcotest.(check (list int)) "crash on node 1 hits the survivor" [ 1 ]
    (List.map Flight_table.value hits);
  Alcotest.(check bool) "taken entries dead" true
    (List.for_all (fun e -> not (Flight_table.live e)) hits);
  Alcotest.(check int) "only the untouched flight remains" 1
    (Flight_table.size t);
  Alcotest.(check (list int)) "node 2 still occupied" [ 3 ]
    (List.map Flight_table.value (Flight_table.take_node t 2));
  Alcotest.(check int) "empty" 0 (Flight_table.size t);
  ignore c

let test_flight_table_differential () =
  (* random add/remove/crash sequence: the indexed table and the
     linear oracle must expose identical contents at every step *)
  let rng = Rng.create 17 in
  let idx : int Flight_table.t = Flight_table.create ~indexed:true () in
  let lin : int Flight_table.t = Flight_table.create ~indexed:false () in
  let entries = ref [] in
  let values t = List.map Flight_table.value (Flight_table.to_list t) in
  for i = 0 to 499 do
    let r = Rng.float rng 1.0 in
    if r < 0.55 || !entries = [] then begin
      let nodes = [ Rng.int rng 8; Rng.int rng 8 ] in
      let ei = Flight_table.add idx i ~nodes in
      let el = Flight_table.add lin i ~nodes in
      entries := (ei, el) :: !entries
    end
    else if r < 0.8 then begin
      let n = Rng.int rng (List.length !entries) in
      let ei, el = List.nth !entries n in
      Flight_table.remove idx ei;
      Flight_table.remove lin el;
      entries := List.filteri (fun j _ -> j <> n) !entries
    end
    else begin
      let node = Rng.int rng 8 in
      let sorted es = List.map Flight_table.value es |> List.sort compare in
      Alcotest.(check (list int))
        "crash hits agree"
        (sorted (Flight_table.take_node lin node))
        (sorted (Flight_table.take_node idx node));
      entries := List.filter (fun (ei, _) -> Flight_table.live ei) !entries
    end;
    Alcotest.(check int) "sizes agree" (Flight_table.size lin)
      (Flight_table.size idx);
    Alcotest.(check (list int)) "contents agree" (values lin) (values idx)
  done

(* ---------------- multi-tenant differential ---------------- *)

let scrub r = { r with Sysim.loop_wall_s = 0.0 }

let tenant_cfg ~indexed ~serving =
  let cfg =
    Sysim.default_config ~policy:Runtime.greedy ~composition:Genset.table1.(6)
  in
  {
    cfg with
    Sysim.seed = 5;
    tenants =
      [
        Genset.tenant_load ~tasks:15
          ~arrival:(Genset.Exponential { mean_us = 300.0 })
          "a";
        Genset.tenant_load ~weight:2.0 ~tasks:15
          ~arrival:
            (Genset.Bursty
               {
                 on_us = 2000.0;
                 off_us = 6000.0;
                 on_mean_us = 100.0;
                 off_mean_us = 2000.0;
               })
          "b";
        Genset.tenant_load ~tasks:10
          ~arrival:(Genset.Exponential { mean_us = 500.0 })
          "c";
      ];
    indexed;
    serving;
  }

let check_tenant_accounting (r : Sysim.result) =
  Alcotest.(check int) "three tenants" 3 (List.length r.Sysim.per_tenant);
  List.iter
    (fun (t : Sysim.tenant_stats) ->
      Alcotest.(check int)
        (t.Sysim.tn_name ^ " accounting closes")
        t.Sysim.tn_arrived
        (t.Sysim.tn_completed + t.Sysim.tn_shed + t.Sysim.tn_rejected))
    r.Sysim.per_tenant;
  let sum f = List.fold_left (fun acc t -> acc + f t) 0 r.Sysim.per_tenant in
  Alcotest.(check int) "tenant completions sum to the run's" r.Sysim.completed
    (sum (fun t -> t.Sysim.tn_completed));
  Alcotest.(check int) "tenant sheds sum to the run's" r.Sysim.shed
    (sum (fun t -> t.Sysim.tn_shed));
  Alcotest.(check int) "tenant rejects sum to the run's" r.Sysim.rejected
    (sum (fun t -> t.Sysim.tn_rejected))

let test_multi_tenant_open_loop_shapes_identical () =
  let go indexed =
    Sysim.run ~registry:(Lazy.force registry) (tenant_cfg ~indexed ~serving:None)
  in
  let i = go true and l = go false in
  Alcotest.(check bool) "indexed = linear, bit for bit" true (scrub i = scrub l);
  check_tenant_accounting i

let test_multi_tenant_serving_shapes_identical () =
  let serving =
    Some { Sysim.default_serving with Sysim.tenant_pool = Some (20_000.0, 12) }
  in
  let go indexed =
    Sysim.run ~registry:(Lazy.force registry) (tenant_cfg ~indexed ~serving)
  in
  let i = go true and l = go false in
  Alcotest.(check bool) "indexed = linear, bit for bit" true (scrub i = scrub l);
  check_tenant_accounting i

(* ---------------- fault injection ---------------- *)

module Fault_plan = Mlv_cluster.Fault_plan
module Device = Mlv_fpga.Device

let plan_of_string s =
  match Fault_plan.of_string s with
  | Ok p -> p
  | Error e -> Alcotest.fail e

(* One long-running task on a one-node cluster: deterministic timing
   for crash-interruption tests. *)
let single_node_config ~plan =
  let cfg =
    Sysim.default_config ~policy:Runtime.greedy ~composition:{ Genset.s = 1.0; m = 0.0; l = 0.0 }
  in
  {
    cfg with
    Sysim.tasks = 1;
    mean_interarrival_us = 1.0;
    repeats_per_task = 500;
    cluster_kinds = [ Device.XCVU37P ];
    faults = Some (Sysim.default_faults plan);
  }

let test_crash_retries_once () =
  (* crash mid-service, restore later: the task is retried exactly
     once and still completes *)
  let plan = plan_of_string "crash@2000:0,restore@4000:0" in
  let r = Sysim.run ~registry:(Lazy.force registry) (single_node_config ~plan) in
  Alcotest.(check int) "completed" 1 r.Sysim.completed;
  Alcotest.(check int) "retried exactly once" 1 r.Sysim.retried;
  Alcotest.(check int) "not rejected" 0 r.Sysim.rejected;
  Alcotest.(check int) "none lost" 0 r.Sysim.lost;
  Alcotest.(check bool) "downtime recorded" true (r.Sysim.fault_downtime_us > 0.0)

let test_crash_without_capacity_rejects () =
  (* the only node dies and never comes back: the interrupted task is
     retried, cannot restart, and is rejected — not hung, not lost *)
  let plan = plan_of_string "crash@2000:0" in
  let r = Sysim.run ~registry:(Lazy.force registry) (single_node_config ~plan) in
  Alcotest.(check int) "nothing completes" 0 r.Sysim.completed;
  Alcotest.(check int) "retried once" 1 r.Sysim.retried;
  Alcotest.(check int) "rejected, not hung" 1 r.Sysim.rejected;
  Alcotest.(check int) "none lost" 0 r.Sysim.lost

let test_undeployable_head_rejected () =
  (* regression: an all-L workload on a lone KU115 used to stall the
     queue forever behind a head that could never deploy; now the run
     terminates with every task accounted for *)
  let cfg =
    Sysim.default_config ~policy:Runtime.greedy ~composition:{ Genset.s = 0.0; m = 0.0; l = 1.0 }
  in
  let r =
    Sysim.run ~registry:(Lazy.force registry)
      { cfg with Sysim.tasks = 5; cluster_kinds = [ Device.XCKU115 ] }
  in
  Alcotest.(check bool) "some rejected" true (r.Sysim.rejected > 0);
  Alcotest.(check int) "all accounted" 5 (r.Sysim.completed + r.Sysim.rejected);
  Alcotest.(check int) "none lost" 0 r.Sysim.lost

let test_late_crash_does_not_perturb () =
  (* a fault plan firing after the last completion must not change the
     modeled numbers at all *)
  let base = run Runtime.greedy 6 in
  let cfg = Sysim.default_config ~policy:Runtime.greedy ~composition:Genset.table1.(6) in
  let plan = plan_of_string "crash@1e9:1" in
  let faulted =
    Sysim.run ~registry:(Lazy.force registry)
      { cfg with Sysim.tasks = 40; faults = Some (Sysim.default_faults plan) }
  in
  Alcotest.(check (float 0.0)) "same makespan" base.Sysim.makespan_us
    faulted.Sysim.makespan_us;
  Alcotest.(check (float 0.0)) "same throughput" base.Sysim.throughput_per_s
    faulted.Sysim.throughput_per_s;
  Alcotest.(check int) "nothing retried" 0 faulted.Sysim.retried

let test_availability_acceptance () =
  (* the PR's acceptance run: default cluster, mid-run crash of a busy
     node with a later restore — every task completes (some retried),
     nothing is lost *)
  let base = run Runtime.greedy 7 in
  let plan =
    Fault_plan.make
      [
        { Fault_plan.at = 0.3 *. base.Sysim.makespan_us; action = Fault_plan.Crash 1 };
        { Fault_plan.at = 0.6 *. base.Sysim.makespan_us; action = Fault_plan.Restore 1 };
      ]
  in
  let cfg = Sysim.default_config ~policy:Runtime.greedy ~composition:Genset.table1.(7) in
  let r =
    Sysim.run ~registry:(Lazy.force registry)
      { cfg with Sysim.tasks = 40; faults = Some (Sysim.default_faults plan) }
  in
  Alcotest.(check int) "all tasks complete" 40 r.Sysim.completed;
  Alcotest.(check bool) "some were retried" true (r.Sysim.retried > 0);
  Alcotest.(check int) "none lost" 0 r.Sysim.lost;
  Alcotest.(check bool) "fault-free tput at least the faulted rate" true
    (r.Sysim.fault_free_throughput_per_s >= r.Sysim.throughput_per_s *. 0.9)

(* ---------------- lifecycle tracing & labeled metrics ---------------- *)

module Obs = Mlv_obs.Obs

let test_trace_closed_accounting () =
  (* a faulted run with tracing on: every lifecycle count must close
     against the run's own accounting, crash-requeue path included *)
  let base = run Runtime.greedy 7 in
  let plan =
    Fault_plan.make
      [
        { Fault_plan.at = 0.3 *. base.Sysim.makespan_us; action = Fault_plan.Crash 1 };
        { Fault_plan.at = 0.6 *. base.Sysim.makespan_us; action = Fault_plan.Restore 1 };
      ]
  in
  let cfg = Sysim.default_config ~policy:Runtime.greedy ~composition:Genset.table1.(7) in
  Obs.reset ();
  Fun.protect
    ~finally:(fun () -> Obs.Trace.set_enabled false)
    (fun () ->
      Obs.Trace.set_enabled true;
      let r =
        Sysim.run ~registry:(Lazy.force registry)
          { cfg with Sysim.tasks = 40; faults = Some (Sysim.default_faults plan) }
      in
      Alcotest.(check int) "arrive events = tasks" 40
        (Obs.Trace.count Obs.Trace.Arrive);
      Alcotest.(check int) "queue events = tasks" 40
        (Obs.Trace.count Obs.Trace.Queue);
      Alcotest.(check int) "complete events = completed" r.Sysim.completed
        (Obs.Trace.count Obs.Trace.Complete);
      Alcotest.(check int) "reject events = rejected" r.Sysim.rejected
        (Obs.Trace.count Obs.Trace.Reject);
      Alcotest.(check int) "retry events = retried" r.Sysim.retried
        (Obs.Trace.count Obs.Trace.Retry);
      Alcotest.(check bool) "crash interrupted in-flight work" true
        (Obs.Trace.count Obs.Trace.Crash_interrupt > 0);
      Alcotest.(check int) "deploy events = service events"
        (Obs.Trace.count Obs.Trace.Deploy)
        (Obs.Trace.count Obs.Trace.Service);
      Alcotest.(check int) "fault marks on the timeline" 2
        (Obs.Trace.count Obs.Trace.Mark);
      Alcotest.(check int) "run accounting closes" 40
        (r.Sysim.completed + r.Sysim.rejected + r.Sysim.lost))

let test_labeled_metrics_deterministic () =
  (* two identical runs must produce byte-identical sysim counter and
     histogram series (names, labels, values) — sim-clock-derived
     metrics cannot depend on wall time *)
  let snapshot () =
    Obs.reset ();
    ignore (run Runtime.greedy 7);
    let prefixed n = String.length n >= 6 && String.sub n 0 6 = "sysim." in
    let counters = List.filter (fun (n, _) -> prefixed n) (Obs.counters ()) in
    let hists =
      Obs.histograms ()
      |> List.filter (fun (n, _) -> prefixed n)
      |> List.map (fun (n, h) -> (n, (Obs.Histogram.count h, Obs.Histogram.sum h)))
    in
    (counters, hists)
  in
  let ca, ha = snapshot () in
  let cb, hb = snapshot () in
  Alcotest.(check (list (pair string int))) "counter series identical" ca cb;
  Alcotest.(check (list (pair string (pair int (float 1e-6)))))
    "histogram series identical" ha hb;
  Alcotest.(check bool) "labeled series present" true
    (List.exists (fun (n, _) -> String.contains n '{') ca
    && List.exists (fun (n, _) -> String.contains n '{') ha)

let test_wait_reasonable () =
  let r = run ~tasks:20 Runtime.greedy 0 in
  (* an all-S set at this arrival rate should barely queue *)
  Alcotest.(check bool) "waits bounded" true (r.Sysim.mean_wait_us < r.Sysim.makespan_us);
  Alcotest.(check bool) "service positive" true (r.Sysim.mean_service_us > 0.0);
  Alcotest.(check bool) "p95 >= mean" true (r.Sysim.p95_latency_us >= r.Sysim.mean_latency_us *. 0.5);
  Alcotest.(check int) "latency per task" r.Sysim.completed (List.length r.Sysim.latencies_us);
  Alcotest.(check bool) "slo misses bounded" true
    (r.Sysim.slo_misses >= 0 && r.Sysim.slo_misses <= r.Sysim.completed)

let () =
  Alcotest.run "sysim"
    [
      ( "sysim",
        [
          Alcotest.test_case "instances registered" `Quick test_instances_registered;
          Alcotest.test_case "instance selection" `Quick test_instance_selection;
          Alcotest.test_case "all tasks complete" `Quick test_all_tasks_complete;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "greedy beats baseline" `Quick test_greedy_beats_baseline;
          Alcotest.test_case "SLO misses grow with load" `Quick test_slo_misses_grow_with_load;
          Alcotest.test_case "greedy vs restricted" `Quick test_greedy_beats_restricted;
          Alcotest.test_case "waits reasonable" `Quick test_wait_reasonable;
          Alcotest.test_case "scale-out shape" `Quick test_scale_out_shape;
          Alcotest.test_case "instance within cap" `Quick test_instance_within;
        ] );
      ( "flight_table",
        [
          Alcotest.test_case "basics" `Quick test_flight_table_basics;
          Alcotest.test_case "shapes differential" `Quick
            test_flight_table_differential;
        ] );
      ( "tenants",
        [
          Alcotest.test_case "open-loop shapes identical" `Quick
            test_multi_tenant_open_loop_shapes_identical;
          Alcotest.test_case "serving shapes identical" `Quick
            test_multi_tenant_serving_shapes_identical;
        ] );
      ( "faults",
        [
          Alcotest.test_case "crash retries once" `Quick test_crash_retries_once;
          Alcotest.test_case "crash without capacity rejects" `Quick
            test_crash_without_capacity_rejects;
          Alcotest.test_case "undeployable head rejected" `Quick
            test_undeployable_head_rejected;
          Alcotest.test_case "late crash does not perturb" `Quick
            test_late_crash_does_not_perturb;
          Alcotest.test_case "availability acceptance" `Quick
            test_availability_acceptance;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "closed accounting" `Quick test_trace_closed_accounting;
          Alcotest.test_case "labeled metrics deterministic" `Quick
            test_labeled_metrics_deterministic;
        ] );
    ]
