(* Differential suite for the two discrete-event engines: the
   timing-wheel engine must be bit-identical to the binary-heap
   oracle — same event orderings (including FIFO tie-breaks), same
   clocks, same end-to-end sysim results — on every configuration the
   system simulator exercises (open loop, fault plans, elastic
   serving).  The microbenchmark (bench/sim.ml) asserts the same
   contract over millions of events; this suite pins it in the test
   tier with small, fast cases. *)

module Sim = Mlv_cluster.Sim
module Fault_plan = Mlv_cluster.Fault_plan
module Sysim = Mlv_sysim.Sysim
module Runtime = Mlv_core.Runtime
module Genset = Mlv_workload.Genset
module Rng = Mlv_util.Rng

(* The registry build compiles ten accelerator instances; share it. *)
let registry = lazy (Sysim.build_registry ())

(* ---------------- Sim-level ordering ---------------- *)

(* Fire the spec on one engine and return the (time, tag) sequence. *)
let fire_order engine spec =
  let sim = Sim.create ~engine () in
  let log = ref [] in
  List.iter
    (fun (at, tag) ->
      Sim.schedule_at sim ~at (fun () -> log := (Sim.now sim, tag) :: !log))
    spec;
  Sim.run sim;
  Sim.release sim;
  List.rev !log

let check_same_order name spec =
  let h = fire_order Sim.Heap spec in
  let w = fire_order Sim.Wheel spec in
  Alcotest.(check (list (pair (float 0.0) int))) name h w

let test_fifo_tie_break () =
  (* Equal timestamps must fire in insertion order on both engines,
     interleaved with distinct times on either side.  [float 0.0]
     checks demand exact equality. *)
  let spec =
    [
      (5.0, 0);
      (3.0, 1);
      (5.0, 2);
      (1.0, 3);
      (5.0, 4);
      (3.0, 5);
      (9.0, 6);
      (5.0, 7);
    ]
  in
  check_same_order "tie order" spec;
  (* The wheel's in-bucket sort must yield FIFO for the ties itself,
     not just agree with the heap. *)
  let w = fire_order Sim.Wheel spec in
  let ties = List.filter_map (fun (t, g) -> if t = 5.0 then Some g else None) w in
  Alcotest.(check (list int)) "FIFO among equal times" [ 0; 2; 4; 7 ] ties

let test_random_stream_differential () =
  (* A hold model over a deliberately nasty time distribution:
     clustered times (many bucket collisions and exact ties from the
     coarse quantisation) plus occasional far-future jumps that cross
     wheel levels. *)
  let spec engine =
    let rng = Rng.create 7 in
    let sim = Sim.create ~engine () in
    let log = ref [] in
    let count = ref 0 in
    let rec handler () =
      log := Sim.now sim :: !log;
      if !count < 3000 then begin
        incr count;
        let r = Rng.float rng 1.0 in
        let delay =
          if r < 0.5 then Float.of_int (Rng.int rng 40) (* exact ties *)
          else if r < 0.9 then Rng.float rng 5_000.0
          else Rng.float rng 40_000_000.0 (* level-2 / overflow hops *)
        in
        Sim.schedule sim ~delay handler
      end
    in
    for _ = 1 to 50 do
      Sim.schedule_at sim ~at:(Rng.float rng 100.0) handler
    done;
    Sim.run sim;
    Sim.release sim;
    List.rev !log
  in
  let h = spec Sim.Heap and w = spec Sim.Wheel in
  Alcotest.(check int) "same length" (List.length h) (List.length w);
  Alcotest.(check (list (float 0.0))) "same pop times" h w

let test_run_until_agrees () =
  let go engine =
    let sim = Sim.create ~engine () in
    let fired = ref [] in
    List.iter
      (fun at -> Sim.schedule_at sim ~at (fun () -> fired := at :: !fired))
      [ 10.0; 250.0; 250.0; 4096.0; 100_000.0 ];
    Sim.run ~until:300.0 sim;
    let mid = (Sim.now sim, List.rev !fired, Sim.pending sim) in
    Sim.run sim;
    Sim.release sim;
    (mid, Sim.now sim, Sim.events_processed sim)
  in
  let h = go Sim.Heap and w = go Sim.Wheel in
  let (hn, hf, hp), hend, hev = h and (wn, wf, wp), wend, wev = w in
  Alcotest.(check (float 0.0)) "clock at limit" hn wn;
  Alcotest.(check (list (float 0.0))) "fired before limit" hf wf;
  Alcotest.(check int) "pending after limit" hp wp;
  Alcotest.(check (float 0.0)) "final clock" hend wend;
  Alcotest.(check int) "events processed" hev wev

(* ---------------- Sysim end-to-end ---------------- *)

(* Run the same sysim configuration under both engines and demand
   structurally identical results — every counter, every float,
   including the per-task completion-order latency list (an
   order-sensitive fingerprint of the whole event sequence). *)
let run_both name cfg =
  let go engine =
    Sim.set_default_engine engine;
    Fun.protect
      ~finally:(fun () -> Sim.set_default_engine Sim.Wheel)
      (fun () -> Sysim.run ~registry:(Lazy.force registry) cfg)
  in
  let h = go Sim.Heap in
  let w = go Sim.Wheel in
  (* Spot-check headline fields for a readable failure first. *)
  Alcotest.(check int) (name ^ ": completed") h.Sysim.completed w.Sysim.completed;
  Alcotest.(check (float 0.0))
    (name ^ ": makespan")
    h.Sysim.makespan_us w.Sysim.makespan_us;
  Alcotest.(check (list (float 0.0)))
    (name ^ ": latency sequence")
    h.Sysim.latencies_us w.Sysim.latencies_us;
  (* loop_wall_s is real time, the one intentionally nondeterministic
     field; neutralize it before the structural comparison. *)
  let scrub r = { r with Sysim.loop_wall_s = 0.0 } in
  Alcotest.(check bool)
    (name ^ ": full result bit-identical")
    true
    (scrub h = scrub w)

let test_sysim_open_loop () =
  let cfg =
    Sysim.default_config ~policy:Runtime.greedy ~composition:Genset.table1.(6)
  in
  run_both "open loop" { cfg with Sysim.tasks = 30 }

let test_sysim_faults () =
  let plan =
    match Fault_plan.of_string "crash@8000:1,degrade@12000:0.6,restore@20000:1" with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let cfg =
    Sysim.default_config ~policy:Runtime.greedy ~composition:Genset.table1.(6)
  in
  run_both "faults"
    { cfg with Sysim.tasks = 30; faults = Some (Sysim.default_faults plan) }

let test_sysim_serving () =
  let cfg =
    Sysim.default_config ~policy:Runtime.greedy ~composition:Genset.table1.(7)
  in
  run_both "serving"
    {
      cfg with
      Sysim.tasks = 40;
      mean_interarrival_us = 120.0;
      serving = Some Sysim.default_serving;
    }

let () =
  Alcotest.run "sim_engine"
    [
      ( "ordering",
        [
          Alcotest.test_case "FIFO tie-break" `Quick test_fifo_tie_break;
          Alcotest.test_case "random stream differential" `Quick
            test_random_stream_differential;
          Alcotest.test_case "run ~until agrees" `Quick test_run_until_agrees;
        ] );
      ( "sysim",
        [
          Alcotest.test_case "open loop bit-identical" `Quick test_sysim_open_loop;
          Alcotest.test_case "fault plan bit-identical" `Quick test_sysim_faults;
          Alcotest.test_case "serving bit-identical" `Quick test_sysim_serving;
        ] );
    ]
