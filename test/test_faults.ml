(* Tests for the fault-injection and recovery layer: the fault-plan
   data type, runtime failure marking / migration / deploy retry, and
   index consistency across fault/restore cycles. *)

module Fault_plan = Mlv_cluster.Fault_plan
module Sim = Mlv_cluster.Sim
module Cluster = Mlv_cluster.Cluster
module Registry = Mlv_core.Registry
module Runtime = Mlv_core.Runtime
module Framework = Mlv_core.Framework
module Obs = Mlv_obs.Obs

(* ---------------- Fault plans ---------------- *)

let test_plan_parse_roundtrip () =
  let s = "crash@8000:1,restore@20000:1,degrade@12000:0.6" in
  match Fault_plan.of_string s with
  | Error e -> Alcotest.fail e
  | Ok plan ->
    Alcotest.(check int) "three events" 3 (Fault_plan.length plan);
    (* events come back time-sorted *)
    let times = List.map (fun (e : Fault_plan.event) -> e.Fault_plan.at) (Fault_plan.events plan) in
    Alcotest.(check (list (float 1e-9))) "sorted" [ 8000.0; 12000.0; 20000.0 ] times;
    let printed = Fault_plan.to_string plan in
    (match Fault_plan.of_string printed with
    | Error e -> Alcotest.failf "round-trip failed: %s" e
    | Ok plan' ->
      Alcotest.(check string) "round trip" printed (Fault_plan.to_string plan'))

let test_plan_parse_errors () =
  let bad s =
    match Fault_plan.of_string s with
    | Ok _ -> Alcotest.failf "expected parse error for %S" s
    | Error _ -> ()
  in
  bad "crash@x:1";
  bad "explode@100:1";
  bad "crash@100";
  bad "crash@100:1:2";
  bad "degrade@100:-0.5";
  (match Fault_plan.of_string "" with
  | Ok p -> Alcotest.(check bool) "empty string is empty plan" true (Fault_plan.is_empty p)
  | Error e -> Alcotest.fail e);
  match
    Fault_plan.make [ { Fault_plan.at = -1.0; action = Fault_plan.Crash 0 } ]
  with
  | _ -> Alcotest.fail "negative event time should raise"
  | exception Invalid_argument _ -> ()

let test_plan_validate () =
  let plan =
    Fault_plan.make [ { Fault_plan.at = 100.0; action = Fault_plan.Crash 9 } ]
  in
  (match Fault_plan.validate plan ~nodes:4 with
  | Ok () -> Alcotest.fail "crash on node 9 of 4 should not validate"
  | Error _ -> ());
  let ok =
    Fault_plan.make
      [
        { Fault_plan.at = 100.0; action = Fault_plan.Crash 3 };
        { Fault_plan.at = 200.0; action = Fault_plan.Degrade 1.5 };
      ]
  in
  match Fault_plan.validate ok ~nodes:4 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_plan_downtime () =
  let plan =
    Fault_plan.make
      [
        { Fault_plan.at = 100.0; action = Fault_plan.Crash 0 };
        { Fault_plan.at = 300.0; action = Fault_plan.Restore 0 };
        { Fault_plan.at = 500.0; action = Fault_plan.Crash 1 };
      ]
  in
  (* [100,300] closed plus [500,600] still open at until=600 *)
  Alcotest.(check (float 1e-9)) "two outages" 300.0
    (Fault_plan.downtime_us plan ~until:600.0);
  (* overlapping crashes are one outage, not two *)
  let overlap =
    Fault_plan.make
      [
        { Fault_plan.at = 100.0; action = Fault_plan.Crash 0 };
        { Fault_plan.at = 150.0; action = Fault_plan.Crash 1 };
        { Fault_plan.at = 200.0; action = Fault_plan.Restore 0 };
        { Fault_plan.at = 400.0; action = Fault_plan.Restore 1 };
      ]
  in
  Alcotest.(check (float 1e-9)) "overlap merged" 300.0
    (Fault_plan.downtime_us overlap ~until:1000.0);
  Alcotest.(check (float 1e-9)) "empty plan no downtime" 0.0
    (Fault_plan.downtime_us Fault_plan.empty ~until:1000.0)

let test_plan_schedule_order () =
  let sim = Sim.create () in
  let plan =
    Fault_plan.make
      [
        { Fault_plan.at = 300.0; action = Fault_plan.Restore 1 };
        { Fault_plan.at = 100.0; action = Fault_plan.Crash 1 };
        { Fault_plan.at = 200.0; action = Fault_plan.Degrade 0.5 };
      ]
  in
  let crashes = Obs.Counter.get "fault.crash" in
  let before = Obs.Counter.value crashes in
  let log = ref [] in
  Fault_plan.schedule plan sim
    ~on_crash:(fun n -> log := Printf.sprintf "crash:%d@%.0f" n (Sim.now sim) :: !log)
    ~on_restore:(fun n -> log := Printf.sprintf "restore:%d@%.0f" n (Sim.now sim) :: !log)
    ~on_degrade:(fun us -> log := Printf.sprintf "degrade:%.1f@%.0f" us (Sim.now sim) :: !log);
  Sim.run sim;
  Alcotest.(check (list string)) "fired in time order"
    [ "crash:1@100"; "degrade:0.5@200"; "restore:1@300" ]
    (List.rev !log);
  Alcotest.(check int) "fault.crash counted" (before + 1) (Obs.Counter.value crashes)

(* ---------------- Runtime failure handling ---------------- *)

let runtime_fixture () =
  let npu =
    match Framework.build_npu ~tiles:6 () with
    | Ok npu -> npu
    | Error e -> Alcotest.failf "npu build failed: %s" e
  in
  let registry = Registry.create () in
  Registry.register registry npu.Framework.mapping;
  let cluster = Cluster.create () in
  (Runtime.create ~policy:Runtime.greedy cluster registry, cluster)

let deploy_ok rt =
  match Runtime.deploy rt ~accel:"npu-t6" with
  | Ok d -> d
  | Error e -> Alcotest.failf "deploy failed: %s" e

let test_mark_failed_and_health () =
  let rt, _ = runtime_fixture () in
  let d = deploy_ok rt in
  let node = List.hd (Runtime.nodes_used d) in
  Alcotest.(check bool) "healthy before" true (Runtime.deployment_health rt d = []);
  Runtime.mark_node_failed rt node;
  Alcotest.(check bool) "node failed" true (Runtime.node_failed rt node);
  Alcotest.(check (list int)) "failed list" [ node ] (Runtime.failed_nodes rt);
  Alcotest.(check (list int)) "health names node" [ node ]
    (Runtime.deployment_health rt d);
  Alcotest.(check int) "degraded lists it" 1 (List.length (Runtime.degraded rt));
  Alcotest.(check bool) "still live" true
    (List.memq d (Runtime.deployments rt));
  Alcotest.(check bool) "index consistent" true (Runtime.index_consistent rt);
  (* marking twice is idempotent *)
  Runtime.mark_node_failed rt node;
  Alcotest.(check (list int)) "idempotent" [ node ] (Runtime.failed_nodes rt);
  Runtime.restore_node rt node;
  Alcotest.(check bool) "restored" false (Runtime.node_failed rt node);
  Alcotest.(check bool) "index consistent after restore" true
    (Runtime.index_consistent rt)

let test_migrate () =
  let rt, _ = runtime_fixture () in
  let d = deploy_ok rt in
  let node = List.hd (Runtime.nodes_used d) in
  (* healthy deployment: nothing to move *)
  (match Runtime.migrate rt d with
  | Ok 0 -> ()
  | Ok n -> Alcotest.failf "healthy migrate moved %d" n
  | Error e -> Alcotest.fail e);
  Runtime.mark_node_failed rt node;
  (match Runtime.migrate rt d with
  | Error e -> Alcotest.fail e
  | Ok moved ->
    Alcotest.(check bool) "placements moved" true (moved >= 1);
    Alcotest.(check bool) "off the failed node" false
      (List.mem node (Runtime.nodes_used d));
    Alcotest.(check (list int)) "healthy again" [] (Runtime.deployment_health rt d);
    Alcotest.(check bool) "same handle still live" true
      (List.memq d (Runtime.deployments rt));
    Alcotest.(check bool) "index consistent" true (Runtime.index_consistent rt));
  Runtime.restore_node rt node;
  Runtime.undeploy rt d;
  Alcotest.(check bool) "index consistent at end" true (Runtime.index_consistent rt)

let test_migrate_errors () =
  let rt, cluster = runtime_fixture () in
  let d = deploy_ok rt in
  let original_nodes = Runtime.nodes_used d in
  (* with every node down there is nowhere to go: the deployment must
     survive the failed migration with its placements intact *)
  for n = 0 to Cluster.node_count cluster - 1 do
    Runtime.mark_node_failed rt n
  done;
  (match Runtime.migrate rt d with
  | Ok _ -> Alcotest.fail "migrate with all nodes down should fail"
  | Error _ ->
    Alcotest.(check bool) "still live after failed migrate" true
      (List.memq d (Runtime.deployments rt));
    Alcotest.(check (list int)) "placements restored" original_nodes
      (Runtime.nodes_used d));
  for n = 0 to Cluster.node_count cluster - 1 do
    Runtime.restore_node rt n
  done;
  Runtime.undeploy rt d;
  (* a non-live deployment cannot migrate *)
  match Runtime.migrate rt d with
  | Ok _ -> Alcotest.fail "migrating an undeployed handle should fail"
  | Error _ -> ()

let test_deploy_with_retry_immediate () =
  let rt, _ = runtime_fixture () in
  let result = ref None in
  Runtime.deploy_with_retry rt ~accel:"npu-t6" (fun r -> result := Some r);
  match !result with
  | Some (Ok _) -> ()
  | Some (Error e) -> Alcotest.fail e
  | None -> Alcotest.fail "continuation not called synchronously on success"

let test_deploy_with_retry_backoff () =
  let rt, cluster = runtime_fixture () in
  let sim = cluster.Cluster.sim in
  for n = 0 to Cluster.node_count cluster - 1 do
    Runtime.mark_node_failed rt n
  done;
  (* restore capacity at t=250: attempts at 0 and 100 fail, the
     attempt at 300 (backoff 100 then 200) succeeds *)
  Sim.schedule_at sim ~at:250.0 (fun () ->
      for n = 0 to Cluster.node_count cluster - 1 do
        Runtime.restore_node rt n
      done);
  let result = ref None in
  Runtime.deploy_with_retry rt ~accel:"npu-t6" ~base_backoff_us:100.0 (fun r ->
      result := Some (r, Sim.now sim));
  Sim.run sim;
  match !result with
  | Some (Ok _, at) -> Alcotest.(check (float 1e-9)) "succeeded at 3rd attempt" 300.0 at
  | Some (Error e, _) -> Alcotest.fail e
  | None -> Alcotest.fail "continuation never called"

let test_deploy_with_retry_exhaustion () =
  let rt, cluster = runtime_fixture () in
  let sim = cluster.Cluster.sim in
  for n = 0 to Cluster.node_count cluster - 1 do
    Runtime.mark_node_failed rt n
  done;
  let result = ref None in
  Runtime.deploy_with_retry rt ~accel:"npu-t6" ~max_retries:3 ~base_backoff_us:100.0
    (fun r -> result := Some (r, Sim.now sim));
  Sim.run sim;
  match !result with
  | Some (Error _, at) ->
    (* retries at +100, +200, +400 after the immediate attempt *)
    Alcotest.(check (float 1e-9)) "gave up after full backoff" 700.0 at
  | Some (Ok _, _) -> Alcotest.fail "deploy on a dead cluster should fail"
  | None -> Alcotest.fail "continuation never called"

(* The churn invariant under faults: the allocation index stays
   consistent after every crash, failover, migration and restore. *)
let test_index_consistent_through_fault_plan () =
  let rt, cluster = runtime_fixture () in
  let sim = cluster.Cluster.sim in
  let deployed = ref [] in
  for _ = 1 to 3 do
    deployed := deploy_ok rt :: !deployed
  done;
  let check_consistent where =
    if not (Runtime.index_consistent rt) then
      Alcotest.failf "index inconsistent %s" where
  in
  let plan =
    Fault_plan.make
      [
        { Fault_plan.at = 100.0; action = Fault_plan.Crash 0 };
        { Fault_plan.at = 200.0; action = Fault_plan.Crash 1 };
        { Fault_plan.at = 300.0; action = Fault_plan.Restore 0 };
        { Fault_plan.at = 400.0; action = Fault_plan.Restore 1 };
      ]
  in
  Fault_plan.schedule plan sim
    ~on_crash:(fun n ->
      ignore (Runtime.fail_node rt n);
      check_consistent (Printf.sprintf "after crash of node %d" n))
    ~on_restore:(fun n ->
      Runtime.restore_node rt n;
      check_consistent (Printf.sprintf "after restore of node %d" n))
    ~on_degrade:(fun _ -> ());
  Sim.run sim;
  Alcotest.(check (list int)) "all nodes back" [] (Runtime.failed_nodes rt);
  List.iter
    (fun d -> if List.memq d (Runtime.deployments rt) then Runtime.undeploy rt d)
    !deployed;
  check_consistent "after final undeploy"

let () =
  Alcotest.run "faults"
    [
      ( "fault_plan",
        [
          Alcotest.test_case "parse round-trip" `Quick test_plan_parse_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_plan_parse_errors;
          Alcotest.test_case "validate" `Quick test_plan_validate;
          Alcotest.test_case "downtime" `Quick test_plan_downtime;
          Alcotest.test_case "schedule order" `Quick test_plan_schedule_order;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "mark failed + health" `Quick test_mark_failed_and_health;
          Alcotest.test_case "migrate" `Quick test_migrate;
          Alcotest.test_case "migrate errors" `Quick test_migrate_errors;
          Alcotest.test_case "retry immediate" `Quick test_deploy_with_retry_immediate;
          Alcotest.test_case "retry backoff" `Quick test_deploy_with_retry_backoff;
          Alcotest.test_case "retry exhaustion" `Quick test_deploy_with_retry_exhaustion;
          Alcotest.test_case "index consistent through faults" `Quick
            test_index_consistent_through_fault_plan;
        ] );
    ]
