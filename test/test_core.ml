(* Tests for the framework core: soft blocks, patterns, the
   decomposer, partitioner, mapping, registry, runtime and the
   scale-out optimizer. *)

module SB = Mlv_core.Soft_block
module Pattern = Mlv_core.Pattern
module Decompose = Mlv_core.Decompose
module Partition = Mlv_core.Partition
module Mapping = Mlv_core.Mapping
module Registry = Mlv_core.Registry
module Runtime = Mlv_core.Runtime
module Scale_out = Mlv_core.Scale_out
module Defrag = Mlv_core.Defrag
module Framework = Mlv_core.Framework
module Hypervisor = Mlv_core.Hypervisor
module Top_down = Mlv_core.Top_down
module Parser = Mlv_rtl.Parser
module Design = Mlv_rtl.Design
module Resource = Mlv_fpga.Resource
module Device = Mlv_fpga.Device
module Cluster = Mlv_cluster.Cluster
module Codegen = Mlv_isa.Codegen
module Program = Mlv_isa.Program
module Instr = Mlv_isa.Instr
module Rng = Mlv_util.Rng
module Obs = Mlv_obs.Obs

let parse_ok src =
  match Parser.parse_string src with
  | Ok d -> d
  | Error msg -> Alcotest.failf "parse error: %s" msg

let res l = Resource.make ~luts:l ()
let mk_leaf ?(m = "m") name = SB.leaf ~name ~module_name:m ~resources:(res 10) ()

(* ---------------- Soft blocks ---------------- *)

let test_sb_constructors () =
  let l = mk_leaf "a" in
  let dp = SB.data_par ~name:"dp" [ l; l; l ] in
  let pipe = SB.pipeline ~name:"p" ~link_bits:[ 8; 16 ] [ l; dp; l ] in
  (* pipe node + [leaf; dp node + 3 leaves; leaf] *)
  Alcotest.(check int) "size" 7 (SB.size pipe);
  Alcotest.(check int) "depth" 3 (SB.depth pipe);
  Alcotest.(check int) "leaves" 5 (List.length (SB.leaves pipe));
  Alcotest.(check int) "dp count" 1 (SB.count_composition pipe SB.Data_parallel);
  Alcotest.(check int) "pipe count" 1 (SB.count_composition pipe SB.Pipeline);
  Alcotest.(check int) "resources" 50 (SB.resources pipe).Resource.luts

let test_sb_validation () =
  Alcotest.(check bool) "empty node" true
    (try
       ignore (SB.data_par ~name:"x" []);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad link arity" true
    (try
       ignore (SB.pipeline ~name:"x" ~link_bits:[ 1; 2; 3 ] [ mk_leaf "a"; mk_leaf "b" ]);
       false
     with Invalid_argument _ -> true)

let test_sb_validate_dp_shape () =
  let bad =
    SB.Node
      {
        SB.nname = "dp";
        composition = SB.Data_parallel;
        children = [ mk_leaf ~m:"x" "a"; mk_leaf ~m:"y" "b" ];
        link_bits = [];
        nrole = SB.Data;
      }
  in
  Alcotest.(check bool) "catches shape mismatch" true (SB.validate bad <> [])

let test_sb_equal_shape () =
  let a = SB.data_par ~name:"a" [ mk_leaf ~m:"x" "1"; mk_leaf ~m:"x" "2" ] in
  let b = SB.data_par ~name:"b" [ mk_leaf ~m:"x" "other"; mk_leaf ~m:"x" "names" ] in
  Alcotest.(check bool) "equal up to names" true (SB.equal_shape a b);
  let c = SB.data_par ~name:"c" [ mk_leaf ~m:"y" "1"; mk_leaf ~m:"y" "2" ] in
  Alcotest.(check bool) "module matters" false (SB.equal_shape a c)

let test_sb_pp () =
  let t = SB.pipeline ~name:"p" [ mk_leaf "a"; SB.data_par ~name:"d" [ mk_leaf "b" ] ] in
  let s = Format.asprintf "%a" SB.pp t in
  Alcotest.(check bool) "mentions PIPE" true
    (String.length s > 0
    &&
    let contains needle =
      let nh = String.length s and nn = String.length needle in
      let rec at i = i + nn <= nh && (String.sub s i nn = needle || at (i + 1)) in
      at 0
    in
    contains "PIPE" && contains "DP")

(* ---------------- Patterns ---------------- *)

let test_pattern_replicate () =
  let t = Pattern.replicate ~name:"r" 4 (mk_leaf "x") in
  Alcotest.(check int) "4 leaves" 4 (List.length (SB.leaves t));
  Alcotest.(check (list string)) "valid" [] (SB.validate t)

let test_pattern_reduction () =
  (* fan_in 2, 3 levels: stages of 4, 2, 1 reducers. *)
  let t =
    Pattern.reduction ~name:"red" ~fan_in:2 ~levels:3 (fun ~level:_ ~index:_ ->
        mk_leaf ~m:"red_unit" "u")
  in
  Alcotest.(check int) "7 leaves" 7 (List.length (SB.leaves t));
  Alcotest.(check int) "pipe at top" 1 (SB.count_composition t SB.Pipeline);
  Alcotest.(check int) "2 dp stages" 2 (SB.count_composition t SB.Data_parallel);
  Alcotest.(check (list string)) "valid" [] (SB.validate t)

let test_pattern_map_pipeline () =
  let t = Pattern.map_pipeline ~name:"mp" ~ways:3 [ mk_leaf "s1"; mk_leaf "s2" ] in
  Alcotest.(check int) "6 leaves" 6 (List.length (SB.leaves t));
  Alcotest.(check (list string)) "valid" [] (SB.validate t);
  match t with
  | SB.Node { SB.composition = SB.Data_parallel; _ } -> ()
  | _ -> Alcotest.fail "expected DP root"

(* ---------------- Decompose ---------------- *)

(* A small accelerator with marked control, two identical engine
   modules in data parallel, each a pipeline of two stages. *)
let small_accel_src =
  {|
(* control_path *)
module ctl (go);
  output go;
  wire gnext;
  mlv_reg r (.d(gnext), .q(go));
  mlv_const #(.VALUE(1)) c (.o(gnext));
endmodule

module stage_a (x, o);
  input [7:0] x;
  output [7:0] o;
  mlv_add g (.a(x), .b(x), .o(o));
endmodule

module stage_b (x, o);
  input [7:0] x;
  output [7:0] o;
  mlv_reg g (.d(x), .q(o));
endmodule

module lane (x, o);
  input [7:0] x;
  output [7:0] o;
  wire [7:0] t;
  stage_a sa (.x(x), .o(t));
  stage_b sb (.x(t), .o(o));
endmodule

module accel_top (x0, x1, o0, o1);
  input [7:0] x0;
  input [7:0] x1;
  output [7:0] o0;
  output [7:0] o1;
  wire go;
  ctl c (.go(go));
  lane l0 (.x(x0), .o(o0));
  lane l1 (.x(x1), .o(o1));
endmodule
|}

let decompose_ok ?config src top =
  match Decompose.run ?config (parse_ok src) ~top with
  | Ok r -> r
  | Error e -> Alcotest.failf "decompose failed: %s" e

let test_decompose_small_accel () =
  let r = decompose_ok small_accel_src "accel_top" in
  Alcotest.(check (list string)) "data tree valid" [] (SB.validate r.Decompose.data);
  (* Expect DP(2 x pipeline[stage_a, stage_b]). *)
  (match r.Decompose.data with
  | SB.Node { SB.composition = SB.Data_parallel; children = [ a; b ]; _ } ->
    Alcotest.(check bool) "children equal" true (SB.equal_shape a b);
    (match a with
    | SB.Node { SB.composition = SB.Pipeline; children = [ _; _ ]; _ } -> ()
    | _ -> Alcotest.fail "expected 2-stage pipeline per lane")
  | other ->
    Alcotest.failf "expected DP root, got %s" (Format.asprintf "%a" SB.pp other));
  Alcotest.(check int) "stats dp" 1 r.Decompose.stats.Decompose.dp_groups;
  Alcotest.(check int) "stats pipe" 2 r.Decompose.stats.Decompose.pipe_groups

let test_decompose_control_split () =
  let r = decompose_ok small_accel_src "accel_top" in
  let ctl_leaves = SB.leaves r.Decompose.control in
  Alcotest.(check bool) "control nonempty" true (ctl_leaves <> []);
  List.iter
    (fun (l : SB.leaf) ->
      Alcotest.(check bool) "role control" true (l.SB.lrole = SB.Control))
    ctl_leaves

let test_decompose_no_control_error () =
  let src =
    {|
module only_data (x, o);
  input [3:0] x;
  output [3:0] o;
  mlv_not g (.a(x), .o(o));
endmodule
|}
  in
  match Decompose.run (parse_ok src) ~top:"only_data" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected missing-control error"

let test_decompose_control_by_name () =
  (* Same design, but the control module is named via config instead
     of the attribute. *)
  let src = String.concat "\n" (List.tl (String.split_on_char '\n' small_accel_src)) in
  (* dropped the attribute line *)
  let config =
    { Decompose.default_config with Decompose.control_modules = [ "ctl" ] }
  in
  let r = decompose_ok ~config src "accel_top" in
  Alcotest.(check bool) "data root is DP" true
    (match r.Decompose.data with
    | SB.Node { SB.composition = SB.Data_parallel; _ } -> true
    | _ -> false)

let test_decompose_unknown_top () =
  match Decompose.run (parse_ok small_accel_src) ~top:"ghost" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected unknown-top error"

let test_decompose_eqcheck_different_names () =
  (* Two lanes implemented by differently-named but equivalent
     modules: inter-block data parallelism must still fire (via the
     equivalence checker). *)
  let src =
    {|
(* control_path *)
module ctl (go);
  output go;
  wire n;
  mlv_const #(.VALUE(1)) c (.o(n));
  mlv_reg r (.d(n), .q(go));
endmodule

module lane_one (x, o);
  input [7:0] x;
  output [7:0] o;
  wire [7:0] t;
  mlv_add g1 (.a(x), .b(x), .o(t));
  mlv_reg g2 (.d(t), .q(o));
endmodule

module lane_two (p, q);
  input [7:0] p;
  output [7:0] q;
  wire [7:0] w;
  mlv_add u1 (.a(p), .b(p), .o(w));
  mlv_reg u2 (.d(w), .q(q));
endmodule

module top2 (x0, x1, o0, o1);
  input [7:0] x0;
  input [7:0] x1;
  output [7:0] o0;
  output [7:0] o1;
  wire go;
  ctl c (.go(go));
  lane_one l0 (.x(x0), .o(o0));
  lane_two l1 (.p(x1), .q(o1));
endmodule
|}
  in
  let r = decompose_ok src "top2" in
  (match r.Decompose.data with
  | SB.Node { SB.composition = SB.Data_parallel; children = [ _; _ ]; _ } -> ()
  | other -> Alcotest.failf "expected DP of 2, got %s" (Format.asprintf "%a" SB.pp other));
  Alcotest.(check bool) "eq checks ran" true (r.Decompose.stats.Decompose.eq_checks > 0)

let test_decompose_intra_block_lanes () =
  (* One basic module containing two independent identical cones:
     step 2 must split it. *)
  let src =
    {|
(* control_path *)
module ctl (go);
  output go;
  wire n;
  mlv_const #(.VALUE(1)) c (.o(n));
  mlv_reg r (.d(n), .q(go));
endmodule

module simd2 (x0, x1, o0, o1);
  input [7:0] x0;
  input [7:0] x1;
  output [7:0] o0;
  output [7:0] o1;
  wire [7:0] t0;
  wire [7:0] t1;
  mlv_add a0 (.a(x0), .b(x0), .o(t0));
  mlv_reg r0 (.d(t0), .q(o0));
  mlv_add a1 (.a(x1), .b(x1), .o(t1));
  mlv_reg r1 (.d(t1), .q(o1));
endmodule

module top3 (x0, x1, o0, o1);
  input [7:0] x0;
  input [7:0] x1;
  output [7:0] o0;
  output [7:0] o1;
  wire go;
  ctl c (.go(go));
  simd2 s (.x0(x0), .x1(x1), .o0(o0), .o1(o1));
endmodule
|}
  in
  let r = decompose_ok src "top3" in
  match r.Decompose.data with
  | SB.Node { SB.composition = SB.Data_parallel; children = [ _; _ ]; _ } -> ()
  | other ->
    Alcotest.failf "expected intra-block DP of 2, got %s"
      (Format.asprintf "%a" SB.pp other)

let test_decompose_intra_disabled () =
  let src =
    {|
(* control_path *)
module ctl (go);
  output go;
  wire n;
  mlv_const #(.VALUE(1)) c (.o(n));
  mlv_reg r (.d(n), .q(go));
endmodule

module simd2 (x0, x1, o0, o1);
  input [7:0] x0;
  input [7:0] x1;
  output [7:0] o0;
  output [7:0] o1;
  mlv_not n0 (.a(x0), .o(o0));
  mlv_not n1 (.a(x1), .o(o1));
endmodule

module top4 (x0, x1, o0, o1);
  input [7:0] x0;
  input [7:0] x1;
  output [7:0] o0;
  output [7:0] o1;
  wire go;
  ctl c (.go(go));
  simd2 s (.x0(x0), .x1(x1), .o0(o0), .o1(o1));
endmodule
|}
  in
  let config = { Decompose.default_config with Decompose.enable_intra = false } in
  let r = decompose_ok ~config src "top4" in
  match r.Decompose.data with
  | SB.Leaf _ -> ()
  | other ->
    Alcotest.failf "expected plain leaf with intra disabled, got %s"
      (Format.asprintf "%a" SB.pp other)

let npu_result =
  lazy
    (match Framework.build_npu ~tiles:6 () with
    | Ok npu -> npu
    | Error e -> failwith e)

let test_decompose_npu_shape () =
  let npu = Lazy.force npu_result in
  let data = npu.Framework.decomposed.Decompose.data in
  Alcotest.(check (list string)) "valid" [] (SB.validate data);
  (* Fig. 9: root DP over engines, each engine a pipeline whose first
     stage is the DP of dot units. *)
  match data with
  | SB.Node { SB.composition = SB.Data_parallel; children; _ } ->
    Alcotest.(check int) "6 engines" 6 (List.length children);
    (match List.hd children with
    | SB.Node { SB.composition = SB.Pipeline; children = stages; _ } ->
      Alcotest.(check int) "3 stages" 3 (List.length stages);
      (match List.hd stages with
      | SB.Node { SB.composition = SB.Data_parallel; children = dots; _ } ->
        Alcotest.(check int) "16 dot units" 16 (List.length dots)
      | _ -> Alcotest.fail "expected DP of dot units")
    | _ -> Alcotest.fail "expected engine pipeline")
  | _ -> Alcotest.fail "expected DP root"

(* ---------------- Partition ---------------- *)

let test_partition_dp_even_split () =
  let t = Pattern.replicate ~name:"dp" 5 (mk_leaf ~m:"e" "e") in
  match Partition.bisect t with
  | Some (a, b, cut) ->
    Alcotest.(check int) "left 3" 3 (List.length (SB.leaves a));
    Alcotest.(check int) "right 2" 2 (List.length (SB.leaves b));
    Alcotest.(check int) "free cut" 0 cut
  | None -> Alcotest.fail "expected split"

let test_partition_pipeline_min_cut () =
  let t =
    SB.pipeline ~name:"p" ~link_bits:[ 64; 8; 128 ]
      [ mk_leaf "a"; mk_leaf "b"; mk_leaf "c"; mk_leaf "d" ]
  in
  match Partition.bisect t with
  | Some (a, b, cut) ->
    Alcotest.(check int) "cut at min" 8 cut;
    Alcotest.(check int) "left ab" 2 (List.length (SB.leaves a));
    Alcotest.(check int) "right cd" 2 (List.length (SB.leaves b))
  | None -> Alcotest.fail "expected split"

let test_partition_leaf_atomic () =
  Alcotest.(check bool) "leaf" true (Partition.bisect (mk_leaf "x") = None);
  let singleton = SB.data_par ~name:"d" [ mk_leaf "x" ] in
  Alcotest.(check bool) "singleton" true (Partition.bisect singleton = None)

let test_partition_levels () =
  let t = Pattern.replicate ~name:"dp" 8 (mk_leaf ~m:"e" "e") in
  let levels = Partition.run t ~iterations:2 in
  Alcotest.(check int) "3 levels" 3 (List.length levels);
  Alcotest.(check (list int)) "piece counts" [ 1; 2; 4 ]
    (List.map List.length levels);
  (* leaves conserved at every level *)
  List.iter
    (fun pieces ->
      let total =
        List.fold_left
          (fun acc (p : Partition.piece) -> acc + List.length (SB.leaves p.Partition.tree))
          0 pieces
      in
      Alcotest.(check int) "leaves conserved" 8 total)
    levels

let test_partition_exhausts () =
  (* 2 replicas: level 2 cannot split further; piece count stays 2. *)
  let t = Pattern.replicate ~name:"dp" 2 (mk_leaf ~m:"e" "e") in
  let levels = Partition.run t ~iterations:3 in
  Alcotest.(check (list int)) "saturates" [ 1; 2; 2; 2 ] (List.map List.length levels)

let test_partition_naive_cuts_pipelines () =
  (* The naive split cuts a DP of pipelines down the middle of
     replicas' pipelines; the pattern-aware one never does. *)
  let t = Pattern.map_pipeline ~name:"mp" ~ways:3 [ mk_leaf ~m:"s1" "a"; mk_leaf ~m:"s2" "b" ] in
  (match Partition.bisect t with
  | Some (a, b, _) ->
    (* pattern-aware: each side holds whole pipelines *)
    Alcotest.(check int) "left leaves even" 4 (List.length (SB.leaves a));
    Alcotest.(check int) "right leaves" 2 (List.length (SB.leaves b))
  | None -> Alcotest.fail "expected split");
  match Partition.naive_bisect t with
  | Some (_, _, cut) -> Alcotest.(check bool) "naive pays bandwidth" true (cut > 0)
  | None -> Alcotest.fail "expected naive split"

(* ---------------- Mapping / registry ---------------- *)

let test_mapping_npu_levels () =
  let npu = Lazy.force npu_result in
  let m = npu.Framework.mapping in
  Alcotest.(check int) "3 levels" 3 (List.length m.Mapping.levels);
  let l0 = List.hd m.Mapping.levels in
  Alcotest.(check int) "level0 one piece" 1 (List.length l0);
  let p0 = List.hd l0 in
  Alcotest.(check int) "6 tiles" 6 p0.Mapping.tiles;
  Alcotest.(check bool) "control rides piece 0" true p0.Mapping.includes_control;
  Alcotest.(check bool) "both devices feasible" true
    (List.length p0.Mapping.bitstreams = 2)

let test_mapping_infeasible_large () =
  (* 32 tiles fit no single device: level 0 must have no bitstreams,
     level 1 pieces must. *)
  match Framework.build_npu ~tiles:32 () with
  | Error e -> Alcotest.fail e
  | Ok npu ->
    let levels = npu.Framework.mapping.Mapping.levels in
    let l0 = List.hd levels in
    Alcotest.(check (list string)) "level0 infeasible" []
      (List.concat_map
         (fun (p : Mapping.compiled_piece) ->
           List.map (fun (k, _) -> Device.kind_name k) p.Mapping.bitstreams)
         l0);
    let l1 = List.nth levels 1 in
    Alcotest.(check bool) "level1 feasible" true
      (List.for_all (fun (p : Mapping.compiled_piece) -> p.Mapping.bitstreams <> []) l1)

let test_registry () =
  let npu = Lazy.force npu_result in
  let r = Registry.create () in
  Registry.register r npu.Framework.mapping;
  Alcotest.(check (list string)) "names" [ "npu-t6" ] (Registry.names r);
  Alcotest.(check bool) "find" true (Registry.find r "npu-t6" <> None);
  Alcotest.(check bool) "missing" true (Registry.find r "ghost" = None);
  let opts = Registry.deployment_options r "npu-t6" in
  Alcotest.(check bool) "fewest first" true
    (List.length (List.hd opts) <= List.length (List.nth opts 1))

(* ---------------- Runtime ---------------- *)

let runtime_fixture policy =
  let npu = Lazy.force npu_result in
  let registry = Registry.create () in
  Registry.register registry npu.Framework.mapping;
  let cluster = Cluster.create () in
  (Runtime.create ~policy cluster registry, cluster)

let test_runtime_greedy_deploys () =
  let rt, cluster = runtime_fixture Runtime.greedy in
  match Runtime.deploy rt ~accel:"npu-t6" with
  | Error e -> Alcotest.fail e
  | Ok d ->
    Alcotest.(check int) "single node" 1 (List.length (Runtime.nodes_used d));
    Alcotest.(check int) "6 tiles" 6 (Runtime.tiles_deployed d);
    Alcotest.(check bool) "reconfig > 0" true (d.Runtime.reconfig_us > 0.0);
    Alcotest.(check bool) "blocks allocated" true (Cluster.total_free_vbs cluster < 55);
    Runtime.undeploy rt d;
    Alcotest.(check int) "all freed" 55 (Cluster.total_free_vbs cluster)

let test_runtime_sharing () =
  (* Greedy spatial sharing: several 6-tile instances coexist; the
     baseline policy fits exactly one per device. *)
  let rt, _ = runtime_fixture Runtime.greedy in
  let count = ref 0 in
  let rec go () =
    match Runtime.deploy rt ~accel:"npu-t6" with
    | Ok _ ->
      incr count;
      if !count < 20 then go ()
    | Error _ -> ()
  in
  go ();
  (* 6-tile piece: 3 engine blocks + 3 control = 6 VBs; two fit per
     XCVU37P (15 VBs) and one on the XCKU115 => 7 concurrent. *)
  Alcotest.(check bool) (Printf.sprintf "many instances (%d)" !count) true (!count >= 7);
  let rt_base, _ = runtime_fixture Runtime.baseline in
  let count_base = ref 0 in
  let rec go2 () =
    match Runtime.deploy rt_base ~accel:"npu-t6" with
    | Ok _ ->
      incr count_base;
      if !count_base < 20 then go2 ()
    | Error _ -> ()
  in
  go2 ();
  Alcotest.(check int) "baseline: one per device" 4 !count_base;
  Alcotest.(check bool) "sharing beats baseline" true (!count > !count_base)

let test_runtime_multi_fpga () =
  (* npu-t32 fits no single device; greedy spans two. *)
  match Framework.build_npu ~tiles:32 () with
  | Error e -> Alcotest.fail e
  | Ok npu ->
    let registry = Registry.create () in
    Registry.register registry npu.Framework.mapping;
    let cluster = Cluster.create () in
    let rt = Runtime.create ~policy:Runtime.greedy cluster registry in
    (match Runtime.deploy rt ~accel:"npu-t32" with
    | Error e -> Alcotest.fail e
    | Ok d ->
      Alcotest.(check int) "two nodes" 2 (List.length (Runtime.nodes_used d));
      Alcotest.(check int) "32 tiles" 32 (Runtime.tiles_deployed d));
    (* the baseline policy cannot place it at all *)
    let rt_base = Runtime.create ~policy:Runtime.baseline (Cluster.create ()) registry in
    (match Runtime.deploy rt_base ~accel:"npu-t32" with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "baseline should fail on multi-FPGA accel")

let test_runtime_restricted_same_type () =
  match Framework.build_npu ~tiles:32 () with
  | Error e -> Alcotest.fail e
  | Ok npu ->
    let registry = Registry.create () in
    Registry.register registry npu.Framework.mapping;
    let cluster = Cluster.create () in
    let rt = Runtime.create ~policy:Runtime.restricted cluster registry in
    (match Runtime.deploy rt ~accel:"npu-t32" with
    | Error e -> Alcotest.fail e
    | Ok d ->
      let kinds =
        Runtime.nodes_used d
        |> List.map (fun i -> (Cluster.node cluster i).Mlv_cluster.Node.kind)
        |> List.sort_uniq compare
      in
      Alcotest.(check int) "single device type" 1 (List.length kinds))

let test_runtime_unknown_accel () =
  let rt, _ = runtime_fixture Runtime.greedy in
  match Runtime.deploy rt ~accel:"ghost" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected unknown accel error"

let test_runtime_exhaustion_and_recovery () =
  let rt, cluster = runtime_fixture Runtime.greedy in
  let deployments = ref [] in
  let rec fill () =
    match Runtime.deploy rt ~accel:"npu-t6" with
    | Ok d ->
      deployments := d :: !deployments;
      fill ()
    | Error _ -> ()
  in
  fill ();
  Alcotest.(check bool) "eventually exhausted" true (!deployments <> []);
  (match Runtime.deploy rt ~accel:"npu-t6" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "should be exhausted");
  List.iter (Runtime.undeploy rt) !deployments;
  Alcotest.(check int) "recovered" 55 (Cluster.total_free_vbs cluster);
  match Runtime.deploy rt ~accel:"npu-t6" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "deploy after recovery failed: %s" e

(* ---------------- Scale-out ---------------- *)

let test_scale_out_generate_valid () =
  List.iter
    (fun kind ->
      let p, lay =
        Scale_out.generate kind ~hidden:32 ~input:32 ~timesteps:3 ~parts:2 ~part:0
      in
      Alcotest.(check (list string)) "valid" [] (Program.validate p);
      Alcotest.(check int) "slice" 16 lay.Scale_out.slice)
    [ Codegen.Lstm; Codegen.Gru ]

let test_scale_out_validation () =
  Alcotest.(check bool) "parts < 2" true
    (try
       ignore (Scale_out.generate Codegen.Lstm ~hidden:32 ~input:32 ~timesteps:1 ~parts:1 ~part:0);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "indivisible" true
    (try
       ignore (Scale_out.generate Codegen.Lstm ~hidden:33 ~input:33 ~timesteps:1 ~parts:2 ~part:0);
       false
     with Invalid_argument _ -> true)

let check_scale_out_matches_golden ?(reorder = false) ?(parts = 2) kind =
  let hidden = 24 and input = 24 and timesteps = 4 in
  let _, full_lay = Codegen.generate kind ~hidden ~input ~timesteps in
  let rng = Rng.create 99 in
  let full_dram = Codegen.init_dram ~rng full_lay in
  let golden = Codegen.golden full_lay (Array.copy full_dram) in
  let gen part = Scale_out.generate kind ~hidden ~input ~timesteps ~parts ~part in
  let progs =
    Array.init parts (fun part ->
        let p, lay = gen part in
        if reorder then Scale_out.reorder ~sync_base:lay.Scale_out.sync_base p else p)
  in
  let lays = Array.init parts (fun part -> snd (gen part)) in
  let drams =
    Array.map (fun lay -> Scale_out.init_part_dram ~full_layout:full_lay ~full_dram lay) lays
  in
  let _ = Scale_out.run_parts ~exact:true progs lays ~drams ~max_steps:1_000_000 in
  Array.iteri
    (fun part lay ->
      let slice =
        Array.sub drams.(part)
          (lay.Scale_out.h_out_base + ((timesteps - 1) * lay.Scale_out.slice))
          lay.Scale_out.slice
      in
      Array.iteri
        (fun i v ->
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "part %d h[%d]" part i)
            golden.(timesteps - 1).((part * lay.Scale_out.slice) + i)
            v)
        slice)
    lays

let test_scale_out_lstm_golden () = check_scale_out_matches_golden Codegen.Lstm
let test_scale_out_gru_golden () = check_scale_out_matches_golden Codegen.Gru

let test_scale_out_reordered_golden () =
  check_scale_out_matches_golden ~reorder:true Codegen.Lstm;
  check_scale_out_matches_golden ~reorder:true Codegen.Gru

let test_scale_out_four_parts () =
  check_scale_out_matches_golden ~parts:4 Codegen.Lstm

let test_reorder_sinks_reads () =
  let p, lay =
    Scale_out.generate Codegen.Lstm ~hidden:16 ~input:16 ~timesteps:2 ~parts:2 ~part:0
  in
  let r = Scale_out.reorder ~sync_base:lay.Scale_out.sync_base p in
  Alcotest.(check int) "same length" (Program.length p) (Program.length r);
  (* After the step-0 sync read, the original program has step 1's
     input-side MVMs; the reordered one must have hoisted them before
     the read. *)
  let instrs = r.Program.instrs in
  let read_idx = ref (-1) in
  Array.iteri
    (fun i instr ->
      match instr with
      | Instr.V_rd { addr; _ } when addr >= lay.Scale_out.sync_base && !read_idx < 0 ->
        read_idx := i
      | _ -> ())
    instrs;
  Alcotest.(check bool) "found first sync read" true (!read_idx >= 0);
  (* Count MVMs before the first sync read: the 8 of step 0 plus the
     4 hoisted input-side MVMs of step 1. *)
  let mvms_before = ref 0 in
  Array.iteri
    (fun i instr -> if i < !read_idx then match instr with Instr.Mvm _ -> incr mvms_before | _ -> ())
    instrs;
  Alcotest.(check int) "hoisted Wx" 12 !mvms_before

let test_two_fpga_latency_shapes () =
  let dev = Device.get Device.XCVU37P in
  let cfg = Mlv_accel.Config.make ~tiles:10 () in
  let lat ~reordered added =
    Scale_out.two_fpga_latency_us ~config:cfg ~device:dev ~added_latency_us:added
      ~reordered Codegen.Lstm ~hidden:1024 ~input:1024 ~timesteps:20
  in
  (* Fig. 11: LSTM hides the added latency when reordered. *)
  let flat = lat ~reordered:true 1.0 /. lat ~reordered:true 0.0 in
  Alcotest.(check bool) (Printf.sprintf "LSTM flat (%.3f)" flat) true (flat < 1.05);
  (* Without reordering the latency grows. *)
  Alcotest.(check bool) "unreordered grows" true
    (lat ~reordered:false 1.0 > 1.15 *. lat ~reordered:false 0.0);
  (* Reordering never hurts. *)
  Alcotest.(check bool) "reorder helps" true (lat ~reordered:true 0.6 <= lat ~reordered:false 0.6)

let test_two_fpga_gru_crossover () =
  let dev = Device.get Device.XCVU37P in
  let cfg = Mlv_accel.Config.make ~tiles:10 () in
  let lat added =
    Scale_out.two_fpga_latency_us ~config:cfg ~device:dev ~added_latency_us:added
      ~reordered:true Codegen.Gru ~hidden:1024 ~input:1024 ~timesteps:20
  in
  (* GRU h=1024 hides up to ~0.6us, then the latency grows (paper
     Fig. 11). *)
  Alcotest.(check bool) "hidden at 0.2" true (lat 0.2 < 1.05 *. lat 0.0);
  Alcotest.(check bool) "exposed at 1.2" true (lat 1.2 > 1.15 *. lat 0.0)

(* Property: reordering preserves program semantics (co-simulated
   final state matches) for random small shapes. *)
let prop_reorder_semantics =
  QCheck.Test.make ~name:"reorder preserves semantics" ~count:8
    QCheck.(pair (int_range 1 3) bool)
    (fun (timesteps, is_gru) ->
      let kind = if is_gru then Codegen.Gru else Codegen.Lstm in
      let hidden = 16 and input = 16 and parts = 2 in
      let _, full_lay = Codegen.generate kind ~hidden ~input ~timesteps in
      let rng = Rng.create (timesteps * 31) in
      let full_dram = Codegen.init_dram ~rng full_lay in
      let run reorder =
        let gen part = Scale_out.generate kind ~hidden ~input ~timesteps ~parts ~part in
        let progs =
          Array.init parts (fun part ->
              let p, lay = gen part in
              if reorder then Scale_out.reorder ~sync_base:lay.Scale_out.sync_base p else p)
        in
        let lays = Array.init parts (fun part -> snd (gen part)) in
        let drams =
          Array.map
            (fun lay -> Scale_out.init_part_dram ~full_layout:full_lay ~full_dram lay)
            lays
        in
        let _ = Scale_out.run_parts ~exact:true progs lays ~drams ~max_steps:1_000_000 in
        Array.map Array.copy drams
      in
      run false = run true)


(* ---------------- Runtime stats / hypervisor ---------------- *)

let test_runtime_stats () =
  let rt, _ = runtime_fixture Runtime.greedy in
  let s0 = Runtime.stats rt in
  Alcotest.(check int) "nothing live" 0 s0.Runtime.live;
  Alcotest.(check int) "55 total" 55 s0.Runtime.vbs_total;
  Alcotest.(check (float 1e-9)) "zero util" 0.0 (Runtime.cluster_utilization rt);
  match Runtime.deploy rt ~accel:"npu-t6" with
  | Error e -> Alcotest.fail e
  | Ok d ->
    let s1 = Runtime.stats rt in
    Alcotest.(check int) "one live" 1 s1.Runtime.live;
    Alcotest.(check bool) "blocks used" true (s1.Runtime.vbs_used > 0);
    Runtime.undeploy rt d;
    Alcotest.(check int) "freed" 0 (Runtime.stats rt).Runtime.vbs_used

let test_hypervisor_protocol () =
  let rt, _ = runtime_fixture Runtime.greedy in
  let h = Hypervisor.create rt in
  let starts_with prefix s =
    String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix
  in
  Alcotest.(check string) "list" "ok npu-t6" (Hypervisor.handle h "list");
  let resp = Hypervisor.handle h "deploy npu-t6" in
  Alcotest.(check bool) ("deploy: " ^ resp) true (starts_with "ok id=0" resp);
  Alcotest.(check int) "one handle" 1 (List.length (Hypervisor.live_handles h));
  Alcotest.(check bool) "status live=1" true
    (starts_with "ok live=1" (Hypervisor.handle h "status"));
  Alcotest.(check bool) "deployments lists it" true
    (starts_with "ok 0:npu-t6" (Hypervisor.handle h "deployments"));
  Alcotest.(check string) "undeploy" "ok" (Hypervisor.handle h "undeploy 0");
  Alcotest.(check bool) "status empty" true
    (starts_with "ok live=0" (Hypervisor.handle h "status"));
  (* error paths *)
  Alcotest.(check bool) "unknown accel" true
    (starts_with "error" (Hypervisor.handle h "deploy ghost"));
  Alcotest.(check bool) "bad id" true
    (starts_with "error" (Hypervisor.handle h "undeploy zz"));
  Alcotest.(check bool) "unknown id" true
    (starts_with "error" (Hypervisor.handle h "undeploy 99"));
  Alcotest.(check bool) "bad command" true
    (starts_with "error" (Hypervisor.handle h "frobnicate"));
  Alcotest.(check bool) "empty" true (starts_with "error" (Hypervisor.handle h "  "));
  Alcotest.(check bool) "help" true (starts_with "ok" (Hypervisor.handle h "help"));
  Alcotest.(check string) "rebalance empty" "ok moved=0" (Hypervisor.handle h "rebalance")

let test_multi_fpga_latency_parts () =
  let dev = Device.get Device.XCVU37P in
  let cfg = Mlv_accel.Config.make ~tiles:10 () in
  let lat parts =
    Scale_out.multi_fpga_latency_us ~parts ~config:cfg ~device:dev
      ~added_latency_us:0.0 ~reordered:true Codegen.Lstm ~hidden:1024 ~input:1024
      ~timesteps:10
  in
  (* more parts -> more transfer volume and hops; with fixed per-part
     compute the latency should not improve *)
  Alcotest.(check bool) "4 parts costs more transfer" true (lat 4 >= lat 2 *. 0.9);
  Alcotest.(check (float 1e-9)) "wrapper consistent" (lat 2)
    (Scale_out.two_fpga_latency_us ~config:cfg ~device:dev ~added_latency_us:0.0
       ~reordered:true Codegen.Lstm ~hidden:1024 ~input:1024 ~timesteps:10)


(* ---------------- Top-down flow ---------------- *)

let test_top_down_small_accel () =
  let design = parse_ok small_accel_src in
  match Top_down.run design ~top:"accel_top" with
  | Error e -> Alcotest.failf "top-down failed: %s" e
  | Ok r -> (
    Alcotest.(check (list string)) "valid" [] (SB.validate r.Decompose.data);
    match r.Decompose.data with
    | SB.Node { SB.composition = SB.Data_parallel; children = [ _; _ ]; _ } -> ()
    | other ->
      Alcotest.failf "expected DP of 2, got %s" (Format.asprintf "%a" SB.pp other))

let test_top_down_matches_bottom_up () =
  (* The paper's two flows must extract the same tree shape on the
     case-study accelerator. *)
  let npu = Lazy.force npu_result in
  match
    Top_down.run ~config:Framework.decompose_config npu.Framework.design ~top:"bw_npu"
  with
  | Error e -> Alcotest.failf "top-down failed: %s" e
  | Ok td ->
    Alcotest.(check bool) "same shape" true
      (SB.equal_shape npu.Framework.decomposed.Decompose.data td.Decompose.data)

let test_top_down_no_control_error () =
  let src =
    {|
module only_data (x, o);
  input [3:0] x;
  output [3:0] o;
  mlv_not g (.a(x), .o(o));
endmodule
|}
  in
  match Top_down.run (parse_ok src) ~top:"only_data" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected missing-control error"

let test_to_dot () =
  let t =
    SB.pipeline ~name:"p" ~link_bits:[ 64 ]
      [ mk_leaf "a"; SB.data_par ~name:"d" [ mk_leaf "b"; mk_leaf "b2" ] ]
  in
  let dot = SB.to_dot t in
  let contains needle =
    let nh = String.length dot and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub dot i nn = needle || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "digraph" true (contains "digraph");
  Alcotest.(check bool) "has DP" true (contains "DP d");
  Alcotest.(check bool) "has PIPE" true (contains "PIPE p");
  Alcotest.(check bool) "has bandwidth" true (contains "64 b");
  Alcotest.(check bool) "closes" true (contains "}")


let test_runtime_rebalance_defragments () =
  (* Fill the cluster with small instances, free alternating ones to
     fragment it, and show a large instance only fits after
     rebalancing. *)
  let npu6 = Lazy.force npu_result in
  let registry = Registry.create () in
  Registry.register registry npu6.Framework.mapping;
  (match Framework.build_npu ~tiles:21 () with
  | Ok npu21 -> Registry.register registry npu21.Framework.mapping
  | Error e -> Alcotest.fail e);
  let cluster = Cluster.create () in
  let rt = Runtime.create ~policy:Runtime.greedy cluster registry in
  let small = ref [] in
  for _ = 1 to 7 do
    match Runtime.deploy rt ~accel:"npu-t6" with
    | Ok d -> small := d :: !small
    | Error e -> Alcotest.failf "fill failed: %s" e
  done;
  Alcotest.(check int) "seven small instances" 7 (List.length !small);
  (* free one instance on each XCVU37P *)
  let on_node n d = Runtime.nodes_used d = [ n ] in
  List.iter
    (fun node ->
      match List.find_opt (on_node node) !small with
      | Some d ->
        Runtime.undeploy rt d;
        small := List.filter (fun x -> x != d) !small
      | None -> Alcotest.failf "no small instance on node %d" node)
    [ 0; 1; 2 ];
  (* Fragmented: no device has the 14 blocks npu-t21 wants, so the
     runtime is forced into a multi-FPGA split (paying inter-FPGA
     overhead). *)
  (match Runtime.deploy rt ~accel:"npu-t21" with
  | Ok d ->
    Alcotest.(check bool) "forced multi-node" true
      (List.length (Runtime.nodes_used d) >= 2);
    Runtime.undeploy rt d
  | Error _ -> () (* also acceptable: nothing fits at all *));
  (match Runtime.rebalance rt with
  | Ok moved -> Alcotest.(check bool) "something moved" true (moved > 0)
  | Error e -> Alcotest.failf "rebalance failed: %s" e);
  match Runtime.deploy rt ~accel:"npu-t21" with
  | Ok d ->
    Alcotest.(check int) "single node after defrag" 1
      (List.length (Runtime.nodes_used d))
  | Error e -> Alcotest.failf "still cannot place after rebalance: %s" e

let test_runtime_rebalance_empty () =
  let rt, _ = runtime_fixture Runtime.greedy in
  match Runtime.rebalance rt with
  | Ok moved -> Alcotest.(check int) "nothing to move" 0 moved
  | Error e -> Alcotest.fail e

let per_node_free rt =
  List.map
    (fun (node, used, total) -> (node, total - used))
    (Runtime.stats rt).Runtime.per_node

let test_runtime_rebalance_rollback () =
  (* When a redeploy inside rebalance fails, every torn-down placement
     must be restored with the controllers' free-block counts exactly
     where they started. *)
  let rt, cluster = runtime_fixture Runtime.greedy in
  let ds =
    List.init 3 (fun _ ->
        match Runtime.deploy rt ~accel:"npu-t6" with
        | Ok d -> d
        | Error e -> Alcotest.failf "deploy failed: %s" e)
  in
  let free_before = per_node_free rt in
  let nodes_before = List.map Runtime.nodes_used ds in
  (* make every redeploy fail mid-rebalance *)
  Registry.remove (Runtime.registry rt) "npu-t6";
  (match Runtime.rebalance rt with
  | Ok _ -> Alcotest.fail "rebalance should fail with the accel unregistered"
  | Error _ -> ());
  Alcotest.(check (list (pair int int))) "free blocks restored exactly" free_before
    (per_node_free rt);
  Alcotest.(check int) "deployments survive" 3 (List.length (Runtime.deployments rt));
  List.iter2
    (fun d nodes ->
      Alcotest.(check (list int)) "placement back on original nodes" nodes
        (Runtime.nodes_used d))
    ds nodes_before;
  (* handles grafted by the rollback stay usable *)
  List.iter (Runtime.undeploy rt) ds;
  Alcotest.(check int) "all freed" 55 (Cluster.total_free_vbs cluster)

let test_runtime_failover_frees_exactly () =
  (* fail_node must fully release the victim's blocks and charge the
     destination nodes exactly the re-placed deployment's blocks. *)
  let rt, cluster = runtime_fixture Runtime.greedy in
  let d =
    match Runtime.deploy rt ~accel:"npu-t6" with
    | Ok d -> d
    | Error e -> Alcotest.failf "deploy failed: %s" e
  in
  let victim =
    match Runtime.nodes_used d with
    | [ n ] -> n
    | _ -> Alcotest.fail "expected single-node deployment"
  in
  let free_before = per_node_free rt in
  let f = Runtime.fail_node rt victim in
  Alcotest.(check int) "recovered" 1 f.Runtime.recovered;
  Alcotest.(check int) "nothing lost" 0 (List.length f.Runtime.lost);
  let free_after = per_node_free rt in
  let totals =
    List.map (fun (node, _, total) -> (node, total)) (Runtime.stats rt).Runtime.per_node
  in
  Alcotest.(check int) "victim fully free" (List.assoc victim totals)
    (List.assoc victim free_after);
  let placed_on node =
    List.fold_left
      (fun acc (p : Runtime.placement) ->
        if p.Runtime.node_id = node then
          acc + p.Runtime.bitstream.Mlv_vital.Bitstream.vbs
        else acc)
      0 d.Runtime.placements
  in
  List.iter
    (fun (node, before) ->
      if node <> victim then
        Alcotest.(check int)
          (Printf.sprintf "node %d free count" node)
          (before - placed_on node)
          (List.assoc node free_after))
    free_before;
  Runtime.undeploy rt d;
  Runtime.restore_node rt victim;
  Alcotest.(check int) "all freed" 55 (Cluster.total_free_vbs cluster)

let test_hypervisor_metrics_commands () =
  let rt, _ = runtime_fixture Runtime.greedy in
  let h = Hypervisor.create rt in
  let starts_with prefix s =
    String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix
  in
  Obs.reset ();
  ignore (Hypervisor.handle h "deploy npu-t6");
  Alcotest.(check bool) "metrics header" true
    (starts_with "ok counters=" (Hypervisor.handle h "metrics"));
  let json_resp = Hypervisor.handle h "metrics json" in
  Alcotest.(check bool) "json prefixed ok" true (starts_with "ok {" json_resp);
  let payload = String.sub json_resp 3 (String.length json_resp - 3) in
  Alcotest.(check bool) "valid json" true (Obs.Json.is_valid payload);
  let trace = Hypervisor.handle h "trace deploy" in
  Alcotest.(check bool) "trace matches deploy span" true
    (starts_with "ok matched=" trace && not (starts_with "ok matched=0" trace));
  Alcotest.(check string) "counters reset" "ok" (Hypervisor.handle h "counters reset");
  Alcotest.(check string) "trace empty after reset" "ok matched=0"
    (Hypervisor.handle h "trace deploy")

let test_hypervisor_timeline_and_top () =
  let rt, _ = runtime_fixture Runtime.greedy in
  let h = Hypervisor.create rt in
  let starts_with prefix s =
    String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix
  in
  Obs.reset ();
  Fun.protect
    ~finally:(fun () -> Obs.Trace.set_enabled false)
    (fun () ->
      Alcotest.(check bool) "timeline empty while disabled" true
        (starts_with "ok events=0 shown=0 dropped=0" (Hypervisor.handle h "timeline"));
      Alcotest.(check string) "timeline on" "ok tracing=on"
        (Hypervisor.handle h "timeline on");
      Obs.Trace.task Obs.Trace.Arrive 1 ~label:"npu-t6";
      Obs.Trace.mark ~node:0 "fault.crash";
      Alcotest.(check bool) "timeline shows events" true
        (starts_with "ok events=2 shown=2 dropped=0" (Hypervisor.handle h "timeline"));
      Alcotest.(check string) "timeline off" "ok tracing=off"
        (Hypervisor.handle h "timeline off");
      Alcotest.(check bool) "timeline usage" true
        (starts_with "error usage" (Hypervisor.handle h "timeline sideways"));
      (* top reads the labeled sysim series *)
      Obs.Counter.incr (Obs.Counter.get_labeled "sysim.tasks.completed" [ ("node", "0") ]);
      Obs.Histogram.observe
        (Obs.Histogram.get_labeled "sysim.task_sojourn_us" [ ("kind", "XCVU37P") ])
        100.0;
      let top = Hypervisor.handle h "top" in
      let contains needle hay =
        let nh = String.length hay and nn = String.length needle in
        let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
        at 0
      in
      Alcotest.(check bool) "top header" true (starts_with "ok nodes=" top);
      Alcotest.(check bool) "top names the kind" true (contains "kind XCVU37P" top);
      Alcotest.(check bool) "top counts node completions" true
        (contains "completed=1" top))


let test_npu_text_roundtrip () =
  (* Full artifact round-trip: generate the NPU, print it to the
     textual RTL subset, re-parse, and check the re-parsed design
     validates and decomposes to the same tree shape. *)
  let npu = Lazy.force npu_result in
  let text = Mlv_rtl.Printer.design_to_string npu.Framework.design in
  match Parser.parse_string text with
  | Error e -> Alcotest.failf "re-parse failed: %s" e
  | Ok design2 -> (
    Alcotest.(check (list string)) "re-parsed validates" [] (Design.validate design2);
    match Decompose.run ~config:Framework.decompose_config design2 ~top:"bw_npu" with
    | Error e -> Alcotest.failf "re-decompose failed: %s" e
    | Ok r2 ->
      Alcotest.(check bool) "same tree shape" true
        (SB.equal_shape npu.Framework.decomposed.Decompose.data r2.Decompose.data))


let test_decompose_with_simplify () =
  (* Decomposing with pre-simplification gives the same tree shape on
     the NPU (its generated RTL has no dead logic to remove, but the
     pass must at least be harmless). *)
  let npu = Lazy.force npu_result in
  let config = { Framework.decompose_config with Decompose.simplify = true } in
  match Decompose.run ~config npu.Framework.design ~top:"bw_npu" with
  | Error e -> Alcotest.failf "decompose with simplify failed: %s" e
  | Ok r ->
    Alcotest.(check bool) "same shape" true
      (SB.equal_shape npu.Framework.decomposed.Decompose.data r.Decompose.data)

(* Property: for a generated k-lane accelerator, the decomposer's
   data tree holds exactly the data-path leaf blocks and the root is
   a k-way data-parallel node. *)
let prop_decompose_lane_accel =
  QCheck.Test.make ~name:"decompose recovers k lanes" ~count:10
    QCheck.(pair (int_range 2 6) (int_range 1 3))
    (fun (k, stages) ->
      let buf = Buffer.create 512 in
      Buffer.add_string buf
        "(* control_path *)\nmodule ctl (go);\n  output go;\n  wire n;\n  mlv_const #(.VALUE(1)) c (.o(n));\n  mlv_reg r (.d(n), .q(go));\nendmodule\n";
      for s = 0 to stages - 1 do
        Buffer.add_string buf
          (Printf.sprintf
             "module stage%d (x, o);\n  input [7:0] x;\n  output [7:0] o;\n  wire [7:0] t;\n  mlv_add a (.a(x), .b(x), .o(t));\n  mlv_reg r (.d(t), .q(o));\nendmodule\n"
             s)
      done;
      Buffer.add_string buf "module lane (x, o);\n  input [7:0] x;\n  output [7:0] o;\n";
      for s = 0 to stages - 1 do
        Buffer.add_string buf (Printf.sprintf "  wire [7:0] w%d;\n" s)
      done;
      for s = 0 to stages - 1 do
        let src = if s = 0 then "x" else Printf.sprintf "w%d" (s - 1) in
        let dst = if s = stages - 1 then "o" else Printf.sprintf "w%d" s in
        Buffer.add_string buf
          (Printf.sprintf "  stage%d s%d (.x(%s), .o(%s));\n" s s src dst)
      done;
      Buffer.add_string buf "endmodule\nmodule ptop (";
      Buffer.add_string buf
        (String.concat ", "
           (List.init k (fun i -> Printf.sprintf "x%d, o%d" i i)));
      Buffer.add_string buf ");\n";
      for i = 0 to k - 1 do
        Buffer.add_string buf
          (Printf.sprintf "  input [7:0] x%d;\n  output [7:0] o%d;\n" i i)
      done;
      Buffer.add_string buf "  wire go;\n  ctl c (.go(go));\n";
      for i = 0 to k - 1 do
        Buffer.add_string buf (Printf.sprintf "  lane l%d (.x(x%d), .o(o%d));\n" i i i)
      done;
      Buffer.add_string buf "endmodule\n";
      let design =
        match Parser.parse_string (Buffer.contents buf) with
        | Ok d -> d
        | Error e -> failwith e
      in
      match Decompose.run design ~top:"ptop" with
      | Error _ -> false
      | Ok r -> (
        List.length (SB.leaves r.Decompose.data) = k * stages
        &&
        match r.Decompose.data with
        | SB.Node { SB.composition = SB.Data_parallel; children; _ } ->
          List.length children = k
        | SB.Leaf _ -> k = 1 && stages = 1
        | _ -> stages > 1 && k = 1))


let test_mlp_scale_out_golden () =
  let spec = Mlv_isa.Mlp.make_spec [ 12; 16; 8 ] in
  let batch = 3 and parts = 2 in
  let _, full_lay = Mlv_isa.Mlp.generate spec ~batch in
  let rng = Rng.create 41 in
  let full_dram = Mlv_isa.Mlp.init_dram ~rng full_lay in
  let golden = Mlv_isa.Mlp.golden full_lay (Array.copy full_dram) in
  List.iter
    (fun reorder ->
      let progs =
        Array.init parts (fun part ->
            let p, l = Scale_out.generate_mlp spec ~batch ~parts ~part in
            Alcotest.(check (list string)) "part valid" [] (Program.validate p);
            if reorder then Scale_out.reorder ~sync_base:l.Scale_out.msync_base p else p)
      in
      let lays =
        Array.init parts (fun part -> snd (Scale_out.generate_mlp spec ~batch ~parts ~part))
      in
      let drams =
        Array.map
          (fun l -> Scale_out.init_mlp_part_dram ~full_layout:full_lay ~full_dram l)
          lays
      in
      let _ = Scale_out.run_mlp_parts ~exact:true progs lays ~drams ~max_steps:1_000_000 in
      Array.iteri
        (fun part l ->
          for b = 0 to batch - 1 do
            let y =
              Array.sub drams.(part)
                (l.Scale_out.my_base + (b * l.Scale_out.out_slice))
                l.Scale_out.out_slice
            in
            Array.iteri
              (fun i v ->
                Alcotest.(check (float 1e-9))
                  (Printf.sprintf "reorder=%b part %d b%d y[%d]" reorder part b i)
                  golden.(b).((part * l.Scale_out.out_slice) + i)
                  v)
              y
          done)
        lays)
    [ false; true ]

let test_mlp_scale_out_validation () =
  let spec = Mlv_isa.Mlp.make_spec [ 12; 15; 8 ] in
  (* 15 not divisible by 2 *)
  Alcotest.(check bool) "indivisible layer" true
    (try
       ignore (Scale_out.generate_mlp spec ~batch:1 ~parts:2 ~part:0);
       false
     with Invalid_argument _ -> true)

let test_mlp_reorder_overlaps () =
  let dev = Device.get Device.XCVU37P in
  let cfg = Mlv_accel.Config.make ~tiles:10 () in
  let spec = Mlv_isa.Mlp.make_spec [ 1024; 2048; 1024 ] in
  let lat reordered added =
    Scale_out.mlp_latency_us ~parts:2 ~config:cfg ~device:dev ~added_latency_us:added
      ~reordered spec ~batch:20
  in
  Alcotest.(check bool) "reorder helps" true (lat true 0.6 < lat false 0.6);
  Alcotest.(check bool) "latency grows with delay" true (lat false 1.2 > lat false 0.0)


let test_runtime_node_failure () =
  let rt, _ = runtime_fixture Runtime.greedy in
  (* Three small instances; the packing puts two on one XCVU37P. *)
  let ds =
    List.init 3 (fun _ ->
        match Runtime.deploy rt ~accel:"npu-t6" with
        | Ok d -> d
        | Error e -> Alcotest.failf "deploy failed: %s" e)
  in
  let victim_node =
    match Runtime.nodes_used (List.hd ds) with
    | [ n ] -> n
    | _ -> Alcotest.fail "expected single-node deployment"
  in
  let f = Runtime.fail_node rt victim_node in
  Alcotest.(check (list int)) "marked failed" [ victim_node ] (Runtime.failed_nodes rt);
  Alcotest.(check int) "no deployment lost" 0 (List.length f.Runtime.lost);
  Alcotest.(check bool) "something recovered" true (f.Runtime.recovered >= 1);
  (* no live deployment touches the failed node anymore *)
  List.iter
    (fun d ->
      Alcotest.(check bool) "avoids failed node" false
        (List.mem victim_node (Runtime.nodes_used d)))
    (Runtime.deployments rt);
  (* new deployments also avoid it *)
  (match Runtime.deploy rt ~accel:"npu-t6" with
  | Ok d ->
    Alcotest.(check bool) "new deploy avoids failed" false
      (List.mem victim_node (Runtime.nodes_used d))
  | Error _ -> ());
  Runtime.restore_node rt victim_node;
  Alcotest.(check (list int)) "restored" [] (Runtime.failed_nodes rt)

let test_runtime_failover_loses_when_full () =
  (* Fail three of the four nodes: capacity collapses and some
     deployments are lost. *)
  let rt, _ = runtime_fixture Runtime.greedy in
  let deployed = ref 0 in
  (try
     while true do
       match Runtime.deploy rt ~accel:"npu-t6" with
       | Ok _ -> incr deployed
       | Error _ -> raise Exit
     done
   with Exit -> ());
  Alcotest.(check bool) "cluster filled" true (!deployed >= 7);
  let f0 = Runtime.fail_node rt 0 in
  let f1 = Runtime.fail_node rt 1 in
  let f2 = Runtime.fail_node rt 2 in
  let total_lost =
    List.length f0.Runtime.lost + List.length f1.Runtime.lost + List.length f2.Runtime.lost
  in
  Alcotest.(check bool) "some lost" true (total_lost > 0);
  (* survivors all live on node 3 *)
  List.iter
    (fun d ->
      Alcotest.(check (list int)) "on the last node" [ 3 ] (Runtime.nodes_used d))
    (Runtime.deployments rt)

let test_hypervisor_failover_commands () =
  let rt, _ = runtime_fixture Runtime.greedy in
  let h = Hypervisor.create rt in
  let starts_with prefix s =
    String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix
  in
  ignore (Hypervisor.handle h "deploy npu-t6");
  Alcotest.(check bool) "fail ok" true
    (starts_with "ok recovered=" (Hypervisor.handle h "fail 0"));
  Alcotest.(check string) "restore" "ok" (Hypervisor.handle h "restore 0");
  Alcotest.(check bool) "bad node" true
    (starts_with "error" (Hypervisor.handle h "fail 99"))


let test_hetero_partner_slowdown () =
  let dev = Device.get Device.XCVU37P in
  let cfg = Mlv_accel.Config.make ~tiles:10 () in
  let lat ~reordered slowdown =
    Scale_out.multi_fpga_latency_us ~partner_slowdown:slowdown ~parts:2 ~config:cfg
      ~device:dev ~added_latency_us:0.0 ~reordered Codegen.Lstm ~hidden:1024
      ~input:1024 ~timesteps:20
  in
  (* Without the overlap window the slower partner paces the barrier. *)
  Alcotest.(check bool) "in-order pays for skew" true
    (lat ~reordered:false 1.33 > 1.05 *. lat ~reordered:false 1.0);
  (* The reordering window absorbs moderate skew just like it absorbs
     ring latency. *)
  Alcotest.(check bool) "reordered absorbs skew" true
    (lat ~reordered:true 1.33 < 1.05 *. lat ~reordered:true 1.0);
  (* A drastically slower partner cannot be hidden. *)
  Alcotest.(check bool) "large skew exposed" true
    (lat ~reordered:true 3.0 > 1.3 *. lat ~reordered:true 1.0);
  Alcotest.(check (float 1e-9)) "1.0 is neutral"
    (lat ~reordered:true 1.0)
    (Scale_out.two_fpga_latency_us ~config:cfg ~device:dev ~added_latency_us:0.0
       ~reordered:true Codegen.Lstm ~hidden:1024 ~input:1024 ~timesteps:20)


(* Property: any sequence of deploys/undeploys conserves virtual
   blocks and never corrupts the allocator. *)
let prop_runtime_conservation =
  QCheck.Test.make ~name:"runtime conserves blocks" ~count:15
    QCheck.(list_of_size (Gen.int_range 1 25) (int_bound 99))
    (fun ops ->
      let rt, cluster = runtime_fixture Runtime.greedy in
      let live = ref [] in
      List.iter
        (fun op ->
          if op mod 3 = 0 && !live <> [] then begin
            (* undeploy a pseudo-random live deployment *)
            let idx = op mod List.length !live in
            let d = List.nth !live idx in
            Runtime.undeploy rt d;
            live := List.filter (fun x -> x != d) !live
          end
          else begin
            match Runtime.deploy rt ~accel:"npu-t6" with
            | Ok d -> live := d :: !live
            | Error _ -> ()
          end)
        ops;
      List.iter (Runtime.undeploy rt) !live;
      Cluster.total_free_vbs cluster = 55 && Runtime.deployments rt = [])

(* ---------------- Fragmentation index & defrag ---------------- *)

let test_fragmentation_shapes_agree () =
  let npu = Lazy.force npu_result in
  let mk indexed =
    let registry = Registry.create () in
    Registry.register registry npu.Framework.mapping;
    Runtime.create ~policy:Runtime.greedy ~indexed (Cluster.create ()) registry
  in
  let rt_i = mk true and rt_n = mk false in
  let agree label =
    Alcotest.(check (float 1e-12))
      (label ^ ": fragmentation agrees")
      (Runtime.fragmentation rt_n) (Runtime.fragmentation rt_i);
    Alcotest.(check int)
      (label ^ ": whole-free agrees")
      (Runtime.whole_free_nodes rt_n)
      (Runtime.whole_free_nodes rt_i);
    Alcotest.(check bool) (label ^ ": index consistent") true
      (Runtime.index_consistent rt_i)
  in
  agree "empty";
  Alcotest.(check (float 1e-12)) "empty cluster has no stranding" 0.0
    (Runtime.fragmentation rt_i);
  let deploy rt =
    match Runtime.deploy rt ~accel:"npu-t6" with
    | Ok d -> d
    | Error e -> Alcotest.fail e
  in
  let di = List.init 5 (fun _ -> deploy rt_i) in
  let dn = List.init 5 (fun _ -> deploy rt_n) in
  agree "loaded";
  List.iteri (fun i d -> if i mod 2 = 0 then Runtime.undeploy rt_i d) di;
  List.iteri (fun i d -> if i mod 2 = 0 then Runtime.undeploy rt_n d) dn;
  agree "after churn";
  Runtime.mark_node_failed rt_i 0;
  Runtime.mark_node_failed rt_n 0;
  agree "node failed";
  Runtime.restore_node rt_i 0;
  Runtime.restore_node rt_n 0;
  agree "restored"

(* One stranded 6-VB deployment per device: plenty of free blocks in
   aggregate, yet no whole device free.  A compaction pass must drain
   stragglers until at least one frees up. *)
let fragment_fixture () =
  let npu = Lazy.force npu_result in
  let registry = Registry.create () in
  Registry.register registry npu.Framework.mapping;
  let rt = Runtime.create ~policy:Runtime.greedy (Cluster.create ()) registry in
  let ds =
    List.init 7 (fun _ ->
        match Runtime.deploy rt ~accel:"npu-t6" with
        | Ok d -> d
        | Error e -> Alcotest.fail e)
  in
  let seen = Hashtbl.create 4 in
  List.iter
    (fun d ->
      match Runtime.nodes_used d with
      | [ n ] when not (Hashtbl.mem seen n) -> Hashtbl.replace seen n ()
      | _ -> Runtime.undeploy rt d)
    ds;
  rt

let test_defrag_compacts () =
  let rt = fragment_fixture () in
  Alcotest.(check int) "no whole device free" 0 (Runtime.whole_free_nodes rt);
  Alcotest.(check (float 1e-12)) "every free block stranded" 1.0
    (Runtime.fragmentation rt);
  let cfg = Defrag.config ~frag_threshold:0.25 ~min_node_fill:0.5 ~max_moves:8 () in
  Alcotest.(check bool) "should run" true (Defrag.should_run cfg rt);
  let pass = Defrag.run_pass cfg rt in
  Alcotest.(check bool) "within budget" true (pass.Defrag.attempted <= 8);
  Alcotest.(check bool) "moved something" true (pass.Defrag.moved > 0);
  Alcotest.(check bool)
    (Printf.sprintf "fragmentation fell (%.3f -> %.3f)" pass.Defrag.frag_before
       pass.Defrag.frag_after)
    true
    (pass.Defrag.frag_after < pass.Defrag.frag_before);
  Alcotest.(check bool) "a whole device freed" true
    (pass.Defrag.whole_free_after > pass.Defrag.whole_free_before);
  Alcotest.(check bool) "index consistent" true (Runtime.index_consistent rt)

let test_defrag_gates () =
  (* below the threshold a pass is a no-op *)
  let npu = Lazy.force npu_result in
  let registry = Registry.create () in
  Registry.register registry npu.Framework.mapping;
  let empty = Runtime.create ~policy:Runtime.greedy (Cluster.create ()) registry in
  let cfg = Defrag.config () in
  Alcotest.(check bool) "empty cluster below threshold" false
    (Defrag.should_run cfg empty);
  let pass = Defrag.run_pass cfg empty in
  Alcotest.(check int) "no-op attempts nothing" 0 pass.Defrag.attempted;
  (* the eligibility filter pins everything in place *)
  let rt = fragment_fixture () in
  let pass = Defrag.run_pass ~eligible:(fun _ -> false) cfg rt in
  Alcotest.(check int) "nothing eligible, nothing attempted" 0
    pass.Defrag.attempted;
  Alcotest.(check (float 1e-12)) "fragmentation untouched"
    pass.Defrag.frag_before pass.Defrag.frag_after;
  (* a budget of one move attempts exactly one migration *)
  let pass = Defrag.run_pass (Defrag.config ~max_moves:1 ()) rt in
  Alcotest.(check int) "budget of one" 1 pass.Defrag.attempted;
  Alcotest.check_raises "validation"
    (Invalid_argument "Defrag.config: frag_threshold outside [0,1]") (fun () ->
      ignore (Defrag.config ~frag_threshold:1.5 ()))


let test_custom_accel_end_to_end () =
  (* A non-NPU accelerator through the whole flow: parse, decompose,
     map with the estimation cost model, register, deploy. *)
  let src =
    {|
(* control_path *)
module seq2 (go);
  output go;
  wire n;
  mlv_const #(.VALUE(1)) c (.o(n));
  mlv_reg r (.d(n), .q(go));
endmodule

module worker (x, o);
  input [31:0] x;
  output [31:0] o;
  wire [31:0] sq;
  mlv_mul m (.a(x), .b(x), .o(sq));
  mlv_reg r (.d(sq), .q(o));
endmodule

module farm (x0, x1, x2, x3, o0, o1, o2, o3);
  input [31:0] x0;
  input [31:0] x1;
  input [31:0] x2;
  input [31:0] x3;
  output [31:0] o0;
  output [31:0] o1;
  output [31:0] o2;
  output [31:0] o3;
  wire go;
  seq2 s (.go(go));
  worker w0 (.x(x0), .o(o0));
  worker w1 (.x(x1), .o(o1));
  worker w2 (.x(x2), .o(o2));
  worker w3 (.x(x3), .o(o3));
endmodule
|}
  in
  let design = parse_ok src in
  match Decompose.run design ~top:"farm" with
  | Error e -> Alcotest.failf "decompose: %s" e
  | Ok r ->
    let mapping =
      Mapping.compile ~iterations:1 ~name:"farm" ~control:r.Decompose.control
        ~data:r.Decompose.data ()
    in
    let registry = Registry.create () in
    Registry.register registry mapping;
    let cluster = Cluster.create () in
    let rt = Runtime.create ~policy:Runtime.greedy cluster registry in
    (match Runtime.deploy rt ~accel:"farm" with
    | Ok d ->
      Alcotest.(check bool) "placed" true (Runtime.nodes_used d <> []);
      Runtime.undeploy rt d
    | Error e -> Alcotest.failf "deploy: %s" e);
    (* and the 2-FPGA split also maps *)
    let level1 = List.nth mapping.Mapping.levels 1 in
    Alcotest.(check int) "two pieces" 2 (List.length level1);
    List.iter
      (fun (p : Mapping.compiled_piece) ->
        Alcotest.(check bool) "piece feasible somewhere" true (p.Mapping.bitstreams <> []))
      level1

let () =
  Alcotest.run "core"
    [
      ( "soft_block",
        [
          Alcotest.test_case "constructors" `Quick test_sb_constructors;
          Alcotest.test_case "validation" `Quick test_sb_validation;
          Alcotest.test_case "dp shape check" `Quick test_sb_validate_dp_shape;
          Alcotest.test_case "equal shape" `Quick test_sb_equal_shape;
          Alcotest.test_case "pretty printer" `Quick test_sb_pp;
          Alcotest.test_case "graphviz export" `Quick test_to_dot;
        ] );
      ( "pattern",
        [
          Alcotest.test_case "replicate" `Quick test_pattern_replicate;
          Alcotest.test_case "reduction" `Quick test_pattern_reduction;
          Alcotest.test_case "map pipeline" `Quick test_pattern_map_pipeline;
        ] );
      ( "decompose",
        [
          Alcotest.test_case "small accelerator" `Quick test_decompose_small_accel;
          Alcotest.test_case "control split" `Quick test_decompose_control_split;
          Alcotest.test_case "no control error" `Quick test_decompose_no_control_error;
          Alcotest.test_case "control by name" `Quick test_decompose_control_by_name;
          Alcotest.test_case "unknown top" `Quick test_decompose_unknown_top;
          Alcotest.test_case "eqcheck different names" `Quick test_decompose_eqcheck_different_names;
          Alcotest.test_case "intra-block lanes" `Quick test_decompose_intra_block_lanes;
          Alcotest.test_case "intra disabled" `Quick test_decompose_intra_disabled;
          Alcotest.test_case "NPU Fig.9 shape" `Quick test_decompose_npu_shape;
          Alcotest.test_case "top-down small accel" `Quick test_top_down_small_accel;
          Alcotest.test_case "top-down matches bottom-up" `Quick test_top_down_matches_bottom_up;
          Alcotest.test_case "top-down no control" `Quick test_top_down_no_control_error;
          Alcotest.test_case "NPU text round-trip" `Quick test_npu_text_roundtrip;
          Alcotest.test_case "simplify option" `Quick test_decompose_with_simplify;
          QCheck_alcotest.to_alcotest prop_decompose_lane_accel;
        ] );
      ( "partition",
        [
          Alcotest.test_case "dp even split" `Quick test_partition_dp_even_split;
          Alcotest.test_case "pipeline min cut" `Quick test_partition_pipeline_min_cut;
          Alcotest.test_case "leaf atomic" `Quick test_partition_leaf_atomic;
          Alcotest.test_case "levels" `Quick test_partition_levels;
          Alcotest.test_case "exhausts" `Quick test_partition_exhausts;
          Alcotest.test_case "naive cuts pipelines" `Quick test_partition_naive_cuts_pipelines;
        ] );
      ( "mapping",
        [
          Alcotest.test_case "npu levels" `Quick test_mapping_npu_levels;
          Alcotest.test_case "infeasible large" `Quick test_mapping_infeasible_large;
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "custom accel end to end" `Quick test_custom_accel_end_to_end;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "greedy deploys" `Quick test_runtime_greedy_deploys;
          Alcotest.test_case "spatial sharing" `Quick test_runtime_sharing;
          Alcotest.test_case "multi-FPGA" `Quick test_runtime_multi_fpga;
          Alcotest.test_case "restricted same type" `Quick test_runtime_restricted_same_type;
          Alcotest.test_case "unknown accel" `Quick test_runtime_unknown_accel;
          Alcotest.test_case "exhaustion and recovery" `Quick test_runtime_exhaustion_and_recovery;
          Alcotest.test_case "stats" `Quick test_runtime_stats;
          Alcotest.test_case "hypervisor protocol" `Quick test_hypervisor_protocol;
          Alcotest.test_case "rebalance defragments" `Quick test_runtime_rebalance_defragments;
          Alcotest.test_case "rebalance empty" `Quick test_runtime_rebalance_empty;
          Alcotest.test_case "rebalance rollback" `Quick test_runtime_rebalance_rollback;
          Alcotest.test_case "failover frees exactly" `Quick
            test_runtime_failover_frees_exactly;
          Alcotest.test_case "hypervisor metrics commands" `Quick
            test_hypervisor_metrics_commands;
          Alcotest.test_case "hypervisor timeline and top" `Quick
            test_hypervisor_timeline_and_top;
          Alcotest.test_case "node failure failover" `Quick test_runtime_node_failure;
          Alcotest.test_case "failover loses when full" `Quick test_runtime_failover_loses_when_full;
          Alcotest.test_case "hypervisor failover" `Quick test_hypervisor_failover_commands;
          QCheck_alcotest.to_alcotest prop_runtime_conservation;
        ] );
      ( "defrag",
        [
          Alcotest.test_case "fragmentation shapes agree" `Quick
            test_fragmentation_shapes_agree;
          Alcotest.test_case "pass compacts" `Quick test_defrag_compacts;
          Alcotest.test_case "gates and budget" `Quick test_defrag_gates;
        ] );
      ( "scale_out",
        [
          Alcotest.test_case "generate valid" `Quick test_scale_out_generate_valid;
          Alcotest.test_case "validation" `Quick test_scale_out_validation;
          Alcotest.test_case "LSTM matches golden" `Quick test_scale_out_lstm_golden;
          Alcotest.test_case "GRU matches golden" `Quick test_scale_out_gru_golden;
          Alcotest.test_case "reordered matches golden" `Quick test_scale_out_reordered_golden;
          Alcotest.test_case "four parts" `Quick test_scale_out_four_parts;
          Alcotest.test_case "reorder sinks reads" `Quick test_reorder_sinks_reads;
          Alcotest.test_case "Fig.11 LSTM flat" `Quick test_two_fpga_latency_shapes;
          Alcotest.test_case "Fig.11 GRU crossover" `Quick test_two_fpga_gru_crossover;
          Alcotest.test_case "multi-part latency" `Quick test_multi_fpga_latency_parts;
          Alcotest.test_case "MLP scale-out golden" `Quick test_mlp_scale_out_golden;
          Alcotest.test_case "MLP scale-out validation" `Quick test_mlp_scale_out_validation;
          Alcotest.test_case "MLP reorder overlaps" `Quick test_mlp_reorder_overlaps;
          Alcotest.test_case "hetero partner slowdown" `Quick test_hetero_partner_slowdown;
          QCheck_alcotest.to_alcotest prop_reorder_semantics;
        ] );
    ]
