(* Tests for the workload library: DeepBench points, size classes and
   the Table-1 synthetic workload generator. *)

module Deepbench = Mlv_workload.Deepbench
module Sizes = Mlv_workload.Sizes
module Genset = Mlv_workload.Genset
module Metrics = Mlv_workload.Metrics
module Codegen = Mlv_isa.Codegen
module Program = Mlv_isa.Program
module Rng = Mlv_util.Rng

let test_table4_points () =
  Alcotest.(check int) "7 points" 7 (List.length Deepbench.table4_points);
  let first = List.hd Deepbench.table4_points in
  Alcotest.(check string) "first name" "GRU h=512 t=1" (Deepbench.name first)

let test_weight_words () =
  let gru = { Deepbench.kind = Codegen.Gru; hidden = 100; timesteps = 1 } in
  Alcotest.(check int) "gru 6 matrices" 60_000 (Deepbench.weight_words gru);
  let lstm = { Deepbench.kind = Codegen.Lstm; hidden = 100; timesteps = 1 } in
  Alcotest.(check int) "lstm 8 matrices" 80_000 (Deepbench.weight_words lstm)

let test_programs_validate () =
  List.iter
    (fun p ->
      (* Scale the timesteps down to keep the test fast. *)
      let p = { p with Deepbench.timesteps = min 2 p.Deepbench.timesteps } in
      let program, _ = Deepbench.program p in
      Alcotest.(check (list string)) (Deepbench.name p) [] (Program.validate program))
    Deepbench.extended_points

let test_classify () =
  Alcotest.(check bool) "512 S" true (Sizes.classify 512 = Sizes.S);
  Alcotest.(check bool) "1024 S" true (Sizes.classify 1024 = Sizes.S);
  Alcotest.(check bool) "1025 M" true (Sizes.classify 1025 = Sizes.M);
  Alcotest.(check bool) "2048 M" true (Sizes.classify 2048 = Sizes.M);
  Alcotest.(check bool) "2049 L" true (Sizes.classify 2049 = Sizes.L)

let test_points_of_class_nonempty () =
  List.iter
    (fun c ->
      Alcotest.(check bool) (Sizes.name c) true (Sizes.points_of_class c <> []))
    [ Sizes.S; Sizes.M; Sizes.L ];
  (* classes partition the extended points *)
  let total =
    List.length (Sizes.points_of_class Sizes.S)
    + List.length (Sizes.points_of_class Sizes.M)
    + List.length (Sizes.points_of_class Sizes.L)
  in
  Alcotest.(check int) "partition" (List.length Deepbench.extended_points) total

let test_table1_shape () =
  Alcotest.(check int) "10 sets" 10 (Array.length Genset.table1);
  Array.iter
    (fun c ->
      let sum = c.Genset.s +. c.Genset.m +. c.Genset.l in
      Alcotest.(check bool) "sums to 1" true (Float.abs (sum -. 1.0) < 0.02))
    Genset.table1

let test_composition_name () =
  Alcotest.(check string) "pure S" "100%S" (Genset.composition_name Genset.table1.(0));
  Alcotest.(check string) "mixed" "50%S+50%L" (Genset.composition_name Genset.table1.(4))

let test_generate_deterministic () =
  let gen seed =
    Genset.generate ~rng:(Rng.create seed) ~composition:Genset.table1.(6) ~tasks:50
      ~mean_interarrival_us:100.0
  in
  Alcotest.(check bool) "same seed same tasks" true (gen 1 = gen 1);
  Alcotest.(check bool) "different seed differs" true (gen 1 <> gen 2)

let test_generate_arrivals_sorted () =
  let tasks =
    Genset.generate ~rng:(Rng.create 3) ~composition:Genset.table1.(6) ~tasks:100
      ~mean_interarrival_us:50.0
  in
  let arrivals = List.map (fun t -> t.Genset.arrival_us) tasks in
  let rec sorted = function
    | a :: (b :: _ as rest) -> a <= b && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted" true (sorted arrivals);
  Alcotest.(check bool) "positive" true (List.for_all (fun a -> a > 0.0) arrivals)

let test_generate_composition_respected () =
  let tasks =
    Genset.generate ~rng:(Rng.create 5) ~composition:Genset.table1.(0) (* 100% S *)
      ~tasks:200 ~mean_interarrival_us:10.0
  in
  let hist = Genset.class_histogram tasks in
  Alcotest.(check int) "all S" 200 (List.assoc Sizes.S hist);
  Alcotest.(check int) "no M" 0 (List.assoc Sizes.M hist);
  let mixed =
    Genset.generate ~rng:(Rng.create 5) ~composition:Genset.table1.(4) (* 50/0/50 *)
      ~tasks:400 ~mean_interarrival_us:10.0
  in
  let h = Genset.class_histogram mixed in
  Alcotest.(check int) "no M in set 5" 0 (List.assoc Sizes.M h);
  let s = List.assoc Sizes.S h in
  Alcotest.(check bool) "roughly half S" true (s > 150 && s < 250)

let test_generate_validation () =
  Alcotest.(check bool) "zero tasks" true
    (try
       ignore
         (Genset.generate ~rng:(Rng.create 1) ~composition:Genset.table1.(0) ~tasks:0
            ~mean_interarrival_us:1.0);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad composition" true
    (try
       ignore
         (Genset.generate ~rng:(Rng.create 1)
            ~composition:{ Genset.s = 0.5; m = 0.0; l = 0.0 }
            ~tasks:1 ~mean_interarrival_us:1.0);
       false
     with Invalid_argument _ -> true)

(* Regression: the legacy [Bursty] process reads the phase once per
   draw, so a long busy-phase draw can overshoot into the quiet window
   and land an arrival where the trace says the source is silent.
   [Bursty_phased] clamps each draw at phase boundaries (restarting
   the memoryless draw at the boundary rate), so with an essentially
   silent quiet phase no arrival may fall inside it. *)
let test_bursty_phase_overshoot () =
  let on_us = 2_000.0 and off_us = 8_000.0 in
  let on_mean_us = 50.0 and off_mean_us = 1e9 in
  let in_off t = Float.rem t (on_us +. off_us) >= on_us in
  let arrivals arrival =
    Genset.generate_arrival ~rng:(Rng.create 11) ~composition:Genset.table1.(0)
      ~tasks:300 ~arrival
    |> List.map (fun t -> t.Genset.arrival_us)
  in
  let legacy =
    arrivals (Genset.Bursty { on_us; off_us; on_mean_us; off_mean_us })
  in
  let phased =
    arrivals (Genset.Bursty_phased { on_us; off_us; on_mean_us; off_mean_us })
  in
  let off_count xs = List.length (List.filter in_off xs) in
  (* the legacy process demonstrably overshoots (this is the bug) ... *)
  Alcotest.(check bool) "legacy overshoots into quiet phase" true
    (off_count legacy > 0);
  (* ... and the phased process never does *)
  Alcotest.(check int) "phased stays inside busy phases" 0 (off_count phased)

(* Regression for the single-pass [class_histogram]: it must count
   exactly what per-class filters count, with every class present. *)
let test_class_histogram_single_pass () =
  let tasks =
    Genset.generate ~rng:(Rng.create 7) ~composition:Genset.table1.(6)
      ~tasks:500 ~mean_interarrival_us:10.0
  in
  let hist = Genset.class_histogram tasks in
  Alcotest.(check int) "three buckets" 3 (List.length hist);
  List.iter
    (fun c ->
      let naive =
        List.length (List.filter (fun t -> t.Genset.model_class = c) tasks)
      in
      Alcotest.(check int) (Sizes.name c) naive (List.assoc c hist))
    [ Sizes.S; Sizes.M; Sizes.L ];
  Alcotest.(check int) "buckets sum to tasks" 500
    (List.fold_left (fun a (_, n) -> a + n) 0 hist)

(* Property: generated points always belong to their class. *)
let prop_class_consistent =
  QCheck.Test.make ~name:"task class matches point" ~count:30 QCheck.(int_range 0 9)
    (fun set ->
      let tasks =
        Genset.generate ~rng:(Rng.create set) ~composition:Genset.table1.(set)
          ~tasks:50 ~mean_interarrival_us:10.0
      in
      List.for_all
        (fun t -> Sizes.classify_point t.Genset.point = t.Genset.model_class)
        tasks)


(* ---------------- Metrics ---------------- *)

let test_metrics_summary () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  match Metrics.summarize xs with
  | None -> Alcotest.fail "summary expected"
  | Some s ->
    Alcotest.(check int) "count" 100 s.Metrics.count;
    Alcotest.(check (float 1e-9)) "mean" 50.5 s.Metrics.mean;
    Alcotest.(check (float 1e-6)) "p50" 50.5 s.Metrics.p50;
    Alcotest.(check (float 1e-9)) "min" 1.0 s.Metrics.min;
    Alcotest.(check (float 1e-9)) "max" 100.0 s.Metrics.max;
    Alcotest.(check bool) "ordered percentiles" true
      (s.Metrics.p50 <= s.Metrics.p90 && s.Metrics.p90 <= s.Metrics.p95
      && s.Metrics.p95 <= s.Metrics.p99)

let test_metrics_empty () =
  Alcotest.(check bool) "none" true (Metrics.summarize [] = None)

let test_metrics_windows () =
  let completions = [ 0.5; 1.5; 1.7; 3.2 ] in
  let windows = Metrics.throughput_windows ~window:1.0 completions in
  (* the idle 2.0 window must appear with an explicit zero (regression:
     gaps used to be silently dropped, skewing window-rate plots) *)
  Alcotest.(check (list (pair (float 1e-9) int))) "buckets"
    [ (0.0, 1); (1.0, 2); (2.0, 0); (3.0, 1) ]
    windows;
  Alcotest.(check bool) "bad window" true
    (try
       ignore (Metrics.throughput_windows ~window:0.0 [ 1.0 ]);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "workload"
    [
      ( "deepbench",
        [
          Alcotest.test_case "table 4 points" `Quick test_table4_points;
          Alcotest.test_case "weight words" `Quick test_weight_words;
          Alcotest.test_case "programs validate" `Quick test_programs_validate;
        ] );
      ( "sizes",
        [
          Alcotest.test_case "classify" `Quick test_classify;
          Alcotest.test_case "points per class" `Quick test_points_of_class_nonempty;
        ] );
      ( "genset",
        [
          Alcotest.test_case "table 1 shape" `Quick test_table1_shape;
          Alcotest.test_case "composition names" `Quick test_composition_name;
          Alcotest.test_case "deterministic" `Quick test_generate_deterministic;
          Alcotest.test_case "arrivals sorted" `Quick test_generate_arrivals_sorted;
          Alcotest.test_case "composition respected" `Quick test_generate_composition_respected;
          Alcotest.test_case "validation" `Quick test_generate_validation;
          Alcotest.test_case "bursty phase overshoot" `Quick
            test_bursty_phase_overshoot;
          Alcotest.test_case "class histogram single pass" `Quick
            test_class_histogram_single_pass;
          QCheck_alcotest.to_alcotest prop_class_consistent;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "summary" `Quick test_metrics_summary;
          Alcotest.test_case "empty" `Quick test_metrics_empty;
          Alcotest.test_case "throughput windows" `Quick test_metrics_windows;
        ] );
    ]
