module Rng = Mlv_util.Rng

type composition = { s : float; m : float; l : float }

let table1 =
  [|
    { s = 1.0; m = 0.0; l = 0.0 };
    { s = 0.0; m = 1.0; l = 0.0 };
    { s = 0.0; m = 0.0; l = 1.0 };
    { s = 0.5; m = 0.5; l = 0.0 };
    { s = 0.5; m = 0.0; l = 0.5 };
    { s = 0.0; m = 0.5; l = 0.5 };
    { s = 0.33; m = 0.33; l = 0.34 };
    { s = 0.1; m = 0.3; l = 0.6 };
    { s = 0.3; m = 0.6; l = 0.1 };
    { s = 0.6; m = 0.1; l = 0.3 };
  |]

let composition_name c =
  let parts = ref [] in
  let add pct cls = if pct > 0.0 then parts := Printf.sprintf "%.0f%%%s" (pct *. 100.0) cls :: !parts in
  add c.l "L";
  add c.m "M";
  add c.s "S";
  String.concat "+" !parts

(* Tasks from the single-stream generators carry the default tenant;
   only [generate_tenants] produces a real mix. *)
let default_tenant = "-"

type task = {
  task_id : int;
  point : Deepbench.point;
  model_class : Sizes.model_class;
  arrival_us : float;
  tenant : string;
}

type arrival =
  | Exponential of { mean_us : float }
  | Bursty of {
      on_us : float;
      off_us : float;
      on_mean_us : float;
      off_mean_us : float;
    }
  | Bursty_phased of {
      on_us : float;
      off_us : float;
      on_mean_us : float;
      off_mean_us : float;
    }
  | Diurnal of {
      period_us : float;
      trough_mean_us : float;
      peak_mean_us : float;
      flash_start_us : float;
      flash_us : float;
      flash_mean_us : float;
    }

(* The diurnal rate curve is sampled piecewise-constant over this many
   slots per period; every draw clamps at the enclosing segment's
   boundary (the Bursty_phased construction), so within a slot the
   process is exactly Poisson at the slot's rate. *)
let diurnal_slots = 32

let arrival_name = function
  | Exponential { mean_us } -> Printf.sprintf "poisson(%.0fus)" mean_us
  | Bursty { on_us; off_us; on_mean_us; off_mean_us } ->
    Printf.sprintf "burst(%.0f/%.0fus @ %.0f/%.0fus)" on_us off_us on_mean_us
      off_mean_us
  | Bursty_phased { on_us; off_us; on_mean_us; off_mean_us } ->
    Printf.sprintf "burst-phased(%.0f/%.0fus @ %.0f/%.0fus)" on_us off_us
      on_mean_us off_mean_us
  | Diurnal { period_us; trough_mean_us; peak_mean_us; flash_start_us; flash_us; flash_mean_us } ->
    if flash_us > 0.0 then
      Printf.sprintf "diurnal(%.0fus @ %.0f..%.0fus, flash %.0f+%.0fus @ %.0fus)"
        period_us trough_mean_us peak_mean_us flash_start_us flash_us
        flash_mean_us
    else
      Printf.sprintf "diurnal(%.0fus @ %.0f..%.0fus)" period_us trough_mean_us
        peak_mean_us

let validate_arrival = function
  | Exponential { mean_us } ->
    if mean_us <= 0.0 then
      invalid_arg "Genset: mean interarrival must be positive"
  | Bursty { on_us; off_us; on_mean_us; off_mean_us }
  | Bursty_phased { on_us; off_us; on_mean_us; off_mean_us } ->
    if on_us <= 0.0 || off_us < 0.0 then
      invalid_arg "Genset: burst phases must be positive";
    if on_mean_us <= 0.0 || off_mean_us <= 0.0 then
      invalid_arg "Genset: burst interarrival means must be positive"
  | Diurnal { period_us; trough_mean_us; peak_mean_us; flash_start_us; flash_us; flash_mean_us } ->
    if period_us <= 0.0 then invalid_arg "Genset: diurnal period must be positive";
    if peak_mean_us <= 0.0 || trough_mean_us < peak_mean_us then
      invalid_arg
        "Genset: diurnal means must satisfy trough_mean >= peak_mean > 0";
    if flash_us < 0.0 then invalid_arg "Genset: negative flash window";
    if flash_us > 0.0 then begin
      if flash_mean_us <= 0.0 then
        invalid_arg "Genset: flash interarrival mean must be positive";
      if flash_start_us < 0.0 || flash_start_us +. flash_us > period_us then
        invalid_arg "Genset: flash window must lie within one period"
    end

(* Mean inter-arrival at phase position [pos] in [0, period): the
   flash window's mean inside the window, otherwise the sinusoidal
   rate (trough at phase 0, peak at half period) sampled at the start
   of the enclosing slot — piecewise-constant so the clamped-draw
   construction is exact. *)
let diurnal_mean_at ~period_us ~trough_mean_us ~peak_mean_us ~flash_start_us
    ~flash_us ~flash_mean_us pos =
  if flash_us > 0.0 && pos >= flash_start_us && pos < flash_start_us +. flash_us
  then flash_mean_us
  else begin
    let slot_w = period_us /. float_of_int diurnal_slots in
    let slot = min (diurnal_slots - 1) (int_of_float (pos /. slot_w)) in
    let start = float_of_int slot *. slot_w in
    let lam_min = 1.0 /. trough_mean_us and lam_max = 1.0 /. peak_mean_us in
    let lam =
      lam_min
      +. (lam_max -. lam_min)
         *. 0.5
         *. (1.0 -. cos (2.0 *. Float.pi *. (start /. period_us)))
    in
    1.0 /. lam
  end

let interarrival_mean arrival ~now_us =
  match arrival with
  | Exponential { mean_us } -> mean_us
  | Bursty { on_us; off_us; on_mean_us; off_mean_us }
  | Bursty_phased { on_us; off_us; on_mean_us; off_mean_us } ->
    let cycle = on_us +. off_us in
    if Float.rem now_us cycle < on_us then on_mean_us else off_mean_us
  | Diurnal { period_us; trough_mean_us; peak_mean_us; flash_start_us; flash_us; flash_mean_us } ->
    diurnal_mean_at ~period_us ~trough_mean_us ~peak_mean_us ~flash_start_us
      ~flash_us ~flash_mean_us
      (Float.rem now_us period_us)

(* Advance the arrival clock by one inter-arrival draw.

   [Bursty] keeps the legacy semantics: the phase is read once at the
   current clock and a single exponential draw follows, so a quiet-
   phase draw with [off_mean_us] larger than the cycle can leap whole
   busy windows (the rate silently collapses).  Benches that pinned
   their digests to that stream keep it.

   [Bursty_phased] clamps every draw at the next phase boundary: a
   draw that would cross the boundary is discarded and re-drawn from
   the boundary with the {e new} phase's mean — the memorylessness of
   the exponential makes this the exact inhomogeneous-Poisson
   construction, and busy windows always see the busy rate. *)
let next_arrival_us arrival ~rng ~now_us =
  match arrival with
  | Exponential _ | Bursty _ ->
    now_us +. Rng.exponential rng ~mean:(interarrival_mean arrival ~now_us)
  | Bursty_phased { on_us; off_us; on_mean_us; off_mean_us } ->
    let cycle = on_us +. off_us in
    let rec step t =
      let pos = Float.rem t cycle in
      let in_on = pos < on_us in
      let mean = if in_on then on_mean_us else off_mean_us in
      let boundary = t -. pos +. (if in_on then on_us else cycle) in
      let d = Rng.exponential rng ~mean in
      if t +. d <= boundary then t +. d else step boundary
    in
    step now_us
  | Diurnal
      { period_us; trough_mean_us; peak_mean_us; flash_start_us; flash_us; flash_mean_us }
    ->
    (* Same boundary-clamped construction as Bursty_phased, over the
       diurnal segments: slot edges plus the flash window's edges. *)
    let slot_w = period_us /. float_of_int diurnal_slots in
    let next_boundary pos =
      let slot = min (diurnal_slots - 1) (int_of_float (pos /. slot_w)) in
      let b = ref (float_of_int (slot + 1) *. slot_w) in
      if flash_us > 0.0 then begin
        if pos < flash_start_us && flash_start_us < !b then b := flash_start_us;
        let fend = flash_start_us +. flash_us in
        if pos < fend && fend < !b then b := fend
      end;
      Float.min period_us !b
    in
    let rec step t =
      let pos = Float.rem t period_us in
      let mean =
        diurnal_mean_at ~period_us ~trough_mean_us ~peak_mean_us
          ~flash_start_us ~flash_us ~flash_mean_us pos
      in
      let boundary = t -. pos +. next_boundary pos in
      let d = Rng.exponential rng ~mean in
      if t +. d <= boundary then t +. d else step boundary
    in
    step now_us

let generate_arrival ~rng ~composition ~tasks ~arrival =
  if tasks <= 0 then invalid_arg "Genset.generate: tasks must be positive";
  validate_arrival arrival;
  let total = composition.s +. composition.m +. composition.l in
  if Float.abs (total -. 1.0) > 0.02 then
    invalid_arg "Genset.generate: composition must sum to 1";
  let sample_class () =
    let u = Rng.float rng 1.0 *. total in
    if u < composition.s then Sizes.S
    else if u < composition.s +. composition.m then Sizes.M
    else Sizes.L
  in
  let clock = ref 0.0 in
  List.init tasks (fun task_id ->
      clock := next_arrival_us arrival ~rng ~now_us:!clock;
      let model_class = sample_class () in
      let point = Rng.choose rng (Sizes.points_of_class model_class) in
      { task_id; point; model_class; arrival_us = !clock; tenant = default_tenant })

let generate ~rng ~composition ~tasks ~mean_interarrival_us =
  generate_arrival ~rng ~composition ~tasks
    ~arrival:(Exponential { mean_us = mean_interarrival_us })

(* A tenant's slice of a multi-tenant workload: its own task count,
   arrival process, fair-share weight, scheduling priority and
   (optionally) its own S/M/L composition. *)
type tenant_load = {
  tl_name : string;
  tl_weight : float;
  tl_tasks : int;
  tl_arrival : arrival;
  tl_priority : int;
  tl_composition : composition option;
}

let tenant_load ?(weight = 1.0) ?(priority = 0) ?composition ~tasks ~arrival name
    =
  if weight <= 0.0 then invalid_arg "Genset.tenant_load: weight must be positive";
  if tasks <= 0 then invalid_arg "Genset.tenant_load: tasks must be positive";
  validate_arrival arrival;
  {
    tl_name = name;
    tl_weight = weight;
    tl_tasks = tasks;
    tl_arrival = arrival;
    tl_priority = priority;
    tl_composition = composition;
  }

(* Each tenant draws its stream from its own generator (split off the
   seed in declaration order), so one tenant's parameters never
   perturb another's arrivals — the property the isolation bench
   leans on.  Streams merge by arrival time (ties by tenant name,
   then original id: all deterministic) and task ids are reassigned
   in merged order so they stay unique and arrival-ordered. *)
let generate_tenants ~seed ~composition loads =
  if loads = [] then invalid_arg "Genset.generate_tenants: no tenants";
  let names = List.map (fun l -> l.tl_name) loads in
  if List.length (List.sort_uniq compare names) <> List.length names then
    invalid_arg "Genset.generate_tenants: duplicate tenant names";
  let parent = Rng.create seed in
  let streams =
    List.map
      (fun l ->
        let rng = Rng.split parent in
        let composition = Option.value l.tl_composition ~default:composition in
        List.map
          (fun t -> { t with tenant = l.tl_name })
          (generate_arrival ~rng ~composition ~tasks:l.tl_tasks
             ~arrival:l.tl_arrival))
      loads
  in
  let cmp a b =
    match Float.compare a.arrival_us b.arrival_us with
    | 0 -> (
      match compare a.tenant b.tenant with
      | 0 -> compare a.task_id b.task_id
      | c -> c)
    | c -> c
  in
  let merged = List.fold_left (fun acc s -> List.merge cmp acc s) [] streams in
  List.mapi (fun i t -> { t with task_id = i }) merged

(* One pass over the task list instead of a filter+length per class. *)
let class_histogram tasks =
  let s = ref 0 and m = ref 0 and l = ref 0 in
  List.iter
    (fun t ->
      match t.model_class with
      | Sizes.S -> incr s
      | Sizes.M -> incr m
      | Sizes.L -> incr l)
    tasks;
  [ (Sizes.S, !s); (Sizes.M, !m); (Sizes.L, !l) ]
