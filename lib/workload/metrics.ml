module Stats = Mlv_util.Stats

type summary = {
  count : int;
  mean : float;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
  min : float;
  max : float;
}

let summarize = function
  | [] -> None
  | xs ->
    Some
      {
        count = List.length xs;
        mean = Stats.mean xs;
        p50 = Stats.percentile 50.0 xs;
        p90 = Stats.percentile 90.0 xs;
        p95 = Stats.percentile 95.0 xs;
        p99 = Stats.percentile 99.0 xs;
        min = List.fold_left Float.min infinity xs;
        max = List.fold_left Float.max neg_infinity xs;
      }

let pp_summary ~unit_name fmt s =
  Format.fprintf fmt "n=%d mean=%.1f%s p50=%.1f p90=%.1f p95=%.1f p99=%.1f max=%.1f"
    s.count s.mean unit_name s.p50 s.p90 s.p95 s.p99 s.max

let throughput_windows ~window completions =
  if window <= 0.0 then invalid_arg "Metrics.throughput_windows: window must be positive";
  match completions with
  | [] -> []
  | xs ->
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun t ->
        let bucket = int_of_float (Float.max 0.0 t /. window) in
        let cur = try Hashtbl.find tbl bucket with Not_found -> 0 in
        Hashtbl.replace tbl bucket (cur + 1))
      xs;
    (* Emit every bucket up to the last observed one: omitting empty
       windows inflates the mean throughput of gappy traces. *)
    let max_bucket = Hashtbl.fold (fun b _ acc -> max acc b) tbl 0 in
    List.init (max_bucket + 1) (fun b ->
        ( float_of_int b *. window,
          try Hashtbl.find tbl b with Not_found -> 0 ))
