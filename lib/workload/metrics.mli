(** Latency/throughput summaries for workload evaluations. *)

type summary = {
  count : int;
  mean : float;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
  min : float;
  max : float;
}

(** [summarize xs] is [None] on the empty list. *)
val summarize : float list -> summary option

(** [pp_summary ~unit_name fmt s] renders one line, e.g.
    ["n=120 mean=3.2ms p50=2.9 p95=7.7 p99=9.0 max=9.4"]. *)
val pp_summary : unit_name:string -> Format.formatter -> summary -> unit

(** [throughput_windows ~window completions] buckets completion
    timestamps into fixed windows and returns (window start, count)
    pairs — the time series behind a throughput plot.  Every window
    from 0 to the last observed completion is present, including
    zero-count ones, so averaging the counts gives the true mean
    throughput over gappy traces.
    @raise Invalid_argument if [window <= 0]. *)
val throughput_windows : window:float -> float list -> (float * int) list
