(** Synthetic workload sets (paper §4.1, Table 1).

    Each set is a sequence of GRU/LSTM inference tasks arriving at
    random intervals; the composition controls the S/M/L mix.  All
    randomness flows through a caller-provided seeded generator so
    every experiment is reproducible. *)

type composition = { s : float; m : float; l : float }

(** The ten compositions of Table 1, index 0 = set 1. *)
val table1 : composition array

(** [composition_name c] e.g. ["50%S+50%L"]. *)
val composition_name : composition -> string

type task = {
  task_id : int;
  point : Deepbench.point;
  model_class : Sizes.model_class;
  arrival_us : float;  (** absolute arrival time *)
}

(** Arrival processes.  [Exponential] is a Poisson stream.  [Bursty]
    alternates a busy phase of [on_us] (exponential inter-arrivals
    with mean [on_mean_us]) and a quiet phase of [off_us] (mean
    [off_mean_us]), cycling from time 0 — the open/closed-loop stress
    pattern used by the serving-layer experiments.  The phase is
    chosen by the arrival clock at each draw, so the process stays
    deterministic for a given seed. *)
type arrival =
  | Exponential of { mean_us : float }
  | Bursty of {
      on_us : float;  (** busy-phase length *)
      off_us : float;  (** quiet-phase length *)
      on_mean_us : float;  (** mean inter-arrival while busy *)
      off_mean_us : float;  (** mean inter-arrival while quiet *)
    }

(** [arrival_name a] e.g. ["burst(2000/8000us @ 50/2000us)"]. *)
val arrival_name : arrival -> string

(** [generate_arrival ~rng ~composition ~tasks ~arrival] draws [tasks]
    tasks under the given arrival process.  With
    [Exponential {mean_us}] the draw sequence is identical to
    {!generate}.
    @raise Invalid_argument if the composition does not sum to ~1,
    [tasks <= 0], or the arrival parameters are non-positive. *)
val generate_arrival :
  rng:Mlv_util.Rng.t ->
  composition:composition ->
  tasks:int ->
  arrival:arrival ->
  task list

(** [generate ~rng ~composition ~tasks ~mean_interarrival_us] draws
    [tasks] tasks with exponential inter-arrival times.
    @raise Invalid_argument if the composition does not sum to ~1 or
    [tasks <= 0]. *)
val generate :
  rng:Mlv_util.Rng.t ->
  composition:composition ->
  tasks:int ->
  mean_interarrival_us:float ->
  task list

(** [class_histogram tasks] counts tasks per class. *)
val class_histogram : task list -> (Sizes.model_class * int) list
