(** Synthetic workload sets (paper §4.1, Table 1).

    Each set is a sequence of GRU/LSTM inference tasks arriving at
    random intervals; the composition controls the S/M/L mix.  All
    randomness flows through a caller-provided seeded generator so
    every experiment is reproducible. *)

type composition = { s : float; m : float; l : float }

(** The ten compositions of Table 1, index 0 = set 1. *)
val table1 : composition array

(** [composition_name c] e.g. ["50%S+50%L"]. *)
val composition_name : composition -> string

(** The tenant of tasks from the single-stream generators (["-"]);
    {!generate_tenants} stamps real tenant names. *)
val default_tenant : string

type task = {
  task_id : int;
  point : Deepbench.point;
  model_class : Sizes.model_class;
  arrival_us : float;  (** absolute arrival time *)
  tenant : string;  (** {!default_tenant} unless multi-tenant *)
}

(** Arrival processes.  [Exponential] is a Poisson stream.  [Bursty]
    alternates a busy phase of [on_us] (exponential inter-arrivals
    with mean [on_mean_us]) and a quiet phase of [off_us] (mean
    [off_mean_us]), cycling from time 0 — the open/closed-loop stress
    pattern used by the serving-layer experiments.  The phase is
    chosen by the arrival clock at each draw, so the process stays
    deterministic for a given seed.

    [Bursty] reads the phase once per draw, so a single quiet-phase
    draw with [off_mean_us] larger than the cycle can leap across
    entire busy windows and the busy rate silently collapses; it is
    kept draw-identical for the benches pinned to its stream.
    [Bursty_phased] takes the same parameters but clamps every draw
    at the next phase boundary and re-draws from the boundary with
    the new phase's mean (the exact piecewise-Poisson construction)
    — prefer it for new traces.

    [Diurnal] models a day-night load curve with an optional
    recurring flash crowd: the arrival rate follows a sinusoid from
    [1/trough_mean_us] (phase 0) up to [1/peak_mean_us] (half
    period) and back, sampled piecewise-constant over 32 slots per
    period; when [flash_us > 0], the window
    [[flash_start_us, flash_start_us + flash_us)] of every period
    overrides the sinusoid with the (typically much hotter)
    [flash_mean_us] stream.  Draws use the same boundary-clamped
    construction as [Bursty_phased], so each segment is exactly
    Poisson at its own rate — the trace generator behind the
    predictive-autoscaling bench. *)
type arrival =
  | Exponential of { mean_us : float }
  | Bursty of {
      on_us : float;  (** busy-phase length *)
      off_us : float;  (** quiet-phase length *)
      on_mean_us : float;  (** mean inter-arrival while busy *)
      off_mean_us : float;  (** mean inter-arrival while quiet *)
    }
  | Bursty_phased of {
      on_us : float;
      off_us : float;
      on_mean_us : float;
      off_mean_us : float;
    }
  | Diurnal of {
      period_us : float;  (** full day-night cycle length *)
      trough_mean_us : float;  (** mean inter-arrival at the quietest point *)
      peak_mean_us : float;  (** mean inter-arrival at the busiest point *)
      flash_start_us : float;  (** flash-window phase offset *)
      flash_us : float;  (** flash-window length; 0 disables it *)
      flash_mean_us : float;  (** mean inter-arrival inside the window *)
    }

(** [arrival_name a] e.g. ["burst(2000/8000us @ 50/2000us)"]. *)
val arrival_name : arrival -> string

(** [generate_arrival ~rng ~composition ~tasks ~arrival] draws [tasks]
    tasks under the given arrival process.  With
    [Exponential {mean_us}] the draw sequence is identical to
    {!generate}.
    @raise Invalid_argument if the composition does not sum to ~1,
    [tasks <= 0], or the arrival parameters are non-positive. *)
val generate_arrival :
  rng:Mlv_util.Rng.t ->
  composition:composition ->
  tasks:int ->
  arrival:arrival ->
  task list

(** [generate ~rng ~composition ~tasks ~mean_interarrival_us] draws
    [tasks] tasks with exponential inter-arrival times.
    @raise Invalid_argument if the composition does not sum to ~1 or
    [tasks <= 0]. *)
val generate :
  rng:Mlv_util.Rng.t ->
  composition:composition ->
  tasks:int ->
  mean_interarrival_us:float ->
  task list

(** One tenant's slice of a multi-tenant workload. *)
type tenant_load = {
  tl_name : string;
  tl_weight : float;  (** fair-share weight (feeds the SLO pool) *)
  tl_tasks : int;
  tl_arrival : arrival;
  tl_priority : int;
      (** scheduling priority; higher preempts lower (0 = best
          effort).  Only consulted when the serving loop enables
          preemption. *)
  tl_composition : composition option;
      (** overrides the run's composition for this tenant's stream;
          [None] (the default) inherits it, leaving the draw sequence
          bit-identical to the pre-override generator *)
}

(** [tenant_load name ~tasks ~arrival] with weight 1, priority 0 and
    the inherited composition.
    @raise Invalid_argument on non-positive weight/tasks or bad
    arrival parameters. *)
val tenant_load :
  ?weight:float ->
  ?priority:int ->
  ?composition:composition ->
  tasks:int ->
  arrival:arrival ->
  string ->
  tenant_load

(** [generate_tenants ~seed ~composition loads] draws each tenant's
    stream from its own split of [seed] (one tenant's parameters never
    perturb another's arrivals), merges them by arrival time and
    renumbers task ids in merged order.
    @raise Invalid_argument on an empty or duplicate-name tenant
    list. *)
val generate_tenants :
  seed:int -> composition:composition -> tenant_load list -> task list

(** [class_histogram tasks] counts tasks per class. *)
val class_histogram : task list -> (Sizes.model_class * int) list
