(** Declarative alerting over {!Series} rings.

    Rules are evaluated at each scrape tick against the live windowed
    series and walk a Prometheus-style state machine:

    {v inactive -> pending -> firing -> inactive (resolved) v}

    A rule whose condition holds enters [pending]; after holding for
    [for_intervals] consecutive evaluations it transitions to
    [firing]; the first evaluation where it no longer holds resolves
    it back to [inactive] and starts a cooldown of
    [cooldown_intervals] evaluations during which it cannot re-enter
    [pending] (hysteresis against flapping).  A pending rule whose
    condition lapses returns to [inactive] silently.

    Two condition forms:

    - {b Threshold}: compare a series' {!Series.window_value} over a
      bucket window against a constant.
    - {b Burn_rate}: the Google-SRE multi-window burn-rate test over
      an SLO error budget.  With error ratio [E(w) = bad(w)/total(w)]
      over window [w] and budget [1 - objective], the burn rate is
      [E(w) / (1 - objective)]; the rule's condition holds when
      {e both} the long and the short window burn at [>= factor]
      (the short window makes detection fast, the long window stops a
      momentary blip from firing).

    Every state transition is appended to the engine's transition log,
    counted under [alert.transitions{rule=..,event=..}], and emitted
    as an {!Obs.Trace.mark} (so firings land on the Perfetto timeline
    next to the fault injections that caused them).  Evaluation is
    driven purely by the simulation clock — fully deterministic. *)

type cmp = Gt | Lt

type condition =
  | Threshold of {
      series : string;  (** full canonical series name *)
      window : int;  (** buckets, >= 1 *)
      cmp : cmp;
      threshold : float;
    }
  | Burn_rate of {
      bad : string;  (** Rate series of SLO-violating events *)
      total : string;  (** Rate series of all events *)
      objective : float;  (** SLO target in (0, 1), e.g. 0.99 *)
      factor : float;  (** minimum burn rate, > 0 *)
      long_window : int;  (** buckets, >= 1 *)
      short_window : int;  (** buckets, >= 1 *)
    }

type rule = {
  name : string;
      (** nonempty; no whitespace, [;], braces, [=], [,] or quotes —
          rule names double as label values *)
  condition : condition;
  for_intervals : int;
      (** consecutive true evaluations before firing; [1] fires on the
          first *)
  cooldown_intervals : int;
      (** evaluations after resolve during which the rule stays
          inactive; [0] disables hysteresis *)
}

(** [validate_rule r] raises [Invalid_argument] on a malformed rule
    (bad name, windows < 1, objective outside (0,1), non-positive
    factor, non-finite threshold, [for_intervals < 1] or negative
    cooldown). *)
val validate_rule : rule -> unit

(** {2 Rule grammar}

    One rule per [;]-separated clause, fields whitespace-separated:

    {v
NAME gt|lt SERIES THRESHOLD WINDOW FOR COOLDOWN
NAME burn BAD_SERIES TOTAL_SERIES OBJECTIVE FACTOR LONG SHORT FOR COOLDOWN
    v}

    e.g. [outage gt sysim.nodes_down 0 1 1 0] or
    [slo-burn burn sysim.slo_missed.rate sysim.completed.rate 0.99 2 12 3 1 6]. *)

(** [of_string s] parses a [;]-separated rule list; [Error msg] names
    the offending clause. *)
val of_string : string -> (rule list, string) result

(** [rule_to_string r] renders one rule in the grammar above;
    [of_string (rule_to_string r)] round-trips. *)
val rule_to_string : rule -> string

(** [to_string rules] joins {!rule_to_string} with ["; "]. *)
val to_string : rule list -> string

type state = Inactive | Pending | Firing

val state_name : state -> string

(** Transition events; [Resolve] is the firing -> inactive edge. *)
type event = Pend | Fire | Resolve

val event_name : event -> string

type transition = {
  rule_name : string;
  event : event;
  at_us : float;  (** simulation time of the evaluation *)
  value : float;  (** condition value at the transition (threshold
                      value or long-window burn rate) *)
}

type t

(** [create rules] builds an engine; rules are validated
    ({!validate_rule}) and evaluated in list order.
    @raise Invalid_argument on a malformed or duplicate rule name. *)
val create : rule list -> t

(** [add_rule t r] appends one rule (validated; duplicate names
    rejected), starting inactive. *)
val add_rule : t -> rule -> unit

val rules : t -> rule list

(** [eval t ~now_us] evaluates every rule once against the series
    registry at simulation time [now_us] and performs state
    transitions.  A rule whose series do not (yet) exist evaluates as
    false.  Call once per scrape interval. *)
val eval : t -> now_us:float -> unit

(** [transitions t] is the full transition log, oldest first. *)
val transitions : t -> transition list

(** [firing t] is the currently-firing rule names, in rule order. *)
val firing : t -> string list

val rule_state : t -> string -> state option

val transition_json : transition -> Obs.Json.t

(** [to_json t] is [{"rules": [{"name","spec","state","pending",
    "cooldown"}...], "transitions": [...]}]. *)
val to_json : t -> Obs.Json.t

(** [render t] is the human-readable summary behind the hypervisor's
    [alerts] command. *)
val render : t -> string
