(** Prometheus / OpenMetrics text exposition over the {!Obs} registry
    and the {!Series} rings.

    [render ()] produces the classic text format (version 0.0.4):

    - every counter as a [counter] metric,
    - every histogram as a [summary] (p50/p90/p99 [quantile] series
      plus [_count] and [_sum]),
    - every {!Series}' latest windowed value as a [gauge]
      (suffix [:rate], [:gauge] or [:p<q>] by kind).

    Metric names are sanitized to [[a-zA-Z0-9_:]] (every other byte
    becomes [_]); labels come from the registry's canonical
    [base{k=v,...}] keys with values escaped per the exposition spec
    (backslash, double-quote and newline).  Output is sorted and
    deterministic, ready for [mlvsim --prom-out] or a scrape
    endpoint. *)

(** [metric_name s] is [s] with every byte outside [[a-zA-Z0-9_:]]
    replaced by [_] (a leading digit also gains a [_] prefix). *)
val metric_name : string -> string

(** [escape_label_value s] backslash-escapes backslashes,
    double-quotes and newlines. *)
val escape_label_value : string -> string

(** [render_labels labels] is [""] for the empty set, else
    [{k="v",...}]. *)
val render_labels : Obs.Labels.t -> string

(** [render ()] is the full exposition document (text format 0.0.4),
    terminated by a newline. *)
val render : unit -> string

(** [write path] writes {!render} to [path]. *)
val write : string -> unit
