(** Windowed time-series: fixed-interval bucketed rings driven by the
    simulation clock.

    Where the {!Obs} registry is cumulative (whole-run counters and
    histograms, read post-mortem), a series is {e online}: samples
    land in the bucket covering their simulation timestamp, the ring
    keeps the most recent [buckets] intervals, and window queries
    ("rate over the last 6 buckets", "windowed p99") answer from the
    live ring while the run is still going — the raw material for the
    alert rules in {!Alert} and the scrape exposition in
    {!Prometheus}.

    Three kinds share one ring layout:

    - {b Rate}: [observe] adds a weight (usually a counter delta) to
      the current bucket; queries report per-second rates.
    - {b Gauge}: [observe] overwrites the bucket's last value; queries
      report the most recent observation.
    - {b Quantile q}: [observe] feeds the bucket's own
      {!Mlv_util.Stats.P2} estimator; window queries report the
      {e worst} (largest) per-bucket estimate in the window — the
      conservative aggregate, since P² states cannot be merged.

    Everything is deterministic: buckets are indexed by
    [floor (now_us / interval_us)], no wall clock is involved, and
    the steady-state record path is allocation-free (the ring, its
    per-bucket accumulators and the P² estimators are allocated once
    at creation; advancing reuses them in place).

    Series live in a process-wide registry keyed like counters
    (canonical [base{k=v,...}] names); {!Obs.reset} clears their data
    (handles stay valid, like counter handles). *)

type kind =
  | Rate  (** per-bucket weight sums, reported as per-second rates *)
  | Gauge  (** last value wins within a bucket *)
  | Quantile of float
      (** per-bucket P² estimate of this quantile, in (0, 1) *)

val kind_name : kind -> string

type t

(** [create ?buckets ~kind ~interval_us name] returns the registered
    series [name], creating it on first use with a ring of [buckets]
    intervals (default 512) of [interval_us] each.
    @raise Invalid_argument if [interval_us <= 0], [buckets < 2], a
    quantile is outside (0, 1), or [name] already exists with a
    different kind, interval or capacity. *)
val create : ?buckets:int -> kind:kind -> interval_us:float -> string -> t

(** [create_labeled ?buckets ~kind ~interval_us name kvs] is the
    labeled variant; the canonical full name follows
    {!Obs.Labels.key}. *)
val create_labeled :
  ?buckets:int ->
  kind:kind ->
  interval_us:float ->
  string ->
  (string * string) list ->
  t

(** [find name] looks a series up by its canonical full name. *)
val find : string -> t option

(** [all ()] lists every registered series sorted by full name. *)
val all : unit -> (string * t) list

val name : t -> string
val base : t -> string
val labels : t -> Obs.Labels.t
val kind : t -> kind
val interval_us : t -> float
val capacity : t -> int

(** [observe t ~now_us v] records a sample into the bucket covering
    [now_us], first retiring buckets older than the ring keeps.
    Samples must arrive in non-decreasing time order (the simulator
    guarantees this); a sample earlier than the current bucket is
    clamped into it.
    @raise Invalid_argument on NaN or infinite [v] or negative
    [now_us]. *)
val observe : t -> now_us:float -> float -> unit

(** [advance t ~now_us] retires buckets up to [now_us] without
    recording — queries at [now_us] then see empty buckets for the
    elapsed idle intervals instead of stale data.  [observe] and the
    window queries advance implicitly. *)
val advance : t -> now_us:float -> unit

(** Total samples ever recorded (survives ring eviction). *)
val total_count : t -> int

(** Sum of all sample values ever recorded (survives ring
    eviction). *)
val total_sum : t -> float

(** [window_count t ~now_us ~buckets] is the number of samples in the
    last [buckets] intervals ending at (and including) the bucket
    covering [now_us]. *)
val window_count : t -> now_us:float -> buckets:int -> int

(** [window_sum t ~now_us ~buckets] is the sample-value sum over the
    window (for a Rate series: the total weight). *)
val window_sum : t -> now_us:float -> buckets:int -> float

(** [window_rate_per_s t ~now_us ~buckets] is
    [window_sum / (buckets * interval)] in events per second. *)
val window_rate_per_s : t -> now_us:float -> buckets:int -> float

(** [window_value t ~now_us ~buckets] is the kind's natural window
    aggregate: per-second rate for Rate, the most recent non-empty
    bucket's last value for Gauge (0 when the whole window is empty),
    and the largest per-bucket P² estimate for Quantile.  This is the
    value alert threshold rules compare. *)
val window_value : t -> now_us:float -> buckets:int -> float

(** [points t] lists the live buckets oldest first as
    [(bucket_start_us, sample_count, value)], where [value] follows
    {!window_value}'s per-kind convention for a single bucket.  Empty
    buckets inside the live span are included (count 0). *)
val points : t -> (float * int * float) list

(** [to_json t] is [{"kind", "interval_us", "buckets", "total_count",
    "total_sum", "points": [{"t", "n", "v"}, ...]}]. *)
val to_json : t -> Obs.Json.t

(** [registry_json ()] renders every registered series keyed by full
    name — the payload behind [mlvsim --series-out]. *)
val registry_json : unit -> Obs.Json.t

(** [render ()] is the human-readable summary behind the hypervisor's
    [series] command. *)
val render : unit -> string

(** [clear t] empties one series' data (registration survives). *)
val clear : t -> unit

(** [clear_all ()] empties every registered series' data — also runs
    on every {!Obs.reset} via the reset hook. *)
val clear_all : unit -> unit

(** [remove name] drops one registration by full canonical name
    (base plus rendered labels, {!Obs.Labels.key}); no-op when
    absent.  A later {!create} with the same name starts fresh and
    may use different parameters. *)
val remove : string -> unit

(** [remove_all ()] drops the registrations themselves (tests use
    this to re-create a series with different parameters). *)
val remove_all : unit -> unit
