(* Prometheus text exposition (format 0.0.4) over the cumulative
   registry and the windowed series rings.  Rendering is pure
   formatting — nothing here mutates metric state, so exposition can
   run mid-simulation without perturbing results. *)

let metric_name s =
  let ok c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = ':'
  in
  let sanitized = String.map (fun c -> if ok c then c else '_') s in
  if sanitized = "" then "_"
  else if sanitized.[0] >= '0' && sanitized.[0] <= '9' then "_" ^ sanitized
  else sanitized

let escape_label_value s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_labels = function
  | [] -> ""
  | kvs ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) ->
             Printf.sprintf "%s=\"%s\"" (metric_name k) (escape_label_value v))
           kvs)
    ^ "}"

(* Exposition floats: the spec wants Go-style literals, with NaN and
   signed Inf spelled out. *)
let number v =
  if Float.is_nan v then "NaN"
  else if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else Printf.sprintf "%.12g" v

(* One [# TYPE] header per metric family, samples grouped under it —
   the plain registry sort interleaves families ("a.bc" sorts between
   "a.b" and "a.b{...}"), so group by base explicitly. *)
let group_by_base items base_of name_of =
  List.sort
    (fun a b -> compare (base_of a, name_of a) (base_of b, name_of b))
    items

let add_family buf last base typ =
  if base <> !last then begin
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" base typ);
    last := base
  end

let series_suffix s =
  match Series.kind s with
  | Series.Rate -> ":rate"
  | Series.Gauge -> ":gauge"
  | Series.Quantile q -> metric_name (Printf.sprintf ":p%g" (q *. 100.0))

let render () =
  let buf = Buffer.create 4096 in
  let last = ref "" in
  (* counters *)
  List.iter
    (fun (_, c) ->
      let base = metric_name (Obs.Counter.base c) in
      add_family buf last base "counter";
      Buffer.add_string buf
        (Printf.sprintf "%s%s %d\n" base
           (render_labels (Obs.Counter.labels c))
           (Obs.Counter.value c)))
    (group_by_base (Obs.counter_handles ())
       (fun (_, c) -> Obs.Counter.base c)
       (fun (n, _) -> n));
  (* histograms as summaries *)
  last := "";
  List.iter
    (fun (_, h) ->
      let base = metric_name (Obs.Histogram.base h) in
      add_family buf last base "summary";
      let labels = Obs.Histogram.labels h in
      List.iter
        (fun (q, p) ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" base
               (render_labels (labels @ [ ("quantile", q) ]))
               (number (Obs.Histogram.percentile h p))))
        [ ("0.5", 50.0); ("0.9", 90.0); ("0.99", 99.0) ];
      Buffer.add_string buf
        (Printf.sprintf "%s_sum%s %s\n" base (render_labels labels)
           (number (Obs.Histogram.sum h)));
      Buffer.add_string buf
        (Printf.sprintf "%s_count%s %d\n" base (render_labels labels)
           (Obs.Histogram.count h)))
    (group_by_base (Obs.histograms ())
       (fun (_, h) -> Obs.Histogram.base h)
       (fun (n, _) -> n));
  (* series latest values as gauges *)
  last := "";
  List.iter
    (fun (_, s) ->
      let base = metric_name (Series.base s) ^ series_suffix s in
      add_family buf last base "gauge";
      let latest =
        match List.rev (Series.points s) with
        | (_, _, v) :: _ -> v
        | [] -> 0.0
      in
      Buffer.add_string buf
        (Printf.sprintf "%s%s %s\n" base
           (render_labels (Series.labels s))
           (number latest)))
    (group_by_base (Series.all ())
       (fun (_, s) -> metric_name (Series.base s) ^ series_suffix s)
       (fun (n, _) -> n));
  Buffer.contents buf

let write path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render ()))
