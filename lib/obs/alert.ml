type cmp = Gt | Lt

type condition =
  | Threshold of {
      series : string;
      window : int;
      cmp : cmp;
      threshold : float;
    }
  | Burn_rate of {
      bad : string;
      total : string;
      objective : float;
      factor : float;
      long_window : int;
      short_window : int;
    }

type rule = {
  name : string;
  condition : condition;
  for_intervals : int;
  cooldown_intervals : int;
}

let bad_name_char c =
  match c with
  | ' ' | '\t' | '\n' | '\r' | ';' | '{' | '}' | '=' | ',' | '"' -> true
  | _ -> false

let validate_rule r =
  let fail fmt = Printf.ksprintf invalid_arg ("Obs.Alert: " ^^ fmt) in
  if r.name = "" then fail "empty rule name";
  String.iter
    (fun c -> if bad_name_char c then fail "rule name %S contains %C" r.name c)
    r.name;
  if r.for_intervals < 1 then fail "rule %s: for_intervals must be >= 1" r.name;
  if r.cooldown_intervals < 0 then
    fail "rule %s: cooldown_intervals must be >= 0" r.name;
  match r.condition with
  | Threshold { window; threshold; _ } ->
    if window < 1 then fail "rule %s: window must be >= 1" r.name;
    if Float.is_nan threshold || Float.abs threshold = infinity then
      fail "rule %s: threshold must be finite" r.name
  | Burn_rate { objective; factor; long_window; short_window; _ } ->
    if not (objective > 0.0 && objective < 1.0) then
      fail "rule %s: objective must be in (0, 1)" r.name;
    if not (factor > 0.0) || Float.abs factor = infinity then
      fail "rule %s: factor must be positive and finite" r.name;
    if long_window < 1 || short_window < 1 then
      fail "rule %s: windows must be >= 1" r.name;
    if short_window > long_window then
      fail "rule %s: short window must not exceed the long window" r.name

(* --- rule grammar ------------------------------------------------- *)

let rule_to_string r =
  match r.condition with
  | Threshold { series; window; cmp; threshold } ->
    Printf.sprintf "%s %s %s %g %d %d %d" r.name
      (match cmp with Gt -> "gt" | Lt -> "lt")
      series threshold window r.for_intervals r.cooldown_intervals
  | Burn_rate { bad; total; objective; factor; long_window; short_window } ->
    Printf.sprintf "%s burn %s %s %g %g %d %d %d %d" r.name bad total objective
      factor long_window short_window r.for_intervals r.cooldown_intervals

let to_string rules = String.concat "; " (List.map rule_to_string rules)

let parse_clause clause =
  let tokens =
    String.split_on_char ' '
      (String.map (function ' ' | '\t' | '\n' | '\r' -> ' ' | c -> c) clause)
    |> List.filter (fun s -> s <> "")
  in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let num what s k =
    match float_of_string_opt s with
    | Some v -> k v
    | None -> err "%s: bad %s %S" clause what s
  in
  let int_ what s k =
    match int_of_string_opt s with
    | Some v -> k v
    | None -> err "%s: bad %s %S" clause what s
  in
  let finish r =
    match validate_rule r with
    | () -> Ok r
    | exception Invalid_argument m -> Error m
  in
  match tokens with
  | [ name; ("gt" | "lt") as op; series; thr; win; for_; cool ] ->
    num "threshold" thr @@ fun threshold ->
    int_ "window" win @@ fun window ->
    int_ "for" for_ @@ fun for_intervals ->
    int_ "cooldown" cool @@ fun cooldown_intervals ->
    finish
      {
        name;
        condition =
          Threshold
            {
              series;
              window;
              cmp = (if op = "gt" then Gt else Lt);
              threshold;
            };
        for_intervals;
        cooldown_intervals;
      }
  | [ name; "burn"; bad; total; obj; fac; lw; sw; for_; cool ] ->
    num "objective" obj @@ fun objective ->
    num "factor" fac @@ fun factor ->
    int_ "long window" lw @@ fun long_window ->
    int_ "short window" sw @@ fun short_window ->
    int_ "for" for_ @@ fun for_intervals ->
    int_ "cooldown" cool @@ fun cooldown_intervals ->
    finish
      {
        name;
        condition =
          Burn_rate { bad; total; objective; factor; long_window; short_window };
        for_intervals;
        cooldown_intervals;
      }
  | [] -> err "empty alert rule"
  | name :: _ ->
    err
      "%s: expected \"%s gt|lt SERIES THRESHOLD WINDOW FOR COOLDOWN\" or \"%s \
       burn BAD TOTAL OBJECTIVE FACTOR LONG SHORT FOR COOLDOWN\""
      clause name name

let of_string s =
  let clauses =
    String.split_on_char ';' s
    |> List.map String.trim
    |> List.filter (fun c -> c <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | c :: rest -> (
      match parse_clause c with
      | Ok r -> go (r :: acc) rest
      | Error m -> Error m)
  in
  go [] clauses

(* --- engine ------------------------------------------------------- *)

type state = Inactive | Pending | Firing

let state_name = function
  | Inactive -> "inactive"
  | Pending -> "pending"
  | Firing -> "firing"

type event = Pend | Fire | Resolve

let event_name = function
  | Pend -> "pending"
  | Fire -> "firing"
  | Resolve -> "resolved"

type transition = {
  rule_name : string;
  event : event;
  at_us : float;
  value : float;
}

type rule_cell = {
  rule : rule;
  mutable state : state;
  mutable true_streak : int;  (* consecutive true evaluations *)
  mutable cooldown_left : int;  (* evaluations until re-arm *)
}

type t = {
  mutable cells : rule_cell list;  (* rule order, reversed internally *)
  mutable log : transition list;  (* newest first *)
  mutable nlog : int;
}

let create_cell r =
  validate_rule r;
  { rule = r; state = Inactive; true_streak = 0; cooldown_left = 0 }

let add_rule t r =
  if List.exists (fun c -> c.rule.name = r.name) t.cells then
    invalid_arg (Printf.sprintf "Obs.Alert: duplicate rule name %S" r.name);
  t.cells <- t.cells @ [ create_cell r ]

let create rules =
  let t = { cells = []; log = []; nlog = 0 } in
  List.iter (add_rule t) rules;
  t

let rules t = List.map (fun c -> c.rule) t.cells

(* Condition value is also what transitions report: the windowed value
   for thresholds, the long-window burn rate for burn rules. *)
let eval_condition c ~now_us =
  match c with
  | Threshold { series; window; cmp; threshold } -> (
    match Series.find series with
    | None -> (false, 0.0)
    | Some s ->
      let v = Series.window_value s ~now_us ~buckets:window in
      ((match cmp with Gt -> v > threshold | Lt -> v < threshold), v))
  | Burn_rate { bad; total; objective; factor; long_window; short_window } -> (
    match (Series.find bad, Series.find total) with
    | Some b, Some tot ->
      let burn w =
        let t_sum = Series.window_sum tot ~now_us ~buckets:w in
        if t_sum <= 0.0 then 0.0
        else
          let b_sum = Series.window_sum b ~now_us ~buckets:w in
          b_sum /. t_sum /. (1.0 -. objective)
      in
      let bl = burn long_window in
      let bs = burn short_window in
      (bl >= factor && bs >= factor, bl)
    | _ -> (false, 0.0))

let record t cell event ~at_us ~value =
  t.log <- { rule_name = cell.rule.name; event; at_us; value } :: t.log;
  t.nlog <- t.nlog + 1;
  Obs.Counter.incr
    (Obs.Counter.get_labeled "alert.transitions"
       [ ("rule", cell.rule.name); ("event", event_name event) ]);
  Obs.Trace.mark
    (Printf.sprintf "alert %s %s" cell.rule.name (event_name event))

let eval_cell t cell ~now_us =
  let holds, value = eval_condition cell.rule.condition ~now_us in
  match cell.state with
  | Inactive ->
    if cell.cooldown_left > 0 then cell.cooldown_left <- cell.cooldown_left - 1
    else if holds then begin
      cell.true_streak <- 1;
      if cell.rule.for_intervals <= 1 then begin
        cell.state <- Firing;
        record t cell Fire ~at_us:now_us ~value
      end
      else begin
        cell.state <- Pending;
        record t cell Pend ~at_us:now_us ~value
      end
    end
  | Pending ->
    if holds then begin
      cell.true_streak <- cell.true_streak + 1;
      if cell.true_streak >= cell.rule.for_intervals then begin
        cell.state <- Firing;
        record t cell Fire ~at_us:now_us ~value
      end
    end
    else begin
      (* Condition lapsed before for-duration was met: stand down
         silently, no cooldown (nothing fired). *)
      cell.state <- Inactive;
      cell.true_streak <- 0
    end
  | Firing ->
    if not holds then begin
      cell.state <- Inactive;
      cell.true_streak <- 0;
      cell.cooldown_left <- cell.rule.cooldown_intervals;
      record t cell Resolve ~at_us:now_us ~value
    end

let eval t ~now_us = List.iter (fun c -> eval_cell t c ~now_us) t.cells
let transitions t = List.rev t.log

let firing t =
  List.filter_map
    (fun c -> if c.state = Firing then Some c.rule.name else None)
    t.cells

let rule_state t name =
  List.find_map
    (fun c -> if c.rule.name = name then Some c.state else None)
    t.cells

let transition_json (tr : transition) =
  Obs.Json.Obj
    [
      ("rule", Obs.Json.String tr.rule_name);
      ("event", Obs.Json.String (event_name tr.event));
      ("at_us", Obs.Json.Float tr.at_us);
      ("value", Obs.Json.Float tr.value);
    ]

let to_json t =
  Obs.Json.Obj
    [
      ( "rules",
        Obs.Json.List
          (List.map
             (fun c ->
               Obs.Json.Obj
                 [
                   ("name", Obs.Json.String c.rule.name);
                   ("spec", Obs.Json.String (rule_to_string c.rule));
                   ("state", Obs.Json.String (state_name c.state));
                   ("streak", Obs.Json.Int c.true_streak);
                   ("cooldown", Obs.Json.Int c.cooldown_left);
                 ])
             t.cells) );
      ("transitions", Obs.Json.List (List.map transition_json (transitions t)));
    ]

let render t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "alerts:\n";
  if t.cells = [] then Buffer.add_string buf "  (no rules)\n";
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "  %-24s %-8s streak=%d cooldown=%d  %s\n" c.rule.name
           (state_name c.state) c.true_streak c.cooldown_left
           (rule_to_string c.rule)))
    t.cells;
  Buffer.add_string buf (Printf.sprintf "transitions (%d):\n" t.nlog);
  List.iter
    (fun (tr : transition) ->
      Buffer.add_string buf
        (Printf.sprintf "  %12.1fus %-24s %-8s value=%.4f\n" tr.at_us
           tr.rule_name (event_name tr.event) tr.value))
    (transitions t);
  Buffer.contents buf
