module Stats = Mlv_util.Stats

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape s =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let to_string v =
    let buf = Buffer.create 1024 in
    let rec go = function
      | Null -> Buffer.add_string buf "null"
      | Bool b -> Buffer.add_string buf (if b then "true" else "false")
      | Int i -> Buffer.add_string buf (string_of_int i)
      | Float f ->
        if Float.is_integer f && Float.abs f < 1e15 then
          Buffer.add_string buf (Printf.sprintf "%.0f" f)
        else if Float.is_nan f || Float.abs f = infinity then
          Buffer.add_string buf "null"
        else Buffer.add_string buf (Printf.sprintf "%.6g" f)
      | String s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
      | List xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            go x)
          xs;
        Buffer.add_char buf ']'
      | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf "\":";
            go x)
          fields;
        Buffer.add_char buf '}'
    in
    go v;
    Buffer.contents buf

  (* Minimal recursive-descent validator: accepts exactly one JSON
     value (plus surrounding whitespace). *)
  let is_valid s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let skip_ws () =
      while
        !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        advance ()
      done
    in
    let fail () = raise Exit in
    let expect c = match peek () with Some x when x = c -> advance () | _ -> fail () in
    let literal word =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then pos := !pos + l else fail ()
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | None -> fail ()
      | Some '{' -> obj ()
      | Some '[' -> arr ()
      | Some '"' -> string_lit ()
      | Some 't' -> literal "true"
      | Some 'f' -> literal "false"
      | Some 'n' -> literal "null"
      | Some ('-' | '0' .. '9') -> number ()
      | Some _ -> fail ()
    and obj () =
      expect '{';
      skip_ws ();
      if peek () = Some '}' then advance ()
      else begin
        let rec members () =
          skip_ws ();
          string_lit ();
          skip_ws ();
          expect ':';
          value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> fail ()
        in
        members ()
      end
    and arr () =
      expect '[';
      skip_ws ();
      if peek () = Some ']' then advance ()
      else begin
        let rec elements () =
          value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements ()
          | Some ']' -> advance ()
          | _ -> fail ()
        in
        elements ()
      end
    and string_lit () =
      expect '"';
      let rec chars () =
        match peek () with
        | None -> fail ()
        | Some '"' -> advance ()
        | Some '\\' ->
          advance ();
          (match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
            advance ();
            chars ()
          | Some 'u' ->
            advance ();
            for _ = 1 to 4 do
              match peek () with
              | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
              | _ -> fail ()
            done;
            chars ()
          | _ -> fail ())
        | Some _ ->
          advance ();
          chars ()
      in
      chars ()
    and number () =
      if peek () = Some '-' then advance ();
      let digits () =
        let saw = ref false in
        while (match peek () with Some '0' .. '9' -> true | _ -> false) do
          saw := true;
          advance ()
        done;
        if not !saw then fail ()
      in
      digits ();
      if peek () = Some '.' then begin
        advance ();
        digits ()
      end;
      match peek () with
      | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
      | _ -> ()
    in
    match
      value ();
      skip_ws ();
      !pos = n
    with
    | complete -> complete
    | exception Exit -> false

  (* Recursive-descent parser for one complete JSON value; [None] on
     malformed input.  bench/benchdiff.ml reads committed BENCH_*.json
     artifacts back through this, so it accepts what [to_string] emits
     (and standard JSON generally).  Numbers without a fraction or
     exponent that fit in [int] parse as [Int]; everything else as
     [Float]. *)
  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let skip_ws () =
      while
        !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        advance ()
      done
    in
    let fail () = raise Exit in
    let expect c = match peek () with Some x when x = c -> advance () | _ -> fail () in
    let literal word v =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        v
      end
      else fail ()
    in
    (* Encode a \uXXXX escape as UTF-8 (no surrogate-pair pairing —
       our own emitter only escapes control characters). *)
    let add_code_point buf cp =
      if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
      else if cp < 0x800 then begin
        Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
        Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
      end
      else begin
        Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
        Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
        Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
      end
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | None -> fail ()
      | Some '{' -> obj ()
      | Some '[' -> arr ()
      | Some '"' -> String (string_lit ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some ('-' | '0' .. '9') -> number ()
      | Some _ -> fail ()
    and obj () =
      expect '{';
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = string_lit () in
          skip_ws ();
          expect ':';
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail ()
        in
        Obj (members [])
      end
    and arr () =
      expect '[';
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elements acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail ()
        in
        List (elements [])
      end
    and string_lit () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec chars () =
        match peek () with
        | None -> fail ()
        | Some '"' -> advance ()
        | Some '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> advance (); Buffer.add_char buf '"'; chars ()
          | Some '\\' -> advance (); Buffer.add_char buf '\\'; chars ()
          | Some '/' -> advance (); Buffer.add_char buf '/'; chars ()
          | Some 'b' -> advance (); Buffer.add_char buf '\b'; chars ()
          | Some 'f' -> advance (); Buffer.add_char buf '\012'; chars ()
          | Some 'n' -> advance (); Buffer.add_char buf '\n'; chars ()
          | Some 'r' -> advance (); Buffer.add_char buf '\r'; chars ()
          | Some 't' -> advance (); Buffer.add_char buf '\t'; chars ()
          | Some 'u' ->
            advance ();
            let cp = ref 0 in
            for _ = 1 to 4 do
              match peek () with
              | Some ('0' .. '9' as c) ->
                cp := (!cp * 16) + (Char.code c - Char.code '0');
                advance ()
              | Some ('a' .. 'f' as c) ->
                cp := (!cp * 16) + (Char.code c - Char.code 'a' + 10);
                advance ()
              | Some ('A' .. 'F' as c) ->
                cp := (!cp * 16) + (Char.code c - Char.code 'A' + 10);
                advance ()
              | _ -> fail ()
            done;
            add_code_point buf !cp;
            chars ()
          | _ -> fail ())
        | Some c ->
          advance ();
          Buffer.add_char buf c;
          chars ()
      in
      chars ();
      Buffer.contents buf
    and number () =
      let start = !pos in
      if peek () = Some '-' then advance ();
      let digits () =
        let saw = ref false in
        while (match peek () with Some '0' .. '9' -> true | _ -> false) do
          saw := true;
          advance ()
        done;
        if not !saw then fail ()
      in
      digits ();
      let fractional = ref false in
      if peek () = Some '.' then begin
        fractional := true;
        advance ();
        digits ()
      end;
      (match peek () with
      | Some ('e' | 'E') ->
        fractional := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
      | _ -> ());
      let text = String.sub s start (!pos - start) in
      if !fractional then
        match float_of_string_opt text with Some f -> Float f | None -> fail ()
      else begin
        match int_of_string_opt text with
        | Some i -> Int i
        | None -> (
          match float_of_string_opt text with Some f -> Float f | None -> fail ())
      end
    in
    match
      let v = value () in
      skip_ws ();
      if !pos = n then Some v else None
    with
    | r -> r
    | exception Exit -> None
end

(* ------------------------------------------------------------------ *)
(* Labels                                                              *)
(* ------------------------------------------------------------------ *)

module Labels = struct
  type t = (string * string) list

  let bad_char c =
    match c with '{' | '}' | '=' | ',' | '"' | '\n' -> true | _ -> false

  let check_part what s =
    if String.exists bad_char s then
      invalid_arg
        (Printf.sprintf "Obs.Labels: %s %S contains a reserved character" what s)

  let make kvs =
    List.iter
      (fun (k, v) ->
        if k = "" then invalid_arg "Obs.Labels: empty label key";
        check_part "key" k;
        check_part "value" v)
      kvs;
    let sorted = List.sort (fun (a, _) (b, _) -> compare a b) kvs in
    let rec dup = function
      | (a, _) :: ((b, _) :: _ as rest) -> if a = b then Some a else dup rest
      | _ -> None
    in
    (match dup sorted with
    | Some k -> invalid_arg (Printf.sprintf "Obs.Labels: duplicate key %S" k)
    | None -> ());
    sorted

  let render = function
    | [] -> ""
    | kvs ->
      "{"
      ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) kvs)
      ^ "}"

  (* Canonical series name: base plus the sorted, rendered label set,
     e.g. [sysim.task_sojourn_us{kind=XCVU37P,node=3}].  The same
     label set always renders the same key, so registry ordering (and
     every export) is deterministic. *)
  let key base kvs = base ^ render (make kvs)
end

(* ------------------------------------------------------------------ *)
(* Clocks                                                              *)
(* ------------------------------------------------------------------ *)

let wall_us () = Unix.gettimeofday () *. 1e6

let sim_clock : (unit -> float) option ref = ref None
let set_sim_clock f = sim_clock := Some f
let clear_sim_clock () = sim_clock := None

(* Targeted clear for simulator teardown: only removes [f] if it is
   the registered clock, so a newer simulator's registration survives
   an older one's release. *)
let clear_sim_clock_of f =
  match !sim_clock with Some g when g == f -> sim_clock := None | _ -> ()

let sim_us () = match !sim_clock with Some f -> f () | None -> 0.0

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

module Counter = struct
  type t = {
    cname : string;  (* full canonical name: base plus rendered labels *)
    cbase : string;
    clabels : Labels.t;
    mutable v : int;
  }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 32

  let get_full ~base ~labels name =
    match Hashtbl.find_opt registry name with
    | Some c -> c
    | None ->
      let c = { cname = name; cbase = base; clabels = labels; v = 0 } in
      Hashtbl.replace registry name c;
      c

  let get name = get_full ~base:name ~labels:[] name

  let get_labeled name kvs =
    let labels = Labels.make kvs in
    get_full ~base:name ~labels (name ^ Labels.render labels)

  let incr t = t.v <- t.v + 1
  let add t n = t.v <- t.v + n
  let value t = t.v
  let name t = t.cname
  let base t = t.cbase
  let labels t = t.clabels
end

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

module Histogram = struct
  (* Ten log buckets per decade: sample v > 0 lands in bucket
     round(10 * log10 v), so bucket k represents 10^(k/10).  Counts
     live in a flat array indexed by k + bucket_offset — the observe
     path is one array store, no hashtable churn, no allocation.
     k is clamped to [-300, 300] (samples from 1e-30 to 1e30); the
     clamp is invisible in practice because percentile results are
     clamped to the exactly-tracked min/max anyway. *)
  let bucket_offset = 300
  let bucket_slots = (2 * bucket_offset) + 1

  type t = {
    hname : string;  (* full canonical name: base plus rendered labels *)
    hbase : string;
    hlabels : Labels.t;
    buckets : int array;
    mutable zero_count : int;  (* samples <= 0 *)
    mutable acc : Stats.Acc.t;
  }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 32

  let get_full ~base ~labels name =
    match Hashtbl.find_opt registry name with
    | Some h -> h
    | None ->
      let h =
        { hname = name; hbase = base; hlabels = labels;
          buckets = Array.make bucket_slots 0; zero_count = 0;
          acc = Stats.Acc.create () }
      in
      Hashtbl.replace registry name h;
      h

  let get name = get_full ~base:name ~labels:[] name

  let get_labeled name kvs =
    let labels = Labels.make kvs in
    get_full ~base:name ~labels (name ^ Labels.render labels)

  let detached ?(name = "detached") () =
    { hname = name; hbase = name; hlabels = [];
      buckets = Array.make bucket_slots 0; zero_count = 0;
      acc = Stats.Acc.create () }

  let observe t v =
    if Float.is_nan v || Float.abs v = infinity then
      invalid_arg "Obs.Histogram.observe: sample must be finite";
    Stats.Acc.add t.acc v;
    if v <= 0.0 then t.zero_count <- t.zero_count + 1
    else begin
      let b = int_of_float (Float.round (log10 v *. 10.0)) in
      let b =
        if b < -bucket_offset then 0
        else if b > bucket_offset then bucket_slots - 1
        else b + bucket_offset
      in
      t.buckets.(b) <- t.buckets.(b) + 1
    end

  let count t = Stats.Acc.count t.acc
  let mean t = Stats.Acc.mean t.acc
  let min t = if count t = 0 then 0.0 else Stats.Acc.min t.acc
  let max t = if count t = 0 then 0.0 else Stats.Acc.max t.acc
  let sum t = Stats.Acc.sum t.acc
  let name t = t.hname
  let base t = t.hbase
  let labels t = t.hlabels

  let percentile t p =
    (* [not (p >= 0 && p <= 100)] also rejects NaN, which the naive
       range test lets through (every comparison on NaN is false) and
       which would otherwise corrupt the target-rank arithmetic. *)
    if not (p >= 0.0 && p <= 100.0) then
      invalid_arg "Obs.Histogram.percentile: p out of range";
    let total = count t in
    if total = 0 then 0.0
    else begin
      let target =
        let r = int_of_float (ceil (p /. 100.0 *. float_of_int total)) in
        Stdlib.min total (Stdlib.max 1 r)
      in
      if t.zero_count >= target then Stdlib.min 0.0 (min t)
      else begin
        let cum = ref t.zero_count in
        let result = ref (max t) in
        (try
           for i = 0 to bucket_slots - 1 do
             let c = t.buckets.(i) in
             if c > 0 then begin
               cum := !cum + c;
               if !cum >= target then begin
                 result := 10.0 ** (float_of_int (i - bucket_offset) /. 10.0);
                 raise Exit
               end
             end
           done
         with Exit -> ());
        (* The bucket midpoint can overshoot the true extremes; clamp
           to the exactly tracked range. *)
        Float.min (max t) (Float.max (min t) !result)
      end
    end

  let clear t =
    Array.fill t.buckets 0 bucket_slots 0;
    t.zero_count <- 0;
    t.acc <- Stats.Acc.create ()
end

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

type span_record = {
  id : int;
  parent : int option;
  name : string;
  depth : int;
  start_wall_us : float;
  wall_us : float;
  start_sim_us : float;
  sim_us : float;
  args : (string * string) list;
}

let span_capacity = 8192
let completed : span_record option array = Array.make span_capacity None
let completed_next = ref 0
let completed_total = ref 0

let record_completed r =
  completed.(!completed_next) <- Some r;
  completed_next := (!completed_next + 1) mod span_capacity;
  incr completed_total

let spans () =
  let n = Stdlib.min !completed_total span_capacity in
  let start = if !completed_total <= span_capacity then 0 else !completed_next in
  List.init n (fun i ->
      match completed.((start + i) mod span_capacity) with
      | Some r -> r
      | None -> assert false)

let contains hay needle =
  (* Character-by-character scan: the obvious [String.sub hay i nn =
     needle] allocates a fresh substring per candidate position,
     which [spans_matching]/[timeline] pay per span in the 8192-entry
     ring on every query. *)
  let nh = String.length hay and nn = String.length needle in
  let matches_at i =
    let j = ref 0 in
    while !j < nn && String.unsafe_get hay (i + !j) = String.unsafe_get needle !j do
      incr j
    done;
    !j = nn
  in
  let rec at i = i + nn <= nh && (matches_at i || at (i + 1)) in
  nn = 0 || at 0

let spans_matching sub = List.filter (fun r -> contains r.name sub) (spans ())
let dropped_spans () = Stdlib.max 0 (!completed_total - span_capacity)

module Span = struct
  type t = {
    sid : int;
    sname : string;
    parent : int option;
    depth : int;
    t0_wall_us : float;
    t0_sim_us : float;
    mutable sargs : (string * string) list;  (* reverse order *)
    mutable closed : bool;
  }

  let next_id = ref 0
  let stack : t list ref = ref []

  let enter name =
    let id = !next_id in
    Stdlib.incr next_id;
    let parent, depth =
      match !stack with [] -> (None, 0) | p :: _ -> (Some p.sid, p.depth + 1)
    in
    let s =
      { sid = id; sname = name; parent; depth; t0_wall_us = wall_us ();
        t0_sim_us = sim_us (); sargs = []; closed = false }
    in
    stack := s :: !stack;
    s

  (* Attach a key=value annotation (e.g. the deployment id a [deploy]
     span produced); exported with the record and into trace args. *)
  let add_arg s k v = if not s.closed then s.sargs <- (k, v) :: s.sargs

  let exit s =
    if not s.closed then begin
      s.closed <- true;
      (* Pop to (and including) this span; children left open by an
         exception unwind close implicitly. *)
      let rec pop = function
        | [] -> []
        | top :: rest -> if top.sid = s.sid then rest else pop rest
      in
      if List.exists (fun x -> x.sid = s.sid) !stack then stack := pop !stack;
      let wall = Float.max 0.0 (wall_us () -. s.t0_wall_us) in
      let sim = Float.max 0.0 (sim_us () -. s.t0_sim_us) in
      record_completed
        { id = s.sid; parent = s.parent; name = s.sname; depth = s.depth;
          start_wall_us = s.t0_wall_us; wall_us = wall;
          start_sim_us = s.t0_sim_us; sim_us = sim; args = List.rev s.sargs };
      Histogram.observe (Histogram.get ("span." ^ s.sname ^ ".wall_us")) wall
    end

  let with_ name f =
    let s = enter name in
    Fun.protect ~finally:(fun () -> exit s) f

  let with_span name f =
    let s = enter name in
    Fun.protect ~finally:(fun () -> exit s) (fun () -> f s)
end

(* ------------------------------------------------------------------ *)
(* Task-lifecycle tracing                                              *)
(* ------------------------------------------------------------------ *)

module Trace = struct
  type phase =
    | Arrive
    | Queue
    | Deploy
    | Service
    | Complete
    | Reject
    | Retry
    | Crash_interrupt
    | Mark

  let phases =
    [ Arrive; Queue; Deploy; Service; Complete; Reject; Retry; Crash_interrupt; Mark ]

  let phase_index = function
    | Arrive -> 0
    | Queue -> 1
    | Deploy -> 2
    | Service -> 3
    | Complete -> 4
    | Reject -> 5
    | Retry -> 6
    | Crash_interrupt -> 7
    | Mark -> 8

  let phase_name = function
    | Arrive -> "arrive"
    | Queue -> "queue"
    | Deploy -> "deploy"
    | Service -> "service"
    | Complete -> "complete"
    | Reject -> "reject"
    | Retry -> "retry"
    | Crash_interrupt -> "crash_interrupt"
    | Mark -> "mark"

  type event = {
    seq : int;
    phase : phase;
    task : int option;
    label : string;
    at_sim_us : float;
    node : int option;
    deployment : int option;
    retries : int;
  }

  (* Tracing is off by default: emission is a single flag test on the
     simulator hot path, so a tracing-off run pays nothing and stays
     bit-identical to a build without the tracer. *)
  let enabled_flag = ref false
  let set_enabled b = enabled_flag := b
  let enabled () = !enabled_flag

  let capacity = 65536
  let ring : event option array = Array.make capacity None
  let ring_next = ref 0
  let total = ref 0
  let counts = Array.make (List.length phases) 0

  let emit ?task ?node ?deployment ?(retries = 0) ?(label = "") phase =
    if !enabled_flag then begin
      let e =
        { seq = !total; phase; task; label; at_sim_us = sim_us (); node;
          deployment; retries }
      in
      ring.(!ring_next) <- Some e;
      ring_next := (!ring_next + 1) mod capacity;
      Stdlib.incr total;
      counts.(phase_index phase) <- counts.(phase_index phase) + 1
    end

  let task ?node ?deployment ?retries ?label phase id =
    emit ~task:id ?node ?deployment ?retries ?label phase

  let mark ?node label = emit ?node ~label Mark

  let events () =
    let n = Stdlib.min !total capacity in
    let start = if !total <= capacity then 0 else !ring_next in
    List.init n (fun i ->
        match ring.((start + i) mod capacity) with
        | Some e -> e
        | None -> assert false)

  (* Per-phase totals over the whole run, drops included: the ring may
     forget old events, the accounting never does.  This is what the
     closed-accounting checks compare against the task counters. *)
  let count phase = counts.(phase_index phase)
  let recorded () = !total
  let dropped () = Stdlib.max 0 (!total - capacity)

  let reset () =
    Array.fill ring 0 capacity None;
    ring_next := 0;
    total := 0;
    Array.fill counts 0 (Array.length counts) 0

  (* ---------------- Chrome/Perfetto export ---------------- *)

  (* Track layout: pid 1 carries the nested spans on one thread
     (wall-clock timeline, normalized to the earliest span); pid 2 has
     one thread per cluster node plus a cluster-wide thread for events
     with no node; pid 3 has one thread per deployment.  Lifecycle
     events are instants on the simulation clock; an event tagged with
     both a node and a deployment appears on both tracks. *)
  let span_pid = 1
  let node_pid = 2
  let deployment_pid = 3
  let cluster_tid = 1_000_000

  let args_json kvs =
    Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) kvs)

  let chrome_metadata ~pid ~tid ~key name =
    Json.Obj
      [
        ("name", Json.String key);
        ("ph", Json.String "M");
        ("pid", Json.Int pid);
        ("tid", Json.Int tid);
        ("args", Json.Obj [ ("name", Json.String name) ]);
      ]

  let chrome_span t0 (r : span_record) =
    Json.Obj
      [
        ("name", Json.String r.name);
        ("ph", Json.String "X");
        ("pid", Json.Int span_pid);
        ("tid", Json.Int 1);
        ("ts", Json.Float (r.start_wall_us -. t0));
        ("dur", Json.Float r.wall_us);
        ( "args",
          args_json
            (r.args
            @ [
                ("span_id", string_of_int r.id);
                ("start_sim_us", Printf.sprintf "%.3f" r.start_sim_us);
                ("sim_us", Printf.sprintf "%.3f" r.sim_us);
              ]) );
      ]

  let event_name e =
    let subject =
      match e.task with
      | Some id -> Printf.sprintf " task %d" id
      | None -> if e.label = "" then "" else " " ^ e.label
    in
    phase_name e.phase ^ subject

  let chrome_instant ~pid ~tid e =
    let args =
      (match e.task with
      | Some id -> [ ("task", string_of_int id) ]
      | None -> [])
      @ (match e.deployment with
        | Some d -> [ ("deployment", string_of_int d) ]
        | None -> [])
      @ (match e.node with Some n -> [ ("node", string_of_int n) ] | None -> [])
      @ (if e.retries > 0 then [ ("retries", string_of_int e.retries) ] else [])
      @ if e.label = "" then [] else [ ("label", e.label) ]
    in
    Json.Obj
      [
        ("name", Json.String (event_name e));
        ("ph", Json.String "i");
        ("s", Json.String "t");
        ("pid", Json.Int pid);
        ("tid", Json.Int tid);
        ("ts", Json.Float e.at_sim_us);
        ("args", args_json args);
      ]

  let to_chrome_json () =
    let evs = events () in
    let sps = spans () in
    let t0 =
      List.fold_left
        (fun acc (r : span_record) -> Float.min acc r.start_wall_us)
        infinity sps
    in
    let t0 = if t0 = infinity then 0.0 else t0 in
    let node_tids =
      List.filter_map (fun e -> e.node) evs |> List.sort_uniq compare
    in
    let deployment_tids =
      List.filter_map (fun e -> e.deployment) evs |> List.sort_uniq compare
    in
    let needs_cluster_track = List.exists (fun e -> e.node = None) evs in
    let metadata =
      [
        chrome_metadata ~pid:span_pid ~tid:0 ~key:"process_name"
          "runtime spans (wall clock)";
        chrome_metadata ~pid:span_pid ~tid:1 ~key:"thread_name" "spans";
        chrome_metadata ~pid:node_pid ~tid:0 ~key:"process_name"
          "cluster nodes (sim clock)";
        chrome_metadata ~pid:deployment_pid ~tid:0 ~key:"process_name"
          "deployments (sim clock)";
      ]
      @ List.map
          (fun n ->
            chrome_metadata ~pid:node_pid ~tid:n ~key:"thread_name"
              (Printf.sprintf "node %d" n))
          node_tids
      @ (if needs_cluster_track then
           [
             chrome_metadata ~pid:node_pid ~tid:cluster_tid ~key:"thread_name"
               "cluster";
           ]
         else [])
      @ List.map
          (fun d ->
            chrome_metadata ~pid:deployment_pid ~tid:d ~key:"thread_name"
              (Printf.sprintf "deployment %d" d))
          deployment_tids
    in
    let span_events = List.map (chrome_span t0) sps in
    let instant_events =
      List.concat_map
        (fun e ->
          let tid = match e.node with Some n -> n | None -> cluster_tid in
          chrome_instant ~pid:node_pid ~tid e
          ::
          (match e.deployment with
          | Some d -> [ chrome_instant ~pid:deployment_pid ~tid:d e ]
          | None -> []))
        evs
    in
    Json.Obj
      [
        ("traceEvents", Json.List (metadata @ span_events @ instant_events));
        ("displayTimeUnit", Json.String "ms");
        ( "otherData",
          Json.Obj
            [
              ("tracing_enabled", Json.Bool !enabled_flag);
              ("task_events_recorded", Json.Int !total);
              ("task_events_dropped", Json.Int (dropped ()));
              ("spans_recorded", Json.Int (List.length sps));
              ("spans_dropped", Json.Int (dropped_spans ()));
              ( "phase_counts",
                Json.Obj
                  (List.map
                     (fun p -> (phase_name p, Json.Int (count p)))
                     phases) );
            ] );
      ]

  let write_chrome_json path =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc (Json.to_string (to_chrome_json ()));
        output_char oc '\n')
end

(* ------------------------------------------------------------------ *)
(* Registry-wide views                                                 *)
(* ------------------------------------------------------------------ *)

let counters () =
  Hashtbl.fold (fun name c acc -> (name, Counter.value c) :: acc) Counter.registry []
  |> List.sort compare

(* Exposition formats need base and labels separately, not the
   rendered full name, so they get the handles. *)
let counter_handles () =
  Hashtbl.fold (fun name c acc -> (name, c) :: acc) Counter.registry []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let histograms () =
  Hashtbl.fold (fun name h acc -> (name, h) :: acc) Histogram.registry []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Every series of one metric family (the base name), labeled or not,
   sorted by canonical full name — the [top]-style table views group
   on these. *)
let counters_with_base base =
  Hashtbl.fold
    (fun name (c : Counter.t) acc ->
      if Counter.base c = base then (name, Counter.labels c, Counter.value c) :: acc
      else acc)
    Counter.registry []
  |> List.sort compare

let histograms_with_base base =
  Hashtbl.fold
    (fun name h acc ->
      if Histogram.base h = base then (name, Histogram.labels h, h) :: acc else acc)
    Histogram.registry []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

(* Layered metric stores (e.g. the windowed time-series registry in
   series.ml) register a hook so [reset] clears them too — obs.ml
   cannot call into them directly without a dependency cycle. *)
let reset_hooks : (unit -> unit) list ref = ref []
let on_reset f = reset_hooks := f :: !reset_hooks

let reset () =
  Hashtbl.iter (fun _ (c : Counter.t) -> c.Counter.v <- 0) Counter.registry;
  Hashtbl.iter (fun _ h -> Histogram.clear h) Histogram.registry;
  Array.fill completed 0 span_capacity None;
  completed_next := 0;
  completed_total := 0;
  Span.stack := [];
  (* Span ids are exported (metrics JSON, Perfetto [span_id] args);
     without rewinding the id counter, two otherwise-identical runs
     separated by a reset export different ids, breaking bit-identity
     comparison of trace exports within one process. *)
  Span.next_id := 0;
  Trace.reset ();
  List.iter (fun f -> f ()) !reset_hooks

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let histogram_json h =
  Json.Obj
    [
      ("count", Json.Int (Histogram.count h));
      ("sum", Json.Float (Histogram.sum h));
      ("mean", Json.Float (Histogram.mean h));
      ("min", Json.Float (Histogram.min h));
      ("max", Json.Float (Histogram.max h));
      ("p50", Json.Float (Histogram.percentile h 50.0));
      ("p90", Json.Float (Histogram.percentile h 90.0));
      ("p99", Json.Float (Histogram.percentile h 99.0));
    ]

let span_json (r : span_record) =
  Json.Obj
    [
      ("id", Json.Int r.id);
      ("parent", match r.parent with None -> Json.Null | Some p -> Json.Int p);
      ("name", Json.String r.name);
      ("depth", Json.Int r.depth);
      ("start_wall_us", Json.Float r.start_wall_us);
      ("wall_us", Json.Float r.wall_us);
      ("start_sim_us", Json.Float r.start_sim_us);
      ("sim_us", Json.Float r.sim_us);
      ( "args",
        Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) r.args) );
    ]

let to_json () =
  Json.Obj
    [
      ("version", Json.Int 1);
      ("counters", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) (counters ())));
      ( "histograms",
        Json.Obj (List.map (fun (n, h) -> (n, histogram_json h)) (histograms ())) );
      ("spans", Json.List (List.map span_json (spans ())));
      ("spans_dropped", Json.Int (dropped_spans ()));
    ]

let json_string () = Json.to_string (to_json ())

let write_json path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (json_string ());
      output_char oc '\n')

let render () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "counters:\n";
  List.iter
    (fun (n, v) -> Buffer.add_string buf (Printf.sprintf "  %-40s %d\n" n v))
    (counters ());
  Buffer.add_string buf "histograms:\n";
  List.iter
    (fun (n, h) ->
      Buffer.add_string buf
        (Printf.sprintf
           "  %-40s n=%d mean=%.2f p50=%.2f p90=%.2f p99=%.2f min=%.2f max=%.2f\n" n
           (Histogram.count h) (Histogram.mean h)
           (Histogram.percentile h 50.0)
           (Histogram.percentile h 90.0)
           (Histogram.percentile h 99.0)
           (Histogram.min h) (Histogram.max h)))
    (histograms ());
  Buffer.add_string buf
    (Printf.sprintf "spans: %d recorded, %d dropped\n"
       (List.length (spans ()))
       (dropped_spans ()));
  List.iter
    (fun (r : span_record) ->
      Buffer.add_string buf
        (Printf.sprintf "  %s%-30s wall=%.1fus sim=%.1fus\n"
           (String.make (2 * r.depth) ' ')
           r.name r.wall_us r.sim_us))
    (spans ());
  Buffer.contents buf

let pp fmt () = Format.pp_print_string fmt (render ())
