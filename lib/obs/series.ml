module Stats = Mlv_util.Stats

(* Fixed-interval bucketed time-series rings on the simulation clock.
   A sample at time [t] lands in bucket epoch [floor (t / interval)];
   the ring keeps the most recent [cap] epochs.  Advancing the ring
   reuses the per-bucket accumulators in place (counts, sums, last
   values and the P² estimators are allocated once at creation), so
   the steady-state record path never allocates — the same discipline
   as the counter/histogram hot paths in obs.ml. *)

type kind = Rate | Gauge | Quantile of float

let kind_name = function
  | Rate -> "rate"
  | Gauge -> "gauge"
  | Quantile q -> Printf.sprintf "quantile(%g)" q

type t = {
  sname : string;  (* full canonical name: base plus rendered labels *)
  sbase : string;
  slabels : Obs.Labels.t;
  skind : kind;
  interval_us : float;
  cap : int;
  counts : int array;  (* per-slot sample count *)
  sums : float array;  (* per-slot value sum (Rate: weight sum) *)
  lasts : float array;  (* per-slot last value (Gauge) *)
  p2s : Stats.P2.t array;  (* per-slot estimator; [||] unless Quantile *)
  mutable started : bool;
  mutable first_epoch : int;  (* epoch of the first sample ever *)
  mutable cur : int;  (* epoch of the newest live bucket *)
  mutable total_count : int;  (* lifetime, survives ring eviction *)
  mutable total_sum : float;
}

let registry : (string, t) Hashtbl.t = Hashtbl.create 16

let default_buckets = 512

let make ~buckets ~kind ~interval_us ~base ~labels name =
  if not (interval_us > 0.0) || Float.is_nan interval_us || interval_us = infinity
  then invalid_arg "Obs.Series.create: interval_us must be positive and finite";
  if buckets < 2 then invalid_arg "Obs.Series.create: buckets must be >= 2";
  (match kind with
  | Quantile q when not (q > 0.0 && q < 1.0) ->
    invalid_arg "Obs.Series.create: quantile outside (0, 1)"
  | _ -> ());
  {
    sname = name;
    sbase = base;
    slabels = labels;
    skind = kind;
    interval_us;
    cap = buckets;
    counts = Array.make buckets 0;
    sums = Array.make buckets 0.0;
    lasts = Array.make buckets 0.0;
    p2s =
      (match kind with
      | Quantile q -> Array.init buckets (fun _ -> Stats.P2.create q)
      | Rate | Gauge -> [||]);
    started = false;
    first_epoch = 0;
    cur = 0;
    total_count = 0;
    total_sum = 0.0;
  }

let get_full ~buckets ~kind ~interval_us ~base ~labels name =
  match Hashtbl.find_opt registry name with
  | Some s ->
    if s.skind <> kind || s.interval_us <> interval_us || s.cap <> buckets then
      invalid_arg
        (Printf.sprintf
           "Obs.Series.create: %S already registered with different parameters"
           name);
    s
  | None ->
    let s = make ~buckets ~kind ~interval_us ~base ~labels name in
    Hashtbl.replace registry name s;
    s

let create ?(buckets = default_buckets) ~kind ~interval_us name =
  get_full ~buckets ~kind ~interval_us ~base:name ~labels:[] name

let create_labeled ?(buckets = default_buckets) ~kind ~interval_us name kvs =
  let labels = Obs.Labels.make kvs in
  get_full ~buckets ~kind ~interval_us ~base:name ~labels
    (name ^ Obs.Labels.render labels)

let find name = Hashtbl.find_opt registry name

let all () =
  Hashtbl.fold (fun name s acc -> (name, s) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let name t = t.sname
let base t = t.sbase
let labels t = t.slabels
let kind t = t.skind
let interval_us t = t.interval_us
let capacity t = t.cap

let slot t epoch = epoch mod t.cap

let clear_slot t i =
  t.counts.(i) <- 0;
  t.sums.(i) <- 0.0;
  t.lasts.(i) <- 0.0;
  if t.p2s <> [||] then Stats.P2.reset t.p2s.(i)

let epoch_of t now_us = int_of_float (now_us /. t.interval_us)

(* Retire buckets between the current epoch and the one covering
   [now_us].  A gap longer than the ring only clears [cap] slots —
   the intermediate epochs were never observable anyway. *)
let advance_to t e =
  if not t.started then begin
    t.started <- true;
    t.first_epoch <- e;
    t.cur <- e;
    clear_slot t (slot t e)
  end
  else if e > t.cur then begin
    let steps = min (e - t.cur) t.cap in
    for k = e - steps + 1 to e do
      clear_slot t (slot t k)
    done;
    t.cur <- e
  end

let advance t ~now_us =
  if now_us < 0.0 || Float.is_nan now_us then
    invalid_arg "Obs.Series.advance: negative or NaN time";
  advance_to t (epoch_of t now_us)

let observe t ~now_us v =
  if Float.is_nan v || Float.abs v = infinity then
    invalid_arg "Obs.Series.observe: sample must be finite";
  if now_us < 0.0 || Float.is_nan now_us then
    invalid_arg "Obs.Series.observe: negative or NaN time";
  advance_to t (epoch_of t now_us);
  (* Simulation time is non-decreasing; a same-instant tie that lands
     fractionally behind the current bucket clamps into it. *)
  let i = slot t t.cur in
  t.counts.(i) <- t.counts.(i) + 1;
  t.sums.(i) <- t.sums.(i) +. v;
  t.lasts.(i) <- v;
  if t.p2s <> [||] then Stats.P2.add t.p2s.(i) v;
  t.total_count <- t.total_count + 1;
  t.total_sum <- t.total_sum +. v

let total_count t = t.total_count
let total_sum t = t.total_sum

(* Oldest live epoch: bounded by both the ring capacity and the first
   sample ever (younger series have fewer live buckets). *)
let oldest_live t = max t.first_epoch (t.cur - t.cap + 1)

let window_start t ~buckets =
  let w = min (max 1 buckets) t.cap in
  max (oldest_live t) (t.cur - w + 1)

let window_count t ~now_us ~buckets =
  advance t ~now_us;
  if not t.started then 0
  else begin
    let acc = ref 0 in
    for k = window_start t ~buckets to t.cur do
      acc := !acc + t.counts.(slot t k)
    done;
    !acc
  end

let window_sum t ~now_us ~buckets =
  advance t ~now_us;
  if not t.started then 0.0
  else begin
    let acc = ref 0.0 in
    for k = window_start t ~buckets to t.cur do
      acc := !acc +. t.sums.(slot t k)
    done;
    !acc
  end

let window_rate_per_s t ~now_us ~buckets =
  let w = min (max 1 buckets) t.cap in
  let span_s = float_of_int w *. t.interval_us /. 1e6 in
  window_sum t ~now_us ~buckets /. span_s

let window_value t ~now_us ~buckets =
  advance t ~now_us;
  match t.skind with
  | Rate -> window_rate_per_s t ~now_us ~buckets
  | Gauge ->
    if not t.started then 0.0
    else begin
      (* Most recent non-empty bucket in the window. *)
      let rec back k =
        if k < window_start t ~buckets then 0.0
        else begin
          let i = slot t k in
          if t.counts.(i) > 0 then t.lasts.(i) else back (k - 1)
        end
      in
      back t.cur
    end
  | Quantile _ ->
    if not t.started then 0.0
    else begin
      (* P² states cannot be merged; the window aggregate is the worst
         (largest) per-bucket estimate — conservative for latency
         alerting. *)
      let acc = ref 0.0 in
      for k = window_start t ~buckets to t.cur do
        let i = slot t k in
        if t.counts.(i) > 0 then
          acc := Float.max !acc (Stats.P2.quantile t.p2s.(i))
      done;
      !acc
    end

let bucket_value t i =
  match t.skind with
  | Rate -> t.sums.(i) /. (t.interval_us /. 1e6)
  | Gauge -> t.lasts.(i)
  | Quantile _ -> if t.counts.(i) > 0 then Stats.P2.quantile t.p2s.(i) else 0.0

let points t =
  if not t.started then []
  else
    List.init
      (t.cur - oldest_live t + 1)
      (fun j ->
        let k = oldest_live t + j in
        let i = slot t k in
        (float_of_int k *. t.interval_us, t.counts.(i), bucket_value t i))

let to_json t =
  Obs.Json.Obj
    [
      ("kind", Obs.Json.String (kind_name t.skind));
      ("interval_us", Obs.Json.Float t.interval_us);
      ("buckets", Obs.Json.Int t.cap);
      ("total_count", Obs.Json.Int t.total_count);
      ("total_sum", Obs.Json.Float t.total_sum);
      ( "points",
        Obs.Json.List
          (List.map
             (fun (ts, n, v) ->
               Obs.Json.Obj
                 [
                   ("t", Obs.Json.Float ts);
                   ("n", Obs.Json.Int n);
                   ("v", Obs.Json.Float v);
                 ])
             (points t)) );
    ]

let registry_json () =
  Obs.Json.Obj
    [
      ("version", Obs.Json.Int 1);
      ("series", Obs.Json.Obj (List.map (fun (n, s) -> (n, to_json s)) (all ())));
    ]

let render () =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "series:\n";
  List.iter
    (fun (n, s) ->
      let live = points s in
      let latest =
        match List.rev live with (_, _, v) :: _ -> v | [] -> 0.0
      in
      Buffer.add_string buf
        (Printf.sprintf "  %-44s %-14s iv=%gus live=%d n=%d latest=%.3f\n" n
           (kind_name s.skind) s.interval_us (List.length live) s.total_count
           latest))
    (all ());
  Buffer.contents buf

let clear t =
  Array.fill t.counts 0 t.cap 0;
  Array.fill t.sums 0 t.cap 0.0;
  Array.fill t.lasts 0 t.cap 0.0;
  Array.iter Stats.P2.reset t.p2s;
  t.started <- false;
  t.first_epoch <- 0;
  t.cur <- 0;
  t.total_count <- 0;
  t.total_sum <- 0.0

let clear_all () = Hashtbl.iter (fun _ s -> clear s) registry
let remove name = Hashtbl.remove registry name
let remove_all () = Hashtbl.reset registry

(* Series data participates in [Obs.reset] like counters and
   histograms do: data clears, registrations (and handles) stay. *)
let () = Obs.on_reset clear_all
