(** Structured observability for the virtualization stack.

    One process-wide registry of named monotonic {!Counter}s,
    log-scale latency {!Histogram}s (p50/p90/p99 estimates) and
    nested {!Span}s carrying both wall-clock and simulation time.
    The runtime layers (decompose, partition, mapping, deploy,
    reconfiguration, failover, the discrete-event simulator) record
    into it; the hypervisor's [metrics] / [trace] commands, the
    [mlvsim --metrics-out] flag and the bench harness export it as
    JSON or human-readable text.

    The registry is global and deterministic in structure (names and
    counts); wall-clock durations naturally vary run to run.  All
    operations are cheap enough for simulator hot paths: counters are
    a single int increment behind a cached handle, histogram
    observation is one hash-table bump. *)

(** Minimal JSON tree: exporters build values, [to_string] renders
    them, [is_valid] checks a rendered string parses back (used by
    tests and CI on emitted metric files). *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float  (** non-finite floats render as [null] *)
    | String of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string

  (** [is_valid s] is true when [s] is one complete JSON value. *)
  val is_valid : string -> bool

  (** [parse s] reads one complete JSON value back; [None] on
      malformed input.  Numbers without a fraction or exponent that
      fit in [int] parse as [Int], everything else as [Float] — the
      regression-diff harness reads committed BENCH_*.json artifacts
      through this. *)
  val parse : string -> t option
end

(** Canonical label sets for dimensioned metrics.  A labeled series is
    keyed by its base name plus the sorted rendered label set, e.g.
    [sysim.task_sojourn_us{kind=XCVU37P,node=3}], so the same labels
    in any order name the same series and every export is
    deterministic. *)
module Labels : sig
  type t = (string * string) list

  (** [make kvs] sorts by key.
      @raise Invalid_argument on duplicate keys, empty keys, or keys /
      values containing braces, [=], [,], double quotes or a
      newline. *)
  val make : (string * string) list -> t

  (** [render t] is [""] for no labels, else ["{k=v,k2=v2}"].  Apply
      to {!make}'s output for the canonical form. *)
  val render : t -> string

  (** [key base kvs] is the canonical full series name. *)
  val key : string -> (string * string) list -> string
end

(** Named monotonic counters. *)
module Counter : sig
  type t

  (** [get name] returns the process-wide counter [name], creating it
      at zero on first use.  Handles stay valid across {!reset}. *)
  val get : string -> t

  (** [get_labeled name kvs] returns the series of family [name] with
      the canonicalized label set [kvs] (see {!Labels.make} for the
      raised errors).  Label order does not matter. *)
  val get_labeled : string -> (string * string) list -> t

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int

  (** [name t] is the full canonical name (base plus rendered
      labels); [base t] and [labels t] are its components. *)
  val name : t -> string

  val base : t -> string
  val labels : t -> Labels.t
end

(** Log-scale histograms: ten buckets per decade (~12% relative
    resolution), plus an exact streaming count/sum/min/max. *)
module Histogram : sig
  type t

  (** [get name] returns the process-wide histogram [name], creating
      it empty on first use.  Handles stay valid across {!reset}. *)
  val get : string -> t

  (** [get_labeled name kvs] is the labeled series of family [name];
      see {!Counter.get_labeled}. *)
  val get_labeled : string -> (string * string) list -> t

  (** [detached ()] is a private histogram outside the process-wide
      registry: invisible to [dump]/[snapshot], untouched by {!reset},
      and never shared between callers.  Control loops use these so
      their decisions depend only on samples from their own run. *)
  val detached : ?name:string -> unit -> t

  (** [observe t v] records a sample.
      @raise Invalid_argument on NaN or infinite samples. *)
  val observe : t -> float -> unit

  val count : t -> int
  val mean : t -> float
  val min : t -> float
  val max : t -> float
  val sum : t -> float

  (** [percentile t p] estimates the [p]-th percentile from the log
      buckets (exact to bucket resolution, clamped to the observed
      min/max); 0 when empty, the sample itself on a single-sample
      histogram.
      @raise Invalid_argument if [p] is NaN or outside [0, 100]. *)
  val percentile : t -> float -> float

  (** [name t] is the full canonical name; [base t] / [labels t] its
      components. *)
  val name : t -> string

  val base : t -> string
  val labels : t -> Labels.t
end

(** [wall_us ()] is the wall clock in µs since the Unix epoch — the
    clock spans are stamped with, exposed so engine code can time its
    own phases consistently with the span timeline. *)
val wall_us : unit -> float

(** A completed span, oldest first in {!spans}. *)
type span_record = {
  id : int;
  parent : int option;  (** id of the enclosing span, if any *)
  name : string;
  depth : int;  (** 0 for root spans *)
  start_wall_us : float;  (** wall-clock µs since the Unix epoch *)
  wall_us : float;  (** wall-clock duration *)
  start_sim_us : float;  (** registered sim clock at entry (0 if none) *)
  sim_us : float;  (** sim-clock duration (0 if no sim clock) *)
  args : (string * string) list;  (** annotations added while open *)
}

(** Nested timing spans.  Entering while another span is open makes
    the new span its child.  Each exit also feeds the histogram
    [span.<name>.wall_us]. *)
module Span : sig
  type t

  val enter : string -> t

  (** [exit t] closes the span (idempotent) and records it. *)
  val exit : t -> unit

  (** [add_arg t k v] annotates a still-open span (e.g. the deployment
      id a [deploy] span produced); no-op after exit. *)
  val add_arg : t -> string -> string -> unit

  (** [with_ name f] runs [f] inside a span, closing it on any
      exit including exceptions. *)
  val with_ : string -> (unit -> 'a) -> 'a

  (** [with_span name f] is {!with_} but passes the open span to [f]
      so it can {!add_arg}. *)
  val with_span : string -> (t -> 'a) -> 'a
end

(** Per-task lifecycle tracing and the Chrome/Perfetto exporter.

    Every system-simulation task emits an event stream
    (arrive → queue → deploy → service → complete / reject / retry /
    crash-interrupt) stamped with the simulation clock, the node,
    deployment id and retry count; fault injections add cluster-level
    {!Trace.mark}s.  Events land in a bounded ring; per-phase totals
    keep counting when the ring overflows, so accounting stays closed
    against the task counters even when old events are dropped.

    Tracing is {b off by default}: emission behind [set_enabled false]
    is a single flag test, so hot paths pay nothing ([mlvsim
    --trace-out] and the bench trace experiments switch it on). *)
module Trace : sig
  type phase =
    | Arrive
    | Queue
    | Deploy
    | Service
    | Complete
    | Reject
    | Retry
    | Crash_interrupt
    | Mark  (** cluster-level annotation, e.g. a fault injection *)

  val phase_name : phase -> string

  type event = {
    seq : int;  (** emission order, monotonically increasing *)
    phase : phase;
    task : int option;
    label : string;  (** accelerator name, fault description, ... *)
    at_sim_us : float;  (** registered sim clock at emission *)
    node : int option;
    deployment : int option;
    retries : int;
  }

  val set_enabled : bool -> unit
  val enabled : unit -> bool

  (** [task phase id] records a lifecycle event for task [id]; no-op
      while disabled. *)
  val task :
    ?node:int -> ?deployment:int -> ?retries:int -> ?label:string -> phase -> int -> unit

  (** [mark label] records a cluster-level instant (fault injections
      tag themselves with these); no-op while disabled. *)
  val mark : ?node:int -> string -> unit

  (** [events ()] lists retained events, oldest first (bounded ring;
      see {!dropped}). *)
  val events : unit -> event list

  (** [count phase] is the number of events of [phase] ever emitted
      since the last reset — drops included. *)
  val count : phase -> int

  val recorded : unit -> int

  (** [dropped ()] counts events the ring has forgotten. *)
  val dropped : unit -> int

  (** [to_chrome_json ()] renders spans and lifecycle events as a
      Chrome trace-event document ([{"traceEvents": [...], ...}])
      loadable in Perfetto / [chrome://tracing]: spans as complete
      events on a wall-clock track, lifecycle events as instants on
      one track per node and one per deployment (sim clock).  Drop
      counts and per-phase totals are reported in ["otherData"] —
      a truncated timeline is always visible as such. *)
  val to_chrome_json : unit -> Json.t

  (** [write_chrome_json path] writes {!to_chrome_json} to [path]. *)
  val write_chrome_json : string -> unit
end

(** [set_sim_clock f] makes [f] the source of simulation time for
    spans.  The discrete-event simulator registers itself on
    creation; the most recently created simulator wins. *)
val set_sim_clock : (unit -> float) -> unit

val clear_sim_clock : unit -> unit

(** [clear_sim_clock_of f] clears the sim clock only if [f] (compared
    physically) is the registered source — simulator teardown uses
    this so releasing an old simulator cannot unregister a newer
    one. *)
val clear_sim_clock_of : (unit -> float) -> unit

(** Registry inspection (sorted by name). *)
val counters : unit -> (string * int) list

(** [counter_handles ()] lists counter handles (the exposition
    renderer needs base and labels separately). *)
val counter_handles : unit -> (string * Counter.t) list

val histograms : unit -> (string * Histogram.t) list

(** [counters_with_base base] lists every series of the metric family
    [base] — labeled or not — as (full name, labels, value), sorted
    by full name.  [histograms_with_base] likewise. *)
val counters_with_base : string -> (string * Labels.t * int) list

val histograms_with_base : string -> (string * Labels.t * Histogram.t) list

(** [spans ()] lists retained completed spans, oldest first (bounded
    ring; see {!dropped_spans}). *)
val spans : unit -> span_record list

(** [spans_matching sub] filters {!spans} by substring of the name. *)
val spans_matching : string -> span_record list

val dropped_spans : unit -> int

(** [reset ()] zeroes every counter, empties every histogram, drops
    all span records (the span drop count returns to 0) and clears
    the lifecycle-trace ring and its per-phase totals.  Existing
    handles stay valid; the tracing-enabled flag is not touched. *)
val reset : unit -> unit

(** [on_reset f] registers [f] to run at the end of every {!reset}.
    Layered metric stores (the windowed time-series registry in
    {!Series}) clear themselves through this without creating a
    dependency cycle.  Hooks cannot be unregistered; register once
    per store, at module initialization. *)
val on_reset : (unit -> unit) -> unit

(** [to_json ()] renders the whole registry; schema documented in
    DESIGN.md §Observability. *)
val to_json : unit -> Json.t

val json_string : unit -> string

(** [write_json path] writes {!json_string} to [path]. *)
val write_json : string -> unit

(** [render ()] is the human-readable multi-line summary behind the
    hypervisor's [metrics] command. *)
val render : unit -> string

val pp : Format.formatter -> unit -> unit
