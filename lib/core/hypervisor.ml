module Obs = Mlv_obs.Obs
module Series = Mlv_obs.Series
module Alert = Mlv_obs.Alert
module Cluster = Mlv_cluster.Cluster
module Network = Mlv_cluster.Network
module Sim = Mlv_cluster.Sim
module Fault_plan = Mlv_cluster.Fault_plan
module Slo = Mlv_sched.Slo
module Router = Mlv_sched.Router
module Autoscaler = Mlv_sched.Autoscaler
module Session = Mlv_serve.Session
module Mapcache = Mlv_serve.Mapcache

type t = {
  runtime : Runtime.t;
  table : (int, Runtime.deployment) Hashtbl.t;
  mutable next_id : int;
  (* Serving-layer state: deployments double as router replicas
     (keyed by accel, weighted by tile count); the gate and the
     autoscaler evaluation share the cluster's sim clock. *)
  router : Router.t;
  mutable slo_specs : Slo.class_spec list;
  mutable gate : Slo.t;
  mutable autoscale : bool;
  autoscale_cfg : Autoscaler.config;
  alert_engine : Alert.t;
      (* rules added via [alert add], evaluated on demand by [alerts
         eval] against the live series registry *)
  sessions : Session.t;
      (* front-door client sessions, on the cluster's sim clock *)
  mutable mapcache : string Mapcache.t option;
      (* compiled-mapping LRU keyed by shape signature (value: the
         accel that filled the entry); None until [mapcache <cap>] *)
}

let create runtime =
  {
    runtime;
    table = Hashtbl.create 16;
    next_id = 0;
    router = Router.create ();
    slo_specs = [];
    gate = Slo.create [];
    autoscale = false;
    autoscale_cfg = Autoscaler.default;
    alert_engine = Alert.create [];
    sessions = Session.create (Session.config ());
    mapcache = None;
  }

let live_handles t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.table [] |> List.sort compare

let help =
  "ok commands: deploy <accel> | undeploy <id> | status | nodes | list | deployments | \
   rebalance | fail <node> | restore <node> | migrate <id> [force] | inject <plan> | \
   faults | index | slo [add <class> <prio> <deadline_us> <rate/s> <burst> | \
   check <class> | shed <prio|off>] | router [dispatch <accel> | done <id>] | \
   autoscale [on|off | eval <accel>] | sessions | \
   session [touch <key> | expire] | \
   mapcache [<capacity> | off | lookup <accel>] | \
   metrics [json] | trace <substring> | \
   timeline [on|off] | top | series [<name>] | alerts [eval] | \
   alert add <rule-spec> | counters reset | help"

let now_us t = Sim.now (Runtime.cluster t.runtime).Cluster.sim

let router_forget t id =
  match Hashtbl.find_opt t.table id with
  | Some d -> Router.remove_replica t.router ~key:d.Runtime.accel ~replica_id:id
  | None -> ()

let do_deploy t accel =
  match Runtime.deploy t.runtime ~accel with
  | Error e -> "error " ^ e
  | Ok d ->
    let id = t.next_id in
    t.next_id <- t.next_id + 1;
    Hashtbl.replace t.table id d;
    Router.add_replica t.router ~key:accel ~replica_id:id
      ~weight:(float_of_int (max 1 (Runtime.tiles_deployed d)));
    let nodes =
      String.concat "," (List.map string_of_int (Runtime.nodes_used d))
    in
    let vbs =
      List.fold_left
        (fun acc (p : Runtime.placement) ->
          acc + p.Runtime.bitstream.Mlv_vital.Bitstream.vbs)
        0 d.Runtime.placements
    in
    Printf.sprintf "ok id=%d nodes=%s vbs=%d tiles=%d" id nodes vbs
      (Runtime.tiles_deployed d)

let do_undeploy t id_str =
  match int_of_string_opt id_str with
  | None -> Printf.sprintf "error bad deployment id %S" id_str
  | Some id -> (
    match Hashtbl.find_opt t.table id with
    | None -> Printf.sprintf "error unknown deployment %d" id
    | Some d ->
      router_forget t id;
      Runtime.undeploy t.runtime d;
      Hashtbl.remove t.table id;
      "ok")

let do_status t =
  let s = Runtime.stats t.runtime in
  Printf.sprintf "ok live=%d vbs=%d/%d util=%.1f%%" s.Runtime.live s.Runtime.vbs_used
    s.Runtime.vbs_total
    (Runtime.cluster_utilization t.runtime *. 100.0)

let do_nodes t =
  let s = Runtime.stats t.runtime in
  "ok "
  ^ String.concat " "
      (List.map (fun (i, used, total) -> Printf.sprintf "%d:%d/%d" i used total) s.Runtime.per_node)

let do_deployments t =
  let entries =
    live_handles t
    |> List.map (fun id ->
           let d = Hashtbl.find t.table id in
           Printf.sprintf "%d:%s:%s" id d.Runtime.accel
             (String.concat "," (List.map string_of_int (Runtime.nodes_used d))))
  in
  "ok " ^ String.concat " " entries

let do_metrics () =
  let counters = Obs.counters () in
  let histograms = Obs.histograms () in
  Printf.sprintf "ok counters=%d histograms=%d spans=%d\n%s" (List.length counters)
    (List.length histograms)
    (List.length (Obs.spans ()))
    (Obs.render ())

let do_trace sub =
  let matched = Obs.spans_matching sub in
  let lines =
    List.map
      (fun (r : Obs.span_record) ->
        Printf.sprintf "  %s%s wall=%.1fus sim=%.1fus"
          (String.make (2 * r.depth) ' ')
          r.name r.wall_us r.sim_us)
      matched
  in
  String.concat "\n" (Printf.sprintf "ok matched=%d" (List.length matched) :: lines)

(* Newest ~40 lifecycle-trace events, with the ring's own accounting
   in the header so a truncated view is visible as such. *)
let timeline_shown = 40

let do_timeline () =
  let events = Obs.Trace.events () in
  let n = List.length events in
  let shown =
    if n <= timeline_shown then events
    else List.filteri (fun i _ -> i >= n - timeline_shown) events
  in
  let line (e : Obs.Trace.event) =
    let opt name = function
      | None -> ""
      | Some v -> Printf.sprintf " %s=%d" name v
    in
    Printf.sprintf "  %.1fus %s%s%s%s%s%s" e.Obs.Trace.at_sim_us
      (Obs.Trace.phase_name e.Obs.Trace.phase)
      (opt "task" e.Obs.Trace.task)
      (opt "node" e.Obs.Trace.node)
      (opt "depl" e.Obs.Trace.deployment)
      (if e.Obs.Trace.retries > 0 then
         Printf.sprintf " retries=%d" e.Obs.Trace.retries
       else "")
      (if e.Obs.Trace.label = "" then "" else " " ^ e.Obs.Trace.label)
  in
  String.concat "\n"
    (Printf.sprintf "ok events=%d shown=%d dropped=%d" (Obs.Trace.recorded ())
       (List.length shown) (Obs.Trace.dropped ())
    :: List.map line shown)

(* Per-node occupancy + completions and per-kind latency, read from
   the labeled sysim series (empty outside a sysim run). *)
let do_top t =
  let s = Runtime.stats t.runtime in
  let completed = Obs.counters_with_base "sysim.tasks.completed" in
  let completed_on n =
    let target = [ ("node", string_of_int n) ] in
    List.fold_left
      (fun acc (_, labels, v) -> if labels = target then acc + v else acc)
      0 completed
  in
  let node_lines =
    List.map
      (fun (i, used, total) ->
        Printf.sprintf "  node %d: vbs=%d/%d util=%.1f%% completed=%d" i used
          total
          (if total > 0 then 100.0 *. float_of_int used /. float_of_int total
           else 0.0)
          (completed_on i))
      s.Runtime.per_node
  in
  let kinds =
    Obs.histograms_with_base "sysim.task_sojourn_us"
    |> List.filter_map (fun (_, labels, h) ->
           match labels with [ ("kind", k) ] -> Some (k, h) | _ -> None)
  in
  let kind_lines =
    List.map
      (fun (k, h) ->
        Printf.sprintf "  kind %s: tasks=%d mean=%.1fus p95=%.1fus" k
          (Obs.Histogram.count h) (Obs.Histogram.mean h)
          (Obs.Histogram.percentile h 95.0))
      kinds
  in
  String.concat "\n"
    (Printf.sprintf "ok nodes=%d kinds=%d"
       (List.length s.Runtime.per_node)
       (List.length kinds)
    :: (node_lines @ kind_lines))

(* Fail a node with automatic failover, dropping the ids of
   deployments that could not be re-placed (shared by [fail] and
   [inject]'s crash events). *)
let apply_fail t n =
  let f = Runtime.fail_node t.runtime n in
  let lost_ids =
    Hashtbl.fold
      (fun id d acc -> if List.memq d f.Runtime.lost then id :: acc else acc)
      t.table []
  in
  List.iter
    (fun id ->
      router_forget t id;
      Hashtbl.remove t.table id)
    lost_ids;
  (f.Runtime.recovered, List.length f.Runtime.lost)

let do_migrate t ?(force = false) id_str =
  match int_of_string_opt id_str with
  | None -> Printf.sprintf "error bad deployment id %S" id_str
  | Some id -> (
    match Hashtbl.find_opt t.table id with
    | None -> Printf.sprintf "error unknown deployment %d" id
    | Some d -> (
      match Runtime.migrate ~force t.runtime d with
      | Ok moved ->
        Printf.sprintf "ok moved=%d nodes=%s" moved
          (String.concat "," (List.map string_of_int (Runtime.nodes_used d)))
      | Error e -> "error " ^ e))

(* ------------------------------------------------------------------ *)
(* Serving layer: admission gate, router, autoscaler evaluation        *)
(* ------------------------------------------------------------------ *)

let do_slo_show t =
  let class_line (c : Slo.class_spec) =
    Printf.sprintf "  %s prio=%d deadline=%.0fus rate=%.0f/s burst=%d \
                    admitted=%d shed=%d"
      c.Slo.class_name c.Slo.priority c.Slo.deadline_us c.Slo.rate_per_s
      c.Slo.burst
      (Slo.admitted_of t.gate c.Slo.class_name)
      (Slo.shed_of t.gate c.Slo.class_name)
  in
  let shed_below =
    if Slo.shed_below t.gate = min_int then "off"
    else string_of_int (Slo.shed_below t.gate)
  in
  String.concat "\n"
    (Printf.sprintf "ok classes=%d shed_below=%s admitted=%d shed=%d"
       (List.length t.slo_specs) shed_below (Slo.admitted t.gate)
       (Slo.shed t.gate)
    :: List.map class_line (Slo.classes t.gate))

(* Rebuilding the gate resets its buckets and counters — the shell
   trades history for a mutable class list. *)
let do_slo_add t name prio deadline rate burst =
  match
    ( int_of_string_opt prio,
      float_of_string_opt deadline,
      float_of_string_opt rate,
      int_of_string_opt burst )
  with
  | Some priority, Some deadline_us, Some rate_per_s, Some burst -> (
    try
      let spec =
        Slo.class_spec ~priority ~deadline_us ~rate_per_s ~burst name
      in
      let specs =
        List.filter (fun (c : Slo.class_spec) -> c.Slo.class_name <> name)
          t.slo_specs
        @ [ spec ]
      in
      t.slo_specs <- specs;
      t.gate <- Slo.create specs;
      Printf.sprintf "ok classes=%d (gate rebuilt, counters reset)"
        (List.length specs)
    with Invalid_argument e -> "error " ^ e)
  | _ -> "error usage: slo add <class> <prio> <deadline_us> <rate/s> <burst>"

let do_slo_check t name =
  let verdict =
    match Slo.admit t.gate ~class_name:name ~now_us:(now_us t) with
    | Slo.Admitted -> "admitted"
    | Slo.Shed_rate -> "shed-rate"
    | Slo.Shed_priority -> "shed-priority"
    | Slo.Shed_tenant -> "shed-tenant"
  in
  Printf.sprintf "ok class=%s verdict=%s now=%.1f" name verdict (now_us t)

let do_router_show t =
  let lines =
    List.map
      (fun key ->
        let reps =
          Router.replicas t.router ~key
          |> List.map (fun id ->
                 Printf.sprintf "%d:%d" id
                   (Router.outstanding t.router ~key ~replica_id:id))
        in
        Printf.sprintf "  %s replicas=%s" key (String.concat "," reps))
      (Router.keys t.router)
  in
  String.concat "\n"
    (Printf.sprintf "ok groups=%d outstanding=%d dispatched=%d"
       (List.length (Router.keys t.router))
       (Router.total_outstanding t.router)
       (Router.dispatched t.router)
    :: lines)

let do_router_dispatch t accel =
  match Router.pick t.router ~key:accel with
  | None -> Printf.sprintf "error no replicas for %S (deploy one first)" accel
  | Some id ->
    Router.begin_work t.router ~key:accel ~replica_id:id 1;
    Printf.sprintf "ok id=%d outstanding=%d" id
      (Router.outstanding t.router ~key:accel ~replica_id:id)

let do_router_done t id_str =
  match int_of_string_opt id_str with
  | None -> Printf.sprintf "error bad deployment id %S" id_str
  | Some id -> (
    match Hashtbl.find_opt t.table id with
    | None -> Printf.sprintf "error unknown deployment %d" id
    | Some d ->
      Router.end_work t.router ~key:d.Runtime.accel ~replica_id:id 1;
      Printf.sprintf "ok id=%d outstanding=%d" id
        (Router.outstanding t.router ~key:d.Runtime.accel ~replica_id:id))

(* One offline control-loop step for a group: replicas are this
   accel's deployments, backlog its outstanding routed requests, idle
   its zero-outstanding replicas.  Reports the decision; actuation
   stays with the operator ([deploy]/[undeploy]). *)
let do_autoscale_eval t accel =
  if not t.autoscale then "error autoscale is off (autoscale on)"
  else begin
    let replica_ids = Router.replicas t.router ~key:accel in
    let replicas = List.length replica_ids in
    let backlog =
      List.fold_left
        (fun acc id -> acc + Router.outstanding t.router ~key:accel ~replica_id:id)
        0 replica_ids
    in
    let idle =
      List.length
        (List.filter
           (fun id -> Router.outstanding t.router ~key:accel ~replica_id:id = 0)
           replica_ids)
    in
    let tracker = Autoscaler.tracker ~name:("hyp." ^ accel) in
    let decision =
      Autoscaler.decide t.autoscale_cfg tracker ~now_us:(now_us t) ~backlog
        ~replicas ~idle ~deadline_us:(Slo.min_deadline_us t.gate)
    in
    Printf.sprintf "ok accel=%s decision=%s backlog=%d replicas=%d idle=%d"
      accel
      (Autoscaler.decision_to_string decision)
      backlog replicas idle
  end

let do_autoscale_show t =
  let c = t.autoscale_cfg in
  Printf.sprintf
    "ok autoscale=%s interval=%.0fus high=%.1f low=%.1f cooldown=%.0fus \
     idle_timeout=%.0fus replicas=%d..%d"
    (if t.autoscale then "on" else "off")
    c.Autoscaler.interval_us c.Autoscaler.high_backlog_per_replica
    c.Autoscaler.low_backlog_per_replica c.Autoscaler.cooldown_us
    c.Autoscaler.idle_timeout_us c.Autoscaler.min_replicas
    c.Autoscaler.max_replicas

(* ------------------------------------------------------------------ *)
(* Telemetry: windowed series and alert rules                          *)
(* ------------------------------------------------------------------ *)

let do_series_list () =
  Printf.sprintf "ok series=%d\n%s"
    (List.length (Series.all ()))
    (Series.render ())

let do_series_show name =
  match Series.find name with
  | None -> Printf.sprintf "error unknown series %S (try series)" name
  | Some s ->
    let pts = Series.points s in
    String.concat "\n"
      (Printf.sprintf "ok kind=%s interval=%gus live=%d total=%d"
         (Series.kind_name (Series.kind s))
         (Series.interval_us s) (List.length pts) (Series.total_count s)
      :: List.map
           (fun (t0, n, v) -> Printf.sprintf "  %.1fus n=%d v=%.4f" t0 n v)
           pts)

let do_alerts t =
  Printf.sprintf "ok rules=%d firing=%d\n%s"
    (List.length (Alert.rules t.alert_engine))
    (List.length (Alert.firing t.alert_engine))
    (Alert.render t.alert_engine)

let do_alerts_eval t =
  Alert.eval t.alert_engine ~now_us:(now_us t);
  Printf.sprintf "ok evaluated rules=%d firing=%d now=%.1f"
    (List.length (Alert.rules t.alert_engine))
    (List.length (Alert.firing t.alert_engine))
    (now_us t)

let do_alert_add t spec =
  match Alert.of_string spec with
  | Error e -> "error " ^ e
  | Ok rules -> (
    try
      List.iter (Alert.add_rule t.alert_engine) rules;
      Printf.sprintf "ok rules=%d" (List.length (Alert.rules t.alert_engine))
    with Invalid_argument e -> "error " ^ e)

(* Run a fault plan to completion on the cluster's simulator: crashes
   fail over (as the [fail] command does), restores return capacity,
   degrades program the ring delay. *)
let do_inject t plan_str =
  match Fault_plan.of_string plan_str with
  | Error e -> "error " ^ e
  | Ok plan -> (
    let cluster = Runtime.cluster t.runtime in
    match Fault_plan.validate plan ~nodes:(Cluster.node_count cluster) with
    | Error e -> "error " ^ e
    | Ok () ->
      let recovered = ref 0 in
      let lost = ref 0 in
      Fault_plan.schedule plan cluster.Cluster.sim
        ~on_crash:(fun n ->
          let r, l = apply_fail t n in
          recovered := !recovered + r;
          lost := !lost + l)
        ~on_restore:(fun n -> Runtime.restore_node t.runtime n)
        ~on_degrade:(fun us ->
          Network.set_added_latency_us cluster.Cluster.network us);
      Sim.run cluster.Cluster.sim;
      Printf.sprintf "ok events=%d recovered=%d lost=%d now=%.1f"
        (Fault_plan.length plan) !recovered !lost
        (Sim.now cluster.Cluster.sim))

let do_faults t =
  let cluster = Runtime.cluster t.runtime in
  let failed =
    match Runtime.failed_nodes t.runtime with
    | [] -> "-"
    | ns -> String.concat "," (List.map string_of_int ns)
  in
  let degraded_ids =
    Hashtbl.fold
      (fun id d acc ->
        if Runtime.deployment_health t.runtime d <> [] then id :: acc else acc)
      t.table []
    |> List.sort compare
  in
  let degraded =
    match degraded_ids with
    | [] -> "-"
    | ids -> String.concat "," (List.map string_of_int ids)
  in
  Printf.sprintf "ok failed=%s degraded=%s added_latency_us=%g" failed degraded
    (Network.added_latency_us cluster.Cluster.network)

(* ------------------------------------------------------------------ *)
(* Front door: client sessions and the compiled-mapping cache          *)
(* ------------------------------------------------------------------ *)

let do_sessions t =
  let s = t.sessions in
  let lines =
    List.filter_map
      (fun k ->
        Option.map
          (fun sess ->
            Printf.sprintf "%s last_active=%.0f outstanding=%d" k
              (Session.last_active_us sess)
              (Session.outstanding sess))
          (Session.find s k))
      (Session.keys s)
  in
  Printf.sprintf "ok sessions=%d opened=%d expired=%d sticky=%d/%d held=%d%s"
    (Session.active s) (Session.opened s) (Session.expired s)
    (Session.sticky_hits s) (Session.sticky_misses s) (Session.held s)
    (match lines with [] -> "" | _ -> "\n" ^ String.concat "\n" lines)

let do_session_touch t key =
  let sess = Session.touch t.sessions ~now_us:(now_us t) key in
  Printf.sprintf "ok key=%s outstanding=%d last_active=%.0f" key
    (Session.outstanding sess)
    (Session.last_active_us sess)

let do_session_expire t =
  let reaped = Session.expire t.sessions ~now_us:(now_us t) in
  Printf.sprintf "ok expired=%d%s" (List.length reaped)
    (match reaped with [] -> "" | ks -> " " ^ String.concat "," ks)

let do_mapcache_show t =
  match t.mapcache with
  | None -> "ok mapcache=off"
  | Some mc ->
    Printf.sprintf
      "ok mapcache=on capacity=%d entries=%d hits=%d misses=%d evictions=%d \
       hit_rate=%.2f%s"
      (Mapcache.capacity mc) (Mapcache.length mc) (Mapcache.hits mc)
      (Mapcache.misses mc) (Mapcache.evictions mc) (Mapcache.hit_rate mc)
      (match Mapcache.keys mc with
      | [] -> ""
      | ks -> "\n" ^ String.concat "\n" ks)

let do_mapcache_install t cap_str =
  match int_of_string_opt cap_str with
  | None -> Printf.sprintf "error bad capacity %S (try mapcache <capacity>)" cap_str
  | Some c when c < 1 -> "error capacity must be >= 1"
  | Some c ->
    t.mapcache <- Some (Mapcache.create ~capacity:c ());
    Printf.sprintf "ok mapcache=on capacity=%d" c

let do_mapcache_lookup t accel =
  match t.mapcache with
  | None -> "error mapcache is off (try mapcache <capacity>)"
  | Some mc -> (
    match Registry.plan (Runtime.registry t.runtime) accel with
    | None -> Printf.sprintf "error unknown accelerator %S" accel
    | Some plan -> (
      let key = Mapdb.shape_signature plan in
      match Mapcache.find mc key with
      | Some owner ->
        Printf.sprintf "ok hit accel=%s compiled_as=%s key=%s" accel owner key
      | None ->
        Mapcache.put mc key accel;
        Printf.sprintf "ok miss accel=%s key=%s" accel key))

let handle t line =
  let words =
    String.split_on_char ' ' (String.trim line) |> List.filter (fun w -> w <> "")
  in
  match words with
  | [ "deploy"; accel ] -> do_deploy t accel
  | [ "undeploy"; id ] -> do_undeploy t id
  | [ "status" ] -> do_status t
  | [ "nodes" ] -> do_nodes t
  | [ "list" ] -> "ok " ^ String.concat " " (Registry.names (Runtime.registry t.runtime))
  | [ "deployments" ] -> do_deployments t
  | [ "rebalance" ] -> (
    match Runtime.rebalance t.runtime with
    | Ok moved -> Printf.sprintf "ok moved=%d" moved
    | Error e -> "error " ^ e)
  | [ "fail"; node ] -> (
    match int_of_string_opt node with
    | None -> Printf.sprintf "error bad node %S" node
    | Some n -> (
      (* deployments that could not be re-placed lose their ids *)
      match apply_fail t n with
      | recovered, lost -> Printf.sprintf "ok recovered=%d lost=%d" recovered lost
      | exception Invalid_argument e -> "error " ^ e))
  | [ "migrate"; id ] -> do_migrate t id
  | [ "migrate"; id; "force" ] -> do_migrate t ~force:true id
  | [ "slo" ] -> do_slo_show t
  | [ "slo"; "add"; name; prio; deadline; rate; burst ] ->
    do_slo_add t name prio deadline rate burst
  | [ "slo"; "check"; name ] -> do_slo_check t name
  | [ "slo"; "shed"; "off" ] ->
    Slo.set_shed_below t.gate min_int;
    "ok shed_below=off"
  | [ "slo"; "shed"; prio ] -> (
    match int_of_string_opt prio with
    | None -> Printf.sprintf "error bad priority %S" prio
    | Some p ->
      Slo.set_shed_below t.gate p;
      Printf.sprintf "ok shed_below=%d" p)
  | "slo" :: _ ->
    "error usage: slo [add <class> <prio> <deadline_us> <rate/s> <burst> | \
     check <class> | shed <prio|off>]"
  | [ "router" ] -> do_router_show t
  | [ "router"; "dispatch"; accel ] -> do_router_dispatch t accel
  | [ "router"; "done"; id ] -> do_router_done t id
  | "router" :: _ -> "error usage: router [dispatch <accel> | done <id>]"
  | [ "autoscale" ] -> do_autoscale_show t
  | [ "autoscale"; "on" ] ->
    t.autoscale <- true;
    "ok autoscale=on"
  | [ "autoscale"; "off" ] ->
    t.autoscale <- false;
    "ok autoscale=off"
  | [ "autoscale"; "eval"; accel ] -> do_autoscale_eval t accel
  | "autoscale" :: _ -> "error usage: autoscale [on|off | eval <accel>]"
  | [ "sessions" ] -> do_sessions t
  | [ "session"; ("open" | "touch"); key ] -> do_session_touch t key
  | [ "session"; "expire" ] -> do_session_expire t
  | "session" :: _ -> "error usage: session [touch <key> | expire]"
  | [ "mapcache" ] -> do_mapcache_show t
  | [ "mapcache"; "off" ] ->
    t.mapcache <- None;
    "ok mapcache=off"
  | [ "mapcache"; "lookup"; accel ] -> do_mapcache_lookup t accel
  | [ "mapcache"; cap ] -> do_mapcache_install t cap
  | "mapcache" :: _ -> "error usage: mapcache [<capacity> | off | lookup <accel>]"
  | [ "inject"; plan ] -> do_inject t plan
  | "inject" :: _ -> "error usage: inject <plan> (e.g. crash@100:1,restore@500:1)"
  | [ "faults" ] -> do_faults t
  | [ "restore"; node ] -> (
    match int_of_string_opt node with
    | None -> Printf.sprintf "error bad node %S" node
    | Some n ->
      Runtime.restore_node t.runtime n;
      "ok")
  | [ "index" ] ->
    Printf.sprintf "ok indexed=%b consistent=%b"
      (Runtime.indexed t.runtime)
      (Runtime.index_consistent t.runtime)
  | [ "metrics" ] -> do_metrics ()
  | [ "metrics"; "json" ] -> "ok " ^ Obs.json_string ()
  | [ "trace"; sub ] -> do_trace sub
  | [ "trace" ] -> "error usage: trace <substring>"
  | [ "timeline" ] -> do_timeline ()
  | [ "timeline"; "on" ] ->
    Obs.Trace.set_enabled true;
    "ok tracing=on"
  | [ "timeline"; "off" ] ->
    Obs.Trace.set_enabled false;
    "ok tracing=off"
  | "timeline" :: _ -> "error usage: timeline [on|off]"
  | [ "top" ] -> do_top t
  | [ "series" ] -> do_series_list ()
  | [ "series"; name ] -> do_series_show name
  | "series" :: _ -> "error usage: series [<name>]"
  | [ "alerts" ] -> do_alerts t
  | [ "alerts"; "eval" ] -> do_alerts_eval t
  | "alerts" :: _ -> "error usage: alerts [eval]"
  | "alert" :: "add" :: (_ :: _ as spec) -> do_alert_add t (String.concat " " spec)
  | "alert" :: _ -> "error usage: alert add <rule-spec>"
  | [ "counters"; "reset" ] ->
    Obs.reset ();
    "ok"
  | "counters" :: _ -> "error usage: counters reset"
  | [ "help" ] -> help
  | [] -> "error empty command"
  | cmd :: _ -> Printf.sprintf "error unknown command %S (try help)" cmd
